(** Quickstart: the whole pipeline on a five-line crackme.

    Assemble a guest program, run it concretely, record a Pin-style
    trace, taint it, symbolically execute the trace, print the
    SMT-Lib constraint model, solve it, and verify the solution
    detonates — every stage of the paper's Figure 1, end to end. *)

open Asm.Ast.Dsl

(* if (atoi(argv[1]) * 3 + 7 == 52) win();   -- expects 15 *)
let crackme : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "win_msg"; asciz "ACCESS GRANTED" ]
    [ label "main";
      mov rbx (mreg ~disp:8 Isa.Reg.RSI);   (* argv[1] *)
      mov rdi rbx;
      call "atoi";
      imul rax (imm 3);
      add rax (imm 7);
      cmp rax (imm 52);
      jne ".nope";
      lea rdi "win_msg";
      call "puts";
      mov rax (imm 0);
      ret;
      label ".nope";
      mov rax (imm 1);
      ret ]

let () =
  Fmt.pr "== 1. assemble and link against the guest libc ==@.";
  let image = Libc.Runtime.link_with_libs crackme in
  Fmt.pr "image: %d bytes, entry 0x%Lx, %d symbols@.@."
    (Asm.Image.size image) image.entry (List.length image.symbols);

  Fmt.pr "== 2. concrete run with a wrong guess ==@.";
  let config = { Vm.Machine.default_config with argv = [ "crackme"; "10" ] } in
  let result = Vm.Machine.run_image ~config image in
  Fmt.pr "exit=%d stdout=%S steps=%d@.@."
    (Option.value ~default:(-1) result.exit_code)
    result.stdout result.steps;

  Fmt.pr "== 3. record a trace and taint it ==@.";
  let trace = Trace.record ~config image in
  let sources =
    match Trace.argv_region trace 1 with
    | Some (addr, len) -> [ (addr, len - 1) ]
    | None ->
      Fmt.pr "warning: crackme recorded no argv.(1); taint sources empty@.";
      []
  in
  let taint = Taint.analyze ~sources trace in
  Fmt.pr "%d instructions executed, %d touch the input, %d tainted branches@.@."
    (Trace.exec_count trace) taint.tainted_count
    (List.length taint.tainted_branch);

  Fmt.pr "== 4. symbolic execution along the trace ==@.";
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      features = Ir.Lifter.full;
      lift_stack_ops = true }
  in
  let path = Concolic.Trace_exec.run cfg trace in
  Fmt.pr "%d path constraints, %d symbolic branches@.@."
    (List.length path.constraints)
    (List.length path.branches);

  Fmt.pr "== 5. negate the last branch; constraint model (SMT-Lib 2) ==@.";
  let prefix =
    List.filteri
      (fun i _ -> i < List.length path.constraints - 1)
      (List.map fst path.constraints)
  in
  let last, _ = List.nth path.constraints (List.length path.constraints - 1) in
  let model_constraints = prefix @ [ Smt.Expr.not_ last ] in
  print_string (Smt.Printer.smtlib_script model_constraints);
  Fmt.pr "@.";

  Fmt.pr "== 6. solve ==@.";
  (match Smt.Solver.solve model_constraints with
   | Smt.Solver.Sat model ->
     List.iter (fun (n, v) -> Fmt.pr "  %s = 0x%Lx@." n v)
       (List.sort compare model);
     (* rebuild the input string *)
     let b = Buffer.create 8 in
     (try
        for i = 0 to 7 do
          match List.assoc_opt (Printf.sprintf "argv1_%d" i) model with
          | Some v when Int64.to_int v land 0xff <> 0 ->
            Buffer.add_char b (Char.chr (Int64.to_int v land 0xff))
          | _ -> raise Exit
        done
      with Exit -> ());
     let input = Buffer.contents b in
     Fmt.pr "@.== 7. verify: run with %S ==@." input;
     let config = { config with argv = [ "crackme"; input ] } in
     let result = Vm.Machine.run_image ~config image in
     Fmt.pr "exit=%d stdout=%S@."
       (Option.value ~default:(-1) result.exit_code)
       result.stdout
   | o -> Fmt.pr "solver: %s@." (Smt.Solver.outcome_to_string o))
