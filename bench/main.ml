(** Benchmark harness: one Bechamel test per paper artifact (Tables I
    and II, Figure 3, the dataset statistics, the negative bomb), plus
    ablation benches for the design choices DESIGN.md calls out
    (memory model, taint filter, solver stack, library loading).

    Absolute times are machine-local; the interesting outputs are the
    relative costs (e.g. the indexed memory model vs concretization,
    printf's constraint blow-up) — the *shapes* the paper reports. *)

open Bechamel
open Toolkit

(* ---------------- workloads ---------------- *)

let bomb name = Bombs.Catalog.find name

let trace_of ?(argv1 = "5") b =
  let config = Bombs.Common.config_for b argv1 in
  Trace.record ~config (Bombs.Catalog.image b)

(* Table I: static taxonomy rendering (trivially cheap; included for
   completeness of the per-table index) *)
let bench_table1 =
  Test.make ~name:"table1/render"
    (Staged.stage (fun () -> ignore (Engines.Eval.render_table1 ())))

(* Table II: one representative cell per engine class *)
let bench_cell_bap =
  Test.make ~name:"table2/cell_bap_stack"
    (Staged.stage (fun () ->
         ignore (Engines.Grade.run_cell Engines.Profile.Bap (bomb "stack_bomb"))))

let bench_cell_triton =
  Test.make ~name:"table2/cell_triton_stack"
    (Staged.stage (fun () ->
         ignore
           (Engines.Grade.run_cell Engines.Profile.Triton (bomb "stack_bomb"))))

let bench_cell_angr =
  Test.make ~name:"table2/cell_angr_array1"
    (Staged.stage (fun () ->
         ignore
           (Engines.Grade.run_cell Engines.Profile.Angr (bomb "array1_bomb"))))

(* incremental-session ablation: the same cells solved one-shot *)
let bench_cell_angr_oneshot =
  Test.make ~name:"table2/cell_angr_array1_oneshot"
    (Staged.stage (fun () ->
         ignore
           (Engines.Grade.run_cell ~incremental:false Engines.Profile.Angr
              (bomb "array1_bomb"))))

let bench_cell_triton_oneshot =
  Test.make ~name:"table2/cell_triton_stack_oneshot"
    (Staged.stage (fun () ->
         ignore
           (Engines.Grade.run_cell ~incremental:false Engines.Profile.Triton
              (bomb "stack_bomb"))))

(* Figure 3: taint analysis with and without printf.  No argv.(1) in
   the trace degrades to an empty source list (the benchmark then
   measures the propagation walk alone) instead of aborting. *)
let argv1_sources t =
  match Trace.argv_region t 1 with
  | Some (addr, len) -> [ (addr, len - 1) ]
  | None ->
    Printf.eprintf "bench: trace has no argv.(1); taint sources empty\n";
    []

let bench_fig3_noprint =
  let t = trace_of ~argv1:"7" (bomb "fig3_noprint") in
  let sources = argv1_sources t in
  Test.make ~name:"fig3/taint_noprint"
    (Staged.stage (fun () -> ignore (Taint.analyze ~sources t)))

let bench_fig3_print =
  let t = trace_of ~argv1:"7" (bomb "fig3_print") in
  let sources = argv1_sources t in
  Test.make ~name:"fig3/taint_print"
    (Staged.stage (fun () -> ignore (Taint.analyze ~sources t)))

(* Dataset statistics: linking a bomb (the binary-size measurement) *)
let bench_sizes =
  Test.make ~name:"sizes/link_and_measure"
    (Staged.stage (fun () ->
         let img = Bombs.Common.link (bomb "array1_bomb") in
         ignore (Asm.Image.size img)))

(* Negative bomb: the NoLib claim pipeline *)
let bench_negative =
  Test.make ~name:"negative/angr_nolib"
    (Staged.stage (fun () ->
         ignore
           (Engines.Grade.run_cell Engines.Profile.Angr_nolib
              (bomb "negative_bomb"))))

(* ---------------- ablations ---------------- *)

(* memory model: concrete-only vs indexed window on the array bomb *)
let bench_mem_concrete =
  let t = trace_of ~argv1:"5" (bomb "array1_bomb") in
  Test.make ~name:"ablation/mem_concrete_only"
    (Staged.stage (fun () ->
         ignore
           (Concolic.Trace_exec.run Concolic.Trace_exec.bap_like_config t)))

let bench_mem_indexed =
  let t = trace_of ~argv1:"5" (bomb "array1_bomb") in
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      mem_mode = Concolic.Sym_exec.Indexed { window = 32; max_depth = 1 } }
  in
  Test.make ~name:"ablation/mem_indexed"
    (Staged.stage (fun () -> ignore (Concolic.Trace_exec.run cfg t)))

(* solver stack: simplifier-only vs full bit-blasting *)
let solver_constraints =
  let x = Smt.Expr.var ~width:32 "x" in
  [ Smt.Expr.eq
      (Smt.Expr.Binop (Mul, x, Smt.Expr.const ~width:32 3L))
      (Smt.Expr.const ~width:32 51L) ]

let bench_solver_simplify =
  Test.make ~name:"ablation/solver_simplify_only"
    (Staged.stage (fun () ->
         ignore (List.map Smt.Simplify.run solver_constraints)))

let bench_solver_blast =
  Test.make ~name:"ablation/solver_bitblast"
    (Staged.stage (fun () ->
         ignore (Smt.Solver.solve solver_constraints)))

(* taint filter over a crypto trace *)
let bench_taint_sha1 =
  let t = trace_of ~argv1:"abc" (bomb "sha1_bomb") in
  let sources = argv1_sources t in
  Test.make ~name:"ablation/taint_sha1_trace"
    (Staged.stage (fun () -> ignore (Taint.analyze ~sources t)))

(* lib loading: DSE with and without summaries on the sin bomb *)
let bench_dse_with_libs =
  Test.make ~name:"ablation/dse_sin_with_libs"
    (Staged.stage (fun () ->
         let config = Concolic.Dse.default_config Concolic.Dse.With_libs in
         ignore
           (Concolic.Dse.explore config (Bombs.Catalog.image (bomb "sin_bomb")))))

let bench_dse_no_libs =
  Test.make ~name:"ablation/dse_sin_no_libs"
    (Staged.stage (fun () ->
         let config = Concolic.Dse.default_config Concolic.Dse.No_libs in
         ignore
           (Concolic.Dse.explore config (Bombs.Catalog.image (bomb "sin_bomb")))))

(* telemetry overhead: the same representative Table II cell with span
   tracing on.  The plain table2/cell_* benches above run with tracing
   off — comparing the two shows the enabled-mode cost, and the plain
   cells must not regress against the pre-telemetry seed *)
let bench_cell_bap_traced =
  Test.make ~name:"telemetry/cell_bap_stack_traced"
    (Staged.stage (fun () ->
         (* reset per run so spans do not accumulate across the
            timing loop *)
         Telemetry.reset ();
         Telemetry.enable ();
         ignore
           (Engines.Grade.run_cell Engines.Profile.Bap (bomb "stack_bomb"));
         Telemetry.disable ()))

(* supervisor overhead: the same representative cell run through the
   robust cell supervisor with the default (unlimited, no-chaos)
   policy.  Comparing against table2/cell_bap_stack shows what crash
   isolation and budget accounting cost on an untripped cell *)
let bench_cell_bap_supervised =
  Test.make ~name:"robust/cell_bap_stack_supervised"
    (Staged.stage (fun () ->
         ignore
           (Engines.Supervisor.run_cell Engines.Profile.Bap
              (bomb "stack_bomb"))))

(* differential-fuzzing throughput: cases/sec per oracle family, so a
   generator or oracle slowdown shows up next to the solver ablations *)
let bench_fuzz_blast =
  Test.make ~name:"fuzz/blast_20_cases"
    (Staged.stage (fun () ->
         ignore (Difftest.Harness.run ~seed:11 ~budget:20 "blast")))

let bench_fuzz_vmir =
  Test.make ~name:"fuzz/vmir_20_cases"
    (Staged.stage (fun () ->
         ignore (Difftest.Harness.run ~seed:11 ~budget:20 "vmir")))

let benchmarks =
  [ bench_table1; bench_cell_bap; bench_cell_triton; bench_cell_angr;
    bench_cell_angr_oneshot; bench_cell_triton_oneshot;
    bench_fig3_noprint; bench_fig3_print; bench_sizes; bench_negative;
    bench_mem_concrete; bench_mem_indexed; bench_solver_simplify;
    bench_solver_blast; bench_taint_sha1; bench_dse_with_libs;
    bench_dse_no_libs; bench_cell_bap_traced; bench_cell_bap_supervised;
    bench_fuzz_blast; bench_fuzz_vmir ]

(* ---------------- machine-readable solver ablation ---------------- *)

(* one timed run per (workload × mode), reading the engine's own
   {!Smt.Stats} record off its outcome — the counters Bechamel's
   aggregate timings can't see (cache hits, conflicts, blasted nodes) *)
let solver_report () =
  let dse_workload name bomb_name ~incremental =
    let config =
      { (Concolic.Dse.default_config Concolic.Dse.With_libs) with incremental }
    in
    let t0 = Unix.gettimeofday () in
    let outcome =
      Concolic.Dse.explore config (Bombs.Catalog.image (bomb bomb_name))
    in
    (name, incremental, Unix.gettimeofday () -. t0,
     outcome.Concolic.Dse.solver_stats)
  in
  let driver_workload name bomb_name ~incremental =
    let b = bomb bomb_name in
    let config =
      { (Concolic.Driver.default_config Concolic.Trace_exec.triton_like_config)
        with incremental }
    in
    let target =
      { Concolic.Driver.image = Bombs.Catalog.image b;
        run_config =
          (fun input -> Bombs.Common.config_for ~winning:false b input);
        detonated = Bombs.Common.triggered }
    in
    let t0 = Unix.gettimeofday () in
    let verdict = Concolic.Driver.explore ~seed:b.decoy config target in
    (name, incremental, Unix.gettimeofday () -. t0,
     verdict.Concolic.Driver.solver_stats)
  in
  let rows =
    [ dse_workload "table2/cell_angr_array1" "array1_bomb" ~incremental:true;
      dse_workload "table2/cell_angr_array1" "array1_bomb" ~incremental:false;
      dse_workload "table2/cell_angr_stack" "stack_bomb" ~incremental:true;
      dse_workload "table2/cell_angr_stack" "stack_bomb" ~incremental:false;
      driver_workload "trace_exec/driver_jumptable" "jumptable_bomb"
        ~incremental:true;
      driver_workload "trace_exec/driver_jumptable" "jumptable_bomb"
        ~incremental:false ]
  in
  let json =
    "[\n"
    ^ String.concat ",\n"
      (List.map
         (fun (name, incremental, wall, stats) ->
            Printf.sprintf
              "  {\"workload\": %S, \"incremental\": %b, \
               \"workload_wall_s\": %.6f, %s}"
              name incremental wall (Smt.Stats.to_json_fields stats))
         rows)
    ^ "\n]\n"
  in
  let oc = open_out "BENCH_solver.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\n%-36s %5s %12s %8s %6s %10s\n" "solver workload" "inc"
    "solver time" "queries" "hits" "conflicts";
  List.iter
    (fun (name, incremental, _, (s : Smt.Stats.t)) ->
       Printf.printf "%-36s %5b %9.3f ms %8d %6d %10d\n" name incremental
         (s.wall_time *. 1e3) s.queries s.cache_hits s.conflicts)
    rows;
  print_endline "wrote BENCH_solver.json"

(* ---------------- machine-readable robust-layer report ------------- *)

(* supervisor overhead on untripped cells (bare vs supervised wall
   time over [reps] runs) plus one fixed-seed soak summary — the
   numbers the acceptance criteria pin for the robust layer *)
let robust_report () =
  let reps = 5 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let overhead_cell name tool bomb_name =
    let b = bomb bomb_name in
    let bare = time (fun () -> Engines.Grade.run_cell tool b) in
    let supervised = time (fun () -> Engines.Supervisor.run_cell tool b) in
    (name, bare, supervised)
  in
  let cells =
    [ overhead_cell "table2/cell_bap_stack" Engines.Profile.Bap "stack_bomb";
      overhead_cell "table2/cell_triton_stack" Engines.Profile.Triton
        "stack_bomb" ]
  in
  let soak =
    Engines.Supervisor.soak ~tools:[ Engines.Profile.Bap ]
      ~bombs:[ "time_bomb"; "argvlen_bomb" ] ~seed:42L ~plans:25 ()
  in
  (* write-ahead journal: what appending costs an executing run, and
     what replaying a complete journal saves over re-running *)
  let journal_fresh, journal_write, journal_replay =
    let tools = [ Engines.Profile.Bap; Engines.Profile.Triton ] in
    let bombs =
      List.map bomb [ "time_bomb"; "argvlen_bomb"; "stack_bomb" ]
    in
    let path = Filename.temp_file "bench_journal" ".jsonl" in
    let journal =
      { Engines.Eval.journal_path = path; kill_after = None;
        kill_torn = false }
    in
    let fresh = time (fun () -> Engines.Eval.run_table2 ~tools ~bombs ()) in
    let write =
      time (fun () ->
          if Sys.file_exists path then Sys.remove path;
          Engines.Eval.run_table2 ~tools ~bombs ~journal ())
    in
    (* the journal is now complete: further runs replay every cell *)
    let replay =
      time (fun () -> Engines.Eval.run_table2 ~tools ~bombs ~journal ())
    in
    if Sys.file_exists path then Sys.remove path;
    (fresh, write, replay)
  in
  let json =
    Printf.sprintf
      "{\n  \"supervisor_overhead\": [\n%s\n  ],\n  \"journal\": \
       {\"workload\": \"table2/2x3_cells\", \"fresh_wall_s\": %.6f, \
       \"write_wall_s\": %.6f, \"write_overhead_pct\": %.2f, \
       \"replay_wall_s\": %.6f, \"replay_speedup\": %.1f},\n  \"soak\": \
       {\"seed\": %Ld, \"plans\": %d, \"cells\": %d, \"faults_fired\": %d, \
       \"graded_e\": %d, \"graded_p\": %d, \"contained\": %b}\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (name, bare, supervised) ->
               Printf.sprintf
                 "    {\"workload\": %S, \"bare_wall_s\": %.6f, \
                  \"supervised_wall_s\": %.6f, \"overhead_pct\": %.2f}"
                 name bare supervised
                 (100. *. (supervised -. bare) /. bare))
            cells))
      journal_fresh journal_write
      (100. *. (journal_write -. journal_fresh) /. journal_fresh)
      journal_replay
      (journal_fresh /. journal_replay)
      soak.seed soak.plans soak.cells_run soak.faults_fired soak.degraded_e
      soak.degraded_p
      (Engines.Supervisor.contained soak)
  in
  let oc = open_out "BENCH_robust.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\n%-36s %12s %12s %9s\n" "supervised workload" "bare"
    "supervised" "overhead";
  List.iter
    (fun (name, bare, supervised) ->
       Printf.printf "%-36s %9.3f ms %9.3f ms %8.2f%%\n" name (bare *. 1e3)
         (supervised *. 1e3)
         (100. *. (supervised -. bare) /. bare))
    cells;
  Printf.printf
    "journal: fresh %.3f ms, write %.3f ms (%+.2f%%), replay %.3f ms \
     (%.0fx)\n"
    (journal_fresh *. 1e3) (journal_write *. 1e3)
    (100. *. (journal_write -. journal_fresh) /. journal_fresh)
    (journal_replay *. 1e3)
    (journal_fresh /. journal_replay);
  Printf.printf
    "soak: %d cells, %d faults fired (E: %d, P: %d), contained: %b\n"
    soak.cells_run soak.faults_fired soak.degraded_e soak.degraded_p
    (Engines.Supervisor.contained soak);
  print_endline "wrote BENCH_robust.json"

(* ---------------- machine-readable trace-store report -------------- *)

(* what the indexed store costs at record time (framing + checkpoints
   + index vs the plain in-memory array) and what it buys back when an
   analysis reopens the file instead of re-running the VM — including
   the headline `--explain` seek-vs-rerun speedup *)
let trace_report () =
  let reps = 5 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let b = bomb "sha1_bomb" in
  let config = Bombs.Common.config_for b "abc" in
  let image = Bombs.Catalog.image b in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_trace_store.%d" (Unix.getpid ()))
  in
  let rm_store () =
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
  in
  let saved = Trace.current_store_dir () in
  Fun.protect ~finally:(fun () ->
      Trace.set_store_dir saved;
      rm_store ();
      try Sys.rmdir dir with Sys_error _ -> ())
  @@ fun () ->
  Trace.set_store_dir None;
  let record_mem = time (fun () -> Trace.record ~config image) in
  Trace.set_store_dir (Some dir);
  let record_store =
    time (fun () ->
        rm_store ();
        Trace.record ~config image)
  in
  ignore (Trace.record ~config image);
  (* the store now exists: further records are seekable reopens *)
  let reopen = time (fun () -> Trace.record ~config image) in
  let explain_tool = Engines.Profile.Triton and explain_bomb = bomb "time_bomb" in
  Trace.set_store_dir None;
  let explain_cold =
    time (fun () -> Engines.Explain.run explain_tool explain_bomb)
  in
  Trace.set_store_dir (Some dir);
  ignore (Engines.Explain.run explain_tool explain_bomb);
  let explain_warm =
    time (fun () -> Engines.Explain.run explain_tool explain_bomb)
  in
  let json =
    Printf.sprintf
      "{\n  \"record\": {\"workload\": \"trace/sha1_bomb\", \
       \"memory_wall_s\": %.6f, \"store_write_wall_s\": %.6f, \
       \"write_overhead_pct\": %.2f, \"reopen_wall_s\": %.6f, \
       \"reopen_speedup\": %.1f},\n  \"explain\": {\"workload\": \
       \"explain/triton_time_bomb\", \"rerun_wall_s\": %.6f, \
       \"seek_wall_s\": %.6f, \"seek_speedup\": %.1f}\n}\n"
      record_mem record_store
      (100. *. (record_store -. record_mem) /. record_mem)
      reopen (record_mem /. reopen) explain_cold explain_warm
      (explain_cold /. explain_warm)
  in
  let oc = open_out "BENCH_trace.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\ntrace store: record %.3f ms in-memory, %.3f ms writing (%+.2f%%), \
     reopen %.3f ms (%.0fx)\n"
    (record_mem *. 1e3) (record_store *. 1e3)
    (100. *. (record_store -. record_mem) /. record_mem)
    (reopen *. 1e3) (record_mem /. reopen);
  Printf.printf "explain: rerun %.3f ms, store seek %.3f ms (%.1fx)\n"
    (explain_cold *. 1e3) (explain_warm *. 1e3)
    (explain_cold /. explain_warm);
  print_endline "wrote BENCH_trace.json"

(* ---------------- machine-readable fleet report -------------------- *)

(* the evaluation fleet, measured three ways:
   - table2: a deterministically budgeted grid (everything but the
     quasi-hung srand_bomb) run sequentially and at 2 and 4 workers,
     with the rendered tables compared for identity.  On one core the
     fleet pays fork/cache overhead; on N cores it approaches Nx.
   - straggler: the cell the budget does NOT bound (srand_bomb has an
     unmetered solver phase).  Sequentially that cell stalls the whole
     table — measured in a forked child, killed at the cap if need be
     (reported censored).  The fleet's watchdog kills the stuck worker
     and grades the cell, so the run completes regardless.
   - queue: scheduling overhead alone — thousands of trivial tasks
     through the pool, submit-to-done latency percentiles. *)
let fleet_report () =
  let cores =
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* --- table2: budgeted deterministic grid, seq vs 2 vs 4 workers --- *)
  let budget_spec = "smt=50,vm=500000,lift=100000,nodes=50000,taint=200000" in
  let policy =
    { Engines.Supervisor.default_policy with
      budget =
        (match Robust.Budget.parse budget_spec with
         | Ok b -> b
         | Error e -> failwith e) }
  in
  let det_bombs =
    List.filter
      (fun (b : Bombs.Common.t) -> b.name <> "srand_bomb")
      Bombs.Catalog.table2
  in
  let render = Engines.Eval.render_table2 in
  (* fleet passes first: while they run, the cells execute in freshly
     forked workers, so the master's heap and caches stay cold for the
     sequential baseline measured last *)
  Printf.printf "fleet table2 (budgeted, %d bombs): 4 workers...\n%!"
    (List.length det_bombs);
  let w4_s, w4 =
    wall (fun () ->
        Engines.Parallel.run_table2 ~policy ~bombs:det_bombs ~workers:4 ())
  in
  Printf.printf "  2 workers...\n%!";
  let w2_s, w2 =
    wall (fun () ->
        Engines.Parallel.run_table2 ~policy ~bombs:det_bombs ~workers:2 ())
  in
  Printf.printf "  sequential...\n%!";
  let seq_s, seq =
    wall (fun () -> Engines.Eval.run_table2 ~policy ~bombs:det_bombs ())
  in
  let identical = render seq = render w2 && render seq = render w4 in
  (* --- straggler: fleet watchdog vs a sequential run that stalls --- *)
  let straggler_cap = 120. in
  let straggler_timeout = 8. in
  Printf.printf "fleet straggler: 4 workers + %.0fs watchdog...\n%!"
    straggler_timeout;
  let straggler_bombs = [ Bombs.Catalog.find "srand_bomb" ] in
  let kills_before = Telemetry.Metrics.counter_value "fleet.watchdog_kills" in
  let fleet_straggler_s, _ =
    wall (fun () ->
        Engines.Parallel.run_table2 ~bombs:straggler_bombs ~workers:4
          ~task_timeout:straggler_timeout ())
  in
  let watchdog_kills =
    Telemetry.Metrics.counter_value "fleet.watchdog_kills" - kills_before
  in
  Printf.printf "  sequential (capped at %.0fs)...\n%!" straggler_cap;
  let seq_straggler_s, seq_censored =
    (* a stalled sequential run can't be interrupted from within (the
       supervisor swallows everything), so it runs in a forked child
       killed at the cap *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        Unix.close Unix.stdout;
        (try
           ignore (Engines.Eval.run_table2 ~bombs:straggler_bombs ());
           Unix._exit 0
         with _ -> Unix._exit 1)
    | pid ->
        let t0 = Unix.gettimeofday () in
        let rec poll () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              if Unix.gettimeofday () -. t0 > straggler_cap then begin
                Unix.kill pid Sys.sigkill;
                ignore (Unix.waitpid [] pid);
                (Unix.gettimeofday () -. t0, true)
              end
              else begin
                ignore (Unix.select [] [] [] 0.25);
                poll ()
              end
          | _ -> (Unix.gettimeofday () -. t0, false)
        in
        poll ()
  in
  (* --- queue: trivial-task latency under thousands of cells --- *)
  Printf.printf "fleet queue soak...\n%!";
  let queue_tasks = 5000 in
  let pool =
    Fleet.Pool.create
      ~config:{ Fleet.Pool.default_config with workers = 4 }
      (fun ~attempt:_ ~key:_ task -> task)
  in
  let queue_s, latencies =
    wall (fun () ->
        for i = 1 to queue_tasks do
          Fleet.Pool.submit pool ~key:(string_of_int i) ~task:"x" ()
        done;
        let results = Fleet.Pool.drain pool in
        List.map
          (fun (r : Fleet.Pool.result) -> r.r_done -. r.r_submitted)
          results)
  in
  Fleet.Pool.shutdown pool;
  let sorted = List.sort compare latencies in
  let arr = Array.of_list sorted in
  let pct p =
    if Array.length arr = 0 then 0.
    else
      arr.(min (Array.length arr - 1)
             (int_of_float (p *. float_of_int (Array.length arr))))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"cores\": %d,\n\
      \  \"table2\": {\"bombs\": %d, \"tools\": 4, \"budget\": %S,\n\
      \    \"sequential_wall_s\": %.3f, \"workers2_wall_s\": %.3f, \
       \"workers4_wall_s\": %.3f,\n\
      \    \"speedup_2w\": %.2f, \"speedup_4w\": %.2f, \
       \"identical_tables\": %b},\n\
      \  \"straggler\": {\"grid\": \"srand_bomb x 4 tools, no budget\",\n\
      \    \"sequential_wall_s\": %.3f, \"sequential_censored\": %b, \
       \"cap_s\": %.0f,\n\
      \    \"fleet4_wall_s\": %.3f, \"task_timeout_s\": %.0f, \
       \"watchdog_kills\": %d, \"speedup\": %.2f},\n\
      \  \"queue\": {\"tasks\": %d, \"workers\": 4, \"wall_s\": %.3f, \
       \"throughput_per_s\": %.0f,\n\
      \    \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}}\n\
       }\n"
      cores (List.length det_bombs) budget_spec seq_s w2_s w4_s
      (seq_s /. w2_s) (seq_s /. w4_s) identical seq_straggler_s seq_censored
      straggler_cap fleet_straggler_s straggler_timeout watchdog_kills
      (seq_straggler_s /. fleet_straggler_s)
      queue_tasks queue_s
      (float_of_int queue_tasks /. queue_s)
      (1e3 *. pct 0.50) (1e3 *. pct 0.95) (1e3 *. pct 0.99)
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "table2 (budgeted, %d bombs): seq %.1fs, 2w %.1fs (%.2fx), 4w %.1fs \
     (%.2fx), identical: %b\n"
    (List.length det_bombs) seq_s w2_s (seq_s /. w2_s) w4_s (seq_s /. w4_s)
    identical;
  Printf.printf
    "straggler: seq %.1fs%s, fleet-4 + watchdog %.1fs (%.1fx, %d kills)\n"
    seq_straggler_s
    (if seq_censored then " (censored at cap)" else "")
    fleet_straggler_s
    (seq_straggler_s /. fleet_straggler_s)
    watchdog_kills;
  Printf.printf
    "queue: %d tasks in %.2fs (%.0f/s), latency p50 %.2f ms p99 %.2f ms\n"
    queue_tasks queue_s
    (float_of_int queue_tasks /. queue_s)
    (1e3 *. pct 0.50) (1e3 *. pct 0.99);
  print_endline "wrote BENCH_fleet.json"

(* ---------------- machine-readable observability report ----------- *)

(* the observability plane, measured where it could hurt:
   - piggyback: per-task cost of the snapshot lines workers ship on
     every reply — thousands of trivial tasks through the same pool
     geometry with snapshots off and on.
   - span merge: throughput of stitching per-worker span shards into
     one Chrome timeline (synthetic shards, so the number is the
     merger's, not the engines').
   - profiler: Cellprof.profiled around a warm cell, phases off (the
     disabled hot path that every fleet cell pays when --profile is
     not given... it isn't: profiled only wraps cells when --profile
     is set, so this bounds the flag's own cost) and phases on. *)
let obs_report () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* --- piggyback: echo pool, snapshots off vs on --- *)
  let tasks = 2000 in
  Printf.printf "obs piggyback: %d echo tasks, snapshots off...\n%!" tasks;
  let soak snapshots =
    let pool =
      Fleet.Pool.create
        ~config:{ Fleet.Pool.default_config with workers = 2; snapshots }
        (fun ~attempt:_ ~key:_ task ->
           (* move a counter so the shipped delta is never empty *)
           Telemetry.Metrics.incr
             (Telemetry.Metrics.counter "bench.obs.echo");
           task)
    in
    let s, _ =
      wall (fun () ->
          for i = 1 to tasks do
            Fleet.Pool.submit pool ~key:(string_of_int i) ~task:"x" ()
          done;
          Fleet.Pool.drain pool)
    in
    Fleet.Pool.shutdown pool;
    s
  in
  let off_s = soak false in
  Printf.printf "  snapshots on...\n%!";
  let on_s = soak true in
  let per_task_us = 1e6 *. (on_s -. off_s) /. float_of_int tasks in
  (* --- span merge throughput over synthetic shards --- *)
  let shards = 4 and lines = 2500 in
  Printf.printf "obs span merge: %d shards x %d spans...\n%!" shards lines;
  let base = "bench_obs_spans" in
  Fleet.Spans.remove_shards ~base;
  for slot = 0 to shards - 1 do
    let oc = open_out (Fleet.Spans.shard_path ~base slot) in
    for i = 0 to lines - 1 do
      Printf.fprintf oc
        "{\"id\": %d, \"parent\": null, \"name\": \"span%d\", \
         \"ts_us\": %d.0, \"dur_us\": 5.0}\n"
        i (i mod 7) (i * 10)
    done;
    close_out oc
  done;
  let merge_out = base ^ ".chrome.json" in
  let merge_s, report =
    wall (fun () -> Fleet.Spans.merge_chrome ~base ~out:merge_out ())
  in
  let merge_ok =
    report.Fleet.Spans.mr_spans = shards * lines
    && report.Fleet.Spans.mr_skipped = 0
    && Result.is_ok (Telemetry.Trace_check.validate_chrome_file merge_out)
  in
  (try Sys.remove merge_out with Sys_error _ -> ());
  (* --- Cellprof around a warm cell --- *)
  Printf.printf "obs profiler overhead (warm cell)...\n%!";
  let tool = Engines.Profile.Bap and b = bomb "time_bomb" in
  let cell () = ignore (Engines.Supervisor.run_cell tool b) in
  cell ();
  let reps = 5 in
  let time_reps f =
    let s, () = wall (fun () -> for _ = 1 to reps do f () done) in
    s /. float_of_int reps
  in
  let bare_s = time_reps cell in
  let off_prof_s =
    time_reps (fun () ->
        ignore (Engines.Cellprof.profiled ~key:"bench" (fun () ->
            Engines.Supervisor.run_cell tool b)))
  in
  let phases_s =
    time_reps (fun () ->
        ignore (Engines.Cellprof.profiled ~phases:true ~key:"bench"
                  (fun () -> Engines.Supervisor.run_cell tool b)))
  in
  let pct x = 100. *. (x -. bare_s) /. bare_s in
  let json =
    Printf.sprintf
      "{\n\
      \  \"piggyback\": {\"tasks\": %d, \"workers\": 2,\n\
      \    \"snapshots_off_wall_s\": %.3f, \"snapshots_on_wall_s\": %.3f,\n\
      \    \"overhead_us_per_task\": %.1f},\n\
      \  \"span_merge\": {\"shards\": %d, \"spans\": %d, \"wall_s\": %.3f,\n\
      \    \"spans_per_s\": %.0f, \"valid_chrome\": %b},\n\
      \  \"profiler\": {\"cell\": \"BAP/time_bomb\", \"reps\": %d, \
       \"bare_ms\": %.3f,\n\
      \    \"profiled_ms\": %.3f, \"profiled_overhead_pct\": %.1f,\n\
      \    \"phases_ms\": %.3f, \"phases_overhead_pct\": %.1f}\n\
       }\n"
      tasks off_s on_s per_task_us shards (shards * lines) merge_s
      (float_of_int (shards * lines) /. merge_s)
      merge_ok reps (1e3 *. bare_s) (1e3 *. off_prof_s) (pct off_prof_s)
      (1e3 *. phases_s) (pct phases_s)
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "piggyback: off %.2fs, on %.2fs -> %.1f us/task\n" off_s on_s per_task_us;
  Printf.printf "span merge: %d spans in %.3fs (%.0f/s), valid: %b\n"
    (shards * lines) merge_s
    (float_of_int (shards * lines) /. merge_s)
    merge_ok;
  Printf.printf
    "profiler: bare %.2f ms, profiled %+.1f%%, with phases %+.1f%%\n"
    (1e3 *. bare_s) (pct off_prof_s) (pct phases_s);
  print_endline "wrote BENCH_obs.json"

(* ---------------- machine-readable service-plane report ----------- *)

(* the serve daemon measured as a service: throughput and request
   latency with IPC chaos off and at the soak's fault rates, and the
   load-shedding behaviour of a deliberately overloaded queue *)
let serve_report () =
  let socket = "bench_serve.sock" in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  let fork_daemon ~workers ~max_queue ~rate () =
    rm socket;
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> (
        try
          Engines.Service.serve ~workers ~max_queue ~task_timeout:1.0
            ~respawns:4 ~breaker:8 ~chaos_seed:42L ~chaos_rate:rate ~socket
            ();
          Unix._exit 0
        with _ -> Unix._exit 1)
    | pid -> pid
  in
  let await () =
    let rec go tries =
      if tries = 0 then failwith "bench serve: daemon never became ready"
      else
        match Engines.Service.ping ~socket () with
        | Some _ -> ()
        | None ->
            ignore (Unix.select [] [] [] 0.05);
            go (tries - 1)
    in
    go 400
  in
  let grid =
    [ (Engines.Profile.Bap, "time_bomb");
      (Engines.Profile.Triton, "time_bomb");
      (Engines.Profile.Bap, "argvlen_bomb");
      (Engines.Profile.Triton, "argvlen_bomb") ]
  in
  let requests n =
    List.init n (fun i ->
        let tool, bomb = List.nth grid (i mod List.length grid) in
        let id =
          Printf.sprintf "r%03d/%s/%s" i (Engines.Profile.name tool) bomb
        in
        (id, Engines.Service.encode_request ~id ~tool ~bomb ()))
  in
  let n = 60 in
  let open Telemetry.Trace_check in
  let num j name =
    match Option.bind j (member name) with
    | Some (Num v) -> v
    | _ -> 0.
  in
  (* --- throughput + latency at each fault rate --- *)
  let measure rate =
    Printf.printf "serve: %d requests, 2 workers, fault rate %g...\n%!" n
      rate;
    let pid = fork_daemon ~workers:2 ~max_queue:10_000 ~rate () in
    await ();
    let t0 = Unix.gettimeofday () in
    let r = Engines.Service.submit_resilient ~socket (requests n) in
    let wall = Unix.gettimeofday () -. t0 in
    (* the daemon's own histogram: accept-to-reply per request *)
    let health = Option.bind (Engines.Service.health ~socket ()) parse_opt in
    let lat = Option.bind health (member "latency_ms") in
    let p50 = num lat "p50" and p95 = num lat "p95" in
    (try Engines.Service.drain ~socket () with _ -> ());
    ignore (Unix.waitpid [] pid);
    rm socket;
    if r.Engines.Service.sr_answered <> n then
      Printf.printf "  WARNING: only %d/%d answered\n%!"
        r.Engines.Service.sr_answered n;
    ( rate,
      float_of_int r.Engines.Service.sr_answered /. wall,
      p50, p95, wall,
      r.Engines.Service.sr_answered = n )
  in
  let runs = List.map measure [ 0.; 0.01; 0.05 ] in
  (* --- overload: 1 worker, a queue capped far below the offered load
     --- *)
  let overload_n = 100 and max_queue = 8 in
  Printf.printf "serve overload: %d requests into a queue of %d...\n%!"
    overload_n max_queue;
  let pid = fork_daemon ~workers:1 ~max_queue ~rate:0. () in
  await ();
  let shed = ref 0 and done_ = ref 0 and retry_hint = ref 0. in
  ignore
    (Engines.Service.submit ~socket
       ~on_line:(fun l ->
         match Engines.Service.status_of_line l with
         | Some "rejected" ->
             incr shed;
             let j = parse_opt l in
             retry_hint := Float.max !retry_hint (num j "retry_after_s")
         | Some "done" -> incr done_
         | _ -> ())
       (List.map snd (requests overload_n)));
  (try Engines.Service.drain ~socket () with _ -> ());
  ignore (Unix.waitpid [] pid);
  rm socket;
  let shed_rate = float_of_int !shed /. float_of_int overload_n in
  let run_json (rate, thr, p50, p95, wall, complete) =
    Printf.sprintf
      "    {\"fault_rate\": %g, \"throughput_per_s\": %.1f, \
       \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f}, \"wall_s\": %.3f, \
       \"all_answered\": %b}"
      rate thr p50 p95 wall complete
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"requests\": %d, \"workers\": 2,\n\
      \  \"chaos\": [\n%s\n  ],\n\
      \  \"overload\": {\"requests\": %d, \"workers\": 1, \
       \"max_queue\": %d,\n\
      \    \"shed\": %d, \"completed\": %d, \"shed_rate\": %.2f, \
       \"max_retry_after_s\": %.0f}\n\
       }\n"
      n
      (String.concat ",\n" (List.map run_json runs))
      overload_n max_queue !shed !done_ shed_rate !retry_hint
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (rate, thr, p50, p95, _, _) ->
       Printf.printf
         "serve @ fault rate %g: %.1f req/s, latency p50 %.2f ms p95 %.2f \
          ms\n"
         rate thr p50 p95)
    runs;
  Printf.printf
    "overload: %d/%d shed (rate %.2f, retry-after <= %.0fs), %d completed\n"
    !shed overload_n shed_rate !retry_hint !done_;
  print_endline "wrote BENCH_serve.json"

(* --- storage durability: sync-policy overhead per append, fsck
   verify throughput, repair success rate by injected fault class --- *)
let disk_report () =
  let rm p = try Sys.remove p with Sys_error _ -> () in
  let record i =
    let body =
      Printf.sprintf
        "{\"fp\":\"bench\",\"seq\":%d,\"key\":\"cell%03d\",\"cell\":\
         {\"grade\":\"ok\",\"pad\":\"%s\"}}"
        i i (String.make 40 'x')
    in
    Robust.Diskio.fnv64_hex body ^ " " ^ body ^ "\n"
  in
  (* 1. what each sync policy costs per journal append *)
  let appends = 500 in
  let policy_us (name, policy) =
    let path = "bench_diskio.jsonl" in
    rm path;
    let h = Robust.Diskio.open_append ~sync:policy path in
    let t0 = Unix.gettimeofday () in
    for i = 0 to appends - 1 do
      Robust.Diskio.append h (record i)
    done;
    Robust.Diskio.close h;
    let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int appends in
    rm path;
    (name, us)
  in
  let policies =
    List.map policy_us [ ("none", `None); ("flush", `Flush); ("fsync", `Fsync) ]
  in
  (* 2. fsck verify throughput over a large clean journal *)
  let n = 5000 in
  let fsck_path = "bench_fsck.jsonl" in
  rm fsck_path;
  let h = Robust.Diskio.open_append ~sync:`None fsck_path in
  for i = 0 to n - 1 do
    Robust.Diskio.append h (record i)
  done;
  Robust.Diskio.close h;
  let bytes = (Unix.stat fsck_path).Unix.st_size in
  let t0 = Unix.gettimeofday () in
  let reports = Engines.Fsck.scan [ fsck_path ] in
  let fsck_wall = Unix.gettimeofday () -. t0 in
  if Engines.Fsck.exit_code ~repair:false reports <> 0 then
    Printf.printf "  WARNING: clean bench journal did not verify clean\n%!";
  rm fsck_path;
  (* 3. repair success rate per fault class: damage a journal write
     sequence with one exactly-placed fault, fsck --repair it, and
     require the survivor to verify clean *)
  let hits = [ 1; 5; 14; 29 ] in
  let repair_trial fault hit =
    let path = "bench_repair.jsonl" in
    rm path;
    rm (path ^ ".tmp");
    let st =
      Robust.Chaos.disk_state ~seed:77L
        (Robust.Chaos.Disk_arms [ (fault, hit) ])
    in
    Robust.Diskio.set_fault_hook (Some (Robust.Chaos.disk_hook st));
    (match fault with
     | Robust.Chaos.Failed_rename ->
       (try Robust.Diskio.write_atomic ~path (record 0)
        with Sys_error _ -> ())
     | _ ->
       let h = Robust.Diskio.open_append path in
       for i = 0 to 29 do
         try Robust.Diskio.append h (record i)
         with Robust.Diskio.Full _ -> ()
       done;
       (try Robust.Diskio.close h with Robust.Diskio.Full _ -> ()));
    Robust.Diskio.set_fault_hook None;
    let targets =
      List.filter Sys.file_exists [ path; path ^ ".tmp" ]
    in
    ignore (Engines.Fsck.scan ~repair:true targets : Engines.Fsck.report list);
    let verify =
      Engines.Fsck.scan (List.filter Sys.file_exists [ path; path ^ ".tmp" ])
    in
    let clean = Engines.Fsck.exit_code ~repair:false verify = 0 in
    rm path;
    rm (path ^ ".tmp");
    clean
  in
  let repair =
    List.map
      (fun fault ->
         let ok =
           List.length (List.filter (repair_trial fault) hits)
         in
         (Robust.Chaos.disk_point_name fault, List.length hits, ok))
      Robust.Chaos.all_disk_points
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"sync_policy_us_per_append\": {%s},\n\
      \  \"fsck_verify\": {\"records\": %d, \"bytes\": %d, \"wall_s\": \
       %.4f, \"records_per_s\": %.0f, \"mb_per_s\": %.1f},\n\
      \  \"repair_by_fault\": [\n%s\n  ]\n\
       }\n"
      (String.concat ", "
         (List.map (fun (n, us) -> Printf.sprintf "\"%s\": %.2f" n us)
            policies))
      n bytes fsck_wall
      (float_of_int n /. fsck_wall)
      (float_of_int bytes /. 1048576. /. fsck_wall)
      (String.concat ",\n"
         (List.map
            (fun (name, trials, ok) ->
               Printf.sprintf
                 "    {\"fault\": \"%s\", \"trials\": %d, \"repaired\": \
                  %d, \"success_rate\": %.2f}"
                 name trials ok
                 (float_of_int ok /. float_of_int trials))
            repair))
  in
  let oc = open_out "BENCH_disk.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (name, us) ->
       Printf.printf "diskio append (%-5s): %8.2f us/append\n" name us)
    policies;
  Printf.printf "fsck verify: %d records (%d bytes) in %.3fs = %.0f rec/s\n"
    n bytes fsck_wall
    (float_of_int n /. fsck_wall);
  List.iter
    (fun (name, trials, ok) ->
       Printf.printf "repair %-13s: %d/%d trials recovered clean\n" name ok
         trials)
    repair;
  print_endline "wrote BENCH_disk.json"

let () =
  (* `bench --solver-report` / `--robust-report` / `--trace-report`
     skip the Bechamel timing loop and only regenerate the
     machine-readable reports *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--solver-report" then begin
    solver_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--robust-report" then begin
    robust_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--trace-report" then begin
    trace_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--fleet-report" then begin
    fleet_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--obs-report" then begin
    obs_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--serve-report" then begin
    serve_report ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--disk-report" then begin
    disk_report ();
    exit 0
  end;
  let cfg = Benchmark.cfg ~limit:6 ~quota:(Time.second 1.5) () in
  let instances = Instance.[ monotonic_clock ] in
  Printf.printf "%-36s %14s %10s\n" "benchmark" "time/run" "runs";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       Hashtbl.iter
         (fun name (b : Benchmark.t) ->
            let last = b.lr.(Array.length b.lr - 1) in
            let runs = Measurement_raw.run last in
            let time =
              Measurement_raw.get
                ~label:(Measure.label Instance.monotonic_clock) last
            in
            Printf.printf "%-36s %11.3f ms %10.0f\n" name
              (time /. runs /. 1e6) runs)
         results)
    benchmarks;
  solver_report ();
  robust_report ();
  trace_report ()
