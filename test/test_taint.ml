(** Taint-engine tests: source propagation through registers, memory,
    the stack and flags; strong updates; the kernel-object policy
    matrix (files / pipes / sockets); per-thread register shadows. *)

module Dsl = Asm.Ast.Dsl

let trace_bomb ?(argv1 = "5") name =
  let b = Bombs.Catalog.find name in
  let config = Bombs.Common.config_for b argv1 in
  let t = Trace.record ~config (Bombs.Catalog.image b) in
  let addr, len =
    match Trace.argv_region t 1 with
    | Some r -> r
    | None -> failwith "trace has no argv.(1)"
  in
  (t, [ (addr, len - 1) ])

let analyze ?policy name =
  let t, sources = trace_bomb name in
  Taint.analyze ?policy ~sources t

let stack_carries_taint () =
  (* push/pop of the input byte keeps it tainted: the final compare is
     a tainted branch *)
  let r = analyze "stack_bomb" in
  Alcotest.(check bool) "has tainted branch" true
    (List.length r.tainted_branch > 0)

let file_policy_matrix () =
  let r_pin = analyze ~policy:Taint.pin_policy "file_bomb" in
  let r_full = analyze ~policy:Taint.full_policy "file_bomb" in
  (* pin: the strcmp on re-read bytes is untainted; taint died at the
     kernel *)
  Alcotest.(check bool) "pin loses at kernel" true
    (List.length r_pin.kernel_writes > 0);
  (* full: more tainted instructions (the comparison after re-read) *)
  Alcotest.(check bool) "full tracks more" true
    (r_full.tainted_count > r_pin.tainted_count)

let pipe_policy_matrix () =
  let r_pin = analyze ~policy:Taint.pin_policy "syscovert_bomb" in
  let r_full = analyze ~policy:Taint.full_policy "syscovert_bomb" in
  Alcotest.(check bool) "pipe round-trip tracked only by full policy"
    true
    (r_full.tainted_count > r_pin.tainted_count)

let untainted_program_is_clean () =
  let r = analyze "time_bomb" in
  Alcotest.(check int) "no tainted instructions" 0 r.tainted_count;
  Alcotest.(check int) "no tainted branches" 0
    (List.length r.tainted_branch)

let overwrite_clears_taint () =
  (* mov rbx, argv; mov rbx, 0; branch on rbx must be untainted *)
  let open Dsl in
  let prog =
    Asm.Ast.obj
      [ label "main";
        mov rbx (mreg ~disp:8 Isa.Reg.RSI);
        movzx rcx ~sw:Isa.Insn.W8 (mreg Isa.Reg.RBX);  (* tainted *)
        mov rcx (imm 0);                                (* strong update *)
        test rcx rcx;
        je ".z";
        mov rax (imm 1);
        ret;
        label ".z";
        mov rax (imm 0);
        ret ]
  in
  let image = Libc.Runtime.link_with_libs prog in
  let config = { Vm.Machine.default_config with argv = [ "t"; "abc" ] } in
  let t = Trace.record ~config image in
  let addr, len =
    match Trace.argv_region t 1 with
    | Some r -> r
    | None -> failwith "trace has no argv.(1)"
  in
  let r = Taint.analyze ~sources:[ (addr, len - 1) ] t in
  Alcotest.(check int) "no tainted branch after overwrite" 0
    (List.length r.tainted_branch)

let flags_propagate () =
  (* cmp on tainted value; the following jcc is a tainted branch with
     the right direction *)
  let open Dsl in
  let prog =
    Asm.Ast.obj
      [ label "main";
        mov rbx (mreg ~disp:8 Isa.Reg.RSI);
        movzx rcx ~sw:Isa.Insn.W8 (mreg Isa.Reg.RBX);
        cmp rcx (imm (Char.code 'a'));
        je ".eq";
        mov rax (imm 1);
        ret;
        label ".eq";
        mov rax (imm 0);
        ret ]
  in
  let image = Libc.Runtime.link_with_libs prog in
  let config = { Vm.Machine.default_config with argv = [ "t"; "abc" ] } in
  let t = Trace.record ~config image in
  let addr, len =
    match Trace.argv_region t 1 with
    | Some r -> r
    | None -> failwith "trace has no argv.(1)"
  in
  let r = Taint.analyze ~sources:[ (addr, len - 1) ] t in
  match r.tainted_branch with
  | [ (_, taken) ] -> Alcotest.(check bool) "je on 'a' taken" true taken
  | l -> Alcotest.failf "expected 1 tainted branch, got %d" (List.length l)

let indirect_jump_flagged () =
  let t, sources = trace_bomb ~argv1:"0" "jump_bomb" in
  let r = Taint.analyze ~sources t in
  Alcotest.(check bool) "tainted jump recorded" true
    (List.length r.tainted_jumps > 0)

let fig3_monotone () =
  let count name =
    let t, sources = trace_bomb ~argv1:"77" name in
    (Taint.analyze ~sources t).tainted_count
  in
  Alcotest.(check bool) "printf adds tainted instructions" true
    (count "fig3_print" > count "fig3_noprint")

let () =
  Alcotest.run "taint"
    [ ("propagation",
       [ Alcotest.test_case "stack" `Quick stack_carries_taint;
         Alcotest.test_case "strong update" `Quick overwrite_clears_taint;
         Alcotest.test_case "flags" `Quick flags_propagate;
         Alcotest.test_case "indirect jump" `Quick indirect_jump_flagged;
         Alcotest.test_case "clean program" `Quick untainted_program_is_clean ]);
      ("kernel-policy",
       [ Alcotest.test_case "files" `Quick file_policy_matrix;
         Alcotest.test_case "pipes" `Quick pipe_policy_matrix ]);
      ("fig3", [ Alcotest.test_case "monotone" `Quick fig3_monotone ]) ]
