(** Trace-store tests: binary codec round-trip through a store file,
    checkpoint-replay determinism, corrupt/torn store rejection and
    recovery, truncation accounting, the cursor/index API, and the
    acceptance gates — Table II and Figure 3 byte-identical with a
    store, and [--explain] over an existing store running zero VM
    steps with the same stage attribution. *)

let bomb name = Bombs.Catalog.find name

let config_of ?(argv1 = "5") name =
  let b = bomb name in
  Bombs.Common.config_for b argv1

(* every test runs with an explicit store-dir override (or none) and
   restores the ambient setting, so suites compose with TRACE_DIR *)
let with_store_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trace_test_%d_%s" (Unix.getpid ()) name)
  in
  let rm () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  rm ();
  let saved = Trace.current_store_dir () in
  Fun.protect ~finally:(fun () -> Trace.set_store_dir saved; rm ())
    (fun () -> f dir)

let store_file dir =
  match Sys.readdir dir with
  | [| f |] -> Filename.concat dir f
  | files -> Alcotest.failf "expected 1 store file, found %d" (Array.length files)

let events_of t = Array.init (Trace.length t) (fun i -> Trace.get t i)

let check_events_equal what (a : Vm.Event.t array) (b : Vm.Event.t array) =
  Alcotest.(check int) (what ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i ev ->
       (* structural compare, not (=): xmm state is float arrays *)
       if compare ev b.(i) <> 0 then
         Alcotest.failf "%s: event %d differs:\n  %s\n  %s" what i
           (Format.asprintf "%a" Trace.pp_event ev)
           (Format.asprintf "%a" Trace.pp_event b.(i)))
    a

(* ------------------------------------------------------------------ *)
(* Codec round-trip                                                    *)
(* ------------------------------------------------------------------ *)

(* exec deltas/keyframes, syscalls with every effect kind, signal
   frames, multi-digit argv: record through the store and reopen; the
   decoded stream must equal the in-memory recording exactly *)
let codec_roundtrip () =
  List.iter
    (fun (name, argv1) ->
       let config = config_of ~argv1 name in
       let image = Bombs.Catalog.image (bomb name) in
       Trace.set_store_dir None;
       let mem_t = Trace.record ~config image in
       with_store_dir ("codec_" ^ name) @@ fun dir ->
       Trace.set_store_dir (Some dir);
       let written = Trace.record ~config image in
       let reopened = Trace.record ~config image in
       Alcotest.(check bool) (name ^ ": second record is store-backed") true
         (Trace.store_backed reopened);
       check_events_equal (name ^ " write") (events_of mem_t)
         (events_of written);
       check_events_equal (name ^ " reopen") (events_of mem_t)
         (events_of reopened);
       Alcotest.(check int) (name ^ ": exec_count") (Trace.exec_count mem_t)
         (Trace.exec_count reopened);
       let r_mem = mem_t.Trace.result and r_st = reopened.Trace.result in
       Alcotest.(check bool) (name ^ ": run result survives") true
         (r_mem.exit_code = r_st.exit_code
          && r_mem.stdout = r_st.stdout
          && r_mem.stderr = r_st.stderr
          && r_mem.steps = r_st.steps
          && r_mem.fault = r_st.fault);
       Alcotest.(check bool) (name ^ ": argv layout survives") true
         (mem_t.Trace.argv_layout = reopened.Trace.argv_layout))
    [ ("stack_bomb", "K"); ("fork_bomb", "33"); ("exception_bomb", "7");
      ("sha1_bomb", "abc") ]

(* ------------------------------------------------------------------ *)
(* Checkpoint replay                                                   *)
(* ------------------------------------------------------------------ *)

let mem_equal (a : Vm.Mem.t) (b : Vm.Mem.t) =
  let keys (m : Vm.Mem.t) =
    Hashtbl.fold (fun k _ acc -> k :: acc) m.pages []
  in
  let zero = String.make Vm.Mem.page_size '\000' in
  let get (m : Vm.Mem.t) idx =
    match Hashtbl.find_opt m.pages idx with
    | Some p -> Bytes.to_string p
    | None -> zero
  in
  List.for_all
    (fun idx -> String.equal (get a idx) (get b idx))
    (List.sort_uniq compare (keys a @ keys b))

(* resuming from every checkpoint must reconstruct the same memory a
   straight replay from event 0 does — at the checkpoint itself and a
   few events into the following window *)
let checkpoint_replay_deterministic () =
  let config = config_of ~argv1:"abc" "sha1_bomb" in
  let t =
    Trace.record ~checkpoint_interval:64 ~config
      (Bombs.Catalog.image (bomb "sha1_bomb"))
  in
  let cks = Trace.checkpoints t in
  Alcotest.(check bool) "trace long enough to checkpoint" true
    (Array.length cks >= 3);
  Array.iter
    (fun (ck : Vm.Event.checkpoint) ->
       List.iter
         (fun pos ->
            if pos <= Trace.length t then begin
              let fast, base = Trace.mem_before t pos in
              let slow, base0 = Trace.mem_before ~use_checkpoints:false t pos in
              Alcotest.(check int) "straight replay starts at 0" 0 base0;
              Alcotest.(check bool)
                (Printf.sprintf "checkpoint used at pos %d" pos) true
                (base > 0 || pos < 64);
              if not (mem_equal fast slow) then
                Alcotest.failf
                  "memory diverges at pos %d (checkpoint base %d)" pos base
            end)
         [ ck.ck_events; ck.ck_events + 3; ck.ck_events + 17 ])
    cks

(* ------------------------------------------------------------------ *)
(* Corruption                                                          *)
(* ------------------------------------------------------------------ *)

let patch_file path f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let b = f b in
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let corrupt_store_rejected () =
  with_store_dir "corrupt" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let config = config_of "stack_bomb" in
  let image = Bombs.Catalog.image (bomb "stack_bomb") in
  let original = Trace.record ~config image in
  let path = store_file dir in
  (* flip one payload byte: open must raise, record must re-record *)
  patch_file path (fun b ->
      Bytes.set b 100 (Char.chr (Char.code (Bytes.get b 100) lxor 0xFF));
      b);
  (try
     ignore (Trace.Store.open_file path);
     Alcotest.fail "open_file accepted a corrupt store"
   with Trace.Store.Corrupt _ -> ());
  let before = Telemetry.Metrics.counter_value "trace.store.corrupt" in
  let recovered = Trace.record ~config image in
  Alcotest.(check int) "corruption counted" (before + 1)
    (Telemetry.Metrics.counter_value "trace.store.corrupt");
  check_events_equal "recovered by re-recording" (events_of original)
    (events_of recovered);
  (* the rewritten store must be valid again *)
  ignore (Trace.Store.open_file (store_file dir))

let torn_store_rejected () =
  with_store_dir "torn" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let config = config_of "stack_bomb" in
  let image = Bombs.Catalog.image (bomb "stack_bomb") in
  let original = Trace.record ~config image in
  let path = store_file dir in
  patch_file path (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
  (try
     ignore (Trace.Store.open_file path);
     Alcotest.fail "open_file accepted a torn store"
   with Trace.Store.Corrupt _ -> ());
  let recovered = Trace.record ~config image in
  check_events_equal "recovered from torn store" (events_of original)
    (events_of recovered)

(* ------------------------------------------------------------------ *)
(* Truncation, argv_region, cursor API                                 *)
(* ------------------------------------------------------------------ *)

let truncation_counted () =
  let config = config_of "stack_bomb" in
  let image = Bombs.Catalog.image (bomb "stack_bomb") in
  let full = Trace.record ~config image in
  Alcotest.(check bool) "untruncated by default" false full.Trace.truncated;
  let before = Telemetry.Metrics.counter_value "trace.truncated" in
  let t = Trace.record ~max_events:10 ~config image in
  Alcotest.(check int) "capped length" 10 (Trace.length t);
  Alcotest.(check bool) "flagged" true t.Trace.truncated;
  Alcotest.(check int) "counted once" (before + 1)
    (Telemetry.Metrics.counter_value "trace.truncated")

let argv_region_total () =
  let t = Trace.record ~config:(config_of ~argv1:"xyz" "stack_bomb")
      (Bombs.Catalog.image (bomb "stack_bomb"))
  in
  (match Trace.argv_region t 1 with
   | Some (_, len) -> Alcotest.(check int) "argv1 length incl NUL" 4 len
   | None -> Alcotest.fail "argv.(1) missing");
  Alcotest.(check bool) "argv.(0) present" true
    (Trace.argv_region t 0 <> None);
  Alcotest.(check (option (pair int64 int))) "out of range is None" None
    (Trace.argv_region t 7);
  Alcotest.(check (option (pair int64 int))) "negative is None" None
    (Trace.argv_region t (-1))

let cursor_and_index () =
  with_store_dir "cursor" @@ fun dir ->
  let config = config_of ~argv1:"33" "fork_bomb" in
  let image = Bombs.Catalog.image (bomb "fork_bomb") in
  Trace.set_store_dir None;
  let m = Trace.record ~config image in
  Trace.set_store_dir (Some dir);
  ignore (Trace.record ~config image);
  let s = Trace.record ~config image in
  Alcotest.(check bool) "store-backed" true (Trace.store_backed s);
  (* random-access seeks against the in-memory truth *)
  let n = Trace.length m in
  List.iter
    (fun i ->
       let i = ((i * 37) + 11) mod n in
       if compare (Trace.get m i) (Trace.get s i) <> 0 then
         Alcotest.failf "seek to %d differs" i)
    (List.init 24 Fun.id);
  (* index walks agree with scans *)
  let execs_m = Trace.execs_of_tid m 1 and execs_s = Trace.execs_of_tid s 1 in
  Alcotest.(check int) "execs_of_tid count" (List.length execs_m)
    (List.length execs_s);
  Alcotest.(check bool) "execs_of_tid covers the execs" true
    (List.length execs_m = Trace.exec_count m);
  List.iter2
    (fun (a : Vm.Event.exec) (b : Vm.Event.exec) ->
       if compare a b <> 0 then Alcotest.fail "execs_of_tid event differs")
    execs_m execs_s;
  Alcotest.(check int) "no such tid" 0
    (List.length (Trace.execs_of_tid s 99));
  (* positional queries *)
  let first_sys name = Trace.next_syscall s ~from:0 name in
  Alcotest.(check bool) "fork syscall indexed" true (first_sys "fork" <> None);
  Alcotest.(check (option int)) "absent syscall" None (first_sys "openat");
  (match Trace.get m 5 with
   | Vm.Event.Exec e ->
     Alcotest.(check (option int)) "next_exec_at agrees"
       (Trace.next_exec_at m ~from:0 e.pc)
       (Trace.next_exec_at s ~from:0 e.pc)
   | _ -> ());
  (* stateful cursor *)
  let c = Trace.cursor ~at:3 s in
  (match Trace.next c with
   | Some ev -> Alcotest.(check bool) "cursor next = get 3" true
                  (compare ev (Trace.get m 3) = 0)
   | None -> Alcotest.fail "cursor exhausted early");
  Alcotest.(check int) "cursor advanced" 4 (Trace.pos c)

let taint_hint_persists () =
  with_store_dir "hint" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let config = config_of ~argv1:"33" "fork_bomb" in
  let image = Bombs.Catalog.image (bomb "fork_bomb") in
  let t = Trace.record ~config image in
  Alcotest.(check bool) "no hint before analysis" true
    (Trace.taint_hint t = None);
  let sources =
    match Trace.argv_region t 1 with
    | Some (a, len) -> [ (a, len - 1) ]
    | None -> Alcotest.fail "no argv"
  in
  let r = Taint.analyze ~sources t in
  Alcotest.(check bool) "analysis found taint" true (r.tainted_count > 0);
  (* a later open of the same store sees the persisted summary *)
  let t2 = Trace.record ~config image in
  match Trace.taint_hint t2 with
  | None -> Alcotest.fail "hint not persisted"
  | Some h ->
    Alcotest.(check int) "tainted count persisted" r.tainted_count
      (Array.length h.th_tainted);
    Alcotest.(check int) "branch count persisted"
      (List.length r.tainted_branch)
      (Array.length h.th_branches);
    Alcotest.(check bool) "first taint consistent" true
      (h.th_first = h.th_tainted.(0))

(* ------------------------------------------------------------------ *)
(* Acceptance gates                                                    *)
(* ------------------------------------------------------------------ *)

let table2_byte_identical () =
  let tools = [ Engines.Profile.Bap; Engines.Profile.Triton ] in
  let bombs = List.map bomb [ "time_bomb"; "stack_bomb"; "argvlen_bomb" ] in
  let render () =
    Engines.Eval.render_table2 (Engines.Eval.run_table2 ~tools ~bombs ())
  in
  Trace.set_store_dir None;
  let fresh = render () in
  with_store_dir "table2" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let writing = render () in
  let replaying = render () in
  Alcotest.(check string) "store-writing run identical" fresh writing;
  Alcotest.(check string) "store-replaying run identical" fresh replaying

let fig3_byte_identical () =
  Trace.set_store_dir None;
  let fresh = Engines.Eval.run_fig3 () in
  with_store_dir "fig3" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let writing = Engines.Eval.run_fig3 () in
  let replaying = Engines.Eval.run_fig3 () in
  List.iter
    (fun (what, (r : Engines.Eval.fig3_result)) ->
       Alcotest.(check (pair int int)) (what ^ ": tainted counts")
         (fresh.noprint_tainted, fresh.print_tainted)
         (r.noprint_tainted, r.print_tainted);
       Alcotest.(check (pair int int)) (what ^ ": branch counts")
         (fresh.noprint_branches, fresh.print_branches)
         (r.noprint_branches, r.print_branches);
       Alcotest.(check (pair int int)) (what ^ ": direct counts")
         (fresh.noprint_tainted_direct, fresh.print_tainted_direct)
         (r.noprint_tainted_direct, r.print_tainted_direct))
    [ ("writing", writing); ("replaying", replaying) ]

(* the tentpole gate: an --explain over an existing store re-executes
   nothing on the VM (asserted via the vm.* counters, which
   Explain.run resets per invocation) yet attributes the same stage *)
let explain_zero_vm () =
  with_store_dir "explain" @@ fun dir ->
  Trace.set_store_dir (Some dir);
  let b = bomb "time_bomb" in
  let r1 = Engines.Explain.run Engines.Profile.Triton b in
  let cold_steps = Telemetry.Metrics.counter_value "vm.steps" in
  Alcotest.(check bool) "cold run executed the VM" true (cold_steps > 0);
  let r2 = Engines.Explain.run Engines.Profile.Triton b in
  Alcotest.(check int) "warm run: zero VM steps" 0
    (Telemetry.Metrics.counter_value "vm.steps");
  Alcotest.(check int) "warm run: zero VM syscalls" 0
    (Telemetry.Metrics.counter_value "vm.syscalls");
  Alcotest.(check bool) "stores were opened" true
    (Telemetry.Metrics.counter_value "trace.store.opened" > 0);
  Alcotest.(check string) "same stage attribution"
    (match r1.stage with Some s -> Concolic.Error.show_stage s | None -> "-")
    (match r2.stage with Some s -> Concolic.Error.show_stage s | None -> "-");
  Alcotest.(check string) "same cell"
    (Concolic.Error.cell_symbol r1.graded.cell)
    (Concolic.Error.cell_symbol r2.graded.cell)

let () =
  Alcotest.run "trace"
    [ ("store",
       [ Alcotest.test_case "codec round-trip" `Quick codec_roundtrip;
         Alcotest.test_case "corrupt rejected" `Quick corrupt_store_rejected;
         Alcotest.test_case "torn rejected" `Quick torn_store_rejected;
         Alcotest.test_case "taint hint persists" `Quick taint_hint_persists ]);
      ("checkpoints",
       [ Alcotest.test_case "replay deterministic" `Quick
           checkpoint_replay_deterministic ]);
      ("cursor",
       [ Alcotest.test_case "seek and index" `Quick cursor_and_index;
         Alcotest.test_case "argv_region total" `Quick argv_region_total;
         Alcotest.test_case "truncation counted" `Quick truncation_counted ]);
      ("acceptance",
       [ Alcotest.test_case "table2 byte-identical" `Quick
           table2_byte_identical;
         Alcotest.test_case "fig3 byte-identical" `Quick fig3_byte_identical;
         Alcotest.test_case "explain zero VM" `Quick explain_zero_vm ]) ]
