(** Differential-fuzzing subsystem tests.

    The [smoke] suite is the CI budget: a small fixed number of cases
    per oracle (overridable via [FUZZ_SEED] / [FUZZ_BUDGET]), also
    runnable alone through the [@fuzz-smoke] dune alias.  Long
    campaigns live in [bin/fuzz.ml]. *)

let seed () = Difftest.Harness.seed_from_env 1

let budget n = Difftest.Harness.budget_from_env n

let check_clean oracle n () =
  let r = Difftest.Harness.run ~seed:(seed ()) ~budget:(budget n) oracle in
  match r.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: %d/%d cases failed; first: %a" oracle
      (List.length r.failures) r.runs Difftest.Harness.pp_failure f

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let corpus_dir = "corpus"

let corpus_entries () =
  let entries = Difftest.Corpus.load_dir corpus_dir in
  Alcotest.(check bool) "corpus is not empty" true (entries <> []);
  List.map
    (function
      | Ok e -> e
      | Error msg -> Alcotest.failf "corpus parse error: %s" msg)
    entries

let corpus_replays () =
  List.iter
    (fun (e : Difftest.Corpus.entry) ->
       match Difftest.Corpus.replay e with
       | Ok () -> ()
       | Error msg ->
         Alcotest.failf "%s regressed: %s" (Difftest.Corpus.filename e) msg)
    (corpus_entries ())

(* a corpus case must regenerate byte-identically: same seed, same
   rendered case text, same verdict — twice in one process *)
let corpus_deterministic () =
  List.iter
    (fun (e : Difftest.Corpus.entry) ->
       let r1, text1 = Difftest.Harness.run_case e.oracle e.seed in
       let r2, text2 = Difftest.Harness.run_case e.oracle e.seed in
       Alcotest.(check string)
         (Difftest.Corpus.filename e ^ " rendering") text1 text2;
       Alcotest.(check bool)
         (Difftest.Corpus.filename e ^ " verdict") true (r1 = r2))
    (corpus_entries ())

let corpus_roundtrip () =
  let e =
    { Difftest.Corpus.oracle = "vmir"; seed = 123456;
      note = Some "first line\nsecond line" }
  in
  match Difftest.Corpus.parse (Difftest.Corpus.render e) with
  | Ok e' -> Alcotest.(check bool) "roundtrip" true (e = e')
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Mutant sanity: the oracle must have teeth                           *)
(* ------------------------------------------------------------------ *)

let mutant_is_caught () =
  let r =
    Difftest.Harness.run ~simplify:Difftest.Mutant.bad_simplify
      ~seed:(seed ()) ~budget:(budget 150) "blast"
  in
  match r.failures with
  | [] -> Alcotest.failf "broken simplifier survived %d blast cases" r.runs
  | f :: _ ->
    Alcotest.(check bool) "failure was shrunk" true (f.shrunk <> None);
    (* shrinking must not grow the counterexample *)
    Alcotest.(check bool) "shrunk is no larger" true
      (match f.shrunk with
       | Some s -> String.length s <= String.length f.rendered
       | None -> false)

(* the same campaign must find the same first failure twice *)
let mutant_deterministic () =
  let run () =
    Difftest.Harness.run ~simplify:Difftest.Mutant.bad_simplify
      ~seed:42 ~budget:(budget 150) "blast"
  in
  let r1 = run () and r2 = run () in
  let sig_of (r : Difftest.Harness.report) =
    List.map
      (fun (f : Difftest.Harness.failure) -> (f.seed, f.rendered, f.shrunk))
      r.failures
  in
  Alcotest.(check bool) "same failures" true (sig_of r1 = sig_of r2)

let () =
  Alcotest.run "difftest"
    [ ("smoke",
       [ Alcotest.test_case "blast vs eval" `Quick (check_clean "blast" 60);
         Alcotest.test_case "session vs one-shot" `Quick
           (check_clean "session" 25);
         Alcotest.test_case "vm vs ir" `Quick (check_clean "vmir" 50);
         Alcotest.test_case "concolic flip" `Quick (check_clean "flip" 6) ]);
      ("corpus",
       [ Alcotest.test_case "replays clean" `Quick corpus_replays;
         Alcotest.test_case "byte-deterministic" `Quick corpus_deterministic;
         Alcotest.test_case "entry roundtrip" `Quick corpus_roundtrip ]);
      ("mutant",
       [ Alcotest.test_case "broken simplifier is caught" `Quick
           mutant_is_caught;
         Alcotest.test_case "campaign is deterministic" `Quick
           mutant_deterministic ]) ]
