(** SMT substrate tests: SAT solver basics, bit-blaster vs evaluator
    agreement (property-based), simplifier soundness, solver outcomes
    on hand-picked constraints, and the FP search fallback. *)

open Smt

(* ---------------- SAT ---------------- *)

let sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ Sat.mk_lit a true; Sat.mk_lit b true ];
  Sat.add_clause s [ Sat.mk_lit a false ];
  (match Sat.solve s with
   | Sat -> ()
   | _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "a false" false (Sat.model_value s a);
  Alcotest.(check bool) "b true" true (Sat.model_value s b)

let sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [ Sat.mk_lit a true ];
  Sat.add_clause s [ Sat.mk_lit a false ];
  match Sat.solve s with
  | Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

(* pigeonhole PHP(4,3): unsat, requires real conflict analysis *)
let sat_pigeonhole () =
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 3 do
    Sat.add_clause s (List.init 3 (fun h -> Sat.mk_lit v.(p).(h) true))
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Sat.add_clause s
          [ Sat.mk_lit v.(p1).(h) false; Sat.mk_lit v.(p2).(h) false ]
      done
    done
  done;
  match Sat.solve s with
  | Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole should be unsat"

(* random 3-SAT instances: solver's model must satisfy all clauses *)
let sat_random_models () =
  let rng = ref 123456789 in
  let rand n = rng := (!rng * 1103515245 + 12345) land 0x3fffffff; !rng mod n in
  for _case = 1 to 50 do
    let s = Sat.create () in
    let nv = 8 + rand 10 in
    let vars = Array.init nv (fun _ -> Sat.new_var s) in
    let clauses = ref [] in
    for _c = 1 to 3 * nv do
      let clause =
        List.init 3 (fun _ -> Sat.mk_lit vars.(rand nv) (rand 2 = 0))
      in
      clauses := clause :: !clauses;
      Sat.add_clause s clause
    done;
    match Sat.solve s with
    | Sat ->
      List.iter
        (fun clause ->
           let ok =
             List.exists
               (fun l ->
                  let v = Sat.model_value s (Sat.lit_var l) in
                  if Sat.lit_sign l then v else not v)
               clause
           in
           if not ok then Alcotest.fail "model does not satisfy clause")
        !clauses
    | Unsat -> () (* random instances may be unsat; fine *)
    | Unknown -> Alcotest.fail "unexpected unknown"
  done

(* ---------------- expr generators ---------------- *)

let gen_expr_with_var : (Expr.t * int) QCheck2.Gen.t =
  (* returns (expr of given width, depth); one variable "x" of width 16 *)
  let open QCheck2.Gen in
  let leaf w =
    oneof
      [ map (fun v -> Expr.const ~width:w (Int64.of_int v)) (int_bound 0xffff);
        (if w = 16 then return (Expr.var ~width:16 "x")
         else return (Expr.const ~width:w 3L)) ]
  in
  let rec build w depth =
    if depth = 0 then leaf w
    else
      let sub = build w (depth - 1) in
      oneof
        [ leaf w;
          map2 (fun op (a, b) -> Expr.Binop (op, a, b))
            (oneofl
               [ Expr.Add; Sub; Mul; And; Or; Xor; Shl; Lshr; Ashr; Udiv;
                 Urem; Sdiv; Srem ])
            (pair sub sub);
          map (fun a -> Expr.Unop (Not, a)) sub;
          map (fun a -> Expr.Unop (Neg, a)) sub;
          map3 (fun c a b -> Expr.ite c a b)
            (map2 (fun op (a, b) -> Expr.Cmp (op, a, b))
               (oneofl [ Expr.Eq; Ult; Ule; Slt; Sle ])
               (pair sub sub))
            sub sub ]
  in
  map (fun e -> (e, 3)) (build 16 3)

(* blast "e == value-under-env" and check SAT; i.e. the circuit agrees
   with the evaluator *)
let blast_agrees_with_eval =
  QCheck2.Test.make ~count:200 ~name:"bit-blaster agrees with evaluator"
    gen_expr_with_var
    (fun (e, _) ->
       let env = Eval.env_of_list [ ("x", 0xABCDL) ] in
       let expected = Eval.eval env e in
       let w = Expr.width_of e in
       let c =
         Expr.and_
           (Expr.eq e (Expr.const ~width:w expected))
           (Expr.eq (Expr.var ~width:16 "x") (Expr.const ~width:16 0xABCDL))
       in
       let ctx = Blast.create () in
       Blast.assert_true ctx c;
       match Blast.solve ctx with Sat -> true | _ -> false)

let simplify_sound =
  QCheck2.Test.make ~count:300 ~name:"simplify preserves evaluation"
    gen_expr_with_var
    (fun (e, _) ->
       let env = Eval.env_of_list [ ("x", 0x1234L) ] in
       let before = Eval.eval env e in
       let after = Eval.eval env (Simplify.run e) in
       Int64.equal before after)

(* ---------------- end-to-end solver ---------------- *)

let solve_simple_eq () =
  let x = Expr.var ~width:8 "x" in
  let c = Expr.eq (Expr.Binop (Add, x, Expr.const ~width:8 5L))
      (Expr.const ~width:8 42L) in
  match Solver.solve [ c ] with
  | Sat m -> Alcotest.(check int64) "x" 37L (List.assoc "x" m)
  | o -> Alcotest.failf "expected sat, got %s" (Solver.outcome_to_string o)

let solve_mul_inverse () =
  (* 3 * x == 51 over 16 bits: x = 17 (mod inverse also possible; any
     model must satisfy) *)
  let x = Expr.var ~width:16 "x" in
  let c =
    Expr.eq
      (Expr.Binop (Mul, Expr.const ~width:16 3L, x))
      (Expr.const ~width:16 51L)
  in
  match Solver.solve [ c ] with
  | Sat m ->
    let v = List.assoc "x" m in
    Alcotest.(check int64) "3x=51" 51L
      (Int64.logand (Int64.mul 3L v) 0xffffL)
  | o -> Alcotest.failf "expected sat, got %s" (Solver.outcome_to_string o)

let solve_unsat () =
  let x = Expr.var ~width:8 "x" in
  let c1 = Expr.Cmp (Ult, x, Expr.const ~width:8 5L) in
  let c2 = Expr.Cmp (Ult, Expr.const ~width:8 10L, x) in
  match Solver.solve [ c1; c2 ] with
  | Unsat -> ()
  | o -> Alcotest.failf "expected unsat, got %s" (Solver.outcome_to_string o)

let solve_sdiv_by_zero_semantics () =
  (* our evaluator: sdiv by 0 = mask; the circuit must agree *)
  let x = Expr.var ~width:8 "x" in
  let c =
    Expr.eq
      (Expr.Binop (Udiv, Expr.const ~width:8 7L, Expr.const ~width:8 0L))
      x
  in
  match Solver.solve [ c ] with
  | Sat m -> Alcotest.(check int64) "7/0 = 0xff" 0xffL (List.assoc "x" m)
  | o -> Alcotest.failf "expected sat, got %s" (Solver.outcome_to_string o)

let fp_needs_fallback () =
  let x = Expr.var ~width:64 "x" in
  let c = Expr.Fcmp (Feq, Expr.Fof_int x, Expr.const (Int64.bits_of_float 7.0))
  in
  (match Solver.solve [ c ] with
   | Unknown Fp_unsupported -> ()
   | o -> Alcotest.failf "expected fp-unsupported, got %s"
            (Solver.outcome_to_string o));
  let config = { Solver.default_config with enable_fp_search = true } in
  match Solver.solve ~config [ c ] with
  | Sat m -> Alcotest.(check int64) "x=7" 7L (List.assoc "x" m)
  | o -> Alcotest.failf "expected sat via search, got %s"
           (Solver.outcome_to_string o)

let fp_rounding_search () =
  (* the float bomb's core: 1024 + x == 1024 && x > 0 over doubles *)
  let x = Expr.var ~width:64 "x" in
  let c1024 = Expr.const (Int64.bits_of_float 1024.0) in
  let zero = Expr.const (Int64.bits_of_float 0.0) in
  let c1 = Expr.Fcmp (Feq, Expr.Fbin (Fadd, c1024, x), c1024) in
  let c2 = Expr.Fcmp (Flt, zero, x) in
  let config = { Solver.default_config with enable_fp_search = true } in
  match Solver.solve ~config [ c1; c2 ] with
  | Sat m ->
    let v = Int64.float_of_bits (List.assoc "x" m) in
    Alcotest.(check bool) "positive" true (v > 0.0);
    Alcotest.(check bool) "absorbed" true (1024.0 +. v = 1024.0)
  | o -> Alcotest.failf "expected sat, got %s" (Solver.outcome_to_string o)

(* ---------------- sessions ---------------- *)

let session_push_pop () =
  let x = Expr.var ~width:8 "x" in
  let s = Session.create () in
  Session.assert_ s (Expr.Cmp (Ult, x, Expr.const ~width:8 5L));
  Session.push s;
  Session.assert_ s (Expr.Cmp (Ult, Expr.const ~width:8 10L, x));
  (match Session.check s with
   | Session.Unsat -> ()
   | o -> Alcotest.failf "expected unsat, got %s" (Solver.outcome_to_string o));
  Session.pop s;
  match Session.check s with
  | Session.Sat m ->
    let v = List.assoc "x" m in
    Alcotest.(check bool) "x < 5" true (Int64.unsigned_compare v 5L < 0)
  | o ->
    Alcotest.failf "expected sat after pop, got %s" (Solver.outcome_to_string o)

(* the session pipeline must agree with the one-shot front-end, and the
   second round of identical queries must come from the query cache *)
let session_matches_oneshot_and_caches () =
  let x8 = Expr.var ~width:8 "x" in
  let y16 = Expr.var ~width:16 "y" in
  let sets =
    [ [ Expr.eq
          (Expr.Binop (Add, x8, Expr.const ~width:8 5L))
          (Expr.const ~width:8 42L) ];
      [ Expr.eq
          (Expr.Binop (Mul, Expr.const ~width:16 3L, y16))
          (Expr.const ~width:16 51L) ];
      [ Expr.Cmp (Ult, x8, Expr.const ~width:8 5L);
        Expr.Cmp (Ult, Expr.const ~width:8 10L, x8) ];
      [ Expr.Cmp (Ule, x8, Expr.const ~width:8 200L) ] ]
  in
  let s = Session.create () in
  let status = function
    | Session.Sat _ -> "sat"
    | Session.Unsat -> "unsat"
    | Session.Unknown _ -> "unknown"
  in
  let check_one cs =
    let one = Solver.solve cs in
    let inc = Session.check_assertions s cs in
    Alcotest.(check string) "status matches one-shot" (status one) (status inc);
    match inc with
    | Session.Sat m ->
      let env = Eval.env_of_list m in
      List.iter
        (fun c ->
           Alcotest.(check bool) "session model holds" true (Eval.holds env c))
        cs
    | _ -> ()
  in
  List.iter check_one sets;
  List.iter check_one sets;
  let st = Session.stats s in
  Alcotest.(check int) "queries" 8 st.Stats.queries;
  Alcotest.(check int) "second round served from cache" 4 st.Stats.cache_hits

let session_fp_fallback () =
  let x = Expr.var ~width:64 "x" in
  let c =
    Expr.Fcmp (Feq, Expr.Fof_int x, Expr.const (Int64.bits_of_float 7.0))
  in
  let s = Session.create () in
  (match Session.check_assertions s [ c ] with
   | Session.Unknown Session.Fp_unsupported -> ()
   | o ->
     Alcotest.failf "expected fp-unsupported, got %s"
       (Solver.outcome_to_string o));
  let config = { Session.default_config with enable_fp_search = true } in
  let s2 = Session.create ~config () in
  match Session.check_assertions s2 [ c ] with
  | Session.Sat m -> Alcotest.(check int64) "x=7" 7L (List.assoc "x" m)
  | o ->
    Alcotest.failf "expected sat via search, got %s"
      (Solver.outcome_to_string o)

(* a starved budget yields Unknown, which must NOT be cached: the same
   assertion set re-checked with the session's full budget decides *)
let session_budget_unknown () =
  (* expression-level pigeonhole (3 values in {0,1}, pairwise
     distinct): unsat, but only via conflict analysis, so a zero
     conflict budget must give up *)
  let p = Array.init 3 (fun i -> Expr.var ~width:2 (Printf.sprintf "p%d" i)) in
  let two = Expr.const ~width:2 2L in
  let ne a b = Expr.not_ (Expr.eq a b) in
  let cs =
    [ Expr.Cmp (Ult, p.(0), two); Expr.Cmp (Ult, p.(1), two);
      Expr.Cmp (Ult, p.(2), two); ne p.(0) p.(1); ne p.(0) p.(2);
      ne p.(1) p.(2) ]
  in
  let s = Session.create () in
  (match
     Session.check_assertions
       ~config:{ Session.default_config with conflict_budget = 0 }
       s cs
   with
   | Session.Unknown Session.Budget -> ()
   | o ->
     Alcotest.failf "expected budget unknown, got %s"
       (Solver.outcome_to_string o));
  (match Session.check s with
   | Session.Unsat -> ()
   | o ->
     Alcotest.failf "expected unsat with full budget, got %s"
       (Solver.outcome_to_string o));
  let st = Session.stats s in
  Alcotest.(check int) "no cache hit for unknown" 0 st.Stats.cache_hits

(* exact accounting on a scripted session: every counter is predicted
   by the script, and cache hits must cost zero blasting/conflicts *)
let session_stats_exact () =
  let x = Expr.var ~width:8 "x" in
  let c1 = Expr.Cmp (Ult, x, Expr.const ~width:8 5L) in
  let c2 = Expr.Cmp (Ult, Expr.const ~width:8 10L, x) in
  let stats = Stats.create () in
  let s = Session.create ~stats () in
  let expect what outcome = function
    | true -> ()
    | false ->
      Alcotest.failf "%s: got %s" what (Solver.outcome_to_string outcome)
  in
  (* q1: {c1} — fresh, blasts, sat *)
  Session.assert_ s c1;
  let o = Session.check s in
  expect "q1 sat" o (match o with Session.Sat _ -> true | _ -> false);
  Alcotest.(check int) "q1 queries" 1 stats.Stats.queries;
  Alcotest.(check int) "q1 no hits" 0 stats.Stats.cache_hits;
  Alcotest.(check int) "q1 sat count" 1 stats.Stats.sat;
  Alcotest.(check bool) "q1 blasted nodes" true (stats.Stats.blasted_nodes > 0);
  let blasted_q1 = stats.Stats.blasted_nodes in
  let conflicts_q1 = stats.Stats.conflicts in
  (* q2: {c1} again — answered by the query cache *)
  let o = Session.check s in
  expect "q2 sat" o (match o with Session.Sat _ -> true | _ -> false);
  Alcotest.(check int) "q2 queries" 2 stats.Stats.queries;
  Alcotest.(check int) "q2 hit" 1 stats.Stats.cache_hits;
  Alcotest.(check int) "q2 sat count" 2 stats.Stats.sat;
  Alcotest.(check int) "q2 blasts nothing" blasted_q1 stats.Stats.blasted_nodes;
  Alcotest.(check int) "q2 zero conflicts" conflicts_q1 stats.Stats.conflicts;
  (* q3: {c1, c2} — new set, new nodes, unsat *)
  Session.push s;
  Session.assert_ s c2;
  let o = Session.check s in
  expect "q3 unsat" o (o = Session.Unsat);
  Alcotest.(check int) "q3 queries" 3 stats.Stats.queries;
  Alcotest.(check int) "q3 no new hit" 1 stats.Stats.cache_hits;
  Alcotest.(check int) "q3 unsat count" 1 stats.Stats.unsat;
  Alcotest.(check bool) "q3 blasted more" true
    (stats.Stats.blasted_nodes > blasted_q1);
  let blasted_q3 = stats.Stats.blasted_nodes in
  let conflicts_q3 = stats.Stats.conflicts in
  (* q4: {c1, c2} again — unsat from cache, zero solver work *)
  let o = Session.check s in
  expect "q4 unsat" o (o = Session.Unsat);
  Alcotest.(check int) "q4 queries" 4 stats.Stats.queries;
  Alcotest.(check int) "q4 hit" 2 stats.Stats.cache_hits;
  Alcotest.(check int) "q4 unsat count" 2 stats.Stats.unsat;
  Alcotest.(check int) "q4 blasts nothing" blasted_q3 stats.Stats.blasted_nodes;
  Alcotest.(check int) "q4 zero conflicts" conflicts_q3 stats.Stats.conflicts;
  (* q5: pop back to {c1} — still cached from q1 *)
  Session.pop s;
  let o = Session.check s in
  expect "q5 sat" o (match o with Session.Sat _ -> true | _ -> false);
  Alcotest.(check int) "q5 queries" 5 stats.Stats.queries;
  Alcotest.(check int) "q5 hit" 3 stats.Stats.cache_hits;
  Alcotest.(check int) "q5 sat count" 3 stats.Stats.sat;
  Alcotest.(check int) "q5 blasts nothing" blasted_q3 stats.Stats.blasted_nodes;
  Alcotest.(check int) "unknown never incremented" 0 stats.Stats.unknown;
  Alcotest.(check int) "stats copy is independent"
    (Stats.copy stats).Stats.queries stats.Stats.queries

(* identical scripts on two fresh sessions must produce identical
   counters (everything except wall time is deterministic) *)
let session_stats_deterministic () =
  let script stats =
    let s = Session.create ~stats () in
    let x = Expr.var ~width:8 "x" in
    let y = Expr.var ~width:16 "y" in
    ignore (Session.check_assertions s [ Expr.Cmp (Ult, x, Expr.const ~width:8 9L) ]);
    ignore
      (Session.check_assertions s
         [ Expr.Cmp (Ult, x, Expr.const ~width:8 9L);
           Expr.eq
             (Expr.Binop (Mul, Expr.const ~width:16 3L, y))
             (Expr.const ~width:16 51L) ]);
    ignore (Session.check_assertions s [ Expr.fls ])
  in
  let a = Stats.create () and b = Stats.create () in
  script a;
  script b;
  Alcotest.(check int) "queries" a.Stats.queries b.Stats.queries;
  Alcotest.(check int) "cache_hits" a.Stats.cache_hits b.Stats.cache_hits;
  Alcotest.(check int) "sat" a.Stats.sat b.Stats.sat;
  Alcotest.(check int) "unsat" a.Stats.unsat b.Stats.unsat;
  Alcotest.(check int) "unknown" a.Stats.unknown b.Stats.unknown;
  Alcotest.(check int) "blasted_nodes" a.Stats.blasted_nodes b.Stats.blasted_nodes;
  Alcotest.(check int) "conflicts" a.Stats.conflicts b.Stats.conflicts

let printers_smoke () =
  let x = Expr.var ~width:8 "x" in
  let c = Expr.eq (Expr.Binop (Add, x, Expr.const ~width:8 1L))
      (Expr.const ~width:8 10L) in
  let s = Printer.smtlib_script [ c ] in
  let v = Printer.cvc_script [ c ] in
  Alcotest.(check bool) "smtlib mentions declare" true
    (String.length s > 0
     && String.sub s 0 10 = "(set-logic");
  Alcotest.(check bool) "cvc mentions BITVECTOR" true
    (String.length v > 0 && String.index_opt v 'B' <> None)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ blast_agrees_with_eval; simplify_sound ]

let () =
  Alcotest.run "smt"
    [ ("sat",
       [ Alcotest.test_case "basic" `Quick sat_basic;
         Alcotest.test_case "unsat" `Quick sat_unsat;
         Alcotest.test_case "pigeonhole" `Quick sat_pigeonhole;
         Alcotest.test_case "random 3-sat models" `Quick sat_random_models ]);
      ("blast", qcheck_tests);
      ("solver",
       [ Alcotest.test_case "simple eq" `Quick solve_simple_eq;
         Alcotest.test_case "mul inverse" `Quick solve_mul_inverse;
         Alcotest.test_case "unsat interval" `Quick solve_unsat;
         Alcotest.test_case "div by zero semantics" `Quick
           solve_sdiv_by_zero_semantics;
         Alcotest.test_case "fp fallback" `Quick fp_needs_fallback;
         Alcotest.test_case "fp rounding search" `Quick fp_rounding_search;
         Alcotest.test_case "printers" `Quick printers_smoke ]);
      ("session",
       [ Alcotest.test_case "push/pop" `Quick session_push_pop;
         Alcotest.test_case "matches one-shot + caches" `Quick
           session_matches_oneshot_and_caches;
         Alcotest.test_case "fp fallback" `Quick session_fp_fallback;
         Alcotest.test_case "budget unknown not cached" `Quick
           session_budget_unknown;
         Alcotest.test_case "stats accounting exact" `Quick
           session_stats_exact;
         Alcotest.test_case "stats deterministic" `Quick
           session_stats_deterministic ]) ]
