(** Observability battery: snapshot codec round trips, merge algebra
    (counter-add, gauge-last, bucket-exact histogram add), histogram
    quantiles, fleet metrics aggregation equalling the sequential
    registry for 2- and 4-worker runs, a SIGKILLed worker's last
    snapshot surviving into the pool aggregate, the per-cell profiler
    (codec, sidecar files, fleet shard merge), and the span-shard
    Chrome merger. *)

module Snap = Telemetry.Snapshot

let snap =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Snap.to_json s))
    ( = )

(* ---------------- snapshot codec ---------------- *)

let synthetic =
  { Snap.counters = [ ("t.a", 3); ("t.b", 5) ];
    gauges = [ ("t.g", 1.25); ("t.neg", -0.5) ];
    histograms =
      [ ( "t.h",
          { Snap.hs_count = 3; hs_sum = 10; hs_max = 6;
            hs_buckets = [ (1, 1); (3, 2) ] } ) ] }

let codec_round_trip () =
  (match Snap.of_json (Snap.to_json synthetic) with
   | Some s -> Alcotest.check snap "synthetic round trips" synthetic s
   | None -> Alcotest.fail "synthetic snapshot does not decode");
  Alcotest.check snap "empty round trips" Snap.empty
    (Option.get (Snap.of_json (Snap.to_json Snap.empty)));
  Alcotest.(check (option snap)) "garbage rejected" None
    (Snap.of_json "{\"c\":[1,2]}");
  Alcotest.(check (option snap)) "non-JSON rejected" None
    (Snap.of_json "not json at all")

let codec_captures_registry () =
  let c = Telemetry.Metrics.counter "test.obs.codec.count" in
  let g = Telemetry.Metrics.gauge "test.obs.codec.gauge" in
  let h = Telemetry.Metrics.histogram "test.obs.codec.histo" in
  Telemetry.Metrics.add c 7;
  Telemetry.Metrics.set g 2.5;
  List.iter (Telemetry.Metrics.observe h) [ 1; 2; 900 ];
  let cap = Snap.capture () in
  match Snap.of_json (Snap.to_json cap) with
  | None -> Alcotest.fail "captured registry does not decode"
  | Some s ->
      Alcotest.check snap "capture round trips" cap s;
      Alcotest.(check int) "counter value carried" 7
        (Snap.find_counter s "test.obs.codec.count")

(* ---------------- merge algebra ---------------- *)

let merge_algebra () =
  let a =
    { Snap.counters = [ ("c.x", 2); ("c.y", 1) ];
      gauges = [ ("g", 1.0) ];
      histograms =
        [ ( "h",
            { Snap.hs_count = 2; hs_sum = 5; hs_max = 4;
              hs_buckets = [ (1, 1); (3, 1) ] } ) ] }
  in
  let b =
    { Snap.counters = [ ("c.x", 3); ("c.z", 4) ];
      gauges = [ ("g", 9.0) ];
      histograms =
        [ ( "h",
            { Snap.hs_count = 3; hs_sum = 20; hs_max = 16;
              hs_buckets = [ (3, 2); (5, 1) ] } ) ] }
  in
  let m = Snap.merge a b in
  Alcotest.(check int) "counters add" 5 (Snap.find_counter m "c.x");
  Alcotest.(check int) "left-only counter kept" 1 (Snap.find_counter m "c.y");
  Alcotest.(check int) "right-only counter kept" 4 (Snap.find_counter m "c.z");
  Alcotest.(check (option (float 0.0))) "gauge-last wins" (Some 9.0)
    (List.assoc_opt "g" m.Snap.gauges);
  let h = List.assoc "h" m.Snap.histograms in
  Alcotest.(check int) "histogram counts add" 5 h.Snap.hs_count;
  Alcotest.(check int) "histogram sums add" 25 h.Snap.hs_sum;
  Alcotest.(check int) "histogram max maxes" 16 h.Snap.hs_max;
  Alcotest.(check (list (pair int int))) "buckets add bucket-wise"
    [ (1, 1); (3, 3); (5, 1) ]
    h.Snap.hs_buckets;
  (* merge of two diffs equals the diff across both intervals *)
  let d1 = Snap.diff ~base:Snap.empty a in
  Alcotest.check snap "diff from empty is identity" a d1

let merge_publish_into_registry () =
  let h0 =
    { Snap.hs_count = 3; hs_sum = 10; hs_max = 6;
      hs_buckets = [ (1, 1); (3, 2) ] }
  in
  let s =
    { Snap.counters = [ ("test.obs.pub.c", 11) ];
      gauges = [ ("test.obs.pub.g", 4.5) ];
      histograms = [ ("test.obs.pub.h", h0) ] }
  in
  Snap.publish ~prefix:"pre." s;
  Alcotest.(check int) "published counter lands prefixed" 11
    (Telemetry.Metrics.counter_value "pre.test.obs.pub.c");
  let h = Telemetry.Metrics.histogram "pre.test.obs.pub.h" in
  Alcotest.(check int) "published histogram count" 3
    h.Telemetry.Metrics.h_count;
  Alcotest.(check int) "published histogram sum" 10
    h.Telemetry.Metrics.h_sum;
  Alcotest.(check int) "published histogram max" 6 h.Telemetry.Metrics.h_max;
  (* publishing twice accumulates — the pool guards with [published] *)
  Snap.publish ~prefix:"pre." s;
  Alcotest.(check int) "second publish adds" 22
    (Telemetry.Metrics.counter_value "pre.test.obs.pub.c")

let quantiles () =
  let h = Telemetry.Metrics.histogram "test.obs.quant" in
  Alcotest.(check int) "empty histogram quantile" 0
    (Telemetry.Metrics.quantile h 0.5);
  for _ = 1 to 90 do Telemetry.Metrics.observe h 3 done;
  for _ = 1 to 10 do Telemetry.Metrics.observe h 1000 done;
  (* 3 lands in bucket (2,3); 1000 in (512,1023) *)
  Alcotest.(check int) "p50 in the low bucket" 3
    (Telemetry.Metrics.quantile h 0.50);
  Alcotest.(check int) "p95 in the tail bucket (clamped to max)" 1000
    (Telemetry.Metrics.quantile h 0.95);
  Alcotest.(check int) "p100 = max" 1000 (Telemetry.Metrics.quantile h 1.0)

let prometheus_exposition () =
  let text = Snap.to_prometheus synthetic in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter sample" true (has "t_a 3");
  Alcotest.(check bool) "gauge sample" true (has "t_g 1.25");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (has "t_h_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true (has "t_h_count 3");
  Alcotest.(check bool) "cumulative le buckets" true
    (has "t_h_bucket{le=\"1\"} 1")

(* ---------------- fleet aggregation ---------------- *)

let det_tools = [ Engines.Profile.Bap; Engines.Profile.Triton ]

let det_bombs =
  List.map Bombs.Catalog.find [ "time_bomb"; "argvlen_bomb"; "stack_bomb" ]

let det_prefixes = [ "vm."; "smt."; "lifter."; "taint."; "concolic." ]

let has_prefix name p =
  String.length name >= String.length p
  && String.sub name 0 (String.length p) = p

(* the deterministic engine counters a run bumped, as (name, delta) *)
let engine_counters ~base cur =
  List.filter
    (fun (name, _) -> List.exists (has_prefix name) det_prefixes)
    (Snap.diff ~base cur).Snap.counters

let fleet_counters_equal_sequential () =
  (* fleet runs first: their workers fork from a master that has never
     executed a cell in-process, the same cold state the sequential
     pass (whose cells also haven't run yet) starts from *)
  let fleet_diffs =
    List.map
      (fun workers ->
         let base = Snap.capture () in
         let _ =
           Engines.Parallel.run_table2 ~tools:det_tools ~bombs:det_bombs
             ~workers ~snapshots:true ()
         in
         (workers, engine_counters ~base (Snap.capture ())))
      [ 2; 4 ]
  in
  let base = Snap.capture () in
  let _ = Engines.Eval.run_table2 ~tools:det_tools ~bombs:det_bombs () in
  let seq = engine_counters ~base (Snap.capture ()) in
  Alcotest.(check bool) "sequential run moved the engine counters" true
    (List.mem_assoc "vm.steps" seq && List.assoc "vm.steps" seq > 0);
  List.iter
    (fun (workers, fleet) ->
       List.iter
         (fun (name, v) ->
            Alcotest.(check int)
              (Printf.sprintf "%s (%d workers) = sequential" name workers)
              v
              (match List.assoc_opt name fleet with Some d -> d | None -> 0))
         seq;
       (* and nothing extra: the fleet must not bump engine counters
          the sequential run did not *)
       List.iter
         (fun (name, v) ->
            if not (List.mem_assoc name seq) then
              Alcotest.failf
                "fleet (%d workers) bumped %s by %d; sequential did not"
                workers name v)
         fleet)
    fleet_diffs

let sigkill_snapshot_survives () =
  let survive = "test.obs.survive" and lost = "test.obs.lost" in
  let config =
    { Fleet.Pool.default_config with
      workers = 1; respawns = 0; task_timeout = Some 0.5; snapshots = true }
  in
  let t =
    Fleet.Pool.create ~config (fun ~attempt:_ ~key ->
        fun _task ->
          if key = "bump" then begin
            Telemetry.Metrics.incr (Telemetry.Metrics.counter survive);
            "ok"
          end
          else begin
            (* this increment must NOT surface: the worker is SIGKILLed
               before it replies, so no snapshot ships it *)
            Telemetry.Metrics.incr (Telemetry.Metrics.counter lost);
            Unix.sleep 30;
            "unreachable"
          end)
  in
  Fleet.Pool.submit t ~key:"bump" ~task:"x" ();
  Fleet.Pool.submit t ~key:"hang" ~task:"x" ();
  let results = Fleet.Pool.drain t in
  let agg = Fleet.Pool.metrics_snapshot t in
  Fleet.Pool.shutdown t;
  Alcotest.(check int) "completed task's counter survives the SIGKILL" 1
    (Snap.find_counter agg survive);
  Alcotest.(check int) "killed task's partial work never double-counts" 0
    (Snap.find_counter agg lost);
  match
    (List.find (fun (r : Fleet.Pool.result) -> r.r_key = "hang") results)
      .r_payload
  with
  | Error (Fleet.Pool.Worker_lost _) -> ()
  | _ -> Alcotest.fail "hanging task must be Worker_lost"

let shutdown_flush_collects_final_snapshot () =
  let c = "test.obs.final_flush" in
  let config =
    { Fleet.Pool.default_config with workers = 2; snapshots = true }
  in
  let t =
    Fleet.Pool.create ~config (fun ~attempt:_ ~key:_ ->
        fun task ->
          Telemetry.Metrics.incr (Telemetry.Metrics.counter c);
          task)
  in
  for i = 0 to 9 do
    Fleet.Pool.submit t ~key:(Printf.sprintf "k%d" i) ~task:"x" ()
  done;
  ignore (Fleet.Pool.drain t);
  Fleet.Pool.shutdown t;
  Alcotest.(check int) "every task's bump aggregated" 10
    (Snap.find_counter (Fleet.Pool.metrics_snapshot t) c);
  (* publish folds the aggregate into the master registry, once *)
  let before = Telemetry.Metrics.counter_value c in
  Fleet.Pool.publish_metrics t;
  Fleet.Pool.publish_metrics t;
  Alcotest.(check int) "publish is idempotent" (before + 10)
    (Telemetry.Metrics.counter_value c)

(* ---------------- per-cell profiler ---------------- *)

let profiled_sample_and_codec () =
  let bomb = Bombs.Catalog.find "time_bomb" in
  let o, s =
    Engines.Cellprof.profiled ~phases:true ~key:"BAP/time_bomb" (fun () ->
        Engines.Supervisor.run_cell Engines.Profile.Bap bomb)
  in
  Alcotest.(check string) "grade recorded"
    (Concolic.Error.cell_symbol o.Engines.Supervisor.graded.Engines.Grade.cell)
    s.Engines.Cellprof.p_grade;
  Alcotest.(check bool) "vm steps measured" true
    (s.Engines.Cellprof.p_vm_steps > 0);
  Alcotest.(check bool) "wall time measured" true
    (s.Engines.Cellprof.p_wall_us > 0.0);
  Alcotest.(check bool) "phase breakdown recorded" true
    (List.mem_assoc "cell" s.Engines.Cellprof.p_phases);
  let enc = Engines.Cellprof.encode s in
  match Engines.Cellprof.decode enc with
  | None -> Alcotest.fail "profile sample does not decode"
  | Some s' ->
      Alcotest.(check string) "codec round trips" enc
        (Engines.Cellprof.encode s')

let profile_sidecar_sequential () =
  let path = Filename.temp_file "obs_prof_seq" ".jsonl" in
  Sys.remove path;
  let _ =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:det_bombs ~profile:path ()
  in
  let samples = Engines.Cellprof.load path in
  Sys.remove path;
  let keys =
    List.sort compare
      (List.map (fun s -> s.Engines.Cellprof.p_key) samples)
  in
  let grid =
    List.sort compare
      (List.concat_map
         (fun b ->
            List.map (fun t -> Engines.Eval.cell_key t b) det_tools)
         det_bombs)
  in
  Alcotest.(check (list string)) "one sample per grid cell" grid keys

let profile_sidecar_fleet () =
  let path = Filename.temp_file "obs_prof_par" ".jsonl" in
  Sys.remove path;
  let _ =
    Engines.Parallel.run_table2 ~tools:det_tools ~bombs:det_bombs ~workers:2
      ~profile:path ()
  in
  let samples = Engines.Cellprof.load path in
  Alcotest.(check int) "per-slot shards merged away" 0
    (List.length (Engines.Cellprof.existing_shards ~path));
  Sys.remove path;
  let keys =
    List.sort compare
      (List.map (fun s -> s.Engines.Cellprof.p_key) samples)
  in
  let grid =
    List.sort compare
      (List.concat_map
         (fun b ->
            List.map (fun t -> Engines.Eval.cell_key t b) det_tools)
         det_bombs)
  in
  Alcotest.(check (list string)) "fleet sidecar covers the grid" grid keys;
  List.iter
    (fun s ->
       Alcotest.(check bool)
         (s.Engines.Cellprof.p_key ^ " profiled real work") true
         (s.Engines.Cellprof.p_vm_steps > 0))
    samples

(* ---------------- span shards ---------------- *)

let span_shards_merge_to_chrome () =
  let base = Filename.temp_file "obs_spans" "" in
  Sys.remove base;
  let was = Telemetry.is_enabled () in
  Telemetry.reset ();
  Telemetry.enable ();
  Telemetry.with_span "alpha" (fun () ->
      Telemetry.with_span "beta" (fun () -> ()));
  Fleet.Spans.flush_shard ~base ~slot:0;
  Telemetry.with_span "gamma" (fun () -> ());
  Fleet.Spans.flush_shard ~base ~slot:3;
  if not was then Telemetry.disable ();
  let out = base ^ ".chrome.json" in
  let report = Fleet.Spans.merge_chrome ~base ~out () in
  Alcotest.(check int) "two shards merged" 2
    report.Fleet.Spans.mr_shards;
  Alcotest.(check int) "three spans stitched" 3 report.Fleet.Spans.mr_spans;
  Alcotest.(check int) "nothing skipped" 0 report.Fleet.Spans.mr_skipped;
  Alcotest.(check int) "shards removed after merge" 0
    (List.length (Fleet.Spans.existing_shards ~base));
  (match Telemetry.Trace_check.validate_chrome_file out with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "merged trace invalid: %s" e);
  Sys.remove out

let span_shard_torn_tail_skipped () =
  let base = Filename.temp_file "obs_torn" "" in
  Sys.remove base;
  let shard = Fleet.Spans.shard_path ~base 1 in
  let oc = open_out shard in
  output_string oc
    "{\"id\": 0, \"parent\": null, \"name\": \"ok\", \"ts_us\": 1.0, \
     \"dur_us\": 2.0}\n";
  output_string oc "{\"id\": 1, \"parent\": null, \"na";  (* torn tail *)
  close_out oc;
  let out = base ^ ".chrome.json" in
  let report = Fleet.Spans.merge_chrome ~base ~out () in
  Alcotest.(check int) "good span kept" 1 report.Fleet.Spans.mr_spans;
  Alcotest.(check int) "torn line skipped, not fatal" 1
    report.Fleet.Spans.mr_skipped;
  (match Telemetry.Trace_check.validate_chrome_file out with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "trace with skipped tail invalid: %s" e);
  Sys.remove out

let () =
  Alcotest.run "obs"
    [ ("snapshot",
       [ Alcotest.test_case "JSON codec round trips" `Quick codec_round_trip;
         Alcotest.test_case "captured registry round trips" `Quick
           codec_captures_registry;
         Alcotest.test_case "merge algebra" `Quick merge_algebra;
         Alcotest.test_case "publish folds into the registry" `Quick
           merge_publish_into_registry;
         Alcotest.test_case "histogram quantiles" `Quick quantiles;
         Alcotest.test_case "prometheus exposition" `Quick
           prometheus_exposition ]);
      ("fleet",
       [ Alcotest.test_case "2/4-worker counters = sequential" `Quick
           fleet_counters_equal_sequential;
         Alcotest.test_case "SIGKILLed worker's snapshot survives" `Quick
           sigkill_snapshot_survives;
         Alcotest.test_case "shutdown flush + idempotent publish" `Quick
           shutdown_flush_collects_final_snapshot ]);
      ("profile",
       [ Alcotest.test_case "profiled sample + codec" `Quick
           profiled_sample_and_codec;
         Alcotest.test_case "sequential sidecar covers the grid" `Quick
           profile_sidecar_sequential;
         Alcotest.test_case "fleet shards merge to one sidecar" `Quick
           profile_sidecar_fleet ]);
      ("spans",
       [ Alcotest.test_case "shards merge to valid Chrome trace" `Quick
           span_shards_merge_to_chrome;
         Alcotest.test_case "torn shard tail skipped" `Quick
           span_shard_torn_tail_skipped ]) ]
