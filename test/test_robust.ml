(** Resource governance and chaos harness: budget parsing and
    tripping, deterministic fault plans, session rollback on a forced
    fault, supervised-cell grading, budget determinism across runs and
    solver modes, and the ≥50-plan containment soak. *)

open Concolic.Error

(* ---------------- budgets ---------------- *)

let budget_parse () =
  (match Robust.Budget.parse "vm=100,smt=5,wall=1.5" with
   | Ok b ->
     Alcotest.(check (option int)) "vm" (Some 100) b.vm_steps;
     Alcotest.(check (option int)) "smt" (Some 5) b.solver_conflicts;
     Alcotest.(check bool) "wall in us" true (b.wall_us = Some 1_500_000.);
     Alcotest.(check (option int)) "lift unmetered" None b.lifted_insns
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Robust.Budget.parse "" with
   | Ok b -> Alcotest.(check bool) "empty = unlimited" true
               (Robust.Budget.is_unlimited b)
   | Error e -> Alcotest.failf "empty spec: %s" e);
  (match Robust.Budget.parse "vm=x" with
   | Ok _ -> Alcotest.fail "vm=x should not parse"
   | Error _ -> ());
  match Robust.Budget.parse "frobs=3" with
  | Ok _ -> Alcotest.fail "unknown key should not parse"
  | Error _ -> ()

let budget_scale () =
  match Robust.Budget.parse "vm=100,nodes=7" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok b ->
    let s = Robust.Budget.scale 10.0 b in
    Alcotest.(check (option int)) "vm scaled" (Some 1000) s.vm_steps;
    Alcotest.(check (option int)) "nodes scaled" (Some 70) s.expr_nodes;
    Alcotest.(check (option int)) "unmetered stays" None s.solver_conflicts

let exhausted_resource f =
  match f () with
  | exception Robust.Meter.Exhausted { resource; _ } -> Some resource
  | _ -> None

let meter_trips () =
  let b = { Robust.Budget.unlimited with vm_steps = Some 3 } in
  let m = Robust.Meter.create b in
  Robust.Meter.charge_vm_steps m 3;
  Alcotest.(check bool) "under the cap" true true;
  Alcotest.(check bool) "4th step trips Vm_steps" true
    (exhausted_resource (fun () -> Robust.Meter.charge_vm_steps m 1)
     = Some Robust.Meter.Vm_steps);
  let m2 =
    Robust.Meter.create
      { Robust.Budget.unlimited with solver_conflicts = Some 0 }
  in
  Alcotest.(check bool) "conflict cap" true
    (exhausted_resource (fun () -> Robust.Meter.charge_solver_conflicts m2 1)
     = Some Robust.Meter.Solver_conflicts)

let meter_cancellation () =
  let m = Robust.Meter.create Robust.Budget.unlimited in
  Robust.Meter.checkpoint m;  (* no-op before cancel *)
  Robust.Meter.cancel m;
  Alcotest.(check bool) "checkpoint after cancel" true
    (exhausted_resource (fun () -> Robust.Meter.checkpoint m)
     = Some Robust.Meter.Cancelled)

let meter_ambient () =
  Alcotest.(check bool) "no ambient outside" true
    (Robust.Meter.ambient () = None);
  let m = Robust.Meter.create Robust.Budget.unlimited in
  Robust.Meter.with_ambient m (fun () ->
      Alcotest.(check bool) "installed" true (Robust.Meter.ambient () = Some m));
  Alcotest.(check bool) "restored" true (Robust.Meter.ambient () = None);
  (* restored across an exception too *)
  (try
     Robust.Meter.with_ambient m (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true
    (Robust.Meter.ambient () = None)

(* ---------------- chaos plans ---------------- *)

let plan_deterministic () =
  let p1 = Robust.Chaos.plan_of_seed 0xDEADL in
  let p2 = Robust.Chaos.plan_of_seed 0xDEADL in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  let different =
    List.exists
      (fun s -> Robust.Chaos.plan_of_seed s <> p1)
      [ 1L; 2L; 3L; 4L; 5L ]
  in
  Alcotest.(check bool) "some other seed differs" true different;
  List.iter
    (fun s ->
       let p = Robust.Chaos.plan_of_seed s in
       Alcotest.(check bool) "1-3 arms" true
         (List.length p.arms >= 1 && List.length p.arms <= 3);
       List.iter
         (fun (a : Robust.Chaos.arm) ->
           Alcotest.(check bool) "positive hit" true (a.at_hit >= 1))
         p.arms)
    [ 0L; 9L; 77L; -3L ]

let probe_fires_at_nth_hit () =
  let plan =
    { Robust.Chaos.seed = 0L;
      arms = [ { point = Robust.Chaos.Solver_timeout; at_hit = 3 } ] }
  in
  let st = Robust.Chaos.start plan in
  let m = Robust.Meter.create ~chaos:st Robust.Budget.unlimited in
  Robust.Meter.probe m Robust.Chaos.Solver_timeout;
  Robust.Meter.probe m Robust.Chaos.Solver_timeout;
  Alcotest.(check bool) "not yet" true (st.fired = []);
  (match Robust.Meter.probe m Robust.Chaos.Solver_timeout with
   | exception Robust.Chaos.Injected { point; hit } ->
     Alcotest.(check bool) "right point" true
       (point = Robust.Chaos.Solver_timeout);
     Alcotest.(check int) "right hit" 3 hit
   | () -> Alcotest.fail "3rd hit must inject");
  Alcotest.(check bool) "recorded" true
    (st.fired = [ (Robust.Chaos.Solver_timeout, 3) ])

let cancellation_probe_sets_flag () =
  let plan =
    { Robust.Chaos.seed = 0L;
      arms = [ { point = Robust.Chaos.Cancellation; at_hit = 1 } ] }
  in
  let st = Robust.Chaos.start plan in
  let m = Robust.Meter.create ~chaos:st Robust.Budget.unlimited in
  (* must not raise at the probe... *)
  Robust.Meter.probe m Robust.Chaos.Cancellation;
  (* ...but the next checkpoint surfaces it as a typed cancellation *)
  Alcotest.(check bool) "surfaces at checkpoint" true
    (exhausted_resource (fun () -> Robust.Meter.checkpoint m)
     = Some Robust.Meter.Cancelled)

(* ---------------- session rollback ---------------- *)

let v x = Smt.Expr.var ~width:8 x
let c n = Smt.Expr.const ~width:8 n

let session_rollback_on_budget_fault () =
  (* cap the interned-node budget so the *second* assertion set trips
     mid-[set_assertions]: the stack must roll back to the pre-call
     state and the session stay usable *)
  let c1 = Smt.Expr.eq (v "x") (c 5L) in
  let meter =
    Robust.Meter.create { Robust.Budget.unlimited with expr_nodes = Some 4 }
  in
  let s = Smt.Session.create ~meter () in
  (match Smt.Session.check_assertions s [ c1 ] with
   | Smt.Session.Sat _ -> ()
   | _ -> Alcotest.fail "x=5 must be sat");
  let depth_before = Smt.Session.depth s in
  let big =
    Smt.Expr.eq
      (Smt.Expr.Binop (Add, Smt.Expr.Binop (Mul, v "y", c 3L), c 7L))
      (c 22L)
  in
  (match Smt.Session.check_assertions s [ c1; big ] with
   | exception Robust.Meter.Exhausted { resource; _ } ->
     Alcotest.(check bool) "tripped on nodes" true
       (resource = Robust.Meter.Expr_nodes)
   | _ -> Alcotest.fail "node budget must trip");
  Alcotest.(check int) "stack rolled back" depth_before
    (Smt.Session.depth s);
  Alcotest.(check bool) "assertions restored" true
    (Smt.Session.assertions s = [ Smt.Session.intern s c1 ]);
  (* the session is not poisoned: the old query still solves *)
  match Smt.Session.check_assertions s [ c1 ] with
  | Smt.Session.Sat m ->
    Alcotest.(check bool) "model binds x" true (List.mem_assoc "x" m)
  | _ -> Alcotest.fail "x=5 must still be sat after the fault"

let session_rollback_on_injected_fault () =
  (* same regression with a chaos fault firing at check entry, i.e.
     *after* [set_assertions] already rearranged the stack *)
  let plan =
    { Robust.Chaos.seed = 0L;
      arms = [ { point = Robust.Chaos.Solver_timeout; at_hit = 2 } ] }
  in
  let meter =
    Robust.Meter.create ~chaos:(Robust.Chaos.start plan)
      Robust.Budget.unlimited
  in
  let s = Smt.Session.create ~meter () in
  let c1 = Smt.Expr.eq (v "x") (c 9L) in
  let c2 = Smt.Expr.eq (v "y") (c 1L) in
  (match Smt.Session.check_assertions s [ c1 ] with
   | Smt.Session.Sat _ -> ()
   | _ -> Alcotest.fail "first check must pass");
  let depth_before = Smt.Session.depth s in
  (match Smt.Session.check_assertions s [ c1; c2 ] with
   | exception Robust.Chaos.Injected { point; _ } ->
     Alcotest.(check bool) "solver-timeout injected" true
       (point = Robust.Chaos.Solver_timeout)
   | _ -> Alcotest.fail "second check must inject");
  Alcotest.(check int) "stack rolled back" depth_before
    (Smt.Session.depth s);
  (* third probe hit does not fire: the session answers again *)
  match Smt.Session.check_assertions s [ c1; c2 ] with
  | Smt.Session.Sat _ -> ()
  | _ -> Alcotest.fail "session must recover after the injected fault"

(* ---------------- the supervisor ---------------- *)

let bomb = Bombs.Catalog.find

let supervised_matches_bare () =
  List.iter
    (fun (tool, name) ->
       let bare = Engines.Grade.run_cell tool (bomb name) in
       let sup = Engines.Supervisor.run_cell tool (bomb name) in
       Alcotest.(check string)
         (Printf.sprintf "%s on %s" (Engines.Profile.name tool) name)
         (cell_symbol bare.cell)
         (cell_symbol sup.graded.cell);
       Alcotest.(check bool) "no cause" true (sup.cause = None);
       Alcotest.(check int) "one attempt" 1 sup.attempts)
    [ (Engines.Profile.Bap, "time_bomb");
      (Engines.Profile.Triton, "stack_bomb") ]

let budget_trip_grades_e () =
  let before = Telemetry.Metrics.counter_value "robust.exhausted.vm_steps" in
  let policy =
    { Engines.Supervisor.default_policy with
      budget = { Robust.Budget.unlimited with vm_steps = Some 100 } }
  in
  let o =
    Engines.Supervisor.run_cell ~policy Engines.Profile.Bap (bomb "time_bomb")
  in
  Alcotest.(check string) "graded E" "E" (cell_symbol o.graded.cell);
  Alcotest.(check bool) "cause is vm_steps" true
    (o.cause = Some (Engines.Supervisor.Exhausted Robust.Meter.Vm_steps));
  Alcotest.(check bool) "stage is Es1" true (o.stage = Some Es1);
  Alcotest.(check bool) "diag is State_budget" true
    (List.mem State_budget o.graded.diags);
  Alcotest.(check bool) "cause counter bumped" true
    (Telemetry.Metrics.counter_value "robust.exhausted.vm_steps" > before)

let retry_escalates_and_recovers () =
  let policy =
    { Engines.Supervisor.default_policy with
      budget = { Robust.Budget.unlimited with vm_steps = Some 100 };
      retries = 1;
      backoff = 1e5 }
  in
  let o =
    Engines.Supervisor.run_cell ~policy Engines.Profile.Bap (bomb "time_bomb")
  in
  Alcotest.(check int) "two attempts" 2 o.attempts;
  Alcotest.(check bool) "recovered" true (o.cause = None);
  let bare = Engines.Grade.run_cell Engines.Profile.Bap (bomb "time_bomb") in
  Alcotest.(check string) "escalated attempt matches bare"
    (cell_symbol bare.cell)
    (cell_symbol o.graded.cell)

let cancellation_grades_p () =
  let policy =
    { Engines.Supervisor.default_policy with
      chaos =
        Some
          { Robust.Chaos.seed = 0L;
            arms = [ { point = Robust.Chaos.Cancellation; at_hit = 1 } ] } }
  in
  let o =
    Engines.Supervisor.run_cell ~policy Engines.Profile.Triton
      (bomb "stack_bomb")
  in
  Alcotest.(check string) "graded P" "P" (cell_symbol o.graded.cell);
  Alcotest.(check bool) "cause is cancellation" true
    (o.cause = Some (Engines.Supervisor.Exhausted Robust.Meter.Cancelled));
  Alcotest.(check int) "never retried" 1 o.attempts

let injected_solver_timeout_grades_e () =
  let policy =
    { Engines.Supervisor.default_policy with
      chaos =
        Some
          { Robust.Chaos.seed = 0L;
            arms = [ { point = Robust.Chaos.Solver_timeout; at_hit = 1 } ] } }
  in
  let o =
    Engines.Supervisor.run_cell ~policy Engines.Profile.Triton
      (bomb "stack_bomb")
  in
  Alcotest.(check string) "graded E" "E" (cell_symbol o.graded.cell);
  Alcotest.(check bool) "cause is injection" true
    (o.cause
     = Some (Engines.Supervisor.Injected Robust.Chaos.Solver_timeout));
  Alcotest.(check bool) "stage is Es3" true (o.stage = Some Es3);
  Alcotest.(check bool) "fault recorded" true
    (o.fired = [ (Robust.Chaos.Solver_timeout, 1) ])

(* ---------------- budget determinism ---------------- *)

let det_bombs () =
  List.map bomb [ "time_bomb"; "argvlen_bomb"; "stack_bomb" ]

let det_tools = [ Engines.Profile.Bap; Engines.Profile.Triton ]

let symbols (r : Engines.Eval.table2_result) =
  List.map (fun (c : Engines.Eval.cell_result) -> cell_symbol c.measured)
    r.cells

(* vm/lift caps are mode-invariant (unlike conflict caps, where the
   incremental session's learned clauses legitimately change how many
   conflicts a query needs), so they are the budgets both determinism
   tests pin *)
let tripping_policy =
  { Engines.Supervisor.default_policy with
    budget = { Robust.Budget.unlimited with vm_steps = Some 150 } }

let grades_deterministic_across_runs () =
  let run () =
    Engines.Eval.run_table2 ~policy:tripping_policy ~tools:det_tools
      ~bombs:(det_bombs ()) ()
  in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "byte-identical grades across two runs"
    (symbols a) (symbols b);
  (* the budget is small enough to actually degrade at least one cell
     — otherwise this test would only cover the clean path *)
  Alcotest.(check bool) "at least one cell degraded" true
    (List.exists
       (fun (c : Engines.Eval.cell_result) ->
          c.robust.Engines.Supervisor.cause <> None)
       a.cells)

let modes_agree_under_budget () =
  let run incremental =
    Engines.Eval.run_table2 ~incremental ~policy:tripping_policy
      ~tools:det_tools ~bombs:(det_bombs ()) ()
  in
  Alcotest.(check (list string)) "incremental = one-shot under budget"
    (symbols (run true))
    (symbols (run false))

(* ---------------- the soak ---------------- *)

let soak_contains_every_fault () =
  let r =
    Engines.Supervisor.soak ~tools:[ Engines.Profile.Bap ]
      ~bombs:[ "time_bomb"; "argvlen_bomb" ] ~seed:42L ~plans:50 ()
  in
  Alcotest.(check int) "ran 100 chaos cells" 100 r.cells_run;
  Alcotest.(check bool) "faults actually fired" true (r.faults_fired > 0);
  Alcotest.(check (list string)) "zero violations" [] r.violations;
  Alcotest.(check bool) "baseline stable" true r.baseline_stable;
  Alcotest.(check bool) "contained" true (Engines.Supervisor.contained r);
  Alcotest.(check int) "every chaos cell accounted" r.cells_run
    (r.degraded_e + r.degraded_p + r.clean)

(* ---------------- the degradation ladder ---------------- *)

(* a zero-conflict cap trips the meter at the first CDCL conflict, so
   any query that needs actual search degrades; [y*y = 225] is sat
   (y = 15) but forces search, [y*y = 2] is unsat (2 is not a square
   mod 256) and forces search to prove it *)
let conflict_capped_session ?config () =
  let meter =
    Robust.Meter.create
      { Robust.Budget.unlimited with solver_conflicts = Some 0 }
  in
  Smt.Session.create ~meter ?config ()

let square y n = Smt.Expr.eq (Smt.Expr.Binop (Mul, v y, v y)) (c n)

let ladder_resimplify_decides_sat () =
  let s = conflict_capped_session () in
  let before = Telemetry.Metrics.counter_value "solver.degraded" in
  (match
     Smt.Session.check_assertions s
       [ Smt.Expr.eq (v "x") (c 5L); square "y" 225L ]
   with
   | Smt.Session.Sat m ->
     Alcotest.(check bool) "model pins x=5" true
       (List.assoc_opt "x" m = Some 5L);
     let y = Option.value ~default:0L (List.assoc_opt "y" m) in
     Alcotest.(check bool) "model solves y*y=225" true
       (Int64.rem (Int64.mul y y) 256L = 225L)
   | _ -> Alcotest.fail "ladder must still decide the sat query");
  Alcotest.(check int) "resimplify rung recorded" 1
    (Smt.Session.stats s).Smt.Stats.degraded_resimplify;
  Alcotest.(check bool) "solver.degraded bumped" true
    (Telemetry.Metrics.counter_value "solver.degraded" > before)

let ladder_enumerate_decides_unsat () =
  let config =
    { Smt.Session.default_config with
      ladder = [ Smt.Degrade.Enumerate { max_bits = 8 } ] }
  in
  let s = conflict_capped_session ~config () in
  (match Smt.Session.check_assertions s [ square "y" 2L ] with
   | Smt.Session.Unsat -> ()
   | _ -> Alcotest.fail "enumeration must prove y*y=2 unsat");
  Alcotest.(check int) "enumerate rung recorded" 1
    (Smt.Session.stats s).Smt.Stats.degraded_enumerate

let ladder_gives_up_when_rungs_decline () =
  (* 8 free bits > max_bits: the only rung declines, the ladder falls
     off and the check reports Unknown instead of raising *)
  let config =
    { Smt.Session.default_config with
      ladder = [ Smt.Degrade.Enumerate { max_bits = 4 } ] }
  in
  let s = conflict_capped_session ~config () in
  (match Smt.Session.check_assertions s [ square "y" 225L ] with
   | Smt.Session.Unknown _ -> ()
   | _ -> Alcotest.fail "declined rungs must surface as Unknown");
  Alcotest.(check int) "give-up recorded" 1
    (Smt.Session.stats s).Smt.Stats.degraded_give_up

let ladder_off_restores_hard_failure () =
  let config = { Smt.Session.default_config with ladder = [] } in
  let s = conflict_capped_session ~config () in
  match Smt.Session.check_assertions s [ square "y" 225L ] with
  | exception Robust.Meter.Exhausted { resource; _ } ->
    Alcotest.(check bool) "tripped on conflicts" true
      (resource = Robust.Meter.Solver_conflicts)
  | _ -> Alcotest.fail "empty ladder must re-raise the budget trip"

let ladder_turns_e_into_p () =
  (* srand_bomb x BAP exhausts a 50-conflict cap; pre-ladder engines
     graded this cell E *)
  let policy =
    { Engines.Supervisor.default_policy with
      budget = { Robust.Budget.unlimited with solver_conflicts = Some 50 } }
  in
  let o =
    Engines.Supervisor.run_cell ~policy Engines.Profile.Bap
      (bomb "srand_bomb")
  in
  Alcotest.(check string) "graded P" "P" (cell_symbol o.graded.cell);
  (match o.cause with
   | Some (Engines.Supervisor.Degraded _) -> ()
   | _ -> Alcotest.fail "cause must name the deciding rung");
  Alcotest.(check bool) "stage is Es3" true (o.stage = Some Es3);
  Alcotest.(check bool) "degraded diag recorded" true
    (has_degraded o.graded.diags);
  (* with the ladder off the same budget is a hard failure again *)
  let o' =
    Engines.Supervisor.run_cell ~ladder:[] ~policy Engines.Profile.Bap
      (bomb "srand_bomb")
  in
  Alcotest.(check string) "ladder off -> E" "E" (cell_symbol o'.graded.cell);
  Alcotest.(check bool) "cause is the raw trip" true
    (o'.cause
     = Some (Engines.Supervisor.Exhausted Robust.Meter.Solver_conflicts))

(* ---------------- the journal ---------------- *)

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let journal_skips_damage () =
  let path = Filename.temp_file "robust_journal" ".jsonl" in
  let fp = Robust.Journal.fingerprint [ "unit"; "test" ] in
  let w = Robust.Journal.open_writer ~fingerprint:fp path in
  Robust.Journal.append w ~key:"BAP/a" ~payload:"{\"n\":1}";
  Robust.Journal.append w ~key:"BAP/b" ~payload:"{\"n\":2}";
  Robust.Journal.append w ~key:"BAP/c" ~payload:"{\"n\":3}";
  Robust.Journal.close_writer w;
  let pristine = read_file path in
  let l = Robust.Journal.load ~fingerprint:fp path in
  Alcotest.(check int) "all valid" 3 l.valid;
  Alcotest.(check int) "next seq continues" 3 l.next_seq;
  (* flipped checksum byte: the record is skipped, never trusted *)
  let corrupted =
    match String.split_on_char '\n' pristine with
    | a :: b :: rest ->
      let b = Bytes.of_string b in
      Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
      String.concat "\n" (a :: Bytes.to_string b :: rest)
    | _ -> Alcotest.fail "journal must have three lines"
  in
  write_file path corrupted;
  let before = Telemetry.Metrics.counter_value "journal.corrupt" in
  let l = Robust.Journal.load ~fingerprint:fp path in
  Alcotest.(check int) "two valid" 2 l.valid;
  Alcotest.(check int) "one corrupt" 1 l.corrupt;
  Alcotest.(check bool) "corrupt metric bumped" true
    (Telemetry.Metrics.counter_value "journal.corrupt" > before);
  Alcotest.(check bool) "damaged key dropped" true
    (not
       (List.exists
          (fun (e : Robust.Journal.entry) -> e.key = "BAP/b")
          l.entries));
  (* truncated final record: a torn tail from a crashed append *)
  write_file path (String.sub pristine 0 (String.length pristine - 25));
  let l = Robust.Journal.load ~fingerprint:fp path in
  Alcotest.(check int) "survivors valid" 2 l.valid;
  Alcotest.(check int) "torn tail counted" 1 l.truncated;
  Alcotest.(check int) "resume seq past survivors" 2 l.next_seq;
  (* a resumed writer heals the torn tail, so its appends parse *)
  let w = Robust.Journal.open_writer ~fingerprint:fp ~seq:l.next_seq path in
  Robust.Journal.append w ~key:"BAP/c" ~payload:"{\"n\":33}";
  Robust.Journal.close_writer w;
  let l = Robust.Journal.load ~fingerprint:fp path in
  Alcotest.(check int) "healed journal valid" 3 l.valid;
  Alcotest.(check int) "torn line now corrupt" 1 l.corrupt;
  (* fingerprint mismatch: every record is stale, none is reused *)
  write_file path pristine;
  let other = Robust.Journal.fingerprint [ "other"; "config" ] in
  let stale_before = Telemetry.Metrics.counter_value "journal.stale" in
  let l = Robust.Journal.load ~fingerprint:other path in
  Alcotest.(check int) "nothing valid" 0 l.valid;
  Alcotest.(check int) "all stale" 3 l.stale;
  Alcotest.(check int) "no entries survive" 0 (List.length l.entries);
  Alcotest.(check bool) "stale metric bumped" true
    (Telemetry.Metrics.counter_value "journal.stale" > stale_before);
  Sys.remove path

let codec_roundtrip () =
  let outcomes =
    [ { Engines.Supervisor.graded =
          { Engines.Grade.cell = Success; proposed = Some "ab\x00\xffz";
            detonated = true; false_positive = false; diags = []; work = 123 };
        cause = None; stage = None; attempts = 1; fired = [] };
      { Engines.Supervisor.graded =
          { Engines.Grade.cell = Partial; proposed = None; detonated = false;
            false_positive = false;
            diags =
              [ Solver_degraded "enumerate"; Concretized_load 0xdeadbeefL;
                Unsupported_syscall "ptrace"; Fp_constraint ];
            work = 0 };
        cause = Some (Engines.Supervisor.Degraded "enumerate");
        stage = Some Es3; attempts = 2;
        fired = [ (Robust.Chaos.Solver_timeout, 3) ] };
      { Engines.Supervisor.graded =
          { Engines.Grade.cell = Fail Es1; proposed = None; detonated = false;
            false_positive = true; diags = [ Lift_failure "rdtsc" ];
            work = 7 };
        cause = Some (Engines.Supervisor.Exhausted Robust.Meter.Deadline);
        stage = Some Es1; attempts = 3; fired = [] } ]
  in
  List.iter
    (fun (o : Engines.Supervisor.outcome) ->
       let payload = Engines.Journal_codec.encode_outcome o in
       match Telemetry.Trace_check.parse_opt payload with
       | None -> Alcotest.failf "payload must parse as JSON: %s" payload
       | Some j -> (
           match Engines.Journal_codec.decode_outcome j with
           | None -> Alcotest.failf "payload must decode: %s" payload
           | Some o' ->
             Alcotest.(check bool) "round trip preserves the outcome" true
               (o = o')))
    outcomes

let journal_replay_matches_fresh () =
  let path = Filename.temp_file "robust_journal" ".jsonl" in
  Sys.remove path;
  let journal =
    { Engines.Eval.journal_path = path; kill_after = None; kill_torn = false }
  in
  let fresh =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ()
  in
  let written =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ~journal ()
  in
  Alcotest.(check (list string)) "journaled run = fresh" (symbols fresh)
    (symbols written);
  let before = Telemetry.Metrics.counter_value "journal.replayed" in
  let replayed =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ~journal ()
  in
  Alcotest.(check (list string)) "replayed table = fresh" (symbols fresh)
    (symbols replayed);
  Alcotest.(check int) "every cell answered from the journal" (before + 6)
    (Telemetry.Metrics.counter_value "journal.replayed");
  (* a different run configuration must never reuse those records *)
  let stale_before = Telemetry.Metrics.counter_value "journal.stale" in
  let fresh_budgeted =
    Engines.Eval.run_table2 ~policy:tripping_policy ~tools:det_tools
      ~bombs:(det_bombs ()) ()
  in
  let budgeted =
    Engines.Eval.run_table2 ~policy:tripping_policy ~tools:det_tools
      ~bombs:(det_bombs ()) ~journal ()
  in
  Alcotest.(check (list string)) "stale journal never feeds wrong grades"
    (symbols fresh_budgeted) (symbols budgeted);
  Alcotest.(check bool) "stale records counted" true
    (Telemetry.Metrics.counter_value "journal.stale" > stale_before);
  Sys.remove path

let journal_kill_and_resume () =
  let path = Filename.temp_file "robust_journal" ".jsonl" in
  Sys.remove path;
  let fresh =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ()
  in
  (match
     Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
       ~journal:
         { Engines.Eval.journal_path = path; kill_after = Some 2;
           kill_torn = true }
       ()
   with
   | exception Engines.Eval.Simulated_crash -> ()
   | _ -> Alcotest.fail "kill-after must abort the run");
  let trunc_before = Telemetry.Metrics.counter_value "journal.truncated" in
  let resumed =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
      ~journal:
        { Engines.Eval.journal_path = path; kill_after = None;
          kill_torn = false }
      ()
  in
  Alcotest.(check (list string)) "resumed table = uninterrupted run"
    (symbols fresh) (symbols resumed);
  Alcotest.(check bool) "torn record detected on resume" true
    (Telemetry.Metrics.counter_value "journal.truncated" > trunc_before);
  Sys.remove path

let () =
  Alcotest.run "robust"
    [ ("budget",
       [ Alcotest.test_case "parse" `Quick budget_parse;
         Alcotest.test_case "scale" `Quick budget_scale;
         Alcotest.test_case "meter trips" `Quick meter_trips;
         Alcotest.test_case "cancellation" `Quick meter_cancellation;
         Alcotest.test_case "ambient install/restore" `Quick meter_ambient ]);
      ("chaos",
       [ Alcotest.test_case "plans deterministic" `Quick plan_deterministic;
         Alcotest.test_case "probe fires at nth hit" `Quick
           probe_fires_at_nth_hit;
         Alcotest.test_case "cancellation sets flag" `Quick
           cancellation_probe_sets_flag ]);
      ("session",
       [ Alcotest.test_case "rollback on budget fault" `Quick
           session_rollback_on_budget_fault;
         Alcotest.test_case "rollback on injected fault" `Quick
           session_rollback_on_injected_fault ]);
      ("supervisor",
       [ Alcotest.test_case "default = bare engine" `Quick
           supervised_matches_bare;
         Alcotest.test_case "budget trip -> E" `Quick budget_trip_grades_e;
         Alcotest.test_case "retry escalates" `Quick
           retry_escalates_and_recovers;
         Alcotest.test_case "cancellation -> P" `Quick cancellation_grades_p;
         Alcotest.test_case "injected timeout -> E" `Quick
           injected_solver_timeout_grades_e ]);
      ("determinism",
       [ Alcotest.test_case "same budget, same grades" `Quick
           grades_deterministic_across_runs;
         Alcotest.test_case "incremental agrees one-shot" `Quick
           modes_agree_under_budget ]);
      ("ladder",
       [ Alcotest.test_case "resimplify decides sat" `Quick
           ladder_resimplify_decides_sat;
         Alcotest.test_case "enumerate decides unsat" `Quick
           ladder_enumerate_decides_unsat;
         Alcotest.test_case "declined rungs -> Unknown" `Quick
           ladder_gives_up_when_rungs_decline;
         Alcotest.test_case "empty ladder re-raises" `Quick
           ladder_off_restores_hard_failure;
         Alcotest.test_case "budget-tripped cell -> P" `Quick
           ladder_turns_e_into_p ]);
      ("journal",
       [ Alcotest.test_case "damage skipped, never trusted" `Quick
           journal_skips_damage;
         Alcotest.test_case "codec round trip" `Quick codec_roundtrip;
         Alcotest.test_case "replay = fresh run" `Quick
           journal_replay_matches_fresh;
         Alcotest.test_case "kill and resume" `Quick
           journal_kill_and_resume ]);
      ("soak",
       [ Alcotest.test_case "50 plans contained" `Quick
           soak_contains_every_fault ]) ]
