(** Engine-level tests: selected Table II cells (the fast ones), the
    negative bomb, Figure 3, and the labeling logic. *)

open Concolic.Error

let check_cell tool bomb_name expected () =
  let bomb = Bombs.Catalog.find bomb_name in
  let g = Engines.Grade.run_cell tool bomb in
  Alcotest.(check string)
    (Printf.sprintf "%s on %s" (Engines.Profile.name tool) bomb_name)
    (cell_symbol expected) (cell_symbol g.cell)

let fig3_shape () =
  let r = Engines.Eval.run_fig3 () in
  (* the paper: 5 instructions -> 66 (61 more); our libc differs in
     absolute counts, but printf must add dozens of tainted
     instructions and several tainted branches *)
  Alcotest.(check bool) "noprint small" true (r.noprint_tainted <= 15);
  Alcotest.(check bool) "print adds 40+" true
    (r.print_tainted - r.noprint_tainted >= 40);
  Alcotest.(check bool) "branch count grows" true
    (r.print_branches > r.noprint_branches)

let fig3_telemetry_agreement () =
  (* the headline counts are derived from the taint.tainted_insns
     telemetry counter; the analyzer's own tainted_count must agree,
     or the instrumentation is lying about Figure 3 *)
  let r = Engines.Eval.run_fig3 () in
  Alcotest.(check int) "noprint: counter = direct" r.noprint_tainted_direct
    r.noprint_tainted;
  Alcotest.(check int) "print: counter = direct" r.print_tainted_direct
    r.print_tainted

let explain_agrees_with_grade () =
  (* --explain must attribute the stage the Table II cell reports:
     same Grade.run_cell, same verdict, marked span present *)
  List.iter
    (fun (tool, bomb_name) ->
       let bomb = Bombs.Catalog.find bomb_name in
       let expected = Engines.Grade.run_cell tool bomb in
       let r = Engines.Explain.run tool bomb in
       Alcotest.(check string)
         (Printf.sprintf "%s on %s" (Engines.Profile.name tool) bomb_name)
         (cell_symbol expected.cell)
         (cell_symbol r.graded.cell);
       Alcotest.(check bool) "stage derives from the cell" true
         (Engines.Explain.stage_of_cell r.graded.cell = r.stage);
       (* a failed cell marks a span; the Chrome dump stays valid *)
       (match r.stage with
        | Some _ ->
          let marked =
            List.exists
              (fun (s : Telemetry.span) -> Telemetry.attr s "mark" <> None)
              (Telemetry.finished_spans ())
          in
          Alcotest.(check bool) "a span is marked" true marked
        | None -> ());
       match Telemetry.Trace_check.validate_chrome (Telemetry.to_chrome ()) with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "invalid chrome trace: %s" e)
    [ (Engines.Profile.Bap, "time_bomb");      (* Es0 *)
      (Engines.Profile.Bap, "stack_bomb");     (* Es1 *)
      (Engines.Profile.Triton, "pthread_bomb");(* Es2 *)
      (Engines.Profile.Angr, "array2_bomb");   (* Es3 *)
      (Engines.Profile.Angr, "array1_bomb") ]  (* Success *)

let negative_bomb_false_positive () =
  let results = Engines.Eval.run_negative () in
  let nolib =
    List.find
      (fun (r : Engines.Eval.negative_result) ->
         r.tool = Engines.Profile.Angr_nolib)
      results
  in
  Alcotest.(check bool) "angr-nolib claims the dead bomb" true nolib.claimed;
  Alcotest.(check bool) "it never detonates" false nolib.detonated

let solved_counts_shape () =
  (* headline: Angr solves the most; BAP and Triton trail far behind.
     run the cheap representative subset *)
  let bombs =
    List.map Bombs.Catalog.find
      [ "time_bomb"; "argvlen_bomb"; "stack_bomb"; "array1_bomb";
        "array2_bomb"; "jump_bomb" ]
  in
  let r = Engines.Eval.run_table2 ~bombs () in
  let solved tool = List.assoc tool r.solved in
  Alcotest.(check bool) "angr >= bap" true
    (solved Engines.Profile.Angr >= solved Engines.Profile.Bap);
  Alcotest.(check bool) "angr >= triton" true
    (solved Engines.Profile.Angr >= solved Engines.Profile.Triton)

(* grading is a property of the (bomb, tool) pair alone: two full runs
   of the same configuration must verdict every cell identically, in
   both solver modes.  Guards against hidden run-to-run state (RNG,
   cache order, wall-clock cutoffs) leaking into Table II *)
let grade_determinism () =
  let bombs =
    List.map Bombs.Catalog.find [ "stack_bomb"; "array1_bomb"; "float_bomb" ]
  in
  List.iter
    (fun incremental ->
       let r1 = Engines.Eval.run_table2 ~incremental ~bombs () in
       let r2 = Engines.Eval.run_table2 ~incremental ~bombs () in
       Alcotest.(check int) "same cell count" (List.length r1.cells)
         (List.length r2.cells);
       List.iter2
         (fun (a : Engines.Eval.cell_result) (b : Engines.Eval.cell_result) ->
            Alcotest.(check string)
              (Printf.sprintf "%s on %s (incremental=%b)"
                 (Engines.Profile.name a.tool) a.bomb incremental)
              (cell_symbol a.measured) (cell_symbol b.measured))
         r1.cells r2.cells)
    [ true; false ]

let incremental_invariance () =
  (* regression: the incremental solver sessions are a pure
     optimisation — every Table II cell and the solved counts must be
     identical with sessions on and off.  Over this subset the paper's
     expected counts are Angr-NoLib 4 / BAP 2 / Triton 1; our
     reproduction agrees on Angr-NoLib and diverges on two known cells
     (BAP/argvlen and Triton/exception measure OK), so the measured
     counts are pinned at their seed values in both modes *)
  let bombs =
    List.map Bombs.Catalog.find
      [ "argvlen_bomb"; "stack_bomb"; "array1_bomb"; "fork_bomb";
        "exception_bomb"; "pthread_bomb" ]
  in
  let on = Engines.Eval.run_table2 ~incremental:true ~bombs () in
  let off = Engines.Eval.run_table2 ~incremental:false ~bombs () in
  List.iter2
    (fun (a : Engines.Eval.cell_result) (b : Engines.Eval.cell_result) ->
       Alcotest.(check string)
         (Printf.sprintf "%s on %s" (Engines.Profile.name a.tool) a.bomb)
         (cell_symbol a.measured) (cell_symbol b.measured))
    on.cells off.cells;
  let expected_solved tool =
    List.length
      (List.filter
         (fun (c : Engines.Eval.cell_result) ->
            c.tool = tool && c.expected = Some Success)
         on.cells)
  in
  Alcotest.(check int) "paper: angr-nolib solves 4" 4
    (expected_solved Engines.Profile.Angr_nolib);
  Alcotest.(check int) "paper: bap solves 2" 2
    (expected_solved Engines.Profile.Bap);
  Alcotest.(check int) "paper: triton solves 1" 1
    (expected_solved Engines.Profile.Triton);
  let solved (r : Engines.Eval.table2_result) tool = List.assoc tool r.solved in
  List.iter
    (fun r ->
       Alcotest.(check int) "measured angr-nolib solved" 4
         (solved r Engines.Profile.Angr_nolib);
       Alcotest.(check int) "measured bap solved" 3
         (solved r Engines.Profile.Bap);
       Alcotest.(check int) "measured triton solved" 2
         (solved r Engines.Profile.Triton))
    [ on; off ]

let table1_covers_all_challenges () =
  let s = Engines.Eval.render_table1 () in
  List.iter
    (fun c ->
       if not
           (let n = String.length c in
            let h = String.length s in
            let rec scan i = i + n <= h && (String.sub s i n = c || scan (i + 1)) in
            scan 0)
       then Alcotest.failf "missing challenge %s" c)
    [ "Symbolic Array"; "Symbolic Jump"; "Floating-point" ]

let () =
  Alcotest.run "engines"
    [ ("cells",
       [ (* declaration *)
         Alcotest.test_case "bap/time Es0" `Quick
           (check_cell Engines.Profile.Bap "time_bomb" (Fail Es0));
         Alcotest.test_case "triton/time Es0" `Quick
           (check_cell Engines.Profile.Triton "time_bomb" (Fail Es0));
         Alcotest.test_case "angr/time Es0" `Quick
           (check_cell Engines.Profile.Angr "time_bomb" (Fail Es0));
         (* covert: stack *)
         Alcotest.test_case "bap/stack Es1" `Quick
           (check_cell Engines.Profile.Bap "stack_bomb" (Fail Es1));
         Alcotest.test_case "triton/stack OK" `Quick
           (check_cell Engines.Profile.Triton "stack_bomb" Success);
         Alcotest.test_case "angr/stack OK" `Quick
           (check_cell Engines.Profile.Angr "stack_bomb" Success);
         (* arrays *)
         Alcotest.test_case "triton/array1 Es3" `Quick
           (check_cell Engines.Profile.Triton "array1_bomb" (Fail Es3));
         Alcotest.test_case "angr/array1 OK" `Quick
           (check_cell Engines.Profile.Angr "array1_bomb" Success);
         Alcotest.test_case "angr/array2 Es3" `Quick
           (check_cell Engines.Profile.Angr "array2_bomb" (Fail Es3));
         (* length of argv *)
         Alcotest.test_case "angr/argvlen OK" `Quick
           (check_cell Engines.Profile.Angr "argvlen_bomb" Success);
         (* syscall return *)
         Alcotest.test_case "angr/sysret P" `Quick
           (check_cell Engines.Profile.Angr "sysret_bomb" Partial);
         (* fp *)
         Alcotest.test_case "bap/float Es1" `Quick
           (check_cell Engines.Profile.Bap "float_bomb" (Fail Es1));
         Alcotest.test_case "triton/float Es1" `Quick
           (check_cell Engines.Profile.Triton "float_bomb" (Fail Es1));
         (* web: socket crash *)
         Alcotest.test_case "angr/web E" `Quick
           (check_cell Engines.Profile.Angr "web_bomb" Abnormal);
         (* exception: BAP models the fault branch *)
         Alcotest.test_case "bap/exception OK" `Quick
           (check_cell Engines.Profile.Bap "exception_bomb" Success);
         (* threads: BAP's flat trace wins, Triton's view loses *)
         Alcotest.test_case "bap/pthread OK" `Quick
           (check_cell Engines.Profile.Bap "pthread_bomb" Success);
         Alcotest.test_case "triton/pthread Es2" `Quick
           (check_cell Engines.Profile.Triton "pthread_bomb" (Fail Es2));
         (* fork: only the NoLib summary solves it *)
         Alcotest.test_case "angr-nolib/fork OK" `Quick
           (check_cell Engines.Profile.Angr_nolib "fork_bomb" Success) ]);
      ("aggregates",
       [ Alcotest.test_case "fig3 shape" `Quick fig3_shape;
         Alcotest.test_case "fig3 telemetry agreement" `Quick
           fig3_telemetry_agreement;
         Alcotest.test_case "explain agrees with grade" `Quick
           explain_agrees_with_grade;
         Alcotest.test_case "negative bomb" `Quick
           negative_bomb_false_positive;
         Alcotest.test_case "solved counts shape" `Quick solved_counts_shape;
         Alcotest.test_case "incremental invariance" `Quick
           incremental_invariance;
         Alcotest.test_case "grade determinism" `Quick grade_determinism;
         Alcotest.test_case "table1 coverage" `Quick
           table1_covers_all_challenges ]) ]
