(** Telemetry core: span nesting/ordering, histogram bucket edges,
    disabled-mode no-op behaviour, and sink well-formedness (JSONL and
    Chrome trace_event output must parse and balance). *)

module T = Telemetry
module M = Telemetry.Metrics
module C = Telemetry.Trace_check

let with_tracing f =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:(fun () -> T.disable (); T.reset ()) f

(* ---------------- spans ---------------- *)

let span_nesting () =
  with_tracing @@ fun () ->
  let v =
    T.with_span "outer" (fun () ->
        T.with_span "inner_a" (fun () -> ());
        T.with_span "inner_b" (fun () -> 41 + 1))
  in
  Alcotest.(check int) "value passes through" 42 v;
  let spans = T.finished_spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun (s : T.span) -> s.name = name) spans in
  let outer = find "outer" in
  let a = find "inner_a" and b = find "inner_b" in
  Alcotest.(check bool) "outer is a root" true (outer.parent = None);
  Alcotest.(check bool) "a nests in outer" true (a.parent = Some outer.id);
  Alcotest.(check bool) "b nests in outer" true (b.parent = Some outer.id);
  Alcotest.(check int) "outer depth" 0 outer.depth;
  Alcotest.(check int) "inner depth" 1 a.depth;
  Alcotest.(check bool) "a ordered before b" true (a.id < b.id);
  Alcotest.(check bool) "outer contains a (start)" true
    (outer.t_start <= a.t_start);
  Alcotest.(check bool) "outer contains b (stop)" true
    (b.t_stop <= outer.t_stop)

let span_exception_safety () =
  with_tracing @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  match T.finished_spans () with
  | [ s ] ->
    Alcotest.(check string) "span closed" "boom" s.name;
    Alcotest.(check bool) "exn recorded" true (T.attr s "exn" <> None)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let span_annotation () =
  with_tracing @@ fun () ->
  T.with_span "cell" (fun () -> T.annotate "tool" "BAP");
  let s = List.hd (T.finished_spans ()) in
  Alcotest.(check (option string)) "attr" (Some "BAP") (T.attr s "tool")

let disabled_no_op () =
  T.reset ();
  T.disable ();
  let v = T.with_span "ghost" (fun () -> T.annotate "k" "v"; 7) in
  Alcotest.(check int) "value passes through" 7 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (T.finished_spans ()))

(* ---------------- histograms ---------------- *)

let bucket_edges () =
  Alcotest.(check int) "bucket of 0" 0 (M.bucket_of 0);
  Alcotest.(check int) "bucket of negative" 0 (M.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (M.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (M.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (M.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (M.bucket_of 4);
  Alcotest.(check int) "bucket of max_int" 62 (M.bucket_of max_int);
  (* every bucket's range round-trips *)
  for i = 1 to 61 do
    let lo, hi = M.bucket_range i in
    Alcotest.(check int) (Printf.sprintf "lo of bucket %d" i) i (M.bucket_of lo);
    Alcotest.(check int) (Printf.sprintf "hi of bucket %d" i) i (M.bucket_of hi)
  done

let histogram_observe () =
  let h = M.histogram "test.hist" in
  M.observe h 0;
  M.observe h 1;
  M.observe h 1;
  M.observe h max_int;
  (match M.read (M.Histogram h) with
   | M.Vhistogram { count; sum; max; buckets } ->
     Alcotest.(check int) "count" 4 count;
     Alcotest.(check int) "sum" (max_int + 2) sum;
     Alcotest.(check int) "max" max_int max;
     Alcotest.(check (list (pair int int))) "buckets"
       [ (0, 1); (1, 2); (62, 1) ] buckets
   | _ -> Alcotest.fail "expected histogram reading");
  M.reset ();
  (match M.read (M.Histogram h) with
   | M.Vhistogram { count; sum; _ } ->
     Alcotest.(check int) "count after reset" 0 count;
     Alcotest.(check int) "sum after reset" 0 sum
   | _ -> Alcotest.fail "expected histogram reading")

let counter_registry () =
  let c = M.counter "test.counter" in
  let before = M.value c in
  M.incr c;
  M.add c 10;
  Alcotest.(check int) "value" (before + 11) (M.value c);
  Alcotest.(check int) "by name" (before + 11) (M.counter_value "test.counter");
  Alcotest.(check bool) "same record on re-register" true
    (c == M.counter "test.counter");
  Alcotest.(check int) "missing counter reads 0" 0
    (M.counter_value "test.no_such");
  (* re-registering under a different kind is a programming error *)
  (match M.gauge "test.counter" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch not detected")

(* ---------------- sinks ---------------- *)

let record_sample_spans () =
  T.with_span "root" (fun () ->
      T.with_span "child" (fun () ->
          T.annotate "note" "with \"quotes\" and\nnewline");
      T.with_span "child" (fun () -> ()))

let jsonl_well_formed () =
  with_tracing @@ fun () ->
  record_sample_spans ();
  match C.validate_jsonl (T.to_jsonl ()) with
  | Ok n -> Alcotest.(check int) "one object per span" 3 n
  | Error e -> Alcotest.failf "invalid JSONL: %s" e

let chrome_well_formed () =
  with_tracing @@ fun () ->
  record_sample_spans ();
  match C.validate_chrome (T.to_chrome ()) with
  | Ok { events; spans; max_depth } ->
    Alcotest.(check int) "balanced B/E pairs" 3 spans;
    Alcotest.(check int) "two events per span" 6 events;
    Alcotest.(check int) "nesting depth" 2 max_depth
  | Error e -> Alcotest.failf "invalid Chrome trace: %s" e

let chrome_catches_imbalance () =
  (* the validator is only trustworthy if it rejects broken input *)
  let unbalanced =
    {|{"traceEvents": [{"name": "a", "ph": "B", "ts": 1.0}]}|}
  in
  (match C.validate_chrome unbalanced with
   | Ok _ -> Alcotest.fail "unclosed B not detected"
   | Error _ -> ());
  let crossed =
    {|{"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1.0},
        {"name": "b", "ph": "E", "ts": 2.0}]}|}
  in
  (match C.validate_chrome crossed with
   | Ok _ -> Alcotest.fail "mismatched E not detected"
   | Error _ -> ());
  match C.validate_chrome "not json at all" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let tree_renders_aggregates () =
  with_tracing @@ fun () ->
  record_sample_spans ();
  let tree = T.render_tree () in
  let contains needle =
    let n = String.length needle and h = String.length tree in
    let rec scan i =
      i + n <= h && (String.sub tree i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "root line" true (contains "root");
  Alcotest.(check bool) "same-name children aggregate" true
    (contains "child (x2)")

(* ---------------- log levels ---------------- *)

let log_levels () =
  let module L = Telemetry.Log in
  let saved = !L.current in
  Fun.protect ~finally:(fun () -> L.current := saved) @@ fun () ->
  L.set_level L.Warn;
  Alcotest.(check bool) "error enabled at warn" true (L.enabled L.Error);
  Alcotest.(check bool) "debug disabled at warn" false (L.enabled L.Debug);
  L.set_level L.Debug;
  Alcotest.(check bool) "debug enabled at debug" true (L.enabled L.Debug);
  L.set_level L.Quiet;
  Alcotest.(check bool) "error disabled at quiet" false (L.enabled L.Error);
  Alcotest.(check bool) "parse warn" true
    (L.level_of_string "WARNING" = Some L.Warn);
  Alcotest.(check bool) "parse junk" true (L.level_of_string "blorp" = None)

let () =
  Alcotest.run "telemetry"
    [ ("spans",
       [ Alcotest.test_case "nesting and ordering" `Quick span_nesting;
         Alcotest.test_case "exception safety" `Quick span_exception_safety;
         Alcotest.test_case "annotation" `Quick span_annotation;
         Alcotest.test_case "disabled is a no-op" `Quick disabled_no_op ]);
      ("metrics",
       [ Alcotest.test_case "bucket edges (0, 1, max_int)" `Quick bucket_edges;
         Alcotest.test_case "histogram observe/reset" `Quick histogram_observe;
         Alcotest.test_case "counter registry" `Quick counter_registry ]);
      ("sinks",
       [ Alcotest.test_case "jsonl parses" `Quick jsonl_well_formed;
         Alcotest.test_case "chrome balances" `Quick chrome_well_formed;
         Alcotest.test_case "validator rejects broken traces" `Quick
           chrome_catches_imbalance;
         Alcotest.test_case "tree aggregates siblings" `Quick
           tree_renders_aggregates ]);
      ("log",
       [ Alcotest.test_case "level filtering" `Quick log_levels ]) ]
