(** Storage-fault hardening: {!Robust.Diskio} primitives, per-fault-class
    containment of injected disk faults under a journaled grid,
    {!Engines.Fsck} verify/repair round-trips on deliberately damaged
    fixtures, and ENOSPC shed-and-finish. *)

let tools = [ Engines.Profile.Bap; Engines.Profile.Triton ]
let bombs = lazy (List.map Bombs.Catalog.find [ "time_bomb"; "argvlen_bomb" ])
let rm p = try Sys.remove p with Sys_error _ -> ()

let with_hook st f =
  Robust.Diskio.set_fault_hook (Some (Robust.Chaos.disk_hook st));
  Fun.protect ~finally:(fun () -> Robust.Diskio.set_fault_hook None) f

let run_grid ?journal () =
  let journal =
    Option.map
      (fun path ->
         { Engines.Eval.journal_path = path; kill_after = None;
           kill_torn = false })
      journal
  in
  Engines.Eval.render_table2
    (Engines.Eval.run_table2 ~tools ~bombs:(Lazy.force bombs) ?journal ())

(* fault-free ground truth for the grid *)
let baseline = lazy (run_grid ())

(* ---------------- diskio primitives ---------------- *)

let diskio_roundtrip () =
  let path = "disk_test_rt.dat" in
  rm path;
  Robust.Diskio.write_atomic ~path "hello\nworld\n";
  let contents, sum = Robust.Diskio.read_checksummed path in
  Alcotest.(check string) "contents" "hello\nworld\n" contents;
  Alcotest.(check string) "checksum"
    (Robust.Diskio.fnv64_hex "hello\nworld\n") sum;
  let h = Robust.Diskio.open_append path in
  Robust.Diskio.append h "more\n";
  Robust.Diskio.close h;
  Alcotest.(check string) "appended" "hello\nworld\nmore\n"
    (Robust.Diskio.read_all path);
  rm path

(* ---------------- per-fault-class containment ----------------
   One exactly-placed fault during a journaled grid run: the run's
   table must not change (results live in memory; the journal is a
   cache), the fire must be accounted, and fsck --repair + resume
   must reconstruct the same table from what survives on disk. *)

let fault_containment fault () =
  let path = "disk_test_fault.jsonl" in
  rm path;
  rm (path ^ ".tmp");
  let st =
    Robust.Chaos.disk_state ~seed:5L
      (Robust.Chaos.Disk_arms [ (fault, 2) ])
  in
  let table = with_hook st (fun () -> run_grid ~journal:path ()) in
  Alcotest.(check string) "faulted run's table unchanged"
    (Lazy.force baseline) table;
  Alcotest.(check bool) "fault fired and was accounted" true
    (List.mem_assoc fault (Robust.Chaos.disk_fired st));
  ignore
    (Engines.Fsck.scan ~repair:true [ path ] : Engines.Fsck.report list);
  Alcotest.(check int) "repaired journal verifies clean" 0
    (Engines.Fsck.exit_code ~repair:false (Engines.Fsck.scan [ path ]));
  Alcotest.(check string) "resume off the repaired journal"
    (Lazy.force baseline)
    (run_grid ~journal:path ());
  rm path

let enospc_containment = fault_containment Robust.Chaos.Enospc
let short_write_containment = fault_containment Robust.Chaos.Short_write
let bit_flip_containment = fault_containment Robust.Chaos.Bit_flip
let torn_fsync_containment = fault_containment Robust.Chaos.Torn_fsync

(* a failed rename must leave the published target untouched and only
   a stale tmp behind, which fsck --repair clears *)
let failed_rename_containment () =
  let path = "disk_test_rename.dat" in
  rm path;
  rm (path ^ ".tmp");
  Robust.Diskio.write_atomic ~path "first\n";
  let st =
    Robust.Chaos.disk_state ~seed:5L
      (Robust.Chaos.Disk_arms [ (Robust.Chaos.Failed_rename, 1) ])
  in
  (match
     with_hook st (fun () -> Robust.Diskio.write_atomic ~path "second\n")
   with
   | () -> Alcotest.fail "armed rename should have failed"
   | exception Sys_error _ -> ());
  Alcotest.(check string) "published target untouched" "first\n"
    (Robust.Diskio.read_all path);
  Alcotest.(check bool) "tmp left behind" true
    (Sys.file_exists (path ^ ".tmp"));
  let reports = Engines.Fsck.scan ~repair:true [ path ^ ".tmp" ] in
  Alcotest.(check int) "stale tmp repaired" 1
    (Engines.Fsck.exit_code ~repair:true reports);
  Alcotest.(check bool) "tmp removed" false
    (Sys.file_exists (path ^ ".tmp"));
  rm path

(* ---------------- fsck round-trips on damaged fixtures ------------- *)

let fsck_journal_roundtrip () =
  let path = "disk_test_fsck.jsonl" in
  rm path;
  let fp = "testfp" in
  let w = Robust.Journal.open_writer ~fingerprint:fp path in
  Robust.Journal.append w ~key:"a" ~payload:{|{"grade":1}|};
  Robust.Journal.append w ~key:"b" ~payload:{|{"grade":2}|};
  Robust.Journal.close_writer w;
  let clean = Robust.Diskio.read_all path in
  (* damage: a corrupt middle record plus a torn tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeefdeadbeef {\"garbage\":true}\n";
  output_string oc "0123456789abcdef {\"fp\":\"x\",\"se";
  close_out oc;
  Alcotest.(check int) "verify flags damage (exit 2)" 2
    (Engines.Fsck.exit_code ~repair:false (Engines.Fsck.scan [ path ]));
  Alcotest.(check int) "repair fixes it (exit 1)" 1
    (Engines.Fsck.exit_code ~repair:true
       (Engines.Fsck.scan ~repair:true [ path ]));
  Alcotest.(check string) "repaired bytes = pre-damage bytes" clean
    (Robust.Diskio.read_all path);
  Alcotest.(check int) "re-verify clean (exit 0)" 0
    (Engines.Fsck.exit_code ~repair:false (Engines.Fsck.scan [ path ]));
  let l = Robust.Journal.load ~fingerprint:fp path in
  Alcotest.(check int) "loader sees both records" 2
    (List.length l.Robust.Journal.entries);
  Alcotest.(check int) "no damage left for the loader" 0
    (l.Robust.Journal.corrupt + l.Robust.Journal.truncated);
  rm path

let fsck_store_quarantine () =
  let path = "disk_test_store.btrc" in
  rm path;
  rm (path ^ ".corrupt");
  Robust.Diskio.write_atomic ~path "BTRC\x01garbage, not a real store";
  Alcotest.(check int) "verify flags the corrupt store (exit 2)" 2
    (Engines.Fsck.exit_code ~repair:false (Engines.Fsck.scan [ path ]));
  Alcotest.(check int) "repair quarantines (exit 1)" 1
    (Engines.Fsck.exit_code ~repair:true
       (Engines.Fsck.scan ~repair:true [ path ]));
  Alcotest.(check bool) "quarantined copy exists" true
    (Sys.file_exists (path ^ ".corrupt"));
  Alcotest.(check bool) "original is gone (next run re-records)" false
    (Sys.file_exists path);
  rm (path ^ ".corrupt")

let fsck_orphan_shard () =
  let base = "disk_test_orphan.jsonl" in
  let shard = base ^ ".w3" in
  rm base;
  rm shard;
  let w = Robust.Journal.open_writer ~fingerprint:"fp" shard in
  Robust.Journal.append w ~key:"k" ~payload:"{}";
  Robust.Journal.close_writer w;
  (match Engines.Fsck.scan [ shard ] with
   | [ r ] ->
     Alcotest.(check bool) "detected as a worker shard" true
       r.Engines.Fsck.r_shard;
     Alcotest.(check bool) "flagged orphan (base journal missing)" true
       r.Engines.Fsck.r_orphan;
     Alcotest.(check int) "an orphan is a note, not damage" 0
       (Engines.Fsck.exit_code ~repair:false [ r ])
   | reports ->
     Alcotest.failf "expected one report, got %d" (List.length reports));
  rm shard

(* ---------------- ENOSPC mid-grid: shed and finish ---------------- *)

let enospc_shed_and_finish () =
  let path = "disk_test_shed.jsonl" in
  rm path;
  let shed0 = Telemetry.Metrics.counter_value "journal.shed" in
  let st =
    Robust.Chaos.disk_state ~seed:9L
      (Robust.Chaos.Disk_arms [ (Robust.Chaos.Enospc, 2) ])
  in
  let table = with_hook st (fun () -> run_grid ~journal:path ()) in
  Alcotest.(check string) "grid finishes with identical grades"
    (Lazy.force baseline) table;
  Alcotest.(check bool) "shed records counted (journal.shed)" true
    (Telemetry.Metrics.counter_value "journal.shed" > shed0);
  Alcotest.(check string) "resume re-runs the unjournaled cells"
    (Lazy.force baseline)
    (run_grid ~journal:path ());
  rm path

let () =
  Alcotest.run "disk"
    [ ("diskio",
       [ Alcotest.test_case "atomic write + append round trip" `Quick
           diskio_roundtrip ]);
      ("containment",
       [ Alcotest.test_case "enospc" `Quick enospc_containment;
         Alcotest.test_case "short write" `Quick short_write_containment;
         Alcotest.test_case "bit flip" `Quick bit_flip_containment;
         Alcotest.test_case "torn fsync" `Quick torn_fsync_containment;
         Alcotest.test_case "failed rename" `Quick
           failed_rename_containment ]);
      ("fsck",
       [ Alcotest.test_case "journal verify/repair round trip" `Quick
           fsck_journal_roundtrip;
         Alcotest.test_case "corrupt store quarantined" `Quick
           fsck_store_quarantine;
         Alcotest.test_case "orphan shard reported, not damage" `Quick
           fsck_orphan_shard ]);
      ("enospc",
       [ Alcotest.test_case "shed and finish mid-grid" `Quick
           enospc_shed_and_finish ]) ]
