(** Fleet battery: pool scheduling (work-stealing, latency stamps,
    runner exceptions), fault injection (worker killed mid-cell →
    re-dispatch with identical grading, watchdog on a stuck worker,
    cooperative cancellation), journal-shard merging (canonical
    byte-identity, torn-tail healing, orphan keys), fleet-vs-sequential
    Table II determinism across 1/2/4 workers (table and journal both
    byte-identical, replayable by the sequential resume path), and the
    [eval serve] daemon round trip over a temp socket. *)

open Concolic.Error

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let counter = Telemetry.Metrics.counter_value

(* ---------------- the pool ---------------- *)

let echo_config workers =
  { Fleet.Pool.default_config with workers }

let pool_echo_many () =
  let t =
    Fleet.Pool.create ~config:(echo_config 4) (fun ~attempt:_ ~key ->
        fun task -> key ^ "=" ^ task)
  in
  let n = 200 in
  for i = 0 to n - 1 do
    Fleet.Pool.submit t ~key:(Printf.sprintf "k%d" i)
      ~task:(Printf.sprintf "t%d" i) ()
  done;
  Alcotest.(check int) "all queued or running" n (Fleet.Pool.pending t);
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check int) "every task answered" n (List.length results);
  Alcotest.(check int) "queue empty" 0 (Fleet.Pool.pending t);
  List.iter
    (fun (r : Fleet.Pool.result) ->
       (match r.r_payload with
        | Ok p ->
            let i = String.sub r.r_key 1 (String.length r.r_key - 1) in
            Alcotest.(check string) "payload routed to its key"
              (Printf.sprintf "k%s=t%s" i i) p
        | Error f -> Alcotest.failf "task %s failed: %s" r.r_key
                       (Fleet.Pool.failure_to_string f));
       Alcotest.(check bool) "latency stamps ordered" true
         (r.r_done >= r.r_submitted))
    results

let pool_runner_raise_contained () =
  let t =
    Fleet.Pool.create ~config:(echo_config 2) (fun ~attempt:_ ~key ->
        fun task -> if key = "bad" then failwith "boom" else task)
  in
  Fleet.Pool.submit t ~key:"a" ~task:"1" ();
  Fleet.Pool.submit t ~key:"bad" ~task:"2" ();
  Fleet.Pool.submit t ~key:"b" ~task:"3" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  let find k =
    (List.find (fun (r : Fleet.Pool.result) -> r.r_key = k) results)
      .r_payload
  in
  Alcotest.(check bool) "a fine" true (find "a" = Ok "1");
  Alcotest.(check bool) "b fine: the worker survived the raise" true
    (find "b" = Ok "3");
  match find "bad" with
  | Error (Fleet.Pool.Run_raised msg) ->
      Alcotest.(check bool) "exception text surfaced" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "raising runner must report Run_raised"

(* kill a worker mid-cell: the pool reaps it, respawns the slot and
   re-dispatches the cell, whose second attempt grades identically to a
   run that never died *)
let pool_worker_kill_redispatch () =
  let bomb = Bombs.Catalog.find "time_bomb" in
  let clean =
    Engines.Journal_codec.encode_outcome
      (Engines.Supervisor.run_cell Engines.Profile.Bap bomb)
  in
  let redisp0 = counter "fleet.redispatched" in
  let respawn0 = counter "fleet.respawns" in
  let t =
    Fleet.Pool.create ~config:(echo_config 2) (fun ~attempt ~key ->
        fun _task ->
          if key = "die-once" && attempt = 1 then Unix._exit 9
          else
            Engines.Journal_codec.encode_outcome
              (Engines.Supervisor.run_cell Engines.Profile.Bap bomb))
  in
  Fleet.Pool.submit t ~key:"die-once" ~task:"x" ();
  Fleet.Pool.submit t ~key:"plain" ~task:"y" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check bool) "cell re-dispatched" true
    (counter "fleet.redispatched" > redisp0);
  Alcotest.(check bool) "dead slot respawned" true
    (counter "fleet.respawns" > respawn0);
  List.iter
    (fun (r : Fleet.Pool.result) ->
       match r.r_payload with
       | Ok payload ->
           Alcotest.(check string)
             (r.r_key ^ " grades identically to an undisturbed run") clean
             payload
       | Error f ->
           Alcotest.failf "%s must recover, got %s" r.r_key
             (Fleet.Pool.failure_to_string f))
    results

let pool_worker_lost_after_respawns () =
  let t =
    Fleet.Pool.create ~config:(echo_config 2) (fun ~attempt:_ ~key ->
        fun task -> if key = "always-dies" then Unix._exit 9 else task)
  in
  Fleet.Pool.submit t ~key:"always-dies" ~task:"x" ();
  Fleet.Pool.submit t ~key:"ok" ~task:"y" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  let find k =
    (List.find (fun (r : Fleet.Pool.result) -> r.r_key = k) results)
      .r_payload
  in
  (match find "always-dies" with
   | Error (Fleet.Pool.Worker_lost n) ->
       (* default config: 1 respawn, so the task burns 2 attempts *)
       Alcotest.(check int) "attempt count reported" 2 n
   | _ -> Alcotest.fail "a task that always kills its worker must fail");
  Alcotest.(check bool) "the healthy task still completes" true
    (find "ok" = Ok "y")

let pool_watchdog_kills_stuck () =
  let kills0 = counter "fleet.watchdog_kills" in
  let t =
    Fleet.Pool.create
      ~config:
        { Fleet.Pool.default_config with
          workers = 2; respawns = 0; task_timeout = Some 0.3 }
      (fun ~attempt:_ ~key ->
        fun task ->
          if key = "stuck" then (Unix.sleep 600; task) else task)
  in
  Fleet.Pool.submit t ~key:"stuck" ~task:"x" ();
  Fleet.Pool.submit t ~key:"quick" ~task:"y" ();
  let t0 = Unix.gettimeofday () in
  let results = Fleet.Pool.drain t in
  let elapsed = Unix.gettimeofday () -. t0 in
  Fleet.Pool.shutdown t;
  Alcotest.(check bool) "watchdog fired" true
    (counter "fleet.watchdog_kills" > kills0);
  Alcotest.(check bool) "drain bounded by the watchdog, not the task" true
    (elapsed < 60.);
  let find k =
    (List.find (fun (r : Fleet.Pool.result) -> r.r_key = k) results)
      .r_payload
  in
  (match find "stuck" with
   | Error (Fleet.Pool.Worker_lost _) -> ()
   | _ -> Alcotest.fail "stuck task must be failed after the kill");
  Alcotest.(check bool) "quick task unaffected" true (find "quick" = Ok "y")

let pool_cancel_fails_queued () =
  let t =
    Fleet.Pool.create ~config:(echo_config 1) (fun ~attempt:_ ~key:_ ->
        fun task -> ignore (Unix.select [] [] [] 0.2); task)
  in
  for i = 0 to 4 do
    Fleet.Pool.submit t ~key:(Printf.sprintf "c%d" i) ~task:"t" ()
  done;
  (* dispatch exactly one task, then cancel the rest cooperatively *)
  ignore (Fleet.Pool.poll ~timeout:0. t);
  Fleet.Pool.cancel t;
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check int) "every task settled" 5 (List.length results);
  let ok, cancelled =
    List.partition
      (fun (r : Fleet.Pool.result) -> r.r_payload = Ok "t")
      results
  in
  Alcotest.(check int) "the in-flight task finished" 1 (List.length ok);
  List.iter
    (fun (r : Fleet.Pool.result) ->
       Alcotest.(check bool) (r.r_key ^ " cancelled") true
         (r.r_payload = Error Fleet.Pool.Cancelled))
    cancelled

(* ---------------- the merge ---------------- *)

let merge_canonical_bytes () =
  let fp = Robust.Journal.fingerprint [ "merge"; "unit" ] in
  let tmp suffix = Filename.temp_file "fleet_merge" suffix in
  let s1 = tmp ".w0" and s2 = tmp ".w1" in
  let out = tmp ".jsonl" and expect = tmp ".expect" in
  let write path records =
    Sys.remove path;
    let w = Robust.Journal.open_writer ~fingerprint:fp path in
    List.iter (fun (key, payload) -> Robust.Journal.append w ~key ~payload)
      records;
    Robust.Journal.close_writer w
  in
  write s1 [ ("a", "{\"n\":1}"); ("b", "{\"n\":1}"); ("z", "{\"n\":0}") ];
  write s2 [ ("b", "{\"n\":2}"); ("c", "{\"n\":2}") ];
  Sys.remove out;
  let report =
    Fleet.Merge.run ~fingerprint:fp ~order:[ "a"; "b"; "c" ]
      ~sources:[ s1; s2 ] ~out ()
  in
  Alcotest.(check int) "three canonical records" 3 report.written;
  Alcotest.(check int) "both sources read" 2 report.sources_read;
  Alcotest.(check int) "z is an orphan" 1 report.orphans;
  (* later source wins on b; the merged file is byte-identical to a
     journal written fresh, in order, with the winning payloads *)
  write expect
    [ ("a", "{\"n\":1}"); ("b", "{\"n\":2}"); ("c", "{\"n\":2}") ];
  Alcotest.(check string) "byte-identical to a fresh sequential journal"
    (read_file expect) (read_file out);
  List.iter Sys.remove [ s1; s2; out; expect ]

let merge_heals_torn_tail () =
  let fp = Robust.Journal.fingerprint [ "merge"; "torn" ] in
  let tmp suffix = Filename.temp_file "fleet_merge" suffix in
  let s1 = tmp ".w0" and out = tmp ".jsonl" in
  Sys.remove s1;
  let w = Robust.Journal.open_writer ~fingerprint:fp s1 in
  Robust.Journal.append w ~key:"a" ~payload:"{\"n\":1}";
  Robust.Journal.append w ~key:"b" ~payload:"{\"n\":2}";
  (* the worker died mid-append: its journal ends in a torn record *)
  Robust.Journal.append_torn w ~key:"c";
  Robust.Journal.close_writer w;
  Sys.remove out;
  let report =
    Fleet.Merge.run ~fingerprint:fp ~order:[ "a"; "b"; "c" ]
      ~sources:[ s1 ] ~out ()
  in
  Alcotest.(check bool) "torn tail healed over" true (report.damaged >= 1);
  Alcotest.(check int) "only intact records survive" 2 report.written;
  let l = Robust.Journal.load ~fingerprint:fp out in
  Alcotest.(check int) "merged journal fully valid" 2 l.valid;
  Alcotest.(check int) "no damage carried forward" 0 (l.corrupt + l.truncated);
  List.iter Sys.remove [ s1; out ]

(* ---------------- fleet = sequential ---------------- *)

let det_tools = [ Engines.Profile.Bap; Engines.Profile.Triton ]

let det_bombs () =
  List.map Bombs.Catalog.find [ "time_bomb"; "argvlen_bomb"; "stack_bomb" ]

let symbols (r : Engines.Eval.table2_result) =
  List.map
    (fun (c : Engines.Eval.cell_result) -> cell_symbol c.measured)
    r.cells

let fleet_matches_sequential () =
  let seq =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ()
  in
  List.iter
    (fun workers ->
       let fleet =
         Engines.Parallel.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
           ~workers ()
       in
       Alcotest.(check string)
         (Printf.sprintf "%d-worker table renders byte-identical" workers)
         (Engines.Eval.render_table2 seq)
         (Engines.Eval.render_table2 fleet))
    [ 1; 2; 4 ]

let fleet_journal_byte_identical () =
  let seq_path = Filename.temp_file "fleet_seq" ".jsonl" in
  let par_path = Filename.temp_file "fleet_par" ".jsonl" in
  Sys.remove seq_path;
  Sys.remove par_path;
  let seq =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
      ~journal:
        { Engines.Eval.journal_path = seq_path; kill_after = None;
          kill_torn = false }
      ()
  in
  let fleet =
    Engines.Parallel.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
      ~journal_path:par_path ~workers:4 ()
  in
  Alcotest.(check (list string)) "same grade grid" (symbols seq)
    (symbols fleet);
  Alcotest.(check string)
    "4-worker merged journal byte-identical to the sequential journal"
    (read_file seq_path) (read_file par_path);
  (* the merge retires every per-worker shard *)
  Alcotest.(check (list string)) "no shards left behind" []
    (Fleet.Pool.worker_journal_paths ~path:par_path ~workers:8);
  (* and the merged journal replays under the sequential resume path
     exactly like a sequentially written one *)
  let replayed0 = counter "journal.replayed" in
  let resumed =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
      ~journal:
        { Engines.Eval.journal_path = par_path; kill_after = None;
          kill_torn = false }
      ()
  in
  Alcotest.(check (list string)) "resumed table matches" (symbols seq)
    (symbols resumed);
  Alcotest.(check int) "every cell answered from the merged journal"
    (replayed0 + 6)
    (counter "journal.replayed");
  Sys.remove seq_path;
  Sys.remove par_path

(* a fleet run that recovers from leftover worker shards: simulate a
   master crash by planting a shard journal, then run with a journal —
   the shard's cell must replay, not re-run *)
let fleet_recovers_worker_shard () =
  let path = Filename.temp_file "fleet_crash" ".jsonl" in
  Sys.remove path;
  let fp =
    Engines.Eval.journal_fingerprint ~tools:det_tools ~bombs:(det_bombs ())
      ()
  in
  let bomb = Bombs.Catalog.find "time_bomb" in
  let key = Engines.Eval.cell_key Engines.Profile.Bap bomb in
  let o = Engines.Supervisor.run_cell Engines.Profile.Bap bomb in
  let w = Robust.Journal.open_writer ~fingerprint:fp (path ^ ".w3") in
  Robust.Journal.append w ~key
    ~payload:(Engines.Journal_codec.encode_outcome o);
  Robust.Journal.close_writer w;
  let replayed0 = counter "journal.replayed" in
  let fleet =
    Engines.Parallel.run_table2 ~tools:det_tools ~bombs:(det_bombs ())
      ~journal_path:path ~workers:2 ()
  in
  Alcotest.(check bool) "planted shard replayed" true
    (counter "journal.replayed" > replayed0);
  let seq =
    Engines.Eval.run_table2 ~tools:det_tools ~bombs:(det_bombs ()) ()
  in
  Alcotest.(check (list string)) "recovered run matches sequential"
    (symbols seq) (symbols fleet);
  Alcotest.(check bool) "shard retired by the merge" false
    (Sys.file_exists (path ^ ".w3"));
  Sys.remove path

(* ---------------- the serve daemon ---------------- *)

let temp_socket () =
  let p = Filename.temp_file "fleet_srv" ".sock" in
  Sys.remove p;
  p

let stale_socket_detected () =
  let path = temp_socket () in
  (* a plain file where the socket should be: stale, not EADDRINUSE *)
  let oc = open_out path in
  close_out oc;
  (match Fleet.Serve.check_socket path with
   | exception Fleet.Serve.Stale_socket p ->
       Alcotest.(check string) "names the path" path p
   | _ -> Alcotest.fail "existing dead socket file must raise Stale_socket");
  Sys.remove path;
  (* a live listener: refused as in-use *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  (match Fleet.Serve.check_socket path with
   | exception Fleet.Serve.Socket_in_use p ->
       Alcotest.(check string) "names the path" path p
   | _ -> Alcotest.fail "live socket must raise Socket_in_use");
  Unix.close fd;
  Sys.remove path;
  (* absent path: nothing to refuse *)
  Fleet.Serve.check_socket path

let serve_round_trip () =
  let socket = temp_socket () in
  let pid =
    match Unix.fork () with
    | 0 -> (
        try
          Engines.Service.serve ~workers:2 ~socket ();
          Unix._exit 0
        with _ -> Unix._exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then Sys.remove socket)
  @@ fun () ->
  (* wait for the daemon to come up *)
  let rec await tries =
    if tries = 0 then Alcotest.fail "daemon never answered a ping"
    else
      match Engines.Service.ping ~socket () with
      | Some _ -> ()
      | None ->
          ignore (Unix.select [] [] [] 0.05);
          await (tries - 1)
  in
  await 400;
  let cells =
    [ (Engines.Profile.Bap, "time_bomb");
      (Engines.Profile.Triton, "stack_bomb");
      (Engines.Profile.Bap, "argvlen_bomb") ]
  in
  let requests =
    List.map
      (fun (tool, bomb) ->
         Engines.Service.encode_request
           ~id:(Engines.Profile.name tool ^ "/" ^ bomb)
           ~tool ~bomb ())
      cells
  in
  let lines = ref [] in
  let failures =
    Engines.Service.submit ~socket
      ~on_line:(fun l -> lines := l :: !lines)
      requests
  in
  Alcotest.(check int) "no request failed" 0 failures;
  let lines = List.rev !lines in
  let queued, finals =
    List.partition
      (fun l -> Engines.Service.status_of_line l = Some "queued")
      lines
  in
  Alcotest.(check int) "every request acked as queued" 3
    (List.length queued);
  Alcotest.(check int) "every request answered" 3 (List.length finals);
  (* each streamed outcome must match a direct supervised run *)
  let open Telemetry.Trace_check in
  List.iter
    (fun (tool, bomb_name) ->
       let id = Engines.Profile.name tool ^ "/" ^ bomb_name in
       let line =
         List.find
           (fun l ->
              match Option.bind (parse_opt l) (member "id") with
              | Some (Str s) -> s = id
              | _ -> false)
           finals
       in
       let j = Option.get (parse_opt line) in
       let direct =
         Engines.Supervisor.run_cell tool (Bombs.Catalog.find bomb_name)
       in
       (match Option.bind (member "outcome" j)
                Engines.Journal_codec.decode_outcome
        with
        | Some streamed ->
            Alcotest.(check bool)
              (id ^ ": streamed outcome = direct supervised run") true
              (streamed = direct)
        | None -> Alcotest.failf "%s: outcome does not decode: %s" id line);
       match member "key" j with
       | Some (Str k) -> Alcotest.(check string) "key attribution" id k
       | _ -> Alcotest.failf "%s: response has no key" id)
    cells;
  (* drain: the daemon finishes, removes its socket and exits 0 *)
  let drain_lines = ref [] in
  Engines.Service.drain ~socket
    ~on_line:(fun l -> drain_lines := l :: !drain_lines)
    ();
  Alcotest.(check bool) "drain acknowledged" true
    (List.exists
       (fun l -> Engines.Service.status_of_line l = Some "drained")
       !drain_lines);
  (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _, st ->
       Alcotest.failf "daemon exit: %s"
         (match st with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n));
  Alcotest.(check bool) "socket removed on shutdown" false
    (Sys.file_exists socket)

(* ---------------- IPC chaos (deterministic arms) ---------------- *)

(* one-shot armed fault at hit #1 of [point]; the pool must absorb it
   and still grade the task correctly *)
let chaos_pool ?(workers = 1) ?(respawns = 2) ?task_timeout arms runner =
  Fleet.Pool.create
    ~config:
      { Fleet.Pool.default_config with
        workers; respawns; task_timeout;
        chaos =
          Some (Robust.Chaos.fleet_state ~seed:7L (Robust.Chaos.Arms arms)) }
    runner

let one_ok results =
  match results with
  | [ ({ r_payload = Ok p; _ } : Fleet.Pool.result) ] -> p
  | [ { r_payload = Error f; _ } ] ->
      Alcotest.failf "task must survive the fault, got %s"
        (Fleet.Pool.failure_to_string f)
  | rs -> Alcotest.failf "expected one result, got %d" (List.length rs)

let chaos_corrupt_reply_recovers () =
  let bad0 = counter "fleet.frames_corrupt" in
  let t =
    chaos_pool [ (Robust.Chaos.Corrupt_reply, 1) ]
      (fun ~attempt:_ ~key:_ -> fun task -> task ^ "!")
  in
  Fleet.Pool.submit t ~key:"k" ~task:"v" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check string) "re-dispatch grades the same" "v!"
    (one_ok results);
  Alcotest.(check bool) "corrupt frame detected and counted" true
    (counter "fleet.frames_corrupt" > bad0)

let chaos_corrupt_dispatch_nacked () =
  let nack0 = counter "fleet.frames_nacked" in
  let kill0 = counter "fleet.worker_deaths" in
  let t =
    chaos_pool [ (Robust.Chaos.Corrupt_dispatch, 1) ]
      (fun ~attempt ~key:_ ->
        fun task -> Printf.sprintf "%s@%d" task attempt)
  in
  Fleet.Pool.submit t ~key:"k" ~task:"v" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  (* the worker detects the damaged frame, nacks, and the re-send does
     not charge an attempt — the run still sees attempt 1 *)
  Alcotest.(check string) "re-sent frame runs as attempt 1" "v@1"
    (one_ok results);
  Alcotest.(check bool) "nack counted" true
    (counter "fleet.frames_nacked" > nack0);
  Alcotest.(check int) "no worker died for a bad dispatch frame" kill0
    (counter "fleet.worker_deaths")

let chaos_drop_reply_watchdog_recovers () =
  let t =
    chaos_pool ~task_timeout:0.3
      [ (Robust.Chaos.Drop_reply, 1) ]
      (fun ~attempt ~key:_ ->
        fun task -> Printf.sprintf "%s@%d" task attempt)
  in
  Fleet.Pool.submit t ~key:"k" ~task:"v" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  (* the dropped reply looks like a hang; the watchdog reclaims the
     slot and the re-dispatch (attempt 2) answers *)
  Alcotest.(check string) "watchdog re-dispatch answers" "v@2"
    (one_ok results)

let chaos_worker_stall_watchdog_recovers () =
  let kills0 = counter "fleet.watchdog_kills" in
  let t =
    chaos_pool ~task_timeout:0.3
      [ (Robust.Chaos.Worker_stall, 1) ]
      (fun ~attempt ~key:_ ->
        fun task -> Printf.sprintf "%s@%d" task attempt)
  in
  Fleet.Pool.submit t ~key:"k" ~task:"v" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check string) "stalled worker killed, re-dispatch answers"
    "v@2" (one_ok results);
  Alcotest.(check bool) "watchdog fired on the stall" true
    (counter "fleet.watchdog_kills" > kills0)

(* ---------------- circuit breaker / deadlines ---------------- *)

let breaker_quarantines_dying_slots () =
  let t =
    Fleet.Pool.create
      ~config:
        { Fleet.Pool.default_config with
          workers = 2; respawns = 10; breaker = Some 2 }
      (fun ~attempt:_ ~key:_ -> fun _task -> Unix._exit 9)
  in
  for i = 0 to 5 do
    Fleet.Pool.submit t ~key:(Printf.sprintf "d%d" i) ~task:"x" ()
  done;
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  Alcotest.(check int) "every task settled" 6 (List.length results);
  (* two consecutive deaths trip the breaker before the 10-respawn
     budget is anywhere near spent; once every slot is quarantined the
     rest of the queue fails fast instead of deadlocking *)
  Alcotest.(check int) "both slots quarantined" 2
    (Fleet.Pool.quarantined_workers t);
  List.iter
    (fun (r : Fleet.Pool.result) ->
       match r.r_payload with
       | Error (Fleet.Pool.Worker_lost _ | Fleet.Pool.Quarantined) -> ()
       | Error f ->
           Alcotest.failf "%s: unexpected failure %s" r.r_key
             (Fleet.Pool.failure_to_string f)
       | Ok _ -> Alcotest.failf "%s cannot succeed" r.r_key)
    results

let deadline_expires_in_queue () =
  let exp0 = counter "fleet.tasks_expired" in
  let t =
    Fleet.Pool.create ~config:(echo_config 1) (fun ~attempt:_ ~key:_ ->
        fun task -> ignore (Unix.select [] [] [] 0.3); task)
  in
  Fleet.Pool.submit t ~key:"head" ~task:"a" ();
  Fleet.Pool.submit t
    ~deadline:(Unix.gettimeofday () +. 0.05)
    ~key:"late" ~task:"b" ();
  let results = Fleet.Pool.drain t in
  Fleet.Pool.shutdown t;
  let find k =
    (List.find (fun (r : Fleet.Pool.result) -> r.r_key = k) results)
      .r_payload
  in
  Alcotest.(check bool) "head task unaffected" true (find "head" = Ok "a");
  (match find "late" with
   | Error Fleet.Pool.Expired -> ()
   | Error f ->
       Alcotest.failf "late: expected Expired, got %s"
         (Fleet.Pool.failure_to_string f)
   | Ok _ -> Alcotest.fail "a queue-expired task cannot run");
  Alcotest.(check bool) "expiry counted" true
    (counter "fleet.tasks_expired" > exp0)

(* ---------------- merge: multi-shard last-wins / all-orphan -------- *)

let merge_same_key_multi_shard () =
  let fp = Robust.Journal.fingerprint [ "merge"; "multi" ] in
  let tmp suffix = Filename.temp_file "fleet_merge" suffix in
  let shards = [ tmp ".w0"; tmp ".w1"; tmp ".w2" ] in
  let out = tmp ".jsonl" and expect = tmp ".expect" in
  let write path records =
    Sys.remove path;
    let w = Robust.Journal.open_writer ~fingerprint:fp path in
    List.iter (fun (key, payload) -> Robust.Journal.append w ~key ~payload)
      records;
    Robust.Journal.close_writer w
  in
  (* the same key graded on three shards (a cell re-dispatched across
     worker deaths lands wherever it last ran): the last source in the
     merge order wins, deterministically *)
  List.iteri
    (fun i s -> write s [ ("k", Printf.sprintf "{\"from\":%d}" i) ])
    shards;
  Sys.remove out;
  let report =
    Fleet.Merge.run ~fingerprint:fp ~order:[ "k" ] ~sources:shards ~out ()
  in
  Alcotest.(check int) "one canonical record" 1 report.written;
  write expect [ ("k", "{\"from\":2}") ];
  Alcotest.(check string) "last shard's grading wins, byte-identically"
    (read_file expect) (read_file out);
  List.iter Sys.remove (out :: expect :: shards)

let merge_all_orphans () =
  let fp = Robust.Journal.fingerprint [ "merge"; "orphan" ] in
  let tmp suffix = Filename.temp_file "fleet_merge" suffix in
  let s1 = tmp ".w0" and s2 = tmp ".w1" and out = tmp ".jsonl" in
  let write path records =
    Sys.remove path;
    let w = Robust.Journal.open_writer ~fingerprint:fp path in
    List.iter (fun (key, payload) -> Robust.Journal.append w ~key ~payload)
      records;
    Robust.Journal.close_writer w
  in
  (* every shard key is outside the canonical order (stale shards from
     an older grid): merge must write a valid empty journal, not crash
     and not leak the orphans through *)
  write s1 [ ("stale1", "{\"n\":1}") ];
  write s2 [ ("stale2", "{\"n\":2}"); ("stale3", "{\"n\":3}") ];
  Sys.remove out;
  let report =
    Fleet.Merge.run ~fingerprint:fp ~order:[ "a"; "b" ] ~sources:[ s1; s2 ]
      ~out ()
  in
  Alcotest.(check int) "nothing canonical to write" 0 report.written;
  Alcotest.(check int) "every record an orphan" 3 report.orphans;
  let l = Robust.Journal.load ~fingerprint:fp out in
  Alcotest.(check int) "merged journal is empty but well-formed" 0 l.valid;
  Alcotest.(check int) "and undamaged" 0 (l.corrupt + l.truncated);
  List.iter Sys.remove [ s1; s2; out ]

(* ---------------- journal fingerprint peek ---------------- *)

let journal_peek_fingerprint () =
  let fp = Robust.Journal.fingerprint [ "peek"; "test" ] in
  let path = Filename.temp_file "fleet_peek" ".jsonl" in
  Sys.remove path;
  Alcotest.(check (option string)) "missing file peeks None" None
    (Robust.Journal.peek_fingerprint path);
  let w = Robust.Journal.open_writer ~fingerprint:fp path in
  Robust.Journal.append w ~key:"k" ~payload:"{\"n\":1}";
  Robust.Journal.close_writer w;
  Alcotest.(check (option string)) "stamped fingerprint surfaces"
    (Some fp)
    (Robust.Journal.peek_fingerprint path);
  let oc = open_out path in
  output_string oc "not a journal line\n";
  close_out oc;
  Alcotest.(check (option string)) "garbage peeks None" None
    (Robust.Journal.peek_fingerprint path);
  Sys.remove path

(* ---------------- durable serve queue ---------------- *)

let serve_queue_mismatch_refused () =
  let socket = temp_socket () in
  let path = Filename.temp_file "fleet_queue" ".jsonl" in
  Sys.remove path;
  let w = Robust.Journal.open_writer ~fingerprint:"other-config" path in
  Robust.Journal.append w ~key:"k"
    ~payload:"{\"phase\":\"acc\",\"req\":\"{}\"}";
  Robust.Journal.close_writer w;
  let cfg which force =
    { (Fleet.Serve.default_config ~socket) with
      queue_journal = Some path; run_fingerprint = which; force }
  in
  (match Fleet.Serve.load_queue_journal (cfg "this-config" false) with
   | exception Fleet.Serve.Journal_mismatch { path = p; found; expected } ->
       Alcotest.(check string) "names the journal" path p;
       Alcotest.(check string) "found fingerprint" "other-config" found;
       Alcotest.(check string) "expected fingerprint" "this-config" expected
   | _ ->
       Alcotest.fail
         "a queue journal from another configuration must be refused");
  (* --force reopens it; the incompatible records are just skipped *)
  (match Fleet.Serve.load_queue_journal (cfg "this-config" true) with
   | Some w, dones, accs ->
       Robust.Journal.close_writer w;
       Alcotest.(check int) "no done replays cross the fingerprint" 0
         (List.length dones);
       Alcotest.(check int) "no accepted requests either" 0
         (List.length accs)
   | None, _, _ -> Alcotest.fail "--force must still open the journal");
  Sys.remove path

(* kill the daemon after one graded request, warm-restart it from the
   queue journal, resubmit under the same idempotency key: the client
   gets the journaled response byte-for-byte and the journal holds
   exactly one grading for the key *)
let serve_durable_exactly_once () =
  let socket = temp_socket () in
  let queue = Filename.temp_file "fleet_queue" ".jsonl" in
  Sys.remove queue;
  let fork_daemon () =
    match Unix.fork () with
    | 0 -> (
        try
          Engines.Service.serve ~workers:1 ~queue_journal:queue ~socket ();
          Unix._exit 0
        with _ -> Unix._exit 1)
    | pid -> pid
  in
  let await () =
    let rec go tries =
      if tries = 0 then Alcotest.fail "daemon never answered a ping"
      else
        match Engines.Service.ping ~socket () with
        | Some _ -> ()
        | None ->
            ignore (Unix.select [] [] [] 0.05);
            go (tries - 1)
    in
    go 400
  in
  let request =
    Engines.Service.encode_request ~id:"once/Bap/time_bomb"
      ~tool:Engines.Profile.Bap ~bomb:"time_bomb" ()
  in
  let submit_one () =
    let final = ref None in
    let r =
      Engines.Service.submit_resilient ~socket ~sessions:4
        ~on_line:(fun l ->
          if Engines.Service.status_of_line l = Some "done" then
            final := Some l)
        [ ("once/Bap/time_bomb", request) ]
    in
    Alcotest.(check int) "request answered" 1 r.Engines.Service.sr_answered;
    match !final with
    | Some l -> l
    | None -> Alcotest.fail "no done line streamed"
  in
  let pid = fork_daemon () in
  let cleanup = ref (fun () -> ()) in
  (cleanup :=
     fun () ->
       (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
       (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()));
  Fun.protect
    ~finally:(fun () ->
      !cleanup ();
      if Sys.file_exists socket then Sys.remove socket;
      if Sys.file_exists queue then Sys.remove queue)
  @@ fun () ->
  await ();
  let resp1 = submit_one () in
  (* SIGKILL: no drain, no cleanup — the journal is all that survives *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Sys.remove socket;
  let pid2 = fork_daemon () in
  (cleanup :=
     fun () ->
       (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
       (try ignore (Unix.waitpid [] pid2) with Unix.Unix_error _ -> ()));
  await ();
  let resp2 = submit_one () in
  Alcotest.(check string)
    "resubmission answered verbatim from the journal, not re-graded"
    resp1 resp2;
  Engines.Service.drain ~socket ();
  ignore (Unix.waitpid [] pid2);
  (cleanup := fun () -> ());
  let l =
    Robust.Journal.load ~dedup:false
      ~fingerprint:(Engines.Service.queue_fingerprint ())
      queue
  in
  let dones =
    List.filter
      (fun (e : Robust.Journal.entry) ->
         match Telemetry.Trace_check.member "phase" e.cell with
         | Some (Telemetry.Trace_check.Str "done") -> true
         | _ -> false)
      l.entries
  in
  Alcotest.(check int) "exactly one grading journaled across the crash" 1
    (List.length dones)

let () =
  Alcotest.run "fleet"
    [ ("pool",
       [ Alcotest.test_case "echo x200 across 4 workers" `Quick
           pool_echo_many;
         Alcotest.test_case "runner raise contained" `Quick
           pool_runner_raise_contained;
         Alcotest.test_case "killed worker -> re-dispatch, same grade"
           `Quick pool_worker_kill_redispatch;
         Alcotest.test_case "respawn budget exhausts -> Worker_lost" `Quick
           pool_worker_lost_after_respawns;
         Alcotest.test_case "watchdog kills a stuck worker" `Quick
           pool_watchdog_kills_stuck;
         Alcotest.test_case "cancel fails queued, keeps in-flight" `Quick
           pool_cancel_fails_queued;
         Alcotest.test_case "deadline expires in queue" `Quick
           deadline_expires_in_queue;
         Alcotest.test_case "breaker quarantines dying slots" `Quick
           breaker_quarantines_dying_slots ]);
      ("ipc-chaos",
       [ Alcotest.test_case "corrupt reply -> kill + re-dispatch" `Quick
           chaos_corrupt_reply_recovers;
         Alcotest.test_case "corrupt dispatch -> nack, no charge" `Quick
           chaos_corrupt_dispatch_nacked;
         Alcotest.test_case "dropped reply -> watchdog recovery" `Quick
           chaos_drop_reply_watchdog_recovers;
         Alcotest.test_case "worker stall -> watchdog recovery" `Quick
           chaos_worker_stall_watchdog_recovers ]);
      ("merge",
       [ Alcotest.test_case "canonical byte-identity" `Quick
           merge_canonical_bytes;
         Alcotest.test_case "torn shard tail heals" `Quick
           merge_heals_torn_tail;
         Alcotest.test_case "same key on three shards: last wins" `Quick
           merge_same_key_multi_shard;
         Alcotest.test_case "all-orphan shard set" `Quick
           merge_all_orphans;
         Alcotest.test_case "journal fingerprint peek" `Quick
           journal_peek_fingerprint ]);
      ("determinism",
       [ Alcotest.test_case "1/2/4 workers = sequential table" `Quick
           fleet_matches_sequential;
         Alcotest.test_case "merged journal byte-identical + replays"
           `Quick fleet_journal_byte_identical;
         Alcotest.test_case "crashed-run worker shard recovered" `Quick
           fleet_recovers_worker_shard ]);
      ("serve",
       [ Alcotest.test_case "stale/live socket refused" `Quick
           stale_socket_detected;
         Alcotest.test_case "daemon round trip" `Quick serve_round_trip;
         Alcotest.test_case "queue fingerprint mismatch refused" `Quick
           serve_queue_mismatch_refused;
         Alcotest.test_case "crash + warm restart = exactly once" `Quick
           serve_durable_exactly_once ]) ]
