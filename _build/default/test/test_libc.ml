(** Guest runtime vs host reference: string routines, atoi, printf,
    rand, sin, SHA-1 and AES are exercised with property-based inputs
    and compared against OCaml implementations. *)

module Dsl = Asm.Ast.Dsl

(* run a guest main that calls [fn] on string arguments placed in
   data, and writes the i64 result as 8 raw bytes to stdout *)
let call_guest_i64 ~data ~setup fn =
  let open Dsl in
  let prog =
    Asm.Ast.obj
      ~data
      ~bss:[ label "__res"; space 8 ]
      ((label "main" :: setup)
       @ [ call fn;
           lea rcx "__res";
           mov (mreg Isa.Reg.RCX) rax;
           mov rdi (imm 1);
           lea rsi "__res";
           mov rdx (imm 8);
           call "write";
           mov rax (imm 0);
           ret ])
  in
  let image = Libc.Runtime.link_with_libs prog in
  let r = Vm.Machine.run_image image in
  let v = ref 0L in
  String.iteri
    (fun i c ->
       if i < 8 then
         v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code c)) (8 * i)))
    r.stdout;
  !v

(* printable strings without NUL *)
let gen_str =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))

let gen_int_str =
  QCheck2.Gen.(
    map
      (fun (neg, n) -> (if neg then "-" else "") ^ string_of_int n)
      (pair bool (int_bound 1_000_000)))

let strlen_matches =
  QCheck2.Test.make ~count:40 ~name:"guest strlen = String.length" gen_str
    (fun s ->
       let v =
         call_guest_i64
           ~data:Dsl.[ label "__s"; asciz s ]
           ~setup:Dsl.[ lea rdi "__s" ]
           "strlen"
       in
       Int64.to_int v = String.length s)

let strcmp_matches =
  QCheck2.Test.make ~count:40 ~name:"guest strcmp sign = compare sign"
    QCheck2.Gen.(pair gen_str gen_str)
    (fun (a, b) ->
       let v =
         call_guest_i64
           ~data:Dsl.[ label "__a"; asciz a; label "__b"; asciz b ]
           ~setup:Dsl.[ lea rdi "__a"; lea rsi "__b" ]
           "strcmp"
       in
       let sign x = compare x 0 in
       sign (Int64.to_int v) = sign (compare a b))

let atoi_matches =
  QCheck2.Test.make ~count:40 ~name:"guest atoi = int_of_string" gen_int_str
    (fun s ->
       let v =
         call_guest_i64
           ~data:Dsl.[ label "__n"; asciz s ]
           ~setup:Dsl.[ lea rdi "__n" ]
           "atoi"
       in
       Int64.to_int v = int_of_string s)

let rand_matches_host_mirror =
  QCheck2.Test.make ~count:20 ~name:"guest rand = host mirror"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
       let v =
         call_guest_i64 ~data:[]
           ~setup:
             Dsl.
               [ mov rdi (imm seed);
                 call "srand" ]
           "rand"
       in
       Int64.to_int v = Libc.Rand.first_rand (Int64.of_int seed))

(* printf: compare against OCaml's Printf for a fixed format *)
let printf_cases () =
  let cases =
    [ (123, 0xff, "x"); (-7, 0, "world"); (0, 0xabcdef, "") ]
  in
  List.iter
    (fun (d, x, s) ->
       let open Dsl in
       let prog =
         Asm.Ast.obj
           ~data:[ label "__fmt"; asciz "d=%d x=%x s=%s!";
                   label "__str"; asciz s ]
           [ label "main";
             lea rdi "__fmt";
             mov rsi (imm d);
             mov rdx (imm x);
             lea rcx "__str";
             call "printf";
             mov rax (imm 0);
             ret ]
       in
       let image = Libc.Runtime.link_with_libs prog in
       let r = Vm.Machine.run_image image in
       Alcotest.(check string) "printf output"
         (Printf.sprintf "d=%d x=%x s=%s!" d x s)
         r.stdout)
    cases

let sha1_matches =
  QCheck2.Test.make ~count:15 ~name:"guest sha1 = host sha1" gen_str
    (fun s ->
       let open Dsl in
       let prog =
         Asm.Ast.obj
           ~data:[ label "__m"; asciz s ]
           ~bss:[ label "__out"; space 20 ]
           [ label "main";
             lea rdi "__m";
             mov rsi (imm (String.length s));
             lea rdx "__out";
             call "sha1";
             mov rdi (imm 1);
             lea rsi "__out";
             mov rdx (imm 20);
             call "write";
             mov rax (imm 0);
             ret ]
       in
       let image = Libc.Runtime.link_with_libs prog in
       let r = Vm.Machine.run_image image in
       r.stdout = Ocrypto.Sha1.digest s)

let aes_matches =
  QCheck2.Test.make ~count:15 ~name:"guest aes = host aes"
    QCheck2.Gen.(pair (string_size ~gen:char (return 16))
                   (string_size ~gen:char (return 16)))
    (fun (block, key) ->
       let open Dsl in
       let prog =
         Asm.Ast.obj
           ~data:[ label "__in"; Asm.Ast.Bytes block;
                   label "__key"; Asm.Ast.Bytes key ]
           ~bss:[ label "__out"; space 16 ]
           [ label "main";
             lea rdi "__in";
             lea rsi "__key";
             lea rdx "__out";
             call "aes128_encrypt";
             mov rdi (imm 1);
             lea rsi "__out";
             mov rdx (imm 16);
             call "write";
             mov rax (imm 0);
             ret ]
       in
       let image = Libc.Runtime.link_with_libs prog in
       let r = Vm.Machine.run_image image in
       r.stdout = Ocrypto.Aes.encrypt_block ~key block)

let sin_accuracy =
  QCheck2.Test.make ~count:25 ~name:"guest sin close to host sin"
    QCheck2.Gen.(int_range (-6) 6)
    (fun x ->
       let open Dsl in
       let prog =
         Asm.Ast.obj
           ~bss:[ label "__out"; space 8 ]
           [ label "main";
             mov rax (imm x);
             cvtsi2sd Isa.Reg.XMM0 rax;
             call "sin";
             lea rax "__out";
             movsd_store (mreg Isa.Reg.RAX) Isa.Reg.XMM0;
             mov rdi (imm 1);
             lea rsi "__out";
             mov rdx (imm 8);
             call "write";
             mov rax (imm 0);
             ret ]
       in
       let image = Libc.Runtime.link_with_libs prog in
       let r = Vm.Machine.run_image image in
       let bits = ref 0L in
       String.iteri
         (fun i c ->
            if i < 8 then
              bits :=
                Int64.logor !bits
                  (Int64.shift_left (Int64.of_int (Char.code c)) (8 * i)))
         r.stdout;
       let v = Int64.float_of_bits !bits in
       Float.abs (v -. sin (float_of_int x)) < 1e-6)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ strlen_matches; strcmp_matches; atoi_matches; rand_matches_host_mirror;
      sha1_matches; aes_matches; sin_accuracy ]

let () =
  Alcotest.run "libc"
    [ ("guest-vs-host", qtests);
      ("printf", [ Alcotest.test_case "printf formats" `Quick printf_cases ]) ]
