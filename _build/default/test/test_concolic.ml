(** Concolic-core tests: lifter-vs-CPU consistency (property), trace
    executor constraint extraction, memory models, kernel-taint
    policies, the driver loop, and the DSE engine. *)

module Dsl = Asm.Ast.Dsl
module E = Smt.Expr

(* ---------------- lifter agrees with the CPU ---------------- *)

(* Execute a short straight-line program twice — concretely on the
   CPU, and through lift + symbolic execution with a fully concrete
   state — and compare the final registers. *)

let lifter_matches_cpu_on program =
  let open Dsl in
  let items = (label "main" :: program) @ [ mov rax (imm 0); ret ] in
  let image = Libc.Runtime.link_with_libs (Asm.Ast.obj items) in
  let config = { Vm.Machine.default_config with argv = [ "t"; "abc" ] } in
  let trace = Trace.record ~config image in
  (* full-feature symbolic execution, no symbolic sources: every
     register the program writes must match the concrete trace *)
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      features = Ir.Lifter.full;
      lift_stack_ops = true }
  in
  let path = Concolic.Trace_exec.run cfg ~sources:[] trace in
  (* with no symbolic inputs there must be no constraints at all, and
     no diagnostics *)
  List.length path.constraints = 0 && not (Concolic.Error.has_lift_failure path.diags)

let gen_program =
  let open QCheck2.Gen in
  let open Dsl in
  let gen_src =
    oneof
      [ map (fun v -> imm (v land 0xffff)) int;
        oneofl [ rax; rbx; rcx; rdx; rsi; rdi ] ]
  in
  let gen_dst = oneofl [ rax; rbx; rcx; rdx; rsi; rdi ] in
  let gen_item =
    let* d = gen_dst and* s = gen_src in
    oneofl
      [ mov d s; add d s; sub d s; and_ d s; or_ d s; xor d s; imul d s;
        cmp d s; test d s ]
  in
  list_size (int_range 1 15) gen_item

let lifter_consistency =
  QCheck2.Test.make ~count:80 ~name:"lifter agrees with CPU" gen_program
    lifter_matches_cpu_on

(* ---------------- constraint extraction ---------------- *)

let run_trace ?(argv1 = "5") ?(cfg = Concolic.Trace_exec.bap_like_config)
    (bomb : Bombs.Common.t) =
  let config = Bombs.Common.config_for bomb argv1 in
  let trace = Trace.record ~config (Bombs.Catalog.image bomb) in
  Concolic.Trace_exec.run cfg trace

let constraints_solvable_to_trigger () =
  (* stack bomb with full features: negating the final branch must
     give 'K' *)
  let bomb = Bombs.Catalog.find "stack_bomb" in
  let cfg =
    { Concolic.Trace_exec.bap_like_config with lift_stack_ops = true }
  in
  let path = run_trace ~cfg bomb in
  match List.rev path.branches with
  | [] -> Alcotest.fail "no symbolic branches"
  | last :: _ -> (
      let prefix =
        List.filteri (fun i _ -> i < last.seq) (List.map fst path.constraints)
      in
      match Smt.Solver.solve (prefix @ [ E.not_ last.cond ]) with
      | Smt.Solver.Sat model ->
        Alcotest.(check int64) "solved to K" (Int64.of_int (Char.code 'K'))
          (List.assoc "argv1_0" model)
      | o -> Alcotest.failf "unexpected %s" (Smt.Solver.outcome_to_string o))

let fp_lift_gap_detected () =
  let bomb = Bombs.Catalog.find "float_bomb" in
  let path = run_trace ~argv1:"9999" bomb in
  Alcotest.(check bool) "Es1 diag on fp instruction" true
    (Concolic.Error.has_lift_failure path.diags)

let fp_constraints_with_full_lifting () =
  let bomb = Bombs.Catalog.find "float_bomb" in
  let cfg =
    { Concolic.Trace_exec.bap_like_config with features = Ir.Lifter.full }
  in
  let path = run_trace ~argv1:"9999" ~cfg bomb in
  let cs = List.map fst path.constraints in
  Alcotest.(check bool) "fp constraint present" true
    (List.exists E.contains_fp cs)

let covert_taint_policy_matters () =
  let bomb = Bombs.Catalog.find "file_bomb" in
  (* pin policy loses it *)
  let p1 = run_trace ~argv1:"apple" bomb in
  Alcotest.(check bool) "pin policy loses taint" true
    (List.exists
       (Concolic.Error.equal_diag Concolic.Error.Taint_lost_in_kernel)
       p1.diags);
  (* full policy keeps the data flow solvable: negate the strcmp
     result branch and ask for "mango" *)
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      taint_policy = Taint.full_policy;
      lift_stack_ops = true }
  in
  let p2 = run_trace ~argv1:"apple" ~cfg bomb in
  let ordered = Array.of_list p2.constraints in
  let solved =
    List.exists
      (fun (b : Concolic.Trace_exec.branch) ->
         let prefix =
           Array.to_list (Array.sub ordered 0 b.seq) |> List.map fst
         in
         match Smt.Solver.solve (prefix @ [ E.not_ b.cond ]) with
         | Smt.Solver.Sat model -> (
             match List.assoc_opt "argv1_0" model with
             | Some v -> Int64.to_int v = Char.code 'm'
             | None -> false)
         | _ -> false)
      p2.branches
  in
  Alcotest.(check bool) "full policy recovers 'm…'" true solved

let memory_model_gap () =
  let bomb = Bombs.Catalog.find "array1_bomb" in
  (* concrete-only: diag + no way to the bomb *)
  let p1 = run_trace bomb in
  Alcotest.(check bool) "concretized load" true
    (List.exists
       (function Concolic.Error.Concretized_load _ -> true | _ -> false)
       p1.diags);
  (* indexed memory: the table relation is in the constraints; the
     branch can be solved to index 6 *)
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      mem_mode = Concolic.Sym_exec.Indexed { window = 32; max_depth = 1 } }
  in
  let p2 = run_trace ~cfg bomb in
  let ordered = Array.of_list p2.constraints in
  let solved =
    List.exists
      (fun (b : Concolic.Trace_exec.branch) ->
         let prefix =
           Array.to_list (Array.sub ordered 0 b.seq) |> List.map fst
         in
         match Smt.Solver.solve (prefix @ [ E.not_ b.cond ]) with
         | Smt.Solver.Sat model -> (
             match List.assoc_opt "argv1_0" model with
             | Some v -> Int64.to_int v = Char.code '6'
             | None -> false)
         | _ -> false)
      p2.branches
  in
  Alcotest.(check bool) "indexed model solves to '6'" true solved

(* ---------------- driver ---------------- *)

let driver_cracks_stack_bomb () =
  let bomb = Bombs.Catalog.find "stack_bomb" in
  let cfg =
    { Concolic.Trace_exec.bap_like_config with lift_stack_ops = true }
  in
  let config = Concolic.Driver.default_config cfg in
  let target =
    { Concolic.Driver.image = Bombs.Catalog.image bomb;
      run_config = (fun i -> Bombs.Common.config_for bomb i);
      detonated = Bombs.Common.triggered }
  in
  match Concolic.Driver.explore ~seed:"A" config target with
  | { solved_input = Some "K"; _ } -> ()
  | { solved_input = Some other; _ } ->
    Alcotest.failf "unexpected input %S" other
  | { solved_input = None; _ } -> Alcotest.fail "not solved"

let driver_respects_iteration_budget () =
  let bomb = Bombs.Catalog.find "sha1_bomb" in
  let config =
    { (Concolic.Driver.default_config Concolic.Trace_exec.triton_like_config)
      with max_iterations = 3 }
  in
  let target =
    { Concolic.Driver.image = Bombs.Catalog.image bomb;
      run_config = (fun i -> Bombs.Common.config_for bomb i);
      detonated = Bombs.Common.triggered }
  in
  let v = Concolic.Driver.explore ~seed:"zz" config target in
  Alcotest.(check bool) "bounded" true (v.iterations <= 3);
  Alcotest.(check bool) "not solved" true (v.solved_input = None)

(* ---------------- DSE ---------------- *)

let dse_solves_array1 () =
  let bomb = Bombs.Catalog.find "array1_bomb" in
  let config = Concolic.Dse.default_config Concolic.Dse.With_libs in
  let o = Concolic.Dse.explore config (Bombs.Catalog.image bomb) in
  match o.claims with
  | { input; _ } :: _ ->
    Alcotest.(check char) "first char 6" '6' input.[0]
  | [] -> Alcotest.fail "no claim"

let dse_misses_array2 () =
  let bomb = Bombs.Catalog.find "array2_bomb" in
  let config = Concolic.Dse.default_config Concolic.Dse.With_libs in
  let o = Concolic.Dse.explore config (Bombs.Catalog.image bomb) in
  let hit =
    List.exists
      (fun (c : Concolic.Dse.claim) ->
         let res =
           Vm.Machine.run_image
             ~config:(Bombs.Common.config_for bomb c.input)
             (Bombs.Catalog.image bomb)
         in
         Bombs.Common.triggered res)
      o.claims
  in
  Alcotest.(check bool) "level-two array defeats depth-1 model" false hit

let dse_sequential_fork () =
  let bomb = Bombs.Catalog.find "fork_bomb" in
  let config = Concolic.Dse.default_config Concolic.Dse.No_libs in
  let o = Concolic.Dse.explore config (Bombs.Catalog.image bomb) in
  let hit =
    List.exists
      (fun (c : Concolic.Dse.claim) ->
         let res =
           Vm.Machine.run_image
             ~config:(Bombs.Common.config_for bomb c.input)
             (Bombs.Catalog.image bomb)
         in
         Bombs.Common.triggered res)
      o.claims
  in
  Alcotest.(check bool) "NoLib fork summary solves it" true hit

let dse_crashes_on_socket () =
  let bomb = Bombs.Catalog.find "web_bomb" in
  let config = Concolic.Dse.default_config Concolic.Dse.With_libs in
  let o = Concolic.Dse.explore config (Bombs.Catalog.image bomb) in
  Alcotest.(check bool) "crashed" true (o.crashed <> None)

let qtests = List.map QCheck_alcotest.to_alcotest [ lifter_consistency ]

let () =
  Alcotest.run "concolic"
    [ ("lifter", qtests);
      ("trace-exec",
       [ Alcotest.test_case "solvable constraints" `Quick
           constraints_solvable_to_trigger;
         Alcotest.test_case "fp lift gap" `Quick fp_lift_gap_detected;
         Alcotest.test_case "fp constraints" `Quick
           fp_constraints_with_full_lifting;
         Alcotest.test_case "covert taint policy" `Quick
           covert_taint_policy_matters;
         Alcotest.test_case "memory model gap" `Quick memory_model_gap ]);
      ("driver",
       [ Alcotest.test_case "cracks stack bomb" `Quick
           driver_cracks_stack_bomb;
         Alcotest.test_case "iteration budget" `Quick
           driver_respects_iteration_budget ]);
      ("dse",
       [ Alcotest.test_case "solves one-level array" `Quick dse_solves_array1;
         Alcotest.test_case "misses two-level array" `Quick dse_misses_array2;
         Alcotest.test_case "sequential fork" `Quick dse_sequential_fork;
         Alcotest.test_case "socket crash" `Quick dse_crashes_on_socket ]) ]
