(** Dataset sanity: every bomb detonates exactly on its documented
    trigger, binary sizes sit in the paper's range, and images
    round-trip through serialisation. *)

let run_bomb ?(winning = false) (b : Bombs.Common.t) argv1 =
  let config = Bombs.Common.config_for ~winning b argv1 in
  Vm.Machine.run_image ~config (Bombs.Catalog.image b)

let check_triggers (b : Bombs.Common.t) () =
  match b.trigger with
  | None ->
    (* the negative bomb must never fire, even on "winning" input *)
    let res = run_bomb ~winning:true b "1" in
    Alcotest.(check bool) "stays quiet" false (Bombs.Common.triggered res)
  | Some _ ->
    let res = run_bomb ~winning:true b (Bombs.Common.winning_argv b) in
    if not (Bombs.Common.triggered res) then
      Alcotest.failf "%s did not trigger: stdout=%S fault=%s steps=%d"
        b.name res.stdout
        (match res.fault with
         | Some f -> Vm.Machine.show_fault f
         | None -> "none")
        res.steps

let check_quiet (b : Bombs.Common.t) () =
  (* a deliberately wrong input in the neutral environment *)
  let res = run_bomb b b.decoy in
  if Bombs.Common.triggered res then
    Alcotest.failf "%s triggered on wrong input" b.name

let check_exit_code (b : Bombs.Common.t) () =
  match b.trigger with
  | None -> ()
  | Some _ ->
    let res = run_bomb ~winning:true b (Bombs.Common.winning_argv b) in
    Alcotest.(check (option int)) "exit 42" (Some Bombs.Common.boom_exit_code)
      res.exit_code

let size_in_range () =
  let lo, median, hi = Bombs.Catalog.size_stats () in
  if lo < 8 * 1024 || hi > 30 * 1024 then
    Alcotest.failf "sizes out of plausible range: lo=%d hi=%d" lo hi;
  if median < 9 * 1024 || median > 20 * 1024 then
    Alcotest.failf "median size %d outside paper-like band" median

let count_is_22 () =
  Alcotest.(check int) "Table II has 22 bombs" 22
    (List.length Bombs.Catalog.table2)

let image_roundtrip () =
  List.iter
    (fun b ->
       let img = Bombs.Catalog.image b in
       let bytes = Asm.Image.to_bytes img in
       let img' = Asm.Image.of_bytes bytes in
       Alcotest.(check string) "text survives" img.text img'.Asm.Image.text;
       Alcotest.(check string) "data survives" img.data img'.Asm.Image.data;
       Alcotest.(check int) "symbol count"
         (List.length img.symbols)
         (List.length img'.symbols))
    Bombs.Catalog.all

let categories_cover_paper () =
  let expected =
    [ "Symbolic Variable Declaration"; "Covert Symbolic Propagation";
      "Parallel Program"; "Symbolic Array"; "Contextual Symbolic Value";
      "Symbolic Jump"; "Floating-point Number"; "External Function Call";
      "Crypto Function" ]
  in
  let actual =
    List.sort_uniq compare
      (List.map (fun (b : Bombs.Common.t) -> b.category) Bombs.Catalog.table2)
  in
  Alcotest.(check (list string)) "categories" (List.sort compare expected)
    actual

let tests =
  List.concat_map
    (fun (b : Bombs.Common.t) ->
       [ Alcotest.test_case (b.name ^ " triggers") `Quick (check_triggers b);
         Alcotest.test_case (b.name ^ " quiet on wrong input") `Quick
           (check_quiet b);
         Alcotest.test_case (b.name ^ " exit code") `Quick (check_exit_code b)
       ])
    Bombs.Catalog.all
  @ [ Alcotest.test_case "dataset sizes in range" `Quick size_in_range;
      Alcotest.test_case "22 bombs" `Quick count_is_22;
      Alcotest.test_case "image round-trip" `Quick image_roundtrip;
      Alcotest.test_case "paper categories covered" `Quick
        categories_cover_paper ]

let () = Alcotest.run "bombs" [ ("bombs", tests) ]
