test/test_engines.ml: Alcotest Bombs Concolic Engines List Printf String
