test/test_taint.ml: Alcotest Asm Bombs Char Isa Libc List Taint Trace Vm
