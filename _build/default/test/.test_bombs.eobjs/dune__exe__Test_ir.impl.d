test/test_ir.ml: Alcotest Ir Isa List String
