test/test_concolic.mli:
