test/test_libc.ml: Alcotest Asm Char Float Int64 Isa Libc List Ocrypto Printf QCheck2 QCheck_alcotest String Vm
