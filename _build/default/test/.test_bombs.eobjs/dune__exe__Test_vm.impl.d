test/test_vm.ml: Alcotest Asm Bombs Codec Insn Int64 Isa Libc List Option QCheck2 QCheck_alcotest Reg String Vm
