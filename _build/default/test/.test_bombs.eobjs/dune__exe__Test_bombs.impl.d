test/test_bombs.ml: Alcotest Asm Bombs List Vm
