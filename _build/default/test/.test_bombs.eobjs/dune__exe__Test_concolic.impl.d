test/test_concolic.ml: Alcotest Array Asm Bombs Char Concolic Int64 Ir Libc List QCheck2 QCheck_alcotest Smt String Taint Trace Vm
