test/test_bombs.mli:
