test/test_smt.ml: Alcotest Array Blast Eval Expr Int64 List Printer QCheck2 QCheck_alcotest Sat Simplify Smt Solver String
