(** VM tests: CPU semantics, codec round-trips, kernel objects
    (pipes, files, fork, threads, signals), and determinism. *)

open Isa
module Dsl = Asm.Ast.Dsl

(* ---------------- codec round-trip (property) ---------------- *)

let gen_reg = QCheck2.Gen.oneofl Reg.all
let gen_xmm = QCheck2.Gen.oneofl Reg.all_xmm

let gen_width = QCheck2.Gen.oneofl [ Insn.W8; W16; W32; W64 ]

let gen_mem =
  let open QCheck2.Gen in
  let* base = opt gen_reg in
  let* index = opt gen_reg in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = map Int64.of_int (int_range (-4096) 4096) in
  return { Insn.base; index; scale; disp }

let gen_operand =
  let open QCheck2.Gen in
  oneof
    [ map (fun r -> Insn.Reg r) gen_reg;
      map (fun v -> Insn.Imm (Int64.of_int v)) int;
      map (fun m -> Insn.Mem m) gen_mem ]

let gen_insn =
  let open QCheck2.Gen in
  let reg_op = map (fun r -> Insn.Reg r) gen_reg in
  oneof
    [ (let* w = gen_width and* d = gen_operand and* s = gen_operand in
       return (Insn.Mov (w, d, s)));
      (let* op =
         oneofl [ Insn.Add; Sub; And; Or; Xor; Shl; Shr; Sar; Imul ]
       and* w = gen_width and* d = reg_op and* s = gen_operand in
       return (Insn.Alu (op, w, d, s)));
      (let* c = oneofl [ Insn.E; NE; L; LE; G; GE; B; BE; A; AE ]
       and* a = map Int64.of_int (int_range 0 100000) in
       return (Insn.Jcc (c, a)));
      (let* m = gen_mem and* r = gen_reg in
       return (Insn.Lea (r, m)));
      (let* x = gen_xmm and* o = gen_operand in
       return (Insn.Cvtsi2sd (x, o)));
      (let* x = gen_xmm and* m = gen_mem in
       return (Insn.Movsd (x, Xmem m)));
      return Insn.Syscall;
      return Insn.Ret;
      (let* o = gen_operand in return (Insn.Push o)) ]

let codec_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"codec round-trip" gen_insn (fun insn ->
      let enc = Codec.encode insn in
      let dec, consumed = Codec.decode enc 0 in
      Insn.equal dec insn && consumed = String.length enc)

(* ---------------- CPU semantics spot checks ---------------- *)

let run_asm ?(argv = [ "t" ]) ?(config = Vm.Machine.default_config) items =
  let prog = Asm.Ast.obj items in
  let image = Libc.Runtime.link_with_libs prog in
  Vm.Machine.run_image ~config:{ config with argv } image

let exit_code res =
  Option.value ~default:(-1) res.Vm.Machine.exit_code

let flags_sub () =
  (* 5 - 7 is negative: jl taken *)
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rax (imm 5);
        cmp rax (imm 7);
        jl ".yes";
        mov rax (imm 1);
        ret;
        label ".yes";
        mov rax (imm 42);
        ret ]
  in
  Alcotest.(check int) "jl taken" 42 (exit_code res)

let unsigned_compare () =
  (* 0xffffffffffffffff > 1 unsigned: ja taken *)
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rax (imm (-1));
        cmp rax (imm 1);
        ja ".yes";
        mov rax (imm 1);
        ret;
        label ".yes";
        mov rax (imm 42);
        ret ]
  in
  Alcotest.(check int) "ja taken" 42 (exit_code res)

let partial_register_write () =
  (* W32 write zeroes the top half; W8 write merges *)
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rax (imm64 0x1122334455667788L);
        mov ~w:Isa.Insn.W32 rax (imm 0x99);
        cmp rax (imm 0x99);
        jne ".bad";
        mov rbx (imm64 0xff00L);
        mov ~w:Isa.Insn.W8 rbx (imm 0x7);
        mov rcx (imm64 0xff07L);
        cmp rbx rcx;
        jne ".bad";
        mov rax (imm 42);
        ret;
        label ".bad";
        mov rax (imm 1);
        ret ]
  in
  Alcotest.(check int) "width merges" 42 (exit_code res)

let idiv_semantics () =
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rax (imm (-17));
        mov rcx (imm 5);
        idiv rcx;
        (* C semantics: -17 / 5 = -3 rem -2 *)
        cmp rax (imm (-3));
        jne ".bad";
        cmp rdx (imm (-2));
        jne ".bad";
        mov rax (imm 42);
        ret;
        label ".bad";
        mov rax (imm 1);
        ret ]
  in
  Alcotest.(check int) "idiv" 42 (exit_code res)

let div_by_zero_faults () =
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rax (imm 100);
        xor rcx rcx;
        idiv rcx;
        mov rax (imm 0);
        ret ]
  in
  Alcotest.(check bool) "faulted" true (res.fault <> None)

let signal_handler_resumes () =
  let open Dsl in
  let res =
    run_asm
      [ label "main";
        mov rdi (imm 8);
        mov_lbl rsi ".handler";
        call "signal";
        mov rax (imm 100);
        xor rcx rcx;
        idiv rcx;                       (* faults; handler returns here *)
        mov rax (imm 42);
        ret;
        label ".handler";
        ret ]
  in
  Alcotest.(check int) "resumed after fault" 42 (exit_code res);
  Alcotest.(check bool) "no machine fault" true (res.fault = None)

(* ---------------- kernel objects ---------------- *)

let pipe_roundtrip () =
  let prog =
    Asm.Ast.obj
      ~data:[ Dsl.label "msg"; Dsl.asciz "hello" ]
      ~bss:[ Dsl.label "pfds"; Dsl.space 8; Dsl.label "buf"; Dsl.space 8 ]
      [ Dsl.label "main";
        Dsl.lea Dsl.rdi "pfds";
        Dsl.call "pipe";
        Dsl.lea Dsl.rax "pfds";
        Dsl.mov ~w:Isa.Insn.W32 Dsl.rdi (Dsl.mreg ~disp:4 Isa.Reg.RAX);
        Dsl.lea Dsl.rsi "msg";
        Dsl.mov Dsl.rdx (Dsl.imm 5);
        Dsl.call "write";
        Dsl.lea Dsl.rax "pfds";
        Dsl.mov ~w:Isa.Insn.W32 Dsl.rdi (Dsl.mreg Isa.Reg.RAX);
        Dsl.lea Dsl.rsi "buf";
        Dsl.mov Dsl.rdx (Dsl.imm 5);
        Dsl.call "read";
        Dsl.mov Dsl.rdi (Dsl.imm 1);
        Dsl.lea Dsl.rsi "buf";
        Dsl.mov Dsl.rdx (Dsl.imm 5);
        Dsl.call "write";
        Dsl.mov Dsl.rax (Dsl.imm 0);
        Dsl.ret ]
  in
  let image = Libc.Runtime.link_with_libs prog in
  let r = Vm.Machine.run_image image in
  Alcotest.(check string) "pipe carried the bytes" "hello" r.stdout

let file_roundtrip () =
  let bomb = Bombs.Catalog.find "file_bomb" in
  let config = Bombs.Common.config_for bomb "mango" in
  let r = Vm.Machine.run_image ~config (Bombs.Catalog.image bomb) in
  Alcotest.(check bool) "file bomb works" true (Bombs.Common.triggered r)

let fork_isolates_memory () =
  let bomb = Bombs.Catalog.find "fork_bomb" in
  (* child writes 3*33+1 = 100 into the pipe; parent must see it *)
  let config = Bombs.Common.config_for bomb "33" in
  let r = Vm.Machine.run_image ~config (Bombs.Catalog.image bomb) in
  Alcotest.(check bool) "fork+pipe" true (Bombs.Common.triggered r)

let threads_share_memory () =
  let bomb = Bombs.Catalog.find "pthread_bomb" in
  let config = Bombs.Common.config_for bomb "70" in
  let r = Vm.Machine.run_image ~config (Bombs.Catalog.image bomb) in
  Alcotest.(check bool) "pthread shared var" true (Bombs.Common.triggered r)

let deterministic_runs () =
  let bomb = Bombs.Catalog.find "srand_bomb" in
  let config = Bombs.Common.config_for bomb "12345" in
  let r1 = Vm.Machine.run_image ~config (Bombs.Catalog.image bomb) in
  let r2 = Vm.Machine.run_image ~config (Bombs.Catalog.image bomb) in
  Alcotest.(check string) "same stdout" r1.stdout r2.stdout;
  Alcotest.(check int) "same steps" r1.steps r2.steps

let fuel_limits () =
  let open Dsl in
  let prog =
    Asm.Ast.obj [ label "main"; label ".spin"; jmp ".spin" ]
  in
  let image = Libc.Runtime.link_with_libs prog in
  let config = { Vm.Machine.default_config with fuel = 10_000 } in
  let r = Vm.Machine.run_image ~config image in
  Alcotest.(check bool) "fuel exhausted" true r.fuel_exhausted

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ codec_roundtrip ]

let () =
  Alcotest.run "vm"
    [ ("codec", qcheck_tests);
      ("cpu",
       [ Alcotest.test_case "signed flags" `Quick flags_sub;
         Alcotest.test_case "unsigned flags" `Quick unsigned_compare;
         Alcotest.test_case "partial register writes" `Quick
           partial_register_write;
         Alcotest.test_case "idiv" `Quick idiv_semantics;
         Alcotest.test_case "div by zero faults" `Quick div_by_zero_faults;
         Alcotest.test_case "signal handler" `Quick signal_handler_resumes ]);
      ("kernel",
       [ Alcotest.test_case "pipe round-trip" `Quick pipe_roundtrip;
         Alcotest.test_case "file round-trip" `Quick file_roundtrip;
         Alcotest.test_case "fork + pipe" `Quick fork_isolates_memory;
         Alcotest.test_case "threads share memory" `Quick threads_share_memory;
         Alcotest.test_case "determinism" `Quick deterministic_runs;
         Alcotest.test_case "fuel" `Quick fuel_limits ]) ]
