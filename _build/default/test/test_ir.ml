(** Lifter golden tests: the BIL statements produced for each
    instruction class, plus feature gating and branch lowering. *)

open Ir.Bil
module L = Ir.Lifter
module I = Isa.Insn

let lift ?(features = L.full) insn = L.lift features ~next:0x2000L insn

let has_set name stmts =
  List.exists (function Set (n, _, _) -> n = name | _ -> false) stmts

let has_store stmts =
  List.exists (function Store _ -> true | _ -> false) stmts

let count p stmts = List.length (List.filter p stmts)

let mov_reg_reg () =
  match lift (I.Mov (W64, Reg RAX, Reg RBX)) with
  | [ Set ("RAX", 64, Var ("RBX", 64)) ] -> ()
  | s -> Alcotest.failf "unexpected: %s" (String.concat ";" (List.map show_stmt s))

let mov_w32_zero_extends () =
  match lift (I.Mov (W32, Reg RAX, Imm 5L)) with
  | [ Set ("RAX", 64, Zext (64, Int (5L, 32))) ] -> ()
  | s -> Alcotest.failf "unexpected: %s" (String.concat ";" (List.map show_stmt s))

let mov_w8_merges () =
  match lift (I.Mov (W8, Reg RBX, Imm 7L)) with
  | [ Set ("RBX", 64, Concat (Extract (63, 8, Var ("RBX", 64)), Int (7L, 8))) ]
    -> ()
  | s -> Alcotest.failf "unexpected: %s" (String.concat ";" (List.map show_stmt s))

let add_sets_all_flags () =
  let stmts = lift (I.Alu (Add, W64, Reg RAX, Reg RBX)) in
  List.iter
    (fun f ->
       Alcotest.(check bool) (f ^ " set") true (has_set f stmts))
    [ "ZF"; "SF"; "CF"; "OF"; "PF" ];
  Alcotest.(check bool) "writes back" true (has_set "RAX" stmts)

let cmp_sets_flags_only () =
  let stmts = lift (I.Cmp (W64, Reg RAX, Imm 5L)) in
  Alcotest.(check bool) "no RAX write" false (has_set "RAX" stmts);
  Alcotest.(check bool) "ZF set" true (has_set "ZF" stmts)

let push_lowered () =
  let stmts = lift (I.Push (Reg RAX)) in
  Alcotest.(check bool) "stores" true (has_store stmts);
  Alcotest.(check bool) "moves RSP" true (has_set "RSP" stmts)

let call_pushes_return () =
  let stmts = lift (I.Call (Direct 0x1234L)) in
  Alcotest.(check bool) "stores return addr" true (has_store stmts);
  match List.rev stmts with
  | Jmp (Int (0x1234L, 64)) :: _ -> ()
  | _ -> Alcotest.fail "must end in Jmp to target"

let ret_is_load_jump () =
  let stmts = lift I.Ret in
  match List.rev stmts with
  | Jmp (Var ("t_ret", 64)) :: _ -> ()
  | _ -> Alcotest.fail "ret must jump through t_ret"

let jcc_is_cjmp () =
  match lift (I.Jcc (E, 0x500L)) with
  | [ Cjmp (Var ("ZF", 1), 0x500L) ] -> ()
  | s -> Alcotest.failf "unexpected: %s" (String.concat ";" (List.map show_stmt s))

let indirect_jump_reads_operand () =
  match lift (I.Jmp (Indirect (Reg RCX))) with
  | [ Jmp (Var ("RCX", 64)) ] -> ()
  | _ -> Alcotest.fail "indirect jump"

let fp_gated_by_features () =
  let insn = I.Cvtsi2sd (XMM0, Reg RAX) in
  (match lift ~features:L.no_fp insn with
   | [ Special _ ] -> ()
   | _ -> Alcotest.fail "no_fp must refuse cvtsi2sd");
  match lift ~features:L.full insn with
  | [ Set ("XMM0", 64, Fof_int (Var ("RAX", 64))) ] -> ()
  | _ -> Alcotest.fail "full must lift cvtsi2sd"

let ucomisd_sets_zcp () =
  let stmts = lift (I.Ucomisd (XMM0, Xreg XMM1)) in
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " set") true (has_set f stmts))
    [ "ZF"; "CF"; "PF" ]

let shifts_mask_amount () =
  let stmts = lift (I.Alu (Shl, W64, Reg RAX, Reg RCX)) in
  let masked =
    List.exists
      (function
        | Set ("t_res", _, Binop (Shl, _, Binop (And, _, Int (0x3fL, _)))) ->
          true
        | _ -> false)
      stmts
  in
  Alcotest.(check bool) "amount masked to 6 bits" true masked

let setcc_byte () =
  let stmts = lift (I.Setcc (NE, Reg RAX)) in
  Alcotest.(check int) "single write" 1
    (count (function Set ("RAX", _, _) -> true | _ -> false) stmts)

let nop_empty () =
  Alcotest.(check int) "nop lifts to nothing" 0 (List.length (lift I.Nop))

let width_of_sane () =
  Alcotest.(check int) "cmp width" 1
    (width_of_exp (Cmp (Eq, Int (0L, 64), Int (0L, 64))));
  Alcotest.(check int) "concat width" 24
    (width_of_exp (Concat (Int (0L, 16), Int (0L, 8))));
  Alcotest.(check int) "extract width" 8
    (width_of_exp (Extract (15, 8, Int (0L, 64))))

let () =
  Alcotest.run "ir"
    [ ("lifter",
       [ Alcotest.test_case "mov reg,reg" `Quick mov_reg_reg;
         Alcotest.test_case "mov w32 zext" `Quick mov_w32_zero_extends;
         Alcotest.test_case "mov w8 merge" `Quick mov_w8_merges;
         Alcotest.test_case "add flags" `Quick add_sets_all_flags;
         Alcotest.test_case "cmp flags only" `Quick cmp_sets_flags_only;
         Alcotest.test_case "push lowering" `Quick push_lowered;
         Alcotest.test_case "call pushes return" `Quick call_pushes_return;
         Alcotest.test_case "ret" `Quick ret_is_load_jump;
         Alcotest.test_case "jcc" `Quick jcc_is_cjmp;
         Alcotest.test_case "indirect jump" `Quick indirect_jump_reads_operand;
         Alcotest.test_case "fp feature gate" `Quick fp_gated_by_features;
         Alcotest.test_case "ucomisd flags" `Quick ucomisd_sets_zcp;
         Alcotest.test_case "shift masking" `Quick shifts_mask_amount;
         Alcotest.test_case "setcc" `Quick setcc_byte;
         Alcotest.test_case "nop" `Quick nop_empty;
         Alcotest.test_case "widths" `Quick width_of_sane ]) ]
