(** CTF-style crackme solved by the full concolic loop.

    The serial check mixes per-character arithmetic, a running
    checksum, and an early length gate — several coupled branches, so
    one negate-and-solve is not enough and the generational search of
    {!Concolic.Driver} has to iterate. *)

open Asm.Ast.Dsl
open Isa.Insn
open Isa.Reg

(* serial rules, checked in sequence:
     strlen(s) == 5
     s[0] == 'V'
     s[1] == s[4]                (first inner char mirrors the last)
     (s[2] - '0') * 2 == s[3] - '0'   (digit doubling)
     s[1] + s[2] + s[3] == 0x??       (checksum)
   one valid serial: "VX24X"  (with checksum tuned to match) *)
let serial = "VX24X"

let checksum =
  Char.code serial.[1] + Char.code serial.[2] + Char.code serial.[3]

let crackme : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "ok_msg"; asciz "serial accepted" ]
    [ label "main";
      cmp rdi (imm 2);
      jl ".fail";
      mov rbx (mreg ~disp:8 RSI);
      (* length gate *)
      mov rdi rbx;
      call "strlen";
      cmp rax (imm 5);
      jne ".fail";
      (* s[0] == 'V' *)
      movzx rax ~sw:W8 (mreg RBX);
      cmp rax (imm (Char.code 'V'));
      jne ".fail";
      (* s[1] == s[4] *)
      movzx rax ~sw:W8 (mreg ~disp:1 RBX);
      movzx rcx ~sw:W8 (mreg ~disp:4 RBX);
      cmp rax rcx;
      jne ".fail";
      (* (s[2]-'0')*2 == s[3]-'0' *)
      movzx rax ~sw:W8 (mreg ~disp:2 RBX);
      sub rax (imm (Char.code '0'));
      imul rax (imm 2);
      movzx rcx ~sw:W8 (mreg ~disp:3 RBX);
      sub rcx (imm (Char.code '0'));
      cmp rax rcx;
      jne ".fail";
      (* checksum *)
      movzx rax ~sw:W8 (mreg ~disp:1 RBX);
      movzx rcx ~sw:W8 (mreg ~disp:2 RBX);
      add rax rcx;
      movzx rcx ~sw:W8 (mreg ~disp:3 RBX);
      add rax rcx;
      cmp rax (imm checksum);
      jne ".fail";
      lea rdi "ok_msg";
      call "puts";
      mov rax (imm 0);
      ret;
      label ".fail";
      mov rax (imm 1);
      ret ]

let () =
  let image = Libc.Runtime.link_with_libs crackme in
  Fmt.pr "crackme image: %d bytes; known serial %S (not told to the engine)@."
    (Asm.Image.size image) serial;
  (* a fully-featured engine config: FP lifting, kernel-following
     taint, indexed memory — "what a tool could be" *)
  let trace_cfg =
    { Concolic.Trace_exec.bap_like_config with
      features = Ir.Lifter.full;
      lift_stack_ops = true;
      taint_policy = Taint.full_policy;
      mem_mode = Concolic.Sym_exec.Indexed { window = 64; max_depth = 2 } }
  in
  let config =
    { (Concolic.Driver.default_config trace_cfg) with
      argv = Concolic.Driver.Wide 8;
      max_iterations = 64 }
  in
  let target =
    { Concolic.Driver.image;
      run_config =
        (fun input ->
           { Vm.Machine.default_config with argv = [ "crackme"; input ] });
      detonated =
        (fun res ->
           (* success = the acceptance message *)
           let needle = "serial accepted" in
           let h = res.stdout and n = needle in
           let hl = String.length h and nl = String.length n in
           let rec scan i =
             i + nl <= hl && (String.sub h i nl = n || scan (i + 1))
           in
           scan 0) }
  in
  match Concolic.Driver.explore ~seed:"AAAAA" config target with
  | { solved_input = Some input; iterations; traces_run; _ } ->
    Fmt.pr "cracked in %d iterations (%d traces): %S@." iterations traces_run
      input;
    let res =
      Vm.Machine.run_image
        ~config:{ Vm.Machine.default_config with argv = [ "crackme"; input ] }
        image
    in
    Fmt.pr "verification run: %S (exit %d)@." res.stdout
      (Option.value ~default:(-1) res.exit_code)
  | { solved_input = None; iterations; _ } ->
    Fmt.pr "not cracked after %d iterations@." iterations
