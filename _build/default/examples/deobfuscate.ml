(** Opaque-predicate detection — the paper's second application
    scenario (§V-D2).

    An obfuscator guards bogus code behind predicates that are
    constant in fact but look input-dependent (here: [x*(x+1) mod 2
    == 0], always true over the integers).  Concolic execution
    detects them: a conditional whose negation is UNSAT under the
    path prefix is opaque, and its untaken side is dead code. *)

open Asm.Ast.Dsl

(* main with two opaque predicates and one genuine branch *)
let obfuscated : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "real_msg"; asciz "real behaviour";
            label "decoy_msg"; asciz "bogus branch!" ]
    [ label "main";
      cmp rdi (imm 2);
      jl ".out";
      mov rbx (mreg ~disp:8 Isa.Reg.RSI);
      mov rdi rbx;
      call "atoi";
      mov r12 rax;
      (* opaque 1: x * (x + 1) is always even *)
      mov rcx r12;
      add rcx (imm 1);
      imul rcx r12;
      and_ rcx (imm 1);
      test rcx rcx;
      jne ".bogus1";                    (* never taken *)
      (* opaque 2: (x | 1) is always odd *)
      mov rcx r12;
      or_ rcx (imm 1);
      and_ rcx (imm 1);
      cmp rcx (imm 1);
      jne ".bogus2";                    (* never taken *)
      (* genuine input-dependent branch *)
      cmp r12 (imm 1000);
      jg ".big";
      lea rdi "real_msg";
      call "puts";
      label ".out";
      mov rax (imm 0);
      ret;
      label ".big";
      mov rax (imm 2);
      ret;
      label ".bogus1";
      lea rdi "decoy_msg";
      call "puts";
      jmp ".out";
      label ".bogus2";
      lea rdi "decoy_msg";
      call "puts";
      jmp ".out" ]

let () =
  let image = Libc.Runtime.link_with_libs obfuscated in
  let config = { Vm.Machine.default_config with argv = [ "obf"; "7" ] } in
  let trace = Trace.record ~config image in
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      features = Ir.Lifter.full;
      lift_stack_ops = true }
  in
  let path = Concolic.Trace_exec.run cfg trace in
  let ordered = Array.of_list path.constraints in
  Fmt.pr "trace has %d symbolic branches; probing each for opacity@.@."
    (List.length path.branches);
  List.iter
    (fun (b : Concolic.Trace_exec.branch) ->
       let prefix =
         Array.to_list (Array.sub ordered 0 b.seq) |> List.map fst
       in
       let verdict =
         match Smt.Solver.solve (prefix @ [ Smt.Expr.not_ b.cond ]) with
         | Smt.Solver.Unsat ->
           "OPAQUE  (negation unsat: the other side is dead code)"
         | Smt.Solver.Sat _ -> "genuine (both sides reachable)"
         | Smt.Solver.Unknown _ -> "unknown"
       in
       Fmt.pr "branch at 0x%Lx taken=%b: %s@." b.pc b.taken verdict)
    path.branches
