examples/quickstart.ml: Asm Buffer Char Concolic Fmt Int64 Ir Isa Libc List Option Printf Smt Taint Trace Vm
