examples/quickstart.mli:
