examples/crackme.mli:
