examples/fix_time_bomb.ml: Bombs Concolic Fmt List Smt Trace Vm
