examples/fix_time_bomb.mli:
