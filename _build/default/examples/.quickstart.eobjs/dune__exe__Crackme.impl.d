examples/crackme.ml: Asm Char Concolic Fmt Ir Isa Libc Option String Taint Vm
