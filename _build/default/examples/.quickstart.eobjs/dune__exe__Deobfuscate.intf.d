examples/deobfuscate.mli:
