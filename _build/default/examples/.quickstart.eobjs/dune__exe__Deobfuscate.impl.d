examples/deobfuscate.ml: Array Asm Concolic Fmt Ir Isa Libc List Smt Trace Vm
