(** Extension demo: repairing the Es0 row.

    Every tool in Table II fails the time bomb because none declares
    the clock symbolic (Es0).  The core supports it: pass
    [symbolic_syscalls = ["time"]] and the executor turns the [time]
    result into a solver variable, the bomb branch becomes a
    constraint, and the solver reads the detonation date out of the
    binary. *)

let () =
  let bomb = Bombs.Catalog.find "time_bomb" in
  let image = Bombs.Catalog.image bomb in
  let config = Bombs.Common.config_for bomb "x" in
  let trace = Trace.record ~config image in

  Fmt.pr "== default engine (clock concrete): Es0, as in Table II ==@.";
  let plain =
    Concolic.Trace_exec.run Concolic.Trace_exec.bap_like_config trace
  in
  Fmt.pr "symbolic branches found: %d@.@." (List.length plain.branches);

  Fmt.pr "== with the clock declared symbolic ==@.";
  let cfg =
    { Concolic.Trace_exec.bap_like_config with
      symbolic_syscalls = [ "time" ] }
  in
  let path = Concolic.Trace_exec.run cfg trace in
  Fmt.pr "symbolic branches found: %d@." (List.length path.branches);
  match path.branches with
  | [] -> Fmt.pr "unexpected: no branch to negate@."
  | b :: _ ->
    (* the trace went the "defused" way; negate to get the bomb way *)
    (match Smt.Solver.solve [ Smt.Expr.not_ b.cond ] with
     | Smt.Solver.Sat model ->
       List.iter
         (fun (name, v) ->
            Fmt.pr "  %s = %Ld@." name v;
            Fmt.pr "@.verification: run with the clock set to %Ld@." v;
            let config = { config with now = v } in
            let res = Vm.Machine.run_image ~config image in
            Fmt.pr "stdout: %S  (detonated: %b)@." res.stdout
              (Bombs.Common.triggered res))
         model
     | o -> Fmt.pr "solver: %s@." (Smt.Solver.outcome_to_string o))
