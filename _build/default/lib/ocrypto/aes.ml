(** Reference AES-128 single-block encryption (host side).

    Used to cross-check the guest assembly implementation, to generate
    its S-box table, and to compute the ciphertext constants baked into
    the AES bomb. *)

(* S-box generated from the multiplicative inverse in GF(2^8) composed
   with the affine transform, so the table is self-contained. *)

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then (a lsl 1) lxor 0x11b else a lsl 1 in
      go a (b lsr 1) acc
  in
  go a b 0

let ginv a =
  if a = 0 then 0
  else
    let rec find x = if gmul a x = 1 then x else find (x + 1) in
    find 1

let sbox =
  Array.init 256 (fun i ->
      let x = ginv i in
      let bit b n = (b lsr n) land 1 in
      let f n =
        bit x n lxor bit x ((n + 4) mod 8) lxor bit x ((n + 5) mod 8)
        lxor bit x ((n + 6) mod 8) lxor bit x ((n + 7) mod 8)
        lxor bit 0x63 n
      in
      let rec build n acc = if n = 8 then acc else build (n + 1) (acc lor (f n lsl n)) in
      build 0 0)

let sbox_string = String.init 256 (fun i -> Char.chr sbox.(i))

let xtime b =
  let v = b lsl 1 in
  (if b land 0x80 <> 0 then v lxor 0x1b else v) land 0xff

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

(** 11 round keys, 176 bytes. *)
let expand_key (key : string) : int array =
  assert (String.length key = 16);
  let rk = Array.make 176 0 in
  String.iteri (fun i c -> rk.(i) <- Char.code c) key;
  for w = 4 to 43 do
    let prev j = rk.((w - 1) * 4 + j) in
    let temp = Array.init 4 prev in
    let temp =
      if w mod 4 = 0 then begin
        let rotated = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let subbed = Array.map (fun b -> sbox.(b)) rotated in
        subbed.(0) <- subbed.(0) lxor rcon.(w / 4 - 1);
        subbed
      end
      else temp
    in
    for j = 0 to 3 do
      rk.(w * 4 + j) <- rk.((w - 4) * 4 + j) lxor temp.(j)
    done
  done;
  rk

let shift_row_src = [| 0; 5; 10; 15; 4; 9; 14; 3; 8; 13; 2; 7; 12; 1; 6; 11 |]

let encrypt_block ~(key : string) (input : string) : string =
  assert (String.length input = 16);
  let rk = expand_key key in
  let st = Array.init 16 (fun i -> Char.code input.[i]) in
  let add_round_key r =
    for i = 0 to 15 do st.(i) <- st.(i) lxor rk.((r * 16) + i) done
  in
  let sub_bytes () = Array.iteri (fun i b -> st.(i) <- sbox.(b)) st in
  let shift_rows () =
    let old = Array.copy st in
    Array.iteri (fun i src -> st.(i) <- old.(src)) shift_row_src
  in
  let mix_columns () =
    for c = 0 to 3 do
      let b = c * 4 in
      let a0 = st.(b) and a1 = st.(b + 1) and a2 = st.(b + 2) and a3 = st.(b + 3) in
      let t = a0 lxor a1 lxor a2 lxor a3 in
      st.(b) <- a0 lxor t lxor xtime (a0 lxor a1);
      st.(b + 1) <- a1 lxor t lxor xtime (a1 lxor a2);
      st.(b + 2) <- a2 lxor t lxor xtime (a2 lxor a3);
      st.(b + 3) <- a3 lxor t lxor xtime (a3 lxor a0)
    done
  in
  add_round_key 0;
  for r = 1 to 9 do
    sub_bytes (); shift_rows (); mix_columns (); add_round_key r
  done;
  sub_bytes (); shift_rows (); add_round_key 10;
  String.init 16 (fun i -> Char.chr st.(i))

let hex s =
  String.concat "" (List.init (String.length s) (fun i ->
      Printf.sprintf "%02x" (Char.code s.[i])))
