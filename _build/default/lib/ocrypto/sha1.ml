(** Reference SHA-1 (host side).

    Used to cross-check the guest assembly implementation and to
    compute the digest constants baked into the crypto bombs. *)

let rotl32 x n = Int32.logor (Int32.shift_left x n)
    (Int32.shift_right_logical x (32 - n))

let digest (msg : string) : string =
  let len = String.length msg in
  let bitlen = Int64.of_int (len * 8) in
  (* padded length: multiple of 64 with room for 0x80 and the length *)
  let padded = ((len + 8) / 64 + 1) * 64 in
  let block = Bytes.make padded '\000' in
  Bytes.blit_string msg 0 block 0 len;
  Bytes.set block len '\x80';
  for i = 0 to 7 do
    Bytes.set block (padded - 1 - i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bitlen (8 * i)) land 0xff))
  done;
  let h = [| 0x67452301l; 0xEFCDAB89l; 0x98BADCFEl; 0x10325476l; 0xC3D2E1F0l |] in
  let w = Array.make 80 0l in
  for blk = 0 to (padded / 64) - 1 do
    let base = blk * 64 in
    for i = 0 to 15 do
      let b j = Int32.of_int (Char.code (Bytes.get block (base + i * 4 + j))) in
      w.(i) <-
        Int32.logor
          (Int32.shift_left (b 0) 24)
          (Int32.logor
             (Int32.shift_left (b 1) 16)
             (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
    done;
    for i = 16 to 79 do
      w.(i) <-
        rotl32
          (Int32.logxor
             (Int32.logxor w.(i - 3) w.(i - 8))
             (Int32.logxor w.(i - 14) w.(i - 16)))
          1
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3)
    and e = ref h.(4) in
    for i = 0 to 79 do
      let f, k =
        if i < 20 then
          (Int32.logor (Int32.logand !b !c)
             (Int32.logand (Int32.lognot !b) !d),
           0x5A827999l)
        else if i < 40 then (Int32.logxor (Int32.logxor !b !c) !d, 0x6ED9EBA1l)
        else if i < 60 then
          (Int32.logor
             (Int32.logor (Int32.logand !b !c) (Int32.logand !b !d))
             (Int32.logand !c !d),
           0x8F1BBCDCl)
        else (Int32.logxor (Int32.logxor !b !c) !d, 0xCA62C1D6l)
      in
      let temp =
        Int32.add
          (Int32.add (Int32.add (rotl32 !a 5) f) (Int32.add !e k))
          w.(i)
      in
      e := !d; d := !c; c := rotl32 !b 30; b := !a; a := temp
    done;
    h.(0) <- Int32.add h.(0) !a;
    h.(1) <- Int32.add h.(1) !b;
    h.(2) <- Int32.add h.(2) !c;
    h.(3) <- Int32.add h.(3) !d;
    h.(4) <- Int32.add h.(4) !e
  done;
  String.init 20 (fun i ->
      let word = h.(i / 4) in
      let shift = 24 - 8 * (i mod 4) in
      Char.chr (Int32.to_int (Int32.shift_right_logical word shift) land 0xff))

let hex_of_digest d =
  String.concat "" (List.init (String.length d) (fun i ->
      Printf.sprintf "%02x" (Char.code d.[i])))

let digest_hex msg = hex_of_digest (digest msg)
