lib/ocrypto/aes.ml: Array Char List Printf String
