lib/ocrypto/sha1.ml: Array Bytes Char Int32 Int64 List Printf String
