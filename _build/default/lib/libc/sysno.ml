(** Syscall numbers shared by the guest runtime and the kernel model
    (Linux x86-64 numbering, plus VX64 thread extensions). *)

let table =
  [ ("read", 0); ("write", 1); ("open", 2); ("close", 3); ("lseek", 8);
    ("rt_sigaction", 13); ("pipe", 22); ("nanosleep", 35); ("getpid", 39);
    ("socket", 41); ("connect", 42); ("fork", 57); ("exit", 60);
    ("wait4", 61); ("gettimeofday", 96); ("getuid", 102); ("time", 201);
    ("getrandom", 318);
    ("thread_create", 0x1000); ("thread_join", 0x1001); ("yield", 0x1002);
    ("thread_exit", 0x1003) ]

let syscall_nr name =
  match List.assoc_opt name table with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Sysno.syscall_nr: %s" name)
