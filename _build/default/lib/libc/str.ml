(** Guest string routines: strlen, strcmp, memcmp, strcpy, memcpy,
    memset, atoi. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl



let strlen : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "strlen";
      mov rax (imm 0);
      label ".strlen_loop";
      movzx rcx ~sw:W8 (mem ~base:RDI ~index:RAX ());
      test rcx rcx;
      je ".strlen_done";
      add rax (imm 1);
      jmp ".strlen_loop";
      label ".strlen_done";
      ret ]

let strcmp : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "strcmp";
      label ".strcmp_loop";
      movzx rax ~sw:W8 (mreg RDI);
      movzx rcx ~sw:W8 (mreg RSI);
      cmp rax rcx;
      jne ".strcmp_diff";
      test rax rax;
      je ".strcmp_eq";
      add rdi (imm 1);
      add rsi (imm 1);
      jmp ".strcmp_loop";
      label ".strcmp_diff";
      jb ".strcmp_lt";
      mov rax (imm 1);
      ret;
      label ".strcmp_lt";
      mov rax (imm (-1));
      ret;
      label ".strcmp_eq";
      xor rax rax;
      ret ]

let memcmp : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "memcmp";
      label ".memcmp_loop";
      test rdx rdx;
      je ".memcmp_eq";
      movzx rax ~sw:W8 (mreg RDI);
      movzx rcx ~sw:W8 (mreg RSI);
      cmp rax rcx;
      jne ".memcmp_ne";
      add rdi (imm 1);
      add rsi (imm 1);
      sub rdx (imm 1);
      jmp ".memcmp_loop";
      label ".memcmp_ne";
      mov rax (imm 1);
      ret;
      label ".memcmp_eq";
      xor rax rax;
      ret ]

let strcpy : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "strcpy";
      mov rax rdi;
      label ".strcpy_loop";
      movzx rcx ~sw:W8 (mreg RSI);
      mov ~w:W8 (mreg RDI) rcx;
      test rcx rcx;
      je ".strcpy_done";
      add rdi (imm 1);
      add rsi (imm 1);
      jmp ".strcpy_loop";
      label ".strcpy_done";
      ret ]

let memcpy : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "memcpy";
      mov rax rdi;
      label ".memcpy_loop";
      test rdx rdx;
      je ".memcpy_done";
      movzx rcx ~sw:W8 (mreg RSI);
      mov ~w:W8 (mreg RDI) rcx;
      add rdi (imm 1);
      add rsi (imm 1);
      sub rdx (imm 1);
      jmp ".memcpy_loop";
      label ".memcpy_done";
      ret ]

let memset : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "memset";
      mov rax rdi;
      label ".memset_loop";
      test rdx rdx;
      je ".memset_done";
      mov ~w:W8 (mreg RDI) rsi;
      add rdi (imm 1);
      sub rdx (imm 1);
      jmp ".memset_loop";
      label ".memset_done";
      ret ]

let atoi : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "atoi";
      xor rax rax;
      xor r8 r8;
      movzx rcx ~sw:W8 (mreg RDI);
      cmp rcx (imm (Char.code '-'));
      jne ".atoi_loop";
      mov r8 (imm 1);
      add rdi (imm 1);
      label ".atoi_loop";
      movzx rcx ~sw:W8 (mreg RDI);
      cmp rcx (imm (Char.code '0'));
      jb ".atoi_done";
      cmp rcx (imm (Char.code '9'));
      ja ".atoi_done";
      imul rax (imm 10);
      add rax rcx;
      sub rax (imm (Char.code '0'));
      add rdi (imm 1);
      jmp ".atoi_loop";
      label ".atoi_done";
      test r8 r8;
      je ".atoi_pos";
      neg rax;
      label ".atoi_pos";
      ret ]

let all = [ strlen; strcmp; memcmp; strcpy; memcpy; memset; atoi ]
