(** Guest runtime core: program entry, exit, and raw syscall wrappers.

    Calling convention (SysV-flavoured): integer args in RDI, RSI, RDX,
    RCX; result in RAX; RBX, RBP, R12–R15 are callee-saved.  FP args
    and results use XMM0/XMM1. *)

open Asm.Ast.Dsl

let syscall_nr = Sysno.syscall_nr

(* A syscall wrapper with up to 3 arguments already in place
   (rdi/rsi/rdx), just sets RAX and traps. *)
let wrapper name nr =
  [ label name;
    mov rax (imm nr);
    syscall;
    ret ]

let crt0 : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "_start";
      mov rdi (mreg Isa.Reg.RSP);            (* argc *)
      lea_m rsi (mem ~base:Isa.Reg.RSP ~disp:8 ()); (* argv *)
      call "main";
      mov rdi rax;
      call "exit";
      hlt ]

let exit_ : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "exit";
      mov rax (imm (syscall_nr "exit"));
      syscall;
      hlt ]

let io_wrappers : Asm.Ast.obj =
  Asm.Ast.obj
    (wrapper "read" (syscall_nr "read")
     @ wrapper "write" (syscall_nr "write")
     @ wrapper "open" (syscall_nr "open")
     @ wrapper "close" (syscall_nr "close")
     @ wrapper "lseek" (syscall_nr "lseek")
     @ wrapper "pipe" (syscall_nr "pipe")
     @ wrapper "fork" (syscall_nr "fork")
     @ wrapper "wait" (syscall_nr "wait4")
     @ wrapper "getpid" (syscall_nr "getpid")
     @ wrapper "getuid" (syscall_nr "getuid")
     @ wrapper "gettimeofday" (syscall_nr "gettimeofday")
     @ wrapper "signal" (syscall_nr "rt_sigaction")
     @ wrapper "getrandom" (syscall_nr "getrandom")
     @ wrapper "socket" (syscall_nr "socket")
     @ wrapper "connect" (syscall_nr "connect")
     @ [ label "time";
         mov rax (imm (syscall_nr "time"));
         syscall;
         ret ])

(** [raw_syscall (nr, a0, a1, a2)]: guest function `syscall3` taking
    the syscall number as first argument — used by the "symbolic values
    as the name of a system call" bomb. *)
let syscall3 : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "syscall3";
      mov rax rdi;
      mov rdi rsi;
      mov rsi rdx;
      mov rdx rcx;
      syscall;
      ret ]

let all = [ crt0; exit_; io_wrappers; syscall3 ]
