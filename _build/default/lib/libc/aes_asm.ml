(** Guest AES-128 single-block encryption.

    aes128_encrypt(in rdi, key rsi, out rdx).  Tables (S-box, Rcon,
    ShiftRows permutation) are generated from the host reference
    implementation {!Ocrypto.Aes}, so guest and host agree by
    construction. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl



let rcon_string =
  String.init 10 (fun i -> Char.chr Ocrypto.Aes.rcon.(i))

let shift_string =
  String.init 16 (fun i -> Char.chr Ocrypto.Aes.shift_row_src.(i))

(* xtime of the low byte of [r] in place; [fresh] generates unique
   local labels for the conditional reduction. *)
let counter = ref 0

let xtime r =
  incr counter;
  let skip = Printf.sprintf ".aes_xt_%d" !counter in
  [ shl r (imm 1);
    test r (imm 0x100);
    je skip;
    xor r (imm 0x1b);
    label skip;
    and_ r (imm 0xff) ]

(* one output byte of MixColumns: n_i = a_i ^ t ^ xtime(a_i ^ a_next);
   a_i in [ai], a_next in [anext], t in rsi; stores at [rbx+rcx+off] *)
let mix_byte ai anext off =
  [ mov rax ai; xor rax anext ]
  @ xtime rax
  @ [ xor rax ai;
      xor rax rsi;
      mov ~w:W8 (mem ~base:RBX ~index:RCX ~disp:off ()) rax ]

let aes : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:
      [ label "__aes_sbox"; Asm.Ast.Bytes Ocrypto.Aes.sbox_string;
        label "__aes_rcon"; Asm.Ast.Bytes rcon_string;
        label "__aes_shift"; Asm.Ast.Bytes shift_string ]
    ~bss:
      [ label "__aes_rk"; space 176;
        label "__aes_st"; space 16;
        label "__aes_tmp"; space 16 ]
    ([ label "aes128_encrypt";
       push rbx; push r12; push r13; push r14; push r15;
       mov r12 rdi;                      (* in *)
       mov r13 rsi;                      (* key *)
       mov r14 rdx;                      (* out *)
       (* ---- key expansion ---- *)
       lea rdi "__aes_rk";
       mov rsi r13;
       mov rdx (imm 16);
       call "memcpy";
       lea rbx "__aes_rk";
       mov rcx (imm 4);                  (* word index *)
       label ".aes_kexp";
       cmp rcx (imm 44);
       jae ".aes_kexp_done";
       movzx r8 ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-4) ());
       movzx r9 ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-3) ());
       movzx r10 ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-2) ());
       movzx r11 ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-1) ());
       mov rax rcx;
       and_ rax (imm 3);
       test rax rax;
       jne ".aes_kexp_xor";
       (* RotWord + SubWord + Rcon *)
       mov rax r8;
       mov r8 r9; mov r9 r10; mov r10 r11; mov r11 rax;
       lea rdx "__aes_sbox";
       movzx r8 ~sw:W8 (mem ~base:RDX ~index:R8 ());
       movzx r9 ~sw:W8 (mem ~base:RDX ~index:R9 ());
       movzx r10 ~sw:W8 (mem ~base:RDX ~index:R10 ());
       movzx r11 ~sw:W8 (mem ~base:RDX ~index:R11 ());
       lea rdx "__aes_rcon";
       mov rax rcx;
       shr rax (imm 2);
       movzx rax ~sw:W8 (mem ~base:RDX ~index:RAX ~disp:(-1) ());
       xor r8 rax;
       label ".aes_kexp_xor";
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-16) ());
       xor rax r8;
       mov ~w:W8 (mem ~base:RBX ~index:RCX ~scale:4 ()) rax;
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-15) ());
       xor rax r9;
       mov ~w:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:1 ()) rax;
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-14) ());
       xor rax r10;
       mov ~w:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:2 ()) rax;
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:(-13) ());
       xor rax r11;
       mov ~w:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:3 ()) rax;
       add rcx (imm 1);
       jmp ".aes_kexp";
       label ".aes_kexp_done";
       (* ---- rounds ---- *)
       lea rdi "__aes_st";
       mov rsi r12;
       mov rdx (imm 16);
       call "memcpy";
       mov rdi (imm 0);
       call "__aes_ark";
       mov r15 (imm 1);
       label ".aes_rounds";
       cmp r15 (imm 10);
       jae ".aes_last";
       call "__aes_subshift";
       call "__aes_mix";
       mov rdi r15;
       call "__aes_ark";
       add r15 (imm 1);
       jmp ".aes_rounds";
       label ".aes_last";
       call "__aes_subshift";
       mov rdi (imm 10);
       call "__aes_ark";
       mov rdi r14;
       lea rsi "__aes_st";
       mov rdx (imm 16);
       call "memcpy";
       pop r15; pop r14; pop r13; pop r12; pop rbx;
       ret;

       (* AddRoundKey: st[j] ^= rk[16*round + j] *)
       label "__aes_ark";
       lea rax "__aes_rk";
       mov rcx rdi;
       shl rcx (imm 4);
       add rax rcx;
       lea rdx "__aes_st";
       xor rcx rcx;
       label ".aes_ark_loop";
       cmp rcx (imm 16);
       jae ".aes_ark_done";
       movzx r8 ~sw:W8 (mem ~base:RAX ~index:RCX ());
       xor ~w:W8 (mem ~base:RDX ~index:RCX ()) r8;
       add rcx (imm 1);
       jmp ".aes_ark_loop";
       label ".aes_ark_done";
       ret;

       (* SubBytes + ShiftRows via the permutation table *)
       label "__aes_subshift";
       lea rax "__aes_st";
       lea rdx "__aes_tmp";
       lea r8 "__aes_shift";
       lea r9 "__aes_sbox";
       xor rcx rcx;
       label ".aes_ss_loop";
       cmp rcx (imm 16);
       jae ".aes_ss_copy";
       movzx r10 ~sw:W8 (mem ~base:R8 ~index:RCX ());
       movzx r10 ~sw:W8 (mem ~base:RAX ~index:R10 ());
       movzx r10 ~sw:W8 (mem ~base:R9 ~index:R10 ());
       mov ~w:W8 (mem ~base:RDX ~index:RCX ()) r10;
       add rcx (imm 1);
       jmp ".aes_ss_loop";
       label ".aes_ss_copy";
       lea rdi "__aes_st";
       lea rsi "__aes_tmp";
       mov rdx (imm 16);
       call "memcpy";
       ret;

       (* MixColumns *)
       label "__aes_mix";
       lea rbx "__aes_st";
       xor rcx rcx;
       label ".aes_mix_col";
       cmp rcx (imm 16);
       jae ".aes_mix_done";
       movzx r8 ~sw:W8 (mem ~base:RBX ~index:RCX ());
       movzx r9 ~sw:W8 (mem ~base:RBX ~index:RCX ~disp:1 ());
       movzx r10 ~sw:W8 (mem ~base:RBX ~index:RCX ~disp:2 ());
       movzx r11 ~sw:W8 (mem ~base:RBX ~index:RCX ~disp:3 ());
       mov rsi r8;
       xor rsi r9;
       xor rsi r10;
       xor rsi r11 ]
     @ mix_byte r8 r9 0
     @ mix_byte r9 r10 1
     @ mix_byte r10 r11 2
     @ mix_byte r11 r8 3
     @ [ add rcx (imm 4);
         jmp ".aes_mix_col";
         label ".aes_mix_done";
         ret ])

let all = [ aes ]
