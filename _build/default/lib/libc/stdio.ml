(** Guest stdio: puts, putchar, and a printf subset (%d %x %s %c %%).

    printf is a genuine guest-side formatting loop — dozens of
    conditional branches execute per call, which is exactly the
    "external function calls enlarge code complexity" effect the
    paper's Figure 3 measures. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl




(* itoa(value rdi, buf rsi) -> rax = length written (with '-'). *)
let itoa : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:[ label "__itoa_tmp"; space 32 ]
    [ label "itoa";
      xor r8 r8;
      test rdi rdi;
      jns ".itoa_conv";
      mov r8 (imm 1);
      neg rdi;
      label ".itoa_conv";
      lea r9 "__itoa_tmp";
      xor rcx rcx;
      label ".itoa_digit";
      mov rax rdi;
      mov r10 (imm 10);
      idiv r10;                          (* rax = q, rdx = rem *)
      add rdx (imm (Char.code '0'));
      mov ~w:W8 (mem ~base:R9 ~index:RCX ()) rdx;
      add rcx (imm 1);
      mov rdi rax;
      test rdi rdi;
      jne ".itoa_digit";
      xor rax rax;
      test r8 r8;
      je ".itoa_rev";
      mov ~w:W8 (mreg RSI) (imm (Char.code '-'));
      add rax (imm 1);
      label ".itoa_rev";
      test rcx rcx;
      je ".itoa_done";
      sub rcx (imm 1);
      movzx rdx ~sw:W8 (mem ~base:R9 ~index:RCX ());
      mov ~w:W8 (mem ~base:RSI ~index:RAX ()) rdx;
      add rax (imm 1);
      jmp ".itoa_rev";
      label ".itoa_done";
      ret ]

(* itoh(value rdi, buf rsi) -> rax = length; lowercase hex, no
   leading zeros (except a lone 0). *)
let itoh : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "itoh";
      mov rcx (imm 60);
      xor rax rax;
      xor r9 r9;
      label ".itoh_loop";
      mov rdx rdi;
      shr rdx rcx;
      and_ rdx (imm 15);
      test r9 r9;
      jne ".itoh_emit";
      test rdx rdx;
      jne ".itoh_emit";
      test rcx rcx;
      je ".itoh_emit";                   (* always emit the last nibble *)
      jmp ".itoh_next";
      label ".itoh_emit";
      mov r9 (imm 1);
      cmp rdx (imm 10);
      jb ".itoh_digit";
      add rdx (imm (Char.code 'a' - 10));
      jmp ".itoh_store";
      label ".itoh_digit";
      add rdx (imm (Char.code '0'));
      label ".itoh_store";
      mov ~w:W8 (mem ~base:RSI ~index:RAX ()) rdx;
      add rax (imm 1);
      label ".itoh_next";
      sub rcx (imm 4);
      jns ".itoh_loop";
      ret ]

let putchar : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:[ label "__putchar_buf"; space 1 ]
    [ label "putchar";
      lea rax "__putchar_buf";
      mov ~w:W8 (mreg RAX) rdi;
      mov rdi (imm 1);
      mov rsi rax;
      mov rdx (imm 1);
      call "write";
      ret ]

let puts : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "__nl"; asciz "\n" ]
    [ label "puts";
      push rbx;
      mov rbx rdi;
      call "strlen";
      mov rdx rax;
      mov rsi rbx;
      mov rdi (imm 1);
      call "write";
      mov rdi (imm 1);
      lea rsi "__nl";
      mov rdx (imm 1);
      call "write";
      pop rbx;
      ret ]

(* printf(fmt rdi, args rsi rdx rcx) -> rax = chars written.
   Formats into __printf_buf then flushes with one write(2). *)
let printf : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:
      [ label "__printf_args"; space 24;
        label "__printf_buf"; space 256 ]
    [ label "printf";
      push rbx; push r12; push r13; push r14; push r15;
      lea r13 "__printf_args";
      mov (mreg R13) rsi;
      mov (mreg ~disp:8 R13) rdx;
      mov (mreg ~disp:16 R13) rcx;
      mov rbx rdi;                       (* fmt cursor *)
      lea r12 "__printf_buf";
      xor r14 r14;                       (* out position *)
      xor r15 r15;                       (* arg index *)
      label ".pf_loop";
      movzx rax ~sw:W8 (mreg RBX);
      test rax rax;
      je ".pf_flush";
      add rbx (imm 1);
      cmp rax (imm (Char.code '%'));
      jne ".pf_emit";
      movzx rax ~sw:W8 (mreg RBX);
      add rbx (imm 1);
      cmp rax (imm (Char.code 'd'));
      je ".pf_d";
      cmp rax (imm (Char.code 'x'));
      je ".pf_x";
      cmp rax (imm (Char.code 's'));
      je ".pf_s";
      cmp rax (imm (Char.code 'c'));
      je ".pf_c";
      (* '%%' and unknown directives print the char itself *)
      label ".pf_emit";
      mov ~w:W8 (mem ~base:R12 ~index:R14 ()) rax;
      add r14 (imm 1);
      jmp ".pf_loop";
      label ".pf_c";
      mov rax (mem ~base:R13 ~index:R15 ~scale:8 ());
      add r15 (imm 1);
      jmp ".pf_emit";
      label ".pf_s";
      mov rsi (mem ~base:R13 ~index:R15 ~scale:8 ());
      add r15 (imm 1);
      label ".pf_scopy";
      movzx rax ~sw:W8 (mreg RSI);
      test rax rax;
      je ".pf_loop";
      mov ~w:W8 (mem ~base:R12 ~index:R14 ()) rax;
      add r14 (imm 1);
      add rsi (imm 1);
      jmp ".pf_scopy";
      label ".pf_d";
      mov rdi (mem ~base:R13 ~index:R15 ~scale:8 ());
      add r15 (imm 1);
      lea_m rsi (mem ~base:R12 ~index:R14 ());
      call "itoa";
      add r14 rax;
      jmp ".pf_loop";
      label ".pf_x";
      mov rdi (mem ~base:R13 ~index:R15 ~scale:8 ());
      add r15 (imm 1);
      lea_m rsi (mem ~base:R12 ~index:R14 ());
      call "itoh";
      add r14 rax;
      jmp ".pf_loop";
      label ".pf_flush";
      mov rdi (imm 1);
      mov rsi r12;
      mov rdx r14;
      call "write";
      mov rax r14;
      pop r15; pop r14; pop r13; pop r12; pop rbx;
      ret ]

let all = [ itoa; itoh; putchar; puts; printf ]
