(** The guest runtime, grouped the way the paper groups shared
    libraries: [libc] (startup, string, stdio, rand, threads, net),
    [libm] (sin/pow/fabs/sqrt), and [libcrypto] (SHA-1, AES-128).

    Bombs link [Libc.libs] (everything); engines running in "no
    dynamic libraries" mode treat symbols from these objects as
    unhooked externals. *)

open Asm.Ast.Dsl

(* http_get(buf rdi, len rsi) -> bytes read from the "web" *)
let net : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "http_get";
      push rbx; push r12; push r13;
      mov rbx rdi;
      mov r12 rsi;
      xor rdi rdi;
      xor rsi rsi;
      xor rdx rdx;
      call "socket";
      mov r13 rax;
      mov rdi r13;
      xor rsi rsi;
      xor rdx rdx;
      call "connect";
      mov rdi r13;
      mov rsi rbx;
      mov rdx r12;
      call "read";
      pop r13; pop r12; pop rbx;
      ret ]

let libc : Asm.Ast.obj list =
  Rt.all @ Str.all @ Stdio.all @ Rand.all @ Threads.all @ [ net ]

let libm : Asm.Ast.obj list = Math.all

let libcrypto : Asm.Ast.obj list = Sha1_asm.all @ Aes_asm.all

(** Everything, in link order. *)
let libs : Asm.Ast.obj list = libc @ libm @ libcrypto

(** Link a program object against the full runtime. *)
let link_with_libs ?(entry = "_start") prog =
  Asm.Link.link ~libs ~entry prog
