(** Guest SHA-1 (single block, message length <= 55 bytes — enough for
    any argv-sized input the crypto bomb hashes).

    sha1(data rdi, len rsi, out rdx): writes the 20-byte digest.
    The 80-round compression loop is real guest code, so a concrete
    trace through it contains tens of thousands of tainted
    instructions — the paper's crypto-function scalability challenge. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl



let h0 = 0x67452301L
let h1 = 0xEFCDAB89L
let h2 = 0x98BADCFEL
let h3 = 0x10325476L
let h4 = 0xC3D2E1F0L

let k1 = 0x5A827999L
let k2 = 0x6ED9EBA1L
let k3 = 0x8F1BBCDCL
let k4 = 0xCA62C1D6L


(* rotl32 of [src] by [n] into [src], using [tmp] as scratch *)
let rotl32 src tmp n =
  [ mov tmp src;
    shl ~w:W32 src (imm n);
    shr ~w:W32 tmp (imm (32 - n));
    or_ ~w:W32 src tmp ]

(* store the low 32 bits of [src] big-endian at [base+off] *)
let store_be32 base src off =
  List.concat_map
    (fun (shift, d) ->
       [ mov rax src;
         shr rax (imm shift);
         mov ~w:W8 (mem ~base ~disp:(off + d) ()) rax ])
    [ (24, 0); (16, 1); (8, 2); (0, 3) ]

let sha1 : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:
      [ label "__sha1_block"; space 64;
        label "__sha1_w"; space 320 ]
    ([ label "sha1";
       push rbx; push r12; push r13; push r14; push r15;
       mov r12 rdi;                      (* data *)
       mov r13 rsi;                      (* len *)
       mov r14 rdx;                      (* out *)
       (* pad: zero the block, copy, 0x80 marker, bit length at 62/63 *)
       lea rdi "__sha1_block";
       mov rsi (imm 0);
       mov rdx (imm 64);
       call "memset";
       lea rdi "__sha1_block";
       mov rsi r12;
       mov rdx r13;
       call "memcpy";
       lea rax "__sha1_block";
       mov ~w:W8 (mem ~base:RAX ~index:R13 ()) (imm 0x80);
       mov rdx r13;
       shl rdx (imm 3);
       mov rcx rdx;
       shr rcx (imm 8);
       mov ~w:W8 (mem ~base:RAX ~disp:62 ()) rcx;
       mov ~w:W8 (mem ~base:RAX ~disp:63 ()) rdx;
       (* message schedule w[0..15]: big-endian words of the block *)
       lea rbx "__sha1_block";
       lea r13 "__sha1_w";
       xor rcx rcx;
       label ".sha1_msg";
       cmp rcx (imm 16);
       jae ".sha1_expand";
       movzx rdx ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ());
       shl rdx (imm 8);
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:1 ());
       or_ rdx rax;
       shl rdx (imm 8);
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:2 ());
       or_ rdx rax;
       shl rdx (imm 8);
       movzx rax ~sw:W8 (mem ~base:RBX ~index:RCX ~scale:4 ~disp:3 ());
       or_ rdx rax;
       mov ~w:W32 (mem ~base:R13 ~index:RCX ~scale:4 ()) rdx;
       add rcx (imm 1);
       jmp ".sha1_msg";
       (* w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]) *)
       label ".sha1_expand";
       cmp rcx (imm 80);
       jae ".sha1_init";
       mov ~w:W32 rax (mem ~base:R13 ~index:RCX ~scale:4 ~disp:(-12) ());
       xor ~w:W32 rax (mem ~base:R13 ~index:RCX ~scale:4 ~disp:(-32) ());
       xor ~w:W32 rax (mem ~base:R13 ~index:RCX ~scale:4 ~disp:(-56) ());
       xor ~w:W32 rax (mem ~base:R13 ~index:RCX ~scale:4 ~disp:(-64) ()) ]
     @ rotl32 rax rdx 1
     @ [ mov ~w:W32 (mem ~base:R13 ~index:RCX ~scale:4 ()) rax;
         add rcx (imm 1);
         jmp ".sha1_expand";
         (* initialise working registers *)
         label ".sha1_init";
         mov r8 (imm64 h0);
         mov r9 (imm64 h1);
         mov r10 (imm64 h2);
         mov r11 (imm64 h3);
         mov r12 (imm64 h4);
         xor rcx rcx;
         label ".sha1_round";
         cmp rcx (imm 80);
         jae ".sha1_final";
         cmp rcx (imm 20);
         jb ".sha1_f1";
         cmp rcx (imm 40);
         jb ".sha1_f2";
         cmp rcx (imm 60);
         jb ".sha1_f3";
         (* f4 = b ^ c ^ d *)
         mov rax r9;
         xor rax r10;
         xor rax r11;
         mov r15 (imm64 k4);
         jmp ".sha1_have_f";
         label ".sha1_f1";              (* (b & c) | (~b & d) *)
         mov rax r9;
         and_ rax r10;
         mov rdx r9;
         not_ rdx;
         and_ rdx r11;
         or_ rax rdx;
         mov r15 (imm64 k1);
         jmp ".sha1_have_f";
         label ".sha1_f2";              (* b ^ c ^ d *)
         mov rax r9;
         xor rax r10;
         xor rax r11;
         mov r15 (imm64 k2);
         jmp ".sha1_have_f";
         label ".sha1_f3";              (* (b&c) | (b&d) | (c&d) *)
         mov rax r9;
         and_ rax r10;
         mov rdx r9;
         and_ rdx r11;
         or_ rax rdx;
         mov rdx r10;
         and_ rdx r11;
         or_ rax rdx;
         mov r15 (imm64 k3);
         label ".sha1_have_f";
         (* temp = rotl5(a) + f + e + k + w[i] *)
         mov rdx r8 ]
     @ rotl32 rdx rbx 5
     @ [ add ~w:W32 rdx rax;
         add ~w:W32 rdx r12;
         add ~w:W32 rdx r15;
         mov ~w:W32 rbx (mem ~base:R13 ~index:RCX ~scale:4 ());
         add ~w:W32 rdx rbx;
         (* rotate the working registers *)
         mov r12 r11;
         mov r11 r10;
         mov r10 r9 ]
     @ rotl32 r10 rbx 30
     @ [ mov r9 r8;
         mov r8 rdx;
         add rcx (imm 1);
         jmp ".sha1_round";
         (* h += working registers; emit big-endian digest *)
         label ".sha1_final";
         mov rbx (imm64 h0); add ~w:W32 r8 rbx;
         mov rbx (imm64 h1); add ~w:W32 r9 rbx;
         mov rbx (imm64 h2); add ~w:W32 r10 rbx;
         mov rbx (imm64 h3); add ~w:W32 r11 rbx;
         mov rbx (imm64 h4); add ~w:W32 r12 rbx ]
     @ store_be32 R14 r8 0
     @ store_be32 R14 r9 4
     @ store_be32 R14 r10 8
     @ store_be32 R14 r11 12
     @ store_be32 R14 r12 16
     @ [ pop r15; pop r14; pop r13; pop r12; pop rbx;
         ret ])

let all = [ sha1 ]
