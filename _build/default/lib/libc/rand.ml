(** Guest srand/rand: a 64-bit LCG matching glibc's general shape
    (multiplier from Knuth MMIX).  The host-side {!host_rand} mirror is
    used by tests and by the evaluation grader to predict guest
    outputs. *)

open Asm.Ast.Dsl
open Isa.Reg

let multiplier = 6364136223846793005L
let increment = 1442695040888963407L

let srand_rand : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:[ label "__rand_state"; space 8 ]
    [ label "srand";
      lea rax "__rand_state";
      mov (mreg RAX) rdi;
      ret;
      label "rand";
      lea rcx "__rand_state";
      mov rax (mreg RCX);
      mov r8 (imm64 multiplier);
      imul rax r8;
      mov r8 (imm64 increment);
      add rax r8;
      mov (mreg RCX) rax;
      shr rax (imm 33);
      mov r8 (imm 0x7fffffff);
      and_ rax r8;
      ret ]

(** Host-side mirror of one [srand seed; rand ()] step. *)
let host_rand_state seed = ref seed

let host_rand state =
  state := Int64.add (Int64.mul !state multiplier) increment;
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical !state 33) 0x7fffffffL)

(** The first value [rand ()] returns after [srand seed]. *)
let first_rand seed =
  let st = host_rand_state seed in
  host_rand st

let all = [ srand_rand ]
