(** Guest pthread-flavoured wrappers over the VX64 thread syscalls.

    [pthread_create] allocates a stack slot from a static pool, plants
    the [__thread_exit] trampoline as the entry function's return
    address, and traps into the kernel. *)

open Asm.Ast.Dsl
open Isa.Reg

let stack_slot = 8192
let slots = 4

let threads : Asm.Ast.obj =
  Asm.Ast.obj
    ~bss:
      [ label "__tstack_idx"; space 8;
        label "__tstacks"; space (slots * stack_slot) ]
    [ (* pthread_create(entry rdi, arg rsi) -> tid *)
      label "pthread_create";
      lea rcx "__tstack_idx";
      mov rax (mreg RCX);
      add (mreg RCX) (imm 1);
      imul rax (imm stack_slot);
      lea r8 "__tstacks";
      add r8 rax;
      add r8 (imm stack_slot);
      sub r8 (imm 8);
      mov_lbl r9 "__thread_exit";
      mov (mreg R8) r9;
      mov rdx rsi;                       (* arg *)
      mov rsi r8;                        (* initial rsp *)
      mov rax (imm (Sysno.syscall_nr "thread_create"));
      syscall;
      ret;

      label "__thread_exit";
      mov rax (imm (Sysno.syscall_nr "thread_exit"));
      syscall;
      hlt;

      (* pthread_join(tid rdi) *)
      label "pthread_join";
      mov rax (imm (Sysno.syscall_nr "thread_join"));
      syscall;
      ret;

      label "sched_yield";
      mov rax (imm (Sysno.syscall_nr "yield"));
      syscall;
      ret ]

let all = [ threads ]
