(** Guest libm: sin, pow, fabs, sqrt.

    [sin] range-reduces modulo 2π then evaluates a 13-term odd Taylor
    polynomial with Horner's rule — every iteration runs [mulsd]/
    [addsd]/[cvtsi2sd]-class instructions, so engines without
    floating-point lifting fail inside it (the paper's Es1 rows). *)

open Asm.Ast.Dsl
open Isa.Reg

(* 8 little-endian bytes of a float constant *)
let f64_bytes f =
  let bits = Int64.bits_of_float f in
  Asm.Ast.Bytes
    (String.init 8 (fun i ->
         Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)))

(* sin coefficients c_k = (-1)^k / (2k+1)!, k = 0..12 *)
let sin_coeffs =
  let rec fact n = if n <= 1 then 1.0 else float_of_int n *. fact (n - 1) in
  List.init 13 (fun k ->
      let c = 1.0 /. fact (2 * k + 1) in
      if k mod 2 = 0 then c else -.c)

(* The DSL cannot reference a label inside an Xmem displacement, so FP
   constant accesses materialise the address with [lea] first. *)
let sin_ : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:
      ([ label "__twopi"; f64_bytes (2.0 *. Float.pi);
         label "__sin_coeffs" ]
       @ List.map f64_bytes sin_coeffs)
    [ label "sin";
      lea rax "__twopi";
      (* r = x - 2pi * trunc(x / 2pi) *)
      movsd XMM1 (Xreg XMM0);
      divsd XMM1 (Xmem (Isa.Insn.mem ~base:RAX ()));
      cvttsd2si rcx (Xreg XMM1);
      cvtsi2sd XMM2 rcx;
      mulsd XMM2 (Xmem (Isa.Insn.mem ~base:RAX ()));
      subsd XMM0 (Xreg XMM2);            (* xmm0 = r *)
      (* u = r * r *)
      movsd XMM1 (Xreg XMM0);
      mulsd XMM1 (Xreg XMM0);            (* xmm1 = u *)
      (* Horner: acc = c12; for i = 11..0: acc = acc*u + c[i] *)
      lea rax "__sin_coeffs";
      mov rcx (imm 12);
      movsd XMM2 (Xmem (Isa.Insn.mem ~base:RAX ~index:RCX ~scale:8 ()));
      label ".sin_horner";
      test rcx rcx;
      je ".sin_fin";
      sub rcx (imm 1);
      mulsd XMM2 (Xreg XMM1);
      addsd XMM2 (Xmem (Isa.Insn.mem ~base:RAX ~index:RCX ~scale:8 ()));
      jmp ".sin_horner";
      label ".sin_fin";
      mulsd XMM0 (Xreg XMM2);            (* r * P(u) *)
      ret ]

(* pow(x xmm0, y xmm1) -> xmm0, for integral y >= 0 (the bombs use
   pow(x, 2)). *)
let pow_ : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "__one"; f64_bytes 1.0 ]
    [ label "pow";
      cvttsd2si rcx (Xreg XMM1);
      lea rax "__one";
      movsd XMM2 (Xmem (Isa.Insn.mem ~base:RAX ()));
      label ".pow_loop";
      test rcx rcx;
      je ".pow_done";
      mulsd XMM2 (Xreg XMM0);
      sub rcx (imm 1);
      jmp ".pow_loop";
      label ".pow_done";
      movsd XMM0 (Xreg XMM2);
      ret ]

let fabs_ : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "fabs";
      movq_rx rax XMM0;
      shl rax (imm 1);
      shr rax (imm 1);
      movq_xr XMM0 rax;
      ret ]

let sqrt_ : Asm.Ast.obj =
  Asm.Ast.obj
    [ label "sqrt";
      sqrtsd XMM0 (Xreg XMM0);
      ret ]

let all = [ sin_; pow_; fabs_; sqrt_ ]
