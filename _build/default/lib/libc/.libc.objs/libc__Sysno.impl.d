lib/libc/sysno.ml: List Printf
