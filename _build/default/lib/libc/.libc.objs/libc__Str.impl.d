lib/libc/str.ml: Asm Char Isa
