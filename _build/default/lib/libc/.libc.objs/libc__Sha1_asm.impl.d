lib/libc/sha1_asm.ml: Asm Isa List
