lib/libc/rand.ml: Asm Int64 Isa
