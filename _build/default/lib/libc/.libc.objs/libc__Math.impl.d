lib/libc/math.ml: Asm Char Float Int64 Isa List String
