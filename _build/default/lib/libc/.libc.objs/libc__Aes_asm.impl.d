lib/libc/aes_asm.ml: Array Asm Char Isa Ocrypto Printf String
