lib/libc/threads.ml: Asm Isa Sysno
