lib/libc/runtime.ml: Aes_asm Asm Math Rand Rt Sha1_asm Stdio Str Threads
