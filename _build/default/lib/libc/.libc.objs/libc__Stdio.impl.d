lib/libc/stdio.ml: Asm Char Isa
