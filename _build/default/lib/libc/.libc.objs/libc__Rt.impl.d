lib/libc/rt.ml: Asm Isa Sysno
