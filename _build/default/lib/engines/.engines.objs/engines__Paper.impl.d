lib/engines/paper.pp.ml: Concolic List Profile
