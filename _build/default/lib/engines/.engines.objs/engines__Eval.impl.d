lib/engines/eval.pp.ml: Bombs Buffer Concolic Grade List Paper Printf Profile String Taint Trace
