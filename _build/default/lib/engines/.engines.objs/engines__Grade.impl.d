lib/engines/grade.pp.ml: Bombs Concolic List Profile Vm
