lib/engines/profile.pp.ml: Asm Bytes Char Concolic Int64 List Ppx_deriving_runtime Printexc Printf Smt String Trace Vm
