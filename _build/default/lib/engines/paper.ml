(** The published Table II, cell by cell, for paper-vs-measured
    comparison.  Bomb names match {!Bombs.Catalog}. *)

open Concolic.Error

type row = {
  bomb : string;
  bap : cell;
  triton : cell;
  angr : cell;
  angr_nolib : cell;
}

let ok = Success
let e = Abnormal
let p = Partial
let es0 = Fail Es0
let es1 = Fail Es1
let es2 = Fail Es2
let es3 = Fail Es3

let table2 : row list =
  [ { bomb = "time_bomb"; bap = es0; triton = es0; angr = es0; angr_nolib = es0 };
    { bomb = "web_bomb"; bap = es0; triton = es0; angr = e; angr_nolib = e };
    { bomb = "sysret_bomb"; bap = es0; triton = es0; angr = p; angr_nolib = p };
    { bomb = "argvlen_bomb"; bap = es2; triton = es0; angr = ok; angr_nolib = ok };
    { bomb = "stack_bomb"; bap = es1; triton = ok; angr = ok; angr_nolib = ok };
    { bomb = "file_bomb"; bap = es2; triton = es2; angr = e; angr_nolib = es2 };
    { bomb = "syscovert_bomb"; bap = es2; triton = es2; angr = p; angr_nolib = p };
    { bomb = "exception_bomb"; bap = ok; triton = es1; angr = e; angr_nolib = es2 };
    { bomb = "fileexc_bomb"; bap = es2; triton = es2; angr = es2; angr_nolib = es2 };
    { bomb = "pthread_bomb"; bap = ok; triton = es2; angr = es2; angr_nolib = es2 };
    { bomb = "fork_bomb"; bap = es2; triton = es2; angr = es2; angr_nolib = ok };
    { bomb = "array1_bomb"; bap = es3; triton = es3; angr = ok; angr_nolib = ok };
    { bomb = "array2_bomb"; bap = es3; triton = es3; angr = es3; angr_nolib = es3 };
    { bomb = "filename_bomb"; bap = es2; triton = es3; angr = es2; angr_nolib = es2 };
    { bomb = "sysname_bomb"; bap = es2; triton = es3; angr = es2; angr_nolib = es2 };
    { bomb = "jump_bomb"; bap = es3; triton = es3; angr = es2; angr_nolib = es2 };
    { bomb = "jumptable_bomb"; bap = es3; triton = es3; angr = es3; angr_nolib = es3 };
    { bomb = "float_bomb"; bap = es1; triton = es1; angr = e; angr_nolib = es3 };
    { bomb = "sin_bomb"; bap = es1; triton = es1; angr = e; angr_nolib = es2 };
    { bomb = "srand_bomb"; bap = es2; triton = e; angr = e; angr_nolib = es2 };
    { bomb = "sha1_bomb"; bap = e; triton = e; angr = e; angr_nolib = es2 };
    { bomb = "aes_bomb"; bap = es2; triton = es2; angr = es2; angr_nolib = es2 } ]

let expected bomb_name (tool : Profile.tool) =
  match List.find_opt (fun r -> r.bomb = bomb_name) table2 with
  | None -> None
  | Some r ->
    Some
      (match tool with
       | Profile.Bap -> r.bap
       | Profile.Triton -> r.triton
       | Profile.Angr -> r.angr
       | Profile.Angr_nolib -> r.angr_nolib)

(** Headline result: solved counts per tool (Angr's two columns are
    one tool in the paper's "four cases" statement). *)
let paper_solved_counts = [ (Profile.Bap, 2); (Profile.Triton, 1) ]

(** Table I: challenge -> stages at which it can introduce errors. *)
let table1 : (string * stage list) list =
  [ ("Symbolic Variable Declaration", [ Es0; Es1; Es2; Es3 ]);
    ("Covert Symbolic Propagation", [ Es2; Es3 ]);
    ("Parallel Program", [ Es2; Es3 ]);
    ("Symbolic Array", [ Es3 ]);
    ("Contextual Symbolic Value", [ Es3 ]);
    ("Symbolic Jump", [ Es3 ]);
    ("Floating-point Number", [ Es3 ]) ]
