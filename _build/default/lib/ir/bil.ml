(** A BIL-flavoured intermediate language.

    Expressions mirror the {!Smt.Expr} term language plus [Load];
    variables name architectural state ("RAX", "ZF", "XMM0", ...) and
    lifter temporaries ("t0", "t1", ...).  A symbolic executor turns a
    Bil expression into an {!Smt.Expr} by substituting the current
    symbolic state and resolving loads through its memory model. *)

type exp =
  | Var of string * int               (** name, width *)
  | Int of int64 * int
  | Load of exp * int                 (** little-endian, [n] bytes *)
  | Unop of Smt.Expr.unop * exp
  | Binop of Smt.Expr.binop * exp * exp
  | Cmp of Smt.Expr.cmpop * exp * exp (** 1-bit result *)
  | Ite of exp * exp * exp
  | Extract of int * int * exp
  | Concat of exp * exp
  | Zext of int * exp
  | Sext of int * exp
  | Fbin of Smt.Expr.fbinop * exp * exp
  | Fcmp of Smt.Expr.fcmpop * exp * exp
  | Fsqrt of exp
  | Fof_int of exp
  | Fto_int of exp
[@@deriving show { with_path = false }, eq]

type stmt =
  | Set of string * int * exp         (** variable, width, value *)
  | Store of exp * int * exp          (** address, bytes, value *)
  | Cjmp of exp * int64               (** 1-bit cond; target if true *)
  | Jmp of exp                        (** unconditional, maybe computed *)
  | Syscall
  | Special of string                 (** unliftable: raises Es1 *)
[@@deriving show { with_path = false }, eq]

let rec width_of_exp = function
  | Var (_, w) | Int (_, w) -> w
  | Load (_, n) -> 8 * n
  | Unop (_, e) -> width_of_exp e
  | Binop (_, a, _) -> width_of_exp a
  | Cmp _ | Fcmp _ -> 1
  | Ite (_, a, _) -> width_of_exp a
  | Extract (hi, lo, _) -> hi - lo + 1
  | Concat (a, b) -> width_of_exp a + width_of_exp b
  | Zext (w, _) | Sext (w, _) -> w
  | Fbin _ | Fsqrt _ | Fof_int _ -> 64
  | Fto_int _ -> 64

let rec has_load = function
  | Load _ -> true
  | Var _ | Int _ -> false
  | Unop (_, e) | Extract (_, _, e) | Zext (_, e) | Sext (_, e)
  | Fsqrt e | Fof_int e | Fto_int e -> has_load e
  | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) | Fbin (_, a, b)
  | Fcmp (_, a, b) -> has_load a || has_load b
  | Ite (c, a, b) -> has_load c || has_load a || has_load b

(* conveniences used heavily by the lifter *)
let i64 v = Int (v, 64)
let int_ v w = Int (Int64.of_int v, w)
let b0 = Int (0L, 1)
let b1 = Int (1L, 1)
let not1 e = Unop (Smt.Expr.Not, e)
let and1 a b = Binop (Smt.Expr.And, a, b)
let or1 a b = Binop (Smt.Expr.Or, a, b)
let xor1 a b = Binop (Smt.Expr.Xor, a, b)
let eq a b = Cmp (Smt.Expr.Eq, a, b)
