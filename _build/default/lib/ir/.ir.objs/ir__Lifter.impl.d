lib/ir/lifter.pp.ml: Bil Int64 Isa List Printf Smt
