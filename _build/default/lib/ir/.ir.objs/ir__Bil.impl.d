lib/ir/bil.pp.ml: Int64 Ppx_deriving_runtime Smt
