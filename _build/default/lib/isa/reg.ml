(** General-purpose and SIMD registers of the VX64 instruction set.

    VX64 is a compact x86-64-like machine language: sixteen 64-bit
    general-purpose registers, eight 64-bit floating-point registers
    (each holding one IEEE-754 double, standing in for the low lane of
    an XMM register), an instruction pointer and a flags register. *)

type t =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15
[@@deriving show { with_path = false }, eq, ord, enum]

(** Floating-point registers (one IEEE-754 double each). *)
type xmm = XMM0 | XMM1 | XMM2 | XMM3 | XMM4 | XMM5 | XMM6 | XMM7
[@@deriving show { with_path = false }, eq, ord, enum]

let count = 16
let xmm_count = 8

let all =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

let all_xmm = [ XMM0; XMM1; XMM2; XMM3; XMM4; XMM5; XMM6; XMM7 ]

let name r = String.lowercase_ascii (show r)
let xmm_name x = String.lowercase_ascii (show_xmm x)

let of_index i =
  match of_enum i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Reg.of_index: %d" i)

let index = to_enum

let xmm_of_index i =
  match xmm_of_enum i with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Reg.xmm_of_index: %d" i)

let xmm_index = xmm_to_enum

let of_name s =
  let s = String.lowercase_ascii s in
  match List.find_opt (fun r -> name r = s) all with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Reg.of_name: %s" s)
