lib/isa/reg.pp.ml: List Ppx_deriving_runtime Printf String
