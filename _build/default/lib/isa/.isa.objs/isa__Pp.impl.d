lib/isa/pp.pp.ml: Fmt Insn List Option Printf Reg String
