lib/isa/insn.pp.ml: List Ppx_deriving_runtime Reg String
