lib/isa/codec.pp.ml: Buffer Char Insn Int64 Printf Reg String
