(** Human-readable (Intel-flavoured) printing of VX64 instructions,
    used by the disassembler and trace dumps. *)

let pp_width ppf w =
  Fmt.string ppf
    (match (w : Insn.width) with
     | W8 -> "byte" | W16 -> "word" | W32 -> "dword" | W64 -> "qword")

let pp_mem ppf ({ base; index; scale; disp } : Insn.mem) =
  let parts =
    List.filter_map
      (fun x -> x)
      [ Option.map Reg.name base;
        Option.map
          (fun r ->
             if scale = 1 then Reg.name r
             else Printf.sprintf "%s*%d" (Reg.name r) scale)
          index;
        (if disp <> 0L || (base = None && index = None) then
           Some (Printf.sprintf "0x%Lx" disp)
         else None) ]
  in
  Fmt.pf ppf "[%s]" (String.concat " + " parts)

let pp_operand ppf : Insn.operand -> unit = function
  | Reg r -> Fmt.string ppf (Reg.name r)
  | Imm v -> Fmt.pf ppf "0x%Lx" v
  | Mem m -> pp_mem ppf m

let pp_xsrc ppf : Insn.xsrc -> unit = function
  | Xreg x -> Fmt.string ppf (Reg.xmm_name x)
  | Xmem m -> pp_mem ppf m

let pp_target ppf : Insn.target -> unit = function
  | Direct a -> Fmt.pf ppf "0x%Lx" a
  | Indirect o -> pp_operand ppf o

let pp ppf (i : Insn.t) =
  let m = Insn.mnemonic i in
  match i with
  | Mov (w, d, s) | Alu (_, w, d, s) | Cmp (w, d, s) | Test (w, d, s) ->
    Fmt.pf ppf "%s %a %a, %a" m pp_width w pp_operand d pp_operand s
  | Movzx (dw, d, sw, s) | Movsx (dw, d, sw, s) ->
    Fmt.pf ppf "%s %a %s, %a %a" m pp_width dw (Reg.name d) pp_width sw
      pp_operand s
  | Lea (d, mm) -> Fmt.pf ppf "%s %s, %a" m (Reg.name d) pp_mem mm
  | Not (w, o) | Neg (w, o) | Mul (w, o) | Idiv (w, o) ->
    Fmt.pf ppf "%s %a %a" m pp_width w pp_operand o
  | Jmp t | Call t -> Fmt.pf ppf "%s %a" m pp_target t
  | Jcc (_, a) -> Fmt.pf ppf "%s 0x%Lx" m a
  | Ret | Syscall | Nop | Hlt -> Fmt.string ppf m
  | Push o | Pop o | Setcc (_, o) -> Fmt.pf ppf "%s %a" m pp_operand o
  | Cmovcc (_, d, s) -> Fmt.pf ppf "%s %s, %a" m (Reg.name d) pp_operand s
  | Cvtsi2sd (x, o) | Movq_xr (x, o) ->
    Fmt.pf ppf "%s %s, %a" m (Reg.xmm_name x) pp_operand o
  | Cvttsd2si (r, xs) -> Fmt.pf ppf "%s %s, %a" m (Reg.name r) pp_xsrc xs
  | Movq_rx (o, x) -> Fmt.pf ppf "%s %a, %s" m pp_operand o (Reg.xmm_name x)
  | Movsd (x, xs) | Farith (_, x, xs) | Ucomisd (x, xs) ->
    Fmt.pf ppf "%s %s, %a" m (Reg.xmm_name x) pp_xsrc xs
  | Movsd_store (mm, x) -> Fmt.pf ppf "%s %a, %s" m pp_mem mm (Reg.xmm_name x)

let to_string i = Fmt.str "%a" pp i
