(** Binary encoder / decoder for VX64 instructions.

    The encoding is byte-oriented and self-describing: one opcode byte,
    then fixed-layout operand fields.  Immediates and displacements are
    always 8 little-endian bytes, so the encoded size of an instruction
    depends only on its shape, never on the value of a label — which is
    what makes two-pass assembly (layout, then fixup) sound. *)

exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_raw b n v =
  for i = 0 to n - 1 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

(* Immediates and displacements are 4 bytes (sign-extended) when the
   value fits, else 8, with a one-byte size tag.  Link-time label
   values always fit in 4 bytes, so encoded instruction size never
   changes between layout and fixup. *)
let put_i64 b v =
  if v >= -0x8000_0000L && v < 0x8000_0000L then begin
    put_u8 b 4;
    put_raw b 4 v
  end
  else begin
    put_u8 b 8;
    put_raw b 8 v
  end

let put_reg b r = put_u8 b (Reg.index r)
let put_xmm b x = put_u8 b (Reg.xmm_index x)
let put_width b w = put_u8 b (Insn.width_to_enum w)
let put_cond b c = put_u8 b (Insn.cond_to_enum c)

let put_mem b ({ base; index; scale; disp } : Insn.mem) =
  let flags =
    (if base <> None then 1 else 0) lor (if index <> None then 2 else 0)
  in
  put_u8 b flags;
  (match base with Some r -> put_reg b r | None -> ());
  (match index with Some r -> put_reg b r | None -> ());
  put_u8 b scale;
  put_i64 b disp

let put_operand b : Insn.operand -> unit = function
  | Reg r -> put_u8 b 0; put_reg b r
  | Imm v -> put_u8 b 1; put_i64 b v
  | Mem m -> put_u8 b 2; put_mem b m

let put_xsrc b : Insn.xsrc -> unit = function
  | Xreg x -> put_u8 b 0; put_xmm b x
  | Xmem m -> put_u8 b 1; put_mem b m

let put_target b : Insn.target -> unit = function
  | Direct a -> put_u8 b 0; put_i64 b a
  | Indirect o -> put_u8 b 1; put_operand b o

let encode_into b (i : Insn.t) =
  let op n = put_u8 b n in
  match i with
  | Mov (w, d, s) -> op 0x01; put_width b w; put_operand b d; put_operand b s
  | Movzx (dw, d, sw, s) ->
    op 0x02; put_width b dw; put_reg b d; put_width b sw; put_operand b s
  | Movsx (dw, d, sw, s) ->
    op 0x03; put_width b dw; put_reg b d; put_width b sw; put_operand b s
  | Lea (d, m) -> op 0x04; put_reg b d; put_mem b m
  | Alu (o, w, d, s) ->
    op 0x05; put_u8 b (Insn.binop_to_enum o); put_width b w;
    put_operand b d; put_operand b s
  | Not (w, o') -> op 0x06; put_width b w; put_operand b o'
  | Neg (w, o') -> op 0x07; put_width b w; put_operand b o'
  | Mul (w, o') -> op 0x08; put_width b w; put_operand b o'
  | Idiv (w, o') -> op 0x09; put_width b w; put_operand b o'
  | Cmp (w, a, c) -> op 0x0a; put_width b w; put_operand b a; put_operand b c
  | Test (w, a, c) -> op 0x0b; put_width b w; put_operand b a; put_operand b c
  | Jmp t -> op 0x0c; put_target b t
  | Jcc (c, a) -> op 0x0d; put_cond b c; put_i64 b a
  | Call t -> op 0x0e; put_target b t
  | Ret -> op 0x0f
  | Push o' -> op 0x10; put_operand b o'
  | Pop o' -> op 0x11; put_operand b o'
  | Setcc (c, o') -> op 0x12; put_cond b c; put_operand b o'
  | Cmovcc (c, d, s) -> op 0x13; put_cond b c; put_reg b d; put_operand b s
  | Syscall -> op 0x14
  | Cvtsi2sd (x, o') -> op 0x15; put_xmm b x; put_operand b o'
  | Cvttsd2si (r, xs) -> op 0x16; put_reg b r; put_xsrc b xs
  | Movq_xr (x, o') -> op 0x17; put_xmm b x; put_operand b o'
  | Movq_rx (o', x) -> op 0x18; put_operand b o'; put_xmm b x
  | Movsd (x, xs) -> op 0x19; put_xmm b x; put_xsrc b xs
  | Movsd_store (m, x) -> op 0x1a; put_mem b m; put_xmm b x
  | Farith (f, x, xs) ->
    op 0x1b; put_u8 b (Insn.farith_to_enum f); put_xmm b x; put_xsrc b xs
  | Ucomisd (x, xs) -> op 0x1c; put_xmm b x; put_xsrc b xs
  | Nop -> op 0x1d
  | Hlt -> op 0x1e

let encode i =
  let b = Buffer.create 16 in
  encode_into b i;
  Buffer.contents b

let encoded_size i = String.length (encode i)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let take_u8 c =
  if c.pos >= String.length c.data then decode_error "truncated at %d" c.pos;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let take_raw c n =
  let v = ref 0L in
  for i = 0 to n - 1 do
    let byte = Int64.of_int (take_u8 c) in
    v := Int64.logor !v (Int64.shift_left byte (8 * i))
  done;
  !v

let take_i64 c =
  match take_u8 c with
  | 4 ->
    (* sign-extend the 32-bit form *)
    Int64.shift_right (Int64.shift_left (take_raw c 4) 32) 32
  | 8 -> take_raw c 8
  | n -> decode_error "bad immediate size %d at %d" n c.pos

let take_reg c =
  match Reg.of_enum (take_u8 c) with
  | Some r -> r
  | None -> decode_error "bad register at %d" c.pos

let take_xmm c =
  match Reg.xmm_of_enum (take_u8 c) with
  | Some x -> x
  | None -> decode_error "bad xmm register at %d" c.pos

let take_width c =
  match Insn.width_of_enum (take_u8 c) with
  | Some w -> w
  | None -> decode_error "bad width at %d" c.pos

let take_cond c =
  match Insn.cond_of_enum (take_u8 c) with
  | Some cc -> cc
  | None -> decode_error "bad cond at %d" c.pos

let take_mem c : Insn.mem =
  let flags = take_u8 c in
  let base = if flags land 1 <> 0 then Some (take_reg c) else None in
  let index = if flags land 2 <> 0 then Some (take_reg c) else None in
  let scale = take_u8 c in
  let disp = take_i64 c in
  { base; index; scale; disp }

let take_operand c : Insn.operand =
  match take_u8 c with
  | 0 -> Reg (take_reg c)
  | 1 -> Imm (take_i64 c)
  | 2 -> Mem (take_mem c)
  | t -> decode_error "bad operand tag %d at %d" t c.pos

let take_xsrc c : Insn.xsrc =
  match take_u8 c with
  | 0 -> Xreg (take_xmm c)
  | 1 -> Xmem (take_mem c)
  | t -> decode_error "bad xsrc tag %d at %d" t c.pos

let take_target c : Insn.target =
  match take_u8 c with
  | 0 -> Direct (take_i64 c)
  | 1 -> Indirect (take_operand c)
  | t -> decode_error "bad target tag %d at %d" t c.pos

let take_binop c =
  match Insn.binop_of_enum (take_u8 c) with
  | Some o -> o
  | None -> decode_error "bad binop at %d" c.pos

let take_farith c =
  match Insn.farith_of_enum (take_u8 c) with
  | Some f -> f
  | None -> decode_error "bad farith at %d" c.pos

let decode_cursor c : Insn.t =
  match take_u8 c with
  | 0x01 -> let w = take_width c in let d = take_operand c in
    Mov (w, d, take_operand c)
  | 0x02 -> let dw = take_width c in let d = take_reg c in
    let sw = take_width c in Movzx (dw, d, sw, take_operand c)
  | 0x03 -> let dw = take_width c in let d = take_reg c in
    let sw = take_width c in Movsx (dw, d, sw, take_operand c)
  | 0x04 -> let d = take_reg c in Lea (d, take_mem c)
  | 0x05 -> let o = take_binop c in let w = take_width c in
    let d = take_operand c in Alu (o, w, d, take_operand c)
  | 0x06 -> let w = take_width c in Not (w, take_operand c)
  | 0x07 -> let w = take_width c in Neg (w, take_operand c)
  | 0x08 -> let w = take_width c in Mul (w, take_operand c)
  | 0x09 -> let w = take_width c in Idiv (w, take_operand c)
  | 0x0a -> let w = take_width c in let a = take_operand c in
    Cmp (w, a, take_operand c)
  | 0x0b -> let w = take_width c in let a = take_operand c in
    Test (w, a, take_operand c)
  | 0x0c -> Jmp (take_target c)
  | 0x0d -> let cc = take_cond c in Jcc (cc, take_i64 c)
  | 0x0e -> Call (take_target c)
  | 0x0f -> Ret
  | 0x10 -> Push (take_operand c)
  | 0x11 -> Pop (take_operand c)
  | 0x12 -> let cc = take_cond c in Setcc (cc, take_operand c)
  | 0x13 -> let cc = take_cond c in let d = take_reg c in
    Cmovcc (cc, d, take_operand c)
  | 0x14 -> Syscall
  | 0x15 -> let x = take_xmm c in Cvtsi2sd (x, take_operand c)
  | 0x16 -> let r = take_reg c in Cvttsd2si (r, take_xsrc c)
  | 0x17 -> let x = take_xmm c in Movq_xr (x, take_operand c)
  | 0x18 -> let o = take_operand c in Movq_rx (o, take_xmm c)
  | 0x19 -> let x = take_xmm c in Movsd (x, take_xsrc c)
  | 0x1a -> let m = take_mem c in Movsd_store (m, take_xmm c)
  | 0x1b -> let f = take_farith c in let x = take_xmm c in
    Farith (f, x, take_xsrc c)
  | 0x1c -> let x = take_xmm c in Ucomisd (x, take_xsrc c)
  | 0x1d -> Nop
  | 0x1e -> Hlt
  | op -> decode_error "unknown opcode 0x%02x at %d" op (c.pos - 1)

(** [decode data pos] decodes one instruction at byte offset [pos];
    returns the instruction and the offset just past it. *)
let decode data pos =
  let c = { data; pos } in
  let i = decode_cursor c in
  (i, c.pos)
