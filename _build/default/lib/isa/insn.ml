(** The VX64 instruction set.

    The set is deliberately close to the x86-64 subset exercised by the
    paper's logic bombs: integer ALU with flags, byte/word/dword/qword
    memory accesses with base+index*scale+disp addressing, conditional
    and *indirect* jumps (needed for the symbolic-jump bombs), calls,
    stack operations, a [syscall] gate, and the scalar-double SSE
    instructions the paper names explicitly ([cvtsi2sd], [ucomisd],
    [addsd], ...). *)

(** Operand width in bytes' power: access widths of 1, 2, 4 or 8 bytes. *)
type width = W8 | W16 | W32 | W64
[@@deriving show { with_path = false }, eq, ord, enum]

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8
let bits_of_width w = 8 * bytes_of_width w

(** [base + index*scale + disp] effective address. *)
type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : int64;
}
[@@deriving show { with_path = false }, eq, ord]

type operand =
  | Reg of Reg.t
  | Imm of int64
  | Mem of mem
[@@deriving show { with_path = false }, eq, ord]

(** Condition codes, x86 semantics over ZF/SF/CF/OF/PF. *)
type cond =
  | E | NE          (* ZF / ~ZF *)
  | L | LE | G | GE (* signed *)
  | B | BE | A | AE (* unsigned *)
  | S | NS          (* SF / ~SF *)
  | O | NO          (* OF / ~OF *)
  | P | NP          (* PF / ~PF *)
[@@deriving show { with_path = false }, eq, ord, enum]

(** Flag-setting two-operand ALU operations. *)
type binop = Add | Sub | And | Or | Xor | Shl | Shr | Sar | Imul
[@@deriving show { with_path = false }, eq, ord, enum]

(** Scalar-double arithmetic. *)
type farith = Addsd | Subsd | Mulsd | Divsd | Sqrtsd
[@@deriving show { with_path = false }, eq, ord, enum]

(** Source of a scalar-double operand. *)
type xsrc = Xreg of Reg.xmm | Xmem of mem
[@@deriving show { with_path = false }, eq, ord]

(** Jump / call target: absolute address or register/memory indirect. *)
type target = Direct of int64 | Indirect of operand
[@@deriving show { with_path = false }, eq, ord]

type t =
  | Mov of width * operand * operand    (** [Mov (w, dst, src)] *)
  | Movzx of width * Reg.t * width * operand
      (** [Movzx (dw, dst, sw, src)]: zero-extend [sw]-wide [src]. *)
  | Movsx of width * Reg.t * width * operand  (** sign-extending load *)
  | Lea of Reg.t * mem
  | Alu of binop * width * operand * operand  (** [dst op= src]; sets flags *)
  | Not of width * operand
  | Neg of width * operand
  | Mul of width * operand              (** unsigned: RDX:RAX := RAX * src *)
  | Idiv of width * operand             (** RAX := RDX:RAX / src; #DE on 0 *)
  | Cmp of width * operand * operand
  | Test of width * operand * operand
  | Jmp of target
  | Jcc of cond * int64
  | Call of target
  | Ret
  | Push of operand                     (** 64-bit push *)
  | Pop of operand                      (** 64-bit pop *)
  | Setcc of cond * operand             (** byte 0/1 *)
  | Cmovcc of cond * Reg.t * operand
  | Syscall
      (** number in RAX, args RDI RSI RDX R10 R8 R9, result in RAX *)
  | Cvtsi2sd of Reg.xmm * operand       (** int64 -> double *)
  | Cvttsd2si of Reg.t * xsrc           (** double -> int64, truncating *)
  | Movq_xr of Reg.xmm * operand        (** raw 64-bit move gpr/mem -> xmm *)
  | Movq_rx of operand * Reg.xmm        (** raw 64-bit move xmm -> gpr/mem *)
  | Movsd of Reg.xmm * xsrc             (** double move into xmm *)
  | Movsd_store of mem * Reg.xmm        (** double move xmm -> memory *)
  | Farith of farith * Reg.xmm * xsrc   (** dst := dst op src *)
  | Ucomisd of Reg.xmm * xsrc           (** unordered compare; sets ZF/PF/CF *)
  | Nop
  | Hlt
[@@deriving show { with_path = false }, eq, ord]

let mem ?base ?index ?(scale = 1) ?(disp = 0L) () = { base; index; scale; disp }

(** Registers read by an instruction's addressing computations. *)
let mem_regs { base; index; _ } =
  List.filter_map (fun x -> x) [ base; index ]

let is_branch = function
  | Jmp _ | Jcc _ | Call _ | Ret -> true
  | _ -> false

let is_conditional = function Jcc _ -> true | _ -> false

let mnemonic = function
  | Mov _ -> "mov" | Movzx _ -> "movzx" | Movsx _ -> "movsx"
  | Lea _ -> "lea"
  | Alu (Add, _, _, _) -> "add" | Alu (Sub, _, _, _) -> "sub"
  | Alu (And, _, _, _) -> "and" | Alu (Or, _, _, _) -> "or"
  | Alu (Xor, _, _, _) -> "xor" | Alu (Shl, _, _, _) -> "shl"
  | Alu (Shr, _, _, _) -> "shr" | Alu (Sar, _, _, _) -> "sar"
  | Alu (Imul, _, _, _) -> "imul"
  | Not _ -> "not" | Neg _ -> "neg"
  | Mul _ -> "mul" | Idiv _ -> "idiv"
  | Cmp _ -> "cmp" | Test _ -> "test"
  | Jmp _ -> "jmp"
  | Jcc (c, _) -> "j" ^ String.lowercase_ascii (show_cond c)
  | Call _ -> "call" | Ret -> "ret"
  | Push _ -> "push" | Pop _ -> "pop"
  | Setcc (c, _) -> "set" ^ String.lowercase_ascii (show_cond c)
  | Cmovcc (c, _, _) -> "cmov" ^ String.lowercase_ascii (show_cond c)
  | Syscall -> "syscall"
  | Cvtsi2sd _ -> "cvtsi2sd" | Cvttsd2si _ -> "cvttsd2si"
  | Movq_xr _ | Movq_rx _ -> "movq"
  | Movsd _ | Movsd_store _ -> "movsd"
  | Farith (f, _, _) -> String.lowercase_ascii (show_farith f)
  | Ucomisd _ -> "ucomisd"
  | Nop -> "nop" | Hlt -> "hlt"

(** Whether the instruction belongs to the scalar-double (floating
    point) extension — the subset Triton-class tools cannot lift. *)
let is_fp = function
  | Cvtsi2sd _ | Cvttsd2si _ | Movq_xr _ | Movq_rx _ | Movsd _
  | Movsd_store _ | Farith _ | Ucomisd _ -> true
  | _ -> false
