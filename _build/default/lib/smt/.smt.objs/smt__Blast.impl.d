lib/smt/blast.pp.ml: Array Expr Hashtbl Int64 Obj Sat
