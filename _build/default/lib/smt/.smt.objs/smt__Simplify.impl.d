lib/smt/simplify.pp.ml: Eval Expr Hashtbl Int64 Obj
