lib/smt/expr.pp.ml: Hashtbl Int64 List Obj Option Ppx_deriving_runtime
