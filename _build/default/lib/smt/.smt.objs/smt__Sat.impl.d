lib/smt/sat.pp.ml: Array List
