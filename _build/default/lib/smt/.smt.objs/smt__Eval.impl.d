lib/smt/eval.pp.ml: Expr Float Hashtbl Int64 List Obj
