lib/smt/solver.pp.ml: Array Blast Eval Expr Float Hashtbl Int64 List Printf Simplify String
