lib/smt/printer.pp.ml: Buffer Expr Int64 List Printf Solver String
