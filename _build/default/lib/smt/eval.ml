(** Concrete evaluation of terms under an assignment — used for model
    validation, counterexample checks, and the floating-point search
    solver. *)

exception Unbound of string

type env = (string, int64) Hashtbl.t

let env_of_list l : env =
  let h = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) l;
  h

let lookup (env : env) (v : Expr.var) =
  match Hashtbl.find_opt env v.vname with
  | Some x -> Int64.logand x (Expr.mask v.width)
  | None -> raise (Unbound v.vname)

let sext_to64 w v =
  if w >= 64 then v
  else
    let sh = 64 - w in
    Int64.shift_right (Int64.shift_left v sh) sh

(* memoised on physical identity so shared sub-DAGs evaluate once *)
module Phys = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

let eval ?(memo = true) (env : env) (e : Expr.t) : int64 =
  let cache : int64 Phys.t = Phys.create 256 in
  let rec go (e : Expr.t) : int64 =
    if not memo then compute e
    else
      let key = Obj.repr e in
      match Phys.find_opt cache key with
      | Some v -> v
      | None ->
        let v = compute e in
        Phys.replace cache key v;
        v
  and compute (e : Expr.t) : int64 =
    let m = Expr.mask (Expr.width_of e) in
    let f64 x = Int64.float_of_bits x in
    let bits f = Int64.bits_of_float f in
    let v =
      match e with
      | Var v -> lookup env v
      | Const (v, _) -> v
      | Unop (Neg, a) -> Int64.neg (go a)
      | Unop (Not, a) -> Int64.lognot (go a)
      | Binop (op, a, b) ->
        let w = Expr.width_of a in
        let x = go a and y = go b in
        (match op with
         | Add -> Int64.add x y
         | Sub -> Int64.sub x y
         | Mul -> Int64.mul x y
         | Udiv ->
           if y = 0L then Expr.mask w else Int64.unsigned_div x y
         | Urem -> if y = 0L then x else Int64.unsigned_rem x y
         | Sdiv ->
           if y = 0L then
             (* SMT-Lib: bvsdiv x 0 is -1 for x >= 0, +1 for x < 0 *)
             if sext_to64 w x < 0L then 1L else Expr.mask w
           else Int64.div (sext_to64 w x) (sext_to64 w y)
         | Srem ->
           if y = 0L then x
           else Int64.rem (sext_to64 w x) (sext_to64 w y)
         | And -> Int64.logand x y
         | Or -> Int64.logor x y
         | Xor -> Int64.logxor x y
         | Shl ->
           let s = Int64.to_int y in
           if s >= w then 0L else Int64.shift_left x s
         | Lshr ->
           let s = Int64.to_int y in
           if s >= w then 0L else Int64.shift_right_logical x s
         | Ashr ->
           let s = Int64.to_int y in
           let xs = sext_to64 w x in
           if s >= 64 then Int64.shift_right xs 63
           else Int64.shift_right xs (min s 63))
      | Cmp (op, a, b) ->
        let w = Expr.width_of a in
        let x = go a and y = go b in
        let r =
          match op with
          | Eq -> x = y
          | Ult -> Int64.unsigned_compare x y < 0
          | Ule -> Int64.unsigned_compare x y <= 0
          | Slt -> sext_to64 w x < sext_to64 w y
          | Sle -> sext_to64 w x <= sext_to64 w y
        in
        if r then 1L else 0L
      | Ite (c, a, b) -> if go c = 1L then go a else go b
      | Extract (hi, lo, a) ->
        Int64.shift_right_logical (go a) lo
        |> Int64.logand (Expr.mask (hi - lo + 1))
      | Concat (a, b) ->
        let wb = Expr.width_of b in
        Int64.logor (Int64.shift_left (go a) wb) (go b)
      | Zext (_, a) -> go a
      | Sext (_, a) -> sext_to64 (Expr.width_of a) (go a)
      | Fbin (op, a, b) ->
        let x = f64 (go a) and y = f64 (go b) in
        bits
          (match op with
           | Fadd -> x +. y
           | Fsub -> x -. y
           | Fmul -> x *. y
           | Fdiv -> x /. y)
      | Fcmp (op, a, b) ->
        let x = f64 (go a) and y = f64 (go b) in
        let r =
          match op with Feq -> x = y | Flt -> x < y | Fle -> x <= y
        in
        if r then 1L else 0L
      | Fsqrt a -> bits (Float.sqrt (f64 (go a)))
      | Fof_int a -> bits (Int64.to_float (sext_to64 (Expr.width_of a) (go a)))
      | Fto_int a -> Int64.of_float (Float.trunc (f64 (go a)))
    in
    Int64.logand v m
  in
  go e

(** Does [env] satisfy the (1-bit) constraint? *)
let holds env e = eval env e = 1L
