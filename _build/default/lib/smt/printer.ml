(** Constraint-model printers: SMT-Lib 2 (what Triton/Angr emit) and a
    CVC-flavoured syntax (what BAP emits).  Useful for debugging and
    for the dumps the evaluation tools produce. *)

let bv_lit v w = Printf.sprintf "(_ bv%Lu %d)" (Int64.logand v (Expr.mask w)) w

let rec smtlib (e : Expr.t) : string =
  let bin op a b = Printf.sprintf "(%s %s %s)" op (smtlib a) (smtlib b) in
  match e with
  | Var v -> v.vname
  | Const (v, w) -> bv_lit v w
  | Unop (Neg, a) -> Printf.sprintf "(bvneg %s)" (smtlib a)
  | Unop (Not, a) -> Printf.sprintf "(bvnot %s)" (smtlib a)
  | Binop (op, a, b) ->
    let name =
      match op with
      | Add -> "bvadd" | Sub -> "bvsub" | Mul -> "bvmul"
      | Udiv -> "bvudiv" | Urem -> "bvurem" | Sdiv -> "bvsdiv"
      | Srem -> "bvsrem" | And -> "bvand" | Or -> "bvor" | Xor -> "bvxor"
      | Shl -> "bvshl" | Lshr -> "bvlshr" | Ashr -> "bvashr"
    in
    bin name a b
  | Cmp (op, a, b) ->
    let name =
      match op with
      | Eq -> "=" | Ult -> "bvult" | Ule -> "bvule" | Slt -> "bvslt"
      | Sle -> "bvsle"
    in
    (* comparisons are 1-bit vectors in our language; wrap back *)
    Printf.sprintf "(ite %s (_ bv1 1) (_ bv0 1))" (bin name a b)
  | Ite (c, a, b) ->
    Printf.sprintf "(ite (= %s (_ bv1 1)) %s %s)" (smtlib c) (smtlib a)
      (smtlib b)
  | Extract (hi, lo, a) ->
    Printf.sprintf "((_ extract %d %d) %s)" hi lo (smtlib a)
  | Concat (a, b) -> bin "concat" a b
  | Zext (w, a) ->
    Printf.sprintf "((_ zero_extend %d) %s)" (w - Expr.width_of a) (smtlib a)
  | Sext (w, a) ->
    Printf.sprintf "((_ sign_extend %d) %s)" (w - Expr.width_of a) (smtlib a)
  | Fbin (op, a, b) ->
    let name =
      match op with
      | Fadd -> "fp.add" | Fsub -> "fp.sub" | Fmul -> "fp.mul"
      | Fdiv -> "fp.div"
    in
    Printf.sprintf "(%s RNE %s %s)" name (smtlib a) (smtlib b)
  | Fcmp (op, a, b) ->
    let name =
      match op with Feq -> "fp.eq" | Flt -> "fp.lt" | Fle -> "fp.leq"
    in
    Printf.sprintf "(ite (%s %s %s) (_ bv1 1) (_ bv0 1))" name (smtlib a)
      (smtlib b)
  | Fsqrt a -> Printf.sprintf "(fp.sqrt RNE %s)" (smtlib a)
  | Fof_int a -> Printf.sprintf "((_ to_fp 11 53) RNE %s)" (smtlib a)
  | Fto_int a -> Printf.sprintf "((_ fp.to_sbv 64) RTZ %s)" (smtlib a)

(** A full (set-logic ...) (declare-const ...) (assert ...) script. *)
let smtlib_script (constraints : Expr.t list) : string =
  let buf = Buffer.create 1024 in
  let logic =
    if List.exists Expr.contains_fp constraints then "QF_FPBV" else "QF_BV"
  in
  Buffer.add_string buf (Printf.sprintf "(set-logic %s)\n" logic);
  List.iter
    (fun (v : Expr.var) ->
       Buffer.add_string buf
         (Printf.sprintf "(declare-const %s (_ BitVec %d))\n" v.vname v.width))
    (Solver.all_vars constraints);
  List.iter
    (fun c ->
       Buffer.add_string buf
         (Printf.sprintf "(assert (= %s (_ bv1 1)))\n" (smtlib c)))
    constraints;
  Buffer.add_string buf "(check-sat)\n(get-model)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* CVC flavour (BAP's default)                                         *)
(* ------------------------------------------------------------------ *)

let rec cvc (e : Expr.t) : string =
  let bin op a b = Printf.sprintf "%s(%s, %s)" op (cvc a) (cvc b) in
  match e with
  | Var v -> v.vname
  | Const (v, w) -> Printf.sprintf "0bin%s" (to_bin v w)
  | Unop (Neg, a) -> Printf.sprintf "BVUMINUS(%s)" (cvc a)
  | Unop (Not, a) -> Printf.sprintf "~(%s)" (cvc a)
  | Binop (op, a, b) ->
    let name =
      match op with
      | Add -> "BVPLUS" | Sub -> "BVSUB" | Mul -> "BVMULT"
      | Udiv -> "BVDIV" | Urem -> "BVMOD" | Sdiv -> "SBVDIV"
      | Srem -> "SBVREM" | And -> "BVAND" | Or -> "BVOR" | Xor -> "BVXOR"
      | Shl -> "BVSHL" | Lshr -> "BVLSHR" | Ashr -> "BVASHR"
    in
    bin name a b
  | Cmp (op, a, b) ->
    let name =
      match op with
      | Eq -> "=" | Ult -> "BVLT" | Ule -> "BVLE" | Slt -> "SBVLT"
      | Sle -> "SBVLE"
    in
    Printf.sprintf "IF %s(%s, %s) THEN 0bin1 ELSE 0bin0 ENDIF" name (cvc a)
      (cvc b)
  | Ite (c, a, b) ->
    Printf.sprintf "IF %s = 0bin1 THEN %s ELSE %s ENDIF" (cvc c) (cvc a)
      (cvc b)
  | Extract (hi, lo, a) -> Printf.sprintf "(%s)[%d:%d]" (cvc a) hi lo
  | Concat (a, b) -> Printf.sprintf "(%s @ %s)" (cvc a) (cvc b)
  | Zext (w, a) ->
    Printf.sprintf "(0bin%s @ %s)"
      (String.make (w - Expr.width_of a) '0')
      (cvc a)
  | Sext (w, a) -> Printf.sprintf "BVSX(%s, %d)" (cvc a) w
  | Fbin _ | Fcmp _ | Fsqrt _ | Fof_int _ | Fto_int _ ->
    (* CVC/STP has no FP theory: exactly BAP's limitation *)
    "UNSUPPORTED_FP"

and to_bin v w =
  String.init w (fun i ->
      if Int64.logand (Int64.shift_right_logical v (w - 1 - i)) 1L = 1L then '1'
      else '0')

let cvc_script (constraints : Expr.t list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (v : Expr.var) ->
       Buffer.add_string buf
         (Printf.sprintf "%s : BITVECTOR(%d);\n" v.vname v.width))
    (Solver.all_vars constraints);
  List.iter
    (fun c ->
       Buffer.add_string buf (Printf.sprintf "ASSERT %s = 0bin1;\n" (cvc c)))
    constraints;
  Buffer.add_string buf "QUERY FALSE;\nCOUNTEREXAMPLE;\n";
  Buffer.contents buf
