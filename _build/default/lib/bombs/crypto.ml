(** Crypto-function bombs (Table II rows 21–22, Fig. 2i): triggering
    requires inverting SHA-1 or recovering an AES plaintext — beyond
    any constraint solver. *)

open Asm.Ast.Dsl

let sha1_password = "unlock"
let sha1_digest = Ocrypto.Sha1.digest sha1_password

(* if (sha1(argv[1]) == sha1("unlock")) bomb(); *)
let sha1_bomb =
  Common.make ~category:"Crypto Function"
    ~challenge:"Infer the plain text from an SHA1 result"
    ~fig2:(Some "i")
    ~trigger:(Common.argv_trigger sha1_password)
    "sha1_bomb"
    (Common.main_with_argv
       ~data:[ label "__sha1_expect"; Asm.Ast.Bytes sha1_digest ]
       ~bss:[ label "__sha1_out"; space 20 ]
       [ mov rdi rbx;
         call "strlen";
         cmp rax (imm 55);
         ja ".defused";                 (* single-block limit *)
         mov rsi rax;
         mov rdi rbx;
         lea rdx "__sha1_out";
         call "sha1";
         lea rdi "__sha1_out";
         lea rsi "__sha1_expect";
         mov rdx (imm 20);
         call "memcmp";
         test rax rax;
         jne ".defused";
         call "bomb" ])

let aes_key = "k3y-0f-th3-b0mb!"
let aes_password = "open-sesame"

(* plaintext block: password NUL-padded to 16 bytes *)
let aes_plain_block =
  let b = Bytes.make 16 '\000' in
  Bytes.blit_string aes_password 0 b 0 (String.length aes_password);
  Bytes.to_string b

let aes_expect = Ocrypto.Aes.encrypt_block ~key:aes_key aes_plain_block

(* if (AES_enc(pad16(argv[1]), key) == E(key, "open-sesame")) bomb(); *)
let aes_bomb =
  Common.make ~category:"Crypto Function"
    ~challenge:"Infer the key from an AES encryption result"
    ~trigger:(Common.argv_trigger aes_password)
    "aes_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__aes_key"; Asm.Ast.Bytes aes_key;
           label "__aes_expect"; Asm.Ast.Bytes aes_expect ]
       ~bss:[ label "__aes_in"; space 16; label "__aes_out"; space 16 ]
       [ (* zero-pad argv[1] into a 16-byte block *)
         lea rdi "__aes_in";
         xor rsi rsi;
         mov rdx (imm 16);
         call "memset";
         mov rdi rbx;
         call "strlen";
         cmp rax (imm 16);
         ja ".defused";
         mov rdx rax;
         lea rdi "__aes_in";
         mov rsi rbx;
         call "memcpy";
         lea rdi "__aes_in";
         lea rsi "__aes_key";
         lea rdx "__aes_out";
         call "aes128_encrypt";
         lea rdi "__aes_out";
         lea rsi "__aes_expect";
         mov rdx (imm 16);
         call "memcmp";
         test rax rax;
         jne ".defused";
         call "bomb" ])

let all = [ sha1_bomb; aes_bomb ]
