(** Contextual-symbolic-value bombs (Table II rows 14–15, Fig. 2e):
    the symbolic value parameterises a lookup into the *environment* —
    a file name, or a syscall number. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

let secret_path = "secret.txt"
let secret_contents = "S3same"

(* if (open(argv[1]) succeeds && first byte == 'S') bomb(); *)
let filename_bomb =
  Common.make ~category:"Contextual Symbolic Value"
    ~challenge:"Employ symbolic values as the name of a file"
    ~fig2:(Some "e")
    ~base_files:[ (secret_path, secret_contents) ]
    ~trigger:(Common.argv_trigger secret_path)
    "filename_bomb"
    (Common.main_with_argv
       ~bss:[ label "__fn_buf"; space 8 ]
       [ mov rdi rbx;
         xor rsi rsi;
         call "open";
         test rax rax;
         js ".defused";                 (* no such file *)
         mov r12 rax;
         mov rdi r12;
         lea rsi "__fn_buf";
         mov rdx (imm 1);
         call "read";
         lea rax "__fn_buf";
         movzx rcx ~sw:W8 (mreg RAX);
         cmp rcx (imm (Char.code 'S'));
         jne ".defused";
         call "bomb" ])

(* r = syscall3(atoi(argv[1]), 0, 0, 0); if (r == 1000) bomb();
   getuid (102) returns exactly 1000 *)
let sysname_bomb =
  Common.make ~category:"Contextual Symbolic Value"
    ~challenge:"Employ symbolic values as the name of a system call"
    ~trigger:(Common.argv_trigger "102")
    "sysname_bomb"
    (Common.main_with_argv
       [ mov rdi rbx;
         call "atoi";
         mov rdi rax;
         xor rsi rsi;
         xor rdx rdx;
         xor rcx rcx;
         call "syscall3";
         cmp rax (imm 1000);
         jne ".defused";
         call "bomb" ])

let all = [ filename_bomb; sysname_bomb ]
