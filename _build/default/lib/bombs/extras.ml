(** Programs beyond the 22 Table II bombs that the paper's evaluation
    narrative uses: the negative bomb (§V-C) and the Figure 3
    external-constraint demonstration. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

let f64_bytes f =
  let bits = Int64.bits_of_float f in
  Asm.Ast.Bytes
    (String.init 8 (fun i ->
         Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)))

(* if (pow(x, 2) == -1.0) bomb();  -- a constant-false predicate; the
   paper shows Angr triggers it anyway because it lets external calls
   return anything. *)
let negative_bomb =
  Common.make ~category:"Negative"
    ~challenge:"Constant-false guard pow(x,2) == -1 (must NOT trigger)"
    ~trigger:None
    "negative_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__neg_two"; f64_bytes 2.0;
           label "__neg_m1"; f64_bytes (-1.0) ]
       [ mov rdi rbx;
         call "atoi";
         cvtsi2sd XMM0 rax;
         lea rcx "__neg_two";
         movsd XMM1 (Xmem (Isa.Insn.mem ~base:RCX ()));
         call "pow";
         lea rcx "__neg_m1";
         ucomisd XMM0 (Xmem (Isa.Insn.mem ~base:RCX ()));
         jne ".defused";
         jp ".defused";
         call "bomb" ])

(* Figure 3: x = atoi(argv[1]); [printf("value=%d", x);]
   if (x >= 0x32) bomb.  The print runs for every input (the paper
   executes it with argv[1] = 7), dragging printf's formatting loop
   into the tainted trace and multiplying the constraints on x. *)
let fig3 ~with_print =
  let name = if with_print then "fig3_print" else "fig3_noprint" in
  let print_code =
    if with_print then
      [ lea rdi "__fig3_fmt";
        mov rsi r12;
        call "printf" ]
    else []
  in
  Common.make ~category:"Demonstration"
    ~challenge:"Figure 3: extra constraints from an external printf"
    ~trigger:(Common.argv_trigger "50")
    name
    (Common.main_with_argv
       ~data:(if with_print then [ label "__fig3_fmt"; asciz "value=%d\n" ]
              else [])
       ([ mov rdi rbx;
          call "atoi";
          mov r12 rax ]
        @ print_code
        @ [ cmp r12 (imm 0x32);
            jl ".defused";
            call "bomb" ]))

let fig3_noprint = fig3 ~with_print:false
let fig3_print = fig3 ~with_print:true

let all = [ negative_bomb; fig3_noprint; fig3_print ]
