(** Symbolic-variable-declaration bombs (Table II rows 1–4, Fig. 2a).

    These go off only if the executor declares the right *source* as
    symbolic: the clock, web contents, a syscall return value, or the
    length (not just the bytes) of argv[1]. *)

open Asm.Ast.Dsl

let trigger_time = 1_500_000_000L

(* if (time(0) == 1500000000) bomb(); *)
let time_bomb =
  Common.make ~category:"Symbolic Variable Declaration"
    ~challenge:"Employ time info in conditions for triggering a bomb"
    ~fig2:(Some "a")
    ~trigger:(Common.env_trigger [ Common.Set_time trigger_time ])
    "time_bomb"
    (Common.main_plain
       [ xor rdi rdi;
         call "time";
         mov rcx (imm64 trigger_time);
         cmp rax rcx;
         jne ".defused";
         call "bomb" ])

let web_secret = "HTTP/1.0 200 OK\r\n\r\nBOMB"

(* fetch a "page"; bomb when its body says so *)
let web_bomb =
  Common.make ~category:"Symbolic Variable Declaration"
    ~challenge:"Employ web contents in conditions for triggering a bomb"
    ~trigger:(Common.env_trigger [ Common.Set_web web_secret ])
    "web_bomb"
    (Common.main_plain
       ~bss:[ label "__web_buf"; space 64 ]
       [ lea rdi "__web_buf";
         mov rsi (imm 64);
         call "http_get";
         cmp rax (imm 23);
         jl ".defused";
         (* compare the response body, past the 19-byte header *)
         lea rdi "__web_buf";
         add rdi (imm 19);
         lea rsi "__web_expect";
         mov rdx (imm 4);
         call "memcmp";
         test rax rax;
         jne ".defused";
         call "bomb" ]
     |> fun o ->
     { o with data = o.data @ [ label "__web_expect"; asciz "BOMB" ] })

(* if (getuid() == 0) bomb(); *)
let sysret_bomb =
  Common.make ~category:"Symbolic Variable Declaration"
    ~challenge:"Employ the return values of system calls in conditions"
    ~trigger:(Common.env_trigger [ Common.Set_uid 0L ])
    "sysret_bomb"
    (Common.main_plain
       [ call "getuid";
         test rax rax;
         jne ".defused";
         call "bomb" ])

(* if (strlen(argv[1]) == 7) bomb(); *)
let argvlen_bomb =
  Common.make ~category:"Symbolic Variable Declaration"
    ~challenge:"Employ the length of argv[1] in conditions"
    ~trigger:(Common.argv_trigger "silence")
    "argvlen_bomb"
    (Common.main_with_argv
       [ mov rdi rbx;
         call "strlen";
         cmp rax (imm 7);
         jne ".defused";
         call "bomb" ])

let all = [ time_bomb; web_bomb; sysret_bomb; argvlen_bomb ]
