(** Symbolic-jump bombs (Table II rows 16–17, Fig. 2f): the symbolic
    value decides the target of an *unconditional* control transfer,
    so there is no conditional branch to negate. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

(* Size of an encoded direct jump: the landing offset that skips the
   "defuse" jump and reaches the bomb call. *)
let jmp_size = Isa.Codec.encoded_size (Isa.Insn.Jmp (Direct 0L))

(* target = __jmp_base + atoi(argv[1]); jmp target.
   offset 0        -> jmp .defused
   offset jmp_size -> call bomb *)
let jump_bomb =
  Common.make ~category:"Symbolic Jump"
    ~challenge:"Employ symbolic values as unconditional jump addresses"
    ~fig2:(Some "f")
    ~trigger:(Common.argv_trigger (string_of_int jmp_size))
    "jump_bomb"
    (Common.main_with_argv
       [ mov rdi rbx;
         call "atoi";
         cmp rax (imm 64);
         ja ".defused";                 (* keep the target inside main *)
         mov_lbl rcx "__jmp_base";
         add rcx rax;
         jmp_ind rcx;
         label "__jmp_base";
         jmp ".defused";
         call "bomb";
         jmp ".defused" ])

(* jump table of code addresses; entry 2 is the bomb *)
let jumptable_bomb =
  Common.make ~category:"Symbolic Jump"
    ~challenge:"Employ symbolic values as offsets to an address array"
    ~trigger:(Common.argv_trigger "2")
    "jumptable_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__jt";
           quad_lbls [ ".case_a"; ".case_b"; ".case_boom"; ".case_c" ] ]
       [ mov rdi rbx;
         call "atoi";
         cmp rax (imm 3);
         ja ".defused";
         lea rcx "__jt";
         mov rdx (mem ~base:RCX ~index:RAX ~scale:8 ());
         jmp_ind rdx;
         label ".case_a";
         jmp ".defused";
         label ".case_b";
         jmp ".defused";
         label ".case_boom";
         call "bomb";
         jmp ".defused";
         label ".case_c";
         jmp ".defused" ])

let all = [ jump_bomb; jumptable_bomb ]
