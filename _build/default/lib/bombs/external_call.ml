(** External-function-call bombs (Table II rows 19–20, Fig. 2h): the
    guard depends on values computed inside library code (libm's sin,
    libc's srand/rand), whose conditional structure an executor must
    either follow or model. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

let f64_bytes f =
  let bits = Int64.bits_of_float f in
  Asm.Ast.Bytes
    (String.init 8 (fun i ->
         Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)))

(* s = sin(atoi(argv[1])); if (|s - sin(1)| < 1e-6) bomb();  -> "1" *)
let sin_bomb =
  Common.make ~category:"External Function Call"
    ~challenge:"Employ symbolic values as the parameter of sin"
    ~fig2:(Some "h")
    ~trigger:(Common.argv_trigger "1")
    "sin_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__sin_target"; f64_bytes (sin 1.0);
           label "__sin_eps"; f64_bytes 1e-6 ]
       [ mov rdi rbx;
         call "atoi";
         cvtsi2sd XMM0 rax;
         call "sin";
         lea rcx "__sin_target";
         subsd XMM0 (Xmem (Isa.Insn.mem ~base:RCX ()));
         call "fabs";
         lea rcx "__sin_eps";
         ucomisd XMM0 (Xmem (Isa.Insn.mem ~base:RCX ()));
         jae ".defused";
         call "bomb" ])

(* srand(atoi(argv[1])); if (rand() == rand_after(12345)) bomb(); *)
let srand_magic_seed = 12345L

let srand_bomb =
  let expected = Libc.Rand.first_rand srand_magic_seed in
  Common.make ~category:"External Function Call"
    ~challenge:"Employ symbolic values as the parameter of srand"
    ~trigger:(Common.argv_trigger (Int64.to_string srand_magic_seed))
    "srand_bomb"
    (Common.main_with_argv
       [ mov rdi rbx;
         call "atoi";
         mov rdi rax;
         call "srand";
         call "rand";
         mov rcx (imm expected);
         cmp rax rcx;
         jne ".defused";
         call "bomb" ])

let all = [ sin_bomb; srand_bomb ]
