(** Parallel-program bombs (Table II rows 10–11, Fig. 2d).

    The symbolic value is transformed in another thread of control —
    a pthread or a forked child talking over a pipe. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

(* shared = atoi(argv[1]); thread does shared += 29; join; ==99? *)
let pthread_bomb =
  Common.make ~category:"Parallel Program"
    ~challenge:"Change symbolic values in multi-threads via pthread"
    ~fig2:(Some "d")
    ~trigger:(Common.argv_trigger "70")
    "pthread_bomb"
    ((Common.main_with_argv
        ~bss:[ label "__shared"; space 8 ]
        [ mov rdi rbx;
          call "atoi";
          lea rcx "__shared";
          mov (mreg RCX) rax;
          (* tid = pthread_create(worker, 0) *)
          mov_lbl rdi "__worker";
          xor rsi rsi;
          call "pthread_create";
          mov rdi rax;
          call "pthread_join";
          lea rcx "__shared";
          mov rax (mreg RCX);
          cmp rax (imm 99);
          jne ".defused";
          call "bomb" ])
     |> fun o ->
     { o with
       text =
         o.text
         @ [ label "__worker";
             lea rcx "__shared";
             add (mreg RCX) (imm 29);
             ret ] })

(* the parent parses argv (so the input is visibly symbolic), the
   forked child transforms it and pipes the result back; ==100? *)
let fork_bomb =
  Common.make ~category:"Parallel Program"
    ~challenge:"Change symbolic values in multi-processes via fork/pipe"
    ~trigger:(Common.argv_trigger "33")
    "fork_bomb"
    (Common.main_with_argv
       ~bss:[ label "__fk_fds"; space 8; label "__fk_buf"; space 8 ]
       [ mov rdi rbx;
         call "atoi";
         mov r12 rax;                   (* x, before the fork *)
         lea rdi "__fk_fds";
         call "pipe";
         call "fork";
         test rax rax;
         jne ".parent";
         (* child: y = 3 * x + 1 *)
         mov rax r12;
         imul rax (imm 3);
         add rax (imm 1);
         lea rcx "__fk_buf";
         mov (mreg RCX) rax;
         lea rax "__fk_fds";
         mov ~w:W32 rdi (mreg ~disp:4 RAX);
         lea rsi "__fk_buf";
         mov rdx (imm 8);
         call "write";
         xor rdi rdi;
         call "exit";
         hlt;
         label ".parent";
         lea rax "__fk_fds";
         mov ~w:W32 rdi (mreg RAX);
         lea rsi "__fk_buf";
         mov rdx (imm 8);
         call "read";
         lea rcx "__fk_buf";
         mov rax (mreg RCX);
         cmp rax (imm 100);
         jne ".defused";
         call "bomb" ])

let all = [ pthread_bomb; fork_bomb ]
