(** Symbolic-array bombs (Table II rows 12–13, Fig. 2c): the symbolic
    value indexes one or two levels of in-memory tables. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

(* table.(6) = 0x5a; others are noise *)
let table1 = [ 17; 3; 44; 9; 120; 61; 0x5a; 28; 77; 5 ]

(* if (table[argv[1][0] - '0'] == 0x5a) bomb(); *)
let array1_bomb =
  Common.make ~category:"Symbolic Array"
    ~challenge:"Employ symbolic values as offsets for a level-one array"
    ~fig2:(Some "c")
    ~trigger:(Common.argv_trigger "6")
    "array1_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__arr1";
           Asm.Ast.Bytes (String.init 10 (fun i -> Char.chr (List.nth table1 i))) ]
       [ movzx rax ~sw:W8 (mreg RBX);
         sub rax (imm (Char.code '0'));
         cmp rax (imm 9);
         ja ".defused";                 (* bounds check, unsigned *)
         lea rcx "__arr1";
         movzx rdx ~sw:W8 (mem ~base:RCX ~index:RAX ());
         cmp rdx (imm 0x5a);
         jne ".defused";
         call "bomb" ])

(* level one: digit -> index; level two: index -> tag *)
let t1 = [ 4; 9; 1; 7; 2; 0; 3; 8; 5; 6 ]     (* t1.(3) = 7 *)
let t2 = [ 12; 90; 33; 7; 51; 2; 68; 0x77; 21; 40 ]  (* t2.(7) = 0x77 *)

(* if (t2[t1[argv[1][0] - '0']] == 0x77) bomb();  -- "3" *)
let array2_bomb =
  Common.make ~category:"Symbolic Array"
    ~challenge:"Employ symbolic values as offsets for a level-two array"
    ~trigger:(Common.argv_trigger "3")
    "array2_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__arr2_t1";
           Asm.Ast.Bytes (String.init 10 (fun i -> Char.chr (List.nth t1 i)));
           label "__arr2_t2";
           Asm.Ast.Bytes (String.init 10 (fun i -> Char.chr (List.nth t2 i))) ]
       [ movzx rax ~sw:W8 (mreg RBX);
         sub rax (imm (Char.code '0'));
         cmp rax (imm 9);
         ja ".defused";
         lea rcx "__arr2_t1";
         movzx rax ~sw:W8 (mem ~base:RCX ~index:RAX ());
         lea rcx "__arr2_t2";
         movzx rdx ~sw:W8 (mem ~base:RCX ~index:RAX ());
         cmp rdx (imm 0x77);
         jne ".defused";
         call "bomb" ])

let all = [ array1_bomb; array2_bomb ]
