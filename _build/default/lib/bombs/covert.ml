(** Covert-symbolic-propagation bombs (Table II rows 5–9, Fig. 2b).

    The symbolic value reaches the guard through a channel a naive
    data-flow does not follow: the stack, a file round-trip, a kernel
    round-trip, or an exception handler. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

(* push argv[1][0]; pop it back; compare *)
let stack_bomb =
  Common.make ~category:"Covert Symbolic Propagation"
    ~challenge:"Push symbolic values into the stack and pop out"
    ~trigger:(Common.argv_trigger "K")
    "stack_bomb"
    (Common.main_with_argv
       [ movzx rax ~sw:W8 (mreg RBX);
         push rax;
         xor rax rax;
         pop rcx;
         cmp rcx (imm (Char.code 'K'));
         jne ".defused";
         call "bomb" ])

(* write argv[1] to a file, read it back, compare to "mango" *)
let file_bomb =
  Common.make ~category:"Covert Symbolic Propagation"
    ~challenge:"Save symbolic values to a file and then read back"
    ~fig2:(Some "b")
    ~trigger:(Common.argv_trigger "mango")
    "file_bomb"
    (Common.main_with_argv
       ~data:[ label "__tmp_path"; asciz "tmp.txt";
               label "__fruit"; asciz "mango" ]
       ~bss:[ label "__file_buf"; space 32 ]
       [ (* fd = open("tmp.txt", O_WRONLY|O_CREAT|O_TRUNC) *)
         lea rdi "__tmp_path";
         mov rsi (imm 0o1101);
         call "open";
         mov r12 rax;
         (* write(fd, argv1, strlen(argv1)) *)
         mov rdi rbx;
         call "strlen";
         mov rdx rax;
         mov rdi r12;
         mov rsi rbx;
         call "write";
         mov rdi r12;
         call "close";
         (* read it back *)
         lea rdi "__tmp_path";
         xor rsi rsi;
         call "open";
         mov r12 rax;
         mov rdi r12;
         lea rsi "__file_buf";
         mov rdx (imm 31);
         call "read";
         mov rdi r12;
         call "close";
         lea rdi "__file_buf";
         lea rsi "__fruit";
         call "strcmp";
         test rax rax;
         jne ".defused";
         call "bomb" ])

(* round-trip argv[1][0] through the kernel via a pipe *)
let syscovert_bomb =
  Common.make ~category:"Covert Symbolic Propagation"
    ~challenge:"Save symbolic values via system call and then read back"
    ~trigger:(Common.argv_trigger "Q")
    "syscovert_bomb"
    (Common.main_with_argv
       ~bss:[ label "__pipe_fds"; space 8; label "__pipe_buf"; space 8 ]
       [ lea rdi "__pipe_fds";
         call "pipe";
         (* write(fds[1], argv1, 1) *)
         lea rax "__pipe_fds";
         mov ~w:W32 rdi (mreg ~disp:4 RAX);
         mov rsi rbx;
         mov rdx (imm 1);
         call "write";
         (* read(fds[0], buf, 1) *)
         lea rax "__pipe_fds";
         mov ~w:W32 rdi (mreg RAX);
         lea rsi "__pipe_buf";
         mov rdx (imm 1);
         call "read";
         lea rax "__pipe_buf";
         movzx rcx ~sw:W8 (mreg RAX);
         cmp rcx (imm (Char.code 'Q'));
         jne ".defused";
         call "bomb" ])

(* SIGFPE handler flips a flag; div by atoi(argv[1]) faults on "0" *)
let exception_bomb =
  Common.make ~category:"Covert Symbolic Propagation"
    ~challenge:"Change symbolic values in an exception (argv[1] = 0)"
    ~trigger:(Common.argv_trigger "0")
    "exception_bomb"
    ((Common.main_with_argv
        ~bss:[ label "__fpe_flag"; space 8 ]
        [ (* signal(SIGFPE, handler) *)
          mov rdi (imm 8);
          mov_lbl rsi "__fpe_handler";
          call "signal";
          (* x = atoi(argv[1]); 100 / x *)
          mov rdi rbx;
          call "atoi";
          mov rcx rax;
          mov rax (imm 100);
          idiv rcx;
          (* if handler ran, the flag is set *)
          lea rax "__fpe_flag";
          mov rcx (mreg RAX);
          test rcx rcx;
          je ".defused";
          call "bomb" ])
     |> fun o ->
     { o with
       text =
         o.text
         @ [ label "__fpe_handler";
             lea rax "__fpe_flag";
             mov (mreg RAX) (imm 1);
             ret ] })

(* open() failure path (the "file operation exception") decides *)
let fileexc_bomb =
  Common.make ~category:"Covert Symbolic Propagation"
    ~challenge:"Change symbolic values in an file operation exception"
    ~trigger:(Common.argv_trigger "nosuchfile")
    "fileexc_bomb"
    (Common.main_with_argv
       [ (* fd = open(argv[1], O_RDONLY): fails for missing files *)
         mov rdi rbx;
         xor rsi rsi;
         call "open";
         test rax rax;
         jns ".defused";                (* file exists: no exception *)
         (* exception path: require argv[1][0] == 'n' too *)
         movzx rcx ~sw:W8 (mreg RBX);
         cmp rcx (imm (Char.code 'n'));
         jne ".defused";
         call "bomb" ])

let all = [ stack_bomb; file_bomb; syscovert_bomb; exception_bomb; fileexc_bomb ]
