(** Floating-point bomb (Table II row 18, Fig. 2g):
    1024.0 + x == 1024.0 && x > 0 — unsatisfiable over the reals,
    satisfiable over doubles when 0 < x < ulp(1024)/2. *)

open Isa.Insn
open Isa.Reg
open Asm.Ast.Dsl

let f64_bytes f =
  let bits = Int64.bits_of_float f in
  Asm.Ast.Bytes
    (String.init 8 (fun i ->
         Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)))

(* x = atoi(argv[1]) * 1e-15;
   if (1024.0 + x == 1024.0 && x > 1e-13) bomb();
   satisfiable only for x in (1e-13, ulp(1024)/2 = ~1.136e-13), i.e.
   atoi(argv[1]) in [101 .. 113] — a window too narrow to hit by
   luckily satisfying the integer part of the path predicate *)
let float_bomb =
  Common.make ~category:"Floating-point Number"
    ~challenge:"Employ floating-point numbers in symbolic conditions"
    ~fig2:(Some "g")
    ~trigger:(Common.argv_trigger "105")
    ~decoy:"5"
    "float_bomb"
    (Common.main_with_argv
       ~data:
         [ label "__fp_scale"; f64_bytes 1e-15;
           label "__fp_base"; f64_bytes 1024.0;
           label "__fp_floor"; f64_bytes 1e-13 ]
       [ mov rdi rbx;
         call "atoi";
         cvtsi2sd XMM0 rax;
         lea rcx "__fp_scale";
         mulsd XMM0 (Xmem (Isa.Insn.mem ~base:RCX ()));  (* x *)
         lea rcx "__fp_base";
         movsd XMM1 (Xmem (Isa.Insn.mem ~base:RCX ()));
         addsd XMM1 (Xreg XMM0);                         (* 1024 + x *)
         lea rcx "__fp_base";
         ucomisd XMM1 (Xmem (Isa.Insn.mem ~base:RCX ()));
         jne ".defused";                                 (* != 1024 *)
         lea rcx "__fp_floor";
         ucomisd XMM0 (Xmem (Isa.Insn.mem ~base:RCX ()));
         jbe ".defused";                                 (* x <= 1e-13 *)
         call "bomb" ])

let all = [ float_bomb ]
