(** Shared pieces of every logic bomb: the [bomb] routine, the
    trigger/metadata record, and argv-handling prologues.

    A bomb "goes off" by printing ["BOOM!"] and exiting with code 42 —
    the grader checks stdout, which is robust even for bombs that kill
    the process in unusual ways. *)

open Isa.Reg
open Asm.Ast.Dsl

let boom_exit_code = 42
let boom_marker = "BOOM!"

(** The payload: prints the marker and exits 42. *)
let bomb_obj : Asm.Ast.obj =
  Asm.Ast.obj
    ~data:[ label "__boom_msg"; asciz boom_marker ]
    [ label "bomb";
      lea rdi "__boom_msg";
      call "puts";
      mov rdi (imm boom_exit_code);
      call "exit";
      hlt ]

(** Environment adjustments a bomb needs before it can possibly fire. *)
type env_change =
  | Set_time of int64
  | Set_web of string
  | Set_uid of int64
  | Add_file of string * string

(** What makes a bomb go off.  [argv1 = None] means the command-line
    value is irrelevant (any placeholder will do). *)
type trigger = { argv1 : string option; env : env_change list }

let argv_trigger s = Some { argv1 = Some s; env = [] }
let env_trigger env = Some { argv1 = None; env }

type t = {
  name : string;
  category : string;             (** Table II category *)
  challenge : string;            (** Table II "Sample Case" text *)
  fig2 : string option;          (** Fig. 2 sub-figure it illustrates *)
  obj : Asm.Ast.obj;
  trigger : trigger option;      (** [None] = the bomb path is dead code *)
  base_files : (string * string) list;
      (** filesystem contents that exist in the bomb's world *)
  decoy : string;
      (** an argv[1] value guaranteed NOT to trigger the bomb *)
}

let make ?(fig2 = None) ?(base_files = []) ?(decoy = "5") ~category ~challenge
    ~trigger name obj =
  { name; category; challenge; fig2; obj; trigger; base_files; decoy }

(** Build the concrete-machine config for running [bomb] on [argv1],
    with the triggering environment applied when [winning]. *)
let config_for ?(winning = false) (bomb : t) argv1 =
  let base =
    { Vm.Machine.default_config with
      argv = [ bomb.name; argv1 ];
      files = bomb.base_files }
  in
  if not winning then base
  else
    match bomb.trigger with
    | None -> base
    | Some { env; _ } ->
      List.fold_left
        (fun (cfg : Vm.Machine.config) change ->
           match change with
           | Set_time t -> { cfg with now = t }
           | Set_web w -> { cfg with web_content = w }
           | Set_uid u -> { cfg with uid = u }
           | Add_file (p, d) -> { cfg with files = (p, d) :: cfg.files })
        base env

(** The argv value that triggers the bomb, or a harmless placeholder. *)
let winning_argv (bomb : t) =
  match bomb.trigger with
  | Some { argv1 = Some s; _ } -> s
  | Some { argv1 = None; _ } | None -> "x"

(** Did a run set the bomb off? *)
let triggered (res : Vm.Machine.run_result) =
  let marker = boom_marker in
  let hay = res.stdout in
  let n = String.length marker and h = String.length hay in
  let rec scan i =
    i + n <= h && (String.sub hay i n = marker || scan (i + 1))
  in
  scan 0

(** Standard prologue: rbx := argv[1] (or exit 1 if argc < 2). *)
let load_argv1 =
  [ cmp rdi (imm 2);
    jl ".no_arg";
    mov rbx (mreg ~disp:8 RSI) ]

(* every bomb links this tail once *)
let no_arg_tail =
  [ label ".no_arg";
    mov rdi (imm 1);
    call "exit";
    hlt ]

(** Wrap a [main] body: [load_argv1] first, body, then the shared
    failure tails.  The body must end in [ret] or a jump. *)
let main_with_argv ?(data = []) ?(bss = []) body : Asm.Ast.obj =
  Asm.Ast.obj ~data ~bss
    ((label "main" :: load_argv1) @ body
     @ [ label ".defused";
         lea rdi "__defused_msg";
         call "puts";
         mov rax (imm 0);
         ret ]
     @ no_arg_tail)
  |> fun o ->
  { o with
    data = o.data @ [ label "__defused_msg"; asciz "nothing happened" ] }

(** For bombs that do not read argv at all. *)
let main_plain ?(data = []) ?(bss = []) body : Asm.Ast.obj =
  Asm.Ast.obj ~data ~bss
    ((label "main" :: body)
     @ [ label ".defused";
         lea rdi "__defused_msg2";
         call "puts";
         mov rax (imm 0);
         ret ])
  |> fun o ->
  { o with
    data = o.data @ [ label "__defused_msg2"; asciz "nothing happened" ] }

(** Link a bomb against the full guest runtime. *)
let link (bomb : t) =
  Libc.Runtime.link_with_libs (Asm.Ast.append bomb.obj bomb_obj)
