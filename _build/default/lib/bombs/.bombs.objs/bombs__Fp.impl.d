lib/bombs/fp.ml: Asm Char Common Int64 Isa String
