lib/bombs/catalog.ml: Array Asm Common Contextual Covert Crypto Decl External_call Extras Fp Hashtbl Jump List Parallel Printf
