lib/bombs/array.ml: Asm Char Common Isa List String
