lib/bombs/contextual.ml: Asm Char Common Isa
