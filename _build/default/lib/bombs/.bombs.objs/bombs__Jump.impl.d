lib/bombs/jump.ml: Asm Common Isa
