lib/bombs/external_call.ml: Asm Char Common Int64 Isa Libc String
