lib/bombs/covert.ml: Asm Char Common Isa
