lib/bombs/parallel.ml: Asm Common Isa
