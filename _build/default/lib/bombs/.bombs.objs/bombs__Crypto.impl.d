lib/bombs/crypto.ml: Asm Bytes Common Ocrypto String
