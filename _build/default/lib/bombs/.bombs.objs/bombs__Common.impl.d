lib/bombs/common.ml: Asm Isa Libc List String Vm
