lib/bombs/decl.ml: Asm Common
