lib/bombs/extras.ml: Asm Char Common Int64 Isa String
