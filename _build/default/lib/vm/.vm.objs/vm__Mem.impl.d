lib/vm/mem.pp.ml: Buffer Bytes Char Hashtbl Int64 String
