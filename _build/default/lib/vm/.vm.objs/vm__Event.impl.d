lib/vm/event.pp.ml: Isa
