lib/vm/machine.pp.ml: Access Array Asm Buffer Char Cpu Event Hashtbl Int64 Isa List Mem Ppx_deriving_runtime Printf String
