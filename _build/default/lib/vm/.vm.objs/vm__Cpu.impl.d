lib/vm/cpu.pp.ml: Array Float Int64 Isa Mem
