lib/vm/access.pp.ml: Array Int64 Isa
