(** CPU architectural state and single-instruction semantics.

    Pure state manipulation; anything that crosses the user/kernel
    boundary ([Syscall], faults, [Hlt]) is reported to the caller as an
    {!outcome} and handled by {!Machine}. *)

type flags = {
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;  (* overflow flag; [of] is a keyword *)
  mutable pf : bool;
}

type t = {
  regs : int64 array;       (* 16 GPRs, indexed by Reg.index *)
  xmm : float array;        (* 8 scalar doubles *)
  mutable pc : int64;
  flags : flags;
}

let create ?(pc = 0L) () =
  { regs = Array.make Isa.Reg.count 0L;
    xmm = Array.make Isa.Reg.xmm_count 0.0;
    pc;
    flags = { zf = false; sf = false; cf = false; o_f = false; pf = false } }

let clone t =
  { regs = Array.copy t.regs;
    xmm = Array.copy t.xmm;
    pc = t.pc;
    flags = { t.flags with zf = t.flags.zf } }

let pack_flags t =
  let f = t.flags in
  (if f.zf then 1 else 0)
  lor (if f.sf then 2 else 0)
  lor (if f.cf then 4 else 0)
  lor (if f.o_f then 8 else 0)
  lor (if f.pf then 16 else 0)

let unpack_flags t v =
  let f = t.flags in
  f.zf <- v land 1 <> 0;
  f.sf <- v land 2 <> 0;
  f.cf <- v land 4 <> 0;
  f.o_f <- v land 8 <> 0;
  f.pf <- v land 16 <> 0

let reg t r = t.regs.(Isa.Reg.index r)
let set_reg t r v = t.regs.(Isa.Reg.index r) <- v
let xmm t x = t.xmm.(Isa.Reg.xmm_index x)
let set_xmm t x v = t.xmm.(Isa.Reg.xmm_index x) <- v

(* ------------------------------------------------------------------ *)
(* Width arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let mask_of_width (w : Isa.Insn.width) =
  match w with
  | W8 -> 0xffL
  | W16 -> 0xffffL
  | W32 -> 0xffffffffL
  | W64 -> -1L

let trunc w v = Int64.logand v (mask_of_width w)

(** Sign-extend the [w]-wide value [v] to 64 bits. *)
let sext w v =
  let bits = Isa.Insn.bits_of_width w in
  if bits = 64 then v
  else
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left v shift) shift

let msb w v =
  let bits = Isa.Insn.bits_of_width w in
  Int64.logand (Int64.shift_right_logical v (bits - 1)) 1L = 1L

let parity v =
  let b = Int64.to_int (Int64.logand v 0xffL) in
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc lxor (b land 1)) in
  go b 0 = 0 (* PF set when low byte has even parity *)

(* ------------------------------------------------------------------ *)
(* Operand access                                                      *)
(* ------------------------------------------------------------------ *)

(** Effective address of a memory operand. *)
let ea t ({ base; index; scale; disp } : Isa.Insn.mem) =
  let b = match base with Some r -> reg t r | None -> 0L in
  let i =
    match index with
    | Some r -> Int64.mul (reg t r) (Int64.of_int scale)
    | None -> 0L
  in
  Int64.add (Int64.add b i) disp

(** Read [w]-wide operand, zero-extended to 64 bits. *)
let read_operand t mem w (o : Isa.Insn.operand) =
  match o with
  | Reg r -> trunc w (reg t r)
  | Imm v -> trunc w v
  | Mem m -> Mem.read mem (ea t m) (Isa.Insn.bytes_of_width w)

(** Write the low [w] bits of [v] to the operand.  Register semantics
    follow x86: a 32-bit write zeroes the upper half, 8/16-bit writes
    merge into the register. *)
let write_operand t mem w (o : Isa.Insn.operand) v =
  match o with
  | Reg r ->
    let v = trunc w v in
    let merged =
      match (w : Isa.Insn.width) with
      | W64 -> v
      | W32 -> v
      | W8 | W16 ->
        Int64.logor
          (Int64.logand (reg t r) (Int64.lognot (mask_of_width w)))
          v
    in
    set_reg t r merged
  | Mem m -> Mem.write mem (ea t m) (Isa.Insn.bytes_of_width w) v
  | Imm _ -> invalid_arg "Cpu.write_operand: immediate destination"

let read_xsrc t mem (xs : Isa.Insn.xsrc) =
  match xs with
  | Xreg x -> xmm t x
  | Xmem m -> Mem.read_f64 mem (ea t m)

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

let set_logic_flags t w res =
  let f = t.flags in
  f.zf <- trunc w res = 0L;
  f.sf <- msb w res;
  f.cf <- false;
  f.o_f <- false;
  f.pf <- parity res

let set_add_flags t w a b res =
  let f = t.flags in
  let m = mask_of_width w in
  f.zf <- trunc w res = 0L;
  f.sf <- msb w res;
  f.pf <- parity res;
  (* unsigned carry: the w-wide sum wrapped *)
  let ua = Int64.logand a m and ub = Int64.logand b m in
  let sum = Int64.add ua ub in
  f.cf <-
    (match (w : Isa.Insn.width) with
     | W64 ->
       (* carry iff unsigned sum overflowed 64 bits *)
       Int64.unsigned_compare sum ua < 0
     | _ -> Int64.unsigned_compare sum m > 0);
  let sa = msb w a and sb = msb w b and sr = msb w res in
  f.o_f <- (sa = sb) && sr <> sa

let set_sub_flags t w a b res =
  let f = t.flags in
  let m = mask_of_width w in
  f.zf <- trunc w res = 0L;
  f.sf <- msb w res;
  f.pf <- parity res;
  f.cf <- Int64.unsigned_compare (Int64.logand a m) (Int64.logand b m) < 0;
  let sa = msb w a and sb = msb w b and sr = msb w res in
  f.o_f <- sa <> sb && sr <> sa

let cond_holds t (c : Isa.Insn.cond) =
  let f = t.flags in
  match c with
  | E -> f.zf
  | NE -> not f.zf
  | L -> f.sf <> f.o_f
  | LE -> f.zf || f.sf <> f.o_f
  | G -> (not f.zf) && f.sf = f.o_f
  | GE -> f.sf = f.o_f
  | B -> f.cf
  | BE -> f.cf || f.zf
  | A -> (not f.cf) && not f.zf
  | AE -> not f.cf
  | S -> f.sf
  | NS -> not f.sf
  | O -> f.o_f
  | NO -> not f.o_f
  | P -> f.pf
  | NP -> not f.pf

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Next            (** fall through to the following instruction *)
  | Jumped          (** pc already updated by a taken branch *)
  | Do_syscall      (** [Syscall] executed; kernel takes over *)
  | Halted
  | Fault_div       (** #DE: division by zero *)

exception Bad_scale of int

let stack_push t mem v =
  let sp = Int64.sub (reg t Isa.Reg.RSP) 8L in
  set_reg t Isa.Reg.RSP sp;
  Mem.write mem sp 8 v

let stack_pop t mem =
  let sp = reg t Isa.Reg.RSP in
  let v = Mem.read mem sp 8 in
  set_reg t Isa.Reg.RSP (Int64.add sp 8L);
  v

let target_addr t mem (tg : Isa.Insn.target) =
  match tg with
  | Direct a -> a
  | Indirect o -> read_operand t mem W64 o

(** Execute one already-decoded instruction whose encoded size ends at
    [next_pc].  Returns the control outcome; [t.pc] is updated for
    branches, left untouched otherwise (the machine advances it). *)
let execute t mem ~next_pc (i : Isa.Insn.t) : outcome =
  let shift_amount s = Int64.to_int (Int64.logand s 0x3fL) in
  match i with
  | Mov (w, d, s) ->
    write_operand t mem w d (read_operand t mem w s);
    Next
  | Movzx (dw, d, sw, s) ->
    let v = read_operand t mem sw s in
    write_operand t mem dw (Reg d) v;
    Next
  | Movsx (dw, d, sw, s) ->
    let v = sext sw (read_operand t mem sw s) in
    write_operand t mem dw (Reg d) v;
    Next
  | Lea (d, m) -> set_reg t d (ea t m); Next
  | Alu (op, w, d, s) ->
    let a = read_operand t mem w d and b = read_operand t mem w s in
    let res =
      match op with
      | Add -> let r = Int64.add a b in set_add_flags t w a b r; r
      | Sub -> let r = Int64.sub a b in set_sub_flags t w a b r; r
      | And -> let r = Int64.logand a b in set_logic_flags t w r; r
      | Or -> let r = Int64.logor a b in set_logic_flags t w r; r
      | Xor -> let r = Int64.logxor a b in set_logic_flags t w r; r
      | Shl ->
        let r = Int64.shift_left a (shift_amount b) in
        set_logic_flags t w r; r
      | Shr ->
        let r = Int64.shift_right_logical (trunc w a) (shift_amount b) in
        set_logic_flags t w r; r
      | Sar ->
        let r = Int64.shift_right (sext w a) (shift_amount b) in
        set_logic_flags t w r; r
      | Imul ->
        let r = Int64.mul (sext w a) (sext w b) in
        set_logic_flags t w r;
        (* CF/OF set when the full product does not fit in w bits *)
        let fits = sext w r = r in
        t.flags.cf <- not fits;
        t.flags.o_f <- not fits;
        r
    in
    write_operand t mem w d res;
    Next
  | Not (w, o) ->
    write_operand t mem w o (Int64.lognot (read_operand t mem w o));
    Next
  | Neg (w, o) ->
    let v = read_operand t mem w o in
    let r = Int64.neg v in
    set_sub_flags t w 0L v r;
    write_operand t mem w o r;
    Next
  | Mul (w, o) ->
    (* unsigned RDX:RAX := RAX * src; we keep the low half in RAX and
       the high half in RDX (computed via unsigned widening) *)
    let a = trunc w (reg t Isa.Reg.RAX) and b = read_operand t mem w o in
    let lo = Int64.mul a b in
    let hi =
      (* high 64 bits of unsigned 64x64 product, schoolbook on 32-bit
         halves *)
      let alo = Int64.logand a 0xffffffffL
      and ahi = Int64.shift_right_logical a 32
      and blo = Int64.logand b 0xffffffffL
      and bhi = Int64.shift_right_logical b 32 in
      let ll = Int64.mul alo blo in
      let lh = Int64.mul alo bhi in
      let hl = Int64.mul ahi blo in
      let hh = Int64.mul ahi bhi in
      let carry =
        Int64.shift_right_logical
          (Int64.add
             (Int64.add (Int64.logand lh 0xffffffffL) (Int64.logand hl 0xffffffffL))
             (Int64.shift_right_logical ll 32))
          32
      in
      Int64.add
        (Int64.add hh carry)
        (Int64.add (Int64.shift_right_logical lh 32)
           (Int64.shift_right_logical hl 32))
    in
    set_reg t Isa.Reg.RAX (trunc w lo);
    set_reg t Isa.Reg.RDX (if w = W64 then hi else 0L);
    t.flags.cf <- hi <> 0L;
    t.flags.o_f <- hi <> 0L;
    Next
  | Idiv (w, o) ->
    let d = read_operand t mem w o in
    if trunc w d = 0L then Fault_div
    else begin
      (* simplified vs x86: 64-bit dividend in RAX only *)
      let a = sext w (trunc w (reg t Isa.Reg.RAX)) and dv = sext w d in
      set_reg t Isa.Reg.RAX (trunc w (Int64.div a dv));
      set_reg t Isa.Reg.RDX (trunc w (Int64.rem a dv));
      Next
    end
  | Cmp (w, a, b) ->
    let va = read_operand t mem w a and vb = read_operand t mem w b in
    set_sub_flags t w va vb (Int64.sub va vb);
    Next
  | Test (w, a, b) ->
    let va = read_operand t mem w a and vb = read_operand t mem w b in
    set_logic_flags t w (Int64.logand va vb);
    Next
  | Jmp tg -> t.pc <- target_addr t mem tg; Jumped
  | Jcc (c, a) ->
    if cond_holds t c then (t.pc <- a; Jumped) else Next
  | Call tg ->
    let dest = target_addr t mem tg in
    stack_push t mem next_pc;
    t.pc <- dest;
    Jumped
  | Ret -> t.pc <- stack_pop t mem; Jumped
  | Push o -> stack_push t mem (read_operand t mem W64 o); Next
  | Pop o ->
    let v = stack_pop t mem in
    write_operand t mem W64 o v;
    Next
  | Setcc (c, o) ->
    write_operand t mem W8 o (if cond_holds t c then 1L else 0L);
    Next
  | Cmovcc (c, d, s) ->
    if cond_holds t c then set_reg t d (read_operand t mem W64 s);
    Next
  | Syscall -> Do_syscall
  | Cvtsi2sd (x, o) ->
    set_xmm t x (Int64.to_float (read_operand t mem W64 o));
    Next
  | Cvttsd2si (r, xs) ->
    let f = read_xsrc t mem xs in
    set_reg t r (Int64.of_float (Float.trunc f));
    Next
  | Movq_xr (x, o) ->
    set_xmm t x (Int64.float_of_bits (read_operand t mem W64 o));
    Next
  | Movq_rx (o, x) ->
    write_operand t mem W64 o (Int64.bits_of_float (xmm t x));
    Next
  | Movsd (x, xs) -> set_xmm t x (read_xsrc t mem xs); Next
  | Movsd_store (m, x) -> Mem.write_f64 mem (ea t m) (xmm t x); Next
  | Farith (op, x, xs) ->
    let a = xmm t x and b = read_xsrc t mem xs in
    let r =
      match op with
      | Addsd -> a +. b
      | Subsd -> a -. b
      | Mulsd -> a *. b
      | Divsd -> a /. b
      | Sqrtsd -> Float.sqrt b
    in
    set_xmm t x r;
    Next
  | Ucomisd (x, xs) ->
    let a = xmm t x and b = read_xsrc t mem xs in
    let f = t.flags in
    f.o_f <- false; f.sf <- false;
    if Float.is_nan a || Float.is_nan b then begin
      f.zf <- true; f.pf <- true; f.cf <- true
    end else begin
      f.pf <- false;
      f.zf <- a = b;
      f.cf <- a < b
    end;
    Next
  | Nop -> Next
  | Hlt -> Halted

(** Effective addresses an instruction will touch, for tracing. *)
let effective_addrs t (i : Isa.Insn.t) =
  let of_op : Isa.Insn.operand -> int64 list = function
    | Mem m -> [ ea t m ]
    | Reg _ | Imm _ -> []
  in
  let of_xsrc : Isa.Insn.xsrc -> int64 list = function
    | Xmem m -> [ ea t m ]
    | Xreg _ -> []
  in
  let sp = reg t Isa.Reg.RSP in
  match i with
  | Mov (_, d, s) | Alu (_, _, d, s) | Cmp (_, d, s) | Test (_, d, s) ->
    of_op d @ of_op s
  | Movzx (_, _, _, s) | Movsx (_, _, _, s) -> of_op s
  | Lea (_, m) -> [ ea t m ]
  | Not (_, o) | Neg (_, o) | Mul (_, o) | Idiv (_, o)
  | Setcc (_, o) -> of_op o
  | Push o -> of_op o @ [ Int64.sub sp 8L ]
  | Pop o -> sp :: of_op o
  | Cmovcc (_, _, s) -> of_op s
  | Jmp (Indirect o) -> of_op o
  | Call (Indirect o) -> of_op o @ [ Int64.sub sp 8L ]
  | Call (Direct _) -> [ Int64.sub sp 8L ]
  | Ret -> [ sp ]
  | Jmp (Direct _) | Jcc _ | Syscall | Nop | Hlt -> []
  | Cvtsi2sd (_, o) | Movq_xr (_, o) -> of_op o
  | Movq_rx (o, _) -> of_op o
  | Cvttsd2si (_, xs) | Movsd (_, xs) | Farith (_, _, xs) | Ucomisd (_, xs) ->
    of_xsrc xs
  | Movsd_store (m, _) -> [ ea t m ]
