(** Paged byte-addressable guest memory.

    4-KiB pages allocated on first touch.  [clone] performs the deep
    copy needed by [fork]; thread tasks share a single [t]. *)

type t = { pages : (int, Bytes.t) Hashtbl.t }

let page_bits = 12
let page_size = 1 lsl page_bits

let create () = { pages = Hashtbl.create 64 }

let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) t.pages;
  { pages }

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.replace t.pages idx p;
    p

let read_u8 t addr =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Char.code (Bytes.get p (addr land (page_size - 1)))

let write_u8 t addr v =
  let addr = Int64.to_int addr in
  let p = page t (addr lsr page_bits) in
  Bytes.set p (addr land (page_size - 1)) (Char.chr (v land 0xff))

(** Little-endian read of [n] bytes (1..8), zero-extended. *)
let read t addr n =
  let v = ref 0L in
  for i = n - 1 downto 0 do
    let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  !v

(** Little-endian write of the low [n] bytes of [v]. *)
let write t addr n v =
  for i = 0 to n - 1 do
    let b = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    write_u8 t (Int64.add addr (Int64.of_int i)) b
  done

let read_bytes t addr n =
  String.init n (fun i -> Char.chr (read_u8 t (Int64.add addr (Int64.of_int i))))

let write_bytes t addr s =
  String.iteri
    (fun i c -> write_u8 t (Int64.add addr (Int64.of_int i)) (Char.code c))
    s

(** Read the NUL-terminated string at [addr] (bounded at [max]). *)
let read_cstring ?(max = 4096) t addr =
  let b = Buffer.create 16 in
  let rec go i =
    if i >= max then Buffer.contents b
    else
      let c = read_u8 t (Int64.add addr (Int64.of_int i)) in
      if c = 0 then Buffer.contents b
      else (Buffer.add_char b (Char.chr c); go (i + 1))
  in
  go 0

let read_f64 t addr = Int64.float_of_bits (read t addr 8)
let write_f64 t addr f = write t addr 8 (Int64.bits_of_float f)
