(** Read/write classification of an instruction against a recorded
    register pre-state: which registers, memory bytes, and flags it
    reads and writes.  Shared by the taint engine, the tracer (to
    record concrete bytes read), and the symbolic executors. *)

type access = {
  r_regs : Isa.Reg.t list;
  w_regs : Isa.Reg.t list;
  r_xmm : Isa.Reg.xmm list;
  w_xmm : Isa.Reg.xmm list;
  r_mem : (int64 * int) list;   (** (addr, bytes) *)
  w_mem : (int64 * int) list;
  r_flags : bool;
  w_flags : bool;
}

let no_access =
  { r_regs = []; w_regs = []; r_xmm = []; w_xmm = []; r_mem = []; w_mem = [];
    r_flags = false; w_flags = false }

(* effective address from the recorded pre-state *)
let ea_of regs ({ base; index; scale; disp } : Isa.Insn.mem) =
  let rv r = regs.(Isa.Reg.index r) in
  let b = match base with Some r -> rv r | None -> 0L in
  let i =
    match index with
    | Some r -> Int64.mul (rv r) (Int64.of_int scale)
    | None -> 0L
  in
  Int64.add (Int64.add b i) disp

let operand_access regs w (o : Isa.Insn.operand) ~is_read ~is_write =
  let bytes = Isa.Insn.bytes_of_width w in
  match o with
  | Reg r ->
    { no_access with
      r_regs = (if is_read then [ r ] else []);
      w_regs = (if is_write then [ r ] else []) }
  | Imm _ -> no_access
  | Mem m ->
    let a = ea_of regs m in
    { no_access with
      r_regs = Isa.Insn.mem_regs m;
      r_mem = (if is_read then [ (a, bytes) ] else []);
      w_mem = (if is_write then [ (a, bytes) ] else []) }

let merge a b =
  { r_regs = a.r_regs @ b.r_regs;
    w_regs = a.w_regs @ b.w_regs;
    r_xmm = a.r_xmm @ b.r_xmm;
    w_xmm = a.w_xmm @ b.w_xmm;
    r_mem = a.r_mem @ b.r_mem;
    w_mem = a.w_mem @ b.w_mem;
    r_flags = a.r_flags || b.r_flags;
    w_flags = a.w_flags || b.w_flags }

let xsrc_access regs (xs : Isa.Insn.xsrc) =
  match xs with
  | Xreg x -> { no_access with r_xmm = [ x ] }
  | Xmem m ->
    { no_access with
      r_regs = Isa.Insn.mem_regs m;
      r_mem = [ (ea_of regs m, 8) ] }

(** What one executed instruction reads and writes. *)
let of_insn regs (insn : Isa.Insn.t) : access =
  let rsp = regs.(Isa.Reg.index Isa.Reg.RSP) in
  let op = operand_access regs in
  match insn with
  | Mov (w, d, s) -> merge (op w d ~is_read:false ~is_write:true)
                       (op w s ~is_read:true ~is_write:false)
  | Movzx (dw, d, sw, s) | Movsx (dw, d, sw, s) ->
    merge (op dw (Reg d) ~is_read:false ~is_write:true)
      (op sw s ~is_read:true ~is_write:false)
  | Lea (d, m) ->
    { no_access with r_regs = Isa.Insn.mem_regs m; w_regs = [ d ] }
  | Alu (_, w, d, s) ->
    merge
      (merge (op w d ~is_read:true ~is_write:true)
         (op w s ~is_read:true ~is_write:false))
      { no_access with w_flags = true }
  | Not (w, o) | Neg (w, o) ->
    merge (op w o ~is_read:true ~is_write:true)
      { no_access with w_flags = true }
  | Mul (w, o) | Idiv (w, o) ->
    merge
      (op w o ~is_read:true ~is_write:false)
      { no_access with
        r_regs = [ Isa.Reg.RAX ];
        w_regs = [ Isa.Reg.RAX; Isa.Reg.RDX ];
        w_flags = true }
  | Cmp (w, a, b) | Test (w, a, b) ->
    merge
      (merge (op w a ~is_read:true ~is_write:false)
         (op w b ~is_read:true ~is_write:false))
      { no_access with w_flags = true }
  | Jmp (Direct _) -> no_access
  | Jmp (Indirect o) -> op W64 o ~is_read:true ~is_write:false
  | Jcc _ -> { no_access with r_flags = true }
  | Call (Direct _) ->
    { no_access with
      r_regs = [ Isa.Reg.RSP ];
      w_regs = [ Isa.Reg.RSP ];
      w_mem = [ (Int64.sub rsp 8L, 8) ] }
  | Call (Indirect o) ->
    merge
      (op W64 o ~is_read:true ~is_write:false)
      { no_access with
        r_regs = [ Isa.Reg.RSP ];
        w_regs = [ Isa.Reg.RSP ];
        w_mem = [ (Int64.sub rsp 8L, 8) ] }
  | Ret ->
    { no_access with
      r_regs = [ Isa.Reg.RSP ];
      w_regs = [ Isa.Reg.RSP ];
      r_mem = [ (rsp, 8) ] }
  | Push o ->
    merge
      (op W64 o ~is_read:true ~is_write:false)
      { no_access with
        r_regs = [ Isa.Reg.RSP ];
        w_regs = [ Isa.Reg.RSP ];
        w_mem = [ (Int64.sub rsp 8L, 8) ] }
  | Pop o ->
    merge
      (op W64 o ~is_read:false ~is_write:true)
      { no_access with
        r_regs = [ Isa.Reg.RSP ];
        w_regs = [ Isa.Reg.RSP ];
        r_mem = [ (rsp, 8) ] }
  | Setcc (_, o) ->
    merge (op W8 o ~is_read:false ~is_write:true)
      { no_access with r_flags = true }
  | Cmovcc (_, d, s) ->
    merge
      (merge
         (op W64 (Reg d) ~is_read:true ~is_write:true)
         (op W64 s ~is_read:true ~is_write:false))
      { no_access with r_flags = true }
  | Syscall -> no_access (* handled via Sys events *)
  | Cvtsi2sd (x, o) ->
    merge (op W64 o ~is_read:true ~is_write:false)
      { no_access with w_xmm = [ x ] }
  | Cvttsd2si (r, xs) ->
    merge (xsrc_access regs xs) { no_access with w_regs = [ r ] }
  | Movq_xr (x, o) ->
    merge (op W64 o ~is_read:true ~is_write:false)
      { no_access with w_xmm = [ x ] }
  | Movq_rx (o, x) ->
    merge (op W64 o ~is_read:false ~is_write:true)
      { no_access with r_xmm = [ x ] }
  | Movsd (x, xs) ->
    merge (xsrc_access regs xs) { no_access with w_xmm = [ x ] }
  | Movsd_store (m, x) ->
    { no_access with
      r_regs = Isa.Insn.mem_regs m;
      r_xmm = [ x ];
      w_mem = [ (ea_of regs m, 8) ] }
  | Farith (_, x, xs) ->
    merge (xsrc_access regs xs) { no_access with r_xmm = [ x ]; w_xmm = [ x ] }
  | Ucomisd (x, xs) ->
    merge (xsrc_access regs xs)
      { no_access with r_xmm = [ x ]; w_flags = true }
  | Nop | Hlt -> no_access

