(** Two-pass layout and link of assembly objects into a BELF image.

    Pass 1 lays out every item and records label addresses; pass 2
    resolves references and emits bytes.  Instruction encodings have a
    size independent of immediate *values* (see {!Isa.Codec}), so the
    two passes agree by construction. *)

exception Link_error of string

let link_error fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let text_base = 0x1000L
let page = 0x1000

let align_up v a = (v + a - 1) / a * a

(* Size of an item in bytes (pass 1). References are encoded with a
   placeholder value; encoded size does not depend on the value. *)
let item_size : Ast.item -> int = function
  | Ast.Insn i -> Isa.Codec.encoded_size i
  | Jmp_l _ -> Isa.Codec.encoded_size (Isa.Insn.Jmp (Direct 0L))
  | Jcc_l (c, _) -> Isa.Codec.encoded_size (Isa.Insn.Jcc (c, 0L))
  | Call_l _ -> Isa.Codec.encoded_size (Isa.Insn.Call (Direct 0L))
  | Lea_l (r, _) ->
    Isa.Codec.encoded_size (Isa.Insn.Lea (r, Isa.Insn.mem ~disp:0L ()))
  | Mov_l (r, _) ->
    Isa.Codec.encoded_size (Isa.Insn.Mov (W64, Reg r, Imm 0L))
  | Push_l _ -> Isa.Codec.encoded_size (Isa.Insn.Push (Imm 0L))
  | Label _ -> 0
  | Bytes s -> String.length s
  | Asciz s -> String.length s + 1
  | Quad vs -> 8 * List.length vs
  | Space n -> n
  | Align _ -> 0 (* handled specially: depends on position *)

let layout_items items base =
  let tbl = Hashtbl.create 64 in
  let pos = ref base in
  let positions =
    List.map
      (fun item ->
         (match item with
          | Ast.Align a -> pos := align_up !pos a
          | _ -> ());
         let at = !pos in
         (match item with
          | Ast.Label l ->
            if Hashtbl.mem tbl l then link_error "duplicate label %s" l;
            Hashtbl.replace tbl l (Int64.of_int at)
          | _ -> ());
         pos := !pos + item_size item;
         (item, at))
      items
  in
  (positions, !pos, tbl)

let resolve labels = function
  | Ast.Abs v -> v
  | Ast.Lbl l -> (
      match Hashtbl.find_opt labels l with
      | Some a -> a
      | None -> link_error "undefined label %s" l)

let emit_items buf positions labels =
  List.iter
    (fun ((item : Ast.item), at) ->
       (* zero-pad up to the item's position (alignment gaps) *)
       while Buffer.length buf < at do Buffer.add_char buf '\000' done;
       let res = resolve labels in
       match item with
       | Insn i -> Isa.Codec.encode_into buf i
       | Jmp_l r -> Isa.Codec.encode_into buf (Isa.Insn.Jmp (Direct (res r)))
       | Jcc_l (c, r) -> Isa.Codec.encode_into buf (Isa.Insn.Jcc (c, res r))
       | Call_l r -> Isa.Codec.encode_into buf (Isa.Insn.Call (Direct (res r)))
       | Lea_l (reg, r) ->
         Isa.Codec.encode_into buf
           (Isa.Insn.Lea (reg, Isa.Insn.mem ~disp:(res r) ()))
       | Mov_l (reg, r) ->
         Isa.Codec.encode_into buf (Isa.Insn.Mov (W64, Reg reg, Imm (res r)))
       | Push_l r -> Isa.Codec.encode_into buf (Isa.Insn.Push (Imm (res r)))
       | Label _ -> ()
       | Bytes s -> Buffer.add_string buf s
       | Asciz s -> Buffer.add_string buf s; Buffer.add_char buf '\000'
       | Quad vs ->
         List.iter
           (fun v ->
              let v = res v in
              for i = 0 to 7 do
                Buffer.add_char buf
                  (Char.chr
                     (Int64.to_int (Int64.shift_right_logical v (8 * i))
                      land 0xff))
              done)
           vs
       | Space n -> Buffer.add_string buf (String.make n '\000')
       | Align _ -> ())
    positions

let labels_of_items items =
  List.filter_map (function Ast.Label l -> Some l | _ -> None) items

(** [link ?libs ~entry prog] lays out [prog] followed by every object
    in [libs], resolves references, and builds the image.  Labels from
    [libs] become [from_lib] symbols.  Text starts at 0x1000; data is
    page-aligned after text; a [bss] region of [bss_size] bytes follows
    data. *)
let link ?(libs = []) ?(heap_size = 0x2000) ~entry (prog : Ast.obj) =
  let lib = Ast.concat libs in
  let lib_labels = labels_of_items (lib.text @ lib.data @ lib.bss) in
  let all : Ast.obj = Ast.append prog lib in
  let text_items = all.text and data_items = all.data in
  let tbase = Int64.to_int text_base in
  let text_pos, text_end, ltbl = layout_items text_items tbase in
  let dbase = align_up text_end page in
  let data_pos, data_end, dtbl = layout_items data_items dbase in
  let labels = Hashtbl.create 64 in
  Hashtbl.iter (Hashtbl.replace labels) ltbl;
  Hashtbl.iter
    (fun k v ->
       if Hashtbl.mem labels k then link_error "duplicate label %s" k;
       Hashtbl.replace labels k v)
    dtbl;
  let bss_addr = align_up data_end page in
  let bss_pos, bss_end, btbl = layout_items all.bss bss_addr in
  List.iter
    (fun ((item : Ast.item), _) ->
       match item with
       | Label _ | Space _ | Align _ -> ()
       | _ -> link_error "bss section may only contain labels and space")
    bss_pos;
  Hashtbl.iter
    (fun k v ->
       if Hashtbl.mem labels k then link_error "duplicate label %s" k;
       Hashtbl.replace labels k v)
    btbl;
  let bss_size = bss_end - bss_addr + heap_size in
  Hashtbl.replace labels "__heap" (Int64.of_int bss_end);
  Hashtbl.replace labels "__heap_end" (Int64.of_int (bss_addr + bss_size));
  let tbuf = Buffer.create 4096 and dbuf = Buffer.create 4096 in
  (* emit positions are relative to segment start for padding logic *)
  let rel base = List.map (fun (i, at) -> (i, at - base)) in
  emit_items tbuf (rel tbase text_pos) labels;
  emit_items dbuf (rel dbase data_pos) labels;
  let lib_set = List.fold_left (fun s l -> l :: s) [] lib_labels in
  let sym_of_label in_text name addr : Image.symbol =
    { name; addr;
      kind = (if in_text then Image.Func else Image.Obj);
      from_lib = List.mem name lib_set }
  in
  let data_syms positions =
    List.filter_map
      (function Ast.Label l, at -> Some (sym_of_label false l (Int64.of_int at))
              | _ -> None)
      positions
  in
  let symbols =
    List.filter_map
      (function Ast.Label l, at -> Some (sym_of_label true l (Int64.of_int at))
              | _ -> None)
      text_pos
    @ data_syms data_pos
    @ data_syms bss_pos
  in
  let entry_addr =
    match Hashtbl.find_opt labels entry with
    | Some a -> a
    | None -> link_error "entry label %s undefined" entry
  in
  { Image.entry = entry_addr;
    text_addr = text_base;
    text = Buffer.contents tbuf;
    data_addr = Int64.of_int dbase;
    data = Buffer.contents dbuf;
    bss_addr = Int64.of_int bss_addr;
    bss_size;
    symbols }
