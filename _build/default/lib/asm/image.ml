(** BELF — the loadable binary image produced by the linker.

    A BELF image carries a text segment, a data segment, an entry
    point, and a symbol table.  Symbols originating from linked-in
    library objects are flagged, which is how an Angr-style engine
    decides what "loading dynamic libraries" means.  [to_bytes] gives
    the on-disk representation whose length is the "binary size"
    reported in the paper's dataset statistics (§V-A). *)

type sym_kind = Func | Obj [@@deriving show { with_path = false }, eq]

type symbol = {
  name : string;
  addr : int64;
  kind : sym_kind;
  from_lib : bool;  (** defined by a library object, not the program *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  entry : int64;
  text_addr : int64;
  text : string;
  data_addr : int64;
  data : string;
  bss_addr : int64;
  bss_size : int;
  symbols : symbol list;
}

let magic = "BELF"

let find_symbol t name = List.find_opt (fun s -> s.name = name) t.symbols

let symbol_addr t name =
  match find_symbol t name with
  | Some s -> s.addr
  | None -> invalid_arg (Printf.sprintf "Image.symbol_addr: %s" name)

let symbol_at t addr =
  List.find_opt (fun s -> Int64.equal s.addr addr) t.symbols

(** Address ranges covered by library code, inferred from library
    function symbols sorted by address: each lib function owns
    [addr, next-symbol-addr). *)
let lib_ranges t =
  let funcs =
    List.filter (fun s -> s.kind = Func) t.symbols
    |> List.sort (fun a b -> Int64.compare a.addr b.addr)
  in
  let text_end = Int64.add t.text_addr (Int64.of_int (String.length t.text)) in
  let rec ranges = function
    | [] -> []
    | [ s ] -> if s.from_lib then [ (s.addr, text_end) ] else []
    | s :: (next :: _ as rest) ->
      if s.from_lib then (s.addr, next.addr) :: ranges rest else ranges rest
  in
  ranges funcs

let in_lib t addr =
  List.exists (fun (lo, hi) -> addr >= lo && addr < hi) (lib_ranges t)

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let put_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let put_str b s =
  put_i64 b (Int64.of_int (String.length s));
  Buffer.add_string b s

let to_bytes t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_i64 b t.entry;
  put_i64 b t.text_addr;
  put_str b t.text;
  put_i64 b t.data_addr;
  put_str b t.data;
  put_i64 b t.bss_addr;
  put_i64 b (Int64.of_int t.bss_size);
  put_i64 b (Int64.of_int (List.length t.symbols));
  List.iter
    (fun s ->
       put_str b s.name;
       put_i64 b s.addr;
       Buffer.add_char b (if s.kind = Func then 'F' else 'O');
       Buffer.add_char b (if s.from_lib then 'L' else 'P'))
    t.symbols;
  Buffer.contents b

(** Size in bytes of the serialised image — the dataset's notion of
    binary size. *)
let size t = String.length (to_bytes t)

exception Parse_error of string

let of_bytes data =
  let pos = ref 0 in
  let fail msg = raise (Parse_error msg) in
  let take n =
    if !pos + n > String.length data then fail "truncated image";
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let take_i64 () =
    let s = take 8 in
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code s.[i])) (8 * i))
    done;
    !v
  in
  let take_str () = take (Int64.to_int (take_i64 ())) in
  if take 4 <> magic then fail "bad magic";
  let entry = take_i64 () in
  let text_addr = take_i64 () in
  let text = take_str () in
  let data_addr = take_i64 () in
  let data_seg = take_str () in
  let bss_addr = take_i64 () in
  let bss_size = Int64.to_int (take_i64 ()) in
  let nsyms = Int64.to_int (take_i64 ()) in
  let symbols =
    List.init nsyms (fun _ ->
        let name = take_str () in
        let addr = take_i64 () in
        let kind = match (take 1).[0] with 'F' -> Func | _ -> Obj in
        let from_lib = (take 1).[0] = 'L' in
        { name; addr; kind; from_lib })
  in
  { entry; text_addr; text; data_addr; data = data_seg; bss_addr; bss_size;
    symbols }

(** Decode the instruction stored at virtual address [addr]. *)
let decode_at t addr =
  let off = Int64.to_int (Int64.sub addr t.text_addr) in
  if off < 0 || off >= String.length t.text then
    raise (Isa.Codec.Decode_error (Printf.sprintf "pc 0x%Lx outside text" addr));
  let insn, next = Isa.Codec.decode t.text off in
  (insn, Int64.add t.text_addr (Int64.of_int next))

(** All decoded instructions with their addresses (linear sweep — valid
    for BELF because the linker never interleaves code and data in
    text). *)
let disassemble t =
  let rec go off acc =
    if off >= String.length t.text then List.rev acc
    else
      let insn, next = Isa.Codec.decode t.text off in
      let addr = Int64.add t.text_addr (Int64.of_int off) in
      go next ((addr, insn) :: acc)
  in
  go 0 []
