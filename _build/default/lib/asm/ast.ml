(** Assembly-program representation: instructions with symbolic label
    references, data directives, and sectioned objects.

    Labels are program-global (the linker rejects duplicates), so a
    guest "libc" object and a bomb object can be linked by simple
    concatenation. *)

(** A reference that is resolved to an absolute address at link time. *)
type ref_ = Lbl of string | Abs of int64

type item =
  | Insn of Isa.Insn.t
      (** an instruction with no unresolved references *)
  | Jmp_l of ref_                     (** direct jump *)
  | Jcc_l of Isa.Insn.cond * ref_     (** conditional jump *)
  | Call_l of ref_                    (** direct call *)
  | Lea_l of Isa.Reg.t * ref_         (** load a symbol's address *)
  | Mov_l of Isa.Reg.t * ref_         (** move a symbol's address (imm) *)
  | Push_l of ref_                    (** push a symbol's address *)
  | Label of string
  | Bytes of string                   (** raw bytes *)
  | Asciz of string                   (** NUL-terminated string *)
  | Quad of ref_ list                 (** 8-byte little-endian words;
                                          label entries build jump tables *)
  | Space of int                      (** zero fill *)
  | Align of int

(** A relocatable object: text, initialised data, and zero-initialised
    bss (only [Label]/[Space]/[Align] make sense there). *)
type obj = { text : item list; data : item list; bss : item list }

let obj ?(data = []) ?(bss = []) text = { text; data; bss }

let empty = { text = []; data = []; bss = [] }

let append a b =
  { text = a.text @ b.text; data = a.data @ b.data; bss = a.bss @ b.bss }

let concat objs = List.fold_left append empty objs

(* ------------------------------------------------------------------ *)
(* A tiny builder DSL so bombs and libc read like assembly listings.   *)
(* ------------------------------------------------------------------ *)

module Dsl = struct
  open Isa

  let rax = Insn.Reg Reg.RAX and rbx = Insn.Reg Reg.RBX
  and rcx = Insn.Reg Reg.RCX and rdx = Insn.Reg Reg.RDX
  and rsi = Insn.Reg Reg.RSI and rdi = Insn.Reg Reg.RDI
  and rbp = Insn.Reg Reg.RBP and rsp = Insn.Reg Reg.RSP
  and r8 = Insn.Reg Reg.R8 and r9 = Insn.Reg Reg.R9
  and r10 = Insn.Reg Reg.R10 and r11 = Insn.Reg Reg.R11
  and r12 = Insn.Reg Reg.R12 and r13 = Insn.Reg Reg.R13
  and r14 = Insn.Reg Reg.R14 and r15 = Insn.Reg Reg.R15

  let imm v = Insn.Imm (Int64.of_int v)
  let imm64 v = Insn.Imm v

  (** [mem ~base ~index ~scale ~disp ()] operand. *)
  let mem ?base ?index ?scale ?disp () =
    Insn.Mem (Insn.mem ?base ?index ?scale
                ?disp:(Option.map Int64.of_int disp) ())

  let mreg ?(disp = 0) r =
    Insn.Mem (Insn.mem ~base:r ~disp:(Int64.of_int disp) ())

  let reg_of = function
    | Insn.Reg r -> r
    | o -> invalid_arg ("Dsl.reg_of: " ^ Isa.Insn.show_operand o)

  (* instruction shorthands; [w] defaults to 64-bit *)
  let mov ?(w = Insn.W64) d s = Insn (Isa.Insn.Mov (w, d, s))
  let movzx ?(dw = Insn.W64) d ~sw s = Insn (Isa.Insn.Movzx (dw, reg_of d, sw, s))
  let movsx ?(dw = Insn.W64) d ~sw s = Insn (Isa.Insn.Movsx (dw, reg_of d, sw, s))
  let lea d l = Lea_l (reg_of d, Lbl l)
  let mov_lbl d l = Mov_l (reg_of d, Lbl l)
  let push_lbl l = Push_l (Lbl l)
  let lea_m d m =
    match m with
    | Insn.Mem mm -> Insn (Isa.Insn.Lea (reg_of d, mm))
    | _ -> invalid_arg "Dsl.lea_m"
  let add ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Add, w, d, s))
  let sub ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Sub, w, d, s))
  let and_ ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (And, w, d, s))
  let or_ ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Or, w, d, s))
  let xor ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Xor, w, d, s))
  let shl ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Shl, w, d, s))
  let shr ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Shr, w, d, s))
  let sar ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Sar, w, d, s))
  let imul ?(w = Insn.W64) d s = Insn (Isa.Insn.Alu (Imul, w, d, s))
  let not_ ?(w = Insn.W64) o = Insn (Isa.Insn.Not (w, o))
  let neg ?(w = Insn.W64) o = Insn (Isa.Insn.Neg (w, o))
  let mul ?(w = Insn.W64) o = Insn (Isa.Insn.Mul (w, o))
  let idiv ?(w = Insn.W64) o = Insn (Isa.Insn.Idiv (w, o))
  let cmp ?(w = Insn.W64) a b = Insn (Isa.Insn.Cmp (w, a, b))
  let test ?(w = Insn.W64) a b = Insn (Isa.Insn.Test (w, a, b))
  let jmp l = Jmp_l (Lbl l)
  let jmp_ind o = Insn (Isa.Insn.Jmp (Indirect o))
  let je l = Jcc_l (E, Lbl l)
  let jne l = Jcc_l (NE, Lbl l)
  let jl l = Jcc_l (L, Lbl l)
  let jle l = Jcc_l (LE, Lbl l)
  let jg l = Jcc_l (G, Lbl l)
  let jge l = Jcc_l (GE, Lbl l)
  let jb l = Jcc_l (B, Lbl l)
  let jbe l = Jcc_l (BE, Lbl l)
  let ja l = Jcc_l (A, Lbl l)
  let jae l = Jcc_l (AE, Lbl l)
  let js l = Jcc_l (S, Lbl l)
  let jns l = Jcc_l (NS, Lbl l)
  let jp l = Jcc_l (P, Lbl l)
  let jnp l = Jcc_l (NP, Lbl l)
  let call l = Call_l (Lbl l)
  let call_ind o = Insn (Isa.Insn.Call (Indirect o))
  let ret = Insn Isa.Insn.Ret
  let push o = Insn (Isa.Insn.Push o)
  let pop o = Insn (Isa.Insn.Pop o)
  let sete o = Insn (Isa.Insn.Setcc (E, o))
  let setne o = Insn (Isa.Insn.Setcc (NE, o))
  let cmove d s = Insn (Isa.Insn.Cmovcc (E, reg_of d, s))
  let cmovne d s = Insn (Isa.Insn.Cmovcc (NE, reg_of d, s))
  let syscall = Insn Isa.Insn.Syscall
  let nop = Insn Isa.Insn.Nop
  let hlt = Insn Isa.Insn.Hlt
  let cvtsi2sd x o = Insn (Isa.Insn.Cvtsi2sd (x, o))
  let cvttsd2si d xs = Insn (Isa.Insn.Cvttsd2si (reg_of d, xs))
  let movq_xr x o = Insn (Isa.Insn.Movq_xr (x, o))
  let movq_rx o x = Insn (Isa.Insn.Movq_rx (o, x))
  let movsd x xs = Insn (Isa.Insn.Movsd (x, xs))
  let movsd_store m x =
    match m with
    | Insn.Mem mm -> Insn (Isa.Insn.Movsd_store (mm, x))
    | _ -> invalid_arg "Dsl.movsd_store"
  let addsd x xs = Insn (Isa.Insn.Farith (Addsd, x, xs))
  let subsd x xs = Insn (Isa.Insn.Farith (Subsd, x, xs))
  let mulsd x xs = Insn (Isa.Insn.Farith (Mulsd, x, xs))
  let divsd x xs = Insn (Isa.Insn.Farith (Divsd, x, xs))
  let sqrtsd x xs = Insn (Isa.Insn.Farith (Sqrtsd, x, xs))
  let ucomisd x xs = Insn (Isa.Insn.Ucomisd (x, xs))
  let label s = Label s
  let asciz s = Asciz s
  let quad vs = Quad (List.map (fun v -> Abs (Int64.of_int v)) vs)
  let quad_lbls ls = Quad (List.map (fun l -> Lbl l) ls)
  let space n = Space n
end
