lib/asm/ast.pp.ml: Insn Int64 Isa List Option Reg
