lib/asm/image.pp.ml: Buffer Char Int64 Isa List Ppx_deriving_runtime Printf String
