lib/asm/link.pp.ml: Ast Buffer Char Hashtbl Image Int64 Isa List Printf String
