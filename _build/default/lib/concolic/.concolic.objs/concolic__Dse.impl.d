lib/concolic/dse.pp.ml: Asm Buffer Bytes Char Error Hashtbl Int64 Ir Isa Libc List Printf Queue Smt State String Sym_exec Sys Vm
