lib/concolic/state.pp.ml: Error Hashtbl Int64 List Obj Printf Simplify_env Smt
