lib/concolic/trace_exec.pp.ml: Array Char Error Hashtbl Int64 Ir Isa List Printf Smt State String Sym_exec Taint Trace Vm
