lib/concolic/sym_exec.pp.ml: Error Hashtbl Int64 Ir List Obj Smt State
