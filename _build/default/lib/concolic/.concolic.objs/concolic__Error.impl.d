lib/concolic/error.pp.ml: List Ppx_deriving_runtime
