lib/concolic/driver.pp.ml: Array Asm Bytes Char Error Hashtbl Int64 List Option Printf Queue Smt String Trace Trace_exec Vm
