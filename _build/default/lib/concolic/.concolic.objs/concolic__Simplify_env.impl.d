lib/concolic/simplify_env.pp.ml: Hashtbl Smt
