(** A shared empty environment for constant folding. *)

let empty : Smt.Eval.env = Hashtbl.create 1
