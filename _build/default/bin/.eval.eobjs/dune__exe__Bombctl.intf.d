bin/bombctl.mli:
