bin/bombctl.ml: Arg Array Asm Bombs Cmd Cmdliner Fmt Int64 Isa List Printf Term Trace Vm
