bin/eval.mli:
