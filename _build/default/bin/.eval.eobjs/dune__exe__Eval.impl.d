bin/eval.ml: Arg Asm Bombs Cmd Cmdliner Engines List Printf String Term
