(** Dataset CLI: list bombs, show one (metadata + disassembly), run
    one concretely, or dump a trace. *)

let list_bombs () =
  Printf.printf "%-18s %-28s %s\n" "name" "category" "trigger";
  List.iter
    (fun (b : Bombs.Common.t) ->
       Printf.printf "%-18s %-28s %s\n" b.name b.category
         (match b.trigger with
          | None -> "(dead code)"
          | Some { argv1 = Some s; env = [] } -> Printf.sprintf "argv=%S" s
          | Some { argv1 = Some s; _ } -> Printf.sprintf "argv=%S + env" s
          | Some { argv1 = None; _ } -> "environment"))
    Bombs.Catalog.all

let show_bomb name =
  let b = Bombs.Catalog.find name in
  let image = Bombs.Catalog.image b in
  Printf.printf "%s — %s\n%s\nimage: %d bytes, entry 0x%Lx\n\n" b.name
    b.category b.challenge (Asm.Image.size image) image.entry;
  (* disassemble just the program's own code (before lib symbols) *)
  let first_lib =
    List.filter_map
      (fun (s : Asm.Image.symbol) ->
         if s.from_lib && s.kind = Asm.Image.Func then Some s.addr else None)
      image.symbols
    |> List.fold_left min Int64.max_int
  in
  List.iter
    (fun (addr, insn) ->
       if addr < first_lib then begin
         (match Asm.Image.symbol_at image addr with
          | Some s -> Printf.printf "%s:\n" s.name
          | None -> ());
         Printf.printf "  %6Lx: %s\n" addr (Isa.Pp.to_string insn)
       end)
    (Asm.Image.disassemble image)

let run_bomb name argv1 winning =
  let b = Bombs.Catalog.find name in
  let argv1 =
    match argv1 with
    | Some s -> s
    | None -> if winning then Bombs.Common.winning_argv b else b.decoy
  in
  let config = Bombs.Common.config_for ~winning b argv1 in
  let res = Vm.Machine.run_image ~config (Bombs.Catalog.image b) in
  Printf.printf "argv[1]=%S exit=%s steps=%d\nstdout: %s"
    argv1
    (match res.exit_code with Some c -> string_of_int c | None -> "-")
    res.steps res.stdout;
  if Bombs.Common.triggered res then print_endline ">>> BOOM <<<"

let dump_trace name argv1 limit trace_dir =
  (match trace_dir with Some d -> Trace.set_store_dir (Some d) | None -> ());
  let b = Bombs.Catalog.find name in
  let config = Bombs.Common.config_for b argv1 in
  let trace = Trace.record ~config (Bombs.Catalog.image b) in
  let upto = min limit (Trace.length trace) in
  Trace.iteri ~upto trace (fun _ ev -> Fmt.pr "%a@." Trace.pp_event ev);
  Printf.printf "(%d events total%s)\n" (Trace.length trace)
    (if Trace.store_backed trace then ", store-backed" else "")

open Cmdliner

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BOMB")
let argv1_arg = Arg.(value & opt (some string) None & info [ "input" ])
let winning_arg = Arg.(value & flag & info [ "winning" ])
let limit_arg = Arg.(value & opt int 200 & info [ "limit" ])

let trace_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-dir" ] ~docv:"DIR"
           ~doc:"Persist/reuse the trace as an indexed store file in $(docv).")

let () =
  let cmds =
    [ Cmd.v (Cmd.info "list" ~doc:"List the dataset")
        Term.(const list_bombs $ const ());
      Cmd.v (Cmd.info "show" ~doc:"Metadata and disassembly")
        Term.(const show_bomb $ name_arg);
      Cmd.v (Cmd.info "run" ~doc:"Run concretely")
        Term.(const run_bomb $ name_arg $ argv1_arg $ winning_arg);
      Cmd.v (Cmd.info "trace" ~doc:"Dump an execution trace")
        Term.(const dump_trace $ name_arg
              $ Arg.(value & opt string "5" & info [ "input" ])
              $ limit_arg $ trace_dir_arg) ]
  in
  exit (Cmd.eval (Cmd.group (Cmd.info "bombs" ~doc:"Logic-bomb dataset") cmds))
