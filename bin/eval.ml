(** Evaluation CLI: regenerate the paper's tables and figures.

    Subcommands: [table1], [table2], [fig3], [sizes], [negative],
    [validate-trace], [all].  With no subcommand, [--explain BOMB]
    runs one cell under span tracing and prints the error-stage
    diagnosis ([--tool] selects the engine, [--sink] the rendering,
    [--trace-out]/[--jsonl-out] dump the recorded spans). *)

let run_table2 no_incremental tools_filter bombs_filter =
  let tools =
    match tools_filter with
    | [] -> Engines.Profile.all
    | names ->
      List.filter
        (fun t -> List.mem (String.lowercase_ascii (Engines.Profile.name t))
            (List.map String.lowercase_ascii names))
        Engines.Profile.all
  in
  let bombs =
    match bombs_filter with
    | [] -> Bombs.Catalog.table2
    | names -> List.map Bombs.Catalog.find names
  in
  let r =
    Engines.Eval.run_table2 ~incremental:(not no_incremental) ~tools ~bombs ()
  in
  print_string (Engines.Eval.render_table2 r)

let run_fig3 () =
  let r = Engines.Eval.run_fig3 () in
  Printf.printf
    "Figure 3 (argv[1] = 7):\n\
    \  printing disabled: %d instructions propagate the symbolic value\n\
    \  printing enabled:  %d instructions (+%d), symbolic branches %d -> %d\n"
    r.noprint_tainted r.print_tainted
    (r.print_tainted - r.noprint_tainted)
    r.noprint_branches r.print_branches

let run_sizes () =
  let lo, median, hi = Bombs.Catalog.size_stats () in
  Printf.printf
    "dataset: %d bombs, binary sizes [%d .. %d] bytes, median %d\n"
    (List.length Bombs.Catalog.table2) lo hi median;
  List.iter
    (fun (b : Bombs.Common.t) ->
       Printf.printf "  %-18s %6d bytes  (%s)\n" b.name
         (Asm.Image.size (Bombs.Catalog.image b))
         b.category)
    Bombs.Catalog.table2

let run_negative () =
  let results = Engines.Eval.run_negative () in
  List.iter
    (fun (r : Engines.Eval.negative_result) ->
       Printf.printf
         "%-12s claimed the dead bomb: %b (detonated: %b)\n"
         (Engines.Profile.name r.tool) r.claimed r.detonated)
    results

let run_table1 () = print_string (Engines.Eval.render_table1 ())

(* --explain: run one cell under span tracing, print the Es-stage
   diagnosis, then render/dump the trace through the chosen sinks *)
let run_explain no_incremental bomb_name tool_name sinks trace_out jsonl_out =
  match Bombs.Catalog.find_opt bomb_name with
  | None ->
    Printf.eprintf "unknown bomb %S (see `eval sizes` for the catalog)\n"
      bomb_name;
    exit 2
  | Some bomb ->
    let tool =
      match Engines.Profile.of_name tool_name with
      | Some t -> t
      | None ->
        Printf.eprintf "unknown tool %S (BAP, Triton, Angr, Angr-NoLib)\n"
          tool_name;
        exit 2
    in
    let sinks =
      match sinks with
      | [] -> [ Telemetry.Tree ]
      | names ->
        List.map
          (fun s ->
             match Telemetry.sink_of_string s with
             | Some sink -> sink
             | None ->
               Printf.eprintf
                 "unknown sink %S (silent, tree, jsonl, chrome)\n" s;
               exit 2)
          names
    in
    let r =
      Engines.Explain.run ~incremental:(not no_incremental) tool bomb
    in
    print_string (Engines.Explain.render r);
    List.iter
      (fun sink ->
         match (sink : Telemetry.sink) with
         | Silent | Tree -> ()  (* the report already embeds the tree *)
         | Jsonl | Chrome ->
           Printf.printf "--- sink %s ---\n%s" (Telemetry.sink_name sink)
             (Telemetry.render_sink sink))
      sinks;
    Option.iter
      (fun path ->
         Telemetry.write_chrome path;
         Printf.printf "wrote Chrome trace to %s\n" path)
      trace_out;
    Option.iter
      (fun path ->
         Telemetry.write_jsonl path;
         Printf.printf "wrote JSONL spans to %s\n" path)
      jsonl_out

(* validate-trace: independent structural check of emitted files *)
let run_validate_trace files =
  let fail = ref false in
  List.iter
    (fun path ->
       let jsonl = Filename.check_suffix path ".jsonl" in
       let outcome =
         if jsonl then
           match Telemetry.Trace_check.validate_jsonl_file path with
           | Ok n -> Ok (Printf.sprintf "%d span objects" n)
           | Error e -> Error e
         else
           match Telemetry.Trace_check.validate_chrome_file path with
           | Ok { events; spans; max_depth } ->
             Ok
               (Printf.sprintf "%d events, %d balanced spans, depth %d"
                  events spans max_depth)
           | Error e -> Error e
       in
       match outcome with
       | Ok msg -> Printf.printf "%s: OK (%s)\n" path msg
       | Error e ->
         Printf.printf "%s: INVALID (%s)\n" path e;
         fail := true)
    files;
  if !fail then exit 1

open Cmdliner

let tools_arg =
  Arg.(value & opt_all string [] & info [ "tool" ] ~doc:"Restrict to a tool")

let bombs_arg =
  Arg.(value & opt_all string [] & info [ "bomb" ] ~doc:"Restrict to a bomb")

let no_incremental_arg =
  Arg.(value & flag
       & info [ "no-incremental" ]
         ~doc:
           "Solve every query one-shot instead of through per-engine \
            incremental solver sessions (ablation; Table II must be \
            identical either way)")

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table II")
    Term.(const run_table2 $ no_incremental_arg $ tools_arg $ bombs_arg)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I")
    Term.(const run_table1 $ const ())

let fig3_cmd =
  Cmd.v (Cmd.info "fig3" ~doc:"Reproduce Figure 3")
    Term.(const run_fig3 $ const ())

let sizes_cmd =
  Cmd.v (Cmd.info "sizes" ~doc:"Dataset binary-size statistics (§V-A)")
    Term.(const run_sizes $ const ())

let negative_cmd =
  Cmd.v (Cmd.info "negative" ~doc:"Negative-bomb false-positive check (§V-C)")
    Term.(const run_negative $ const ())

let all_cmd =
  let run () =
    run_table1 ();
    print_newline ();
    run_sizes ();
    print_newline ();
    run_table2 false [] [];
    print_newline ();
    run_fig3 ();
    print_newline ();
    run_negative ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Everything") Term.(const run $ const ())

let validate_trace_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"FILE"
           ~doc:"Trace files to validate (.jsonl validates as JSONL \
                 spans, anything else as Chrome trace_event JSON)")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Structurally validate emitted telemetry trace files")
    Term.(const run_validate_trace $ files)

(* the group default: `eval --explain <bomb>` with no subcommand *)
let explain_term =
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"BOMB"
           ~doc:"Run one Table II cell under span tracing and print \
                 the Es0-Es3 error-stage diagnosis")
  in
  let tool_arg =
    Arg.(value & opt string "BAP"
         & info [ "tool" ] ~docv:"TOOL"
           ~doc:"Engine profile for --explain (BAP, Triton, Angr, \
                 Angr-NoLib)")
  in
  let sink_arg =
    Arg.(value & opt_all string []
         & info [ "sink" ] ~docv:"SINK"
           ~doc:"Telemetry sink(s) to render after the diagnosis \
                 (silent, tree, jsonl, chrome); repeatable")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded spans as Chrome trace_event JSON \
                 (loadable in about:tracing / Perfetto)")
  in
  let jsonl_out_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonl-out" ] ~docv:"FILE"
           ~doc:"Write the recorded spans as JSONL")
  in
  let run no_incremental bomb tool sinks trace_out jsonl_out =
    match bomb with
    | Some bomb_name ->
      run_explain no_incremental bomb_name tool sinks trace_out jsonl_out;
      `Ok ()
    | None -> `Help (`Pager, None)
  in
  Term.(ret
          (const run $ no_incremental_arg $ explain_arg $ tool_arg
           $ sink_arg $ trace_out_arg $ jsonl_out_arg))

let () =
  let info = Cmd.info "eval" ~doc:"Logic-bomb evaluation harness" in
  exit (Cmd.eval (Cmd.group ~default:explain_term info
                    [ table1_cmd; table2_cmd; fig3_cmd; sizes_cmd;
                      negative_cmd; validate_trace_cmd; all_cmd ]))
