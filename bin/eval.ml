(** Evaluation CLI: regenerate the paper's tables and figures.

    Subcommands: [table1], [table2], [fig3], [sizes], [negative],
    [validate-trace], [all].  With no subcommand, [--explain BOMB]
    runs one cell under span tracing and prints the error-stage
    diagnosis ([--tool] selects the engine, [--sink] the rendering,
    [--trace-out]/[--jsonl-out] dump the recorded spans). *)

let parse_tools tools_filter =
  match tools_filter with
  | [] -> Engines.Profile.all
  | names ->
    List.filter
      (fun t -> List.mem (String.lowercase_ascii (Engines.Profile.name t))
          (List.map String.lowercase_ascii names))
      Engines.Profile.all

(* supervision policy off the CLI flags; an unlimited budget with no
   retries is the default-policy fast path preserving current output *)
let parse_policy budget_spec retries backoff =
  let budget =
    match budget_spec with
    | None -> Robust.Budget.unlimited
    | Some spec -> (
        match Robust.Budget.parse spec with
        | Ok b -> b
        | Error e ->
          Printf.eprintf "bad --budget: %s\n" e;
          exit 2)
  in
  { Engines.Supervisor.default_policy with budget; retries; backoff }

(* a simulated crash (--kill-after) must look like a death, not a
   clean exit: distinctive code, no table output *)
let kill_exit_code = 9

(* --trace-dir: record-once/analyze-many trace store (also settable
   via TRACE_DIR; the flag wins) *)
let set_trace_dir = function
  | Some d -> Trace.set_store_dir (Some d)
  | None -> ()

(* --metrics-out: the deterministic engine counters (vm/smt/lifter/
   taint/concolic/dse) as "name value" lines — the fleet-merge
   determinism check diffs these between sequential and fleet runs *)
let metric_prefixes =
  [ "vm."; "smt."; "lifter."; "taint."; "concolic."; "dse." ]

let write_metrics_out path =
  let has_prefix name p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, reading) ->
       match reading with
       | Telemetry.Metrics.Vcounter v
         when v > 0 && List.exists (has_prefix name) metric_prefixes ->
         Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
       | _ -> ())
    (Telemetry.Metrics.snapshot ());
  Robust.Diskio.write_atomic ~path (Buffer.contents buf)

let run_table2_common ~require_journal ?(force = false) no_incremental
    no_ladder budget_spec retries backoff tools_filter bombs_filter journal
    kill_after kill_torn trace_dir workers profile fleet_trace progress
    metrics_out =
  set_trace_dir trace_dir;
  if workers < 1 then begin
    Printf.eprintf "--workers must be >= 1\n";
    exit 2
  end;
  let tools = parse_tools tools_filter in
  let bombs =
    match bombs_filter with
    | [] -> Bombs.Catalog.table2
    | names -> List.map Bombs.Catalog.find names
  in
  let policy = parse_policy budget_spec retries backoff in
  let ladder = if no_ladder then Some [] else None in
  let journal =
    match journal with
    | None ->
      if require_journal then begin
        Printf.eprintf "resume requires --journal PATH\n";
        exit 2
      end;
      if kill_after <> None || kill_torn then begin
        Printf.eprintf "--kill-after/--kill-torn require --journal\n";
        exit 2
      end;
      None
    | Some path ->
      if require_journal && not (Sys.file_exists path) then begin
        Printf.eprintf
          "resume: journal %s does not exist (nothing to resume)\n" path;
        exit 2
      end;
      (* refuse to silently re-run a whole grid because one flag
         differs from the interrupted run: compare the journal's
         stamped fingerprint against this invocation's before work *)
      let expected =
        Engines.Eval.journal_fingerprint ~incremental:(not no_incremental)
          ?ladder ~policy ~tools ~bombs ()
      in
      (match Robust.Journal.peek_fingerprint path with
       | Some found when found <> expected && not force ->
         Printf.eprintf
           "%s: journal %s was written under a different configuration \
            (journal fingerprint %s, this run %s) — rerun with the \
            original flags, or pass --force to ignore the journal and \
            re-grade every cell\n"
           (if require_journal then "resume" else "table2")
           path found expected;
         exit 2
       | None
         when require_journal && not force && Sys.file_exists path
              && (try (Unix.stat path).Unix.st_size > 0
                  with Unix.Unix_error _ -> false) ->
         (* a nonempty journal with zero decodable records is damage,
            not a fresh run: refuse with one line instead of silently
            re-grading the whole grid *)
         Printf.eprintf
           "resume: journal %s holds no decodable records — corrupt or \
            not a journal; run `eval fsck --repair %s`, or pass --force \
            to re-grade every cell\n"
           path path;
         exit 2
       | _ -> ());
      Some
        { Engines.Eval.journal_path = path; kill_after; kill_torn }
  in
  if workers > 1 then begin
    (* fleet path: same grid, same journal semantics, sharded across
       forked workers; the crash simulation is sequential-only *)
    if kill_after <> None || kill_torn then begin
      Printf.eprintf "--kill-after/--kill-torn require --workers 1\n";
      exit 2
    end;
    let r =
      Engines.Parallel.run_table2 ~incremental:(not no_incremental) ?ladder
        ~policy ~tools ~bombs
        ?journal_path:
          (Option.map (fun j -> j.Engines.Eval.journal_path) journal)
        ~workers
        ~snapshots:(metrics_out <> None)
        ?profile ?spans_out:fleet_trace ~progress ()
    in
    print_string (Engines.Eval.render_table2 r);
    Option.iter write_metrics_out metrics_out
  end
  else begin
    (* sequential --fleet-trace: one lane, same Chrome timeline *)
    if fleet_trace <> None then begin
      Telemetry.reset ();
      Telemetry.enable ()
    end;
    match
      Engines.Eval.run_table2 ~incremental:(not no_incremental) ?ladder
        ~policy ~tools ~bombs ?journal ?profile ~progress ()
    with
    | r ->
      print_string (Engines.Eval.render_table2 r);
      Option.iter Telemetry.write_chrome fleet_trace;
      Option.iter write_metrics_out metrics_out
    | exception Engines.Eval.Simulated_crash ->
      Printf.eprintf "simulated crash after --kill-after cells\n";
      exit kill_exit_code
  end

let run_table2 no_incremental no_ladder budget_spec retries backoff
    tools_filter bombs_filter journal kill_after kill_torn trace_dir workers
    profile fleet_trace progress metrics_out =
  run_table2_common ~require_journal:false no_incremental no_ladder
    budget_spec retries backoff tools_filter bombs_filter journal kill_after
    kill_torn trace_dir workers profile fleet_trace progress metrics_out

let run_resume force no_incremental no_ladder budget_spec retries backoff
    tools_filter bombs_filter journal trace_dir workers profile fleet_trace
    progress metrics_out =
  run_table2_common ~require_journal:true ~force no_incremental no_ladder
    budget_spec retries backoff tools_filter bombs_filter journal None false
    trace_dir workers profile fleet_trace progress metrics_out

(* ------------------------------------------------------------------ *)
(* Fleet service: serve / submit / drain                               *)
(* ------------------------------------------------------------------ *)

let run_serve socket workers max_queue queue_journal force task_timeout
    breaker trace_dir =
  set_trace_dir trace_dir;
  if workers < 1 then begin
    Printf.eprintf "--workers must be >= 1\n";
    exit 2
  end;
  match
    Engines.Service.serve ~workers ~max_queue ?queue_journal ~force
      ?task_timeout:(if task_timeout <= 0. then None else Some task_timeout)
      ?breaker:(if breaker <= 0 then None else Some breaker)
      ~socket ()
  with
  | () -> ()
  | exception Fleet.Serve.Journal_mismatch { path; found; expected } ->
    Printf.eprintf
      "serve: queue journal %s was written by a different serving \
       configuration (journal fingerprint %s, this daemon %s) — its \
       outcomes cannot be replayed; move the journal aside, or pass \
       --force to ignore it and re-grade\n"
      path found expected;
    exit 2
  | exception Fleet.Serve.Socket_in_use path ->
    Printf.eprintf
      "serve: a daemon is already listening on %s (use `eval drain` to \
       stop it, or pick another --socket)\n"
      path;
    exit 2
  | exception Fleet.Serve.Stale_socket path ->
    Printf.eprintf
      "serve: stale socket %s — no daemon is listening, but the file \
       exists (a previous daemon died without cleanup). Remove it and \
       retry.\n"
      path;
    exit 2

let run_submit socket reconnect tools_filter bombs_filter budget_spec retries
    backoff no_incremental no_ladder =
  let tools = parse_tools tools_filter in
  let bombs =
    match bombs_filter with
    | [] -> List.map (fun (b : Bombs.Common.t) -> b.name) Bombs.Catalog.table2
    | names ->
      List.map (fun n -> (Bombs.Catalog.find n).Bombs.Common.name) names
  in
  (match budget_spec with
   | None -> ()
   | Some spec -> (
       match Robust.Budget.parse spec with
       | Ok _ -> ()
       | Error e ->
         Printf.eprintf "bad --budget: %s\n" e;
         exit 2));
  let requests =
    List.concat_map
      (fun bomb ->
         List.map
           (fun tool ->
              let id = Engines.Profile.name tool ^ "/" ^ bomb in
              ( id,
                Engines.Service.encode_request ~id ~tool ~bomb
                  ?budget:budget_spec ~retries ~backoff
                  ~incremental:(not no_incremental) ~ladder:(not no_ladder)
                  () ))
           tools)
      bombs
  in
  if reconnect then begin
    (* resilient path: reconnect across daemon restarts, resubmitting
       under the same idempotency keys so the durable queue dedupes *)
    let r =
      Engines.Service.submit_resilient ~socket ~on_line:print_endline
        requests
    in
    if r.Engines.Service.sr_unanswered > 0 then begin
      Printf.eprintf
        "submit: %d request(s) unanswered after %d session(s) — daemon \
         on %s unreachable or restarting too slowly\n"
        r.Engines.Service.sr_unanswered r.Engines.Service.sr_sessions socket;
      exit 2
    end;
    if r.Engines.Service.sr_failed > 0 then exit 1
  end
  else
    match
      Engines.Service.submit ~socket ~on_line:print_endline
        (List.map snd requests)
    with
    | failures -> if failures > 0 then exit 1
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "submit: cannot reach daemon on %s: %s\n" socket
        (Unix.error_message e);
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "submit: connection to daemon on %s failed: %s\n" socket
        msg;
      exit 2
    | exception End_of_file ->
      Printf.eprintf "submit: daemon on %s hung up mid-stream\n" socket;
      exit 2

let run_health socket =
  match Engines.Service.health ~socket () with
  | Some line -> print_endline line
  | None ->
    Printf.eprintf "health: no daemon answers on %s\n" socket;
    exit 2

let run_metrics socket prometheus =
  match Engines.Service.metrics ~socket ~prometheus () with
  | Some text -> if prometheus then print_string text else print_endline text
  | None ->
    Printf.eprintf "metrics: no daemon answers on %s\n" socket;
    exit 2

let run_profile path top =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "profile: %s does not exist\n" path;
    exit 2
  end;
  match Engines.Cellprof.load path with
  | [] ->
    Printf.eprintf
      "profile: %s holds no decodable samples — corrupt or not a \
       profile sidecar; run `eval fsck %s`\n"
      path path;
    exit 2
  | samples -> print_string (Engines.Cellprof.render_report ~top samples)
  | exception Sys_error msg ->
    Printf.eprintf "profile: %s\n" msg;
    exit 2

let run_drain socket =
  match Engines.Service.drain ~socket ~on_line:print_endline () with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "drain: cannot reach daemon on %s: %s\n" socket
      (Unix.error_message e);
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "drain: connection to daemon on %s failed: %s\n" socket
      msg;
    exit 2
  | exception End_of_file ->
    Printf.eprintf "drain: daemon on %s hung up mid-stream\n" socket;
    exit 2

let run_fig3 trace_dir =
  set_trace_dir trace_dir;
  let r = Engines.Eval.run_fig3 () in
  Printf.printf
    "Figure 3 (argv[1] = 7):\n\
    \  printing disabled: %d instructions propagate the symbolic value\n\
    \  printing enabled:  %d instructions (+%d), symbolic branches %d -> %d\n"
    r.noprint_tainted r.print_tainted
    (r.print_tainted - r.noprint_tainted)
    r.noprint_branches r.print_branches

let run_sizes () =
  let lo, median, hi = Bombs.Catalog.size_stats () in
  Printf.printf
    "dataset: %d bombs, binary sizes [%d .. %d] bytes, median %d\n"
    (List.length Bombs.Catalog.table2) lo hi median;
  List.iter
    (fun (b : Bombs.Common.t) ->
       Printf.printf "  %-18s %6d bytes  (%s)\n" b.name
         (Asm.Image.size (Bombs.Catalog.image b))
         b.category)
    Bombs.Catalog.table2

let run_negative () =
  let results = Engines.Eval.run_negative () in
  List.iter
    (fun (r : Engines.Eval.negative_result) ->
       Printf.printf
         "%-12s claimed the dead bomb: %b (detonated: %b)\n"
         (Engines.Profile.name r.tool) r.claimed r.detonated)
    results

let run_table1 () = print_string (Engines.Eval.render_table1 ())

(* chaos: seeded fault-injection soak over supervised cells.  The
   seed comes from --seed, else ROBUST_CHAOS_SEED, else a fixed
   default so bare runs are reproducible *)
let run_chaos no_incremental seed plans serve disk rate workers tools_filter
    bombs_filter verbose =
  let seed =
    match seed with
    | Some s -> s
    | None -> (
        match Sys.getenv_opt "ROBUST_CHAOS_SEED" with
        | Some v -> (
            match Int64.of_string_opt v with
            | Some s -> s
            | None ->
              Printf.eprintf "ROBUST_CHAOS_SEED=%S is not an integer\n" v;
              exit 2)
        | None -> 0xC0FFEEL)
  in
  let tools =
    match tools_filter with
    | [] -> Engines.Supervisor.default_soak_tools
    | _ -> parse_tools tools_filter
  in
  let bombs =
    match bombs_filter with
    | [] -> Engines.Supervisor.default_soak_bombs
    | names -> names
  in
  if disk then begin
    if serve then begin
      Printf.eprintf "chaos: --disk and --serve are mutually exclusive\n";
      exit 2
    end;
    (* storage-fault soak: journaled fleet grid under seeded disk
       faults (ENOSPC, short writes, bit flips, torn fsyncs, failed
       renames), then fsck --repair + resume + canonical merge must
       reconstruct a byte-identical table and journal *)
    let report =
      Engines.Disk_soak.run ~plans ~seed ~rate ~workers ~tools ~bombs ()
    in
    print_string (Engines.Disk_soak.render report);
    if not (Engines.Disk_soak.ok report) then begin
      Printf.eprintf "chaos: disk soak containment FAILED\n";
      exit 1
    end;
    exit 0
  end;
  if serve then begin
    (* service-plane soak: live daemon under seeded IPC chaos plus a
       mid-stream SIGKILL + warm restart; exactly-once grading and a
       byte-identical merged journal are the containment gate *)
    let report =
      Engines.Serve_soak.run ~plans ~seed ~rate ~tools ~bombs ()
    in
    print_string (Engines.Serve_soak.render report);
    if not (Engines.Serve_soak.ok report) then begin
      Printf.eprintf "chaos: serve soak containment FAILED\n";
      exit 1
    end;
    exit 0
  end;
  if verbose then
    List.iter
      (fun i ->
         Printf.printf "plan %d: %s\n" i
           (Format.asprintf "%a" Robust.Chaos.pp_plan
              (Robust.Chaos.plan_of_seed (Int64.add seed (Int64.of_int i)))))
      (List.init plans (fun i -> i));
  let report =
    Engines.Supervisor.soak ~incremental:(not no_incremental) ~tools ~bombs
      ~seed ~plans ()
  in
  print_string (Engines.Supervisor.render_soak report);
  Printf.printf "robust counters:\n";
  List.iter
    (fun (name, reading) ->
       if String.length name >= 7 && String.sub name 0 7 = "robust." then
         match reading with
         | Telemetry.Metrics.Vcounter n when n > 0 ->
           Printf.printf "  %-32s %d\n" name n
         | _ -> ())
    (Telemetry.Metrics.snapshot ());
  (* CI gate: a containment violation — or a soak that injected
     nothing at all, which would make the gate vacuous — fails the
     run with a nonzero exit *)
  if not (Engines.Supervisor.contained report) then begin
    Printf.eprintf "chaos: containment check FAILED\n";
    exit 1
  end;
  if plans > 0 && report.Engines.Supervisor.faults_fired = 0 then begin
    Printf.eprintf
      "chaos: %d plans fired no faults — soak did not exercise \
       containment\n"
      plans;
    exit 1
  end

(* --explain: run one cell under span tracing, print the Es-stage
   diagnosis, then render/dump the trace through the chosen sinks *)
let run_explain no_incremental no_ladder budget_spec bomb_name tool_name sinks
    trace_out jsonl_out trace_dir =
  set_trace_dir trace_dir;
  match Bombs.Catalog.find_opt bomb_name with
  | None ->
    Printf.eprintf "unknown bomb %S (see `eval sizes` for the catalog)\n"
      bomb_name;
    exit 2
  | Some bomb ->
    let tool =
      match Engines.Profile.of_name tool_name with
      | Some t -> t
      | None ->
        Printf.eprintf "unknown tool %S (BAP, Triton, Angr, Angr-NoLib)\n"
          tool_name;
        exit 2
    in
    let sinks =
      match sinks with
      | [] -> [ Telemetry.Tree ]
      | names ->
        List.map
          (fun s ->
             match Telemetry.sink_of_string s with
             | Some sink -> sink
             | None ->
               Printf.eprintf
                 "unknown sink %S (silent, tree, jsonl, chrome)\n" s;
               exit 2)
          names
    in
    let budget =
      Option.map
        (fun spec ->
           match Robust.Budget.parse spec with
           | Ok b -> b
           | Error e ->
             Printf.eprintf "bad --budget: %s\n" e;
             exit 2)
        budget_spec
    in
    let r =
      Engines.Explain.run ~incremental:(not no_incremental)
        ?ladder:(if no_ladder then Some [] else None) ?budget tool bomb
    in
    print_string (Engines.Explain.render r);
    List.iter
      (fun sink ->
         match (sink : Telemetry.sink) with
         | Silent | Tree -> ()  (* the report already embeds the tree *)
         | Jsonl | Chrome ->
           Printf.printf "--- sink %s ---\n%s" (Telemetry.sink_name sink)
             (Telemetry.render_sink sink))
      sinks;
    Option.iter
      (fun path ->
         Telemetry.write_chrome path;
         Printf.printf "wrote Chrome trace to %s\n" path)
      trace_out;
    Option.iter
      (fun path ->
         Telemetry.write_jsonl path;
         Printf.printf "wrote JSONL spans to %s\n" path)
      jsonl_out

(* debug: interactive step/step-back replay over one recorded trace *)
let run_debug bomb_name input trace_dir =
  set_trace_dir trace_dir;
  match Bombs.Catalog.find_opt bomb_name with
  | None ->
    Printf.eprintf "unknown bomb %S (see `eval sizes` for the catalog)\n"
      bomb_name;
    exit 2
  | Some bomb -> (
      try Engines.Debug.run ?input bomb
      with Trace.Store.Corrupt msg ->
        Printf.eprintf
          "debug: trace store is corrupt (%s) — run `eval fsck --repair` \
           on the store file, or remove it to re-record\n"
          msg;
        exit 2)

(* fsck: verify (and with --repair, fix) on-disk artifacts *)
let run_fsck repair paths =
  let reports = Engines.Fsck.scan ~repair paths in
  if reports <> [] then print_endline (Engines.Fsck.render reports);
  exit (Engines.Fsck.exit_code ~repair reports)

(* validate-trace: independent structural check of emitted files *)
let run_validate_trace files =
  let fail = ref false in
  List.iter
    (fun path ->
       let jsonl = Filename.check_suffix path ".jsonl" in
       let outcome =
         if jsonl then
           match Telemetry.Trace_check.validate_jsonl_file path with
           | Ok n -> Ok (Printf.sprintf "%d span objects" n)
           | Error e -> Error e
         else
           match Telemetry.Trace_check.validate_chrome_file path with
           | Ok { events; spans; max_depth } ->
             Ok
               (Printf.sprintf "%d events, %d balanced spans, depth %d"
                  events spans max_depth)
           | Error e -> Error e
       in
       match outcome with
       | Ok msg -> Printf.printf "%s: OK (%s)\n" path msg
       | Error e ->
         Printf.printf "%s: INVALID (%s)\n" path e;
         fail := true)
    files;
  if !fail then exit 1

open Cmdliner

let tools_arg =
  Arg.(value & opt_all string [] & info [ "tool" ] ~doc:"Restrict to a tool")

let bombs_arg =
  Arg.(value & opt_all string [] & info [ "bomb" ] ~doc:"Restrict to a bomb")

let no_incremental_arg =
  Arg.(value & flag
       & info [ "no-incremental" ]
         ~doc:
           "Solve every query one-shot instead of through per-engine \
            incremental solver sessions (ablation; Table II must be \
            identical either way)")

let budget_arg =
  Arg.(value & opt (some string) None
       & info [ "budget" ] ~docv:"SPEC"
         ~doc:
           "Per-cell resource budget, e.g. \
            $(b,vm=200000,lift=50000,smt=2000,nodes=100000,taint=100000,wall=2.5) \
            (wall in seconds). A tripped budget grades the cell E (or \
            P for cancellation) instead of aborting the run.")

let retries_arg =
  Arg.(value & opt int 0
       & info [ "retries" ]
         ~doc:
           "Retry a budget-tripped cell this many times with the \
            budget scaled by --backoff each time")

let no_ladder_arg =
  Arg.(value & flag
       & info [ "no-ladder" ]
         ~doc:
           "Disable the solver degradation ladder: a budget tripped \
            mid-check aborts the cell (graded E) instead of retrying \
            the query down cheaper bounded strategies (graded P)")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"PATH"
         ~doc:
           "Write-ahead cell journal: append every completed cell as \
            a checksummed record, and replay valid records matching \
            this run's fingerprint instead of re-running their cells")

let kill_after_arg =
  Arg.(value & opt (some int) None
       & info [ "kill-after" ] ~docv:"N"
         ~doc:
           "Simulate a crash: die (exit 9) after N cells have been \
            freshly executed and journaled (requires --journal; \
            replayed cells do not count)")

let kill_torn_arg =
  Arg.(value & flag
       & info [ "kill-torn" ]
         ~doc:
           "With --kill-after, first write a deliberately torn record \
            (a death mid-append) that the resuming run must detect \
            and skip")

let backoff_arg =
  Arg.(value & opt float 10.0
       & info [ "backoff" ]
         ~doc:"Budget scale factor applied on each retry")

let trace_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-dir" ] ~docv:"DIR"
         ~doc:
           "Persist concrete execution traces as indexed store files \
            in $(docv) and reuse matching ones instead of re-running \
            the VM (also settable via $(b,TRACE_DIR); the flag wins)")

let workers_arg =
  Arg.(value & opt int 1
       & info [ "workers" ] ~docv:"N"
         ~doc:
           "Shard the grid across $(docv) forked worker processes \
            (the evaluation fleet). With --journal, each worker \
            write-ahead journals its cells and the shards are merged \
            into one canonical journal at the end. 1 = sequential.")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"PATH"
         ~doc:
           "Per-cell resource profile sidecar: append one JSON line \
            per executed cell (wall time by span phase, VM steps, \
            lifted instructions, solver blast/conflict/cache \
            counters, taint coverage, degradation attribution). \
            Inspect with $(b,eval profile PATH). With --workers, \
            workers write per-slot shards merged after the run.")

let fleet_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "fleet-trace" ] ~docv:"FILE"
         ~doc:
           "Write one merged Chrome trace_event timeline for the \
            whole run, with a lane (pid) per fleet worker — loadable \
            in about:tracing / Perfetto, checkable with \
            $(b,eval validate-trace)")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
         ~doc:
           "Live status line on stderr: cells done/total, per-worker \
            in-flight cells and ETA (fleet), or the current cell \
            (sequential)")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:
           "After the run, write the deterministic engine counters \
            (vm.*, smt.*, lifter.*, taint.*, concolic.*, dse.*) as \
            'name value' lines. With --workers, the fleet's \
            aggregated counters — byte-identical to a sequential \
            run's for the same grid.")

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table II")
    Term.(const run_table2 $ no_incremental_arg $ no_ladder_arg $ budget_arg
          $ retries_arg $ backoff_arg $ tools_arg $ bombs_arg $ journal_arg
          $ kill_after_arg $ kill_torn_arg $ trace_dir_arg $ workers_arg
          $ profile_out_arg $ fleet_trace_arg $ progress_arg
          $ metrics_out_arg)

let force_arg =
  Arg.(value & flag
       & info [ "force" ]
         ~doc:
           "Proceed despite a journal fingerprint mismatch: ignore the \
            incompatible journal's records and re-grade from scratch")

let resume_cmd =
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue a partially-journaled Table II run after a crash: \
          replay every journaled cell, execute only the missing ones \
          (requires --journal, with the same flags as the interrupted \
          run so the fingerprints match; a mismatch is refused unless \
          --force)")
    Term.(const run_resume $ force_arg $ no_incremental_arg $ no_ladder_arg
          $ budget_arg $ retries_arg $ backoff_arg $ tools_arg $ bombs_arg
          $ journal_arg $ trace_dir_arg $ workers_arg $ profile_out_arg
          $ fleet_trace_arg $ progress_arg $ metrics_out_arg)

let socket_arg =
  Arg.(value & opt string "eval.sock"
       & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket the daemon listens on")

let serve_cmd =
  let serve_workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
           ~doc:"Fleet worker processes answering requests")
  in
  let max_queue_arg =
    Arg.(value & opt int 10_000
         & info [ "max-queue" ] ~docv:"N"
           ~doc:
             "Backpressure: reject submissions once $(docv) requests \
              are queued (not yet running)")
  in
  let queue_journal_arg =
    Arg.(value & opt (some string) None
         & info [ "queue-journal" ] ~docv:"PATH"
           ~doc:
             "Durable request queue: journal every accepted request \
              (keyed by its idempotency fingerprint) before \
              acknowledging it and every graded outcome before \
              streaming it, so a daemon restarted after a crash \
              re-dispatches in-flight requests and answers \
              resubmissions from the journal — exactly-once grading \
              across crashes")
  in
  let task_timeout_arg =
    Arg.(value & opt float 60.
         & info [ "task-timeout" ] ~docv:"SECONDS"
           ~doc:
             "Per-cell wall watchdog: a worker silent this long on one \
              cell is killed and the cell re-dispatched (0 disables)")
  in
  let breaker_arg =
    Arg.(value & opt int 5
         & info [ "breaker" ] ~docv:"N"
           ~doc:
             "Circuit breaker: quarantine a worker slot after $(docv) \
              consecutive deaths instead of respawning it forever \
              (0 disables)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation daemon: accept line-framed JSON cell \
          requests (bomb + tool profile + budget) on a Unix-domain \
          socket, shard them across a fleet of forked workers, and \
          stream graded outcomes (with Es-stage and degradation \
          attribution) back to each submitter. Refuses to bind over a \
          live or stale socket. Runs until `eval drain` (or SIGINT), \
          which finishes the queue and removes the socket.")
    Term.(const run_serve $ socket_arg $ serve_workers_arg $ max_queue_arg
          $ queue_journal_arg $ force_arg $ task_timeout_arg $ breaker_arg
          $ trace_dir_arg)

let submit_cmd =
  let reconnect_arg =
    Arg.(value & flag
         & info [ "reconnect" ]
           ~doc:
             "Survive daemon restarts: reconnect with backoff on \
              connection refusal or mid-stream hangup and resubmit \
              unanswered requests under the same idempotency keys (a \
              daemon with --queue-journal answers repeats from its \
              journal instead of re-grading)")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit Table II cells to a running `eval serve` daemon (one \
          request per --tool x --bomb combination; defaults to the \
          full grid) and stream the graded outcome lines as they \
          complete. Exits 1 if any cell fails.")
    Term.(const run_submit $ socket_arg $ reconnect_arg $ tools_arg
          $ bombs_arg $ budget_arg $ retries_arg $ backoff_arg
          $ no_incremental_arg $ no_ladder_arg)

let drain_cmd =
  Cmd.v
    (Cmd.info "drain"
       ~doc:
         "Ask the daemon to finish every queued request, shut down \
          and remove its socket; streams status lines until the final \
          drained acknowledgement.")
    Term.(const run_drain $ socket_arg)

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "One-line health summary from a running `eval serve` daemon: \
          version, fingerprint, uptime, workers alive, queue depth, \
          in-flight cells and p50/p95/p99 request latency")
    Term.(const run_health $ socket_arg)

let metrics_cmd =
  let prometheus_arg =
    Arg.(value & flag
         & info [ "prometheus" ]
           ~doc:
             "Print the Prometheus text exposition instead of the \
              JSON snapshot")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump a running daemon's aggregated metrics registry — its \
          own request accounting merged with every engine counter its \
          fleet workers have reported")
    Term.(const run_metrics $ socket_arg $ prometheus_arg)

let profile_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
           ~doc:"Profile sidecar written by table2/resume --profile")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K"
           ~doc:"How many slowest cells to list")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Report on a per-cell resource profile sidecar: the top-K \
          slowest cells with their span-phase breakdown, wall time \
          per bomb x tool, and the Es-stage x resource correlation")
    Term.(const run_profile $ path_arg $ top_arg)

let chaos_cmd =
  let seed_arg =
    Arg.(value & opt (some int64) None
         & info [ "seed" ] ~docv:"SEED"
           ~doc:
             "Chaos seed deriving the fault plans (default: \
              $(b,ROBUST_CHAOS_SEED), else 0xC0FFEE)")
  in
  let plans_arg =
    Arg.(value & opt int 50
         & info [ "plans" ] ~doc:"Number of seed-derived fault plans")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Print every derived fault plan")
  in
  let serve_arg =
    Arg.(value & flag
         & info [ "serve" ]
           ~doc:
             "Soak the service plane instead of single cells: run a \
              live `eval serve` daemon under seeded IPC fault \
              injection (corrupted/dropped/delayed frames, wedged \
              workers, client resets), SIGKILL it mid-stream, \
              warm-restart it from its durable queue journal and \
              resubmit everything; fails unless every request is \
              graded exactly once and the merged outcome journal is \
              byte-identical to a fault-free baseline")
  in
  let disk_arg =
    Arg.(value & flag
         & info [ "disk" ]
           ~doc:
             "Soak the storage layer instead of single cells: run a \
              journaled fleet grid under seeded disk faults (ENOSPC, \
              short writes, bit flips, lying fsyncs, failed renames) \
              injected at every durable-IO append, sync and rename; \
              then fsck --repair, resume and canonically merge the \
              survivors; fails unless the recovered table and journal \
              are byte-identical to a fault-free baseline and every \
              fired fault is accounted in robust.disk_injected.*")
  in
  let rate_arg =
    Arg.(value & opt float 0.05
         & info [ "rate" ] ~docv:"P"
           ~doc:
             "With --serve/--disk: per-opportunity fault probability \
              for each armed fault class")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
           ~doc:
             "With --disk: fleet width of the chaos-phase grid (1 = \
              sequential)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded fault-injection soak: run supervised cells under \
          deterministically derived fault plans and verify every \
          injected fault is contained to its cell (exit 1 otherwise). \
          With --serve, soak the whole service plane — daemon, durable \
          queue, IPC, client — under seeded faults and a mid-stream \
          daemon kill. With --disk, soak the storage layer: journaled \
          runs under injected disk faults must recover byte-identical \
          via fsck --repair + resume.")
    Term.(const run_chaos $ no_incremental_arg $ seed_arg $ plans_arg
          $ serve_arg $ disk_arg $ rate_arg $ workers_arg $ tools_arg
          $ bombs_arg $ verbose_arg)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I")
    Term.(const run_table1 $ const ())

let fig3_cmd =
  Cmd.v (Cmd.info "fig3" ~doc:"Reproduce Figure 3")
    Term.(const run_fig3 $ trace_dir_arg)

let debug_cmd =
  let bomb_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BOMB")
  in
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input" ] ~docv:"ARGV1"
           ~doc:"argv[1] for the recorded run (default: the bomb's decoy)")
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Interactive trace debugger: record (or reopen, with \
          --trace-dir) one concrete execution and step forward and \
          backward through it from VM checkpoints, run to an \
          address/syscall/taint event, and query taint provenance \
          (reads commands from stdin; try `help`)")
    Term.(const run_debug $ bomb_arg $ input_arg $ trace_dir_arg)

let fsck_cmd =
  let repair_arg =
    Arg.(value & flag
         & info [ "repair" ]
           ~doc:
             "Fix what can be fixed: rewrite journals and shards \
              keeping only sound records, truncate torn tails, \
              quarantine corrupt trace stores (renamed to *.corrupt; \
              the next run re-records), and remove stale *.tmp files")
  in
  let paths_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"PATH"
           ~doc:
             "Artifacts to check — journals, trace stores, span/profile \
              shards, or directories (scanned recursively)")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify on-disk artifacts: detect each file's format, walk \
          its per-record checksums, flag torn tails, corrupt records, \
          orphaned worker shards and stale tmp files, and report \
          journal fingerprints. Exit 0 if everything is clean, 1 if \
          damage was found and fully repaired (--repair), 2 if damage \
          remains.")
    Term.(const run_fsck $ repair_arg $ paths_arg)

let sizes_cmd =
  Cmd.v (Cmd.info "sizes" ~doc:"Dataset binary-size statistics (§V-A)")
    Term.(const run_sizes $ const ())

let negative_cmd =
  Cmd.v (Cmd.info "negative" ~doc:"Negative-bomb false-positive check (§V-C)")
    Term.(const run_negative $ const ())

let all_cmd =
  let run () =
    run_table1 ();
    print_newline ();
    run_sizes ();
    print_newline ();
    run_table2 false false None 0 10.0 [] [] None None false None 1 None
      None false None;
    print_newline ();
    run_fig3 None;
    print_newline ();
    run_negative ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Everything") Term.(const run $ const ())

let validate_trace_cmd =
  let files =
    Arg.(non_empty & pos_all file []
         & info [] ~docv:"FILE"
           ~doc:"Trace files to validate (.jsonl validates as JSONL \
                 spans, anything else as Chrome trace_event JSON)")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Structurally validate emitted telemetry trace files")
    Term.(const run_validate_trace $ files)

(* the group default: `eval --explain <bomb>` with no subcommand *)
let explain_term =
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"BOMB"
           ~doc:"Run one Table II cell under span tracing and print \
                 the Es0-Es3 error-stage diagnosis")
  in
  let tool_arg =
    Arg.(value & opt string "BAP"
         & info [ "tool" ] ~docv:"TOOL"
           ~doc:"Engine profile for --explain (BAP, Triton, Angr, \
                 Angr-NoLib)")
  in
  let sink_arg =
    Arg.(value & opt_all string []
         & info [ "sink" ] ~docv:"SINK"
           ~doc:"Telemetry sink(s) to render after the diagnosis \
                 (silent, tree, jsonl, chrome); repeatable")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded spans as Chrome trace_event JSON \
                 (loadable in about:tracing / Perfetto)")
  in
  let jsonl_out_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonl-out" ] ~docv:"FILE"
           ~doc:"Write the recorded spans as JSONL")
  in
  let run no_incremental no_ladder budget bomb tool sinks trace_out jsonl_out
      trace_dir =
    match bomb with
    | Some bomb_name ->
      run_explain no_incremental no_ladder budget bomb_name tool sinks
        trace_out jsonl_out trace_dir;
      `Ok ()
    | None -> `Help (`Pager, None)
  in
  Term.(ret
          (const run $ no_incremental_arg $ no_ladder_arg $ budget_arg
           $ explain_arg $ tool_arg $ sink_arg $ trace_out_arg
           $ jsonl_out_arg $ trace_dir_arg))

let () =
  let info = Cmd.info "eval" ~doc:"Logic-bomb evaluation harness" in
  exit (Cmd.eval (Cmd.group ~default:explain_term info
                    [ table1_cmd; table2_cmd; resume_cmd; fig3_cmd;
                      sizes_cmd; negative_cmd; validate_trace_cmd;
                      chaos_cmd; debug_cmd; serve_cmd; submit_cmd;
                      drain_cmd; health_cmd; metrics_cmd; profile_cmd;
                      fsck_cmd; all_cmd ]))
