(** Evaluation CLI: regenerate the paper's tables and figures.

    Subcommands: [table1], [table2], [fig3], [sizes], [negative],
    [all]. *)

let run_table2 no_incremental tools_filter bombs_filter =
  let tools =
    match tools_filter with
    | [] -> Engines.Profile.all
    | names ->
      List.filter
        (fun t -> List.mem (String.lowercase_ascii (Engines.Profile.name t))
            (List.map String.lowercase_ascii names))
        Engines.Profile.all
  in
  let bombs =
    match bombs_filter with
    | [] -> Bombs.Catalog.table2
    | names -> List.map Bombs.Catalog.find names
  in
  let r =
    Engines.Eval.run_table2 ~incremental:(not no_incremental) ~tools ~bombs ()
  in
  print_string (Engines.Eval.render_table2 r)

let run_fig3 () =
  let r = Engines.Eval.run_fig3 () in
  Printf.printf
    "Figure 3 (argv[1] = 7):\n\
    \  printing disabled: %d instructions propagate the symbolic value\n\
    \  printing enabled:  %d instructions (+%d), symbolic branches %d -> %d\n"
    r.noprint_tainted r.print_tainted
    (r.print_tainted - r.noprint_tainted)
    r.noprint_branches r.print_branches

let run_sizes () =
  let lo, median, hi = Bombs.Catalog.size_stats () in
  Printf.printf
    "dataset: %d bombs, binary sizes [%d .. %d] bytes, median %d\n"
    (List.length Bombs.Catalog.table2) lo hi median;
  List.iter
    (fun (b : Bombs.Common.t) ->
       Printf.printf "  %-18s %6d bytes  (%s)\n" b.name
         (Asm.Image.size (Bombs.Catalog.image b))
         b.category)
    Bombs.Catalog.table2

let run_negative () =
  let results = Engines.Eval.run_negative () in
  List.iter
    (fun (r : Engines.Eval.negative_result) ->
       Printf.printf
         "%-12s claimed the dead bomb: %b (detonated: %b)\n"
         (Engines.Profile.name r.tool) r.claimed r.detonated)
    results

let run_table1 () = print_string (Engines.Eval.render_table1 ())

open Cmdliner

let tools_arg =
  Arg.(value & opt_all string [] & info [ "tool" ] ~doc:"Restrict to a tool")

let bombs_arg =
  Arg.(value & opt_all string [] & info [ "bomb" ] ~doc:"Restrict to a bomb")

let no_incremental_arg =
  Arg.(value & flag
       & info [ "no-incremental" ]
         ~doc:
           "Solve every query one-shot instead of through per-engine \
            incremental solver sessions (ablation; Table II must be \
            identical either way)")

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table II")
    Term.(const run_table2 $ no_incremental_arg $ tools_arg $ bombs_arg)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I")
    Term.(const run_table1 $ const ())

let fig3_cmd =
  Cmd.v (Cmd.info "fig3" ~doc:"Reproduce Figure 3")
    Term.(const run_fig3 $ const ())

let sizes_cmd =
  Cmd.v (Cmd.info "sizes" ~doc:"Dataset binary-size statistics (§V-A)")
    Term.(const run_sizes $ const ())

let negative_cmd =
  Cmd.v (Cmd.info "negative" ~doc:"Negative-bomb false-positive check (§V-C)")
    Term.(const run_negative $ const ())

let all_cmd =
  let run () =
    run_table1 ();
    print_newline ();
    run_sizes ();
    print_newline ();
    run_table2 false [] [];
    print_newline ();
    run_fig3 ();
    print_newline ();
    run_negative ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Everything") Term.(const run $ const ())

let () =
  let info = Cmd.info "eval" ~doc:"Logic-bomb evaluation harness" in
  exit (Cmd.eval (Cmd.group info
                    [ table1_cmd; table2_cmd; fig3_cmd; sizes_cmd;
                      negative_cmd; all_cmd ]))
