(** Differential-fuzzing CLI.

    Long-budget counterpart of the [@fuzz-smoke] test alias:

    - [fuzz run]     — fuzz one or all oracles with a seed and budget,
                       printing shrunk counterexamples; optionally
                       save failures as corpus entries;
    - [fuzz replay]  — re-run every [*.case] entry in a corpus dir;
    - [fuzz mutant]  — sanity-check that the blast-vs-eval oracle
                       catches an intentionally broken simplifier
                       (exit 0 iff it does). *)

let spf = Printf.sprintf

(* exit summary: per-oracle throughput off the telemetry registry *)
let print_summary () =
  let rows =
    List.filter_map
      (fun o ->
         let v n = Telemetry.Metrics.counter_value (spf "fuzz.%s.%s" o n) in
         let cases = v "cases" in
         if cases = 0 then None
         else
           let wall = Telemetry.Metrics.gauge_value_of (spf "fuzz.%s.wall_s" o) in
           Some (o, cases, v "failures", v "shrink_steps", wall))
      Difftest.Harness.oracle_names
  in
  if rows <> [] then begin
    Fmt.pr "@.%-10s %8s %9s %13s %9s %10s@." "oracle" "cases" "failures"
      "shrink steps" "wall (s)" "cases/s";
    List.iter
      (fun (o, cases, failures, shrink, wall) ->
         Fmt.pr "%-10s %8d %9d %13d %9.3f %10.1f@." o cases failures shrink
           wall
           (if wall > 0.0 then float_of_int cases /. wall else 0.0))
      rows
  end;
  let replays = Telemetry.Metrics.counter_value "fuzz.corpus.replays" in
  if replays > 0 then Fmt.pr "corpus replays: %d@." replays

let oracles_of = function
  | "all" -> Difftest.Harness.oracle_names
  | o when List.mem o Difftest.Harness.oracle_names -> [ o ]
  | o ->
    prerr_endline
      (spf "unknown oracle %S (expected all|%s)" o
         (String.concat "|" Difftest.Harness.oracle_names));
    exit 2

let run_fuzz oracle seed budget corpus_dir =
  let seed = Difftest.Harness.seed_from_env seed in
  let budget = Difftest.Harness.budget_from_env budget in
  let total_failures = ref 0 in
  List.iter
    (fun name ->
       let r = Difftest.Harness.run ~seed ~budget name in
       Fmt.pr "%a@." Difftest.Harness.pp_report r;
       total_failures := !total_failures + List.length r.failures;
       match corpus_dir with
       | None -> ()
       | Some dir ->
         List.iter
           (fun f ->
              let path = Difftest.Corpus.(save dir (of_failure f)) in
              Fmt.pr "saved %s@." path)
           r.failures)
    (oracles_of oracle);
  print_summary ();
  if !total_failures > 0 then exit 1

let run_replay dir =
  let entries = Difftest.Corpus.load_dir dir in
  if entries = [] then begin
    Fmt.pr "no corpus entries under %s@." dir;
    exit 2
  end;
  let bad = ref 0 in
  List.iter
    (fun entry ->
       match entry with
       | Error e ->
         incr bad;
         Fmt.pr "PARSE FAIL %s@." e
       | Ok (e : Difftest.Corpus.entry) -> (
           match Difftest.Corpus.replay e with
           | Ok () -> Fmt.pr "ok   %s@." (Difftest.Corpus.filename e)
           | Error msg ->
             incr bad;
             Fmt.pr "FAIL %s: %s@." (Difftest.Corpus.filename e) msg))
    entries;
  print_summary ();
  if !bad > 0 then exit 1

let run_mutant seed budget =
  let seed = Difftest.Harness.seed_from_env seed in
  let budget = Difftest.Harness.budget_from_env budget in
  let r =
    Difftest.Harness.run ~simplify:Difftest.Mutant.bad_simplify ~seed ~budget
      "blast"
  in
  match r.failures with
  | [] ->
    Fmt.pr "mutant SURVIVED %d runs — the oracle is blunt@." r.runs;
    exit 1
  | f :: _ ->
    Fmt.pr "mutant caught after <= %d runs:@.%a@." r.runs
      Difftest.Harness.pp_failure f;
    print_summary ()

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed (FUZZ_SEED overrides)")

let budget_arg default =
  Arg.(value & opt int default
       & info [ "budget" ] ~doc:"Cases per oracle (FUZZ_BUDGET overrides)")

let oracle_arg =
  Arg.(value & opt string "all"
       & info [ "oracle" ] ~doc:"Oracle to fuzz: all|blast|session|vmir|flip")

let corpus_arg =
  Arg.(value & opt (some string) None
       & info [ "corpus" ] ~doc:"Save failing cases into this directory")

let dir_arg =
  Arg.(value & opt string "test/corpus"
       & info [ "dir" ] ~doc:"Corpus directory to replay")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Fuzz the differential oracles")
    Term.(const run_fuzz $ oracle_arg $ seed_arg $ budget_arg 500 $ corpus_arg)

let replay_cmd =
  Cmd.v (Cmd.info "replay" ~doc:"Replay a regression corpus")
    Term.(const run_replay $ dir_arg)

let mutant_cmd =
  Cmd.v
    (Cmd.info "mutant"
       ~doc:"Verify the blast oracle catches a broken simplifier")
    Term.(const run_mutant $ seed_arg $ budget_arg 200)

let () =
  let info = Cmd.info "fuzz" ~doc:"Cross-layer differential fuzzing" in
  exit (Cmd.eval (Cmd.group info [ run_cmd; replay_cmd; mutant_cmd ]))
