(** Evaluation of {!Ir.Bil} statements against a {!State}: the shared
    core of the trace-based executors (BAP/Triton-class) and the
    static DSE engine (Angr-class).

    The memory model is the load-bearing capability difference:

    - [Concrete_only] — a load/store whose address depends on the
      input is forced to the address observed concretely; the
      index/data relation is lost (Table II's symbolic-array failures
      for BAP and Triton).
    - [Indexed] — a symbolic load of bounded nesting depth becomes an
      if-then-else chain over a bounded address window plus a range
      constraint, Angr-style; deeper chains concretize, which is why
      the level-two array still fails. *)

module E = Smt.Expr

type mem_mode =
  | Concrete_only
  | Indexed of { window : int; max_depth : int }

type hooks = {
  concrete_var : string -> int64;
      (** live concrete value of an architectural variable *)
  concrete_byte : int64 -> int;  (** live concrete memory *)
  resolve_addr : E.t -> int64;
      (** concretization of a symbolic address *)
  mode : mem_mode;
  keep_concrete_stores : bool;
      (** no replica runs alongside: shadow must hold constants too *)
}

module Phys = State.Phys

(* depth of symbolic-load nesting inside [e]; [depths] remembers the
   depth of previously built load results *)
let depth_of depths (e : E.t) =
  let best = ref 0 in
  let rec go e =
    (match Phys.find_opt depths (Obj.repr e) with
     | Some d -> if d > !best then best := d
     | None -> ());
    match e with
    | E.Var _ | E.Const _ -> ()
    | E.Unop (_, a) | E.Extract (_, _, a) | E.Zext (_, a) | E.Sext (_, a)
    | E.Fsqrt a | E.Fof_int a | E.Fto_int a -> go a
    | E.Binop (_, a, b) | E.Cmp (_, a, b) | E.Concat (a, b)
    | E.Fbin (_, a, b) | E.Fcmp (_, a, b) -> go a; go b
    | E.Ite (c, a, b) -> go c; go a; go b
  in
  go e;
  !best

type ctx = {
  state : State.t;
  hooks : hooks;
}

(** [session], when given, is attached to [state] so every constraint
    the executor records (branches, address bounds, fault guards) is
    interned into the solver session as it is built. *)
let make_ctx ?session state hooks =
  (match session with Some s -> State.attach_session state s | None -> ());
  { state; hooks }

let sym_load ctx addr_e n =
  let st = ctx.state and h = ctx.hooks in
  match addr_e with
  | E.Const (a, _) -> State.load_concrete st a n ~concrete_byte:h.concrete_byte
  | _ -> (
      let caddr = h.resolve_addr addr_e in
      match h.mode with
      | Concrete_only ->
        State.diag st (Error.Concretized_load caddr);
        State.load_concrete st caddr n ~concrete_byte:h.concrete_byte
      | Indexed { window; max_depth } ->
        let d = depth_of ctx.state.State.load_depths addr_e in
        if d >= max_depth then begin
          State.diag st (Error.Concretized_load caddr);
          State.load_concrete st caddr n ~concrete_byte:h.concrete_byte
        end
        else begin
          (* base candidate: the address with all inputs zeroed tends
             to be the table base; fall back to the concrete one *)
          let zero_env : Smt.Eval.env = Hashtbl.create 4 in
          List.iter
            (fun (v : E.var) -> Hashtbl.replace zero_env v.vname 0L)
            (E.vars addr_e);
          let a0 = Smt.Eval.eval zero_env addr_e in
          let lo = if Int64.unsigned_compare a0 caddr <= 0 then a0 else caddr in
          (* the concretely-observed address must sit inside the
             window; recenter when the zero-input estimate is far off *)
          let lo =
            if
              Int64.unsigned_compare caddr
                (Int64.add lo (Int64.of_int window))
              >= 0
            then Int64.sub caddr (Int64.of_int (window / 2))
            else lo
          in
          (* range guard, mirroring Angr's pointer-resolution bound *)
          State.add_constraint st ~kind:Address_bound ~pc:0L ~taken:true
            (E.and_
               (E.Cmp (Ule, E.Const (lo, 64), addr_e))
               (E.Cmp (Ult, addr_e, E.Const (Int64.add lo (Int64.of_int window), 64))));
          let default =
            State.load_concrete st caddr n ~concrete_byte:h.concrete_byte
          in
          let result = ref default in
          for i = window - 1 downto 0 do
            let c = Int64.add lo (Int64.of_int i) in
            let v = State.load_concrete st c n ~concrete_byte:h.concrete_byte in
            result :=
              State.charge st
                (State.mk_ite
                   (State.charge st (State.mk_cmp Eq addr_e (E.Const (c, 64))))
                   v !result)
          done;
          Phys.replace ctx.state.State.load_depths (Obj.repr !result) (d + 1);
          !result
        end)

let sym_store ctx addr_e n value =
  let st = ctx.state and h = ctx.hooks in
  let keep_concrete = h.keep_concrete_stores in
  match addr_e with
  | E.Const (a, _) -> State.store_concrete ~keep_concrete st a n value
  | _ ->
    let caddr = h.resolve_addr addr_e in
    State.diag st (Error.Concretized_store caddr);
    State.store_concrete ~keep_concrete st caddr n value

let rec eval_exp ctx (exp : Ir.Bil.exp) : E.t =
  let go = eval_exp ctx in
  let st = ctx.state and h = ctx.hooks in
  let ch e = State.charge st e in
  match exp with
  | Var (n, w) -> State.read_var st n w ~concrete:h.concrete_var
  | Int (v, w) -> E.Const (Int64.logand v (E.mask w), w)
  | Load (a, n) -> sym_load ctx (go a) n
  | Unop (op, a) -> ch (State.mk_unop op (go a))
  | Binop (op, a, b) -> ch (State.mk_binop op (go a) (go b))
  | Cmp (op, a, b) -> ch (State.mk_cmp op (go a) (go b))
  | Ite (c, a, b) -> ch (State.mk_ite (go c) (go a) (go b))
  | Extract (hi, lo, a) -> ch (State.mk_extract hi lo (go a))
  | Concat (a, b) -> ch (State.mk_concat (go a) (go b))
  | Zext (w, a) -> ch (State.mk_zext w (go a))
  | Sext (w, a) -> ch (State.mk_sext w (go a))
  | Fbin (op, a, b) -> ch (State.mk_fbin op (go a) (go b))
  | Fcmp (op, a, b) -> ch (State.mk_fcmp op (go a) (go b))
  | Fsqrt a -> ch (State.mk_fsqrt (go a))
  | Fof_int a -> ch (State.mk_fof_int (go a))
  | Fto_int a -> ch (State.mk_fto_int (go a))

(** Result of running one instruction's statement list. *)
type control =
  | Fallthrough
  | Cond of E.t * int64     (** 1-bit condition, taken-target *)
  | Jump of E.t             (** possibly computed target *)
  | Sys_enter
  | Unliftable of string

let run_stmts ctx (stmts : Ir.Bil.stmt list) : control =
  let st = ctx.state in
  let rec go = function
    | [] -> Fallthrough
    | Ir.Bil.Set (name, _w, e) :: rest ->
      State.write_var st name (eval_exp ctx e);
      go rest
    | Store (addr, n, v) :: rest ->
      sym_store ctx (eval_exp ctx addr) n (eval_exp ctx v);
      go rest
    | Cjmp (cond, target) :: _ -> Cond (eval_exp ctx cond, target)
    | Jmp e :: _ -> Jump (eval_exp ctx e)
    | Syscall :: _ -> Sys_enter
    | Special msg :: _ -> Unliftable msg
  in
  go stmts
