(** Static dynamic-symbolic-execution in the style of Angr: lift the
    whole image, explore states breadth-first under a simulated OS
    (SimOS), and solve the path predicate of any state that reaches
    the goal address.

    Two modes mirror the paper's two Angr columns:

    - [With_libs]: library code is executed symbolically like any
      other code; only raw syscalls are simulated.
    - [No_libs]: a subset of library functions is replaced by
      SimProcedure-style summaries — [fork] becomes a sequential
      (vfork-like) simulation, [sin]/[pow]/[rand]/[sha1]/[aes] return
      unconstrained values, [printf] is skipped.  Pure string routines
      run their real code (equivalent to a faithful SimProcedure).

    SimOS deliberately reproduces simuvex-era simplifications that the
    paper blames for wrong or partial results: unknown files open
    successfully with unconstrained contents, [getuid]-style syscalls
    return unconstrained integers, possible division faults are
    constrained away, and sockets are unsupported (a crash). *)

module E = Smt.Expr

exception Sim_crash of string

type mode = With_libs | No_libs

type config = {
  mode : mode;
  argv_width : int;
  max_steps : int;
  max_states : int;
  max_claims : int;
  solver : Smt.Solver.config;
  feasibility_budget : int;   (** conflict budget for fork pruning *)
  mem_window : int;
  max_constraint_nodes : int;
      (** refuse to bit-blast larger path predicates (crypto blow-up:
          the paper's "memory out") *)
  incremental : bool;
      (** run all feasibility and goal queries through one
          {!Smt.Session}: forked states inherit the encoded prefix of
          their parent, and repeated checks hit the query cache *)
}

let default_config mode =
  { mode;
    argv_width = 8;
    max_steps = 400_000;
    max_states = 2_000;
    max_claims = 3;
    solver = { Smt.Solver.default_config with conflict_budget = 20_000 };
    feasibility_budget = 1_000;
    mem_window = 64;
    max_constraint_nodes = 300_000;
    incremental = true }

(* ------------------------------------------------------------------ *)
(* SimOS                                                               *)
(* ------------------------------------------------------------------ *)

type fdesc =
  | SFile of { mutable fpos : int }   (** symbolic file: unconstrained *)
  | SPipe_r of int
  | SPipe_w of int

type simos = {
  mutable fds : (int * fdesc) list;
  mutable next_fd : int;
  mutable pipes : (int * E.t list ref) list;  (** FIFO byte exprs *)
  mutable next_pipe : int;
  mutable fresh : int;           (** unconstrained-variable counter *)
  mutable fork_ret : (int64 * (string * E.t) list) option;
      (** sequential-fork resume: (return pc, saved callee regs+rsp) *)
}

let simos_create () =
  { fds = []; next_fd = 3; pipes = []; next_pipe = 0; fresh = 0;
    fork_ret = None }

let simos_clone s =
  { s with
    fds = s.fds;
    pipes = List.map (fun (i, q) -> (i, ref !q)) s.pipes }

(* ------------------------------------------------------------------ *)
(* States                                                              *)
(* ------------------------------------------------------------------ *)

type sstate = {
  mutable pc : int64;
  st : State.t;
  os : simos;
}

type claim = {
  model : Smt.Solver.model;
  input : string;
  diags : Error.diag list;
}

type outcome = {
  claims : claim list;
  reached_goal : int;
  explored_states : int;
  steps : int;
  diags : Error.diag list;
  crashed : string option;
  budget_exhausted : bool;
  solver_unknowns : int;
  fp_seen : bool;
  symbolic_branches : int;
      (** forks on input-dependent conditions — zero means the input
          never reached a condition (the Es0 signature) *)
  solver_stats : Smt.Stats.t;
}

let clone_sstate s =
  { pc = s.pc; st = State.clone s.st; os = simos_clone s.os }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  image : Asm.Image.t;
  base_mem : Vm.Mem.t;           (** initial concrete memory (read-only) *)
  goal : int64;
  lib_funcs : (int64, string) Hashtbl.t;  (** lib function entry points *)
  session : Smt.Session.t option;  (** shared by every explored state *)
  stats : Smt.Stats.t;
  mutable total_steps : int;
  mutable spawned : int;
  mutable all_diags : Error.diag list;
  mutable unknowns : int;
  mutable fp_seen : bool;
  mutable forks : int;
}

(* every solver query goes through here: the session when incremental,
   a one-shot solve otherwise — same pipeline, same outcomes *)
let solve t ?config:cfg cs =
  let cfg = Option.value ~default:t.config.solver cfg in
  match t.session with
  | Some sess -> Smt.Session.check_assertions ~config:cfg sess cs
  | None -> Smt.Solver.solve ~config:cfg ~stats:t.stats cs

let fresh_var st os prefix width =
  os.fresh <- os.fresh + 1;
  ignore st;
  E.var ~width (Printf.sprintf "u_%s_%d" prefix os.fresh)

let reg_name = Isa.Reg.show

let get_reg t s r =
  State.read_var s.st (reg_name r) 64 ~concrete:(fun _ -> 0L)
  |> fun e -> ignore t; e

let set_reg s r e = State.write_var s.st (reg_name r) e

let zero_env_of e =
  let env : Smt.Eval.env = Hashtbl.create 4 in
  List.iter (fun (v : E.var) -> Hashtbl.replace env v.vname 0L) (E.vars e);
  env

let concretize s (e : E.t) =
  match e with
  | E.Const (v, _) -> v
  | _ ->
    State.diag s.st (Error.Concretized_store 0L);
    Smt.Eval.eval (zero_env_of e) e

let hooks_of t (_s : sstate) =
  { Sym_exec.concrete_var = (fun _ -> 0L);
    concrete_byte = (fun a -> Vm.Mem.read_u8 t.base_mem a);
    resolve_addr =
      (fun e ->
         try Smt.Eval.eval (zero_env_of e) e with _ -> 0L);
    mode = Sym_exec.Indexed { window = t.config.mem_window; max_depth = 1 };
    keep_concrete_stores = true }

(* read a NUL-terminated concrete string via the state's memory *)
let read_cstring t s addr =
  let b = Buffer.create 16 in
  let rec go i =
    if i > 256 then ()
    else
      let a = Int64.add addr (Int64.of_int i) in
      let byte =
        match Hashtbl.find_opt s.st.State.shadow a with
        | Some (E.Const (v, _)) -> Int64.to_int v land 0xff
        | Some _ -> 0 (* symbolic filename byte: stop *)
        | None -> Vm.Mem.read_u8 t.base_mem a
      in
      if byte <> 0 then begin
        Buffer.add_char b (Char.chr byte);
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let load t s addr n =
  let ctx = Sym_exec.make_ctx s.st (hooks_of t s) in
  Sym_exec.sym_load ctx addr n

let store t s addr n v =
  let ctx = Sym_exec.make_ctx s.st (hooks_of t s) in
  Sym_exec.sym_store ctx addr n v

(* pop the (concrete) return address and jump there *)
let do_return t s =
  let rsp = concretize s (get_reg t s RSP) in
  let ret = load t s (E.Const (rsp, 64)) 8 in
  set_reg s RSP (E.Const (Int64.add rsp 8L, 64));
  s.pc <- concretize s ret

(* one unconstrained read of [len] bytes into memory at [addr] *)
let unconstrained_bytes t s ~what addr len =
  State.diag s.st (Error.Unconstrained_input what);
  for i = 0 to len - 1 do
    let b = fresh_var s.st s.os what 8 in
    store t s (E.Const (Int64.add addr (Int64.of_int i), 64)) 1 b
  done

(* ------------------------------------------------------------------ *)
(* Raw syscalls                                                        *)
(* ------------------------------------------------------------------ *)

type step_result = Running | Redirected | Dead | Goal

let simos_syscall t (s : sstate) : step_result =
  let os = s.os in
  let nr_e = get_reg t s RAX in
  let arg i =
    get_reg t s (match i with
        | 0 -> Isa.Reg.RDI | 1 -> RSI | 2 -> RDX | 3 -> R10 | 4 -> R8
        | _ -> R9)
  in
  let ret e = set_reg s RAX e in
  let unconstrained what =
    State.diag s.st (Error.Unconstrained_syscall what);
    ret (fresh_var s.st os what 64)
  in
  match nr_e with
  | E.Const (nr, _) -> (
      let nr = Int64.to_int nr in
      match Libc.Sysno.table |> List.find_opt (fun (_, n) -> n = nr) with
      | None -> unconstrained (Printf.sprintf "sys_%d" nr); Running
      | Some (name, _) -> (
          match name with
          | "exit" -> (
              match os.fork_ret with
              | Some (ret_pc, saved) ->
                (* sequential fork: the child finished; resume the
                   parent at the fork return site *)
                os.fork_ret <- None;
                List.iter (fun (n, v) -> State.write_var s.st n v) saved;
                ret (E.Const (70L, 64));
                s.pc <- ret_pc;
                Redirected
              | None -> Dead)
          | "read" -> (
              let fd = Int64.to_int (concretize s (arg 0)) in
              let buf = concretize s (arg 1) in
              let len = Int64.to_int (concretize s (arg 2)) in
              match List.assoc_opt fd os.fds with
              | Some (SPipe_r p) -> (
                  match List.assoc_opt p os.pipes with
                  | Some q when List.length !q >= len ->
                    let taken = List.filteri (fun i _ -> i < len) !q in
                    q := List.filteri (fun i _ -> i >= len) !q;
                    List.iteri
                      (fun i b ->
                         store t s
                           (E.Const (Int64.add buf (Int64.of_int i), 64))
                           1 b)
                      taken;
                    ret (E.Const (Int64.of_int len, 64));
                    Running
                  | _ ->
                    unconstrained_bytes t s ~what:"pipe" buf len;
                    ret (E.Const (Int64.of_int len, 64));
                    Running)
              | Some (SFile f) ->
                f.fpos <- f.fpos + len;
                unconstrained_bytes t s ~what:"file" buf len;
                ret (E.Const (Int64.of_int len, 64));
                Running
              | _ ->
                unconstrained_bytes t s ~what:"fd" buf len;
                ret (E.Const (Int64.of_int len, 64));
                Running)
          | "write" -> (
              let fd = Int64.to_int (concretize s (arg 0)) in
              let buf = concretize s (arg 1) in
              let len = Int64.to_int (concretize s (arg 2)) in
              (match List.assoc_opt fd os.fds with
               | Some (SPipe_w p) -> (
                   match List.assoc_opt p os.pipes with
                   | Some q ->
                     for i = 0 to len - 1 do
                       q :=
                         !q
                         @ [ load t s
                               (E.Const (Int64.add buf (Int64.of_int i), 64))
                               1 ]
                     done
                   | None -> ())
               | _ -> () (* stdout / symbolic files: discard *));
              ret (E.Const (Int64.of_int len, 64));
              Running)
          | "open" ->
            let path = read_cstring t s (concretize s (arg 0)) in
            ignore path;
            (* simuvex-style: any file opens, contents unconstrained *)
            let fd = os.next_fd in
            os.next_fd <- fd + 1;
            os.fds <- (fd, SFile { fpos = 0 }) :: os.fds;
            ret (E.Const (Int64.of_int fd, 64));
            Running
          | "close" -> ret (E.Const (0L, 64)); Running
          | "lseek" -> ret (arg 1); Running
          | "pipe" ->
            let p = os.next_pipe in
            os.next_pipe <- p + 1;
            os.pipes <- (p, ref []) :: os.pipes;
            let rfd = os.next_fd and wfd = os.next_fd + 1 in
            os.next_fd <- os.next_fd + 2;
            os.fds <- (rfd, SPipe_r p) :: (wfd, SPipe_w p) :: os.fds;
            let fds_ptr = concretize s (arg 0) in
            store t s (E.Const (fds_ptr, 64)) 4 (E.Const (Int64.of_int rfd, 32));
            store t s (E.Const (Int64.add fds_ptr 4L, 64)) 4
              (E.Const (Int64.of_int wfd, 32));
            ret (E.Const (0L, 64));
            Running
          | "fork" ->
            (* raw fork is beyond SimOS (the paper's unsupported-
               syscall case): press on with an arbitrary return *)
            State.diag s.st (Error.Unsupported_syscall "fork");
            ret (fresh_var s.st os "fork" 64);
            Running
          | "wait4" -> ret (E.Const (2L, 64)); Running
          | "getpid" -> ret (E.Const (1L, 64)); Running
          | "getuid" -> unconstrained "getuid"; Running
          | "time" ->
            (* modelled concretely, like angr's clock *)
            ret (E.Const (Vm.Machine.default_config.now, 64));
            Running
          | "gettimeofday" ->
            let ptr = concretize s (arg 0) in
            store t s (E.Const (ptr, 64)) 8
              (E.Const (Vm.Machine.default_config.now, 64));
            store t s (E.Const (Int64.add ptr 8L, 64)) 8 (E.Const (0L, 64));
            ret (E.Const (0L, 64));
            Running
          | "rt_sigaction" ->
            (* handler recorded nowhere: fault delivery is unsupported *)
            State.diag s.st (Error.Unsupported_syscall "rt_sigaction");
            ret (E.Const (0L, 64));
            Running
          | "getrandom" ->
            let buf = concretize s (arg 0) in
            let len = Int64.to_int (concretize s (arg 1)) in
            unconstrained_bytes t s ~what:"random" buf len;
            ret (arg 1);
            Running
          | "nanosleep" -> ret (E.Const (0L, 64)); Running
          | "socket" | "connect" ->
            raise (Sim_crash "socket layer is not modelled")
          | "thread_create" ->
            (* the spawned thread never runs under SimOS *)
            State.diag s.st (Error.Unsupported_syscall "thread_create");
            ret (fresh_var s.st os "thread_create" 64);
            Running
          | "thread_join" -> ret (E.Const (0L, 64)); Running
          | "yield" -> ret (E.Const (0L, 64)); Running
          | "thread_exit" -> Dead
          | _ -> unconstrained name; Running))
  | _ ->
    State.diag s.st Error.Symbolic_syscall_number;
    ret (fresh_var s.st os "sysnum" 64);
    Running

(* ------------------------------------------------------------------ *)
(* No-libs summaries                                                   *)
(* ------------------------------------------------------------------ *)

(* names summarised in No_libs mode; everything else (string routines,
   wrappers) executes its real code *)
let summarised =
  [ "fork"; "sin"; "pow"; "fabs"; "sqrt"; "srand"; "rand"; "sha1";
    "aes128_encrypt"; "printf"; "puts"; "putchar"; "http_get" ]

let run_summary t (s : sstate) name : step_result =
  let os = s.os in
  let unconstrained_ret () =
    State.diag s.st (Error.Unconstrained_external name);
    set_reg s RAX (fresh_var s.st os name 64);
    do_return t s;
    Running
  in
  let unconstrained_fp () =
    State.diag s.st (Error.Unconstrained_external name);
    State.write_var s.st "XMM0" (fresh_var s.st os name 64);
    do_return t s;
    Running
  in
  match name with
  | "sin" | "pow" | "fabs" | "sqrt" -> unconstrained_fp ()
  | "rand" -> unconstrained_ret ()
  | "srand" ->
    set_reg s RAX (E.Const (0L, 64));
    do_return t s;
    Running
  | "sha1" | "aes128_encrypt" ->
    (* output buffer untouched — the summary knows nothing *)
    unconstrained_ret ()
  | "printf" | "puts" | "putchar" ->
    set_reg s RAX (E.Const (0L, 64));
    do_return t s;
    Running
  | "http_get" -> raise (Sim_crash "http_get needs the socket layer")
  | "fork" ->
    (* sequential (vfork-like) simulation: run the child to its exit,
       then resume here as the parent *)
    let rsp = concretize s (get_reg t s RSP) in
    let ret_addr = concretize s (load t s (E.Const (rsp, 64)) 8) in
    let saved =
      (reg_name Isa.Reg.RSP, E.Const (Int64.add rsp 8L, 64))
      :: List.map
        (fun r -> (reg_name r, get_reg t s r))
        [ Isa.Reg.RBX; RBP; R12; R13; R14; R15 ]
    in
    s.os.fork_ret <- Some (ret_addr, saved);
    set_reg s RAX (E.Const (0L, 64));  (* child side first *)
    set_reg s RSP (E.Const (Int64.add rsp 8L, 64));
    s.pc <- ret_addr;
    Running
  | _ -> unconstrained_ret ()

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let input_of_model ~width (model : Smt.Solver.model) =
  let b = Bytes.create width in
  for i = 0 to width - 1 do
    let v =
      match List.assoc_opt (Printf.sprintf "argv1_%d" i) model with
      | Some x -> Int64.to_int (Int64.logand x 0xffL)
      | None -> Char.code 'x'
    in
    Bytes.set b i (Char.chr v)
  done;
  let str = Bytes.to_string b in
  match String.index_opt str '\000' with
  | Some 0 -> "\001"
  | Some i -> String.sub str 0 i
  | None -> str

let feasible t (s : sstate) =
  let cs = State.path_condition s.st in
  if List.exists E.contains_fp cs then true (* cannot check: assume *)
  else if s.st.State.built_cost > t.config.max_constraint_nodes then true
  else
    match
      solve t
        ~config:
          { t.config.solver with conflict_budget = t.config.feasibility_budget }
        cs
    with
    | Smt.Solver.Unsat -> false
    | _ -> true

let m_dse_steps = Telemetry.Metrics.counter "dse.steps"
let m_dse_states = Telemetry.Metrics.counter "dse.states"
let m_dse_forks = Telemetry.Metrics.counter "dse.forks"

(** Explore [image] looking for a path into the [goal] symbol. *)
let explore ?goal_symbol:(goal = "bomb") (config : config)
    (image : Asm.Image.t) : outcome =
  Telemetry.with_span "concolic.dse" @@ fun () ->
  let run_config =
    { Vm.Machine.default_config with
      argv = [ "prog"; String.make config.argv_width 'x' ] }
  in
  let base_mem, init_rsp, argv_layout =
    Vm.Machine.fresh_memory ~config:run_config image
  in
  let goal_addr = Asm.Image.symbol_addr image goal in
  let lib_funcs = Hashtbl.create 64 in
  if config.mode = No_libs then
    List.iter
      (fun (sym : Asm.Image.symbol) ->
         if sym.from_lib && sym.kind = Func && List.mem sym.name summarised
         then Hashtbl.replace lib_funcs sym.addr sym.name)
      image.symbols;
  let stats = Smt.Stats.create () in
  let session =
    if config.incremental then
      Some (Smt.Session.create ~config:config.solver ~stats ())
    else None
  in
  let t =
    { config; image; base_mem; goal = goal_addr; lib_funcs;
      session; stats;
      total_steps = 0; spawned = 0; all_diags = []; unknowns = 0;
      fp_seen = false; forks = 0 }
  in
  (* initial state; forks clone it, so they share the session *)
  let s0 =
    { pc = image.entry; st = State.create ?session (); os = simos_create () }
  in
  set_reg s0 RSP (E.Const (init_rsp, 64));
  let argv1_addr, _argv1_len = List.nth argv_layout 1 in
  State.symbolize_region s0.st ~prefix:"argv1" argv1_addr config.argv_width;
  let queue = Queue.create () in
  Queue.add s0 queue;
  t.spawned <- 1;
  let claims = ref [] in
  let reached = ref 0 in
  let crashed = ref None in
  let budget_hit = ref false in
  (try
     while not (Queue.is_empty queue) do
       if t.total_steps >= config.max_steps then begin
         budget_hit := true;
         raise Exit
       end;
       let s = Queue.take queue in
       let live = ref true in
       while !live do
         if t.total_steps >= config.max_steps then begin
           budget_hit := true;
           raise Exit
         end;
         t.total_steps <- t.total_steps + 1;
         (* amortized cancellation/deadline poll for the DSE walk; the
            per-instruction budgets are charged by the lifter and
            session layers this loop calls into *)
         if t.total_steps land 0xFF = 0 then Robust.Meter.checkpoint_ambient ();
         if Int64.equal s.pc t.goal then begin
           incr reached;
           let cs = State.path_condition s.st in
           if List.exists E.contains_fp cs then begin
             t.fp_seen <- true;
             t.all_diags <- Error.Fp_constraint :: t.all_diags
           end;
           let too_large = s.st.State.built_cost > config.max_constraint_nodes in
           let has_unconstrained_external =
             List.exists
               (function Error.Unconstrained_external _ -> true | _ -> false)
               s.st.State.diags
           in
           (match
              if too_large then Smt.Solver.Unknown Smt.Solver.Budget
              else
                match solve t cs with
                | Smt.Solver.Unknown Smt.Solver.Fp_unsupported
                  when has_unconstrained_external ->
                  (* angr-style aggression: FP terms over summarised
                     externals are treated as freely assignable *)
                  solve t
                    ~config:
                      { config.solver with
                        enable_fp_search = true;
                        fp_search_iters = 20_000 }
                    cs
                | r -> r
            with
            | Smt.Solver.Sat model ->
              claims :=
                { model;
                  input = input_of_model ~width:config.argv_width model;
                  diags = s.st.State.diags }
                :: !claims;
              if List.length !claims >= config.max_claims then raise Exit
            | Smt.Solver.Unsat -> ()
            | Smt.Solver.Unknown Smt.Solver.Fp_unsupported ->
              t.fp_seen <- true;
              t.all_diags <- Error.Fp_constraint :: t.all_diags;
              t.unknowns <- t.unknowns + 1
            | Smt.Solver.Unknown _ ->
              t.unknowns <- t.unknowns + 1;
              t.all_diags <- Error.Solver_budget :: t.all_diags);
           live := false;
           t.all_diags <- s.st.State.diags @ t.all_diags
         end
         else begin
           (* No-libs summaries intercept library entry points *)
           match
             if config.mode = No_libs then Hashtbl.find_opt t.lib_funcs s.pc
             else None
           with
           | Some name -> (
               match run_summary t s name with
               | Running | Redirected -> ()
               | Dead | Goal ->
                 live := false;
                 t.all_diags <- s.st.State.diags @ t.all_diags)
           | None -> (
               match Asm.Image.decode_at image s.pc with
               | exception _ ->
                 (* jumped into the weeds *)
                 live := false;
                 t.all_diags <- s.st.State.diags @ t.all_diags
               | insn, next ->
                 let ctx = Sym_exec.make_ctx s.st (hooks_of t s) in
                 let finish_state () =
                   (if Telemetry.Log.enabled Telemetry.Log.Debug then
                      Telemetry.Log.debugf "dse: state dies at 0x%Lx (%s)" s.pc
                        (try Isa.Pp.to_string (fst (Asm.Image.decode_at t.image s.pc))
                         with _ -> "?"));
                   live := false;
                   t.all_diags <- s.st.State.diags @ t.all_diags
                 in
                 (match insn with
                  | Isa.Insn.Idiv (w, o) -> (
                      let d =
                        Sym_exec.eval_exp ctx (Ir.Lifter.read_operand w o)
                      in
                      match d with
                      | E.Const (0L, _) -> finish_state ()
                      | E.Const _ ->
                        ignore
                          (Sym_exec.run_stmts ctx
                             (Ir.Lifter.lift Ir.Lifter.full ~next insn));
                        s.pc <- next
                      | _ ->
                        (* constrain the fault away, as angr does *)
                        State.diag s.st Error.Fault_path_pruned;
                        State.add_constraint s.st ~kind:State.Fault_guard
                          ~pc:s.pc ~taken:true
                          (E.not_
                             (State.mk_cmp Eq d
                                (E.Const (0L, E.width_of d))));
                        ignore
                          (Sym_exec.run_stmts ctx
                             (Ir.Lifter.lift Ir.Lifter.full ~next insn));
                        s.pc <- next)
                  | _ -> (
                      let stmts = Ir.Lifter.lift Ir.Lifter.full ~next insn in
                      match Sym_exec.run_stmts ctx stmts with
                      | Sym_exec.Fallthrough -> s.pc <- next
                      | Sym_exec.Cond (cond, target) -> (
                          match cond with
                          | E.Const (1L, _) -> s.pc <- target
                          | E.Const (_, _) -> s.pc <- next
                          | _ ->
                            (* fork: taken child queued, fallthrough
                               continues here *)
                            t.forks <- t.forks + 1;
                            if t.spawned < config.max_states then begin
                              let taken = clone_sstate s in
                              State.add_constraint taken.st ~pc:s.pc
                                ~taken:true cond;
                              taken.pc <- target;
                              if feasible t taken then begin
                                t.spawned <- t.spawned + 1;
                                Queue.add taken queue
                              end
                            end
                            else t.all_diags <- Error.State_budget :: t.all_diags;
                            State.add_constraint s.st ~pc:s.pc ~taken:false
                              (E.not_ cond);
                            if not (feasible t s) then finish_state ()
                            else s.pc <- next)
                      | Sym_exec.Jump tgt -> (
                          match tgt with
                          | E.Const (a, _) -> s.pc <- a
                          | _ ->
                            State.diag s.st Error.Symbolic_jump_target;
                            (* concretize like a pointer: zero inputs *)
                            let a =
                              try Smt.Eval.eval (zero_env_of tgt) tgt
                              with _ -> 0L
                            in
                            if Int64.equal a 0L then finish_state ()
                            else s.pc <- a)
                      | Sym_exec.Sys_enter -> (
                          match simos_syscall t s with
                          | Running -> s.pc <- next
                          | Redirected -> ()
                          | Dead | Goal -> finish_state ())
                      | Sym_exec.Unliftable _ ->
                        (* hlt *)
                        finish_state ())))
         end
       done
     done
   with
   | Exit -> ()
   | Sim_crash msg ->
     crashed := Some msg;
     t.all_diags <- Error.Engine_crash msg :: t.all_diags);
  Telemetry.Metrics.add m_dse_steps t.total_steps;
  Telemetry.Metrics.add m_dse_states t.spawned;
  Telemetry.Metrics.add m_dse_forks t.forks;
  (* surface degradation-ladder outcomes as diags so grading and
     --explain can attribute a P (degraded) cell to its rung *)
  List.iter
    (fun rung -> t.all_diags <- Error.Solver_degraded rung :: t.all_diags)
    (Smt.Stats.degraded_rungs t.stats);
  { claims = List.rev !claims;
    reached_goal = !reached;
    explored_states = t.spawned;
    steps = t.total_steps;
    diags = List.sort_uniq Error.compare_diag t.all_diags;
    crashed = !crashed;
    budget_exhausted = !budget_hit;
    solver_unknowns = t.unknowns;
    fp_seen = t.fp_seen;
    symbolic_branches = t.forks;
    solver_stats = t.stats }
