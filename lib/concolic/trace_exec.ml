(** Trace-based symbolic execution (the conceptual framework of the
    paper's Figure 1): replay a recorded trace, maintain symbolic
    state for the followed threads, and extract one constraint per
    branch with a symbolic condition.

    A concrete *replica* of the traced machine runs alongside the
    symbolic state: every event re-seeds a scratch CPU from its
    recorded pre-state and re-executes against a private memory image,
    so the executor can answer "what is the concrete value here?"
    for any address — the concolic half of concolic execution. *)

module E = Smt.Expr

type thread_filter = All_threads | Only_thread of int

type signal_model =
  | Fault_branch  (** model #DE as a conditional on the divisor (BAP) *)
  | Abort_on_signal  (** lose the trace at the fault (Triton) *)

type config = {
  features : Ir.Lifter.features;
  mem_mode : Sym_exec.mem_mode;
  taint_policy : Taint.policy;
  threads : thread_filter;
  signals : signal_model;
  lift_stack_ops : bool;
      (** when false, tainted push/pop cannot be lifted (BAP's gap) *)
  symbolic_syscalls : string list;
      (** extension hook: syscall names whose results become symbolic
          variables (e.g. ["time"]) — empty for all paper profiles *)
}

let bap_like_config =
  { features = Ir.Lifter.no_fp;
    mem_mode = Sym_exec.Concrete_only;
    taint_policy = Taint.pin_policy;
    threads = All_threads;
    signals = Fault_branch;
    lift_stack_ops = false;
    symbolic_syscalls = [] }

let triton_like_config =
  { features = Ir.Lifter.no_fp;
    mem_mode = Sym_exec.Concrete_only;
    taint_policy = Taint.pin_policy;
    threads = Only_thread 1;
    signals = Abort_on_signal;
    lift_stack_ops = true;
    symbolic_syscalls = [] }

type branch = {
  seq : int;             (** position within the ordered constraint list *)
  pc : int64;
  cond : E.t;            (** as recorded on the path (already oriented) *)
  taken : bool;
}

type path = {
  constraints : (E.t * State.info) list;  (** execution order *)
  branches : branch list;                 (** negatable suffix points *)
  sym_jumps : (int64 * E.t * int64) list; (** pc, target expr, concrete *)
  diags : Error.diag list;
  taint : Taint.result;
  input_env : Smt.Eval.env;               (** concrete input binding *)
  trace : Trace.t;
}

(** Symbolic input sources: named byte regions. *)
type source = { s_addr : int64; s_len : int; s_prefix : string }

(** argv.(1) as the symbolic input, named [argv1_0 .. argv1_{n-1}]
    (NUL excluded so its terminator stays concrete — tools fixing the
    length do exactly this; [include_nul] widens it). *)
let argv1_source_opt ?(include_nul = false) (trace : Trace.t) =
  match Trace.argv_region trace 1 with
  | None -> None
  | Some (addr, len) ->
    Some
      { s_addr = addr;
        s_len = (if include_nul then len else len - 1);
        s_prefix = "argv1" }

let argv1_source ?include_nul (trace : Trace.t) =
  match argv1_source_opt ?include_nul trace with
  | Some s -> s
  | None -> invalid_arg "argv1_source: traced program has no argv.(1)"

let m_constraints = Telemetry.Metrics.counter "concolic.constraints"
let m_sym_branches = Telemetry.Metrics.counter "concolic.sym_branches"

let run (config : config) ?session ?(sources : source list option)
    (trace : Trace.t) : path =
  Telemetry.with_span "concolic.trace_exec" @@ fun () ->
  let sources =
    match sources with
    | Some s -> s
    | None -> (
        (* a trace with no argv.(1) runs fully concrete rather than
           aborting the cell *)
        match argv1_source_opt trace with
        | Some s -> [ s ]
        | None ->
            Telemetry.Log.warnf
              "trace_exec: traced program has no argv.(1); no symbolic \
               sources";
            [])
  in
  (* --- concrete replica --- *)
  let mem, _rsp, _layout =
    Vm.Machine.fresh_memory ~config:trace.config trace.image
  in
  let scratch = Vm.Cpu.create () in
  (* --- symbolic state --- *)
  let st = State.create ?session () in
  let input_env : Smt.Eval.env = Hashtbl.create 32 in
  List.iter
    (fun { s_addr; s_len; s_prefix } ->
       State.symbolize_region st ~prefix:s_prefix s_addr s_len;
       for i = 0 to s_len - 1 do
         Hashtbl.replace input_env
           (Printf.sprintf "%s_%d" s_prefix i)
           (Int64.of_int
              (Vm.Mem.read_u8 mem (Int64.add s_addr (Int64.of_int i))))
       done)
    sources;
  (* kernel-object shadow for covert propagation *)
  let kobj : (int * int, E.t) Hashtbl.t = Hashtbl.create 64 in
  let follow_kernel =
    config.taint_policy.through_files || config.taint_policy.through_pipes
    || config.taint_policy.through_sockets
  in
  (* taint pre-pass (used for the stack-op gap and for statistics) *)
  let taint =
    Taint.analyze ~policy:config.taint_policy
      ~sources:(List.map (fun s -> (s.s_addr, s.s_len)) sources)
      trace
  in
  (* current event context for the hooks *)
  let cur_event : Vm.Event.exec option ref = ref None in
  let resolve_addr e =
    try Smt.Eval.eval input_env e
    with Smt.Eval.Unbound _ ->
      (* symbolic value we did not create (defensive): zero it *)
      0L
  in
  let hooks =
    { Sym_exec.concrete_var =
        (fun name ->
           match !cur_event with
           | None -> 0L
           | Some e -> (
               match Isa.Reg.of_name name with
               | r -> e.regs_before.(Isa.Reg.index r)
               | exception _ -> (
                   (* XMM or flag *)
                   match name with
                   | "XMM0" | "XMM1" | "XMM2" | "XMM3" | "XMM4" | "XMM5"
                   | "XMM6" | "XMM7" ->
                     Int64.bits_of_float
                       e.xmm_before.(Char.code name.[3] - Char.code '0')
                   | "ZF" -> Int64.of_int (e.flags_before land 1)
                   | "SF" -> Int64.of_int ((e.flags_before lsr 1) land 1)
                   | "CF" -> Int64.of_int ((e.flags_before lsr 2) land 1)
                   | "OF" -> Int64.of_int ((e.flags_before lsr 3) land 1)
                   | "PF" -> Int64.of_int ((e.flags_before lsr 4) land 1)
                   | _ -> 0L)));
      concrete_byte = (fun a -> Vm.Mem.read_u8 mem a);
      resolve_addr;
      mode = config.mem_mode;
      keep_concrete_stores = false }
  in
  let ctx = Sym_exec.make_ctx st hooks in
  let branches = ref [] and sym_jumps = ref [] in
  let aborted = ref false in
  let last_rsp = ref 0L in
  let followed tid =
    match config.threads with
    | All_threads -> true
    | Only_thread t -> tid = t
  in
  (* replay one exec event concretely on the replica *)
  let replay (e : Vm.Event.exec) =
    Array.blit e.regs_before 0 scratch.Vm.Cpu.regs 0 Isa.Reg.count;
    Array.blit e.xmm_before 0 scratch.Vm.Cpu.xmm 0 Isa.Reg.xmm_count;
    Vm.Cpu.unpack_flags scratch e.flags_before;
    scratch.Vm.Cpu.pc <- e.pc;
    (* fall-through address: encoded size past pc *)
    let size = String.length (Isa.Codec.encode e.insn) in
    let next_pc = Int64.add e.pc (Int64.of_int size) in
    (match Vm.Cpu.execute scratch mem ~next_pc e.insn with
     | _ -> ());
    next_pc
  in
  let fallthrough (e : Vm.Event.exec) =
    Int64.add e.pc (Int64.of_int (String.length (Isa.Codec.encode e.insn)))
  in
  let havoc_written (e : Vm.Event.exec) =
    (* lift failed: written state becomes its concrete value *)
    let acc = Vm.Access.of_insn e.regs_before e.insn in
    List.iter
      (fun r ->
         State.write_var st (Isa.Reg.show r)
           (E.Const (scratch.Vm.Cpu.regs.(Isa.Reg.index r), 64)))
      acc.w_regs;
    List.iter
      (fun x ->
         State.write_var st (Isa.Reg.show_xmm x)
           (E.Const
              (Int64.bits_of_float scratch.Vm.Cpu.xmm.(Isa.Reg.xmm_index x),
               64)))
      acc.w_xmm;
    List.iter
      (fun (a, n) ->
         for i = 0 to n - 1 do
           Hashtbl.remove st.shadow (Int64.add a (Int64.of_int i))
         done)
      acc.w_mem;
    if acc.w_flags then
      List.iter
        (fun f -> Hashtbl.remove st.env f)
        [ "ZF"; "SF"; "CF"; "OF"; "PF" ]
  in
  Trace.iteri trace
    (fun idx ev ->
       (* cooperative cancellation/deadline poll, amortized over the
          replay loop (budget charging itself happens in the lifter
          and taint layers this loop drives) *)
       if idx land 0xFFF = 0 then Robust.Meter.checkpoint_ambient ();
       match ev with
       | Vm.Event.Exec e ->
         cur_event := Some e;
         last_rsp := e.regs_before.(Isa.Reg.index Isa.Reg.RSP);
         let follow = followed e.tid && not !aborted in
         let next = fallthrough e in
         (* symbolic step first (it reads pre-state), then replay *)
         if follow then begin
           let stack_gap =
             (not config.lift_stack_ops)
             && taint.Taint.tainted.(idx)
             && (match e.insn with
                 | Isa.Insn.Push _ | Isa.Insn.Pop _ -> true
                 | _ -> false)
           in
           if stack_gap then begin
             State.diag st
               (Error.Lift_failure
                  (Printf.sprintf "tainted stack op %s"
                     (Isa.Insn.mnemonic e.insn)));
             ignore (replay e);
             havoc_written e
           end
           else
             match e.insn with
             | Isa.Insn.Idiv (w, o) ->
               (* the implicit #DE branch — only a tool that models
                  fault delivery (BAP-style) records it *)
               let d_exp =
                 Sym_exec.eval_exp ctx (Ir.Lifter.read_operand w o)
               in
               let faulted = not (Int64.equal e.next_pc next) in
               let zero = E.Const (0L, E.width_of d_exp) in
               (match d_exp with
                | E.Const _ -> ()
                | _ when config.signals <> Fault_branch -> ()
                | _ ->
                  State.add_constraint st ~kind:Fault_guard ~pc:e.pc
                    ~taken:faulted
                    (if faulted then State.mk_cmp Eq d_exp zero
                     else E.not_ (State.mk_cmp Eq d_exp zero));
                  branches :=
                    { seq = List.length st.constraints - 1;
                      pc = e.pc;
                      cond =
                        (if faulted then State.mk_cmp Eq d_exp zero
                         else E.not_ (State.mk_cmp Eq d_exp zero));
                      taken = faulted }
                    :: !branches);
               if not faulted then begin
                 let stmts = Ir.Lifter.lift config.features ~next e.insn in
                 ignore (Sym_exec.run_stmts ctx stmts)
               end;
               ignore (replay e)
             | _ -> (
                 let stmts = Ir.Lifter.lift config.features ~next e.insn in
                 match Sym_exec.run_stmts ctx stmts with
                 | Sym_exec.Fallthrough | Sym_exec.Sys_enter ->
                   ignore (replay e)
                 | Sym_exec.Cond (cond, target) ->
                   (match cond with
                    | E.Const _ -> ()
                    | _ ->
                      let taken = Int64.equal e.next_pc target in
                      let oriented = if taken then cond else E.not_ cond in
                      State.add_constraint st ~pc:e.pc ~taken oriented;
                      branches :=
                        { seq = List.length st.constraints - 1;
                          pc = e.pc; cond = oriented; taken }
                        :: !branches);
                   ignore (replay e)
                 | Sym_exec.Jump tgt ->
                   (match tgt with
                    | E.Const _ -> ()
                    | _ ->
                      State.diag st Error.Symbolic_jump_target;
                      sym_jumps := (e.pc, tgt, e.next_pc) :: !sym_jumps);
                   ignore (replay e)
                 | Sym_exec.Unliftable msg ->
                   State.diag st (Error.Lift_failure msg);
                   ignore (replay e);
                   havoc_written e)
         end
         else ignore (replay e)
       | Vm.Event.Sys { tid; record; _ } ->
         (* a tainted string passed as a syscall *argument* (open's
            path, say) is input leaving through the kernel: contextual
            use the tool will not model *)
         (if record.name = "open" then begin
            let addr = record.args.(0) in
            let rec scan i =
              if i > 64 then ()
              else
                let a = Int64.add addr (Int64.of_int i) in
                if Vm.Mem.read_u8 mem a = 0 then ()
                else if Hashtbl.mem st.State.shadow a then
                  (match Hashtbl.find_opt st.State.shadow a with
                   | Some (E.Const _) | None -> scan (i + 1)
                   | Some _ -> State.diag st Error.Taint_lost_in_kernel)
                else scan (i + 1)
            in
            scan 0
          end);
         (* the replica memory gets kernel read effects; the symbolic
            state gets them too (policy-dependent provenance) *)
         List.iter
           (fun eff ->
              match eff with
              | Vm.Event.Eff_read { obj; off; addr; len; data } ->
                Vm.Mem.write_bytes mem addr data;
                for i = 0 to len - 1 do
                  let a = Int64.add addr (Int64.of_int i) in
                  match
                    if follow_kernel then Hashtbl.find_opt kobj (obj, off + i)
                    else None
                  with
                  | Some e -> Hashtbl.replace st.shadow a e
                  | None -> Hashtbl.remove st.shadow a
                done
              | Vm.Event.Eff_write { obj; off; addr; len } ->
                let lost = ref false in
                for i = 0 to len - 1 do
                  let a = Int64.add addr (Int64.of_int i) in
                  match Hashtbl.find_opt st.shadow a with
                  | Some e ->
                    if follow_kernel then
                      Hashtbl.replace kobj (obj, off + i) e
                    else lost := true
                  | None ->
                    if follow_kernel then Hashtbl.remove kobj (obj, off + i)
                done;
                if !lost then State.diag st Error.Taint_lost_in_kernel
              | Vm.Event.Eff_spawn _ -> ())
           record.effects;
         (* syscall result lands in RAX *)
         if followed tid && not !aborted then begin
           if List.mem record.name config.symbolic_syscalls then begin
             let vname = Printf.sprintf "sys_%s_%d" record.name idx in
             Hashtbl.replace input_env vname record.ret;
             State.write_var st "RAX" (E.var ~width:64 vname)
           end
           else State.write_var st "RAX" (E.Const (record.ret, 64))
         end
       | Vm.Event.Signal { resume; _ } ->
         (* mirror the kernel's push of the resume address so the
            replica stack matches the traced machine *)
         let slot = Int64.sub !last_rsp 8L in
         Vm.Mem.write mem slot 8 resume;
         for i = 0 to 7 do
           Hashtbl.remove st.State.shadow (Int64.add slot (Int64.of_int i))
         done;
         (match config.signals with
          | Abort_on_signal ->
            State.diag st Error.Signal_in_trace;
            aborted := true
          | Fault_branch -> ()));
  Telemetry.Metrics.add m_constraints (List.length st.State.constraints);
  Telemetry.Metrics.add m_sym_branches (List.length !branches);
  { constraints = List.rev st.State.constraints;
    branches = List.rev !branches;
    sym_jumps = List.rev !sym_jumps;
    diags = st.State.diags;
    taint;
    input_env;
    trace }
