(** The concolic loop of the paper's Figure 1: concrete execution →
    trace → symbolic reasoning → constraint negation → new test case →
    schedule — a generational search with branch-flip memoisation as
    the checkpoint mechanism. *)

module E = Smt.Expr

(** How the engine declares argv[1] symbolic. *)
type argv_model =
  | Fixed_seed      (** symbolic bytes exactly as long as the seed *)
  | Wide of int
      (** a fixed-size symbolic buffer; shorter strings arise from a
          NUL model byte — Angr's "specify a fixed length of bits" *)

type config = {
  trace_cfg : Trace_exec.config;
  argv : argv_model;
  max_iterations : int;
  max_events : int;
  solver : Smt.Solver.config;
  max_blast_cost : int;
      (** skip solving when the predicted CNF is larger than this —
          the crypto-bomb blow-up *)
  incremental : bool;
      (** solve branch flips through one {!Smt.Session}: each flip
          shares the path-predicate prefix of the previous one, so the
          encoding and learnt clauses carry over *)
}

let default_config trace_cfg =
  { trace_cfg;
    argv = Fixed_seed;
    max_iterations = 24;
    max_events = 400_000;
    solver = { Smt.Solver.default_config with conflict_budget = 20_000 };
    max_blast_cost = 300_000;
    incremental = true }

(** The system under test, abstracted from bombs so examples can reuse
    the driver. *)
type target = {
  image : Asm.Image.t;
  run_config : string -> Vm.Machine.config;  (** argv[1] -> machine config *)
  detonated : Vm.Machine.run_result -> bool;
}

type verdict = {
  solved_input : string option;
  iterations : int;
  traces_run : int;
  diags : Error.diag list;
  solver_unknowns : int;
  fp_constraints : bool;
  constraints_seen : int;
  solver_stats : Smt.Stats.t;
}

let dedup_diags diags =
  List.sort_uniq Error.compare_diag diags

(* model -> argv string: model bytes override the seed's, cut at NUL *)
let input_of_model ~seed ~width (model : Smt.Solver.model) =
  let b = Bytes.create width in
  for i = 0 to width - 1 do
    let default =
      if i < String.length seed then Char.code seed.[i] else 0
    in
    let v =
      match List.assoc_opt (Printf.sprintf "argv1_%d" i) model with
      | Some x -> Int64.to_int (Int64.logand x 0xffL)
      | None -> default
    in
    Bytes.set b i (Char.chr v)
  done;
  let s = Bytes.to_string b in
  match String.index_opt s '\000' with
  | Some 0 -> "\001" (* empty argv would change layout; keep 1 byte *)
  | Some i -> String.sub s 0 i
  | None -> s

let m_traces = Telemetry.Metrics.counter "concolic.traces"
let m_branch_flips = Telemetry.Metrics.counter "concolic.branch_flips"

let explore ?(seed = "5") (config : config) (target : target) : verdict =
  Telemetry.with_span "concolic.driver" @@ fun () ->
  let pad_seed s =
    match config.argv with
    | Fixed_seed -> s
    | Wide n ->
      if String.length s >= n then String.sub s 0 n
      else s ^ String.make (n - String.length s) 'x'
  in
  let width =
    match config.argv with
    | Fixed_seed -> String.length seed
    | Wide n -> n
  in
  let stats = Smt.Stats.create () in
  let session =
    if config.incremental then
      Some (Smt.Session.create ~config:config.solver ~stats ())
    else None
  in
  let solve cs =
    match session with
    | Some sess -> Smt.Session.check_assertions sess cs
    | None -> Smt.Solver.solve ~config:config.solver ~stats cs
  in
  let worklist = Queue.create () in
  Queue.add (pad_seed seed) worklist;
  let tried : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  (* a flip is identified by (branch pc, nth occurrence on the path,
     direction) so each loop iteration is negatable independently *)
  let flipped : (int64 * int * bool, unit) Hashtbl.t = Hashtbl.create 64 in
  let diags = ref [] in
  let unknowns = ref 0 in
  let fp_seen = ref false in
  let iterations = ref 0 in
  let traces = ref 0 in
  let solved = ref None in
  (try
     while !solved = None && !iterations < config.max_iterations do
       incr iterations;
       (* each iteration records and replays a whole trace, so poll the
          cancellation/deadline gate once per iteration *)
       Robust.Meter.checkpoint_ambient ();
       let input =
         match Queue.take_opt worklist with
         | Some i -> i
         | None -> raise Exit
       in
       if not (Hashtbl.mem tried input) then begin
         Hashtbl.replace tried input ();
         incr traces;
         Telemetry.Metrics.incr m_traces;
         let run_config = target.run_config input in
         let trace =
           Trace.record ~max_events:config.max_events ~config:run_config
             target.image
         in
         if target.detonated trace.result then solved := Some input
         else begin
           let path = Trace_exec.run config.trace_cfg ?session trace in
           diags := path.diags @ !diags;
           let ordered = Array.of_list path.constraints in
           if
             Array.exists (fun (c, _) -> E.contains_fp c) ordered
           then fp_seen := true;
           (* negate each unflipped branch, oldest first *)
           let occurrence : (int64, int) Hashtbl.t = Hashtbl.create 16 in
           List.iter
             (fun (b : Trace_exec.branch) ->
                let occ =
                  Option.value ~default:0 (Hashtbl.find_opt occurrence b.pc)
                in
                Hashtbl.replace occurrence b.pc (occ + 1);
                let key = (b.pc, occ, b.taken) in
                if
                  !solved = None
                  && not (Hashtbl.mem flipped key)
                  && b.seq < Array.length ordered
                then begin
                  Hashtbl.replace flipped key ();
                  let prefix =
                    Array.to_list (Array.sub ordered 0 b.seq)
                    |> List.map fst
                  in
                  let negated = E.not_ b.cond in
                  let cs = prefix @ [ negated ] in
                  let cap = config.max_blast_cost in
                  let rec total acc = function
                    | [] -> acc
                    | c :: rest ->
                      let acc = acc + E.blast_cost ~cap c in
                      if acc > cap then acc else total acc rest
                  in
                  let cost = total 0 cs in
                  match
                    if cost > config.max_blast_cost then
                      Smt.Solver.Unknown Smt.Solver.Budget
                    else solve cs
                  with
                  | Smt.Solver.Sat model ->
                    Telemetry.Metrics.incr m_branch_flips;
                    let input' = input_of_model ~seed:input ~width model in
                    if not (Hashtbl.mem tried input') then
                      Queue.add input' worklist
                  | Smt.Solver.Unsat -> ()
                  | Smt.Solver.Unknown Smt.Solver.Fp_unsupported ->
                    fp_seen := true;
                    diags := Error.Fp_constraint :: !diags
                  | Smt.Solver.Unknown _ ->
                    incr unknowns;
                    diags := Error.Solver_budget :: !diags
                end)
             path.branches
         end
       end
     done
   with Exit -> ());
  (* surface degradation-ladder outcomes as diags so grading and
     --explain can attribute a P (degraded) cell to its rung *)
  List.iter
    (fun rung -> diags := Error.Solver_degraded rung :: !diags)
    (Smt.Stats.degraded_rungs stats);
  { solved_input = !solved;
    iterations = !iterations;
    traces_run = !traces;
    diags = dedup_diags !diags;
    solver_unknowns = !unknowns;
    fp_constraints = !fp_seen;
    constraints_seen = Hashtbl.length flipped;
    solver_stats = stats }
