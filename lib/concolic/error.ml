(** The paper's error taxonomy (§IV-A) and evaluation cell labels
    (Table II), plus the diagnostics engines record while running —
    the raw material from which a cell label is derived. *)

(** Symbolic-reasoning stages where an error can be introduced. *)
type stage =
  | Es0  (** symbolic variable declaration *)
  | Es1  (** instruction tracing / lifting *)
  | Es2  (** data propagation *)
  | Es3  (** constraint modeling *)
[@@deriving show { with_path = false }, eq, ord]

(** One cell of Table II. *)
type cell =
  | Success          (** the tool produced an input that detonates *)
  | Fail of stage
  | Abnormal         (** "E": crash, resource exhaustion, or timeout *)
  | Partial
      (** "P": the tool believes the bomb triggers but its values are
          insufficient (syscall-simulation artifacts) *)
[@@deriving show { with_path = false }, eq, ord]

let cell_symbol = function
  | Success -> "OK"
  | Fail s -> show_stage s
  | Abnormal -> "E"
  | Partial -> "P"

(** What an engine observed while attempting a bomb.  The final cell
    is *derived* from these observations plus the grading outcome, so
    Table II emerges from mechanism rather than from a lookup table. *)
type diag =
  | Lift_failure of string
      (** a tainted/needed instruction could not be lifted (Es1) *)
  | Signal_in_trace
      (** the trace left user code via a fault the tool cannot follow *)
  | Taint_lost_in_kernel
      (** tainted data crossed the kernel and the policy dropped it *)
  | Concretized_load of int64
      (** symbolic address forced to its concrete value *)
  | Concretized_store of int64
  | Symbolic_jump_target
      (** an indirect jump/call target depends on the input *)
  | Unconstrained_syscall of string
      (** SimOS let a syscall return an arbitrary symbolic value *)
  | Unconstrained_external of string
      (** a library call was summarised as "returns anything" *)
  | Unconstrained_input of string
      (** SimOS invented symbolic bytes (empty pipe, unknown file) *)
  | Unsupported_syscall of string
      (** SimOS had no model at all; the engine pressed on blindly *)
  | Symbolic_syscall_number
      (** the syscall number itself depended on the input *)
  | Fault_path_pruned
      (** DSE constrained a possible fault away (e.g. divisor != 0) *)
  | Fp_constraint
      (** the path predicate contains floating-point terms *)
  | Solver_budget
      (** constraint solving hit its conflict/time budget *)
  | State_budget
      (** DSE exhausted its step/state budget before reaching the goal *)
  | Engine_crash of string
  | Solver_degraded of string
      (** a budget-tripped check was answered by the named degradation
          rung instead of failing the cell (see {!Smt.Degrade}) *)
[@@deriving show { with_path = false }, eq, ord]

let has d diags = List.exists (equal_diag d) diags

let has_lift_failure diags =
  List.exists (function Lift_failure _ -> true | _ -> false) diags

let has_unconstrained_syscall diags =
  List.exists (function Unconstrained_syscall _ -> true | _ -> false) diags

let has_unconstrained_data diags =
  List.exists
    (function
      | Unconstrained_external _ | Unconstrained_input _ -> true
      | _ -> false)
    diags

let has_crash diags =
  List.exists (function Engine_crash _ -> true | _ -> false) diags

(** Degradation-ladder rungs recorded for this cell, in diag order. *)
let degraded_rungs diags =
  List.filter_map (function Solver_degraded r -> Some r | _ -> None) diags

let has_degraded diags = degraded_rungs diags <> []
