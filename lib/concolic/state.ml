(** Symbolic machine state shared by the trace-based executor and the
    static DSE engine: an environment for named state variables, a
    byte-granular symbolic memory shadow, and constant-folding term
    constructors (so fully concrete sub-computations never build
    symbolic structure). *)

module E = Smt.Expr

module Phys = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

type t = {
  env : (string, E.t) Hashtbl.t;        (** registers, flags, temps *)
  shadow : (int64, E.t) Hashtbl.t;      (** memory bytes with symbolic values *)
  mutable constraints : (E.t * info) list;  (** newest first *)
  mutable diags : Error.diag list;
  mutable load_depth : int;
      (** most deeply nested symbolic-load chain built so far *)
  mutable built_cost : int;
      (** running bit-blast cost of every symbolic node built in this
          state — a monotone overapproximation of any path-prefix
          cost, maintained incrementally so guards are O(1) *)
  load_depths : int Phys.t;
      (** symbolic-load nesting depth of load-result expressions *)
  mutable session : Smt.Session.t option;
      (** solver session constraints are interned into as they are
          recorded; clones share it, so a forked state's path-predicate
          prefix is already encoded when the engine checks the fork *)
  meter : Robust.Meter.t option;
      (** cell budget accounting, shared by clones; constraint
          recording doubles as a cooperative checkpoint *)
}

and info = {
  pc : int64;               (** branch instruction address *)
  taken : bool;             (** direction this path went *)
  kind : kind;
  cost : int;               (** [built_cost] when this was recorded *)
}

and kind = Branch | Fault_guard | Address_bound | Assumption of string

let create ?meter ?session () =
  { env = Hashtbl.create 64;
    shadow = Hashtbl.create 256;
    constraints = [];
    diags = [];
    load_depth = 0;
    built_cost = 0;
    load_depths = Phys.create 64;
    session;
    meter = Robust.Meter.default meter }

let clone t =
  { env = Hashtbl.copy t.env;
    shadow = Hashtbl.copy t.shadow;
    constraints = t.constraints;
    diags = t.diags;
    load_depth = t.load_depth;
    built_cost = t.built_cost;
    load_depths = Phys.copy t.load_depths;
    session = t.session;
    meter = t.meter }

let attach_session t session = t.session <- Some session

let diag t d = t.diags <- d :: t.diags

(* don't intern constraints past the engines' blow-up guards
   (Profile.max_blast_cost / Dse.max_constraint_nodes): such predicates
   are never solved, and crypto-sized DAGs are too deep to walk *)
let intern_cost_cap = 300_000

let add_constraint t ?(kind = Branch) ~pc ~taken e =
  (match t.meter with
   | Some m -> Robust.Meter.checkpoint m
   | None -> ());
  match e with
  | E.Const (1L, 1) -> ()   (* concretely true: no information *)
  | _ ->
    let e =
      match t.session with
      | Some s when t.built_cost <= intern_cost_cap -> Smt.Session.intern s e
      | _ -> e
    in
    t.constraints <-
      (e, { pc; taken; kind; cost = t.built_cost }) :: t.constraints

(** Path predicate in execution order. *)
let path_condition t = List.rev_map fst t.constraints

(* ------------------------------------------------------------------ *)
(* Folding constructors                                                *)
(* ------------------------------------------------------------------ *)

let is_c = function E.Const _ -> true | _ -> false

let fold1 mk a =
  let e = mk a in
  if is_c a then E.Const (Smt.Eval.eval ~memo:false Simplify_env.empty e,
                          E.width_of e)
  else e

let fold2 mk a b =
  let e = mk a b in
  if is_c a && is_c b then
    E.Const (Smt.Eval.eval ~memo:false Simplify_env.empty e, E.width_of e)
  else e

let fold3 mk a b c =
  let e = mk a b c in
  if is_c a && is_c b && is_c c then
    E.Const (Smt.Eval.eval ~memo:false Simplify_env.empty e, E.width_of e)
  else e

(* light algebraic rules beyond folding keep lifted code small *)
let mk_binop op a b =
  match (op : E.binop), a, b with
  | Add, x, E.Const (0L, _) | Add, E.Const (0L, _), x -> x
  | Sub, x, E.Const (0L, _) -> x
  | (And | Or), x, y when x == y -> x
  | Xor, x, y when x == y -> E.Const (0L, E.width_of a)
  | And, _, E.Const (0L, w) | And, E.Const (0L, w), _ -> E.Const (0L, w)
  | Or, x, E.Const (0L, _) | Or, E.Const (0L, _), x -> x
  | Xor, x, E.Const (0L, _) | Xor, E.Const (0L, _), x -> x
  | _ -> fold2 (fun a b -> E.Binop (op, a, b)) a b

let mk_unop op a = fold1 (fun a -> E.Unop (op, a)) a
let mk_cmp op a b = fold2 (fun a b -> E.Cmp (op, a, b)) a b

let mk_ite c a b =
  match c with
  | E.Const (1L, 1) -> a
  | E.Const (0L, 1) -> b
  | _ -> if a == b then a else E.Ite (c, a, b)

let mk_extract hi lo a =
  let w = E.width_of a in
  if lo = 0 && hi = w - 1 then a
  else
    match a with
    | E.Const _ -> fold1 (fun a -> E.Extract (hi, lo, a)) a
    | E.Zext (_, x) when hi < E.width_of x -> E.Extract (hi, lo, x)
    | E.Zext (_, x) when lo >= E.width_of x -> E.Const (0L, hi - lo + 1)
    | E.Concat (_, lo_part) when hi < E.width_of lo_part ->
      if lo = 0 && hi = E.width_of lo_part - 1 then lo_part
      else E.Extract (hi, lo, lo_part)
    | _ -> E.Extract (hi, lo, a)

let mk_concat a b =
  match (a, b) with
  | E.Const _, E.Const _ -> fold2 (fun a b -> E.Concat (a, b)) a b
  | E.Const (0L, wz), x -> E.Zext (wz + E.width_of x, x)
  | _ -> E.Concat (a, b)

let mk_zext w a =
  if E.width_of a = w then a
  else if is_c a then fold1 (fun a -> E.Zext (w, a)) a
  else E.Zext (w, a)

let mk_sext w a =
  if E.width_of a = w then a
  else if is_c a then fold1 (fun a -> E.Sext (w, a)) a
  else E.Sext (w, a)

let mk_fbin op a b = fold2 (fun a b -> E.Fbin (op, a, b)) a b
let mk_fcmp op a b = fold2 (fun a b -> E.Fcmp (op, a, b)) a b
let mk_fsqrt a = fold1 (fun a -> E.Fsqrt a) a
let mk_fof_int a = fold1 (fun a -> E.Fof_int a) a
let mk_fto_int a = fold1 (fun a -> E.Fto_int a) a

(* node weight, mirroring {!Smt.Expr.blast_cost} *)
let node_weight (e : E.t) =
  match e with
  | E.Binop ((Mul | Udiv | Urem | Sdiv | Srem), a, _) ->
    let w = E.width_of a in
    3 * w * w
  | E.Binop ((Shl | Lshr | Ashr), a, _) -> 24 * E.width_of a
  | E.Binop (_, a, _) -> 5 * E.width_of a
  | E.Cmp (_, a, _) -> 3 * E.width_of a
  | E.Ite (_, a, _) -> 4 * E.width_of a
  | E.Unop (Neg, a) -> 5 * E.width_of a
  | _ -> 1

(* charge a state for a freshly built (non-constant) node *)
let charge t (e : E.t) =
  (match e with
   | E.Const _ -> ()
   | _ -> t.built_cost <- t.built_cost + node_weight e);
  e

(* ------------------------------------------------------------------ *)
(* Variables and memory                                                *)
(* ------------------------------------------------------------------ *)

(** Read a state variable; absent variables resolve through
    [concrete], which supplies the live concrete value. *)
let read_var t name width ~concrete =
  match Hashtbl.find_opt t.env name with
  | Some e -> e
  | None -> E.Const (Int64.logand (concrete name) (E.mask width), width)

let write_var t name e =
  match e with
  | E.Const _ -> Hashtbl.replace t.env name e
  | _ -> Hashtbl.replace t.env name e

(** Read [n] shadow bytes at a concrete address; bytes with no shadow
    entry resolve through [concrete_byte].  Returns the little-endian
    concatenation. *)
let load_concrete t addr n ~concrete_byte =
  let byte i =
    let a = Int64.add addr (Int64.of_int i) in
    match Hashtbl.find_opt t.shadow a with
    | Some e -> e
    | None -> E.Const (Int64.of_int (concrete_byte a land 0xff), 8)
  in
  let rec build i acc =
    if i < 0 then acc
    else build (i - 1) (charge t (mk_concat acc (byte i)))
  in
  (* most significant byte first in the accumulator *)
  if n = 1 then byte 0
  else build (n - 2) (byte (n - 1))

(** Store the [n]-byte value [e] at a concrete address.
    [keep_concrete] forces constant bytes into the shadow as well —
    required when there is no concrete replica running alongside
    (the DSE engine). *)
let store_concrete ?(keep_concrete = false) t addr n e =
  for i = 0 to n - 1 do
    let a = Int64.add addr (Int64.of_int i) in
    let b = charge t (mk_extract ((8 * i) + 7) (8 * i) e) in
    match b with
    | E.Const _ when (not keep_concrete) && not (Hashtbl.mem t.shadow a) ->
      (* concrete over concrete: the replica remembers it *)
      ()
    | _ -> Hashtbl.replace t.shadow a b
  done

(** Mark [len] bytes at [addr] as fresh symbolic input bytes named
    [prefix ^ "_" ^ i]. *)
let symbolize_region t ~prefix addr len =
  for i = 0 to len - 1 do
    Hashtbl.replace t.shadow
      (Int64.add addr (Int64.of_int i))
      (E.Var { vname = Printf.sprintf "%s_%d" prefix i; width = 8 })
  done
