(** Serializable, mergeable registry snapshots — the unit of
    cross-process metrics aggregation.

    A fleet worker cannot share the master's in-memory registry, so it
    periodically captures its registry as a {!t}, diffs it against the
    baseline inherited at [fork] (a forked child starts with the
    parent's counter values already in place), and ships the delta
    over its reply pipe as one line of JSON.  The master merges worker
    deltas (counter-add, gauge-last, bucket-wise histogram add) and
    {!publish}es the aggregate back into its own live registry, so a
    whole fleet run reads like one process in [Metrics.snapshot].

    Snapshots are plain immutable values with name-sorted association
    lists, so structural equality and deterministic serialization come
    for free — the merge-equals-sequential tests compare them with
    [=]. *)

type histo = {
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_buckets : (int * int) list;
      (** (bucket index, count), ascending, non-zero entries only *)
}

type t = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histo) list;
}

let empty = { counters = []; gauges = []; histograms = [] }

let is_empty t = t.counters = [] && t.gauges = [] && t.histograms = []

let find_counter t name =
  match List.assoc_opt name t.counters with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

(** The live registry as a snapshot ([Metrics.snapshot] order, so the
    lists come out name-sorted). *)
let capture () : t =
  List.fold_left
    (fun acc (name, r) ->
       match (r : Metrics.reading) with
       | Metrics.Vcounter v ->
           { acc with counters = (name, v) :: acc.counters }
       | Metrics.Vgauge v -> { acc with gauges = (name, v) :: acc.gauges }
       | Metrics.Vhistogram { count; sum; max; buckets } ->
           { acc with
             histograms =
               ( name,
                 { hs_count = count; hs_sum = sum; hs_max = max;
                   hs_buckets = buckets } )
               :: acc.histograms })
    empty (Metrics.snapshot ())
  |> fun t ->
  { counters = List.rev t.counters;
    gauges = List.rev t.gauges;
    histograms = List.rev t.histograms }

(* ------------------------------------------------------------------ *)
(* Diff and merge                                                      *)
(* ------------------------------------------------------------------ *)

(* fold two name-sorted assoc lists into one, combining values present
   on both sides *)
let merge_assoc (combine : 'a -> 'a -> 'a) a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        if ka < kb then go ta b ((ka, va) :: acc)
        else if kb < ka then go a tb ((kb, vb) :: acc)
        else go ta tb ((ka, combine va vb) :: acc)
  in
  go a b []

let merge_buckets a b =
  merge_assoc ( + ) a b |> List.filter (fun (_, n) -> n > 0)

let sub_buckets cur base =
  merge_buckets cur (List.map (fun (i, n) -> (i, -n)) base)

let merge_histo a b =
  { hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum + b.hs_sum;
    hs_max = max a.hs_max b.hs_max;
    hs_buckets = merge_buckets a.hs_buckets b.hs_buckets }

(** [merge a b]: counters add, gauges take [b]'s value where both have
    one ("gauge-last"), histograms add bucket-wise (count and sum add,
    max takes the max). *)
let merge a b =
  { counters = merge_assoc ( + ) a.counters b.counters;
    gauges = merge_assoc (fun _ vb -> vb) a.gauges b.gauges;
    histograms = merge_assoc merge_histo a.histograms b.histograms }

(** [diff ~base cur] is what happened since [base]: counter and
    histogram deltas (zero deltas dropped, so a fresh worker that did
    nothing ships an empty snapshot), gauges at their current value
    when they moved.  A histogram delta keeps the current max — the
    per-interval max is not recoverable from a cumulative registry,
    and for merge purposes an over-approximation is harmless. *)
let diff ~base cur =
  let counters =
    List.filter_map
      (fun (name, v) ->
         let d = v - find_counter base name in
         if d = 0 then None else Some (name, d))
      cur.counters
  in
  let gauges =
    List.filter
      (fun (name, v) ->
         match List.assoc_opt name base.gauges with
         | Some b -> v <> b
         | None -> v <> 0.0)
      cur.gauges
  in
  let histograms =
    List.filter_map
      (fun (name, h) ->
         match List.assoc_opt name base.histograms with
         | None -> if h.hs_count = 0 then None else Some (name, h)
         | Some b ->
             let d =
               { hs_count = h.hs_count - b.hs_count;
                 hs_sum = h.hs_sum - b.hs_sum;
                 hs_max = h.hs_max;
                 hs_buckets = sub_buckets h.hs_buckets b.hs_buckets }
             in
             if d.hs_count = 0 then None else Some (name, d))
      cur.histograms
  in
  { counters; gauges; histograms }

(* ------------------------------------------------------------------ *)
(* Publish                                                             *)
(* ------------------------------------------------------------------ *)

(** Fold a snapshot additively into the live registry, creating the
    metrics as needed.  With [prefix] every metric lands under its own
    name-spaced copy ([worker3.vm.steps]); without, the values
    accumulate into the canonical metrics, which is how a fleet
    aggregate becomes indistinguishable from a sequential run for
    deterministic counters. *)
let publish ?(prefix = "") t =
  List.iter
    (fun (name, v) -> Metrics.add (Metrics.counter (prefix ^ name)) v)
    t.counters;
  List.iter
    (fun (name, v) -> Metrics.set (Metrics.gauge (prefix ^ name)) v)
    t.gauges;
  List.iter
    (fun (name, hs) ->
       let h = Metrics.histogram (prefix ^ name) in
       List.iter
         (fun (i, n) ->
            if i >= 0 && i < Metrics.num_buckets then
              h.Metrics.h_buckets.(i) <- h.Metrics.h_buckets.(i) + n)
         hs.hs_buckets;
       h.Metrics.h_count <- h.Metrics.h_count + hs.hs_count;
       h.Metrics.h_sum <- h.Metrics.h_sum + hs.hs_sum;
       if hs.hs_max > h.Metrics.h_max then h.Metrics.h_max <- hs.hs_max)
    t.histograms

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One line, no spaces — snapshots cross the fleet's line-framed
    pipes verbatim.  [%.17g] keeps gauge floats exact across the round
    trip. *)
let to_json t =
  let buf = Buffer.create 256 in
  let sep = ref false in
  let field body =
    if !sep then Buffer.add_char buf ',';
    sep := true;
    Buffer.add_string buf body
  in
  Buffer.add_string buf "{\"c\":{";
  List.iter
    (fun (name, v) ->
       field (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    t.counters;
  Buffer.add_string buf "},\"g\":{";
  sep := false;
  List.iter
    (fun (name, v) ->
       field (Printf.sprintf "\"%s\":%.17g" (json_escape name) v))
    t.gauges;
  Buffer.add_string buf "},\"h\":{";
  sep := false;
  List.iter
    (fun (name, h) ->
       field
         (Printf.sprintf "\"%s\":{\"n\":%d,\"s\":%d,\"m\":%d,\"b\":[%s]}"
            (json_escape name) h.hs_count h.hs_sum h.hs_max
            (String.concat ","
               (List.map
                  (fun (i, n) -> Printf.sprintf "[%d,%d]" i n)
                  h.hs_buckets))))
    t.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let of_json line : t option =
  let open Trace_check in
  let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let int = function Num n -> Some (int_of_float n) | _ -> None in
  match parse_opt line with
  | None -> None
  | Some j -> (
      let obj name =
        match member name j with Some (Obj fields) -> Some fields | _ -> None
      in
      match (obj "c", obj "g", obj "h") with
      | Some cs, Some gs, Some hs -> (
          let counters =
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (int v))
              cs
          in
          let gauges =
            List.filter_map
              (fun (k, v) ->
                 match v with Num f -> Some (k, f) | _ -> None)
              gs
          in
          let histo v =
            match
              (Option.bind (member "n" v) int,
               Option.bind (member "s" v) int,
               Option.bind (member "m" v) int,
               member "b" v)
            with
            | Some n, Some s, Some m, Some (Arr pairs) ->
                let buckets =
                  List.filter_map
                    (function
                      | Arr [ Num i; Num c ] ->
                          Some (int_of_float i, int_of_float c)
                      | _ -> None)
                    pairs
                in
                if List.length buckets = List.length pairs then
                  Some
                    { hs_count = n; hs_sum = s; hs_max = m;
                      hs_buckets = buckets }
                else None
            | _ -> None
          in
          let histograms =
            List.map (fun (k, v) -> (k, histo v)) hs
          in
          if List.for_all (fun (_, h) -> h <> None) histograms then
            Some
              { counters = sort counters;
                gauges = sort gauges;
                histograms =
                  sort
                    (List.filter_map
                       (fun (k, h) -> Option.map (fun h -> (k, h)) h)
                       histograms) }
          else None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition                                    *)
(* ------------------------------------------------------------------ *)

let prom_name name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
       | _ -> '_')
    name

(** Prometheus text format: counters and gauges as single samples,
    histograms as cumulative [_bucket{le=…}] series plus [_sum] and
    [_count].  Dotted registry names flatten to underscores. *)
let to_prometheus t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
       let n = prom_name name in
       pr "# TYPE %s counter\n%s %d\n" n n v)
    t.counters;
  List.iter
    (fun (name, v) ->
       let n = prom_name name in
       pr "# TYPE %s gauge\n%s %g\n" n n v)
    t.gauges;
  List.iter
    (fun (name, h) ->
       let n = prom_name name in
       pr "# TYPE %s histogram\n" n;
       let cum = ref 0 in
       List.iter
         (fun (i, c) ->
            cum := !cum + c;
            let _, hi = Metrics.bucket_range i in
            pr "%s_bucket{le=\"%d\"} %d\n" n hi !cum)
         h.hs_buckets;
       pr "%s_bucket{le=\"+Inf\"} %d\n" n h.hs_count;
       pr "%s_sum %d\n" n h.hs_sum;
       pr "%s_count %d\n" n h.hs_count)
    t.histograms;
  Buffer.contents buf
