(** Global metrics registry: counters, gauges, and log2-bucket
    histograms.

    Metrics are *always on*: incrementing a pre-registered counter is
    one mutable-field update, cheap enough for the VM step loop and
    the solver's query path, so every reproduced number (Figure 3's
    tainted-instruction count, Table II's solver work) is derivable
    from the registry regardless of whether span tracing is enabled.

    Registration is get-or-create by name — layers declare their
    metrics at module initialisation and hold the record, never paying
    a hash lookup on the hot path.  Names are dotted
    [layer.measurement] strings ([vm.steps], [taint.tainted_insns],
    [smt.queries], ...). *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(** Bucket [0] holds values [<= 0]; bucket [i >= 1] holds
    [2^(i-1) .. 2^i - 1].  63 bits of OCaml int land in bucket 62, so
    64 buckets cover every value including [max_int]. *)
let num_buckets = 64

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_mismatch name =
  invalid_arg
    (Printf.sprintf
       "Telemetry.Metrics: %S is already registered with another type" name)

let counter name : counter =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_mismatch name
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace registry name (Counter c);
    c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let gauge name : gauge =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_mismatch name
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace registry name (Gauge g);
    g

let set g v = g.g_value <- v
let gauge_add g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

(** [bucket_of v] is the log2 bucket index of [v]: [0] for [v <= 0],
    otherwise [floor (log2 v) + 1].  [bucket_of 1 = 1],
    [bucket_of max_int = 62]. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v <> 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    !b
  end

(** Inclusive value range covered by bucket [i]. *)
let bucket_range i =
  if i = 0 then (min_int, 0)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let histogram name : histogram =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_mismatch name
  | None ->
    let h =
      { h_name = name;
        h_buckets = Array.make num_buckets 0;
        h_count = 0;
        h_sum = 0;
        h_max = 0 }
    in
    Hashtbl.replace registry name (Histogram h);
    h

let observe h v =
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

(** Approximate quantile from the log2 buckets: the upper bound of the
    first bucket at which the cumulative count reaches [q] of the
    total, clamped to the observed max so a lone outlier in a wide
    bucket cannot inflate the answer past anything actually seen.
    [0] when the histogram is empty. *)
let quantile (h : histogram) q =
  if h.h_count = 0 then 0
  else begin
    let target =
      max 1
        (min h.h_count (int_of_float (ceil (q *. float_of_int h.h_count))))
    in
    let res = ref h.h_max in
    let cum = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= target then begin
           let _, hi = bucket_range i in
           res := (if hi > h.h_max then h.h_max else hi);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

(* ------------------------------------------------------------------ *)
(* Reading the registry                                                *)
(* ------------------------------------------------------------------ *)

(** Snapshot value of one metric, kind-tagged. *)
type reading =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int) list;  (** (bucket index, count), non-zero only *)
    }

let read = function
  | Counter c -> Vcounter c.c_value
  | Gauge g -> Vgauge g.g_value
  | Histogram h ->
    let buckets = ref [] in
    for i = num_buckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
    done;
    Vhistogram { count = h.h_count; sum = h.h_sum; max = h.h_max;
                 buckets = !buckets }

(** Every registered metric, sorted by name. *)
let snapshot () : (string * reading) list =
  Hashtbl.fold (fun name m acc -> (name, read m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Current value of a counter by name; [0] when absent (or another
    kind) — callers measuring deltas never need the metric to exist
    yet. *)
let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c.c_value
  | _ -> 0

let gauge_value_of name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g.g_value
  | _ -> 0.0

(** Zero every metric, keeping registrations (held records stay
    valid). *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
       match m with
       | Counter c -> c.c_value <- 0
       | Gauge g -> g.g_value <- 0.0
       | Histogram h ->
         Array.fill h.h_buckets 0 num_buckets 0;
         h.h_count <- 0;
         h.h_sum <- 0;
         h.h_max <- 0)
    registry

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_reading = function
  | Vcounter v -> string_of_int v
  | Vgauge v -> Printf.sprintf "%.6f" v
  | Vhistogram { count; sum; max; _ } ->
    Printf.sprintf "count=%d sum=%d max=%d" count sum max

(** Human-readable table of every non-zero metric. *)
let render () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, r) ->
       let zero =
         match r with
         | Vcounter 0 -> true
         | Vgauge v -> v = 0.0
         | Vhistogram { count = 0; _ } -> true
         | _ -> false
       in
       if not zero then
         Buffer.add_string buf
           (Printf.sprintf "  %-28s %s\n" name (render_reading r)))
    (snapshot ());
  Buffer.contents buf
