(** Span tracing over a monotonic clock, plus re-exports of the
    sibling modules so [Telemetry.Metrics], [Telemetry.Log] and
    [Telemetry.Trace_check] are the library's public face.

    Spans are parent/child nested wall-time intervals recorded only
    while tracing is {!enable}d; {!with_span} is a single flag check
    when disabled, so instrumented hot paths (the VM step loop, the
    solver's check) cost nothing in normal runs.  Finished spans
    accumulate in memory and can be rendered three ways: a
    human-readable tree ({!render_tree}), JSONL ({!to_jsonl}), or
    Chrome [trace_event] JSON ({!to_chrome}) loadable in
    [about:tracing] / Perfetto. *)

module Metrics = Metrics
module Log = Log
module Trace_check = Trace_check
module Snapshot = Snapshot

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Mach/posix monotonic clocks need C stubs; [Unix.gettimeofday] is
   the best zero-dependency approximation.  Spans additionally clamp
   ([duration_us] is never negative) so a clock step cannot produce
   E-before-B traces. *)
let clock_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  t_start : float;                       (** µs since process epoch *)
  mutable t_stop : float;                (** µs; = t_start until ended *)
  mutable attrs : (string * string) list;  (** newest first *)
}

let enabled = ref false
let spans : span list ref = ref []       (* finished spans, newest first *)
let open_stack : span list ref = ref []  (* innermost first *)
let next_id = ref 0

let enable () = enabled := true
let is_enabled () = !enabled

let disable () = enabled := false

(** Drop all recorded and open spans (tracing enablement and metric
    registrations are untouched). *)
let reset () =
  spans := [];
  open_stack := [];
  next_id := 0

let finished_spans () =
  List.sort (fun a b -> compare a.id b.id) !spans

(** Attach a key/value attribute to the innermost open span; no-op
    when tracing is disabled or no span is open. *)
let annotate key value =
  if !enabled then
    match !open_stack with
    | s :: _ -> s.attrs <- (key, value) :: s.attrs
    | [] -> ()

let attr span key = List.assoc_opt key span.attrs

let begin_span name =
  let parent, depth =
    match !open_stack with
    | p :: _ -> (Some p.id, p.depth + 1)
    | [] -> (None, 0)
  in
  let s =
    { id = !next_id; parent; name; depth;
      t_start = clock_us (); t_stop = 0.0; attrs = [] }
  in
  incr next_id;
  open_stack := s :: !open_stack;
  s

let end_span s =
  let t = clock_us () in
  s.t_stop <- (if t < s.t_start then s.t_start else t);
  (* tolerate mis-nested manual begin/end by popping through *)
  let rec pop = function
    | x :: rest when x.id = s.id -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  open_stack := pop !open_stack;
  spans := s :: !spans

(** [with_span name f] runs [f ()] inside a span.  When tracing is
    disabled this is one [ref] read and a call.  An exception ends
    the span (tagged with an ["exn"] attribute) before re-raising. *)
let with_span name f =
  if not !enabled then f ()
  else begin
    let s = begin_span name in
    match f () with
    | v -> end_span s; v
    | exception e ->
      s.attrs <- ("exn", Printexc.to_string e) :: s.attrs;
      end_span s;
      raise e
  end

let duration_us s =
  let d = s.t_stop -. s.t_start in
  if d < 0.0 then 0.0 else d

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = Silent | Tree | Jsonl | Chrome

let sink_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "silent" | "none" -> Some Silent
  | "tree" | "human" -> Some Tree
  | "jsonl" -> Some Jsonl
  | "chrome" | "trace" -> Some Chrome
  | _ -> None

let sink_name = function
  | Silent -> "silent"
  | Tree -> "tree"
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"

let all_sinks = [ Silent; Tree; Jsonl; Chrome ]

let children_of all id =
  List.filter (fun s -> s.parent = Some id) all

(* --- human-readable tree --- *)

(* Same-name siblings collapse to one line (×count, summed time) so a
   10k-iteration loop renders as one row, like a profiler's
   aggregated call tree.  A span carrying a "mark" attribute is
   prefixed with "!" — the error-stage attribution report uses this
   to point at where symbolic state died. *)
let render_tree ?root () =
  let all = finished_spans () in
  let roots =
    match root with
    | Some id -> List.filter (fun s -> s.id = id) all
    | None -> List.filter (fun s -> s.parent = None) all
  in
  let buf = Buffer.create 1024 in
  let rec render_group indent group =
    let total = List.fold_left (fun acc s -> acc +. duration_us s) 0.0 group in
    let n = List.length group in
    let leader = List.hd group in
    let marked = List.exists (fun s -> attr s "mark" <> None) group in
    let mark_text =
      match List.find_map (fun s -> attr s "mark") group with
      | Some m -> "  ! " ^ m
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s%s  %.1f us%s\n" indent
         (if marked then "! " else "")
         leader.name
         (if n > 1 then Printf.sprintf " (x%d)" n else "")
         total mark_text);
    let kids = List.concat_map (fun s -> children_of all s.id) group in
    render_children (indent ^ "  ") kids
  and render_children indent kids =
    (* group same-name siblings, preserving first-seen order *)
    let seen = Hashtbl.create 8 in
    let names =
      List.filter
        (fun s ->
           if Hashtbl.mem seen s.name then false
           else begin Hashtbl.replace seen s.name (); true end)
        kids
      |> List.map (fun s -> s.name)
    in
    List.iter
      (fun name ->
         render_group indent (List.filter (fun s -> s.name = name) kids))
      names
  in
  List.iter (fun r -> render_group "" [ r ]) roots;
  Buffer.contents buf

(* --- JSON emission --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_json attrs =
  String.concat ", "
    (List.rev_map
       (fun (k, v) ->
          Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
       attrs)

(** One span as a single JSONL object (no trailing newline): id,
    parent, name, start/duration in µs, attributes.  The fleet's
    per-worker span shards append these incrementally. *)
let span_jsonl s =
  Printf.sprintf
    "{\"id\": %d, \"parent\": %s, \"name\": \"%s\", \
     \"ts_us\": %.1f, \"dur_us\": %.1f%s}"
    s.id
    (match s.parent with Some p -> string_of_int p | None -> "null")
    (json_escape s.name) s.t_start (duration_us s)
    (match s.attrs with
     | [] -> ""
     | attrs -> Printf.sprintf ", \"args\": {%s}" (attrs_json attrs))

(** One finished span per line. *)
let to_jsonl () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
       Buffer.add_string buf (span_jsonl s);
       Buffer.add_char buf '\n')
    (finished_spans ());
  Buffer.contents buf

(** Chrome trace_event JSON: paired B/E duration events emitted by
    walking the span tree, so nesting in the viewer mirrors the
    recorded parent/child structure and B/E events balance like
    brackets. *)
let to_chrome () =
  let all = finished_spans () in
  let events = ref [] in  (* reversed *)
  let emit ev = events := ev :: !events in
  let rec emit_span s =
    emit
      (Printf.sprintf
         "{\"name\": \"%s\", \"ph\": \"B\", \"ts\": %.1f, \
          \"pid\": 1, \"tid\": 1%s}"
         (json_escape s.name) s.t_start
         (match s.attrs with
          | [] -> ""
          | attrs -> Printf.sprintf ", \"args\": {%s}" (attrs_json attrs)));
    List.iter emit_span (children_of all s.id);
    emit
      (Printf.sprintf
         "{\"name\": \"%s\", \"ph\": \"E\", \"ts\": %.1f, \
          \"pid\": 1, \"tid\": 1}"
         (json_escape s.name) s.t_stop)
  in
  List.iter emit_span (List.filter (fun s -> s.parent = None) all);
  "{\"traceEvents\": [\n"
  ^ String.concat ",\n" (List.rev !events)
  ^ "\n], \"displayTimeUnit\": \"ms\"}\n"

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome path = write_file path (to_chrome ())
let write_jsonl path = write_file path (to_jsonl ())

(** Render the recorded spans through [sink]; [Silent] yields "". *)
let render_sink = function
  | Silent -> ""
  | Tree -> render_tree ()
  | Jsonl -> to_jsonl ()
  | Chrome -> to_chrome ()
