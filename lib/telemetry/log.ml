(** Level-filtered diagnostic logging.

    Library code routes its stderr diagnostics through here instead of
    calling [Printf.eprintf] directly, so test runs are quiet by
    default and a single environment variable turns debugging output
    back on:

    {v TELEMETRY_LEVEL=debug dune exec bin/eval.exe -- table2 v}

    Levels (each includes the ones above it): [quiet] < [error] <
    [warn] < [info] < [debug].  The default is [warn]. *)

type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "none" | "off" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" | "all" -> Some Debug
  | _ -> None

let level_name = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let default_level () =
  match Sys.getenv_opt "TELEMETRY_LEVEL" with
  | Some s -> (match level_of_string s with Some l -> l | None -> Warn)
  | None -> Warn

let current : level ref = ref (default_level ())

let set_level l = current := l

(** [enabled l] — use to guard construction of expensive log
    arguments. *)
let enabled l = severity l <= severity !current && l <> Quiet

(* every line gets this prefix — forked fleet workers set it to their
   slot id ("[w3] ") so multi-worker stderr no longer interleaves
   indistinguishably with the parent's *)
let prefix : string ref = ref ""

let set_prefix p = prefix := p

let logf l fmt =
  if enabled l then
    Printf.eprintf ("%s[%s] " ^^ fmt ^^ "\n%!") !prefix (level_name l)
  else
    Printf.ifprintf stderr ("%s[%s] " ^^ fmt ^^ "\n%!") !prefix (level_name l)

let errorf fmt = logf Error fmt
let warnf fmt = logf Warn fmt
let infof fmt = logf Info fmt
let debugf fmt = logf Debug fmt
