(** Structural validation of emitted trace files.

    The sinks write JSON by string concatenation (no JSON library in
    the toolchain), so the smoke test needs an independent reader to
    prove the output is actually parseable.  This is a minimal
    recursive-descent JSON parser plus two validators:

    - {!validate_chrome}: the file is one JSON object with a
      [traceEvents] array whose B/E phase events balance per
      (pid, tid) like a bracket language — what [about:tracing] /
      Perfetto requires to render a span tree.
    - {!validate_jsonl}: every non-empty line is a standalone JSON
      object. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "at %d: expected %c, got %c" c.pos ch x
  | None -> fail "at %d: expected %c, got end of input" c.pos ch

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at %d: expected %s" c.pos word

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail "at %d: unterminated string" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> fail "at %d: unterminated escape" c.pos
       | Some 'n' -> Buffer.add_char buf '\n'; advance c; loop ()
       | Some 't' -> Buffer.add_char buf '\t'; advance c; loop ()
       | Some 'r' -> Buffer.add_char buf '\r'; advance c; loop ()
       | Some 'b' -> Buffer.add_char buf '\b'; advance c; loop ()
       | Some 'f' -> Buffer.add_char buf '\012'; advance c; loop ()
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.src then
           fail "at %d: truncated \\u escape" c.pos;
         let hex = String.sub c.src c.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail "at %d: bad \\u escape %S" c.pos hex
         in
         c.pos <- c.pos + 4;
         (* non-BMP fidelity is irrelevant for validation *)
         Buffer.add_char buf (Char.chr (code land 0xff));
         loop ()
       | Some ch -> Buffer.add_char buf ch; advance c; loop ())
    | Some ch -> Buffer.add_char buf ch; advance c; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance c
    | _ -> continue := false
  done;
  if c.pos = start then fail "at %d: expected number" start;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "at %d: bad number %S" start s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "at %d: unexpected end of input" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; members ()
        | Some '}' -> advance c
        | _ -> fail "at %d: expected , or } in object" c.pos
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; Arr [] end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; elements ()
        | Some ']' -> advance c
        | _ -> fail "at %d: expected , or ] in array" c.pos
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let parse (s : string) : json =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "at %d: trailing garbage after JSON value" c.pos;
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Chrome trace_event validation                                       *)
(* ------------------------------------------------------------------ *)

type chrome_summary = {
  events : int;       (** total traceEvents *)
  spans : int;        (** balanced B/E pairs *)
  max_depth : int;    (** deepest B-nesting seen *)
}

(** Validate a Chrome [trace_event] JSON string.  Checks: top level is
    an object with a [traceEvents] array; every event is an object
    with string [name]/[ph] and numeric [ts]; B/E events balance like
    brackets per (pid, tid) with matching names and non-decreasing
    timestamps. *)
let validate_chrome (s : string) : (chrome_summary, string) result =
  match parse_opt s with
  | None -> Error "not parseable as JSON"
  | Some root ->
    (match member "traceEvents" root with
     | None -> Error "missing traceEvents field"
     | Some (Arr events) ->
       (* stack of open (name, ts) per (pid, tid) track *)
       let tracks : (float * float, (string * float) list ref) Hashtbl.t =
         Hashtbl.create 4
       in
       let spans = ref 0 and max_depth = ref 0 in
       let err = ref None in
       let check_event i ev =
         if !err = None then
           match ev with
           | Obj _ ->
             let str k = match member k ev with Some (Str s) -> Some s | _ -> None in
             let num k = match member k ev with Some (Num n) -> Some n | _ -> None in
             (match str "name", str "ph", num "ts" with
              | Some name, Some ph, Some ts ->
                let pid = Option.value ~default:0.0 (num "pid") in
                let tid = Option.value ~default:0.0 (num "tid") in
                let stack =
                  match Hashtbl.find_opt tracks (pid, tid) with
                  | Some st -> st
                  | None ->
                    let st = ref [] in
                    Hashtbl.replace tracks (pid, tid) st;
                    st
                in
                (match ph with
                 | "B" ->
                   stack := (name, ts) :: !stack;
                   if List.length !stack > !max_depth then
                     max_depth := List.length !stack
                 | "E" ->
                   (match !stack with
                    | (open_name, open_ts) :: rest ->
                      if open_name <> name then
                        err := Some (Printf.sprintf
                                       "event %d: E %S closes open B %S"
                                       i name open_name)
                      else if ts < open_ts then
                        err := Some (Printf.sprintf
                                       "event %d: E %S ends before it begins"
                                       i name)
                      else begin incr spans; stack := rest end
                    | [] ->
                      err := Some (Printf.sprintf
                                     "event %d: E %S with no open B" i name))
                 | "X" | "i" | "I" | "C" | "M" -> ()  (* complete/instant/counter/metadata *)
                 | _ ->
                   err := Some (Printf.sprintf "event %d: unknown phase %S" i ph))
              | _ ->
                err := Some (Printf.sprintf
                               "event %d: missing name/ph/ts fields" i))
           | _ -> err := Some (Printf.sprintf "event %d: not an object" i)
       in
       List.iteri check_event events;
       (match !err with
        | Some e -> Error e
        | None ->
          let unclosed = ref [] in
          Hashtbl.iter
            (fun _ st -> List.iter (fun (n, _) -> unclosed := n :: !unclosed) !st)
            tracks;
          (match !unclosed with
           | n :: _ -> Error (Printf.sprintf "unclosed B event %S" n)
           | [] ->
             Ok { events = List.length events; spans = !spans;
                  max_depth = !max_depth }))
     | Some _ -> Error "traceEvents is not an array")

(** Validate a JSONL string: every non-empty line parses as a JSON
    object.  Returns the number of objects. *)
let validate_jsonl (s : string) : (int, string) result =
  let lines = String.split_on_char '\n' s in
  let count = ref 0 and err = ref None in
  List.iteri
    (fun i line ->
       if !err = None && String.trim line <> "" then
         match parse_opt line with
         | Some (Obj _) -> incr count
         | Some _ -> err := Some (Printf.sprintf "line %d: not a JSON object" (i + 1))
         | None -> err := Some (Printf.sprintf "line %d: not parseable" (i + 1)))
    lines;
  match !err with Some e -> Error e | None -> Ok !count

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let validate_chrome_file path = validate_chrome (read_file path)
let validate_jsonl_file path = validate_jsonl (read_file path)
