(** The concrete machine: a deterministic user-mode VM with a small
    kernel model.

    The kernel implements the slice of POSIX the logic bombs need:
    files (an in-memory filesystem), pipes, [fork], threads with a
    round-robin scheduler, a settable clock, a deterministic PRNG, a
    socket stub that serves configurable "web contents", and SIGFPE
    delivery for the exception bombs.  Everything is deterministic
    given a {!config}. *)

(* ------------------------------------------------------------------ *)
(* Kernel objects and file descriptors                                 *)
(* ------------------------------------------------------------------ *)

type kfile = { fpath : string; mutable data : string }
type kpipe = { q : Buffer.t; mutable readers : int; mutable writers : int;
               mutable rpos : int; mutable wpos : int }
type ksock = { content : string }

type kobj = KFile of kfile | KPipe of kpipe | KSock of ksock

type fd_entry =
  | Fd_stdin
  | Fd_stdout
  | Fd_stderr
  | Fd_file of { obj : int; mutable pos : int; writable : bool }
  | Fd_pipe_r of int
  | Fd_pipe_w of int
  | Fd_sock of { obj : int; mutable pos : int }

type proc = {
  pid : int;
  mem : Mem.t;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable sigfpe_handler : int64;  (** 0 = none *)
  mutable exited : bool;
  mutable exit_code : int;
  parent : int;
}

type task_state =
  | Runnable
  | Blocked  (** re-execute the pending syscall when scheduled *)
  | Dead

type task = {
  tid : int;
  proc : proc;
  cpu : Cpu.t;
  mutable state : task_state;
}

type config = {
  argv : string list;          (** argv.(0) is the program name *)
  now : int64;                 (** UNIX-seconds value of the clock *)
  files : (string * string) list;  (** pre-existing filesystem content *)
  web_content : string;        (** what the socket stub serves *)
  uid : int64;                 (** what getuid() reports *)
  random_seed : int64;
  fuel : int;                  (** max total executed instructions *)
  quantum : int;               (** instructions per scheduling slice *)
}

let default_config =
  { argv = [ "prog" ];
    now = 1_400_000_000L;
    files = [];
    web_content = "HTTP/1.0 200 OK\r\n\r\nhello";
    uid = 1000L;
    random_seed = 0x5eedL;
    fuel = 2_000_000;
    quantum = 64 }

type fault = Div_by_zero | Bad_decode of string
[@@deriving show { with_path = false }]

(* machine-level telemetry; steps are added as a per-run delta so the
   hot step loop pays nothing for instrumentation *)
let m_steps = Telemetry.Metrics.counter "vm.steps"
let m_faults = Telemetry.Metrics.counter "vm.faults"
let m_syscalls = Telemetry.Metrics.counter "vm.syscalls"
let m_signals = Telemetry.Metrics.counter "vm.signals"

type run_result = {
  exit_code : int option;      (** of the root process *)
  stdout : string;
  stderr : string;
  steps : int;
  fault : fault option;
  fuel_exhausted : bool;
  deadlocked : bool;
}

type t = {
  image : Asm.Image.t;
  config : config;
  mutable tasks : task list;
  mutable next_pid : int;
  mutable next_tid : int;
  objects : (int, kobj) Hashtbl.t;
  mutable next_obj : int;
  fs : (string, int) Hashtbl.t;        (** path -> file object id *)
  out_buf : Buffer.t;
  err_buf : Buffer.t;
  mutable prng : int64;
  mutable steps : int;
  mutable fault : fault option;
  decode_cache : (int64, Isa.Insn.t * int64) Hashtbl.t;
  mutable hook : (Event.t -> unit) option;
  mutable ck_hook : (Event.checkpoint -> unit) option;
  mutable ck_interval : int;
  mutable ck_root_events : int;
      (** root (pid 1) events emitted so far — the checkpoint clock *)
  ck_shadow : (int, Bytes.t) Hashtbl.t;
      (** root-process page contents at the previous checkpoint, so
          each checkpoint carries only the pages that changed *)
  argv_layout : (int64 * int) list;
      (** (address, length-with-NUL) of each argv string *)
  meter : Robust.Meter.t option;
      (** resource accounting; captured from the ambient meter at
          {!create} so supervised cells govern every machine they
          spin up without threading a parameter through each site *)
}

let stack_top = 0x7ff0_0000L
let thread_stack_area = 0x7e00_0000L

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let load_segments image mem =
  Mem.write_bytes mem image.Asm.Image.text_addr image.text;
  Mem.write_bytes mem image.data_addr image.data

(* SysV-flavoured process stack: argc at RSP, then argv pointers,
   NULL, then the strings. *)
let setup_stack mem argv =
  let strings_base = Int64.sub stack_top 0x800L in
  let addrs = ref [] in
  let layout = ref [] in
  let cursor = ref strings_base in
  List.iter
    (fun s ->
       addrs := !cursor :: !addrs;
       layout := (!cursor, String.length s + 1) :: !layout;
       Mem.write_bytes mem !cursor (s ^ "\000");
       cursor := Int64.add !cursor (Int64.of_int (String.length s + 1)))
    argv;
  let addrs = List.rev !addrs in
  let layout = List.rev !layout in
  let argc = List.length argv in
  let frame = Int64.sub strings_base (Int64.of_int (8 * (argc + 2))) in
  Mem.write mem frame 8 (Int64.of_int argc);
  List.iteri
    (fun i a -> Mem.write mem (Int64.add frame (Int64.of_int (8 * (i + 1)))) 8 a)
    addrs;
  Mem.write mem (Int64.add frame (Int64.of_int (8 * (argc + 1)))) 8 0L;
  (frame, layout)

(** A freshly loaded memory image with the argv stack in place, plus
    the initial RSP and argv layout — what a trace-replaying executor
    needs to mirror the machine's starting point. *)
let fresh_memory ?(config = default_config) image =
  let mem = Mem.create () in
  load_segments image mem;
  let rsp, argv_layout = setup_stack mem config.argv in
  (mem, rsp, argv_layout)

let create ?meter ?(config = default_config) image =
  let meter = Robust.Meter.default meter in
  let mem, rsp, argv_layout = fresh_memory ~config image in
  let cpu = Cpu.create ~pc:image.Asm.Image.entry () in
  Cpu.set_reg cpu RSP rsp;
  let proc =
    { pid = 1; mem; fds = Hashtbl.create 8; next_fd = 3;
      sigfpe_handler = 0L; exited = false; exit_code = 0; parent = 0 }
  in
  Hashtbl.replace proc.fds 0 Fd_stdin;
  Hashtbl.replace proc.fds 1 Fd_stdout;
  Hashtbl.replace proc.fds 2 Fd_stderr;
  let t =
    { image; config;
      tasks = [ { tid = 1; proc; cpu; state = Runnable } ];
      next_pid = 2; next_tid = 2;
      objects = Hashtbl.create 16;
      next_obj = Event.Obj_id.first_dynamic;
      fs = Hashtbl.create 8;
      out_buf = Buffer.create 256;
      err_buf = Buffer.create 64;
      prng = config.random_seed;
      steps = 0;
      fault = None;
      decode_cache = Hashtbl.create 1024;
      hook = None;
      ck_hook = None;
      ck_interval = 0;
      ck_root_events = 0;
      ck_shadow = Hashtbl.create 64;
      argv_layout;
      meter }
  in
  List.iter
    (fun (path, data) ->
       let id = t.next_obj in
       t.next_obj <- id + 1;
       Hashtbl.replace t.objects id (KFile { fpath = path; data });
       Hashtbl.replace t.fs path id)
    config.files;
  t

let set_hook t f = t.hook <- Some f

let root_proc t =
  match List.find_opt (fun task -> task.proc.pid = 1) t.tasks with
  | Some task -> Some task.proc
  | None -> None

(** Install a checkpoint hook firing every [interval] root events.
    The shadow pages are baselined now, so the first checkpoint's page
    deltas are relative to the machine state at installation time
    (normally the freshly loaded image — what {!fresh_memory}
    reproduces). *)
let set_checkpoint_hook t ~interval f =
  t.ck_hook <- Some f;
  t.ck_interval <- interval;
  Hashtbl.reset t.ck_shadow;
  match root_proc t with
  | None -> ()
  | Some proc ->
    Hashtbl.iter
      (fun idx page -> Hashtbl.replace t.ck_shadow idx (Bytes.copy page))
      proc.mem.Mem.pages

let fire_checkpoint t =
  match t.ck_hook with
  | None -> ()
  | Some f ->
    let ck_tasks =
      List.filter_map
        (fun task ->
           if task.proc.pid = 1 && task.state <> Dead then
             Some
               { Event.ck_pid = task.proc.pid; ck_tid = task.tid;
                 ck_pc = task.cpu.Cpu.pc;
                 ck_regs = Array.copy task.cpu.Cpu.regs;
                 ck_xmm = Array.copy task.cpu.Cpu.xmm;
                 ck_flags = Cpu.pack_flags task.cpu }
           else None)
        t.tasks
    in
    let deltas = ref [] in
    (match root_proc t with
     | None -> ()
     | Some proc ->
       Hashtbl.iter
         (fun idx page ->
            let changed =
              match Hashtbl.find_opt t.ck_shadow idx with
              | Some old -> not (Bytes.equal old page)
              | None -> true
            in
            if changed then begin
              deltas := (idx, Bytes.to_string page) :: !deltas;
              Hashtbl.replace t.ck_shadow idx (Bytes.copy page)
            end)
         proc.mem.Mem.pages);
    let ck_pages =
      List.sort (fun (a, _) (b, _) -> compare a b) !deltas
      |> List.map (fun (idx, s) -> (Int64.of_int (idx lsl 12), s))
    in
    f { Event.ck_events = t.ck_root_events; ck_tasks; ck_pages }

let emit t ev =
  (match t.hook with Some f -> f ev | None -> ());
  match t.ck_hook with
  | None -> ()
  | Some _ ->
    let pid =
      match ev with
      | Event.Exec e -> e.pid
      | Event.Sys s -> s.pid
      | Event.Signal s -> s.pid
    in
    if pid = 1 then begin
      t.ck_root_events <- t.ck_root_events + 1;
      if t.ck_interval > 0 && t.ck_root_events mod t.ck_interval = 0 then
        fire_checkpoint t
    end

(* ------------------------------------------------------------------ *)
(* PRNG (SplitMix64, deterministic)                                    *)
(* ------------------------------------------------------------------ *)

let next_random t =
  t.prng <- Int64.add t.prng 0x9E3779B97F4A7C15L;
  let z = t.prng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

type sys_outcome =
  | Done of Event.sys_record
  | Would_block

let enoent = -2L
let ebadf = -9L
let einval = -22L

let new_obj t o =
  let id = t.next_obj in
  t.next_obj <- id + 1;
  Hashtbl.replace t.objects id o;
  id

let alloc_fd proc entry =
  let fd = proc.next_fd in
  proc.next_fd <- fd + 1;
  Hashtbl.replace proc.fds fd entry;
  fd

let pipe_of t id =
  match Hashtbl.find_opt t.objects id with
  | Some (KPipe p) -> p
  | _ -> invalid_arg "pipe_of"

let close_fd t proc fd =
  match Hashtbl.find_opt proc.fds fd with
  | None -> ebadf
  | Some entry ->
    (match entry with
     | Fd_pipe_r id -> let p = pipe_of t id in p.readers <- p.readers - 1
     | Fd_pipe_w id -> let p = pipe_of t id in p.writers <- p.writers - 1
     | _ -> ());
    Hashtbl.remove proc.fds fd;
    0L

let close_all_fds t proc =
  let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) proc.fds [] in
  List.iter (fun fd -> ignore (close_fd t proc fd)) fds

let kill_process t pid code =
  List.iter
    (fun task ->
       if task.proc.pid = pid && task.state <> Dead then begin
         task.state <- Dead;
         task.proc.exited <- true;
         task.proc.exit_code <- code
       end)
    t.tasks;
  List.iter
    (fun task -> if task.proc.pid = pid then close_all_fds t task.proc)
    t.tasks

let sys_names : (int, string) Hashtbl.t = Hashtbl.create 32

let () =
  List.iter (fun (n, s) -> Hashtbl.replace sys_names n s)
    [ (0, "read"); (1, "write"); (2, "open"); (3, "close"); (8, "lseek");
      (13, "rt_sigaction"); (22, "pipe"); (35, "nanosleep"); (39, "getpid");
      (41, "socket"); (42, "connect"); (57, "fork"); (60, "exit");
      (61, "wait4"); (96, "gettimeofday"); (102, "getuid"); (201, "time");
      (318, "getrandom");
      (0x1000, "thread_create"); (0x1001, "thread_join"); (0x1002, "yield");
      (0x1003, "thread_exit") ]

let sys_name nr =
  match Hashtbl.find_opt sys_names nr with
  | Some s -> s
  | None -> Printf.sprintf "sys_%d" nr

(** Execute the syscall pending at the current pc of [task].  Returns
    [Would_block] to retry later (pc untouched). *)
let handle_syscall t task : sys_outcome =
  let cpu = task.cpu and proc = task.proc in
  let nr = Int64.to_int (Cpu.reg cpu RAX) in
  let a0 = Cpu.reg cpu RDI and a1 = Cpu.reg cpu RSI and a2 = Cpu.reg cpu RDX in
  let a3 = Cpu.reg cpu R10 and a4 = Cpu.reg cpu R8 and a5 = Cpu.reg cpu R9 in
  let args = [| a0; a1; a2; a3; a4; a5 |] in
  let done_ ?(effects = []) ret =
    Cpu.set_reg cpu RAX ret;
    Done { nr = Int64.of_int nr; name = sys_name nr; args; ret; effects }
  in
  match nr with
  | 0 (* read(fd, buf, len) *) -> (
      let fd = Int64.to_int a0 and buf = a1 and len = Int64.to_int a2 in
      match Hashtbl.find_opt proc.fds fd with
      | None -> done_ ebadf
      | Some Fd_stdin -> done_ 0L (* EOF *)
      | Some (Fd_stdout | Fd_stderr) -> done_ ebadf
      | Some (Fd_file f) -> (
          match Hashtbl.find_opt t.objects f.obj with
          | Some (KFile kf) ->
            let avail = String.length kf.data - f.pos in
            let n = max 0 (min len avail) in
            let chunk = String.sub kf.data f.pos n in
            Mem.write_bytes proc.mem buf chunk;
            let off = f.pos in
            f.pos <- f.pos + n;
            done_
              ~effects:
                [ Event.Eff_read
                    { obj = f.obj; off; addr = buf; len = n; data = chunk } ]
              (Int64.of_int n)
          | _ -> done_ ebadf)
      | Some (Fd_pipe_r id) ->
        let p = pipe_of t id in
        let avail = Buffer.length p.q in
        if avail = 0 then
          if p.writers > 0 then Would_block else done_ 0L
        else begin
          let n = min len avail in
          let data = Buffer.contents p.q in
          let chunk = String.sub data 0 n in
          Mem.write_bytes proc.mem buf chunk;
          Buffer.clear p.q;
          Buffer.add_string p.q (String.sub data n (avail - n));
          let off = p.rpos in
          p.rpos <- off + n;
          done_
            ~effects:
              [ Event.Eff_read
                  { obj = id; off; addr = buf; len = n; data = chunk } ]
            (Int64.of_int n)
        end
      | Some (Fd_pipe_w _) -> done_ ebadf
      | Some (Fd_sock s) -> (
          match Hashtbl.find_opt t.objects s.obj with
          | Some (KSock k) ->
            let avail = String.length k.content - s.pos in
            let n = max 0 (min len avail) in
            let chunk = String.sub k.content s.pos n in
            Mem.write_bytes proc.mem buf chunk;
            let off = s.pos in
            s.pos <- s.pos + n;
            done_
              ~effects:
                [ Event.Eff_read
                    { obj = s.obj; off; addr = buf; len = n; data = chunk } ]
              (Int64.of_int n)
          | _ -> done_ ebadf))
  | 1 (* write(fd, buf, len) *) -> (
      let fd = Int64.to_int a0 and buf = a1 and len = Int64.to_int a2 in
      let data = Mem.read_bytes proc.mem buf len in
      match Hashtbl.find_opt proc.fds fd with
      | None -> done_ ebadf
      | Some Fd_stdout ->
        let off = Buffer.length t.out_buf in
        Buffer.add_string t.out_buf data;
        done_
          ~effects:
            [ Event.Eff_write
                { obj = Event.Obj_id.stdout_; off; addr = buf; len } ]
          a2
      | Some Fd_stderr ->
        let off = Buffer.length t.err_buf in
        Buffer.add_string t.err_buf data;
        done_
          ~effects:
            [ Event.Eff_write
                { obj = Event.Obj_id.stderr_; off; addr = buf; len } ]
          a2
      | Some Fd_stdin -> done_ ebadf
      | Some (Fd_file f) -> (
          match Hashtbl.find_opt t.objects f.obj with
          | Some (KFile kf) ->
            if not f.writable then done_ ebadf
            else begin
              let off = f.pos in
              let before = kf.data in
              let pad =
                if off > String.length before then
                  String.make (off - String.length before) '\000'
                else ""
              in
              let keep = min off (String.length before) in
              let tail_start = off + len in
              let tail =
                if tail_start < String.length before then
                  String.sub before tail_start (String.length before - tail_start)
                else ""
              in
              kf.data <- String.sub before 0 keep ^ pad ^ data ^ tail;
              f.pos <- off + len;
              done_
                ~effects:
                  [ Event.Eff_write { obj = f.obj; off; addr = buf; len } ]
                a2
            end
          | _ -> done_ ebadf)
      | Some (Fd_pipe_w id) ->
        let p = pipe_of t id in
        Buffer.add_string p.q data;
        let off = p.wpos in
        p.wpos <- off + len;
        done_
          ~effects:[ Event.Eff_write { obj = id; off; addr = buf; len } ]
          a2
      | Some (Fd_pipe_r _) | Some (Fd_sock _) -> done_ ebadf)
  | 2 (* open(path, flags) *) ->
    let path = Mem.read_cstring proc.mem a0 in
    let flags = Int64.to_int a1 in
    let writable = flags land 3 <> 0 in
    (match Hashtbl.find_opt t.fs path with
     | Some id ->
       (if writable && flags land 0o1000 <> 0 then
          match Hashtbl.find_opt t.objects id with
          | Some (KFile kf) -> kf.data <- ""
          | _ -> ());
       done_ (Int64.of_int (alloc_fd proc (Fd_file { obj = id; pos = 0; writable })))
     | None ->
       if writable then begin
         let id = new_obj t (KFile { fpath = path; data = "" }) in
         Hashtbl.replace t.fs path id;
         done_
           (Int64.of_int (alloc_fd proc (Fd_file { obj = id; pos = 0; writable })))
       end
       else done_ enoent)
  | 3 (* close *) -> done_ (close_fd t proc (Int64.to_int a0))
  | 8 (* lseek(fd, off, whence) *) -> (
      match Hashtbl.find_opt proc.fds (Int64.to_int a0) with
      | Some (Fd_file f) ->
        let target =
          match Int64.to_int a2 with
          | 0 -> Int64.to_int a1
          | 1 -> f.pos + Int64.to_int a1
          | 2 -> (
              match Hashtbl.find_opt t.objects f.obj with
              | Some (KFile kf) -> String.length kf.data + Int64.to_int a1
              | _ -> 0)
          | _ -> -1
        in
        if target < 0 then done_ einval
        else (f.pos <- target; done_ (Int64.of_int target))
      | _ -> done_ ebadf)
  | 13 (* rt_sigaction(signum, handler) *) ->
    if Int64.to_int a0 = 8 then begin
      proc.sigfpe_handler <- a1;
      done_ 0L
    end
    else done_ 0L
  | 22 (* pipe(fds_ptr) *) ->
    let id = new_obj t (KPipe { q = Buffer.create 64; readers = 1; writers = 1;
                       rpos = 0; wpos = 0 }) in
    let rfd = alloc_fd proc (Fd_pipe_r id) in
    let wfd = alloc_fd proc (Fd_pipe_w id) in
    Mem.write proc.mem a0 4 (Int64.of_int rfd);
    Mem.write proc.mem (Int64.add a0 4L) 4 (Int64.of_int wfd);
    done_ 0L
  | 35 (* nanosleep *) -> done_ 0L
  | 39 (* getpid *) -> done_ (Int64.of_int proc.pid)
  | 41 (* socket *) ->
    let id = new_obj t (KSock { content = t.config.web_content }) in
    done_ (Int64.of_int (alloc_fd proc (Fd_sock { obj = id; pos = 0 })))
  | 42 (* connect *) -> done_ 0L
  | 57 (* fork *) ->
    let child_pid = t.next_pid in
    t.next_pid <- child_pid + 1;
    let child_proc =
      { pid = child_pid;
        mem = Mem.clone proc.mem;
        fds = Hashtbl.copy proc.fds;
        next_fd = proc.next_fd;
        sigfpe_handler = proc.sigfpe_handler;
        exited = false; exit_code = 0;
        parent = proc.pid }
    in
    (* shared pipe ends gain a reference *)
    Hashtbl.iter
      (fun _ entry ->
         match entry with
         | Fd_pipe_r id -> let p = pipe_of t id in p.readers <- p.readers + 1
         | Fd_pipe_w id -> let p = pipe_of t id in p.writers <- p.writers + 1
         | _ -> ())
      child_proc.fds;
    let child_cpu = Cpu.clone cpu in
    (* both continue after the syscall; child sees 0 *)
    Cpu.set_reg child_cpu RAX 0L;
    let child_tid = t.next_tid in
    t.next_tid <- child_tid + 1;
    let child_task =
      { tid = child_tid; proc = child_proc; cpu = child_cpu; state = Runnable }
    in
    (* child's pc still points at the syscall insn; advance it past *)
    let _, next_pc =
      Hashtbl.find t.decode_cache cpu.Cpu.pc
    in
    child_cpu.Cpu.pc <- next_pc;
    t.tasks <- t.tasks @ [ child_task ];
    done_ ~effects:[ Event.Eff_spawn child_pid ] (Int64.of_int child_pid)
  | 60 (* exit *) ->
    kill_process t proc.pid (Int64.to_int a0);
    done_ a0
  | 61 (* wait4 *) ->
    let child =
      List.find_opt
        (fun task -> task.proc.parent = proc.pid && task.proc.exited)
        t.tasks
    in
    (match child with
     | Some c -> done_ (Int64.of_int c.proc.pid)
     | None ->
       if List.exists (fun task -> task.proc.parent = proc.pid
                                   && not task.proc.exited) t.tasks
       then Would_block
       else done_ (-10L (* ECHILD *)))
  | 96 (* gettimeofday(tv_ptr) *) ->
    Mem.write proc.mem a0 8 t.config.now;
    Mem.write proc.mem (Int64.add a0 8L) 8
      (Int64.of_int (t.steps mod 1_000_000));
    done_
      ~effects:
        [ Event.Eff_read
            { obj = Event.Obj_id.clock; off = 0; addr = a0; len = 16;
              data = Mem.read_bytes proc.mem a0 16 } ]
      0L
  | 102 (* getuid *) -> done_ t.config.uid
  | 201 (* time *) ->
    if a0 <> 0L then Mem.write proc.mem a0 8 t.config.now;
    let effects =
      if a0 <> 0L then
        [ Event.Eff_read
            { obj = Event.Obj_id.clock; off = 0; addr = a0; len = 8;
              data = Mem.read_bytes proc.mem a0 8 } ]
      else []
    in
    Cpu.set_reg cpu RAX t.config.now;
    Done { nr = Int64.of_int nr; name = "time"; args; ret = t.config.now; effects }
  | 318 (* getrandom(buf, len) *) ->
    let len = Int64.to_int a1 in
    let bytes =
      String.init len (fun i ->
          if i mod 8 = 0 then ignore (next_random t);
          Char.chr
            (Int64.to_int
               (Int64.shift_right_logical t.prng (8 * (i mod 8)))
             land 0xff))
    in
    Mem.write_bytes proc.mem a0 bytes;
    done_
      ~effects:
        [ Event.Eff_read
            { obj = Event.Obj_id.prng; off = 0; addr = a0; len; data = bytes } ]
      a1
  | 0x1000 (* thread_create(entry, stack_top, arg) *) ->
    let tid = t.next_tid in
    t.next_tid <- tid + 1;
    let tcpu = Cpu.clone cpu in
    tcpu.Cpu.pc <- a0;
    Cpu.set_reg tcpu RSP a1;
    Cpu.set_reg tcpu RDI a2;
    t.tasks <- t.tasks @ [ { tid; proc; cpu = tcpu; state = Runnable } ];
    done_ ~effects:[ Event.Eff_spawn tid ] (Int64.of_int tid)
  | 0x1001 (* thread_join(tid) *) ->
    let target = Int64.to_int a0 in
    (match List.find_opt (fun task -> task.tid = target) t.tasks with
     | Some { state = Dead; _ } | None -> done_ 0L
     | Some _ -> Would_block)
  | 0x1002 (* yield *) -> done_ 0L
  | 0x1003 (* thread_exit *) ->
    task.state <- Dead;
    done_ 0L
  | _ -> done_ (-38L (* ENOSYS *))

(* ------------------------------------------------------------------ *)
(* Stepping and scheduling                                             *)
(* ------------------------------------------------------------------ *)

exception Decode_fault of string

let decode_at t (proc : proc) pc =
  match Hashtbl.find_opt t.decode_cache pc with
  | Some r -> r
  | None ->
    let raw = Mem.read_bytes proc.mem pc 64 in
    (match Isa.Codec.decode raw 0 with
     | insn, sz ->
       let r = (insn, Int64.add pc (Int64.of_int sz)) in
       Hashtbl.replace t.decode_cache pc r;
       r
     | exception Isa.Codec.Decode_error m -> raise (Decode_fault m))

(** Execute one instruction of [task].  Returns [false] if the task can
    make no progress right now (blocked). *)
let step_task t task =
  let cpu = task.cpu and proc = task.proc in
  let pc = cpu.Cpu.pc in
  match decode_at t proc pc with
  | exception Decode_fault m ->
    (* illegal instruction: the process dies, the machine reports it *)
    t.steps <- t.steps + 1;
    t.fault <- Some (Bad_decode m);
    kill_process t proc.pid 132;
    true
  | insn, next_pc ->
  let ea = Cpu.effective_addrs cpu insn in
  let regs_before = Array.copy cpu.Cpu.regs in
  let xmm_before = Array.copy cpu.Cpu.xmm in
  let mem_reads =
    let acc = Access.of_insn regs_before insn in
    List.map (fun (a, n) -> (a, Mem.read_bytes proc.mem a n)) acc.Access.r_mem
  in
  let flags_before = Cpu.pack_flags cpu in
  let exec actual_next =
    emit t
      (Event.Exec
         { pid = proc.pid; tid = task.tid; pc; insn; next_pc = actual_next;
           ea; mem_reads; regs_before; xmm_before; flags_before })
  in
  match Cpu.execute cpu proc.mem ~next_pc insn with
  | Next ->
    cpu.Cpu.pc <- next_pc;
    t.steps <- t.steps + 1;
    exec next_pc;
    true
  | Jumped ->
    t.steps <- t.steps + 1;
    exec cpu.Cpu.pc;
    true
  | Halted ->
    t.steps <- t.steps + 1;
    exec next_pc;
    kill_process t proc.pid 0;
    true
  | Do_syscall -> (
      match handle_syscall t task with
      | Done record ->
        if task.state <> Dead then cpu.Cpu.pc <- next_pc;
        t.steps <- t.steps + 1;
        task.state <- (if task.state = Dead then Dead else Runnable);
        exec next_pc;
        Telemetry.Metrics.incr m_syscalls;
        emit t (Event.Sys { pid = proc.pid; tid = task.tid; record });
        true
      | Would_block ->
        task.state <- Blocked;
        false)
  | Fault_div ->
    t.steps <- t.steps + 1;
    if proc.sigfpe_handler <> 0L then begin
      (* push the resume address; the handler returns past the fault *)
      Cpu.stack_push cpu proc.mem next_pc;
      cpu.Cpu.pc <- proc.sigfpe_handler;
      Cpu.set_reg cpu RDI 8L;
      exec proc.sigfpe_handler;
      Telemetry.Metrics.incr m_signals;
      emit t
        (Event.Signal
           { pid = proc.pid; tid = task.tid; signum = 8;
             handler = proc.sigfpe_handler; resume = next_pc });
      true
    end
    else begin
      exec next_pc;
      t.fault <- Some Div_by_zero;
      kill_process t proc.pid 136;
      true
    end

let root_exited t =
  List.for_all
    (fun task -> task.proc.pid <> 1 || task.state = Dead)
    t.tasks

let finish t ~deadlocked ~fuel_exhausted =
  let root =
    List.find_opt (fun task -> task.proc.pid = 1) t.tasks
  in
  { exit_code =
      (match root with
       | Some { proc; _ } when proc.exited -> Some proc.exit_code
       | _ -> None);
    stdout = Buffer.contents t.out_buf;
    stderr = Buffer.contents t.err_buf;
    steps = t.steps;
    fault = t.fault;
    fuel_exhausted;
    deadlocked }

(** Run to completion (root process exit), fuel exhaustion, fault, or
    deadlock. *)
let run t =
  Telemetry.with_span "vm.run" @@ fun () ->
  let steps_before = t.steps in
  let fault_before = t.fault in
  let deadlocked = ref false in
  let out_of_fuel = ref false in
  let charge =
    match t.meter with
    | None -> fun () -> ()
    | Some m -> fun () -> Robust.Meter.charge_vm_steps m 1
  in
  let account () =
    Telemetry.Metrics.add m_steps (t.steps - steps_before);
    if t.fault <> None && fault_before = None then
      Telemetry.Metrics.incr m_faults
  in
  (try
     while not (root_exited t) do
       if t.steps >= t.config.fuel then begin
         out_of_fuel := true;
         raise Exit
       end;
       if t.fault <> None then raise Exit;
       let progressed = ref false in
       let snapshot = t.tasks in
       List.iter
         (fun task ->
            match task.state with
            | Dead -> ()
            | Runnable | Blocked ->
              let budget = ref t.config.quantum in
              let continue_ = ref true in
              while
                !continue_ && !budget > 0 && task.state <> Dead
                && t.fault = None && t.steps < t.config.fuel
              do
                if step_task t task then begin
                  charge ();
                  progressed := true;
                  task.state <-
                    (if task.state = Blocked then Runnable else task.state)
                end
                else continue_ := false;
                decr budget
              done)
         snapshot;
       if not !progressed then begin
         deadlocked := true;
         raise Exit
       end
     done
   with
   | Exit -> ()
   | e ->
     (* a tripped budget or injected fault propagates to the cell
        supervisor; record the step delta before unwinding *)
     account ();
     raise e);
  account ();
  finish t ~deadlocked:!deadlocked ~fuel_exhausted:!out_of_fuel

(** Convenience: load, run, return the result. *)
let run_image ?meter ?config image =
  let t = create ?meter ?config image in
  run t
