(** Events emitted during concrete execution — the raw material a
    Pin-style tracer records. *)

(** How a syscall moved data between guest memory and a kernel object.
    Object ids name kernel entities (files, pipes, sockets, the
    stdio streams, the clock, the PRNG) so taint policies can decide
    whether to propagate through them. *)
type sys_effect =
  | Eff_read of { obj : int; off : int; addr : int64; len : int;
                  data : string }
      (** kernel object [obj] at [off] was copied to memory [addr];
          [data] is the concrete bytes *)
  | Eff_write of { obj : int; off : int; addr : int64; len : int }
      (** memory [addr] was copied into kernel object [obj] at [off] *)
  | Eff_spawn of int  (** new pid or tid *)

type sys_record = {
  nr : int64;
  name : string;
  args : int64 array;  (** RDI, RSI, RDX, R10, R8, R9 at entry *)
  ret : int64;
  effects : sys_effect list;
}

type exec = {
  pid : int;
  tid : int;
  pc : int64;
  insn : Isa.Insn.t;
  next_pc : int64;          (** where control actually went *)
  ea : int64 list;          (** effective addresses touched *)
  mem_reads : (int64 * string) list;
      (** concrete bytes each memory read saw (pre-execution) *)
  regs_before : int64 array;
  xmm_before : float array;
  flags_before : int;  (** packed ZF|SF<<1|CF<<2|OF<<3|PF<<4 *)
}

type t =
  | Exec of exec
  | Sys of { pid : int; tid : int; record : sys_record }
  | Signal of { pid : int; tid : int; signum : int; handler : int64;
                resume : int64 }

(** Architectural snapshot of one task at a checkpoint. *)
type task_snap = {
  ck_pid : int;
  ck_tid : int;
  ck_pc : int64;
  ck_regs : int64 array;
  ck_xmm : float array;
  ck_flags : int;          (** packed as in {!exec.flags_before} *)
}

(** Periodic replay checkpoint of the traced (root) process: CPU
    snapshots of its live tasks plus the memory pages that changed
    since the previous checkpoint.  [ck_events] counts the root
    events emitted before this point, i.e. the checkpoint describes
    the state immediately before trace event [ck_events] — replaying
    forward from here reconstructs any later position without
    re-running the whole program. *)
type checkpoint = {
  ck_events : int;
  ck_tasks : task_snap list;
  ck_pages : (int64 * string) list;
      (** (page base address, page bytes) deltas since the last
          checkpoint; the first checkpoint is relative to the freshly
          loaded image *)
}

(** Well-known kernel object ids. *)
module Obj_id = struct
  let stdin_ = 0
  let stdout_ = 1
  let stderr_ = 2
  let clock = 3
  let prng = 4
  let first_dynamic = 16
end
