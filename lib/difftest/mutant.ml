(** Intentionally-wrong term rewrites, used only to demonstrate that
    the differential oracles have teeth: running the blast-vs-eval
    oracle with [bad_simplify] in the pipeline must produce a failure
    within the smoke budget (see the acceptance test and the
    [--mutant] CLI mode).  Never wired into the real solver. *)

module E = Smt.Expr

(* the classic strength-reduction typo: absorb OR into XOR.  They
   agree unless both operands have a 1 bit in the same position, so a
   random constraint stream exposes it quickly. *)
let rec break (e : E.t) : E.t =
  match e with
  | E.Binop (E.Or, a, b) -> E.Binop (E.Xor, break a, break b)
  | E.Var _ | E.Const _ -> e
  | E.Unop (op, a) -> E.Unop (op, break a)
  | E.Binop (op, a, b) -> E.Binop (op, break a, break b)
  | E.Cmp (op, a, b) -> E.Cmp (op, break a, break b)
  | E.Ite (c, a, b) -> E.Ite (break c, break a, break b)
  | E.Extract (hi, lo, a) -> E.Extract (hi, lo, break a)
  | E.Concat (a, b) -> E.Concat (break a, break b)
  | E.Zext (w, a) -> E.Zext (w, break a)
  | E.Sext (w, a) -> E.Sext (w, break a)
  | E.Fbin (op, a, b) -> E.Fbin (op, break a, break b)
  | E.Fcmp (op, a, b) -> E.Fcmp (op, break a, break b)
  | E.Fsqrt a -> E.Fsqrt (break a)
  | E.Fof_int a -> E.Fof_int (break a)
  | E.Fto_int a -> E.Fto_int (break a)

(** A "simplifier" that first runs the real one, then mis-rewrites. *)
let bad_simplify (e : E.t) : E.t = break (Smt.Simplify.run e)
