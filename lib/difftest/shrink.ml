(** Greedy shrinking of failing cases to minimal counterexamples.

    Two strategies cover every case family:
    - [list_]: ddmin-style chunk removal over an operation /
      instruction list (scripts, programs, guard chains), valid for
      any family whose runner tolerates arbitrary sublists;
    - [expr]: structural reduction of a constraint — repeatedly
      replace some node by a same-width proper subterm or a constant,
      as long as the predicate keeps failing.

    [fails] must return [true] when the candidate still reproduces the
    bug; both shrinkers are step-bounded so a pathological predicate
    cannot loop. *)

module E = Smt.Expr

let max_steps = 2000

(** Smallest sublist of [xs] on which [fails] still holds. *)
let list_ (fails : 'a list -> bool) (xs : 'a list) : 'a list =
  let steps = ref 0 in
  let try_ c = incr steps; !steps <= max_steps && fails c in
  (* remove chunks of decreasing size, restarting after any success *)
  let rec pass xs n =
    if n = 0 then xs
    else
      let len = List.length xs in
      let rec at i =
        if i >= len then pass xs (n / 2)
        else
          let candidate = List.filteri (fun j _ -> j < i || j >= i + n) xs in
          if candidate <> xs && try_ candidate then pass candidate n
          else at (i + n)
      in
      at 0
  in
  if xs = [] then xs else pass xs (max 1 (List.length xs / 2))

(* proper subterms of [e] with width [w] *)
let subterms_of_width w (e : E.t) : E.t list =
  let kids_of = function
    | E.Var _ | E.Const _ -> []
    | E.Unop (_, a) | E.Extract (_, _, a) | E.Zext (_, a) | E.Sext (_, a)
    | E.Fsqrt a | E.Fof_int a | E.Fto_int a -> [ a ]
    | E.Binop (_, a, b) | E.Cmp (_, a, b) | E.Concat (a, b)
    | E.Fbin (_, a, b) | E.Fcmp (_, a, b) -> [ a; b ]
    | E.Ite (c, a, b) -> [ c; a; b ]
  in
  let rec collect e acc =
    List.fold_left
      (fun acc k ->
         let acc = if E.width_of k = w then k :: acc else acc in
         collect k acc)
      acc (kids_of e)
  in
  List.rev (collect e [])

(* one shrinking rewrite anywhere in the tree, outermost first.
   [fails_in_ctx c] plugs the candidate into the surrounding term and
   re-runs the predicate.  Every rewrite strictly reduces node count
   (proper subterm, or non-constant -> constant), so iterating to a
   fixpoint terminates. *)
let rec step (fails_in_ctx : E.t -> bool) (e : E.t) : E.t option =
  match e with
  | E.Const _ | E.Var _ -> None
  | _ -> (
      let w = E.width_of e in
      let cands =
        subterms_of_width w e @ [ E.Const (0L, w); E.Const (1L, w) ]
      in
      match List.find_opt fails_in_ctx cands with
      | Some c -> Some c
      | None ->
        let child ctx a =
          Option.map ctx (step (fun a' -> fails_in_ctx (ctx a')) a)
        in
        let first = function
          | [] -> None
          | tries ->
            List.fold_left
              (fun acc t -> match acc with Some _ -> acc | None -> t ())
              None tries
        in
        (match e with
         | E.Unop (op, a) -> child (fun a -> E.Unop (op, a)) a
         | E.Extract (hi, lo, a) -> child (fun a -> E.Extract (hi, lo, a)) a
         | E.Zext (w', a) -> child (fun a -> E.Zext (w', a)) a
         | E.Sext (w', a) -> child (fun a -> E.Sext (w', a)) a
         | E.Fsqrt a -> child (fun a -> E.Fsqrt a) a
         | E.Fof_int a -> child (fun a -> E.Fof_int a) a
         | E.Fto_int a -> child (fun a -> E.Fto_int a) a
         | E.Binop (op, a, b) ->
           first
             [ (fun () -> child (fun a -> E.Binop (op, a, b)) a);
               (fun () -> child (fun b -> E.Binop (op, a, b)) b) ]
         | E.Cmp (op, a, b) ->
           first
             [ (fun () -> child (fun a -> E.Cmp (op, a, b)) a);
               (fun () -> child (fun b -> E.Cmp (op, a, b)) b) ]
         | E.Concat (a, b) ->
           first
             [ (fun () -> child (fun a -> E.Concat (a, b)) a);
               (fun () -> child (fun b -> E.Concat (a, b)) b) ]
         | E.Fbin (op, a, b) ->
           first
             [ (fun () -> child (fun a -> E.Fbin (op, a, b)) a);
               (fun () -> child (fun b -> E.Fbin (op, a, b)) b) ]
         | E.Fcmp (op, a, b) ->
           first
             [ (fun () -> child (fun a -> E.Fcmp (op, a, b)) a);
               (fun () -> child (fun b -> E.Fcmp (op, a, b)) b) ]
         | E.Ite (c, a, b) ->
           first
             [ (fun () -> child (fun c -> E.Ite (c, a, b)) c);
               (fun () -> child (fun a -> E.Ite (c, a, b)) a);
               (fun () -> child (fun b -> E.Ite (c, a, b)) b) ]
         | E.Var _ | E.Const _ -> None))

(** Smallest same-width reduction of [e] on which [fails] holds. *)
let expr (fails : E.t -> bool) (e : E.t) : E.t =
  let steps = ref 0 in
  let fails c = incr steps; !steps <= max_steps && fails c in
  let rec loop e =
    match step fails e with Some e' -> loop e' | None -> e
  in
  loop e
