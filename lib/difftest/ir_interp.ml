(** A concrete interpreter for lifted {!Ir.Bil} statements.

    This is the reference executor the VM-vs-IR oracle runs against:
    every architectural variable lives in a plain environment, memory
    is a private {!Vm.Mem} image, and expression semantics are exactly
    {!Smt.Eval}'s (each [Bil.exp] is translated to a constant-leaf
    {!Smt.Expr} with loads resolved eagerly, then evaluated).  Any
    disagreement with {!Vm.Cpu} on the same instruction stream is a
    lifting (Es1) or evaluation (Es3) bug. *)

module E = Smt.Expr

exception Unbound_var of string

type t = {
  vars : (string, int64) Hashtbl.t;
  mem : Vm.Mem.t;
}

let create ~mem = { vars = Hashtbl.create 64; mem }

let set t name w v = Hashtbl.replace t.vars name (Int64.logand v (E.mask w))

let get t name w =
  match Hashtbl.find_opt t.vars name with
  | Some v -> Int64.logand v (E.mask w)
  | None -> raise (Unbound_var name)

(* translate to a constant-leaf Smt term; loads evaluate their address
   recursively, so the result inherits Eval's operator semantics *)
let rec to_expr t (e : Ir.Bil.exp) : E.t =
  match e with
  | Var (n, w) -> E.Const (get t n w, w)
  | Int (v, w) -> E.Const (Int64.logand v (E.mask w), w)
  | Load (a, n) -> E.Const (Vm.Mem.read t.mem (eval t a) n, 8 * n)
  | Unop (op, a) -> E.Unop (op, to_expr t a)
  | Binop (op, a, b) -> E.Binop (op, to_expr t a, to_expr t b)
  | Cmp (op, a, b) -> E.Cmp (op, to_expr t a, to_expr t b)
  | Ite (c, a, b) -> E.Ite (to_expr t c, to_expr t a, to_expr t b)
  | Extract (hi, lo, a) -> E.Extract (hi, lo, to_expr t a)
  | Concat (a, b) -> E.Concat (to_expr t a, to_expr t b)
  | Zext (w, a) -> E.Zext (w, to_expr t a)
  | Sext (w, a) -> E.Sext (w, to_expr t a)
  | Fbin (op, a, b) -> E.Fbin (op, to_expr t a, to_expr t b)
  | Fcmp (op, a, b) -> E.Fcmp (op, to_expr t a, to_expr t b)
  | Fsqrt a -> E.Fsqrt (to_expr t a)
  | Fof_int a -> E.Fof_int (to_expr t a)
  | Fto_int a -> E.Fto_int (to_expr t a)

and eval t (e : Ir.Bil.exp) : int64 =
  Smt.Eval.eval ~memo:false (Hashtbl.create 1) (to_expr t e)

type control =
  | Fallthrough
  | Branch of bool * int64  (** condition value, target if true *)
  | Jump of int64
  | Sys
  | Stuck of string         (** [Special] — unliftable *)

(** Run one instruction's statement list.  Returns the control
    disposition; state and memory are updated in place. *)
let run_stmts t (stmts : Ir.Bil.stmt list) : control =
  let rec go = function
    | [] -> Fallthrough
    | s :: rest -> (
        match (s : Ir.Bil.stmt) with
        | Set (name, w, e) ->
          set t name w (eval t e);
          go rest
        | Store (a, n, v) ->
          Vm.Mem.write t.mem (eval t a) n (eval t v);
          go rest
        | Cjmp (c, target) -> Branch (eval t c = 1L, target)
        | Jmp e -> Jump (eval t e)
        | Syscall -> Sys
        | Special msg -> Stuck msg)
  in
  go stmts
