(** Seed-driven fuzzing loop: generate cases, run oracles, shrink
    failures.

    Every case is determined by [(oracle, case seed)], and case seeds
    are mixed deterministically from a master seed and a counter, so a
    whole campaign replays from two integers — which is also what a
    corpus entry stores. *)

module E = Smt.Expr

let spf = Printf.sprintf

let oracle_names = [ "blast"; "session"; "vmir"; "flip" ]

(* per-oracle throughput metrics; [bin/fuzz.exe] renders these as its
   exit summary table *)
let m_cases o = Telemetry.Metrics.counter (spf "fuzz.%s.cases" o)
let m_failures o = Telemetry.Metrics.counter (spf "fuzz.%s.failures" o)
let m_shrink_steps o = Telemetry.Metrics.counter (spf "fuzz.%s.shrink_steps" o)
let m_wall o = Telemetry.Metrics.gauge (spf "fuzz.%s.wall_s" o)

(* splitmix-flavoured mixer: case seeds must not collide across
   nearby master seeds, and must stay positive for [Random.State] *)
let mix master i =
  let h = (master * 0x9e3779b9) + (i * 0x85ebca6b) in
  let h = h lxor (h lsr 16) in
  let h = h * 0xc2b2ae35 in
  (h lxor (h lsr 13)) land max_int

(* ------------------------------------------------------------------ *)
(* Case rendering (for failure reports and corpus notes)               *)
(* ------------------------------------------------------------------ *)

let render_script (s : Gen.script) =
  String.concat "; "
    (List.map
       (function
         | Gen.Push -> "push"
         | Gen.Pop -> "pop"
         | Gen.Assert c -> spf "assert %s" (E.show c)
         | Gen.Check -> "check")
       s.ops)

let render_prog (p : Gen.prog) =
  String.concat "\n"
    (List.map
       (fun (r, v) -> spf "  %s := 0x%Lx" (Isa.Reg.show r) v)
       p.init_regs
     @ List.mapi (fun i insn -> spf "%3d: %s" i (Isa.Insn.show insn)) p.insns)

let render_flip (f : Gen.flip) =
  let op = function
    | Gen.Gadd k -> spf "add %d" k
    | Gen.Gsub k -> spf "sub %d" k
    | Gen.Gxor k -> spf "xor 0x%x" k
    | Gen.Gand k -> spf "and 0x%x" k
    | Gen.Gimul k -> spf "imul %d" k
    | Gen.Gshl k -> spf "shl %d" k
  in
  spf "byte -> %s; guard == %Ld; decoy %C"
    (String.concat " -> " (List.map op f.g_ops))
    f.g_target f.g_decoy

(* ------------------------------------------------------------------ *)
(* Running and shrinking one case                                      *)
(* ------------------------------------------------------------------ *)

(* an oracle that escapes with an exception is itself a finding *)
let guard f = try f () with e -> Error (spf "raised %s" (Printexc.to_string e))

(** Run the case [(oracle, seed)].  Returns the oracle verdict and the
    rendered case text.  [simplify] reaches only the blast oracle's
    pipeline (used by the mutant sanity mode). *)
let run_case ?simplify (oracle : string) (seed : int) :
  (unit, string) result * string =
  match oracle with
  | "blast" ->
    let c = Gen.of_seed Gen.gen_constraint seed in
    (guard (fun () -> Oracle.blast_vs_eval ?simplify c), E.show c)
  | "session" ->
    let s = Gen.of_seed Gen.gen_script seed in
    (guard (fun () -> Oracle.session_vs_oneshot s), render_script s)
  | "vmir" ->
    let p = Gen.of_seed Gen.gen_prog seed in
    (guard (fun () -> Oracle.vm_vs_ir p), render_prog p)
  | "flip" ->
    let f = Gen.of_seed Gen.gen_flip seed in
    (guard (fun () -> Oracle.concolic_flip f), render_flip f)
  | o -> invalid_arg ("Harness.run_case: unknown oracle " ^ o)

(** Shrink the failing case [(oracle, seed)] to a minimal rendering,
    or [None] if the failure does not reproduce (flaky oracle —
    should never happen with seed-determined cases). *)
let shrink_case ?simplify (oracle : string) (seed : int) : string option =
  let steps = m_shrink_steps oracle in
  (* every oracle evaluation during shrinking is one shrink step *)
  let failing r =
    Telemetry.Metrics.incr steps;
    match r with Error _ -> true | Ok () -> false
  in
  match oracle with
  | "blast" ->
    let c = Gen.of_seed Gen.gen_constraint seed in
    let fails c =
      failing (guard (fun () -> Oracle.blast_vs_eval ?simplify c))
    in
    if fails c then Some (E.show (Shrink.expr fails c)) else None
  | "session" ->
    let s = Gen.of_seed Gen.gen_script seed in
    let fails ops =
      failing (guard (fun () -> Oracle.session_vs_oneshot { Gen.ops }))
    in
    if fails s.ops then Some (render_script { Gen.ops = Shrink.list_ fails s.ops })
    else None
  | "vmir" ->
    let p = Gen.of_seed Gen.gen_prog seed in
    let fails insns =
      failing (guard (fun () -> Oracle.vm_vs_ir { p with Gen.insns }))
    in
    if fails p.insns then
      Some (render_prog { p with Gen.insns = Shrink.list_ fails p.insns })
    else None
  | "flip" ->
    let f = Gen.of_seed Gen.gen_flip seed in
    let fails g_ops =
      failing (guard (fun () -> Oracle.concolic_flip { f with Gen.g_ops }))
    in
    if fails f.g_ops then
      Some (render_flip { f with Gen.g_ops = Shrink.list_ fails f.g_ops })
    else None
  | o -> invalid_arg ("Harness.shrink_case: unknown oracle " ^ o)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type failure = {
  oracle : string;
  seed : int;      (** the case seed — enough to replay *)
  message : string;
  rendered : string;
  shrunk : string option;
}

type report = { oracle : string; runs : int; failures : failure list }

(** Run [budget] fresh cases of [oracle], case seeds mixed from
    [seed].  Failures are shrunk as they are found. *)
let run ?simplify ~seed ~budget (oracle : string) : report =
  let cases = m_cases oracle and fails = m_failures oracle in
  let wall = m_wall oracle in
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  for i = 0 to budget - 1 do
    let case_seed = mix seed i in
    let outcome, rendered = run_case ?simplify oracle case_seed in
    Telemetry.Metrics.incr cases;
    match outcome with
    | Ok () -> ()
    | Error message ->
      Telemetry.Metrics.incr fails;
      let shrunk = shrink_case ?simplify oracle case_seed in
      failures :=
        { oracle; seed = case_seed; message; rendered; shrunk } :: !failures
  done;
  Telemetry.Metrics.gauge_add wall (Unix.gettimeofday () -. t0);
  { oracle; runs = budget; failures = List.rev !failures }

let pp_failure ppf (f : failure) =
  Fmt.pf ppf "@[<v2>[%s] seed %d: %s@,case: %s%a@]" f.oracle f.seed f.message
    f.rendered
    (fun ppf -> function
       | None -> ()
       | Some s -> Fmt.pf ppf "@,shrunk: %s" s)
    f.shrunk

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%s: %d runs, %d failures%a@]" r.oracle r.runs
    (List.length r.failures)
    (fun ppf fs -> List.iter (fun f -> Fmt.pf ppf "@,%a" pp_failure f) fs)
    r.failures

(* ------------------------------------------------------------------ *)
(* Environment overrides                                               *)
(* ------------------------------------------------------------------ *)

(** [FUZZ_SEED] / [FUZZ_BUDGET] let CI and developers re-seed or
    extend the smoke runs without editing test sources. *)
let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> default)

let seed_from_env default = env_int "FUZZ_SEED" default

let budget_from_env default = env_int "FUZZ_BUDGET" default
