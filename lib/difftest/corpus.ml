(** Persistent regression corpus.

    Every interesting case — typically a shrunk fuzzing failure after
    the underlying bug is fixed — is stored as a tiny text file naming
    its oracle and case seed.  Because case generation is a pure
    function of the seed (see {!Gen.of_seed}), replaying an entry
    regenerates the exact case byte-for-byte; the corpus never stores
    serialized terms that could drift from the generator.

    File format ([<oracle>-<seed>.case]):
    {v
    # free-text note lines (e.g. the shrunk counterexample)
    oracle vmir
    seed 123456
    v} *)

type entry = {
  oracle : string;
  seed : int;
  note : string option;  (** human context; ignored by the replayer *)
}

let filename (e : entry) = Printf.sprintf "%s-%d.case" e.oracle e.seed

let render (e : entry) : string =
  let buf = Buffer.create 128 in
  (match e.note with
   | None -> ()
   | Some note ->
     String.split_on_char '\n' note
     |> List.iter (fun l -> Buffer.add_string buf ("# " ^ l ^ "\n")));
  Buffer.add_string buf (Printf.sprintf "oracle %s\n" e.oracle);
  Buffer.add_string buf (Printf.sprintf "seed %d\n" e.seed);
  Buffer.contents buf

let parse (text : string) : (entry, string) result =
  let lines = String.split_on_char '\n' text in
  let note = Buffer.create 64 in
  let oracle = ref None and seed = ref None in
  let err = ref None in
  List.iter
    (fun line ->
       let line = String.trim line in
       if line = "" || !err <> None then ()
       else if String.length line > 0 && line.[0] = '#' then begin
         let l = String.sub line 1 (String.length line - 1) in
         let l = if String.length l > 0 && l.[0] = ' ' then
             String.sub l 1 (String.length l - 1) else l in
         if Buffer.length note > 0 then Buffer.add_char note '\n';
         Buffer.add_string note l
       end
       else
         match String.index_opt line ' ' with
         | None -> err := Some ("malformed line: " ^ line)
         | Some i ->
           let key = String.sub line 0 i in
           let value =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           (match key with
            | "oracle" ->
              if List.mem value Harness.oracle_names then oracle := Some value
              else err := Some ("unknown oracle: " ^ value)
            | "seed" -> (
                match int_of_string_opt value with
                | Some v -> seed := Some v
                | None -> err := Some ("bad seed: " ^ value))
            | k -> err := Some ("unknown key: " ^ k)))
    lines;
  match (!err, !oracle, !seed) with
  | Some e, _, _ -> Error e
  | None, Some oracle, Some seed ->
    Ok
      { oracle;
        seed;
        note = (if Buffer.length note > 0 then Some (Buffer.contents note)
                else None) }
  | None, None, _ -> Error "missing oracle"
  | None, _, None -> Error "missing seed"

let load (path : string) : (entry, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    Result.map_error (fun e -> path ^ ": " ^ e) (parse text)

(** All [*.case] entries under [dir], in filename order (deterministic
    replay order).  Unparseable files surface as [Error]s so a corrupt
    corpus fails loudly rather than silently shrinking. *)
let load_dir (dir : string) : (entry, string) result list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.sort compare names;
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".case")
    |> List.map (fun n -> load (Filename.concat dir n))

let save (dir : string) (e : entry) : string =
  let path = Filename.concat dir (filename e) in
  let oc = open_out_bin path in
  output_string oc (render e);
  close_out oc;
  path

let m_replays = Telemetry.Metrics.counter "fuzz.corpus.replays"

(** Re-run one corpus entry through its oracle. *)
let replay (e : entry) : (unit, string) result =
  Telemetry.Metrics.incr m_replays;
  fst (Harness.run_case e.oracle e.seed)

(** Entry for a fresh failure: seed plus a note holding the diagnostic
    and the shrunk counterexample, ready to promote into [test/corpus]. *)
let of_failure (f : Harness.failure) : entry =
  let note =
    String.concat "\n"
      ([ f.message ]
       @ match f.shrunk with None -> [] | Some s -> [ "shrunk: " ^ s ])
  in
  { oracle = f.oracle; seed = f.seed; note = Some note }
