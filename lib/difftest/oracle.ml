(** The four differential oracles.

    Each takes a generated case and returns [Ok ()] when every layer
    agreed, or [Error message] describing the divergence.  The
    messages are diagnostic text for the corpus / CLI; the harness
    pairs them with the rendered case and a shrunk counterexample.

    In the paper's error-stage taxonomy: (c) catches Es1 lifting
    errors, (d) catches Es2 propagation errors end-to-end, and (a)/(b)
    catch Es3 constraint-model errors. *)

module E = Smt.Expr

let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* (a) Blast + CDCL vs brute-force Eval                                *)
(* ------------------------------------------------------------------ *)

(* enumerate every assignment of [vars]; call [f env] until it returns
   [Some _].  Total bits are bounded by the generator (<= 12). *)
let enumerate (vars : E.var list) (f : Smt.Eval.env -> 'a option) : 'a option =
  let env : Smt.Eval.env = Hashtbl.create 8 in
  let rec go = function
    | [] -> f env
    | (v : E.var) :: rest ->
      let n = Int64.to_int (E.mask v.width) in
      let rec try_val i =
        if i > n then None
        else begin
          Hashtbl.replace env v.vname (Int64.of_int i);
          match go rest with Some r -> Some r | None -> try_val (i + 1)
        end
      in
      try_val 0
  in
  go vars

let holds_defensive env c =
  try Smt.Eval.holds env c with Smt.Eval.Unbound _ -> false

(* a model may omit variables the simplifier eliminated; default them *)
let model_env (vars : E.var list) (m : (string * int64) list) : Smt.Eval.env =
  let env : Smt.Eval.env = Hashtbl.create 8 in
  List.iter (fun (v : E.var) -> Hashtbl.replace env v.vname 0L) vars;
  List.iter (fun (n, v) -> Hashtbl.replace env n v) m;
  env

(** Cross-check the simplify → blast → CDCL pipeline against
    brute-force enumeration of the original constraint.  [simplify]
    is a parameter so the mutant sanity check can inject a broken
    rewrite into the pipeline under test. *)
let blast_vs_eval ?(simplify = fun e -> Smt.Simplify.run e) (c : E.t) :
  (unit, string) result =
  let vars = E.vars_of_list [ c ] in
  let total_bits = List.fold_left (fun a (v : E.var) -> a + v.width) 0 vars in
  if total_bits > 14 then Ok () (* out of brute-force range; skip *)
  else
    let witness =
      enumerate vars (fun env ->
          if holds_defensive env c then
            Some
              (List.map
                 (fun (v : E.var) -> (v.vname, Hashtbl.find env v.vname))
                 vars)
          else None)
    in
    let blast = Smt.Blast.create () in
    let solver_says =
      match Smt.Blast.assert_true blast (simplify c) with
      | exception Smt.Blast.Unsupported_fp -> `Skip
      | () -> (
          match Smt.Blast.solve ~conflict_budget:200_000 blast with
          | Smt.Sat.Sat -> `Sat (Smt.Blast.model blast)
          | Smt.Sat.Unsat -> `Unsat
          | Smt.Sat.Unknown -> `Unknown)
    in
    match (witness, solver_says) with
    | _, `Skip -> Ok () (* FP constraint: not blastable by design *)
    | Some w, `Unsat ->
      Error
        (spf "brute force found %s but blast+CDCL says unsat"
           (String.concat ","
              (List.map (fun (n, v) -> spf "%s=%Ld" n v) w)))
    | None, `Sat m ->
      Error
        (spf "brute force exhausted %d assignments (unsat) but solver says \
              sat with %s"
           (1 lsl total_bits)
           (String.concat "," (List.map (fun (n, v) -> spf "%s=%Ld" n v) m)))
    | Some _, `Sat m when not (holds_defensive (model_env vars m) c) ->
      Error
        (spf "solver model %s does not satisfy the original constraint"
           (String.concat "," (List.map (fun (n, v) -> spf "%s=%Ld" n v) m)))
    | _, `Unknown ->
      Error "solver answered unknown on a brute-forceable instance"
    | Some _, `Sat _ | None, `Unsat -> Ok ()

(* ------------------------------------------------------------------ *)
(* (b) Incremental session vs one-shot solver                          *)
(* ------------------------------------------------------------------ *)

let outcome_tag : Smt.Session.outcome -> string = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

(** Replay a push/pop/assert/check script on one long-lived session
    and cross-check every [Check] against a fresh one-shot solve of
    the same assertion set.  Sat models from both sides must satisfy
    the assertions under {!Smt.Eval}. *)
let session_vs_oneshot (s : Gen.script) : (unit, string) result =
  let session = Smt.Session.create () in
  let check_model side cs m =
    let env = model_env (E.vars_of_list cs) m in
    if List.for_all (holds_defensive env) cs then Ok ()
    else Error (spf "%s model does not satisfy the assertions" side)
  in
  let rec go idx = function
    | [] -> Ok ()
    | op :: rest -> (
        match (op : Gen.script_op) with
        | Push -> Smt.Session.push session; go (idx + 1) rest
        | Pop ->
          if Smt.Session.depth session > 0 then Smt.Session.pop session;
          go (idx + 1) rest
        | Assert c -> Smt.Session.assert_ session c; go (idx + 1) rest
        | Check -> (
            let cs = Smt.Session.assertions session in
            let incr = Smt.Session.check session in
            let oneshot = Smt.Solver.solve cs in
            let continue () = go (idx + 1) rest in
            match (incr, oneshot) with
            | Smt.Session.Sat m1, Smt.Solver.Sat m2 -> (
                match check_model "session" cs m1 with
                | Error e -> Error (spf "op %d: %s" idx e)
                | Ok () -> (
                    match check_model "one-shot" cs m2 with
                    | Error e -> Error (spf "op %d: %s" idx e)
                    | Ok () -> continue ()))
            | Smt.Session.Unsat, Smt.Solver.Unsat -> continue ()
            | Smt.Session.Unknown _, Smt.Solver.Unknown _ -> continue ()
            | r1, r2 ->
              Error
                (spf "op %d: session says %s, one-shot says %s" idx
                   (outcome_tag r1) (outcome_tag r2))))
  in
  go 0 s.ops

(* ------------------------------------------------------------------ *)
(* (c) Concrete VM vs lifted-IR interpretation                         *)
(* ------------------------------------------------------------------ *)

(* x86 leaves some flags undefined after multiplies; the CPU models
   them one way (CF/OF = overflow) and the lifter another (CF/OF = 0
   for imul, untouched for mul).  Those flags are don't-care until the
   next instruction that defines them. *)
let undef_after : Isa.Insn.t -> string list = function
  | Alu (Imul, _, _, _) | Mul _ -> [ "CF"; "OF" ]
  | _ -> []

(* flags an instruction (re)defines on both sides *)
let defines : Isa.Insn.t -> string list = function
  | Alu (Imul, _, _, _) -> [ "ZF"; "SF"; "PF" ]
  | Mul _ -> []
  | Alu _ | Neg _ | Cmp _ | Test _ | Ucomisd _ ->
    [ "ZF"; "SF"; "CF"; "OF"; "PF" ]
  | _ -> []

let cond_flags : Isa.Insn.cond -> string list = function
  | E | NE -> [ "ZF" ]
  | L | GE -> [ "SF"; "OF" ]
  | LE | G -> [ "ZF"; "SF"; "OF" ]
  | B | AE -> [ "CF" ]
  | BE | A -> [ "CF"; "ZF" ]
  | S | NS -> [ "SF" ]
  | O | NO -> [ "OF" ]
  | P | NP -> [ "PF" ]

let cpu_flag (cpu : Vm.Cpu.t) = function
  | "ZF" -> cpu.flags.zf
  | "SF" -> cpu.flags.sf
  | "CF" -> cpu.flags.cf
  | "OF" -> cpu.flags.o_f
  | "PF" -> cpu.flags.pf
  | f -> invalid_arg f

let all_flags = [ "ZF"; "SF"; "CF"; "OF"; "PF" ]

module SS = Set.Make (String)

(** Execute the program on the concrete CPU and, in parallel, through
    {!Ir.Lifter.full} + {!Ir_interp}; compare registers, flags (minus
    the undefined set), scalar-double state and touched memory after
    every instruction. *)
let vm_vs_ir (p : Gen.prog) : (unit, string) result =
  let cpu = Vm.Cpu.create () in
  let mem = Vm.Mem.create () in
  List.iteri
    (fun i b ->
       Vm.Mem.write_u8 mem (Int64.add Gen.scratch_base (Int64.of_int i)) b)
    p.init_mem;
  List.iter (fun (r, v) -> Vm.Cpu.set_reg cpu r v) p.init_regs;
  Vm.Cpu.set_reg cpu Isa.Reg.R8 Gen.scratch_base;
  Vm.Cpu.set_reg cpu Isa.Reg.R9 5L;
  Vm.Cpu.set_reg cpu Isa.Reg.RSP Gen.stack_base;
  Vm.Cpu.set_reg cpu Isa.Reg.RBP Gen.stack_base;
  List.iter
    (fun (x, bits) -> Vm.Cpu.set_xmm cpu x (Int64.float_of_bits bits))
    p.init_xmm;
  let ir = Ir_interp.create ~mem:(Vm.Mem.clone mem) in
  List.iter
    (fun r -> Ir_interp.set ir (Isa.Reg.show r) 64 (Vm.Cpu.reg cpu r))
    Isa.Reg.all;
  List.iter (fun f -> Ir_interp.set ir f 1 0L) all_flags;
  List.iter
    (fun x ->
       Ir_interp.set ir (Isa.Reg.show_xmm x) 64
         (Int64.bits_of_float (Vm.Cpu.xmm cpu x)))
    Isa.Reg.all_xmm;
  let touched = ref [] in
  let undef = ref SS.empty in
  let compare_state idx insn =
    let fail what = Error (spf "insn %d (%s): %s" idx (Isa.Insn.show insn) what) in
    let reg_bad =
      List.find_opt
        (fun r ->
           Vm.Cpu.reg cpu r <> Ir_interp.get ir (Isa.Reg.show r) 64)
        Isa.Reg.all
    in
    match reg_bad with
    | Some r ->
      fail
        (spf "%s: cpu=0x%Lx ir=0x%Lx" (Isa.Reg.show r) (Vm.Cpu.reg cpu r)
           (Ir_interp.get ir (Isa.Reg.show r) 64))
    | None -> (
        let flag_bad =
          List.find_opt
            (fun f ->
               (not (SS.mem f !undef))
               && cpu_flag cpu f <> (Ir_interp.get ir f 1 = 1L))
            all_flags
        in
        match flag_bad with
        | Some f ->
          fail
            (spf "flag %s: cpu=%b ir=%b" f (cpu_flag cpu f)
               (Ir_interp.get ir f 1 = 1L))
        | None -> (
            let xmm_bad =
              List.find_opt
                (fun x ->
                   Int64.bits_of_float (Vm.Cpu.xmm cpu x)
                   <> Ir_interp.get ir (Isa.Reg.show_xmm x) 64)
                Isa.Reg.all_xmm
            in
            match xmm_bad with
            | Some x ->
              fail
                (spf "%s: cpu=0x%Lx ir=0x%Lx" (Isa.Reg.show_xmm x)
                   (Int64.bits_of_float (Vm.Cpu.xmm cpu x))
                   (Ir_interp.get ir (Isa.Reg.show_xmm x) 64))
            | None -> Ok ()))
  in
  let compare_memory () =
    let bad =
      List.find_opt
        (fun a -> Vm.Mem.read mem a 8 <> Vm.Mem.read ir.mem a 8)
        !touched
    in
    match bad with
    | Some a ->
      Error
        (spf "memory at 0x%Lx: cpu=0x%Lx ir=0x%Lx" a (Vm.Mem.read mem a 8)
           (Vm.Mem.read ir.mem a 8))
    | None -> Ok ()
  in
  let rec step idx = function
    | [] -> compare_memory ()
    | insn :: rest -> (
        touched := Vm.Cpu.effective_addrs cpu insn @ !touched;
        (* a condition read over an undefined flag is legal x86 but
           implementation-defined: adopt the CPU's resolution on the
           IR side so downstream state stays comparable *)
        let sync_cond c =
          List.iter
            (fun f ->
               if SS.mem f !undef then
                 Ir_interp.set ir f 1 (if cpu_flag cpu f then 1L else 0L))
            (cond_flags c)
        in
        (match (insn : Isa.Insn.t) with
         | Setcc (c, _) | Cmovcc (c, _, _) | Jcc (c, _) -> sync_cond c
         | _ -> ());
        let next_pc = Int64.of_int (0x1000 + (idx * 16)) in
        match Vm.Cpu.execute cpu mem ~next_pc insn with
        | exception e ->
          Error (spf "insn %d (%s): cpu raised %s" idx (Isa.Insn.show insn)
                   (Printexc.to_string e))
        | Vm.Cpu.Fault_div -> compare_memory () (* both sides stop here *)
        | Vm.Cpu.Next -> (
            let stmts = Ir.Lifter.lift Ir.Lifter.full ~next:next_pc insn in
            match Ir_interp.run_stmts ir stmts with
            | exception Ir_interp.Unbound_var v ->
              Error
                (spf "insn %d (%s): lifted code reads undefined %s" idx
                   (Isa.Insn.show insn) v)
            | Ir_interp.Fallthrough ->
              undef :=
                SS.union
                  (SS.diff !undef (SS.of_list (defines insn)))
                  (SS.of_list (undef_after insn));
              (match compare_state idx insn with
               | Error _ as e -> e
               | Ok () -> step (idx + 1) rest)
            | ctrl ->
              Error
                (spf "insn %d (%s): IR control diverged (%s)" idx
                   (Isa.Insn.show insn)
                   (match ctrl with
                    | Ir_interp.Branch _ -> "branch"
                    | Ir_interp.Jump _ -> "jump"
                    | Ir_interp.Sys -> "syscall"
                    | Ir_interp.Stuck m -> "stuck: " ^ m
                    | Ir_interp.Fallthrough -> assert false)))
        | _ ->
          Error
            (spf "insn %d (%s): unexpected CPU control outcome" idx
               (Isa.Insn.show insn)))
  in
  step 0 p.insns

(* ------------------------------------------------------------------ *)
(* (d) Concolic replay: solved model vs predicted branch outcome       *)
(* ------------------------------------------------------------------ *)

let flip_trace_cfg =
  { Concolic.Trace_exec.bap_like_config with
    features = Ir.Lifter.full;
    lift_stack_ops = true }

let machine_config input =
  { Vm.Machine.default_config with argv = [ "flip"; input ] }

let run_path image input =
  let trace = Trace.record ~config:(machine_config input) image in
  Concolic.Trace_exec.run flip_trace_cfg trace

(** Record the guarded-branch program on its decoy input, negate the
    final symbolic branch, and check the solver's verdict against
    ground truth: a sat model, replayed concretely, must flip that
    branch; unsat must survive brute force over every input byte. *)
let concolic_flip (f : Gen.flip) : (unit, string) result =
  let image = Gen.flip_image f in
  let decoy = String.make 1 f.g_decoy in
  let path = run_path image decoy in
  match List.rev path.branches with
  | [] -> Error "guard branch never became symbolic"
  | (b : Concolic.Trace_exec.branch) :: _ -> (
      let ordered = Array.of_list path.constraints in
      let prefix = Array.to_list (Array.sub ordered 0 b.seq) |> List.map fst in
      (* a NUL first byte would change the argv layout; rule it out on
         both the solver and the brute-force side *)
      let nonzero = E.ne (E.var ~width:8 "argv1_0") (E.const ~width:8 0L) in
      let query = prefix @ [ E.not_ b.cond; nonzero ] in
      match Smt.Session.check_assertions (Smt.Session.create ()) query with
      | Smt.Session.Sat model -> (
          let input = Concolic.Driver.input_of_model ~seed:decoy ~width:1 model in
          let path' = run_path image input in
          match
            List.find_opt
              (fun (b' : Concolic.Trace_exec.branch) -> b'.pc = b.pc)
              path'.branches
          with
          | None ->
            Error
              (spf "model input %S: predicted branch at 0x%Lx vanished" input
                 b.pc)
          | Some b' ->
            if b'.taken = not b.taken then Ok ()
            else
              Error
                (spf
                   "model input %S did not flip the branch at 0x%Lx \
                    (taken=%b both times)"
                   input b.pc b.taken))
      | Smt.Session.Unsat -> (
          (* ground truth: no input byte may flip the branch *)
          let flips v =
            let env = Smt.Eval.env_of_list [ ("argv1_0", Int64.of_int v) ] in
            List.for_all (holds_defensive env) prefix
            && holds_defensive env (E.not_ b.cond)
          in
          let rec scan v = if v > 255 then None else if flips v then Some v
            else scan (v + 1)
          in
          match scan 1 with
          | Some v ->
            Error
              (spf "solver says unsat but byte 0x%02x flips the branch" v)
          | None -> Ok ())
      | Smt.Session.Unknown _ ->
        Error "solver answered unknown on a single-byte guard")
