(** Typed random generators for the differential-testing harness.

    Four case families, one per oracle:
    - 1-bit SMT constraints over a handful of narrow bitvector
      variables (small enough that satisfiability is decidable by
      brute-force enumeration);
    - incremental-session scripts of push / pop / assert / check
      operations over the same constraint language;
    - straight-line VX64 programs (integer ALU, memory, stack and
      scalar-double instructions — everything except control flow);
    - bomb-style guarded branches: an argv-byte transformation chain
      ending in a compare-and-jump guard.

    Everything is a {!QCheck2.Gen} generator driven through an explicit
    [Random.State] derived from a case seed, so every case is
    reproducible from its integer seed alone. *)

module E = Smt.Expr
module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Constraint expressions                                              *)
(* ------------------------------------------------------------------ *)

(** Variable pool of a constraint case.  Total bits stay small (<= 12)
    so the brute-force oracle enumerates at most 4096 assignments. *)
let gen_vars : E.var list G.t =
  let open G in
  let* n = int_range 1 3 in
  let rec pick k budget acc =
    if k = 0 || budget < 2 then return (List.rev acc)
    else
      let* w = int_range 2 (min 6 budget) in
      pick (k - 1) (budget - w)
        ({ E.vname = Printf.sprintf "v%d" (List.length acc); width = w } :: acc)
  in
  pick n 12 []

let gen_binop : E.binop G.t =
  G.oneofl
    [ E.Add; Sub; Mul; Udiv; Urem; Sdiv; Srem; And; Or; Xor; Shl; Lshr; Ashr ]

let gen_cmpop : E.cmpop G.t = G.oneofl [ E.Eq; Ult; Ule; Slt; Sle ]

(* a bitvector term of exactly [w] bits over [vars] *)
let rec gen_bv (vars : E.var list) w size : E.t G.t =
  let open G in
  let leaf =
    let var_leaves =
      List.filter_map
        (fun (v : E.var) -> if v.width = w then Some (E.Var v) else None)
        vars
    in
    let const =
      let+ bits = int_bound (Int64.to_int (E.mask w)) in
      E.Const (Int64.of_int bits, w)
    in
    if var_leaves = [] then const
    else oneof [ const; oneofl var_leaves ]
  in
  if size <= 0 then leaf
  else
    let sub = gen_bv vars w (size / 2) in
    let nodes =
      [ (3, leaf);
        ( 4,
          let* op = gen_binop and* a = sub and* b = sub in
          return (E.Binop (op, a, b)) );
        ( 1,
          let* op = oneofl [ E.Neg; E.Not ] and* a = sub in
          return (E.Unop (op, a)) );
        ( 1,
          let* c = gen_bool vars (size / 2) and* a = sub and* b = sub in
          return (E.Ite (c, a, b)) ) ]
      @ (if w < 8 then
           [ ( 1,
               let* ext = int_range 1 (8 - w) in
               let* a = gen_bv vars (w + ext) (size / 2) in
               let* lo = int_range 0 ext in
               return (E.Extract (lo + w - 1, lo, a)) ) ]
         else [])
      @ (if w >= 2 then
           [ ( 1,
               let* wa = int_range 1 (w - 1) in
               let* a = gen_bv vars wa (size / 2)
               and* b = gen_bv vars (w - wa) (size / 2) in
               return (E.Concat (a, b)) );
             ( 1,
               let* ws = int_range 1 (w - 1) in
               let* a = gen_bv vars ws (size / 2) in
               let+ signed = bool in
               if signed then E.Sext (w, a) else E.Zext (w, a) ) ]
         else [])
    in
    frequency nodes

(* a 1-bit condition over [vars] *)
and gen_bool (vars : E.var list) size : E.t G.t =
  let open G in
  let cmp =
    let* (v : E.var) = oneofl vars in
    let* op = gen_cmpop in
    let* a = gen_bv vars v.width (size / 2)
    and* b = gen_bv vars v.width (size / 2) in
    return (E.Cmp (op, a, b))
  in
  if size <= 0 then cmp
  else
    let sub = gen_bool vars (size / 2) in
    frequency
      [ (4, cmp);
        ( 2,
          let* op = oneofl [ E.And; E.Or; E.Xor ] and* a = sub and* b = sub in
          return (E.Binop (op, a, b)) );
        ( 1,
          let+ a = sub in
          E.Unop (E.Not, a) ) ]

(** One blast-oracle case: a 1-bit constraint over a small var pool. *)
let gen_constraint : E.t G.t =
  let open G in
  let* vars = gen_vars in
  let* size = int_range 2 12 in
  gen_bool vars size

(* ------------------------------------------------------------------ *)
(* Session scripts                                                     *)
(* ------------------------------------------------------------------ *)

type script_op = Push | Pop | Assert of E.t | Check

type script = { ops : script_op list }

(** A push/pop/assert/check script over one shared variable pool.
    Pops may outnumber pushes; the oracle treats an underflowing pop
    as a no-op so scripts stay valid under list shrinking. *)
let gen_script : script G.t =
  let open G in
  let* vars = gen_vars in
  let gen_op =
    frequency
      [ (2, return Push);
        (1, return Pop);
        ( 4,
          let* size = int_range 1 6 in
          let+ c = gen_bool vars size in
          Assert c );
        (3, return Check) ]
  in
  let* ops = list_size (int_range 3 20) gen_op in
  (* every script decides something at least once at full depth *)
  return { ops = ops @ [ Check ] }

(* ------------------------------------------------------------------ *)
(* Straight-line VX64 programs                                         *)
(* ------------------------------------------------------------------ *)

(** Scratch data region all generated memory operands fall inside. *)
let scratch_base = 0x5000L

let scratch_len = 0x200

(** Initial stack pointer for generated programs. *)
let stack_base = 0x7000_0000L

type prog = {
  insns : Isa.Insn.t list;
  init_regs : (Isa.Reg.t * int64) list;  (** RAX..RDI work registers *)
  init_xmm : (Isa.Reg.xmm * int64) list; (** double bit patterns *)
  init_mem : int list;                   (** scratch bytes, from [scratch_base] *)
}

let work_regs = [ Isa.Reg.RAX; RBX; RCX; RDX; RSI; RDI ]

let gen_width : Isa.Insn.width G.t = G.oneofl [ Isa.Insn.W8; W16; W32; W64 ]

let gen_cond : Isa.Insn.cond G.t =
  G.oneofl
    [ Isa.Insn.E; NE; L; LE; G; GE; B; BE; A; AE; S; NS; O; NO; P; NP ]

(* base R8 (pinned to [scratch_base]) + optional index R9 (pinned to a
   small count) keeps every effective address inside the scratch
   region regardless of what the program does to the work registers *)
let gen_mem : Isa.Insn.mem G.t =
  let open G in
  let* disp = int_bound 0x80 in
  let* indexed = bool in
  if indexed then
    let+ scale = oneofl [ 1; 2; 4; 8 ] in
    Isa.Insn.mem ~base:Isa.Reg.R8 ~index:Isa.Reg.R9 ~scale
      ~disp:(Int64.of_int disp) ()
  else return (Isa.Insn.mem ~base:Isa.Reg.R8 ~disp:(Int64.of_int disp) ())

let gen_reg : Isa.Reg.t G.t = G.oneofl work_regs

let gen_operand : Isa.Insn.operand G.t =
  let open G in
  frequency
    [ (4, map (fun r -> Isa.Insn.Reg r) gen_reg);
      (2, map (fun v -> Isa.Insn.Imm (Int64.of_int (v - 0x8000))) (int_bound 0xffff));
      (2, map (fun m -> Isa.Insn.Mem m) gen_mem) ]

let gen_dst : Isa.Insn.operand G.t =
  let open G in
  frequency
    [ (4, map (fun r -> Isa.Insn.Reg r) gen_reg);
      (1, map (fun m -> Isa.Insn.Mem m) gen_mem) ]

let gen_xmm : Isa.Reg.xmm G.t =
  G.oneofl [ Isa.Reg.XMM0; XMM1; XMM2; XMM3 ]

let gen_xsrc : Isa.Insn.xsrc G.t =
  let open G in
  frequency
    [ (3, map (fun x -> Isa.Insn.Xreg x) gen_xmm);
      (1, map (fun m -> Isa.Insn.Xmem m) gen_mem) ]

let gen_insn : Isa.Insn.t G.t =
  let open G in
  let open Isa.Insn in
  frequency
    [ ( 5,
        let* w = gen_width and* d = gen_dst and* s = gen_operand in
        return (Mov (w, d, s)) );
      ( 2,
        let* dw = oneofl [ W16; W32; W64 ] and* d = gen_reg in
        let* sw = oneofl [ W8; W16 ] and* s = gen_operand in
        let+ signed = bool in
        if signed then Movsx (dw, d, sw, s) else Movzx (dw, d, sw, s) );
      ( 1,
        let* d = gen_reg and* m = gen_mem in
        return (Lea (d, m)) );
      ( 8,
        let* op = oneofl [ Add; Sub; And; Or; Xor; Imul ] in
        let* w = gen_width and* d = gen_dst and* s = gen_operand in
        return (Alu (op, w, d, s)) );
      ( 3,
        (* shift amounts come from an immediate so they stay small *)
        let* op = oneofl [ Shl; Shr; Sar ] in
        let* w = gen_width and* d = gen_dst and* amt = int_bound 70 in
        return (Alu (op, w, d, Imm (Int64.of_int amt))) );
      ( 1,
        let* w = gen_width and* o = gen_dst in
        let+ neg = bool in
        if neg then Neg (w, o) else Not (w, o) );
      ( 1,
        let* w = gen_width and* o = gen_operand in
        return (Mul (w, o)) );
      ( 1,
        (* W64 excluded: OCaml's Int64.div traps on min_int / -1, the
           one 64-bit case the host cannot mirror *)
        let* w = oneofl [ W8; W16; W32 ] and* o = gen_operand in
        return (Idiv (w, o)) );
      ( 3,
        let* w = gen_width and* a = gen_dst and* b = gen_operand in
        let+ is_test = bool in
        if is_test then Test (w, a, b) else Cmp (w, a, b) );
      ( 2,
        let* c = gen_cond and* o = gen_dst in
        return (Setcc (c, o)) );
      ( 2,
        let* c = gen_cond and* d = gen_reg and* s = gen_operand in
        return (Cmovcc (c, d, s)) );
      ( 1,
        let* o = gen_operand in
        return (Push o) );
      ( 1,
        let* r = gen_reg in
        return (Pop (Reg r)) );
      ( 1,
        let* x = gen_xmm and* o = gen_operand in
        return (Cvtsi2sd (x, o)) );
      ( 1,
        let* x = gen_xmm and* o = gen_operand in
        return (Movq_xr (x, o)) );
      ( 1,
        let* o = gen_dst and* x = gen_xmm in
        return (Movq_rx (o, x)) );
      ( 1,
        let* f = oneofl [ Addsd; Subsd; Mulsd; Divsd; Sqrtsd ] in
        let* x = gen_xmm and* s = gen_xsrc in
        return (Farith (f, x, s)) );
      ( 1,
        let* x = gen_xmm and* s = gen_xsrc in
        return (Ucomisd (x, s)) );
      ( 1,
        let* x = gen_xmm and* s = gen_xsrc in
        return (Movsd (x, s)) ) ]

let gen_prog : prog G.t =
  let open G in
  let* insns = list_size (int_range 1 25) gen_insn in
  let* init_regs =
    flatten_l
      (List.map
         (fun r ->
            let+ v = int_bound 0xffffff in
            (* spread values across the signed/unsigned boundary *)
            (r, Int64.of_int ((v * 0x41c64e6d) land 0xffffffff)))
         work_regs)
  in
  let* init_xmm =
    flatten_l
      (List.map
         (fun x ->
            let+ v = int_bound 4000 in
            (x, Int64.bits_of_float (float_of_int (v - 2000) /. 8.0)))
         [ Isa.Reg.XMM0; XMM1; XMM2; XMM3 ])
  in
  let+ init_mem = list_repeat scratch_len (int_bound 0xff) in
  { insns; init_regs; init_xmm; init_mem }

(* ------------------------------------------------------------------ *)
(* Guarded branches (bomb-style)                                       *)
(* ------------------------------------------------------------------ *)

type guard_op =
  | Gadd of int
  | Gsub of int
  | Gxor of int
  | Gand of int   (** nonzero mask: may make the guard unsatisfiable *)
  | Gimul of int  (** odd multiplier *)
  | Gshl of int   (** 1..4 *)

type flip = {
  g_ops : guard_op list;
  g_target : int64;   (** compare value of the final guard *)
  g_decoy : char;     (** the seed input byte *)
}

(** Apply the transformation chain to a byte, exactly as the generated
    program does (64-bit arithmetic on a zero-extended byte). *)
let apply_ops ops (b : int) : int64 =
  List.fold_left
    (fun acc op ->
       match op with
       | Gadd k -> Int64.add acc (Int64.of_int k)
       | Gsub k -> Int64.sub acc (Int64.of_int k)
       | Gxor k -> Int64.logxor acc (Int64.of_int k)
       | Gand k -> Int64.logand acc (Int64.of_int k)
       | Gimul k -> Int64.mul acc (Int64.of_int k)
       | Gshl k -> Int64.shift_left acc k)
    (Int64.of_int b) ops

let gen_guard_op : guard_op G.t =
  let open G in
  frequency
    [ (3, map (fun k -> Gadd (k + 1)) (int_bound 200));
      (3, map (fun k -> Gsub (k + 1)) (int_bound 200));
      (3, map (fun k -> Gxor (k + 1)) (int_bound 0xff));
      (1, map (fun k -> Gand ((k lor 1) land 0xff)) (int_bound 0xfe));
      (2, map (fun k -> Gimul ((2 * k) + 3)) (int_bound 20));
      (1, map (fun k -> Gshl (k + 1)) (int_bound 3)) ]

let gen_flip : flip G.t =
  let open G in
  let* g_ops = list_size (int_range 1 4) gen_guard_op in
  let* decoy_i = int_range 0x21 0x7e in
  let g_decoy = Char.chr decoy_i in
  (* half the cases aim at a reachable value (guard satisfiable by
     construction), half at an arbitrary one (often unsatisfiable) *)
  let* reachable = bool in
  let+ g_target =
    if reachable then
      let+ b = int_range 1 255 in
      apply_ops g_ops b
    else
      let+ t = int_bound 1024 in
      Int64.of_int t
  in
  { g_ops; g_target; g_decoy }

(** Lower a flip case to a linkable object: argv prologue, the
    transformation chain on the first input byte, then the guard. *)
let flip_body (f : flip) : Asm.Ast.item list =
  let open Asm.Ast.Dsl in
  let xform op =
    match op with
    | Gadd k -> add rax (imm k)
    | Gsub k -> sub rax (imm k)
    | Gxor k -> xor rax (imm k)
    | Gand k -> and_ rax (imm k)
    | Gimul k -> imul rax (imm k)
    | Gshl k -> shl rax (imm k)
  in
  [ movzx rax ~sw:Isa.Insn.W8 (mreg Isa.Reg.RBX) ]
  @ List.map xform f.g_ops
  @ [ cmp rax (imm64 f.g_target); jne ".defused"; call "bomb";
      jmp ".defused" ]

let flip_image (f : flip) : Asm.Image.t =
  let obj = Bombs.Common.main_with_argv (flip_body f) in
  Libc.Runtime.link_with_libs (Asm.Ast.append obj Bombs.Common.bomb_obj)

(* ------------------------------------------------------------------ *)
(* Seed-driven generation                                              *)
(* ------------------------------------------------------------------ *)

(** Generate a case from an integer seed — the only entry point the
    harness and the corpus replayer use, so a case is fully determined
    by (oracle, seed). *)
let of_seed (g : 'a G.t) (seed : int) : 'a =
  let rand = Random.State.make [| 0x9e3779b9; seed |] in
  G.generate1 ~rand g
