(** Interactive trace debugger ([eval debug BOMB]).

    Records (or reopens, under [--trace-dir]) one concrete execution
    and walks it through {!Trace}'s cursor API: step forward, step
    {e backward} (a seek — state is rebuilt from the nearest VM
    checkpoint, never by re-running the program), run to an
    instruction address / syscall / first tainted event, inspect
    registers and reconstructed memory, and answer "why is this byte
    tainted" by walking the taint analyzer's provenance chain back to
    the argv source bytes.

    Commands arrive on stdin, one per line, so the same engine serves
    the interactive prompt and the scripted [@trace-smoke] transcript.
    Lines that are empty or start with [#] are ignored. *)

type session = {
  trace : Trace.t;
  bomb : Bombs.Common.t;
  sources : (int64 * int) list;
  taint : Taint.result Lazy.t;
      (** full-policy, provenance-recording analysis; forced only by
          [taint], [why] and (without a stored hint) [run-to taint] *)
  mutable pos : int;  (** seq of the event the cursor sits on *)
}

let clamp s p = max 0 (min p (Trace.length s.trace - 1))

let show_current s =
  if Trace.length s.trace = 0 then print_endline "(empty trace)"
  else
    Fmt.pr "#%d  %a@." s.pos Trace.pp_event (Trace.get s.trace s.pos)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

(** The next [Exec] at or after [pos] — its [regs_before] is the CPU
    state the cursor position observes. *)
let next_exec_from s pos =
  let n = Trace.length s.trace in
  let rec go i =
    if i >= n then None
    else
      match Trace.get s.trace i with
      | Vm.Event.Exec e -> Some (i, e)
      | _ -> go (i + 1)
  in
  go pos

let cmd_info s =
  let t = s.trace in
  Printf.printf "bomb:        %s (%s)\n" s.bomb.name s.bomb.category;
  Printf.printf "events:      %d (%d execs)\n" (Trace.length t)
    (Trace.exec_count t);
  Printf.printf "checkpoints: %d\n" (Array.length (Trace.checkpoints t));
  Printf.printf "backing:     %s\n"
    (if Trace.store_backed t then "store file" else "memory");
  (match s.sources with
   | [ (a, n) ] -> Printf.printf "taint src:   argv[1] at 0x%Lx (%d bytes)\n" a n
   | _ -> ());
  let r = t.Trace.result in
  Printf.printf "exit:        %s, %d steps%s\n"
    (match r.exit_code with Some c -> string_of_int c | None -> "-")
    r.steps
    (match r.fault with
     | Some f -> ", fault: " ^ Vm.Machine.show_fault f
     | None -> "")

let cmd_list s n =
  let stop = min (Trace.length s.trace) (s.pos + n) in
  for i = s.pos to stop - 1 do
    Fmt.pr "#%d  %a@." i Trace.pp_event (Trace.get s.trace i)
  done

let cmd_regs s =
  match next_exec_from s s.pos with
  | None -> print_endline "no exec event at or after cursor"
  | Some (i, e) ->
    Printf.printf "CPU state before #%d (tid %d, pc 0x%Lx):\n" i e.tid e.pc;
    for r = 0 to Isa.Reg.count - 1 do
      Printf.printf "  %-3s = 0x%-16Lx" (Isa.Reg.name (Isa.Reg.of_index r))
        e.regs_before.(r);
      if r mod 4 = 3 then print_newline ()
    done;
    Printf.printf "  flags = 0x%x\n" e.flags_before

let cmd_mem s addr n =
  let mem, base = Trace.mem_before s.trace s.pos in
  Printf.printf "memory before #%d (checkpoint @%d + %d replayed events):\n"
    s.pos base (s.pos - base);
  let bytes = Vm.Mem.read_bytes mem addr n in
  let i = ref 0 in
  while !i < n do
    let row = min 16 (n - !i) in
    Printf.printf "  %08Lx " (Int64.add addr (Int64.of_int !i));
    for j = 0 to row - 1 do
      Printf.printf " %02x" (Char.code bytes.[!i + j])
    done;
    Printf.printf "  |";
    for j = 0 to row - 1 do
      let c = bytes.[!i + j] in
      print_char (if c >= ' ' && c < '\127' then c else '.')
    done;
    print_endline "|";
    i := !i + row
  done

(* ------------------------------------------------------------------ *)
(* Taint and provenance                                                *)
(* ------------------------------------------------------------------ *)

(** First tainted event at or after [from] — from the stored hint when
    one exists, else by forcing the analysis. *)
let first_taint_from s from =
  let scan (seqs : int array) =
    let n = Array.length seqs in
    let rec go i = if i >= n then None
      else if seqs.(i) >= from then Some seqs.(i) else go (i + 1)
    in
    go 0
  in
  match Trace.taint_hint s.trace with
  | Some h -> scan h.Trace.Store.th_tainted
  | None ->
    let t = Lazy.force s.taint in
    let rec go i =
      if i >= Array.length t.tainted then None
      else if t.tainted.(i) then Some i
      else go (i + 1)
    in
    go from

let cmd_taint s =
  let t = Lazy.force s.taint in
  Printf.printf "tainted execs:    %d\n" t.tainted_count;
  Printf.printf "tainted branches: %d\n" (List.length t.tainted_branch);
  (match first_taint_from s 0 with
   | Some i ->
     Fmt.pr "first taint:      #%d  %a@." i Trace.pp_event (Trace.get s.trace i)
   | None -> print_endline "first taint:      (none)");
  List.iter
    (fun (i, taken) ->
      Fmt.pr "  branch #%d (%s)  %a@." i
        (if taken then "taken" else "fallthrough")
        Trace.pp_event (Trace.get s.trace i))
    t.tainted_branch

let parse_loc s arg =
  let arg = String.trim arg in
  if String.lowercase_ascii arg = "flags" then
    let tid = match next_exec_from s s.pos with
      | Some (_, e) -> e.tid | None -> 1
    in
    Some (Taint.L_flags tid)
  else if String.length arg > 2 && String.sub arg 0 2 = "0x" then
    match Int64.of_string_opt arg with
    | Some a -> Some (Taint.L_mem a)
    | None -> None
  else
    match Isa.Reg.of_name arg with
    | r ->
      let tid = match next_exec_from s s.pos with
        | Some (_, e) -> e.tid | None -> 1
      in
      Some (Taint.L_reg (tid, Isa.Reg.index r))
    | exception Invalid_argument _ -> None

let in_source s a =
  List.exists
    (fun (base, len) -> a >= base && a < Int64.add base (Int64.of_int len))
    s.sources

(** Walk provenance backward: the latest flow before [pos] that wrote
    [loc], then recurse on its first tainted input, until a location
    with no recorded flow — a source byte — is reached. *)
let cmd_why s arg =
  match parse_loc s arg with
  | None ->
    Printf.printf "cannot parse location %S (use 0xADDR, a register, or flags)\n"
      arg
  | Some loc0 ->
    let t = Lazy.force s.taint in
    let rec walk depth loc pos =
      if depth > 48 then print_endline "  ... (chain truncated)"
      else
        let entry =
          List.fold_left
            (fun best (e : Taint.prov_entry) ->
              if e.p_ev < pos && e.p_dst = loc then
                match best with
                | Some (b : Taint.prov_entry) when b.p_ev >= e.p_ev -> best
                | _ -> Some e
              else best)
            None t.prov
        in
        match entry with
        | None ->
          (match loc with
           | Taint.L_mem a when in_source s a ->
             let base = match s.sources with (b, _) :: _ -> b | [] -> 0L in
             Fmt.pr "  %a is a SOURCE: argv[1] byte %Ld@."
               Taint.pp_loc loc (Int64.sub a base)
           | _ ->
             Fmt.pr "  %a: no recorded flow before #%d (untainted here)@."
               Taint.pp_loc loc pos)
        | Some e ->
          Fmt.pr "  #%-5d %a <- %a@."
            e.p_ev Taint.pp_loc e.p_dst
            Fmt.(list ~sep:(any ", ") Taint.pp_loc) e.p_srcs;
          Fmt.pr "         %a@." Trace.pp_event (Trace.get s.trace e.p_ev);
          (match e.p_srcs with
           | [] -> ()
           | src :: _ -> walk (depth + 1) src e.p_ev)
    in
    (* [pos + 1]: a flow written *by* the event under the cursor counts *)
    walk 0 loc0 (s.pos + 1)

(* ------------------------------------------------------------------ *)
(* Command loop                                                        *)
(* ------------------------------------------------------------------ *)

let help () =
  print_string
    "commands:\n\
    \  info                 trace summary\n\
    \  list [N]             print N events from the cursor (default 10)\n\
    \  step|s [N]           advance N events (default 1)\n\
    \  back|b [N]           step back N events (checkpoint seek)\n\
    \  goto SEQ             jump to event SEQ\n\
    \  run-to addr 0xA      next exec at instruction address\n\
    \  run-to sys NAME      next syscall NAME\n\
    \  run-to taint         first tainted event at/after the cursor\n\
    \  regs                 CPU state at the cursor\n\
    \  mem 0xA [N]          N bytes of reconstructed memory (default 16)\n\
    \  taint                taint summary (forces the analysis)\n\
    \  why LOC              provenance: why is LOC tainted here\n\
    \  help                 this text\n\
    \  quit                 exit\n"

let int_arg ?(default = 1) = function
  | [] -> Some default
  | [ a ] -> int_of_string_opt a
  | _ -> None

let dispatch s line =
  match String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "") with
  | [] -> true
  | cmd :: args when cmd.[0] = '#' -> ignore args; true
  | "quit" :: _ | "exit" :: _ | "q" :: _ -> false
  | "help" :: _ -> help (); true
  | "info" :: _ -> cmd_info s; true
  | "list" :: rest ->
    (match int_arg ~default:10 rest with
     | Some n when n > 0 -> cmd_list s n
     | _ -> print_endline "usage: list [N]");
    true
  | ("step" | "s") :: rest ->
    (match int_arg rest with
     | Some n ->
       s.pos <- clamp s (s.pos + n);
       show_current s
     | None -> print_endline "usage: step [N]");
    true
  | ("back" | "b") :: rest ->
    (match int_arg rest with
     | Some n ->
       s.pos <- clamp s (s.pos - n);
       show_current s
     | None -> print_endline "usage: back [N]");
    true
  | "goto" :: rest ->
    (match int_arg ~default:0 rest with
     | Some n ->
       s.pos <- clamp s n;
       show_current s
     | None -> print_endline "usage: goto SEQ");
    true
  | "run-to" :: "addr" :: [ a ] ->
    (match Int64.of_string_opt a with
     | None -> print_endline "usage: run-to addr 0xADDR"
     | Some pc ->
       (match Trace.next_exec_at s.trace ~from:(s.pos + 1) pc with
        | Some i -> s.pos <- i; show_current s
        | None -> Printf.printf "no exec at 0x%Lx after #%d\n" pc s.pos));
    true
  | "run-to" :: "sys" :: [ name ] ->
    (match Trace.next_syscall s.trace ~from:(s.pos + 1) name with
     | Some i -> s.pos <- i; show_current s
     | None -> Printf.printf "no %s syscall after #%d\n" name s.pos);
    true
  | "run-to" :: "taint" :: _ ->
    (match first_taint_from s (s.pos + 1) with
     | Some i -> s.pos <- i; show_current s
     | None -> Printf.printf "no tainted event after #%d\n" s.pos);
    true
  | "regs" :: _ -> cmd_regs s; true
  | "mem" :: addr :: rest ->
    (match Int64.of_string_opt addr, int_arg ~default:16 rest with
     | Some a, Some n when n > 0 && n <= 4096 -> cmd_mem s a n
     | _ -> print_endline "usage: mem 0xADDR [N]");
    true
  | "taint" :: _ -> cmd_taint s; true
  | "why" :: rest when rest <> [] ->
    cmd_why s (String.concat " " rest); true
  | w :: _ ->
    Printf.printf "unknown command %S (try: help)\n" w;
    true

(** Run the debugger over [bomb] on [argv1] (default: its decoy
    input), reading commands from stdin until EOF or [quit]. *)
let run ?input (bomb : Bombs.Common.t) =
  let argv1 = match input with Some s -> s | None -> bomb.decoy in
  let config = Bombs.Common.config_for bomb argv1 in
  let trace =
    Trace.record ~checkpoint_interval:256 ~config (Bombs.Catalog.image bomb)
  in
  let sources =
    match Trace.argv_region trace 1 with
    | Some (addr, len) when len > 1 -> [ (addr, len - 1) ]
    | _ -> []
  in
  let s =
    { trace;
      bomb;
      sources;
      taint =
        lazy (Taint.analyze ~policy:Taint.full_policy ~provenance:true
                ~sources trace);
      pos = 0 }
  in
  Printf.printf "trace debugger: %s, argv[1]=%S, %d events, %d checkpoints%s\n"
    bomb.name argv1 (Trace.length trace)
    (Array.length (Trace.checkpoints trace))
    (if Trace.store_backed trace then " (store-backed)" else "");
  show_current s;
  let interactive = Unix.isatty Unix.stdin in
  let rec loop () =
    if interactive then (print_string "(tdb) "; flush stdout);
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      if not interactive && String.trim line <> "" then
        Printf.printf "(tdb) %s\n" line;
      if dispatch s line then loop ()
  in
  loop ()
