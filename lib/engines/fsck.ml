(** [eval fsck]: format-detecting verify/repair over every durable
    artifact the system writes — cell/queue journals, BTRC trace
    stores, span shards and profile sidecars.

    Verification is structural, not configuration-bound: a journal
    line is sound when its FNV-1a checksum covers its body and the
    body has the fixed record shape, whatever fingerprint it carries
    (the distinct fingerprints seen are reported instead).  That lets
    one fsck pass audit artifacts from many runs.

    Repair semantics per format:
    - JSONL artifacts (journals, shards, sidecars): rewrite the file
      atomically keeping only sound records — drops bit-flipped and
      short-written lines, truncates a torn tail.  Lossy by design:
      the loaders re-run what a journal no longer carries, so a
      repair costs compute, never a wrong cached result.
    - Trace stores: a store is a record-once cache; an unsound one is
      quarantined (renamed [*.corrupt]) so the next record re-creates
      it.  Nothing inside a damaged store is trusted.
    - Stale [*.tmp] files (interrupted atomic publishes): removed.

    Exit discipline (see {!exit_code}): 0 all clean, 1 damage found
    and repaired, 2 damage present (verify-only mode, or a repair
    that could not complete). *)

type kind =
  | Journal
  | Trace_store
  | Span_shard
  | Profile_sidecar
  | Stale_tmp
  | Unknown

let kind_name = function
  | Journal -> "journal"
  | Trace_store -> "trace store"
  | Span_shard -> "span shard"
  | Profile_sidecar -> "profile sidecar"
  | Stale_tmp -> "stale tmp"
  | Unknown -> "unknown"

type report = {
  r_path : string;
  r_kind : kind;
  r_records : int;  (** sound records *)
  r_damaged : int;  (** unsound complete records (bit rot, fusion) *)
  r_torn : bool;  (** unterminated or damaged final record *)
  r_shard : bool;  (** a per-worker merge shard ([*.w<slot>]) *)
  r_orphan : bool;  (** a shard whose base artifact is missing *)
  r_fingerprints : string list;  (** distinct fingerprints, in order *)
  r_repaired : bool;
  r_unrepairable : string option;
}

let m_checked = Telemetry.Metrics.counter "fsck.checked"
let m_damaged = Telemetry.Metrics.counter "fsck.damaged"
let m_repaired = Telemetry.Metrics.counter "fsck.repaired"

let has_damage r =
  r.r_damaged > 0 || r.r_torn || r.r_kind = Stale_tmp
  || r.r_unrepairable <> None

let base_report path =
  { r_path = path; r_kind = Unknown; r_records = 0; r_damaged = 0;
    r_torn = false; r_shard = false; r_orphan = false; r_fingerprints = [];
    r_repaired = false; r_unrepairable = None }

(* ------------------------------------------------------------------ *)
(* Format detection                                                    *)
(* ------------------------------------------------------------------ *)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let looks_journal_line line =
  String.length line >= 18
  && line.[16] = ' '
  && (let ok = ref true in
      String.iteri (fun i c -> if i < 16 && not (is_hex c) then ok := false)
        (String.sub line 0 16);
      !ok)

(* "<base>.w<slot>" (journal / profile shards) or
   "<base>.spans.w<slot>.jsonl" (span shards) *)
let shard_base path =
  let chop s suf =
    if Filename.check_suffix s suf then
      Some (Filename.chop_suffix s suf)
    else None
  in
  let rec digits s i = if i < String.length s && s.[i] >= '0' && s.[i] <= '9'
    then digits s (i + 1) else i in
  let split_w s =
    (* longest prefix such that the rest is ".w<digits>" *)
    match String.rindex_opt s '.' with
    | Some i
      when i + 2 < String.length s
           && s.[i + 1] = 'w'
           && digits s (i + 2) = String.length s ->
        Some (String.sub s 0 i)
    | _ -> None
  in
  match chop path ".jsonl" with
  | Some stem -> (
      match split_w stem with
      | Some b when Filename.check_suffix b ".spans" ->
          Some (Filename.chop_suffix b ".spans")
      | _ -> split_w path)
  | None -> split_w path

let detect path : kind =
  if Filename.check_suffix path ".tmp" then Stale_tmp
  else
    let head =
      try
        let ic = open_in_bin path in
        let n = min 256 (in_channel_length ic) in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error _ -> ""
    in
    if String.length head >= 5 && String.sub head 0 5 = "BTRC\x01" then
      Trace_store
    else
      let first_line =
        match String.index_opt head '\n' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      if looks_journal_line first_line then Journal
      else
        match Telemetry.Trace_check.parse_opt first_line with
        | Some j
          when Telemetry.Trace_check.member "wall_us" j <> None
               && Telemetry.Trace_check.member "key" j <> None ->
            Profile_sidecar
        | Some j when Telemetry.Trace_check.member "ts_us" j <> None ->
            Span_shard
        | _ -> Unknown

(* ------------------------------------------------------------------ *)
(* JSONL walks                                                         *)
(* ------------------------------------------------------------------ *)

(* split into complete lines + a torn tail (bytes after the last
   newline), exactly like the journal loader *)
let split_lines raw =
  let size = String.length raw in
  match String.rindex_opt raw '\n' with
  | None -> ([], raw)
  | Some i ->
      let complete = String.sub raw 0 i in
      let tail = String.sub raw (i + 1) (size - i - 1) in
      ((if complete = "" then [] else String.split_on_char '\n' complete),
       tail)

(* a structurally sound journal line, whatever its fingerprint *)
let journal_line_fp line : string option =
  if not (looks_journal_line line) then None
  else
    let sum = String.sub line 0 16 in
    let b = String.sub line 17 (String.length line - 17) in
    if not (String.equal sum (Robust.Diskio.fnv64_hex b)) then None
    else
      let open Telemetry.Trace_check in
      match parse_opt b with
      | None -> None
      | Some j -> (
          match (member "fp" j, member "seq" j, member "key" j,
                 member "cell" j) with
          | Some (Str fp), Some (Num _), Some (Str _), Some _ -> Some fp
          | _ -> None)

(* verify/repair any line-record file given a per-line validity check
   returning [Some tag] (an optional fingerprint) for sound lines *)
let check_jsonl ~repair ~(sound : string -> string option) path r =
  let raw = Robust.Diskio.read_all path in
  let lines, tail = split_lines raw in
  let keep = Buffer.create (String.length raw) in
  let records = ref 0 and damaged = ref 0 and torn = ref false in
  let fps = ref [] in
  let note_fp fp =
    if fp <> "" && not (List.mem fp !fps) then fps := fp :: !fps
  in
  let eat line =
    match sound line with
    | Some fp ->
        incr records;
        note_fp fp;
        Buffer.add_string keep line;
        Buffer.add_char keep '\n'
    | None -> if String.trim line = "" then () else incr damaged
  in
  List.iter eat lines;
  if tail <> "" then begin
    torn := true;
    (* a torn tail that still parses lost only its terminator — keep *)
    match sound tail with
    | Some fp ->
        incr records;
        note_fp fp;
        Buffer.add_string keep tail;
        Buffer.add_char keep '\n'
    | None -> ()
  end;
  let r =
    { r with
      r_records = !records;
      r_damaged = !damaged;
      r_torn = !torn;
      r_fingerprints = List.rev !fps }
  in
  if repair && (!damaged > 0 || !torn) then begin
    Robust.Diskio.write_atomic ~path (Buffer.contents keep);
    { r with r_repaired = true }
  end
  else r

let sound_profile line =
  match Cellprof.decode line with Some _ -> Some "" | None -> None

let sound_span line =
  let open Telemetry.Trace_check in
  match parse_opt line with
  | Some j
    when member "name" j <> None && member "ts_us" j <> None
         && member "dur_us" j <> None ->
      Some ""
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-file check                                                      *)
(* ------------------------------------------------------------------ *)

(** Verify (and with [repair], fix) one artifact file. *)
let check ?(repair = false) path : report =
  Telemetry.Metrics.incr m_checked;
  let r = base_report path in
  let r =
    match shard_base path with
    | Some base ->
        { r with r_shard = true; r_orphan = not (Sys.file_exists base) }
    | None -> r
  in
  let r =
    if not (Sys.file_exists path) then
      { r with r_unrepairable = Some "no such file" }
    else
      match detect path with
      | Stale_tmp ->
          let r = { r with r_kind = Stale_tmp } in
          if repair then begin
            (try Sys.remove path with Sys_error _ -> ());
            { r with r_repaired = true }
          end
          else r
      | Trace_store -> (
          let r = { r with r_kind = Trace_store } in
          match Trace.Store.open_file path with
          | reader ->
              { r with
                r_records = Trace.Store.event_count reader;
                r_fingerprints = [ Trace.Store.fingerprint reader ] }
          | exception Trace.Store.Corrupt msg ->
              let r = { r with r_damaged = 1 } in
              if repair then (
                (* a store is a record-once cache: quarantine so the
                   next record re-creates it from scratch *)
                match Sys.rename path (path ^ ".corrupt") with
                | () -> { r with r_repaired = true }
                | exception Sys_error e ->
                    { r with r_unrepairable = Some e })
              else { r with r_unrepairable = Some msg })
      | Journal as k -> (
          let r = { r with r_kind = k } in
          try check_jsonl ~repair ~sound:journal_line_fp path r
          with Sys_error msg -> { r with r_unrepairable = Some msg })
      | Profile_sidecar as k -> (
          let r = { r with r_kind = k } in
          try check_jsonl ~repair ~sound:sound_profile path r
          with Sys_error msg -> { r with r_unrepairable = Some msg })
      | Span_shard as k -> (
          let r = { r with r_kind = k } in
          try check_jsonl ~repair ~sound:sound_span path r
          with Sys_error msg -> { r with r_unrepairable = Some msg })
      | Unknown -> { r with r_kind = Unknown }
  in
  if has_damage r then Telemetry.Metrics.incr m_damaged;
  if r.r_repaired then Telemetry.Metrics.incr m_repaired;
  r

(** Check paths, recursing into directories (a trace-store dir scans
    every file inside). *)
let rec scan ?(repair = false) (paths : string list) : report list =
  List.concat_map
    (fun path ->
       if Sys.file_exists path && Sys.is_directory path then
         scan ~repair
           (Sys.readdir path |> Array.to_list |> List.sort compare
            |> List.map (Filename.concat path))
       else [ check ~repair path ])
    paths

(* ------------------------------------------------------------------ *)
(* Rendering and exit discipline                                       *)
(* ------------------------------------------------------------------ *)

let render_one (r : report) : string =
  let b = Buffer.create 128 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "%s: %s" r.r_path (kind_name r.r_kind);
  if r.r_shard then
    pr " (merge shard%s)" (if r.r_orphan then ", base missing" else "");
  (match r.r_kind with
   | Unknown | Stale_tmp -> ()
   | _ -> pr ", %d record(s)" r.r_records);
  (match r.r_fingerprints with
   | [] -> ()
   | [ fp ] -> pr ", fp %s" fp
   | fps -> pr ", %d fingerprints (%s)" (List.length fps)
              (String.concat " " fps));
  if r.r_damaged > 0 then pr ", %d corrupt" r.r_damaged;
  if r.r_torn then pr ", torn tail";
  (match r.r_unrepairable with
   | Some msg -> pr " — UNREPAIRABLE (%s)" msg
   | None ->
       if r.r_repaired then pr " [repaired]"
       else if has_damage r then pr " [damaged; run --repair]"
       else if r.r_kind <> Unknown then pr " — clean");
  Buffer.contents b

let render (reports : report list) : string =
  String.concat "\n" (List.map render_one reports)

(** 0 — every artifact clean; 1 — damage was found and every damaged
    artifact was repaired; 2 — damage present and not repaired
    (verify-only mode, an unrepairable file, or an unknown path). *)
let exit_code ~repair (reports : report list) : int =
  let damaged = List.filter has_damage reports in
  if damaged = [] then 0
  else if
    repair
    && List.for_all
         (fun r -> r.r_repaired && r.r_unrepairable = None)
         damaged
  then 1
  else 2
