(** Fleet-parallel Table II: shard the (tool × bomb) grid across a
    {!Fleet.Pool} of forked workers and fold the results — table,
    journal and all — back into exactly what the sequential
    {!Eval.run_table2} produces.

    Each worker is a fresh process, so per-cell heap growth, cache
    pollution and GC pressure never accumulate across the grid the way
    they do in one long sequential run; on a single core the speedup
    comes from that process hygiene, on many cores from parallelism
    too.

    Determinism: workers receive only the cell key; each resolves the
    tool and bomb from the closed-over run configuration and executes
    {!Supervisor.run_cell} exactly as the sequential path would, so a
    cell's outcome does not depend on which worker ran it or in what
    order.  Results are collated in canonical grid order, and with
    [journal_path] set the per-worker write-ahead journals are merged
    ({!Fleet.Merge}) into one canonical journal byte-identical to the
    one a fresh sequential journaled run writes. *)

let m_replayed_cells = Robust.Journal.count_replayed

(** How a fleet-level failure (worker killed repeatedly, runner
    exception, cancellation) grades: synthesized supervised outcome,
    same mapping the in-process supervisor applies. *)
let outcome_of_failure ~attempts (f : Fleet.Pool.failure) :
  Supervisor.outcome =
  let cause =
    match f with
    | Fleet.Pool.Cancelled -> Supervisor.Exhausted Robust.Meter.Cancelled
    | f -> Supervisor.Crashed ("fleet: " ^ Fleet.Pool.failure_to_string f)
  in
  { Supervisor.graded =
      { Grade.cell = Supervisor.cell_of_cause cause;
        proposed = None;
        detonated = false;
        false_positive = false;
        diags = [ Supervisor.diag_of_cause cause ];
        work = 0 };
    cause = Some cause;
    stage = Supervisor.stage_of_cause cause;
    attempts;
    fired = [] }

let decode_payload payload : Supervisor.outcome option =
  Option.bind
    (Telemetry.Trace_check.parse_opt payload)
    Journal_codec.decode_outcome

(* leftover per-worker journals can outlive the pool geometry that
   wrote them (a 4-worker run crashed, this one has 2), so scan a
   generous slot range rather than [workers] *)
let existing_worker_journals path =
  Fleet.Pool.worker_journal_paths ~path ~workers:256

(** Fleet counterpart of {!Eval.run_table2}.  [workers] is the pool
    size; [journal_path] enables write-ahead journaling with the same
    fingerprint, replay and resume semantics as the sequential
    [?journal] (including recovery from per-worker journals left by a
    crashed fleet run).  Worker deaths re-dispatch the cell up to
    [max 1 policy.retries] times, each attempt escalating the budget
    by the policy's backoff, before the cell is graded as crashed. *)
(** [?snapshots] turns on cross-process metrics aggregation: workers
    piggyback registry deltas on replies and the aggregate is
    published into the master registry after shutdown, so the fleet's
    [vm.*]/[smt.*] counters equal the sequential run's.  [?profile]
    writes the {!Cellprof} sidecar (workers append to per-slot shards,
    merged after the run).  [?spans_out] writes one merged Chrome
    trace with a lane per worker.  [?progress] keeps a live
    cells/inflight/ETA line on stderr. *)
let run_table2 ?incremental ?ladder ?policy ?(tools = Profile.all)
    ?(bombs = Bombs.Catalog.table2) ?journal_path ?(workers = 2)
    ?task_timeout ?(snapshots = false) ?profile ?spans_out
    ?(progress = false) () : Eval.table2_result =
  let pol = Option.value ~default:Supervisor.default_policy policy in
  let fp =
    Eval.journal_fingerprint ?incremental ?ladder ?policy ~tools ~bombs ()
  in
  let order =
    List.concat_map
      (fun bomb -> List.map (fun tool -> Eval.cell_key tool bomb) tools)
      bombs
  in
  (* replay every journaled cell — the main journal plus any worker
     journals orphaned by a crashed master — before queueing work *)
  let replayable : (string, Supervisor.outcome) Hashtbl.t =
    Hashtbl.create 128
  in
  let load_into path =
    let loaded = Robust.Journal.load ~fingerprint:fp path in
    List.iter
      (fun (e : Robust.Journal.entry) ->
         match Journal_codec.decode_outcome e.cell with
         | Some o -> Hashtbl.replace replayable e.key o
         | None ->
             Robust.Journal.count_undecodable ();
             Telemetry.Log.warnf
               "journal: record for %s does not decode; cell will re-run"
               e.key)
      loaded.entries
  in
  (match journal_path with
   | None -> ()
   | Some path ->
       load_into path;
       List.iter load_into (existing_worker_journals path));
  (* the worker resolves the cell from the closed-over configuration:
     only the key crosses the pipe, and custom tool/bomb lists work *)
  let run ~attempt ~key (_task : string) =
    let tool, bomb =
      match String.index_opt key '/' with
      | None -> invalid_arg ("fleet cell key without '/': " ^ key)
      | Some i ->
          let tname = String.sub key 0 i in
          let bname =
            String.sub key (i + 1) (String.length key - i - 1)
          in
          ( (match Profile.of_name tname with
             | Some t when List.mem t tools -> t
             | _ -> invalid_arg ("fleet cell key names no tool: " ^ key)),
            (match
               List.find_opt
                 (fun (b : Bombs.Common.t) -> b.name = bname)
                 bombs
             with
             | Some b -> b
             | None -> invalid_arg ("fleet cell key names no bomb: " ^ key)) )
    in
    (* a re-dispatched cell (its worker died) escalates like a
       supervisor retry would *)
    let policy =
      if attempt <= 1 then pol
      else
        { pol with
          budget =
            Robust.Budget.scale
              (pol.backoff ** float_of_int (attempt - 1))
              pol.budget }
    in
    match profile with
    | None ->
        let o = Supervisor.run_cell ?incremental ?ladder ~policy tool bomb in
        Journal_codec.encode_outcome o
    | Some path ->
        (* each worker appends to its own sidecar shard, merged after
           the run — same discipline as the write-ahead journals.
           [phases:true] composes with span shipping: the pool enabled
           tracing already, and its shard flush runs after this returns *)
        let o, sample =
          Cellprof.profiled ~phases:true ~key (fun () ->
              Supervisor.run_cell ?incremental ?ladder ~policy tool bomb)
        in
        let slot =
          Option.value ~default:0 (Fleet.Pool.worker_slot ())
        in
        Cellprof.append ~path:(Cellprof.shard_path ~path slot) sample;
        Journal_codec.encode_outcome o
  in
  let config =
    { Fleet.Pool.default_config with
      workers;
      respawns = max 1 pol.retries;
      task_timeout;
      snapshots;
      spans = spans_out;
      journal =
        Option.map
          (fun p -> { Fleet.Pool.j_path = p; j_fingerprint = fp })
          journal_path }
  in
  (* stale observability shards from a crashed prior run must not leak
     into this run's merge *)
  (match profile with
   | Some path ->
       List.iter
         (fun p -> try Sys.remove p with Sys_error _ -> ())
         (Cellprof.existing_shards ~path)
   | None -> ());
  (match spans_out with
   | Some base -> Fleet.Spans.remove_shards ~base
   | None -> ());
  let pool = Fleet.Pool.create ~config run in
  let restore_sigint = Fleet.Pool.install_sigint pool in
  let total = List.length order in
  let t_start = Unix.gettimeofday () in
  let submitted = ref 0 in
  let results =
    Fun.protect
      ~finally:(fun () ->
        restore_sigint ();
        Fleet.Pool.shutdown pool)
    @@ fun () ->
    List.iter
      (fun key ->
         if not (Hashtbl.mem replayable key) then begin
           incr submitted;
           Fleet.Pool.submit pool ~key ~task:key ()
         end)
      order;
    let last_tick = ref 0. in
    let on_round () =
      if progress then begin
        let t = Unix.gettimeofday () in
        if t -. !last_tick >= 0.5 then begin
          last_tick := t;
          let left = Fleet.Pool.pending pool in
          let done_fresh = !submitted - left in
          let eta =
            if done_fresh > 0 then
              (t -. t_start) /. float_of_int done_fresh *. float_of_int left
            else 0.
          in
          let lanes =
            String.concat " "
              (List.map
                 (fun (slot, alive, quarantined, task) ->
                    Printf.sprintf "w%d:%s" slot
                      (if quarantined then "quar"
                       else if not alive then "dead"
                       else Option.value ~default:"-" task))
                 (Fleet.Pool.worker_states pool))
          in
          Printf.eprintf "\r[fleet] cells %d/%d  %s  ETA %.0fs   %!"
            (total - left) total lanes eta
        end
      end
    in
    let rs = Fleet.Pool.drain ~on_round pool in
    if progress then prerr_newline ();
    rs
  in
  (* fold worker-reported metrics into the master registry, stitch the
     span shards into one Chrome timeline, merge the profile shards *)
  if snapshots then Fleet.Pool.publish_metrics pool;
  (match spans_out with
   | Some out ->
       let report = Fleet.Spans.merge_chrome ~base:out ~out () in
       Telemetry.Log.infof
         "fleet: merged %d span shard(s), %d span(s), %d skipped -> %s"
         report.Fleet.Spans.mr_shards report.Fleet.Spans.mr_spans
         report.Fleet.Spans.mr_skipped out
   | None -> ());
  (match profile with
   | Some path -> Cellprof.merge_shards ~path ~order ()
   | None -> ());
  let fresh : (string, Supervisor.outcome) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun (r : Fleet.Pool.result) ->
       let o =
         match r.r_payload with
         | Ok payload -> (
             match decode_payload payload with
             | Some o -> o
             | None ->
                 Telemetry.Log.warnf
                   "fleet: undecodable payload for %s; grading as crash"
                   r.r_key;
                 outcome_of_failure ~attempts:1
                   (Fleet.Pool.Run_raised "undecodable worker payload"))
         | Error (Fleet.Pool.Worker_lost n as f) ->
             outcome_of_failure ~attempts:n f
         | Error f -> outcome_of_failure ~attempts:1 f
       in
       Hashtbl.replace fresh r.r_key o)
    results;
  (* fold the per-worker journals (and any prior records) back into
     one canonical journal, then retire the shards *)
  (match journal_path with
   | None -> ()
   | Some path ->
       let shards = existing_worker_journals path in
       let report =
         Fleet.Merge.run ~fingerprint:fp ~order ~sources:(path :: shards)
           ~out:path ()
       in
       ignore (report : Fleet.Merge.report);
       List.iter Sys.remove shards);
  let cells =
    List.concat_map
      (fun bomb ->
         List.map
           (fun tool ->
              let key = Eval.cell_key tool bomb in
              match Hashtbl.find_opt replayable key with
              | Some o ->
                  m_replayed_cells ();
                  Eval.cell_of_outcome tool bomb o
              | None ->
                  let o =
                    match Hashtbl.find_opt fresh key with
                    | Some o -> o
                    | None ->
                        (* unreachable unless the pool lost the task
                           without reporting it; grade, don't raise *)
                        outcome_of_failure ~attempts:0
                          (Fleet.Pool.Run_raised "no result from fleet")
                  in
                  Eval.cell_of_outcome tool bomb o)
           tools)
      bombs
  in
  Eval.collate ~tools cells
