(** Per-cell resource profiler: wraps a supervised cell run and
    records what it cost — wall time broken down by span phase, VM
    steps, lifted instructions, solver blast/conflict/cache counters,
    taint coverage — keyed so a whole Table II run persists as a JSONL
    sidecar next to the journal.

    The measurement is a counter-delta around the run (the registry is
    cumulative), so profiles compose with journaling, the fleet (each
    worker appends to its own shard; {!merge_shards} folds them) and
    the supervisor's retries without touching {!Supervisor.outcome}.
    With [phases:false] nothing is reset or enabled, so profiling can
    ride along even where span tracing must stay off. *)

open Concolic.Error

type sample = {
  p_key : string;  (** "TOOL/bomb" *)
  p_grade : string;  (** {!Concolic.Error.cell_symbol} *)
  p_stage : string option;  (** Es attribution when supervised *)
  p_cause : string option;
      (** {!Supervisor.cause_name} — carries the degradation rung for
          degraded cells ("degraded:enumerate") *)
  p_attempts : int;
  p_wall_us : float;
  p_vm_steps : int;
  p_lifted : int;
  p_blasted : int;
  p_conflicts : int;
  p_cache_hits : int;
  p_queries : int;
  p_tainted : int;
  p_phases : (string * float) list;
      (** inclusive µs per span phase (a phase nested under another is
          counted in both), name-sorted; empty unless [phases] *)
}

(* the span names the engine stack actually emits *)
let phase_names =
  [ "cell"; "trace.record"; "vm.run"; "taint.analyze"; "concolic.driver";
    "concolic.trace_exec"; "concolic.dse"; "smt.check" ]

(* counter-name, field-extractor pairs drive both capture and codec *)
let counters =
  [ "vm.steps"; "lifter.insns_lifted"; "smt.blasted_nodes"; "smt.conflicts";
    "smt.cache_hits"; "smt.queries"; Taint.metric_tainted_insns ]

(** Run [run] under the profiler.  Deltas of the deterministic engine
    counters across the call; with [phases] additionally records span
    tracing for the call's duration (resetting recorded spans, and
    restoring the previous enablement after). *)
let profiled ?(phases = false) ~key (run : unit -> Supervisor.outcome) :
  Supervisor.outcome * sample =
  let before = List.map Telemetry.Metrics.counter_value counters in
  let was = Telemetry.is_enabled () in
  if phases then begin
    Telemetry.reset ();
    Telemetry.enable ()
  end;
  let t0 = Unix.gettimeofday () in
  let o = run () in
  let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let p_phases =
    if not phases then []
    else begin
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun s ->
           let name = s.Telemetry.name in
           if List.mem name phase_names then
             Hashtbl.replace tbl name
               (Telemetry.duration_us s
                +. (try Hashtbl.find tbl name with Not_found -> 0.)))
        (Telemetry.finished_spans ());
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
    end
  in
  if phases && not was then Telemetry.disable ();
  let after = List.map Telemetry.Metrics.counter_value counters in
  let delta i = List.nth after i - List.nth before i in
  let sample =
    { p_key = key;
      p_grade = cell_symbol o.Supervisor.graded.Grade.cell;
      p_stage = Option.map show_stage o.Supervisor.stage;
      p_cause = Option.map Supervisor.cause_name o.Supervisor.cause;
      p_attempts = o.Supervisor.attempts;
      p_wall_us = wall_us;
      p_vm_steps = delta 0;
      p_lifted = delta 1;
      p_blasted = delta 2;
      p_conflicts = delta 3;
      p_cache_hits = delta 4;
      p_queries = delta 5;
      p_tainted = delta 6;
      p_phases }
  in
  (o, sample)

(* ------------------------------------------------------------------ *)
(* JSONL codec and sidecar files                                       *)
(* ------------------------------------------------------------------ *)

let esc = Robust.Journal.json_escape

let encode (s : sample) =
  let opt = function
    | Some v -> Printf.sprintf "\"%s\"" (esc v)
    | None -> "null"
  in
  Printf.sprintf
    "{\"key\":\"%s\",\"grade\":\"%s\",\"stage\":%s,\"cause\":%s,\
     \"attempts\":%d,\"wall_us\":%.1f,\"vm_steps\":%d,\"lifted\":%d,\
     \"blasted\":%d,\"conflicts\":%d,\"cache_hits\":%d,\"queries\":%d,\
     \"tainted\":%d,\"phases\":{%s}}"
    (esc s.p_key) (esc s.p_grade) (opt s.p_stage) (opt s.p_cause)
    s.p_attempts s.p_wall_us s.p_vm_steps s.p_lifted s.p_blasted
    s.p_conflicts s.p_cache_hits s.p_queries s.p_tainted
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%.1f" (esc k) v)
          s.p_phases))

let decode line : sample option =
  let open Telemetry.Trace_check in
  match parse_opt line with
  | None -> None
  | Some j -> (
      let str k = match member k j with Some (Str s) -> Some s | _ -> None in
      let num k = match member k j with Some (Num n) -> Some n | _ -> None in
      let int k = Option.map int_of_float (num k) in
      match
        (str "key", str "grade", int "attempts", num "wall_us",
         int "vm_steps", int "lifted", int "blasted", int "conflicts")
      with
      | Some key, Some grade, Some attempts, Some wall, Some vm,
        Some lifted, Some blasted, Some conflicts ->
          let phases =
            match member "phases" j with
            | Some (Obj fields) ->
                List.filter_map
                  (fun (k, v) ->
                     match v with Num f -> Some (k, f) | _ -> None)
                  fields
                |> List.sort compare
            | _ -> []
          in
          Some
            { p_key = key;
              p_grade = grade;
              p_stage = str "stage";
              p_cause = str "cause";
              p_attempts = attempts;
              p_wall_us = wall;
              p_vm_steps = vm;
              p_lifted = lifted;
              p_blasted = blasted;
              p_conflicts = conflicts;
              p_cache_hits = Option.value ~default:0 (int "cache_hits");
              p_queries = Option.value ~default:0 (int "queries");
              p_tainted = Option.value ~default:0 (int "tainted");
              p_phases = phases }
      | _ -> None)

(** Append one sample to the sidecar (one JSON object per line,
    append-only — same torn-tail discipline as the span shards).
    Profiles are observability, not results: a full disk sheds the
    sample instead of failing the cell. *)
let append ~path (s : sample) =
  try
    let h = Robust.Diskio.open_append path in
    Robust.Diskio.append h (encode s ^ "\n");
    Robust.Diskio.close h
  with Robust.Diskio.Full _ -> ()

(** Load a sidecar: last sample wins per key (a resumed run re-appends
    the cells it re-executed); undecodable lines are skipped. *)
let load path : sample list =
  let ic = open_in path in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  (try
     while true do
       let line = input_line ic in
       match decode line with
       | Some s ->
           if not (Hashtbl.mem tbl s.p_key) then
             order := s.p_key :: !order;
           Hashtbl.replace tbl s.p_key s
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map (fun k -> Hashtbl.find tbl k) !order

(* --- fleet shards: each worker appends to its own sidecar shard --- *)

let shard_path ~path slot = Printf.sprintf "%s.w%d" path slot

let existing_shards ~path =
  List.filter_map
    (fun slot ->
       let p = shard_path ~path slot in
       if Sys.file_exists p then Some p else None)
    (List.init 256 Fun.id)

(** Fold the per-worker sidecar shards (and any prior main sidecar)
    into one canonical sidecar ordered by [order]; shards are removed
    after the merge.  Mirrors {!Fleet.Merge} for journals. *)
let merge_shards ~path ~(order : string list) () =
  let tbl = Hashtbl.create 64 in
  let eat p = List.iter (fun s -> Hashtbl.replace tbl s.p_key s) (load p) in
  if Sys.file_exists path then eat path;
  let shards = existing_shards ~path in
  List.iter eat shards;
  let buf = Buffer.create 4096 in
  let emit s =
    Buffer.add_string buf (encode s);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun key ->
       match Hashtbl.find_opt tbl key with
       | Some s ->
           emit s;
           Hashtbl.remove tbl key
       | None -> ())
    order;
  (* samples outside the canonical order (a custom grid) still land *)
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare a.p_key b.p_key)
  |> List.iter emit;
  Robust.Diskio.write_atomic ~path (Buffer.contents buf);
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) shards

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let split_key key =
  match String.index_opt key '/' with
  | Some i ->
      ( String.sub key 0 i,
        String.sub key (i + 1) (String.length key - i - 1) )
  | None -> (key, key)

let mean f l =
  match l with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc s -> acc +. f s) 0.0 l
      /. float_of_int (List.length l)

(** [eval profile]'s report: the top-[top] slowest cells with their
    phase breakdown, a per-bomb × per-tool wall-time table, and the
    Es-stage × resource correlation (which stage the expensive cells
    die at, and what they burn doing it). *)
let render_report ?(top = 10) (samples : sample list) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ms us = us /. 1e3 in
  (* --- top-K slowest cells --- *)
  let slowest =
    List.sort (fun a b -> compare b.p_wall_us a.p_wall_us) samples
  in
  pr "top %d slowest cells (%d profiled):\n"
    (min top (List.length samples))
    (List.length samples);
  List.iteri
    (fun i s ->
       if i < top then begin
         pr "  %-28s %8.1f ms  %s  vm:%d blast:%d cdcl:%d q:%d hit:%d%s%s\n"
           s.p_key (ms s.p_wall_us) s.p_grade s.p_vm_steps s.p_blasted
           s.p_conflicts s.p_queries s.p_cache_hits
           (match s.p_cause with Some c -> "  [" ^ c ^ "]" | None -> "")
           (match s.p_stage with Some st -> " @" ^ st | None -> "");
         match s.p_phases with
         | [] -> ()
         | phases ->
             pr "    %s\n"
               (String.concat "  "
                  (List.map
                     (fun (k, v) -> Printf.sprintf "%s:%.1fms" k (ms v))
                     (List.sort
                        (fun (_, a) (_, b) -> compare b a)
                        phases)))
       end)
    slowest;
  (* --- per-bomb x per-tool wall table --- *)
  let tools =
    List.sort_uniq compare (List.map (fun s -> fst (split_key s.p_key)) samples)
  in
  let bombs =
    List.sort_uniq compare (List.map (fun s -> snd (split_key s.p_key)) samples)
  in
  pr "\nwall time (ms) per bomb x tool:\n";
  pr "  %-20s" "bomb";
  List.iter (fun t -> pr " %10s" t) tools;
  pr "\n";
  List.iter
    (fun bomb ->
       pr "  %-20s" bomb;
       List.iter
         (fun tool ->
            match
              List.find_opt (fun s -> s.p_key = tool ^ "/" ^ bomb) samples
            with
            | Some s -> pr " %10.1f" (ms s.p_wall_us)
            | None -> pr " %10s" "-")
         tools;
       pr "\n")
    bombs;
  (* --- Es-stage x resource correlation --- *)
  (* the supervised [stage] when the supervisor attributed a cause;
     otherwise the grade itself, which already carries the Es symbol
     for error cells *)
  let stage_of s = Option.value ~default:s.p_grade s.p_stage in
  let stages = List.sort_uniq compare (List.map stage_of samples) in
  pr "\nEs-stage x resources (mean per cell):\n";
  pr "  %-10s %5s %10s %12s %10s %10s\n" "stage" "cells" "wall(ms)"
    "vm_steps" "blasted" "cdcl";
  List.iter
    (fun stage ->
       let group = List.filter (fun s -> stage_of s = stage) samples in
       pr "  %-10s %5d %10.1f %12.0f %10.0f %10.0f\n" stage
         (List.length group)
         (ms (mean (fun s -> s.p_wall_us) group))
         (mean (fun s -> float_of_int s.p_vm_steps) group)
         (mean (fun s -> float_of_int s.p_blasted) group)
         (mean (fun s -> float_of_int s.p_conflicts) group))
    stages;
  Buffer.contents buf
