(** The three modelled tools (four columns): BAP-like, Triton-like,
    Angr-like with and without library loading.

    Each profile is a capability bundle over the shared concolic core;
    each also carries the paper's per-tool *methodology* (§V-B): BAP
    is driven from the triggering input and asked to re-derive it,
    Triton explores concolically from a neutral seed, Angr performs
    directed symbolic execution toward the bomb. *)

type tool = Bap | Triton | Angr | Angr_nolib
[@@deriving show { with_path = false }, eq, ord, enum]

let all = [ Bap; Triton; Angr; Angr_nolib ]

let name = function
  | Bap -> "BAP"
  | Triton -> "Triton"
  | Angr -> "Angr"
  | Angr_nolib -> "Angr-NoLib"

(** Inverse of {!name}, case-insensitive, accepting common spellings. *)
let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "bap" -> Some Bap
  | "triton" -> Some Triton
  | "angr" -> Some Angr
  | "angr-nolib" | "angr_nolib" | "nolib" -> Some Angr_nolib
  | _ -> None

(** What an engine run produced, in tool-independent form. *)
type attempt = {
  proposed : string option;   (** candidate argv[1] *)
  diags : Concolic.Error.diag list;
  crashed : bool;
  budget_exhausted : bool;
  fp_seen : bool;
  symbolic_branches : int;
  trace_based : bool;
      (** Pin-style executor (affects error attribution: a symbolic
          jump is a constraint-extraction failure for these tools) *)
  work : int;                 (** instructions / steps spent *)
}

(** Constraint-system blow-up guard: bit-blasting a crypto-sized
    predicate is the "memory out" of the paper's E rows. *)
let max_blast_cost = 300_000

let path_too_large (path : Concolic.Trace_exec.path) =
  match path.constraints with
  | [] -> false
  | cs ->
    let _, (info : Concolic.State.info) = List.nth cs (List.length cs - 1) in
    info.cost > max_blast_cost

(* ------------------------------------------------------------------ *)
(* BAP-like: replay-and-rederive from the triggering input            *)
(* ------------------------------------------------------------------ *)

let solver_config =
  { Smt.Solver.default_config with conflict_budget = 20_000 }

let input_of_model ~width (model : Smt.Solver.model) =
  let b = Bytes.create width in
  for i = 0 to width - 1 do
    let v =
      match List.assoc_opt (Printf.sprintf "argv1_%d" i) model with
      | Some x -> Int64.to_int (Int64.logand x 0xffL)
      | None -> Char.code 'A'  (* neutral filler, never the seed *)
    in
    Bytes.set b i (Char.chr v)
  done;
  let s = Bytes.to_string b in
  match String.index_opt s '\000' with
  | Some 0 -> "A"
  | Some i -> String.sub s 0 i
  | None -> s

let run_bap ?(incremental = true) ?(ladder = Smt.Degrade.default_ladder)
    ~(image : Asm.Image.t) ~(run_config : string -> Vm.Machine.config)
    ~(seed : string) () : attempt =
  let solver_config = { solver_config with ladder } in
  (* one accumulator across session and one-shot solves, so
     degradation-ladder outcomes surface as diags either way *)
  let stats = Smt.Stats.create () in
  (* one trace, one query: the session buys no cross-query reuse here,
     but attaching it lets replay intern constraints as they are
     recorded, so the final solve starts with warm memo tables *)
  let session =
    if incremental then
      Some (Smt.Session.create ~config:solver_config ~stats ())
    else None
  in
  let trace =
    Trace.record ~max_events:400_000 ~config:(run_config seed) image
  in
  let path =
    Concolic.Trace_exec.run Concolic.Trace_exec.bap_like_config ?session trace
  in
  let cs = List.map fst path.constraints in
  let fp = List.exists Smt.Expr.contains_fp cs in
  let symbolic_branches = List.length path.branches in
  if path_too_large path then
    { proposed = None;
      diags = Concolic.Error.Solver_budget :: path.diags;
      crashed = false;
      budget_exhausted = true;
      fp_seen = fp;
      symbolic_branches;
      trace_based = true;
      work = trace.result.steps }
  else
    let proposed, extra =
      match
        (match session with
         | Some sess -> Smt.Session.check_assertions sess cs
         | None -> Smt.Solver.solve ~config:solver_config ~stats cs)
      with
      | Smt.Solver.Sat model ->
        (Some (input_of_model ~width:(String.length seed) model), [])
      | Smt.Solver.Unsat -> (None, [])
      | Smt.Solver.Unknown Smt.Solver.Fp_unsupported ->
        (None, [ Concolic.Error.Fp_constraint ])
      | Smt.Solver.Unknown _ -> (None, [ Concolic.Error.Solver_budget ])
    in
    let degraded =
      List.map
        (fun r -> Concolic.Error.Solver_degraded r)
        (Smt.Stats.degraded_rungs stats)
    in
    { proposed;
      diags = degraded @ extra @ path.diags;
      crashed = false;
      budget_exhausted =
        List.exists (fun d -> d = Concolic.Error.Solver_budget) extra;
      fp_seen = fp;
      symbolic_branches;
      trace_based = true;
      work = trace.result.steps }

(* ------------------------------------------------------------------ *)
(* Triton-like: concolic exploration from a neutral seed              *)
(* ------------------------------------------------------------------ *)

let run_triton ?(incremental = true) ?(ladder = Smt.Degrade.default_ladder)
    ~(image : Asm.Image.t) ~(run_config : string -> Vm.Machine.config)
    ~(detonated : Vm.Machine.run_result -> bool) ~(seed : string) () : attempt =
  let config =
    { (Concolic.Driver.default_config Concolic.Trace_exec.triton_like_config)
      with solver = { solver_config with ladder }; incremental }
  in
  let target =
    { Concolic.Driver.image; run_config; detonated }
  in
  let v = Concolic.Driver.explore ~seed config target in
  { proposed = v.solved_input;
    diags = v.diags;
    crashed = false;
    budget_exhausted = v.solver_unknowns > 0;
    fp_seen = v.fp_constraints;
    symbolic_branches = v.constraints_seen;
    trace_based = true;
    work = v.traces_run }

(* ------------------------------------------------------------------ *)
(* Angr-like: directed DSE                                             *)
(* ------------------------------------------------------------------ *)

let run_angr ?(incremental = true) ?(ladder = Smt.Degrade.default_ladder)
    ~(mode : Concolic.Dse.mode) ~(image : Asm.Image.t) () : attempt =
  let base = Concolic.Dse.default_config mode in
  let config =
    { base with incremental; solver = { base.solver with ladder } }
  in
  match Concolic.Dse.explore config image with
  | outcome ->
    let proposed =
      match outcome.claims with
      | { input; _ } :: _ -> Some input
      | [] -> None
    in
    let claim_diags =
      List.concat_map (fun (c : Concolic.Dse.claim) -> c.diags) outcome.claims
    in
    { proposed;
      diags =
        List.sort_uniq Concolic.Error.compare_diag
          (claim_diags @ outcome.diags);
      crashed = outcome.crashed <> None;
      budget_exhausted = outcome.budget_exhausted || outcome.solver_unknowns > 0;
      fp_seen = outcome.fp_seen;
      symbolic_branches = outcome.symbolic_branches;
      trace_based = false;
      work = outcome.steps }
  | exception e when not (Robust.is_fault e) ->
    (* typed robust faults (budget trips, injected chaos) must reach
       the cell supervisor for cause attribution — only unexpected
       engine crashes degrade to an Engine_crash diag here *)
    { proposed = None;
      diags = [ Concolic.Error.Engine_crash (Printexc.to_string e) ];
      crashed = true;
      budget_exhausted = false;
      fp_seen = false;
      symbolic_branches = 0;
      trace_based = false;
      work = 0 }
