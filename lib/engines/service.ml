(** The [eval serve] analysis service: request/response codec, the
    worker-side runner, and the line-oriented clients behind
    [eval submit] / [eval drain].

    A request is one JSON line:
    [{"op":"submit","id":ID,"tool":T,"bomb":B,"budget":SPEC|null,
      "retries":N,"backoff":F,"incremental":BOOL,"ladder":BOOL}]
    — a Table II cell (bomb + tool profile) plus its supervision
    budget.  The daemon ({!Fleet.Serve}) acks it as queued and later
    streams back the graded outcome:
    [{"id":ID,"status":"done","key":"TOOL/bomb","grade":G,
      "cause":C|null,"stage":Es|null,"attempts":N,
      "outcome":<full supervised outcome>}]
    with [cause]/[stage] carrying the supervisor's attribution
    ([degraded:give_up], [exhausted:smt], …, [Es0]..[Es3]) and
    [outcome] the complete {!Journal_codec} record. *)

open Telemetry.Trace_check

let esc = Robust.Journal.json_escape
let str s = "\"" ^ esc s ^ "\""

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

(** [idem] is the request's idempotency key (defaults to [id]): the
    daemon's durable queue dedupes resubmissions on it, so a client
    that reconnects after a crash reuses the same key and gets the
    journaled outcome instead of a second grading.  [deadline] bounds
    the seconds the request may wait in the daemon's queue. *)
let encode_request ~id ?idem ?deadline ~tool ~bomb ?budget ?(retries = 0)
    ?(backoff = 10.0) ?(incremental = true) ?(ladder = true) () =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%s,\"idem\":%s,%s\"tool\":%s,\"bomb\":%s,\
     \"budget\":%s,\
     \"retries\":%d,\"backoff\":%g,\"incremental\":%b,\"ladder\":%b}"
    (str id)
    (str (Option.value ~default:id idem))
    (match deadline with
     | None -> ""
     | Some d -> Printf.sprintf "\"deadline_s\":%g," d)
    (str (Profile.name tool)) (str bomb)
    (match budget with None -> "null" | Some s -> str s)
    retries backoff incremental ladder

type request = {
  rq_id : string option;
  rq_tool : Profile.tool;
  rq_bomb : Bombs.Common.t;
  rq_policy : Supervisor.policy;
  rq_incremental : bool;
  rq_ladder : bool;  (** false: run with the degradation ladder off *)
}

let decode_request line : (request, string) Stdlib.result =
  match parse_opt line with
  | None -> Error "request is not valid JSON"
  | Some j -> (
      let id = match member "id" j with Some (Str s) -> Some s | _ -> None in
      let bool_field name default =
        match member name j with Some (Bool b) -> b | _ -> default
      in
      match (member "tool" j, member "bomb" j) with
      | Some (Str t), Some (Str b) -> (
          match (Profile.of_name t, Bombs.Catalog.find_opt b) with
          | None, _ -> Error (Printf.sprintf "unknown tool %S" t)
          | _, None -> Error (Printf.sprintf "unknown bomb %S" b)
          | Some tool, Some bomb -> (
              let budget =
                match member "budget" j with
                | Some (Str spec) -> (
                    match Robust.Budget.parse spec with
                    | Ok b -> Ok b
                    | Error e -> Error ("bad budget: " ^ e))
                | _ -> Ok Robust.Budget.unlimited
              in
              match budget with
              | Error e -> Error e
              | Ok budget ->
                  let retries =
                    match member "retries" j with
                    | Some (Num n) -> int_of_float n
                    | _ -> 0
                  in
                  let backoff =
                    match member "backoff" j with
                    | Some (Num f) -> f
                    | _ -> 10.0
                  in
                  Ok
                    { rq_id = id;
                      rq_tool = tool;
                      rq_bomb = bomb;
                      rq_policy =
                        { Supervisor.default_policy with
                          budget; retries; backoff };
                      rq_incremental = bool_field "incremental" true;
                      rq_ladder = bool_field "ladder" true }))
      | _ -> Error "request needs string fields \"tool\" and \"bomb\"")

(* ------------------------------------------------------------------ *)
(* Worker runner                                                       *)
(* ------------------------------------------------------------------ *)

let opt_id = function None -> "null" | Some i -> str i

let error_response ~id msg =
  Printf.sprintf "{\"id\":%s,\"status\":\"error\",\"error\":%s}" (opt_id id)
    (str msg)

(** Runs inside a {!Fleet.Pool} worker: decode the request line, run
    the supervised cell, encode the streamed outcome.  Total — every
    failure becomes an error response line, so the daemon never sees a
    raising runner for a malformed request. *)
let worker_run ~attempt ~key:_ (task : string) : string =
  match decode_request task with
  | Error msg -> error_response ~id:None msg
  | Ok rq -> (
      (* a worker died on this request before: escalate the budget by
         the request's own backoff, like a supervisor retry *)
      let policy =
        if attempt <= 1 then rq.rq_policy
        else
          { rq.rq_policy with
            budget =
              Robust.Budget.scale
                (rq.rq_policy.backoff ** float_of_int (attempt - 1))
                rq.rq_policy.budget }
      in
      match
        Supervisor.run_cell ~incremental:rq.rq_incremental
          ?ladder:(if rq.rq_ladder then None else Some []) ~policy rq.rq_tool
          rq.rq_bomb
      with
      | o ->
          Printf.sprintf
            "{\"id\":%s,\"status\":\"done\",\"key\":%s,\"grade\":%s,\
             \"cause\":%s,\"stage\":%s,\"attempts\":%d,\"outcome\":%s}"
            (opt_id rq.rq_id)
            (str (Eval.cell_key rq.rq_tool rq.rq_bomb))
            (Journal_codec.encode_cell o.Supervisor.graded.cell)
            (match o.Supervisor.cause with
             | None -> "null"
             | Some c -> str (Supervisor.cause_name c))
            (match o.Supervisor.stage with
             | None -> "null"
             | Some s -> str (Journal_codec.encode_stage s))
            o.Supervisor.attempts
            (Journal_codec.encode_outcome o)
      | exception e ->
          error_response ~id:rq.rq_id
            ("cell raised: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Daemon entry                                                        *)
(* ------------------------------------------------------------------ *)

(** The serving configuration's stable fingerprint: protocol version,
    tool set and the full bomb catalog (names and images).  Stamped on
    the durable queue journal so a daemon restarted under a different
    build or catalog refuses to replay its outcomes. *)
let queue_fingerprint () =
  Robust.Journal.fingerprint
    (Fleet.Serve.version
     :: List.map Profile.name Profile.all
     @ List.concat_map
         (fun (b : Bombs.Common.t) ->
            [ b.name; b.category; Asm.Image.to_bytes (Bombs.Catalog.image b) ])
         Bombs.Catalog.all)

(** Run the [eval serve] daemon on [socket] until drained.  Raises
    {!Fleet.Serve.Socket_in_use} / {!Fleet.Serve.Stale_socket} instead
    of binding over an existing socket, and
    {!Fleet.Serve.Journal_mismatch} when [queue_journal] was written
    under a different configuration (unless [force]).

    [task_timeout] is the per-cell wall watchdog (0 disables);
    [breaker] quarantines a worker slot after that many consecutive
    deaths; [chaos_rate]/[chaos_seed] arm seeded IPC fault injection
    on the pool pipes and client sockets (soak/bench only). *)
let serve ?(workers = 2) ?(max_queue = 10_000) ?queue_journal
    ?(force = false) ?task_timeout ?(respawns = 1) ?breaker
    ?(chaos_seed = 0xC0FFEEL) ?(chaos_rate = 0.) ?default_deadline ~socket ()
    =
  let mk_chaos points =
    if chaos_rate > 0. then
      Some
        (Robust.Chaos.fleet_state ~seed:chaos_seed
           (Robust.Chaos.Rate { rate = chaos_rate; points }))
    else None
  in
  let pool =
    Fleet.Pool.create
      (* snapshots on: the daemon's [metrics] op reports the workers'
         engine counters, not just its own request accounting *)
      ~config:
        { Fleet.Pool.default_config with
          workers; respawns; snapshots = true; task_timeout; breaker;
          chaos =
            mk_chaos
              Robust.Chaos.
                [ Corrupt_dispatch; Corrupt_reply; Drop_reply; Delay_reply;
                  Worker_stall ] }
      worker_run
  in
  match
    Fleet.Serve.run
      { (Fleet.Serve.default_config ~socket) with
        max_queue; queue_journal; force; default_deadline;
        run_fingerprint = queue_fingerprint ();
        chaos = mk_chaos [ Robust.Chaos.Client_reset ] }
      ~pool
  with
  | () -> ()
  | exception e ->
      Fleet.Pool.shutdown pool;
      raise e

(* ------------------------------------------------------------------ *)
(* Clients                                                             *)
(* ------------------------------------------------------------------ *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let with_connection socket f =
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       f (Unix.in_channel_of_descr fd) (Unix.out_channel_of_descr fd))

let status_of_line line =
  match Option.bind (parse_opt line) (member "status") with
  | Some (Str s) -> Some s
  | _ -> None

(** Submit every request line and stream responses to [on_line] until
    each request has its final answer (done / error / rejected).
    Returns the number of requests that did not come back [done]. *)
let submit ~socket ?(on_line = fun (_ : string) -> ()) (requests : string list)
  : int =
  with_connection socket @@ fun ic oc ->
  List.iter
    (fun r ->
       output_string oc r;
       output_char oc '\n')
    requests;
  flush oc;
  let total = List.length requests in
  let finals = ref 0 in
  let failures = ref 0 in
  while !finals < total do
    let line = input_line ic in
    on_line line;
    match status_of_line line with
    | Some "queued" -> ()
    | Some "done" -> incr finals
    | Some ("error" | "rejected") ->
        incr finals;
        incr failures
    | _ -> ()
  done;
  !failures

(** Ask the daemon to finish its queue and shut down; streams status
    lines until the final [drained] acknowledgement. *)
let drain ~socket ?(on_line = fun (_ : string) -> ()) () : unit =
  with_connection socket @@ fun ic oc ->
  output_string oc "{\"op\":\"drain\"}\n";
  flush oc;
  let rec wait () =
    let line = input_line ic in
    on_line line;
    if status_of_line line <> Some "drained" then wait ()
  in
  wait ()

(** Liveness probe: the daemon's queue depth, or [None] if nothing
    answers on the socket. *)
let ping ~socket () : int option =
  match
    with_connection socket @@ fun ic oc ->
    output_string oc "{\"op\":\"ping\"}\n";
    flush oc;
    input_line ic
  with
  | line -> (
      match Option.bind (parse_opt line) (member "pending") with
      | Some (Num n) -> Some (int_of_float n)
      | _ -> None)
  | exception (Unix.Unix_error _ | End_of_file | Sys_error _) -> None

(* one-line request/response round trip; [None] when nothing answers *)
let request ~socket line : string option =
  match
    with_connection socket @@ fun ic oc ->
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  with
  | reply -> Some reply
  | exception (Unix.Unix_error _ | End_of_file | Sys_error _) -> None

(** The daemon's [health] summary (uptime, workers alive, queue depth,
    request latency percentiles) as its raw JSON line. *)
let health ~socket () : string option =
  request ~socket "{\"op\":\"health\"}"

(** The daemon's aggregated metrics (its own registry merged with
    everything its workers reported): the raw JSON response, or with
    [prometheus] the text exposition extracted from it. *)
let metrics ~socket ?(prometheus = false) () : string option =
  if not prometheus then request ~socket "{\"op\":\"metrics\"}"
  else
    Option.bind
      (request ~socket "{\"op\":\"metrics\",\"format\":\"prometheus\"}")
      (fun line ->
         match Option.bind (parse_opt line) (member "text") with
         | Some (Str text) -> Some text
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Resilient client                                                    *)
(* ------------------------------------------------------------------ *)

(** [worker_run]'s response layout is fixed: the ["outcome"] field is
    last, so its exact byte text is the slice between the marker and
    the closing brace — no decode/re-encode round trip, the same trick
    as {!Robust.Journal.raw_payload_of_body}.  [None] for non-[done]
    lines. *)
let outcome_raw_of_response (line : string) : string option =
  let marker = ",\"outcome\":" in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else find (i + 1)
  in
  if status_of_line line <> Some "done" then None
  else
    match find 0 with
    | Some p when n > p && line.[n - 1] = '}' ->
        Some (String.sub line p (n - 1 - p))
    | _ -> None

type submit_report = {
  sr_answered : int;  (** requests that came back [done] *)
  sr_failed : int;  (** final error/expired past the retry budget *)
  sr_unanswered : int;  (** still pending when sessions ran out *)
  sr_sessions : int;  (** connections attempted (1 = no reconnect) *)
}

(** Crash-tolerant [submit]: send every request, reconnect with linear
    backoff when the daemon drops the connection or refuses it
    (ECONNREFUSED while it restarts, EPIPE/EOF when it is killed
    mid-stream), and resubmit whatever has no final answer yet under
    the same idempotency keys — the daemon's durable queue turns the
    resubmissions into journal replays, not re-gradings.  Shed
    requests ([rejected] with [retry_after_s]) back off by the
    daemon's own hint.  [retry_failures] additionally retries
    error/expired finals that many times.  [should_abort], checked
    after every received line, ends the current session early (the
    soak uses it to stop submitting at the kill point). *)
let submit_resilient ~socket ?(sessions = 8) ?(delay = 0.15)
    ?(retry_failures = 0) ?(on_line = fun (_ : string) -> ())
    ?(should_abort = fun () -> false) (requests : (string * string) list) :
  submit_report =
  let pending = Hashtbl.create 64 in
  List.iter (fun (id, line) -> Hashtbl.replace pending id line) requests;
  let fail_budget = Hashtbl.create 16 in
  let answered = ref 0 and failed = ref 0 and attempts = ref 0 in
  let id_of line =
    match Option.bind (parse_opt line) (member "id") with
    | Some (Str s) -> Some s
    | _ -> None
  in
  (* one connection: send everything still pending, read until every
     sent request has a final answer; returns the largest retry_after
     hint seen *)
  let session () =
    with_connection socket @@ fun ic oc ->
    let sent = Hashtbl.fold (fun id line acc -> (id, line) :: acc) pending [] in
    List.iter
      (fun (_, line) ->
         output_string oc line;
         output_char oc '\n')
      sent;
    flush oc;
    let outstanding = ref (List.length sent) in
    let retry_hint = ref 0 in
    while !outstanding > 0 && not (should_abort ()) do
      let line = input_line ic in
      on_line line;
      match (status_of_line line, id_of line) with
      | Some "queued", _ -> ()
      | Some "done", id ->
          (match id with
           | Some id when Hashtbl.mem pending id ->
               Hashtbl.remove pending id;
               incr answered
           | _ -> ());
          decr outstanding
      | Some "rejected", _ ->
          (* shed: stays pending for the next session *)
          (match Option.bind (parse_opt line) (member "retry_after_s") with
           | Some (Num n) -> retry_hint := max !retry_hint (int_of_float n)
           | _ -> ());
          decr outstanding
      | Some ("error" | "expired"), id ->
          (match id with
           | Some id when Hashtbl.mem pending id ->
               let budget =
                 Option.value ~default:retry_failures
                   (Hashtbl.find_opt fail_budget id)
               in
               if budget > 0 then Hashtbl.replace fail_budget id (budget - 1)
               else begin
                 Hashtbl.remove pending id;
                 incr failed
               end
           | _ -> ());
          decr outstanding
      | _ -> ()
    done;
    !retry_hint
  in
  let rec go n =
    if Hashtbl.length pending = 0 || should_abort () || n > sessions then ()
    else begin
      incr attempts;
      match session () with
      | hint ->
          if Hashtbl.length pending > 0 && not (should_abort ()) then begin
            ignore
              (Unix.select [] [] []
                 (Float.max (float_of_int hint) (delay *. float_of_int n)));
            go (n + 1)
          end
      | exception (Unix.Unix_error _ | End_of_file | Sys_error _) ->
          ignore (Unix.select [] [] [] (delay *. float_of_int n));
          go (n + 1)
    end
  in
  go 1;
  { sr_answered = !answered;
    sr_failed = !failed;
    sr_unanswered = Hashtbl.length pending;
    sr_sessions = !attempts }
