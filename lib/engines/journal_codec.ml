(** JSON codec for {!Supervisor.outcome} journal payloads.

    The journal itself ({!Robust.Journal}) only moves checksummed
    lines; this module round-trips a complete supervised cell result
    — grade, proposed input, diagnostics, cause, Es-stage, attempts,
    chaos fires — through the payload slot.  Decoding is total:
    anything unexpected yields [None] and the caller re-runs the cell,
    so a hand-edited or version-skewed journal can cost work but never
    inject a wrong grade. *)

open Concolic.Error

let esc = Robust.Journal.json_escape

let str s = "\"" ^ esc s ^ "\""

let opt_str = function None -> "null" | Some s -> str s

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)
(* ------------------------------------------------------------------ *)

let encode_stage s = show_stage s  (* "Es0" .. "Es3" *)

let decode_stage = function
  | "Es0" -> Some Es0
  | "Es1" -> Some Es1
  | "Es2" -> Some Es2
  | "Es3" -> Some Es3
  | _ -> None

let encode_cell = function
  | Success -> str "OK"
  | Fail s -> str (encode_stage s)
  | Abnormal -> str "E"
  | Partial -> str "P"

let decode_cell = function
  | "OK" -> Some Success
  | "E" -> Some Abnormal
  | "P" -> Some Partial
  | s -> Option.map (fun st -> Fail st) (decode_stage s)

(* diags: {"d":<tag>} plus "s" (string payload) or "a" (int64 payload,
   kept as a decimal string — addresses don't fit a float mantissa) *)
let encode_diag d =
  let tag n = Printf.sprintf "{\"d\":%s}" (str n) in
  let tag_s n s = Printf.sprintf "{\"d\":%s,\"s\":%s}" (str n) (str s) in
  let tag_a n a =
    Printf.sprintf "{\"d\":%s,\"a\":%s}" (str n) (str (Int64.to_string a))
  in
  match d with
  | Lift_failure s -> tag_s "lift_failure" s
  | Signal_in_trace -> tag "signal_in_trace"
  | Taint_lost_in_kernel -> tag "taint_lost_in_kernel"
  | Concretized_load a -> tag_a "concretized_load" a
  | Concretized_store a -> tag_a "concretized_store" a
  | Symbolic_jump_target -> tag "symbolic_jump_target"
  | Unconstrained_syscall s -> tag_s "unconstrained_syscall" s
  | Unconstrained_external s -> tag_s "unconstrained_external" s
  | Unconstrained_input s -> tag_s "unconstrained_input" s
  | Unsupported_syscall s -> tag_s "unsupported_syscall" s
  | Symbolic_syscall_number -> tag "symbolic_syscall_number"
  | Fault_path_pruned -> tag "fault_path_pruned"
  | Fp_constraint -> tag "fp_constraint"
  | Solver_budget -> tag "solver_budget"
  | State_budget -> tag "state_budget"
  | Engine_crash s -> tag_s "engine_crash" s
  | Solver_degraded s -> tag_s "solver_degraded" s

let encode_cause (c : Supervisor.cause) =
  match c with
  | Supervisor.Exhausted r ->
      Printf.sprintf "{\"c\":\"exhausted\",\"r\":%s}"
        (str (Robust.Meter.resource_name r))
  | Supervisor.Injected p ->
      Printf.sprintf "{\"c\":\"injected\",\"p\":%s}"
        (str (Robust.Chaos.point_name p))
  | Supervisor.Crashed m -> Printf.sprintf "{\"c\":\"crash\",\"m\":%s}" (str m)
  | Supervisor.Degraded rung ->
      Printf.sprintf "{\"c\":\"degraded\",\"rung\":%s}" (str rung)

let encode_outcome (o : Supervisor.outcome) : string =
  let g = o.graded in
  Printf.sprintf
    "{\"cell\":%s,\"proposed\":%s,\"detonated\":%b,\"false_positive\":%b,\
     \"diags\":[%s],\"work\":%d,\"cause\":%s,\"stage\":%s,\"attempts\":%d,\
     \"fired\":[%s]}"
    (encode_cell g.cell) (opt_str g.proposed) g.detonated g.false_positive
    (String.concat "," (List.map encode_diag g.diags))
    g.work
    (match o.cause with None -> "null" | Some c -> encode_cause c)
    (match o.stage with None -> "null" | Some s -> str (encode_stage s))
    o.attempts
    (String.concat ","
       (List.map
          (fun (p, n) ->
             Printf.sprintf "[%s,%d]" (str (Robust.Chaos.point_name p)) n)
          o.fired))

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)
(* ------------------------------------------------------------------ *)

open Telemetry.Trace_check

(* Option.bind-style decoding: any shape surprise collapses to None *)
let ( let* ) = Option.bind

let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Num n -> Some (int_of_float n) | _ -> None
let as_arr = function Arr l -> Some l | _ -> None

let opt_member name j =
  (* distinguish "absent / null" (None payload) from present *)
  match member name j with
  | None | Some Null -> Ok None
  | Some v -> (
      match as_str v with Some s -> Ok (Some s) | None -> Error ())

let decode_diag j =
  let* tag = Option.bind (member "d" j) as_str in
  let s () = Option.bind (member "s" j) as_str in
  let a () =
    Option.bind
      (Option.bind (member "a" j) as_str)
      Int64.of_string_opt
  in
  match tag with
  | "lift_failure" -> Option.map (fun x -> Lift_failure x) (s ())
  | "signal_in_trace" -> Some Signal_in_trace
  | "taint_lost_in_kernel" -> Some Taint_lost_in_kernel
  | "concretized_load" -> Option.map (fun x -> Concretized_load x) (a ())
  | "concretized_store" -> Option.map (fun x -> Concretized_store x) (a ())
  | "symbolic_jump_target" -> Some Symbolic_jump_target
  | "unconstrained_syscall" ->
      Option.map (fun x -> Unconstrained_syscall x) (s ())
  | "unconstrained_external" ->
      Option.map (fun x -> Unconstrained_external x) (s ())
  | "unconstrained_input" -> Option.map (fun x -> Unconstrained_input x) (s ())
  | "unsupported_syscall" -> Option.map (fun x -> Unsupported_syscall x) (s ())
  | "symbolic_syscall_number" -> Some Symbolic_syscall_number
  | "fault_path_pruned" -> Some Fault_path_pruned
  | "fp_constraint" -> Some Fp_constraint
  | "solver_budget" -> Some Solver_budget
  | "state_budget" -> Some State_budget
  | "engine_crash" -> Option.map (fun x -> Engine_crash x) (s ())
  | "solver_degraded" -> Option.map (fun x -> Solver_degraded x) (s ())
  | _ -> None

let decode_cause j : Supervisor.cause option =
  let* tag = Option.bind (member "c" j) as_str in
  match tag with
  | "exhausted" ->
      let* r = Option.bind (member "r" j) as_str in
      Option.map
        (fun r -> Supervisor.Exhausted r)
        (Robust.Meter.resource_of_name r)
  | "injected" ->
      let* p = Option.bind (member "p" j) as_str in
      Option.map
        (fun p -> Supervisor.Injected p)
        (Robust.Chaos.point_of_name p)
  | "crash" ->
      Option.map
        (fun m -> Supervisor.Crashed m)
        (Option.bind (member "m" j) as_str)
  | "degraded" ->
      Option.map
        (fun rung -> Supervisor.Degraded rung)
        (Option.bind (member "rung" j) as_str)
  | _ -> None

let rec map_all f = function
  | [] -> Some []
  | x :: xs ->
      let* y = f x in
      let* ys = map_all f xs in
      Some (y :: ys)

let decode_fired j =
  match j with
  | Arr [ p; Num n ] ->
      let* p = as_str p in
      Option.map
        (fun p -> (p, int_of_float n))
        (Robust.Chaos.point_of_name p)
  | _ -> None

let decode_outcome (j : json) : Supervisor.outcome option =
  let* cell = Option.bind (Option.bind (member "cell" j) as_str) decode_cell in
  let* proposed =
    match opt_member "proposed" j with Ok p -> Some p | Error () -> None
  in
  let* detonated = Option.bind (member "detonated" j) as_bool in
  let* false_positive = Option.bind (member "false_positive" j) as_bool in
  let* diags =
    Option.bind (Option.bind (member "diags" j) as_arr) (map_all decode_diag)
  in
  let* work = Option.bind (member "work" j) as_int in
  let* cause =
    match member "cause" j with
    | None | Some Null -> Some None
    | Some c -> Option.map (fun c -> Some c) (decode_cause c)
  in
  let* stage =
    match member "stage" j with
    | None | Some Null -> Some None
    | Some s ->
        Option.map
          (fun s -> Some s)
          (Option.bind (as_str s) decode_stage)
  in
  let* attempts = Option.bind (member "attempts" j) as_int in
  let* fired =
    Option.bind (Option.bind (member "fired" j) as_arr) (map_all decode_fired)
  in
  Some
    { Supervisor.graded =
        { Grade.cell; proposed; detonated; false_positive; diags; work };
      cause; stage; attempts; fired }
