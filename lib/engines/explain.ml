(** Error-stage attribution: run one (tool × bomb) cell under span
    tracing and report *where* symbolic reasoning lost the input.

    The diagnosis reuses {!Grade.run_cell} verbatim — the reported
    stage is derived from the same graded cell that Table II prints,
    so the two cannot disagree — and then walks the recorded span tree
    to mark the pipeline stage (trace, lift, taint, solve) where that
    class of error is introduced (§IV-A of the paper). *)

open Concolic.Error

type t = {
  bomb : Bombs.Common.t;
  tool : Profile.tool;
  graded : Grade.graded;
  stage : stage option;  (** [None] for Success / Abnormal cells *)
}

(** The Es-stage a Table II cell attributes its failure to.  [Partial]
    cells are data-propagation artifacts (SimOS invented values the
    real kernel would not produce), hence Es2. *)
let stage_of_cell = function
  | Fail s -> Some s
  | Partial -> Some Es2
  | Success | Abnormal -> None

let stage_blurb = function
  | Es0 ->
    "symbolic variable declaration: the input never became symbolic \
     anywhere the guard could see (e.g. it entered through a syscall \
     the tool does not treat as a source)"
  | Es1 ->
    "instruction tracing / lifting: an instruction on the data-flow \
     path could not be traced or lifted, so its semantics vanished \
     from the symbolic state"
  | Es2 ->
    "data propagation: the symbolic/tainted data was lost en route to \
     the guard (kernel round trip, unmodeled propagation channel, or \
     simulated values standing in for real ones)"
  | Es3 ->
    "constraint modeling: the guard was reached with symbolic data \
     but its predicate could not be expressed or solved (symbolic \
     addresses, computed jumps, floating point, solver budget)"

(** The Es-stage a tripped budget belongs to: instruction-count caps
    die while tracing/lifting (Es1), a taint-event cap dies in data
    propagation (Es2), solver and expression caps die in constraint
    modeling (Es3).  The deadline and cancellation are whole-cell
    conditions with no single pipeline stage. *)
let stage_of_resource : Robust.Meter.resource -> stage option = function
  | Robust.Meter.Vm_steps | Robust.Meter.Lifted_insns -> Some Es1
  | Robust.Meter.Taint_events -> Some Es2
  | Robust.Meter.Solver_conflicts | Robust.Meter.Expr_nodes -> Some Es3
  | Robust.Meter.Deadline | Robust.Meter.Cancelled -> None

(** The Es-stage an injected fault surfaces at, mirroring where its
    probe point lives in the pipeline. *)
let stage_of_point : Robust.Chaos.point -> stage option = function
  | Robust.Chaos.Lifter_unmodeled -> Some Es1
  | Robust.Chaos.Solver_timeout | Robust.Chaos.Alloc_failure -> Some Es3
  | Robust.Chaos.Cancellation -> None

(** Span names where each stage's failure is introduced, most specific
    first; the first recorded span matching is marked. *)
let spans_of_stage = function
  | Es0 -> [ "trace.record"; "concolic.dse"; "cell" ]
  | Es1 -> [ "concolic.trace_exec"; "concolic.dse"; "cell" ]
  | Es2 -> [ "taint.analyze"; "concolic.trace_exec"; "concolic.dse"; "cell" ]
  | Es3 -> [ "smt.check"; "concolic.dse"; "cell" ]

let mark_stage stage =
  let spans = Telemetry.finished_spans () in
  let mark_text = show_stage stage ^ " introduced here" in
  let rec try_names = function
    | [] -> ()
    | name :: rest -> (
        match List.find_opt (fun (s : Telemetry.span) -> s.name = name) spans with
        | Some s -> s.attrs <- ("mark", mark_text) :: s.attrs
        | None -> try_names rest)
  in
  try_names (spans_of_stage stage)

(** Run the cell with tracing enabled and attribute the outcome.
    Spans and metrics are reset first and left in place afterwards so
    the caller can render or dump them through any sink; the previous
    tracing enablement is restored.

    [budget] meters the cell like a supervised run would, so a
    diagnosis can reproduce budget-tripped behaviour — including the
    degradation-ladder rungs — for one cell in isolation. *)
let run ?incremental ?ladder ?budget (tool : Profile.tool)
    (bomb : Bombs.Common.t) : t =
  let was_enabled = Telemetry.is_enabled () in
  Telemetry.reset ();
  Telemetry.Metrics.reset ();
  Telemetry.enable ();
  let bare () = Grade.run_cell ?incremental ?ladder tool bomb in
  let graded =
    match budget with
    | None -> bare ()
    | Some b -> (
        let meter = Robust.Meter.create b in
        match Robust.Meter.with_ambient meter bare with
        | g -> g
        | exception Robust.Meter.Exhausted { resource; _ } ->
          (* mirror the supervisor's degraded-cell grading so the
             explained cell matches what Table II would print *)
          let diag =
            match resource with
            | Robust.Meter.Solver_conflicts | Robust.Meter.Expr_nodes ->
              Solver_budget
            | Robust.Meter.Cancelled -> Engine_crash "cancelled"
            | _ -> State_budget
          in
          { Grade.cell =
              (if resource = Robust.Meter.Cancelled then Partial
               else Abnormal);
            proposed = None; detonated = false; false_positive = false;
            diags = [ diag ];
            work = meter.Robust.Meter.vm_steps })
  in
  if not was_enabled then Telemetry.disable ();
  let stage = stage_of_cell graded.cell in
  (match stage with Some s -> mark_stage s | None -> ());
  { bomb; tool; graded; stage }

let render (r : t) =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s x %s -> %s\n" r.bomb.name (Profile.name r.tool)
    (cell_symbol r.graded.cell);
  (match r.graded.proposed with
   | Some input ->
     pr "  proposed input: %S (detonated: %b%s)\n" input r.graded.detonated
       (if r.graded.false_positive then ", FALSE POSITIVE" else "")
   | None -> pr "  proposed input: none\n");
  (match r.stage with
   | Some s -> pr "  failure stage: %s — %s\n" (show_stage s) (stage_blurb s)
   | None ->
     (match r.graded.cell with
      | Success -> pr "  no failure: the proposed input detonates the bomb\n"
      | _ ->
        pr "  abnormal: the engine crashed or exhausted its budget \
           before any stage could be attributed\n"));
  (match r.graded.diags with
   | [] -> ()
   | diags ->
     pr "  engine diagnostics:\n";
     List.iter (fun d -> pr "    - %s\n" (show_diag d)) diags);
  (match degraded_rungs r.graded.diags with
   | [] -> ()
   | rungs ->
     pr "  solver degradation: budget-tripped checks were decided by \
        ladder rung%s %s; a supervised run grades this cell P \
        (degraded)\n"
       (if List.length rungs > 1 then "s" else "")
       (String.concat ", " rungs));
  pr "  span tree (! marks the attributed stage):\n";
  String.split_on_char '\n' (Telemetry.render_tree ())
  |> List.iter (fun line -> if line <> "" then pr "    %s\n" line);
  pr "  metrics:\n%s" (Telemetry.Metrics.render ());
  Buffer.contents buf
