(** Cell supervision: crash isolation and graceful degradation for
    Table II.

    Every (tool × bomb) cell runs under a fresh {!Robust.Meter}
    installed as the ambient meter, so budgets govern the whole engine
    stack without parameter threading.  A tripped budget, an injected
    chaos fault, or any unexpected exception is caught here, mapped to
    the paper's [E]/[P] grades with the Es-stage attribution from
    {!Explain}, and counted in [robust.*] telemetry — the rest of the
    table is never disturbed.  Optionally the cell is retried with an
    escalated budget before being graded as degraded. *)

open Concolic.Error

(** Why a supervised cell did not complete normally. *)
type cause =
  | Exhausted of Robust.Meter.resource  (** typed budget trip *)
  | Injected of Robust.Chaos.point  (** chaos fault (never retried) *)
  | Crashed of string  (** unexpected exception *)
  | Degraded of string
      (** the cell completed, but only because the solver degradation
          ladder answered budget-tripped checks; names the deepest
          rung that fired (see {!Smt.Degrade}) *)

let cause_name = function
  | Exhausted r -> "exhausted:" ^ Robust.Meter.resource_name r
  | Injected p -> "injected:" ^ Robust.Chaos.point_name p
  | Crashed _ -> "crash"
  | Degraded rung -> "degraded:" ^ rung

type policy = {
  budget : Robust.Budget.t;  (** caps for the first attempt *)
  retries : int;  (** extra attempts after a budget trip *)
  backoff : float;  (** budget scale factor per retry *)
  chaos : Robust.Chaos.plan option;  (** fault-injection plan *)
}

(** No caps, no retries, no chaos: supervised output is identical to
    running the engine bare (the supervisor only adds the catch). *)
let default_policy =
  { budget = Robust.Budget.unlimited; retries = 0; backoff = 10.0;
    chaos = None }

type outcome = {
  graded : Grade.graded;
  cause : cause option;  (** [None]: the final attempt completed *)
  stage : stage option;  (** Es attribution of [cause] *)
  attempts : int;
  fired : (Robust.Chaos.point * int) list;
      (** chaos faults fired during the final attempt *)
}

(* robust.* accounting: per-resource/per-point cause counters live in
   Robust itself (they fire at the raise site); these count what the
   supervisor did about it *)
let m_cells = Telemetry.Metrics.counter "robust.cells"
let m_cells_e = Telemetry.Metrics.counter "robust.cells_e"
let m_cells_p = Telemetry.Metrics.counter "robust.cells_p"
let m_retries = Telemetry.Metrics.counter "robust.retries"
let m_crashes = Telemetry.Metrics.counter "robust.crashes"

let m_stage =
  List.map
    (fun (name, s) -> (s, Telemetry.Metrics.counter ("robust.stage." ^ name)))
    [ ("es0", Some Es0); ("es1", Some Es1); ("es2", Some Es2);
      ("es3", Some Es3); ("none", None) ]

(** Es-stage of a degraded cell, reusing {!Explain}'s budget/probe
    attribution tables. *)
let stage_of_cause = function
  | Exhausted r -> Explain.stage_of_resource r
  | Injected p -> Explain.stage_of_point p
  | Crashed _ -> None
  | Degraded _ -> Some Es3  (* constraint modeling, like a solver trip *)

(** A cancelled cell is a partial result ([P]); every other cause is
    an abnormal exit ([E]), matching the paper's reading of tool
    deaths vs interrupted-but-salvageable runs. *)
let cell_of_cause = function
  | Exhausted Robust.Meter.Cancelled -> Partial
  | Degraded _ -> Partial
  | Exhausted _ | Injected _ | Crashed _ -> Abnormal

let diag_of_cause = function
  | Exhausted (Robust.Meter.Solver_conflicts | Robust.Meter.Expr_nodes) ->
      Solver_budget
  | Exhausted Robust.Meter.Cancelled -> Engine_crash "cancelled"
  | Exhausted _ -> State_budget
  | Injected p -> Engine_crash ("injected:" ^ Robust.Chaos.point_name p)
  | Crashed msg -> Engine_crash msg
  | Degraded rung -> Solver_degraded rung

let retryable = function
  | Exhausted Robust.Meter.Cancelled -> false  (* cancellation is final *)
  | Exhausted _ -> true
  | Degraded _ -> true  (* an escalated budget may decide it cleanly *)
  | Injected _ | Crashed _ -> false

(* deepest ladder rung recorded for a cell: a give-up outranks an
   enumeration outranks a resimplification *)
let rung_depth = function
  | "resimplify" -> 0
  | "enumerate" -> 1
  | _ -> 2 (* give_up *)

let deepest_rung = function
  | [] -> None
  | rungs ->
      Some
        (List.fold_left
           (fun best r -> if rung_depth r > rung_depth best then r else best)
           (List.hd rungs) (List.tl rungs))

(** Supervised version of {!Grade.run_cell}.  With {!default_policy}
    the graded result is exactly what the bare engine produces. *)
let run_cell ?incremental ?ladder ?(policy = default_policy)
    (tool : Profile.tool) (bomb : Bombs.Common.t) : outcome =
  Telemetry.Metrics.incr m_cells;
  let rec attempt n budget =
    (* fresh chaos hit-state per attempt: a retried cell replays the
       same plan deterministically *)
    let chaos = Option.map Robust.Chaos.start policy.chaos in
    let meter = Robust.Meter.create ?chaos budget in
    let fired () = match chaos with Some st -> st.fired | None -> [] in
    match
      Robust.Meter.with_ambient meter (fun () ->
          Grade.run_cell ?incremental ?ladder tool bomb)
    with
    | graded -> (
        match deepest_rung (degraded_rungs graded.diags) with
        | None ->
            { graded; cause = None; stage = None; attempts = n;
              fired = fired () }
        | Some _ when n <= policy.retries ->
            (* the cell only survived through the ladder; a scaled
               budget may decide it without degradation *)
            Telemetry.Metrics.incr m_retries;
            attempt (n + 1) (Robust.Budget.scale policy.backoff budget)
        | Some rung ->
            (* completed, but only thanks to off-budget fallbacks: a
               graded partial success, attributed to the deepest rung *)
            let cause = Degraded rung in
            let stage = stage_of_cause cause in
            Telemetry.Metrics.incr m_cells_p;
            Telemetry.Metrics.incr (List.assoc stage m_stage);
            { graded = { graded with cell = Partial };
              cause = Some cause; stage; attempts = n; fired = fired () })
    | exception e ->
        let cause =
          match e with
          | Robust.Meter.Exhausted { resource; _ } -> Exhausted resource
          | Robust.Chaos.Injected { point; _ } -> Injected point
          | e ->
              Telemetry.Metrics.incr m_crashes;
              Crashed (Printexc.to_string e)
        in
        if retryable cause && n <= policy.retries then begin
          Telemetry.Metrics.incr m_retries;
          attempt (n + 1) (Robust.Budget.scale policy.backoff budget)
        end
        else begin
          let cell = cell_of_cause cause in
          let stage = stage_of_cause cause in
          Telemetry.Metrics.incr
            (if cell = Partial then m_cells_p else m_cells_e);
          Telemetry.Metrics.incr (List.assoc stage m_stage);
          { graded =
              { cell; proposed = None; detonated = false;
                false_positive = false; diags = [ diag_of_cause cause ];
                work = meter.Robust.Meter.vm_steps };
            cause = Some cause; stage; attempts = n; fired = fired () }
        end
  in
  attempt 1 policy.budget

(* ------------------------------------------------------------------ *)
(* Chaos soak                                                          *)
(* ------------------------------------------------------------------ *)

type soak_report = {
  seed : int64;
  plans : int;
  cells_run : int;  (** chaos cells (excluding the two baseline passes) *)
  faults_fired : int;
  degraded_e : int;
  degraded_p : int;
  clean : int;  (** cells whose plan never fired — must match baseline *)
  violations : string list;
  baseline_stable : bool;
      (** the clean baseline re-run after the soak still matches —
          no chaos cell leaked state into a neighbour *)
}

let contained r = r.violations = [] && r.baseline_stable

let default_soak_bombs = [ "time_bomb"; "argvlen_bomb" ]
let default_soak_tools = [ Profile.Bap; Profile.Triton ]

(** Run [plans] seed-derived fault plans over every (tool × bomb)
    cell, checking each injected fault is contained to its cell:
    degraded cells grade [E]/[P] with a recorded cause, untouched
    cells match a clean baseline, and the baseline itself still holds
    after the whole soak. *)
let soak ?incremental ?(tools = default_soak_tools)
    ?(bombs = default_soak_bombs) ~seed ~plans () : soak_report =
  let bombs = List.map Bombs.Catalog.find bombs in
  let pairs =
    List.concat_map (fun t -> List.map (fun b -> (t, b)) bombs) tools
  in
  let run_clean () =
    List.map
      (fun (tool, bomb) ->
         (run_cell ?incremental ~policy:default_policy tool bomb).graded.cell)
      pairs
  in
  let baseline = run_clean () in
  let faults_fired = ref 0 in
  let degraded_e = ref 0 in
  let degraded_p = ref 0 in
  let clean = ref 0 in
  let violations = ref [] in
  let violation plan (tool, (bomb : Bombs.Common.t)) fmt =
    Printf.ksprintf
      (fun msg ->
         violations :=
           Format.asprintf "plan %a · %s × %s: %s" Robust.Chaos.pp_plan plan
             (Profile.name tool) bomb.name msg
           :: !violations)
      fmt
  in
  let cells_run = ref 0 in
  for i = 0 to plans - 1 do
    let plan =
      Robust.Chaos.plan_of_seed (Int64.add seed (Int64.of_int i))
    in
    List.iteri
      (fun j ((tool, bomb) as pair) ->
         incr cells_run;
         let policy = { default_policy with chaos = Some plan } in
         match run_cell ?incremental ~policy tool bomb with
         | exception e ->
             (* the whole point of the supervisor: nothing escapes *)
             violation plan pair "escaped the supervisor: %s"
               (Printexc.to_string e)
         | o ->
             faults_fired := !faults_fired + List.length o.fired;
             let raising =
               List.exists
                 (fun (p, _) -> p <> Robust.Chaos.Cancellation)
                 o.fired
             in
             let symbol = cell_symbol o.graded.cell in
             if raising then (
               match (o.graded.cell, o.cause) with
               | Abnormal, Some (Injected _) -> incr degraded_e
               | _ ->
                   violation plan pair
                     "fault fired but cell graded %s (cause %s)" symbol
                     (match o.cause with
                      | Some c -> cause_name c
                      | None -> "none"))
             else if o.fired <> [] then (
               (* only cancellations fired: either the flag was polled
                  (graded P) or the run finished first (baseline) *)
               match o.graded.cell with
               | Partial when o.cause = Some (Exhausted Robust.Meter.Cancelled)
                 ->
                   incr degraded_p
               | c when c = List.nth baseline j -> incr clean
               | _ ->
                   violation plan pair
                     "cancellation fired but cell graded %s" symbol)
             else if o.graded.cell = List.nth baseline j then incr clean
             else
               violation plan pair
                 "no fault fired yet cell drifted from baseline to %s" symbol)
      pairs
  done;
  let baseline_stable = run_clean () = baseline in
  { seed; plans; cells_run = !cells_run; faults_fired = !faults_fired;
    degraded_e = !degraded_e; degraded_p = !degraded_p; clean = !clean;
    violations = List.rev !violations; baseline_stable }

let render_soak (r : soak_report) =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "chaos soak: seed=0x%Lx plans=%d cells=%d\n" r.seed r.plans r.cells_run;
  pr "  faults fired: %d (graded E: %d, graded P: %d, clean: %d)\n"
    r.faults_fired r.degraded_e r.degraded_p r.clean;
  pr "  baseline stable after soak: %b\n" r.baseline_stable;
  (match r.violations with
   | [] -> pr "  containment: OK — every fault confined to its cell\n"
   | vs ->
       pr "  containment VIOLATIONS (%d):\n" (List.length vs);
       List.iter (fun v -> pr "    - %s\n" v) vs);
  Buffer.contents buf
