(** End-to-end evaluation: run every tool over every bomb, render the
    measured Table II next to the paper's, compute the headline solved
    counts, dataset statistics, Figure 3, and the negative-bomb check. *)

open Concolic.Error

type cell_result = {
  tool : Profile.tool;
  bomb : string;
  measured : cell;
  expected : cell option;
  graded : Grade.graded;
  robust : Supervisor.outcome;
      (** supervision record: cause/stage of a degraded cell, retry
          count, chaos faults fired *)
}

type table2_result = {
  cells : cell_result list;
  solved : (Profile.tool * int) list;
  agreement : int * int;  (** matching cells, total cells with expectations *)
}

(** One supervised cell.  With the default policy (no budgets, no
    chaos) the measured cell is exactly {!Grade.run_cell}'s — the
    supervisor only isolates crashes. *)
let run_cell ?incremental ?ladder ?policy tool (bomb : Bombs.Common.t) :
  cell_result =
  let robust = Supervisor.run_cell ?incremental ?ladder ?policy tool bomb in
  { tool;
    bomb = bomb.name;
    measured = robust.graded.cell;
    expected = Paper.expected bomb.name tool;
    graded = robust.graded;
    robust }

(* ------------------------------------------------------------------ *)
(* Write-ahead cell journal                                            *)
(* ------------------------------------------------------------------ *)

(** Journal-backed execution of Table II (see {!Robust.Journal}).
    [kill_after] simulates a crash: after that many cells have been
    freshly executed (journaled replays do not count), the run raises
    {!Simulated_crash} — with [kill_torn], after first writing a
    deliberately torn record, modelling a death mid-append. *)
type journal = {
  journal_path : string;
  kill_after : int option;
  kill_torn : bool;
}

exception Simulated_crash

let cell_key tool (bomb : Bombs.Common.t) =
  Profile.name tool ^ "/" ^ bomb.name

(** Run fingerprint: any component changing (tool set, bomb catalog
    content, budget/retry/chaos policy, incremental flag, ladder
    shape) makes previously journaled cells stale. *)
let journal_fingerprint ?incremental ?ladder ?policy ~tools ~bombs () =
  let policy = Option.value ~default:Supervisor.default_policy policy in
  let ladder =
    Option.value ~default:Smt.Degrade.default_ladder ladder
  in
  Robust.Journal.fingerprint
    ([ "table2"; Printf.sprintf "incremental=%b"
         (Option.value ~default:true incremental);
       "ladder=" ^ Smt.Degrade.ladder_to_string ladder;
       "budget=" ^ Robust.Budget.to_string policy.Supervisor.budget;
       Printf.sprintf "retries=%d" policy.Supervisor.retries;
       Printf.sprintf "backoff=%g" policy.Supervisor.backoff;
       (match policy.Supervisor.chaos with
        | None -> "chaos=none"
        | Some p -> Format.asprintf "chaos=%a" Robust.Chaos.pp_plan p) ]
     @ List.map Profile.name tools
     @ List.concat_map
         (fun (b : Bombs.Common.t) ->
            [ b.name; b.category; Asm.Image.to_bytes (Bombs.Catalog.image b) ])
         bombs)

(** A {!cell_result} from an already-supervised outcome (journal
    replay, fleet worker payload). *)
let cell_of_outcome tool (bomb : Bombs.Common.t) (o : Supervisor.outcome) =
  { tool;
    bomb = bomb.name;
    measured = o.Supervisor.graded.cell;
    expected = Paper.expected bomb.name tool;
    graded = o.Supervisor.graded;
    robust = o }

(** Fold finished cells into the table: per-tool solved counts and the
    paper-agreement ratio.  Shared by the sequential and fleet paths so
    both render identically. *)
let collate ~tools cells : table2_result =
  let solved =
    List.map
      (fun tool ->
         ( tool,
           List.length
             (List.filter
                (fun c -> c.tool = tool && c.measured = Success)
                cells) ))
      tools
  in
  let matches, total =
    List.fold_left
      (fun (m, t) c ->
         match c.expected with
         | Some e -> ((if equal_cell e c.measured then m + 1 else m), t + 1)
         | None -> (m, t))
      (0, 0) cells
  in
  { cells; solved; agreement = (matches, total) }

(** [run_table2 ?profile ?progress …]: [profile] appends a
    {!Cellprof} sample per freshly-executed cell to that sidecar path;
    [progress] keeps a live cells-done/total line on stderr. *)
let run_table2 ?incremental ?ladder ?policy ?(tools = Profile.all)
    ?(bombs = Bombs.Catalog.table2) ?journal ?profile ?(progress = false) ()
  : table2_result =
  let total = List.length bombs * List.length tools in
  let done_cells = ref 0 in
  let tick key =
    incr done_cells;
    if progress then
      Printf.eprintf "\r[table2] %d/%d %-32s%!" !done_cells total key;
    if progress && !done_cells = total then prerr_newline ()
  in
  (* the profiler wraps the supervised run without touching its
     outcome; disabled, this is exactly the bare [run_cell] *)
  let run_cell_counted tool bomb =
    let key = cell_key tool bomb in
    let r =
      match profile with
      | None -> run_cell ?incremental ?ladder ?policy tool bomb
      | Some path ->
          let o, sample =
            Cellprof.profiled ~phases:true ~key (fun () ->
                Supervisor.run_cell ?incremental ?ladder ?policy tool bomb)
          in
          Cellprof.append ~path sample;
          cell_of_outcome tool bomb o
    in
    tick key;
    r
  in
  let run_journaled (jc : journal) =
    let fp = journal_fingerprint ?incremental ?ladder ?policy ~tools ~bombs () in
    let loaded = Robust.Journal.load ~fingerprint:fp jc.journal_path in
    let replayable : (string, Supervisor.outcome) Hashtbl.t =
      Hashtbl.create 128
    in
    List.iter
      (fun (e : Robust.Journal.entry) ->
         match Journal_codec.decode_outcome e.cell with
         | Some o -> Hashtbl.replace replayable e.key o
         | None ->
             Robust.Journal.count_undecodable ();
             Telemetry.Log.warnf
               "journal: record for %s does not decode; cell will re-run"
               e.key)
      loaded.entries;
    let w =
      Robust.Journal.open_writer ~fingerprint:fp ~seq:loaded.next_seq
        jc.journal_path
    in
    let executed = ref 0 in
    let cells =
      List.concat_map
        (fun bomb ->
           List.map
             (fun tool ->
                let key = cell_key tool bomb in
                match Hashtbl.find_opt replayable key with
                | Some o ->
                    Robust.Journal.count_replayed ();
                    tick key;
                    cell_of_outcome tool bomb o
                | None ->
                    (match jc.kill_after with
                     | Some k when !executed >= k ->
                         (* simulated crash: die before this cell runs,
                            optionally mid-append of its record *)
                         if jc.kill_torn then
                           Robust.Journal.append_torn w ~key;
                         raise Simulated_crash
                     | _ -> ());
                    let r = run_cell_counted tool bomb in
                    Robust.Journal.append w ~key
                      ~payload:(Journal_codec.encode_outcome r.robust);
                    incr executed;
                    r)
             tools)
        bombs
    in
    Robust.Journal.close_writer w;
    cells
  in
  let cells =
    match journal with
    | Some jc -> run_journaled jc
    | None ->
        List.concat_map
          (fun bomb -> List.map (fun tool -> run_cell_counted tool bomb) tools)
          bombs
  in
  collate ~tools cells

(* ------------------------------------------------------------------ *)
(* Figure 3: tainted instructions with and without printf              *)
(* ------------------------------------------------------------------ *)

type fig3_result = {
  noprint_tainted : int;
      (** from the [taint.tainted_insns] telemetry counter *)
  print_tainted : int;
  noprint_branches : int;
  print_branches : int;
  noprint_tainted_direct : int;
      (** the analyzer's own [tainted_count] (must equal the counter
          delta — asserted in the tests) *)
  print_tainted_direct : int;
}

let run_fig3 () =
  (* the headline counts are derived from the telemetry registry (the
     counter delta across the analyze call); the analyzer's direct
     result is kept alongside so the two derivations can be compared *)
  let measure name =
    let bomb = Bombs.Catalog.find name in
    let config = Bombs.Common.config_for bomb "7" in
    let trace = Trace.record ~config (Bombs.Catalog.image bomb) in
    (* argv_region is total but can come back empty (a bomb recorded
       with no argv[1]); degrade to an empty source list with a warning
       instead of aborting the whole figure *)
    let sources =
      match Trace.argv_region trace 1 with
      | Some (addr, len) -> [ (addr, len - 1) ]
      | None ->
          Telemetry.Log.warnf
            "fig3: %s recorded no argv[1] region; taint sources empty" name;
          []
    in
    let before = Telemetry.Metrics.counter_value Taint.metric_tainted_insns in
    let taint = Taint.analyze ~sources trace in
    let tainted =
      Telemetry.Metrics.counter_value Taint.metric_tainted_insns - before
    in
    let branches = List.length taint.tainted_branch in
    (tainted, taint.tainted_count, branches)
  in
  let noprint_tainted, noprint_tainted_direct, noprint_branches =
    measure "fig3_noprint"
  in
  let print_tainted, print_tainted_direct, print_branches =
    measure "fig3_print"
  in
  { noprint_tainted; print_tainted; noprint_branches; print_branches;
    noprint_tainted_direct; print_tainted_direct }

(* ------------------------------------------------------------------ *)
(* Negative bomb (§V-C): Angr claims the impossible path               *)
(* ------------------------------------------------------------------ *)

type negative_result = {
  tool : Profile.tool;
  claimed : bool;        (** engine proposed an input for dead code *)
  detonated : bool;      (** (must stay false) *)
}

let run_negative () =
  let bomb = Bombs.Catalog.find "negative_bomb" in
  List.map
    (fun tool ->
       let graded = Grade.run_cell tool bomb in
       { tool;
         claimed = graded.proposed <> None;
         detonated = graded.detonated })
    [ Profile.Angr_nolib; Profile.Bap ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_table2 (r : table2_result) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %-12s %-12s %-12s %-12s\n" "Bomb" "BAP" "Triton"
       "Angr" "Angr-NoLib");
  let cell_str c =
    let m = cell_symbol c.measured in
    match c.expected with
    | Some e when equal_cell e c.measured -> Printf.sprintf "%s" m
    | Some e -> Printf.sprintf "%s(p:%s)" m (cell_symbol e)
    | None -> m
  in
  let bomb_names =
    List.sort_uniq compare (List.map (fun c -> c.bomb) r.cells)
    |> List.sort (fun a b ->
        let pos n =
          let rec go i = function
            | [] -> max_int
            | (x : Bombs.Common.t) :: rest -> if x.name = n then i else go (i + 1) rest
          in
          go 0 Bombs.Catalog.table2
        in
        compare (pos a) (pos b))
  in
  List.iter
    (fun name ->
       let find tool =
         List.find_opt (fun c -> c.bomb = name && c.tool = tool) r.cells
       in
       let show tool =
         match find tool with Some c -> cell_str c | None -> "-"
       in
       Buffer.add_string buf
         (Printf.sprintf "%-16s %-12s %-12s %-12s %-12s\n" name
            (show Profile.Bap) (show Profile.Triton) (show Profile.Angr)
            (show Profile.Angr_nolib)))
    bomb_names;
  List.iter
    (fun (tool, n) ->
       Buffer.add_string buf
         (Printf.sprintf "%s solved: %d\n" (Profile.name tool) n))
    r.solved;
  let m, t = r.agreement in
  Buffer.add_string buf
    (Printf.sprintf "cell agreement with the paper: %d/%d\n" m t);
  (* degraded-cell attribution, printed only when the supervisor
     actually intervened so the default run stays byte-identical *)
  let degraded =
    List.filter (fun c -> c.robust.Supervisor.cause <> None) r.cells
  in
  if degraded <> [] then begin
    Buffer.add_string buf "degraded cells (supervisor):\n";
    List.iter
      (fun c ->
         match c.robust.Supervisor.cause with
         | None -> ()
         | Some cause ->
           Buffer.add_string buf
             (Printf.sprintf "  %s x %s -> %s: %s%s (attempts: %d)\n" c.bomb
                (Profile.name c.tool) (cell_symbol c.measured)
                (Supervisor.cause_name cause)
                (match c.robust.Supervisor.stage with
                 | Some s -> " at " ^ show_stage s
                 | None -> "")
                c.robust.Supervisor.attempts))
      degraded
  end;
  Buffer.contents buf

let render_table1 () : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-32s %s\n" "Challenge" "Error stages");
  List.iter
    (fun (challenge, stages) ->
       Buffer.add_string buf
         (Printf.sprintf "%-32s %s\n" challenge
            (String.concat " " (List.map show_stage stages))))
    Paper.table1;
  Buffer.contents buf
