(** [eval chaos --serve]: a seeded fault soak of the whole service
    plane, one layer up from {!Supervisor.soak}'s in-cell chaos.

    The logic-bomb benchmarking discipline applied to our own fleet:
    seeded, graded adversarial cases checked against a known-good
    baseline.
    + Baseline: every request's cell is run in-process through the
      {e identical} worker codepath ({!Service.worker_run}) with no
      faults, and its outcome journaled in submit order.
    + Attack: the same requests go to a live [eval serve] daemon whose
      IPC layer runs under seeded chaos — corrupted dispatch frames,
      corrupted/dropped/delayed replies, workers wedged past the
      watchdog, client connections reset mid-reply — and which is
      SIGKILLed once mid-stream and warm-restarted from its durable
      queue journal, with every request resubmitted under its original
      idempotency key.
    + Containment: every request must be graded exactly once (exactly
      one journaled outcome per key across the whole queue journal),
      and the merged outcome journal must be byte-identical to the
      fault-free baseline.  A soak where no fault fired is vacuous and
      also fails.

    Exactly-once holds in outcome space because cells are pure
    functions of (tool, bomb, policy) and the soak submits with the
    default unlimited budget — so a re-dispatched attempt's escalated
    budget (a scale of unlimited is unlimited) cannot change the
    grade. *)

type report = {
  sk_requests : int;
  sk_kills : int;  (** daemon SIGKILLs injected (always 1) *)
  sk_answered : int;
  sk_failed : int;  (** error/expired past the client's retry budget *)
  sk_unanswered : int;
  sk_sessions : int;  (** client connections across both phases *)
  sk_faults : (string * int) list;  (** injected-fault counters fired *)
  sk_exactly_once : bool;
  sk_byte_identical : bool;
  sk_baseline : string;
  sk_merged : string;
  sk_wall : float;
}

let ok r =
  r.sk_exactly_once && r.sk_byte_identical && r.sk_failed = 0
  && r.sk_unanswered = 0
  && List.fold_left (fun a (_, n) -> a + n) 0 r.sk_faults > 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rm path = try Sys.remove path with Sys_error _ -> ()

(* fault counters out of the daemon's aggregated metrics response:
   everything chaos fired, plus the recovery machinery it exercised *)
let scrape_faults ~socket =
  let open Telemetry.Trace_check in
  match Service.metrics ~socket () with
  | None -> []
  | Some line -> (
      match
        Option.bind
          (Option.bind (parse_opt line) (member "metrics"))
          (member "c")
      with
      | Some (Obj counters) ->
          List.filter_map
            (fun (name, v) ->
               let interesting =
                 String.length name >= 21
                 && String.sub name 0 21 = "robust.fleet_injected"
               in
               match v with
               | Num n when interesting -> Some (name, int_of_float n)
               | _ -> None)
            counters
      | _ -> [])

(* merge scrapes from before the kill and before the drain: the first
   daemon's counters die with it, so both instances contribute *)
let merge_faults a b =
  let keys =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.filter_map
    (fun k ->
       let get l = Option.value ~default:0 (List.assoc_opt k l) in
       let n = get a + get b in
       if n > 0 then Some (k, n) else None)
    keys

let fork_daemon ~socket ~queue_journal ~workers ~seed ~rate () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      (* the daemon's transcript (chaos warnings, recovery lines) goes
         to stderr; the soak's verdict is the parent's alone *)
      match
        (* a short watchdog keeps stall/drop recovery cheap: chaos
           wedges a worker for 2.5x this, the watchdog reclaims it
           after 1x *)
        Service.serve ~workers ~queue_journal ~task_timeout:1.0 ~respawns:6
          ~breaker:8 ~chaos_seed:seed ~chaos_rate:rate ~socket ()
      with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let await_daemon ~socket =
  let rec go tries =
    if tries = 0 then failwith "serve soak: daemon never became ready"
    else
      match Service.ping ~socket () with
      | Some _ -> ()
      | None ->
          ignore (Unix.select [] [] [] 0.05);
          go (tries - 1)
  in
  go 400

(** Run the soak: [plans] requests cycling over [tools]x[bombs], under
    seeded IPC chaos at [rate], with one daemon SIGKILL+warm-restart
    at roughly the half-way point.  Artifacts (baseline, queue and
    merged journals, socket) live under the [prefix] path stem. *)
let run ?(prefix = "serve_soak") ?(plans = 30) ?(seed = 0xC0FFEEL)
    ?(rate = 0.05) ?(workers = 2)
    ?(tools = Supervisor.default_soak_tools)
    ?(bombs = Supervisor.default_soak_bombs) () : report =
  let t0 = Unix.gettimeofday () in
  let socket = prefix ^ ".sock" in
  let queue_journal = prefix ^ "_queue.jsonl" in
  let baseline_path = prefix ^ "_baseline.jsonl" in
  let merged_path = prefix ^ "_merged.jsonl" in
  List.iter rm [ socket; queue_journal; baseline_path; merged_path ];
  let fp = Service.queue_fingerprint () in
  let pairs =
    List.concat_map (fun t -> List.map (fun b -> (t, b)) bombs) tools
  in
  let npairs = List.length pairs in
  if npairs = 0 then invalid_arg "serve soak: empty tool/bomb grid";
  let requests =
    List.init plans (fun i ->
        let tool, bomb = List.nth pairs (i mod npairs) in
        let id = Printf.sprintf "c%03d/%s/%s" i (Profile.name tool) bomb in
        (id, Service.encode_request ~id ~tool ~bomb ()))
  in
  (* fault-free baseline through the identical worker codepath; cells
     are deterministic, so each distinct (tool, bomb) runs once *)
  let cell_cache = Hashtbl.create 8 in
  let bw = Robust.Journal.open_writer ~fingerprint:fp baseline_path in
  List.iter
    (fun (id, line) ->
       let outcome =
         match Hashtbl.find_opt cell_cache line with
         | Some o -> o
         | None ->
             let resp = Service.worker_run ~attempt:1 ~key:id line in
             let o =
               match Service.outcome_raw_of_response resp with
               | Some o -> o
               | None ->
                   failwith ("serve soak: baseline cell failed: " ^ resp)
             in
             Hashtbl.replace cell_cache line o;
             o
       in
       Robust.Journal.append bw ~key:id ~payload:outcome)
    requests;
  Robust.Journal.close_writer bw;
  (* phase A: live daemon under chaos, submit until the kill point *)
  let pid = fork_daemon ~socket ~queue_journal ~workers ~seed ~rate () in
  await_daemon ~socket;
  let kill_at = max 1 (plans / 2) in
  let finals = ref 0 in
  let count_finals line =
    if Service.status_of_line line = Some "done" then incr finals
  in
  let a =
    Service.submit_resilient ~socket ~sessions:4 ~on_line:count_finals
      ~should_abort:(fun () -> !finals >= kill_at)
      requests
  in
  let faults_a = try scrape_faults ~socket with _ -> [] in
  (* mid-stream daemon crash: SIGKILL, no goodbye — the queue journal
     is all that survives *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  rm socket (* the crashed daemon left a stale socket behind *)
  ;
  (* phase B: warm restart off the journal, resubmit everything under
     the original idempotency keys *)
  let pid2 = fork_daemon ~socket ~queue_journal ~workers ~seed ~rate () in
  await_daemon ~socket;
  let b =
    Service.submit_resilient ~socket ~sessions:10 ~retry_failures:6 requests
  in
  let faults_b = try scrape_faults ~socket with _ -> [] in
  (try Service.drain ~socket () with _ -> ());
  ignore (Unix.waitpid [] pid2);
  (* containment audit over the full (non-deduped) journal history *)
  let l = Robust.Journal.load ~dedup:false ~fingerprint:fp queue_journal in
  let dones = Hashtbl.create 64 in
  List.iter
    (fun (e : Robust.Journal.entry) ->
       let field name =
         match Telemetry.Trace_check.member name e.cell with
         | Some (Telemetry.Trace_check.Str s) -> Some s
         | _ -> None
       in
       match (field "phase", field "resp") with
       | Some "done", Some resp ->
           Hashtbl.replace dones e.key (resp :: Option.value ~default:[]
                                          (Hashtbl.find_opt dones e.key))
       | _ -> ())
    l.entries;
  let exactly_once =
    List.for_all
      (fun (id, _) ->
         match Hashtbl.find_opt dones id with
         | Some [ _ ] -> true
         | _ -> false)
      requests
  in
  (* merged journal: each key's journaled outcome, in submit order *)
  let mw = Robust.Journal.open_writer ~fingerprint:fp merged_path in
  List.iter
    (fun (id, _) ->
       match Hashtbl.find_opt dones id with
       | Some (resp :: _) -> (
           match Service.outcome_raw_of_response resp with
           | Some o -> Robust.Journal.append mw ~key:id ~payload:o
           | None -> ())
       | _ -> ())
    requests;
  Robust.Journal.close_writer mw;
  let byte_identical =
    String.equal (read_file baseline_path) (read_file merged_path)
  in
  { sk_requests = plans;
    sk_kills = 1;
    (* phase B resubmits every request, so its answers cover phase
       A's: counting both would double-count the pre-kill finals *)
    sk_answered = b.Service.sr_answered;
    sk_failed = b.Service.sr_failed;
    sk_unanswered = b.Service.sr_unanswered;
    sk_sessions = a.Service.sr_sessions + b.Service.sr_sessions;
    (* the SIGKILL is itself an injected fault — the headline one —
       so a soak that killed the daemon is never vacuous even when
       the seeded IPC streams happened not to fire *)
    sk_faults =
      ("daemon_sigkill", 1) :: merge_faults faults_a faults_b;
    sk_exactly_once = exactly_once;
    sk_byte_identical = byte_identical;
    sk_baseline = baseline_path;
    sk_merged = merged_path;
    sk_wall = Unix.gettimeofday () -. t0 }

let render (r : report) : string =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "serve chaos soak: %d request(s), %d daemon kill(s), %.1fs"
    r.sk_requests r.sk_kills r.sk_wall;
  line "  client: %d answered, %d failed, %d unanswered, %d session(s)"
    r.sk_answered r.sk_failed r.sk_unanswered r.sk_sessions;
  if r.sk_faults = [] then line "  faults injected: none (vacuous soak)"
  else
    List.iter
      (fun (name, n) -> line "  faults injected: %s = %d" name n)
      r.sk_faults;
  line "  exactly-once grading: %s"
    (if r.sk_exactly_once then "OK" else "VIOLATED");
  line "  merged journal vs fault-free baseline: %s"
    (if r.sk_byte_identical then "byte-identical"
     else Printf.sprintf "DIVERGED (%s vs %s)" r.sk_merged r.sk_baseline);
  line "  verdict: %s" (if ok r then "CONTAINED" else "FAILED");
  Buffer.contents buf
