(** [eval chaos --disk]: a seeded storage-fault soak, one layer below
    {!Serve_soak}'s IPC chaos — the faults live under the bytes of
    the artifacts themselves.

    + Baseline: a fault-free journaled sequential run of a small
      (tool × bomb) grid — its rendered table and journal bytes are
      the ground truth.
    + Attack: [plans] journaled runs of the same grid through the
      fleet path (per-worker journal shards, canonical merge), each
      under rate-based disk faults from a fresh seed: ENOSPC, short
      writes, failed renames, bit flips, lying fsyncs — injected at
      every {!Robust.Diskio} append, sync and rename, in the master
      and in the forked workers (which inherit the hook).  A run that
      crashes outright is allowed; what it leaves on disk is not
      allowed to stay wrong.
    + Recovery: faults off, [fsck --repair] over the surviving
      journal and shards (drop corrupt records, truncate torn tails,
      clear stale tmps), then a sequential resume re-runs whatever
      the repaired journal no longer carries, and a canonical merge
      rewrites the journal in grid order.
    + Containment: every plan's recovered table and canonical journal
      must be byte-identical to the fault-free baseline; every fault
      the seeded state fired must be accounted in the
      [robust.disk_injected.*] counters; a soak where no fault fired
      is vacuous and fails. *)

type report = {
  dk_plans : int;
  dk_cells : int;  (** grid size per plan *)
  dk_workers : int;
  dk_crashed_runs : int;  (** chaos runs that raised (allowed) *)
  dk_damaged_files : int;  (** artifacts fsck found damaged *)
  dk_repaired_files : int;  (** artifacts fsck repaired *)
  dk_shed : int;  (** [journal.shed] delta (ENOSPC degradation) *)
  dk_faults : (string * int) list;
      (** [robust.disk_injected.*] deltas over the whole soak *)
  dk_accounted : bool;
      (** every master-side fired count is covered by the metrics *)
  dk_divergent : int;  (** plans whose recovered state diverged *)
  dk_baseline : string;
  dk_wall : float;
}

let ok r =
  r.dk_divergent = 0 && r.dk_accounted
  && List.fold_left (fun a (_, n) -> a + n) 0 r.dk_faults > 0

let rm path = try Sys.remove path with Sys_error _ -> ()

let no_kill path =
  { Eval.journal_path = path; kill_after = None; kill_torn = false }

(** Run the soak.  [rate] is the per-probe Bernoulli fault rate;
    [workers] > 1 routes the chaos phase through the fleet
    (per-worker shards + merge), 1 keeps it sequential. *)
let run ?(prefix = "disk_soak") ?(plans = 30) ?(seed = 0xD15CL)
    ?(rate = 0.02) ?(workers = 2)
    ?(tools = Supervisor.default_soak_tools)
    ?(bombs = Supervisor.default_soak_bombs) () : report =
  let t0 = Unix.gettimeofday () in
  let bombs = List.map Bombs.Catalog.find bombs in
  let order =
    List.concat_map
      (fun bomb -> List.map (fun tool -> Eval.cell_key tool bomb) tools)
      bombs
  in
  let fp = Eval.journal_fingerprint ~tools ~bombs () in
  let baseline_path = prefix ^ "_baseline.jsonl" in
  let chaos_path = prefix ^ "_chaos.jsonl" in
  let chaos_shards () =
    Fleet.Pool.worker_journal_paths ~path:chaos_path ~workers:256
  in
  let clear_chaos () =
    rm chaos_path;
    rm (chaos_path ^ ".tmp");
    List.iter rm (chaos_shards ())
  in
  (* --- fault-free baseline: sequential journaled run --- *)
  rm baseline_path;
  let table_base =
    Eval.render_table2
      (Eval.run_table2 ~tools ~bombs ~journal:(no_kill baseline_path) ())
  in
  let bytes_base = Robust.Diskio.read_all baseline_path in
  (* metric deltas over the whole soak *)
  let fault_counters =
    List.map
      (fun p -> "robust.disk_injected." ^ Robust.Chaos.disk_point_name p)
      Robust.Chaos.all_disk_points
  in
  let before = List.map Telemetry.Metrics.counter_value fault_counters in
  let shed_before = Telemetry.Metrics.counter_value "journal.shed" in
  let crashed = ref 0 and divergent = ref 0 in
  let damaged_files = ref 0 and repaired_files = ref 0 in
  (* master-side fired counts, accumulated across plans (with workers
     the forked side fires more; metrics cover those via snapshot
     piggyback, so the accounting check is a ≥, exact for workers=1) *)
  let fired_master = Hashtbl.create 8 in
  for i = 0 to plans - 1 do
    clear_chaos ();
    let st =
      Robust.Chaos.disk_state
        ~seed:(Int64.add seed (Int64.of_int i))
        (Robust.Chaos.Disk_rate
           { rate; points = Robust.Chaos.all_disk_points })
    in
    (* --- chaos phase: journaled grid under disk faults --- *)
    Robust.Diskio.set_fault_hook (Some (Robust.Chaos.disk_hook st));
    (try
       if workers > 1 then
         ignore
           (Parallel.run_table2 ~tools ~bombs ~journal_path:chaos_path
              ~workers ~snapshots:true ()
             : Eval.table2_result)
       else
         ignore
           (Eval.run_table2 ~tools ~bombs ~journal:(no_kill chaos_path) ()
             : Eval.table2_result)
     with _ -> incr crashed);
    Robust.Diskio.set_fault_hook None;
    List.iter
      (fun (p, n) ->
         let name = Robust.Chaos.disk_point_name p in
         Hashtbl.replace fired_master name
           (n + Option.value ~default:0 (Hashtbl.find_opt fired_master name)))
      (Robust.Chaos.disk_fired st);
    (* --- recovery phase: fsck --repair, resume, canonical merge --- *)
    let targets =
      (if Sys.file_exists chaos_path then [ chaos_path ] else [])
      @ (if Sys.file_exists (chaos_path ^ ".tmp") then
           [ chaos_path ^ ".tmp" ]
         else [])
      @ chaos_shards ()
    in
    let reports = Fsck.scan ~repair:true targets in
    List.iter
      (fun (r : Fsck.report) ->
         if Fsck.has_damage r then incr damaged_files;
         if r.Fsck.r_repaired then incr repaired_files)
      reports;
    let table =
      Eval.render_table2
        (Eval.run_table2 ~tools ~bombs ~journal:(no_kill chaos_path) ())
    in
    ignore
      (Fleet.Merge.run ~fingerprint:fp ~order
         ~sources:(chaos_path :: chaos_shards ())
         ~out:chaos_path ()
        : Fleet.Merge.report);
    List.iter rm (chaos_shards ());
    let bytes = Robust.Diskio.read_all chaos_path in
    if not (String.equal table table_base && String.equal bytes bytes_base)
    then begin
      incr divergent;
      Telemetry.Log.warnf
        "disk soak: plan %d diverged from baseline after repair+resume \
         (table %s, journal %s)"
        i
        (if String.equal table table_base then "ok" else "DIFFERS")
        (if String.equal bytes bytes_base then "ok" else "DIFFERS")
    end
  done;
  clear_chaos ();
  let after = List.map Telemetry.Metrics.counter_value fault_counters in
  let deltas =
    List.map2 (fun name (b, a) -> (name, a - b)) fault_counters
      (List.combine before after)
  in
  let accounted =
    List.for_all
      (fun (name, d) ->
         d >= Option.value ~default:0 (Hashtbl.find_opt fired_master name))
      deltas
  in
  { dk_plans = plans;
    dk_cells = List.length order;
    dk_workers = workers;
    dk_crashed_runs = !crashed;
    dk_damaged_files = !damaged_files;
    dk_repaired_files = !repaired_files;
    dk_shed = Telemetry.Metrics.counter_value "journal.shed" - shed_before;
    dk_faults = List.filter (fun (_, n) -> n > 0) deltas;
    dk_accounted = accounted;
    dk_divergent = !divergent;
    dk_baseline = baseline_path;
    dk_wall = Unix.gettimeofday () -. t0 }

let render (r : report) : string =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "disk chaos soak: %d plan(s) x %d cell(s), %d worker(s), %.1fs"
    r.dk_plans r.dk_cells r.dk_workers r.dk_wall;
  line "  chaos runs crashed: %d (allowed; their artifacts must still \
        recover)"
    r.dk_crashed_runs;
  line "  fsck: %d damaged artifact(s), %d repaired" r.dk_damaged_files
    r.dk_repaired_files;
  if r.dk_shed > 0 then
    line "  journal.shed: %d record(s) shed under ENOSPC" r.dk_shed;
  if r.dk_faults = [] then line "  faults injected: none (vacuous soak)"
  else
    List.iter
      (fun (name, n) -> line "  faults injected: %s = %d" name n)
      r.dk_faults;
  line "  fault accounting (robust.disk_injected.*): %s"
    (if r.dk_accounted then "OK" else "MISSING FIRES");
  line "  recovered table+journal vs fault-free baseline: %s"
    (if r.dk_divergent = 0 then "byte-identical"
     else Printf.sprintf "%d plan(s) DIVERGED" r.dk_divergent);
  line "  verdict: %s" (if ok r then "CONTAINED" else "FAILED");
  Buffer.contents buf
