(** Grading and cell derivation.

    A proposed input is replayed on the concrete machine in the bomb's
    *neutral* environment; only a detonation counts.  The Table II
    cell is then derived from the grading outcome plus the engine's
    diagnostics using the paper's stage ordering — an error in an
    early stage shadows later ones (§IV-A). *)

open Concolic.Error

type graded = {
  cell : cell;
  proposed : string option;
  detonated : bool;
  false_positive : bool;
      (** engine claimed a dead bomb (the negative-bomb effect) *)
  diags : diag list;
  work : int;
}

let run_proposed (bomb : Bombs.Common.t) input =
  let config = Bombs.Common.config_for ~winning:false bomb input in
  Vm.Machine.run_image ~config (Bombs.Catalog.image bomb)

let has_concretized diags =
  List.exists
    (function Concretized_load _ -> true | _ -> false)
    diags

let has_taint_loss diags =
  List.exists (equal_diag Taint_lost_in_kernel) diags

let has_sym_jump diags = List.exists (equal_diag Symbolic_jump_target) diags

let has_signal diags = List.exists (equal_diag Signal_in_trace) diags

let has_fp diags = List.exists (equal_diag Fp_constraint) diags

let has_budget diags = List.exists (equal_diag Solver_budget) diags

let has_unconstrained_input diags =
  List.exists
    (function
      | Unconstrained_input _ | Unconstrained_external _
      | Unsupported_syscall _ | Symbolic_syscall_number -> true
      | _ -> false)
    diags

(** Stage attribution for a failed attempt, earliest stage first. *)
let failed_stage (a : Profile.attempt) ~graded_failed : cell =
  let d = a.diags in
  let quiet =
    (not (has_lift_failure d)) && (not (has_signal d))
    && (not (has_taint_loss d)) && not (has_unconstrained_input d)
  in
  if graded_failed then
    (* the tool believed in its input *)
    if has_lift_failure d then Fail Es1
    else if a.symbolic_branches = 0 && quiet then Fail Es0
    else if has_unconstrained_syscall d then Partial
    else if has_concretized d then Fail Es3
    else if has_sym_jump d && a.trace_based then
      (* Pin-class tools have no constraint-extraction mechanism for
         computed jumps at all (paper §V-C) *)
      Fail Es3
    else Fail Es2
  else if has_crash d then Abnormal
  else if has_lift_failure d || has_signal d then Fail Es1
  else if a.symbolic_branches = 0 && quiet then
    (* the input never became symbolic anywhere relevant *)
    Fail Es0
  else if has_taint_loss d then Fail Es2
  else if has_concretized d || has_sym_jump d || has_fp d then Fail Es3
  else if a.budget_exhausted || has_budget d then Abnormal
  else Fail Es2

let grade (bomb : Bombs.Common.t) (a : Profile.attempt) : graded =
  let dead = bomb.trigger = None in
  match a.proposed with
  | Some input -> (
      let res = run_proposed bomb input in
      let detonated = Bombs.Common.triggered res in
      if detonated && not dead then
        { cell = Success; proposed = a.proposed; detonated = true;
          false_positive = false; diags = a.diags; work = a.work }
      else if dead then
        (* claiming any input for a dead bomb is a false positive *)
        { cell = Partial; proposed = a.proposed; detonated;
          false_positive = true; diags = a.diags; work = a.work }
      else
        { cell = failed_stage a ~graded_failed:true;
          proposed = a.proposed; detonated = false; false_positive = false;
          diags = a.diags; work = a.work })
  | None ->
    if a.crashed then
      { cell = Abnormal; proposed = None; detonated = false;
        false_positive = false; diags = a.diags; work = a.work }
    else
      { cell = failed_stage a ~graded_failed:false;
        proposed = None; detonated = false; false_positive = false;
        diags = a.diags; work = a.work }

let m_cell_wall = Telemetry.Metrics.histogram "eval.cell_wall_us"

(** Run one tool on one bomb, end to end.  [incremental] selects
    between session-based and one-shot solving in the engine; the
    derived cell must not depend on it. *)
let run_cell ?incremental ?ladder (tool : Profile.tool)
    (bomb : Bombs.Common.t) : graded =
  Telemetry.with_span "cell" @@ fun () ->
  Telemetry.annotate "tool" (Profile.name tool);
  Telemetry.annotate "bomb" bomb.name;
  let t0 = Telemetry.clock_us () in
  let image = Bombs.Catalog.image bomb in
  let run_config input =
    Bombs.Common.config_for ~winning:false bomb input
  in
  let detonated res = Bombs.Common.triggered res in
  let attempt =
    match tool with
    | Profile.Bap ->
      (* driven from the triggering input (the paper's methodology) *)
      let seed = Bombs.Common.winning_argv bomb in
      Profile.run_bap ?incremental ?ladder ~image ~run_config ~seed ()
    | Profile.Triton ->
      Profile.run_triton ?incremental ?ladder ~image ~run_config ~detonated
        ~seed:bomb.decoy ()
    | Profile.Angr ->
      Profile.run_angr ?incremental ?ladder ~mode:Concolic.Dse.With_libs
        ~image ()
    | Profile.Angr_nolib ->
      Profile.run_angr ?incremental ?ladder ~mode:Concolic.Dse.No_libs
        ~image ()
  in
  let g = grade bomb attempt in
  Telemetry.Metrics.observe m_cell_wall
    (int_of_float (Telemetry.clock_us () -. t0));
  Telemetry.annotate "cell" (cell_symbol g.cell);
  g
