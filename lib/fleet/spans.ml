(** Per-worker span shipping: workers append their finished spans to
    JSONL shard files, and the master stitches every shard into one
    Chrome [trace_event] timeline whose [pid] is the worker slot — a
    whole fleet run loads into [about:tracing] / Perfetto as one
    flamegraph with a lane per worker.

    Shards are append-only and flushed after every task, so a
    SIGKILLed worker's completed spans survive it; the merger emits
    ["ph":"X"] complete events (start + duration), which need no B/E
    pairing discipline across processes.  Span timestamps come from
    [Unix.gettimeofday], so lanes from different workers share one
    wall-clock axis. *)

let shard_path ~base slot = Printf.sprintf "%s.spans.w%d.jsonl" base slot

(* leftover shards can outlive the pool geometry that wrote them, so
   scan a generous slot range (same discipline as the journal shards) *)
let existing_shards ~base : (int * string) list =
  List.filter_map
    (fun slot ->
       let p = shard_path ~base slot in
       if Sys.file_exists p then Some (slot, p) else None)
    (List.init 256 Fun.id)

let remove_shards ~base =
  List.iter (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
    (existing_shards ~base)

(** Worker side: append every finished span to this slot's shard and
    drop them from memory, so a long worker's span buffer stays
    bounded at one task's worth. *)
let flush_shard ~base ~slot =
  (match Telemetry.finished_spans () with
   | [] -> ()
   | spans -> (
       try
         let h = Robust.Diskio.open_append (shard_path ~base slot) in
         List.iter
           (fun s -> Robust.Diskio.append h (Telemetry.span_jsonl s ^ "\n"))
           spans;
         Robust.Diskio.close h
       with Robust.Diskio.Full _ ->
         (* spans are observability, not results: shed this batch *)
         ()));
  Telemetry.reset ()

(* ------------------------------------------------------------------ *)
(* Merger                                                              *)
(* ------------------------------------------------------------------ *)

type merge_report = {
  mr_shards : int;
  mr_spans : int;
  mr_skipped : int;  (** undecodable shard lines (torn tails) *)
}

let esc = Robust.Journal.json_escape

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(** Stitch every shard under [base] into one Chrome trace at [out]:
    each span becomes an ["X"] complete event with [pid] = worker
    slot, plus a [process_name] metadata event naming the lane.
    Undecodable lines (a shard's torn tail after a SIGKILL) are
    skipped and counted, never fatal.  Shards are removed after a
    successful merge. *)
let merge_chrome ~base ~out () : merge_report =
  let open Telemetry.Trace_check in
  let shards = existing_shards ~base in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let emit ev =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf ev
  in
  let spans = ref 0 and skipped = ref 0 in
  List.iter
    (fun (slot, path) ->
       emit
         (Printf.sprintf
            "{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0.0, \
             \"pid\": %d, \"tid\": 1, \"args\": {\"name\": \"worker %d\"}}"
            slot slot);
       List.iter
         (fun line ->
            if String.trim line <> "" then
              let decoded =
                match parse_opt line with
                | None -> None
                | Some j -> (
                    match
                      (member "name" j, member "ts_us" j, member "dur_us" j)
                    with
                    | Some (Str name), Some (Num ts), Some (Num dur) ->
                        Some (name, ts, dur, member "args" j)
                    | _ -> None)
              in
              match decoded with
              | None -> incr skipped
              | Some (name, ts, dur, args) ->
                  incr spans;
                  let args_json =
                    match args with
                    | Some (Obj fields) when fields <> [] ->
                        Printf.sprintf ", \"args\": {%s}"
                          (String.concat ", "
                             (List.filter_map
                                (fun (k, v) ->
                                   match v with
                                   | Str s ->
                                       Some
                                         (Printf.sprintf "\"%s\": \"%s\""
                                            (esc k) (esc s))
                                   | _ -> None)
                                fields))
                    | _ -> ""
                  in
                  emit
                    (Printf.sprintf
                       "{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.1f, \
                        \"dur\": %.1f, \"pid\": %d, \"tid\": 1%s}"
                       (esc name) ts dur slot args_json))
         (read_lines path))
    shards;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Robust.Diskio.write_atomic ~path:out (Buffer.contents buf);
  remove_shards ~base;
  { mr_shards = List.length shards; mr_spans = !spans;
    mr_skipped = !skipped }
