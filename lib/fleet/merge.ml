(** Fold per-worker write-ahead journals into one canonical journal.

    Each fleet worker journals its finished cells independently
    ([<path>.w<slot>]), so after a run — or a crash — the results of a
    grid live scattered across files, possibly with torn tails from a
    killed worker and duplicate keys from re-dispatched cells.  The
    merge loads every source through {!Robust.Journal.load} (which
    already heals torn tails and skips corrupt/stale lines), resolves
    duplicates last-source/last-record-wins per key, and rewrites one
    canonical journal: records in the caller's canonical [order] with
    sequence numbers 0..n-1 — byte-identical to the journal a
    sequential run would have produced for the same cells. *)

let m_merged = Telemetry.Metrics.counter "fleet.merge.records"
let m_sources = Telemetry.Metrics.counter "fleet.merge.sources"
let m_orphans = Telemetry.Metrics.counter "fleet.merge.orphans"

type report = {
  written : int;  (** records in the merged journal *)
  sources_read : int;
  damaged : int;  (** corrupt + truncated lines healed over, all sources *)
  orphans : int;  (** keys found in sources but absent from [order] *)
}

(** [run ~fingerprint ~order ~sources ~out ()] merges [sources]
    (read in order; later sources override earlier ones on key
    collision) into [out], keeping only keys listed in [order] and
    writing them in that order.  [out] may itself be listed as a
    source; it is read before being atomically replaced (write to
    [out ^ ".tmp"], then rename). *)
let run ~fingerprint ~(order : string list) ~(sources : string list)
    ~(out : string) () : report =
  let by_key : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let damaged = ref 0 in
  let sources_read = ref 0 in
  List.iter
    (fun path ->
       if Sys.file_exists path then begin
         incr sources_read;
         Telemetry.Metrics.incr m_sources;
         let l = Robust.Journal.load ~fingerprint path in
         damaged := !damaged + l.corrupt + l.truncated;
         (* load already resolved last-wins within the file; across
            files, later sources override *)
         List.iter
           (fun (e : Robust.Journal.entry) ->
              Hashtbl.replace by_key e.key e.raw)
           l.entries
       end)
    sources;
  let tmp = out ^ ".tmp" in
  (* the journal writer appends; a stale tmp from an interrupted merge
     must not leak records into this one *)
  if Sys.file_exists tmp then Sys.remove tmp;
  let w = Robust.Journal.open_writer ~fingerprint tmp in
  let written = ref 0 in
  List.iter
    (fun key ->
       match Hashtbl.find_opt by_key key with
       | Some raw ->
           Robust.Journal.append w ~key ~payload:raw;
           Hashtbl.remove by_key key;
           incr written;
           Telemetry.Metrics.incr m_merged
       | None -> ())
    order;
  Robust.Journal.close_writer w;
  let orphans = Hashtbl.length by_key in
  if orphans > 0 then begin
    Telemetry.Log.warnf
      "fleet merge: %d journaled key(s) not in the canonical order; dropped"
      orphans;
    for _ = 1 to orphans do
      Telemetry.Metrics.incr m_orphans
    done
  end;
  Robust.Diskio.rename ~src:tmp ~dst:out;
  { written = !written; sources_read = !sources_read; damaged = !damaged;
    orphans }
