(** Fork-based worker-pool scheduler: shard independent analysis
    tasks across N worker processes over pipes.

    The master holds one shared FIFO queue; an idle worker steals the
    next task the moment it finishes its previous one (pull-based
    work-stealing — one task in flight per worker, so an unlucky
    worker stuck on a heavy cell never strands queued work behind it).
    Workers are forked up front and inherit the task-runner closure,
    so only task {e strings} and result {e payloads} cross the pipes,
    line-framed.

    Durability: with {!config.journal} set, each worker appends every
    completed (key, payload) to its own write-ahead journal
    ([<path>.w<slot>], same checksummed format and fingerprint
    discipline as {!Robust.Journal}) {e before} replying, so a master
    crash loses no finished cell; {!Merge} folds the per-worker
    journals back into one canonical journal.

    Liveness: every worker message doubles as a heartbeat.  A worker
    that dies (EOF on its pipe) or blows the per-task wall watchdog is
    reaped and respawned into the same slot, and its in-flight task is
    re-dispatched — with the attempt number bumped so the caller's
    retry/backoff policy can escalate — up to [respawns] extra times
    before the task is failed.  Cancellation is cooperative: SIGINT
    (via {!install_sigint}) or {!cancel} stops dispatch, lets
    in-flight cells finish, and reports still-queued tasks as
    [Cancelled]. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_dispatched = Telemetry.Metrics.counter "fleet.dispatched"
let m_completed = Telemetry.Metrics.counter "fleet.completed"
let m_raised = Telemetry.Metrics.counter "fleet.task_raised"
let m_deaths = Telemetry.Metrics.counter "fleet.worker_deaths"
let m_respawns = Telemetry.Metrics.counter "fleet.respawns"
let m_redispatched = Telemetry.Metrics.counter "fleet.redispatched"
let m_failed = Telemetry.Metrics.counter "fleet.tasks_failed"
let m_cancelled = Telemetry.Metrics.counter "fleet.tasks_cancelled"
let m_timeouts = Telemetry.Metrics.counter "fleet.watchdog_kills"
let m_nacked = Telemetry.Metrics.counter "fleet.frames_nacked"
let m_bad_frames = Telemetry.Metrics.counter "fleet.frames_corrupt"
let m_expired = Telemetry.Metrics.counter "fleet.tasks_expired"
let m_quarantined = Telemetry.Metrics.counter "fleet.slots_quarantined"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type journal_config = {
  j_path : string;
      (** base path; worker [slot] journals to [j_path ^ ".w<slot>"] *)
  j_fingerprint : string;
}

type config = {
  workers : int;
  respawns : int;
      (** extra dispatches a task gets after killing its worker *)
  task_timeout : float option;
      (** wall seconds a dispatched task may run before its worker is
          killed and the task re-dispatched (liveness watchdog) *)
  journal : journal_config option;
  at_fork : (unit -> unit) option;
      (** run in the child right after [fork] — lets an embedding
          daemon close its listening/client sockets in workers *)
  snapshots : bool;
      (** workers piggyback a registry-delta snapshot (relative to the
          registry they inherited at fork) on every reply and
          final-flush one on shutdown; the master folds them per slot
          — surviving worker death and SIGKILL re-dispatch — for
          {!metrics_snapshot} / {!publish_metrics}.  Off by default:
          the disabled path adds nothing to the per-task protocol. *)
  spans : string option;
      (** base path for per-worker span shards: when set, workers run
          with span tracing enabled and append finished spans to
          [<base>.spans.w<slot>.jsonl] after every task
          (see {!Spans}) *)
  breaker : int option;
      (** circuit breaker: a slot whose worker dies this many times in
          a row (without one verified reply in between) is quarantined
          — no further respawns — instead of burning respawn cycles on
          a poisoned environment forever *)
  chaos : Robust.Chaos.fleet_state option;
      (** seeded IPC fault injection (master side): corrupt dispatch
          and reply frames, drop or delay replies, wedge workers past
          the watchdog.  [None] (the default) costs nothing. *)
}

let default_config =
  { workers = 2; respawns = 1; task_timeout = None; journal = None;
    at_fork = None; snapshots = false; spans = None; breaker = None;
    chaos = None }

type failure =
  | Worker_lost of int  (** workers died running it; the attempt count *)
  | Run_raised of string  (** the runner raised (worker survived) *)
  | Cancelled  (** still queued when the pool was cancelled *)
  | Expired  (** its deadline passed while it sat in the queue *)
  | Quarantined
      (** every worker slot is circuit-broken; the task can never run *)

let failure_to_string = function
  | Worker_lost n -> Printf.sprintf "worker lost (%d attempts)" n
  | Run_raised msg -> "runner raised: " ^ msg
  | Cancelled -> "cancelled"
  | Expired -> "deadline expired before execution"
  | Quarantined -> "all worker slots quarantined"

type result = {
  r_key : string;
  r_payload : (string, failure) Stdlib.result;
  r_submitted : float;  (** master monotonic-ish clock, for latency *)
  r_done : float;
}

type job = {
  j_id : int;
  j_key : string;
  j_task : string;
  j_submitted : float;
  j_deadline : float option;  (** absolute; checked at dispatch time *)
  mutable j_attempt : int;
}

type wstate = Idle | Busy of job * float (* dispatch time *)

type worker = {
  slot : int;
  mutable pid : int;
  mutable to_w : Unix.file_descr;   (** master write end *)
  mutable from_w : Unix.file_descr; (** master read end *)
  mutable rbuf : Buffer.t;
  mutable state : wstate;
  mutable w_alive : bool;
  mutable last_seen : float;
  mutable w_snap : Telemetry.Snapshot.t;
      (** the live incarnation's latest cumulative delta (replaced on
          every "S" line, so a lost line heals at the next one) *)
  mutable w_dead_snap : Telemetry.Snapshot.t;
      (** accumulated last snapshots of this slot's dead incarnations
          — what survives a SIGKILL *)
  mutable deaths : int;
      (** consecutive deaths without a verified reply in between —
          the circuit breaker's streak counter, deliberately carried
          across respawns *)
  mutable quarantined : bool;  (** circuit-broken: never respawned *)
}

type t = {
  cfg : config;
  run : attempt:int -> key:string -> string -> string;
  ws : worker array;
  queue : job Queue.t;
  mutable inflight : int;
  mutable next_id : int;
  done_q : result Queue.t;
  mutable pool_cancelled : bool;
  mutable closed : bool;
  mutable published : bool;  (** {!publish_metrics} ran (idempotence) *)
  mutable at_fork_extra : (unit -> unit) option;
      (** set after creation by an embedding daemon (see
          {!set_at_fork}): run in respawned workers so they drop
          inherited listener/client sockets *)
}

let now () = Unix.gettimeofday ()

(* single-line framing: tasks, keys and payloads cross the pipes as
   one line each; keys additionally separate from the task body with a
   tab.  Enforced at submit / in the worker reply. *)
let check_frame what s =
  if String.contains s '\n' then
    invalid_arg (Printf.sprintf "Fleet.Pool: %s contains a newline" what)

let check_key key =
  check_frame "key" key;
  if String.contains key '\t' then
    invalid_arg "Fleet.Pool: key contains a tab"

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

(* worker-side slot marker: lets runner closures (profile shards) know
   which worker they execute in; [-1] in the master *)
let current_slot = ref (-1)

let worker_slot () = if !current_slot >= 0 then Some !current_slot else None

(* The child never returns: it loops on dispatch lines until [Q] or
   EOF, then [_exit]s without running the parent's at_exit handlers or
   flushing its inherited channel buffers. *)
let worker_loop ~(cfg : config) ~slot ~run rd wr : 'a =
  let ic = Unix.in_channel_of_descr rd in
  let oc = Unix.out_channel_of_descr wr in
  current_slot := slot;
  Telemetry.Log.set_prefix (Printf.sprintf "[w%d] " slot);
  let send fmt =
    Printf.ksprintf
      (fun s ->
         output_string oc s;
         output_char oc '\n';
         flush oc)
      fmt
  in
  (* observability: a fork inherits the parent's registry and any
     recorded spans, so snapshots diff against a baseline captured
     here and span tracing starts from a clean slate *)
  let baseline =
    if cfg.snapshots then Telemetry.Snapshot.capture ()
    else Telemetry.Snapshot.empty
  in
  if cfg.spans <> None then begin
    Telemetry.reset ();
    Telemetry.enable ()
  end;
  let send_snapshot () =
    if cfg.snapshots then
      let d =
        Telemetry.Snapshot.diff ~base:baseline (Telemetry.Snapshot.capture ())
      in
      send "S %s" (Telemetry.Snapshot.to_json d)
  in
  let flush_spans () =
    match cfg.spans with
    | Some base -> (try Spans.flush_shard ~base ~slot with Sys_error _ -> ())
    | None -> ()
  in
  let journal = ref None in
  let journal_writer () =
    match (!journal, cfg.journal) with
    | Some w, _ -> Some w
    | None, None -> None
    | None, Some jc ->
        let w =
          Robust.Journal.open_writer ~fingerprint:jc.j_fingerprint
            (Printf.sprintf "%s.w%d" jc.j_path slot)
        in
        journal := Some w;
        Some w
  in
  let quit code =
    (* final flush: completed spans and a last snapshot line reach the
       master before EOF (it keeps reading until EOF on shutdown) *)
    flush_spans ();
    (try send_snapshot () with _ -> ());
    (match !journal with
     | Some w -> (try Robust.Journal.close_writer w with _ -> ())
     | None -> ());
    (try flush oc with _ -> ());
    Unix._exit code
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> quit 0
    | "Q" -> quit 0
    | line -> (
        (* "T <id> <attempt> <stall_ms> <chk> <key>\t<task>" where
           [chk] is the FNV-1a checksum of "<key>\t<task>" — a frame
           damaged in transit is detected here and nacked instead of
           silently running (or grading) garbage *)
        match String.split_on_char ' ' line with
        | "T" :: id :: attempt :: stall :: chk :: rest ->
            let id = int_of_string id and attempt = int_of_string attempt in
            let stall_ms = int_of_string stall in
            let body = String.concat " " rest in
            if not (String.equal chk (Robust.Journal.fnv64_hex body)) then begin
              (* damaged dispatch frame: refuse it by id; the master
                 re-sends without charging the task an attempt *)
              send "N %d" id;
              loop ()
            end
            else begin
              (* chaos stall directive: wedge here, before running, so
                 the master's wall watchdog sees a hung worker *)
              if stall_ms > 0 then
                ignore (Unix.select [] [] [] (float_of_int stall_ms /. 1e3));
              let key, task =
                match String.index_opt body '\t' with
                | Some i ->
                    ( String.sub body 0 i,
                      String.sub body (i + 1) (String.length body - i - 1) )
                | None -> (body, body)
              in
              (match run ~attempt ~key task with
               | payload ->
                   check_frame "payload" payload;
                   (match journal_writer () with
                    | Some w -> Robust.Journal.append w ~key ~payload
                    | None -> ());
                   (* per-task observability flush, *before* the reply:
                      spans to this slot's shard, registry delta on the
                      pipe — so by the time the master routes this
                      result, the task's counters are already folded in
                      (a client seeing "done" can trust [metrics]), and
                      a later SIGKILL loses at most the killed task's
                      own work *)
                   flush_spans ();
                   send_snapshot ();
                   send "D %d %s %s" id (Robust.Journal.fnv64_hex payload)
                     payload
               | exception e ->
                   let msg =
                     String.map
                       (fun c -> if c = '\n' then ' ' else c)
                       (Printexc.to_string e)
                   in
                   flush_spans ();
                   send_snapshot ();
                   send "X %d %s %s" id (Robust.Journal.fnv64_hex msg) msg);
              loop ()
            end
        | _ -> quit 3 (* protocol violation: die loudly *))
  in
  (* whatever happens — a broken pipe racing the master's shutdown, a
     runner blowing the stack — the worker must die here, never return
     into the forked copy of the caller *)
  (try
     send "H %d" slot;
     loop ()
   with _ -> ());
  Unix._exit 4

(* ------------------------------------------------------------------ *)
(* Master side                                                         *)
(* ------------------------------------------------------------------ *)

let spawn (t : t) slot =
  (* the child inherits any buffered output; flush so nothing prints
     twice *)
  flush stdout;
  flush stderr;
  let w = t.ws.(slot) in
  let c_rd, m_wr = Unix.pipe () in (* master -> worker *)
  let m_rd, c_wr = Unix.pipe () in (* worker -> master *)
  match Unix.fork () with
  | 0 ->
      Unix.close m_wr;
      Unix.close m_rd;
      (* drop the master ends of every sibling's pipes, so a sibling
         death is visible to the master as EOF, not kept open here *)
      Array.iter
        (fun (ow : worker) ->
           if ow.slot <> slot && ow.w_alive then begin
             (try Unix.close ow.to_w with Unix.Unix_error _ -> ());
             (try Unix.close ow.from_w with Unix.Unix_error _ -> ())
           end)
        t.ws;
      (match t.cfg.at_fork with Some f -> f () | None -> ());
      (match t.at_fork_extra with Some f -> f () | None -> ());
      worker_loop ~cfg:t.cfg ~slot ~run:t.run c_rd c_wr
  | pid ->
      Unix.close c_rd;
      Unix.close c_wr;
      (* non-blocking master reads: a stale fd number reused by a
         fresh pipe must never block a poll round *)
      Unix.set_nonblock m_rd;
      w.pid <- pid;
      w.to_w <- m_wr;
      w.from_w <- m_rd;
      Buffer.clear w.rbuf;
      w.state <- Idle;
      w.w_alive <- true;
      (* a fresh incarnation ships deltas from its own fork baseline;
         the previous incarnation's totals live in [w_dead_snap] *)
      w.w_snap <- Telemetry.Snapshot.empty;
      w.last_seen <- now ()

(* a worker dying between select and write must surface as EPIPE, not
   a fatal SIGPIPE *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let create ?(config = default_config) run : t =
  if config.workers < 1 then invalid_arg "Fleet.Pool.create: workers < 1";
  Lazy.force ignore_sigpipe;
  let t =
    { cfg = config;
      run;
      ws =
        Array.init config.workers (fun slot ->
            { slot; pid = -1; to_w = Unix.stdin; from_w = Unix.stdin;
              rbuf = Buffer.create 256; state = Idle; w_alive = false;
              last_seen = 0.; w_snap = Telemetry.Snapshot.empty;
              w_dead_snap = Telemetry.Snapshot.empty; deaths = 0;
              quarantined = false });
      queue = Queue.create ();
      inflight = 0;
      next_id = 0;
      done_q = Queue.create ();
      pool_cancelled = false;
      closed = false;
      published = false;
      at_fork_extra = None }
  in
  for slot = 0 to config.workers - 1 do
    spawn t slot
  done;
  t

let submit (t : t) ?deadline ~key ~task () =
  if t.closed then invalid_arg "Fleet.Pool.submit: pool is closed";
  check_key key;
  check_frame "task" task;
  let j =
    { j_id = t.next_id; j_key = key; j_task = task; j_submitted = now ();
      j_deadline = deadline; j_attempt = 1 }
  in
  t.next_id <- t.next_id + 1;
  Queue.push j t.queue

let pending t = Queue.length t.queue + t.inflight
let queued t = Queue.length t.queue
let inflight t = t.inflight
let cancelled t = t.pool_cancelled
let cancel t = t.pool_cancelled <- true
let set_at_fork t f = t.at_fork_extra <- Some f

(** Install a SIGINT handler that cooperatively cancels the pool;
    returns a function restoring the previous handler. *)
let install_sigint t =
  let prev =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> cancel t))
  in
  fun () -> Sys.set_signal Sys.sigint prev

let complete (t : t) (j : job) payload =
  Queue.push
    { r_key = j.j_key; r_payload = payload; r_submitted = j.j_submitted;
      r_done = now () }
    t.done_q

(* a worker died (EOF / watchdog kill): reap it, settle or re-dispatch
   its in-flight task, and refill the slot — unless its death streak
   trips the circuit breaker, in which case the slot is quarantined *)
let bury (t : t) (w : worker) ~respawn =
  Telemetry.Metrics.incr m_deaths;
  w.deaths <- w.deaths + 1;
  w.w_alive <- false;
  (* keep what the dead incarnation last reported: its snapshot lines
     are cumulative-since-fork, so the latest one is its whole story *)
  w.w_dead_snap <- Telemetry.Snapshot.merge w.w_dead_snap w.w_snap;
  w.w_snap <- Telemetry.Snapshot.empty;
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  (match w.state with
   | Idle -> ()
   | Busy (j, _) ->
       t.inflight <- t.inflight - 1;
       if t.pool_cancelled then begin
         Telemetry.Metrics.incr m_cancelled;
         complete t j (Error Cancelled)
       end
       else if j.j_attempt > t.cfg.respawns then begin
         Telemetry.Metrics.incr m_failed;
         Telemetry.Log.warnf
           "fleet: task %s failed — killed its worker %d time(s)" j.j_key
           j.j_attempt;
         complete t j (Error (Worker_lost j.j_attempt))
       end
       else begin
         Telemetry.Metrics.incr m_redispatched;
         Telemetry.Log.warnf
           "fleet: worker %d died running %s; re-dispatching (attempt %d)"
           w.slot j.j_key (j.j_attempt + 1);
         j.j_attempt <- j.j_attempt + 1;
         Queue.push j t.queue
       end);
  w.state <- Idle;
  if (match t.cfg.breaker with
      | Some k -> w.deaths >= k
      | None -> false)
  then begin
    if not w.quarantined then begin
      w.quarantined <- true;
      Telemetry.Metrics.incr m_quarantined;
      Telemetry.Log.warnf
        "fleet: slot %d died %d time(s) in a row; quarantined (no respawn)"
        w.slot w.deaths
    end
  end
  else if respawn && not t.closed then begin
    Telemetry.Metrics.incr m_respawns;
    spawn t w.slot
  end

(* ---- chaos: frame corruption at the pipe boundary ---- *)

(* flip one byte — never a framing byte ('\t'/'\n') — to something
   visibly wrong; the checksum machinery must catch it *)
let corrupt_at line i =
  let b = Bytes.of_string line in
  let i =
    if i < Bytes.length b && Bytes.get b i <> '\t' && Bytes.get b i <> '\n'
    then i
    else i - 1
  in
  Bytes.set b i (if Bytes.get b i = '#' then '!' else '#');
  Bytes.unsafe_to_string b

(* dispatch frames: corrupt the "<key>\t<task>" body region, which is
   the trailing [body_len + 1] bytes of the line (incl. '\n') *)
let corrupt_dispatch_frame ~body_len line =
  corrupt_at line (String.length line - 1 - body_len + (body_len / 2))

(* reply frames ("D <id> <chk> <payload>"): corrupt past the third
   space, i.e. in the payload *)
let corrupt_reply_frame line =
  let n = String.length line in
  let sp = ref 0 and i = ref 0 in
  while !sp < 3 && !i < n do
    if line.[!i] = ' ' then incr sp;
    incr i
  done;
  if !i >= n then line else corrupt_at line (!i + ((n - !i) / 2))

let dispatch_one (t : t) (w : worker) (j : job) =
  w.state <- Busy (j, now ());
  t.inflight <- t.inflight + 1;
  Telemetry.Metrics.incr m_dispatched;
  (* chaos: a stall directive makes the worker wedge well past the
     wall watchdog before touching the task — only meaningful when a
     watchdog exists to catch it *)
  let stall_ms =
    match (t.cfg.chaos, t.cfg.task_timeout) with
    | Some st, Some limit
      when Robust.Chaos.fleet_fires st Robust.Chaos.Worker_stall ->
        int_of_float (limit *. 2500.)
    | _ -> 0
  in
  let body = j.j_key ^ "\t" ^ j.j_task in
  let line =
    Printf.sprintf "T %d %d %d %s %s\n" j.j_id j.j_attempt stall_ms
      (Robust.Journal.fnv64_hex body) body
  in
  let line =
    match t.cfg.chaos with
    | Some st when Robust.Chaos.fleet_fires st Robust.Chaos.Corrupt_dispatch
      ->
        corrupt_dispatch_frame ~body_len:(String.length body) line
    | _ -> line
  in
  match write_all w.to_w line with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
      (* the worker died before taking the task: not the task's fault,
         so put it back without charging an attempt *)
      t.inflight <- t.inflight - 1;
      w.state <- Idle;
      Queue.push j t.queue;
      bury t w ~respawn:true

(* next runnable job, settling queue-expired ones along the way *)
let rec take_job (t : t) =
  match Queue.take_opt t.queue with
  | None -> None
  | Some j -> (
      match j.j_deadline with
      | Some d when now () > d ->
          Telemetry.Metrics.incr m_expired;
          Telemetry.Log.warnf
            "fleet: task %s expired in queue before dispatch" j.j_key;
          complete t j (Error Expired);
          take_job t
      | _ -> Some j)

let dispatch (t : t) =
  Array.iter
    (fun w ->
       if w.w_alive && w.state = Idle && not t.pool_cancelled then
         match take_job t with
         | Some j -> dispatch_one t w j
         | None -> ())
    t.ws;
  (* circuit-broken pool: every slot quarantined with work still
     queued — it can never run, so fail it now rather than spinning *)
  if not t.closed && t.inflight = 0
     && not (Queue.is_empty t.queue)
     && Array.for_all (fun w -> (not w.w_alive) && w.quarantined) t.ws
  then
    while not (Queue.is_empty t.queue) do
      let j = Queue.pop t.queue in
      Telemetry.Metrics.incr m_failed;
      complete t j (Error Quarantined)
    done

(* a reply frame that failed its checksum (or is unparseable while a
   task is in flight): the channel can no longer be trusted — kill the
   incarnation and let [bury] re-dispatch its task *)
let recover_corrupt_channel (t : t) (w : worker) line =
  Telemetry.Metrics.incr m_bad_frames;
  Telemetry.Log.warnf
    "fleet: worker %d sent a corrupt frame %S; killing and re-dispatching"
    w.slot
    (String.sub line 0 (min 48 (String.length line)));
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  bury t w ~respawn:true

(* one complete line from worker [w] *)
let handle_line (t : t) (w : worker) line =
  w.last_seen <- now ();
  if String.length line >= 2 && line.[0] = 'S' && line.[1] = ' ' then
    (* registry-delta snapshot: cumulative since fork, so we replace
       rather than accumulate — a lost line self-heals at the next *)
    match
      Telemetry.Snapshot.of_json
        (String.sub line 2 (String.length line - 2))
    with
    | Some s -> w.w_snap <- s
    | None ->
        Telemetry.Log.warnf
          "fleet: worker %d sent an undecodable snapshot; dropped" w.slot
  else begin
    (* chaos: reply frames can be dropped (only under a watchdog that
       will eventually recover the silence), delayed, or corrupted on
       the way in *)
    let is_reply =
      String.length line >= 2
      && (line.[0] = 'D' || line.[0] = 'X')
      && line.[1] = ' '
    in
    let line =
      match t.cfg.chaos with
      | Some st when is_reply ->
          if
            t.cfg.task_timeout <> None
            && Robust.Chaos.fleet_fires st Robust.Chaos.Drop_reply
          then begin
            Telemetry.Log.warnf
              "fleet(chaos): dropped a reply frame from worker %d" w.slot;
            None
          end
          else begin
            if Robust.Chaos.fleet_fires st Robust.Chaos.Delay_reply then
              ignore (Unix.select [] [] [] 0.02);
            if Robust.Chaos.fleet_fires st Robust.Chaos.Corrupt_reply then
              Some (corrupt_reply_frame line)
            else Some line
          end
      | _ -> Some line
    in
    match line with
    | None -> ()
    | Some line -> (
        match String.split_on_char ' ' line with
        | "H" :: _ -> () (* hello/heartbeat *)
        | "N" :: id_s :: _ -> (
            (* the worker refused a dispatch frame that failed its
               checksum: damage in transit, not the task's fault — put
               it back without charging an attempt *)
            match (int_of_string_opt id_s, w.state) with
            | Some id, Busy (j, _) when j.j_id = id ->
                Telemetry.Metrics.incr m_nacked;
                Telemetry.Log.warnf
                  "fleet: worker %d nacked a damaged dispatch frame for %s; \
                   re-sending"
                  w.slot j.j_key;
                w.deaths <- 0;
                w.state <- Idle;
                t.inflight <- t.inflight - 1;
                Queue.push j t.queue
            | _ ->
                Telemetry.Log.warnf
                  "fleet: worker %d nacked an unexpected frame; dropped"
                  w.slot)
        | ("D" | "X") :: id_s :: chk :: rest -> (
            let body = String.concat " " rest in
            match int_of_string_opt id_s with
            | Some id
              when String.equal chk (Robust.Journal.fnv64_hex body) -> (
                let ok = line.[0] = 'D' in
                match w.state with
                | Busy (j, _) when j.j_id = id ->
                    (* a verified reply proves the slot healthy: reset
                       the breaker streak *)
                    w.deaths <- 0;
                    w.state <- Idle;
                    t.inflight <- t.inflight - 1;
                    if ok then begin
                      Telemetry.Metrics.incr m_completed;
                      complete t j (Ok body)
                    end
                    else begin
                      Telemetry.Metrics.incr m_raised;
                      complete t j (Error (Run_raised body))
                    end
                | _ ->
                    Telemetry.Log.warnf
                      "fleet: worker %d answered for unexpected task %d; \
                       dropped"
                      w.slot id)
            | _ -> recover_corrupt_channel t w line)
        | _ -> (
            match w.state with
            | Busy _ -> recover_corrupt_channel t w line
            | Idle ->
                Telemetry.Log.warnf "fleet: worker %d sent garbage %S" w.slot
                  line))
  end

let pump_worker (t : t) (w : worker) =
  let chunk = Bytes.create 65536 in
  match Unix.read w.from_w chunk 0 (Bytes.length chunk) with
  | 0 -> bury t w ~respawn:true
  | n ->
      Buffer.add_subbytes w.rbuf chunk 0 n;
      let data = Buffer.contents w.rbuf in
      let rec split from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear w.rbuf;
            Buffer.add_substring w.rbuf data from (String.length data - from)
        | Some i ->
            handle_line t w (String.sub data from (i - from));
            split (i + 1)
      in
      split 0
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      bury t w ~respawn:true

let watchdog (t : t) =
  match t.cfg.task_timeout with
  | None -> ()
  | Some limit ->
      let deadline_passed t0 = now () -. t0 > limit in
      Array.iter
        (fun w ->
           match w.state with
           | Busy (j, t0) when w.w_alive && deadline_passed t0 ->
               Telemetry.Metrics.incr m_timeouts;
               Telemetry.Log.warnf
                 "fleet: worker %d stuck on %s > %.1fs; killing" w.slot
                 j.j_key limit;
               (try Unix.kill w.pid Sys.sigkill
                with Unix.Unix_error _ -> ());
               bury t w ~respawn:true
           | _ -> ())
        t.ws

(** Readable fds to select on while embedding the pool in a larger
    event loop (the serve daemon): one per live worker. *)
let fds (t : t) =
  Array.to_list t.ws
  |> List.filter_map (fun w -> if w.w_alive then Some w.from_w else None)

(** One scheduling round: dispatch queued tasks to idle workers, wait
    up to [timeout] for worker messages, collect results.  Returns the
    tasks completed so far (drains the internal done-queue). *)
let poll ?(timeout = 0.05) (t : t) : result list =
  dispatch t;
  let rd = fds t in
  (if rd <> [] && t.inflight > 0 then
     match Unix.select rd [] [] timeout with
     | readable, _, _ ->
         List.iter
           (fun fd ->
              match
                Array.to_list t.ws
                |> List.find_opt (fun w -> w.w_alive && w.from_w = fd)
              with
              | Some w -> pump_worker t w
              | None -> ())
           readable
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  watchdog t;
  dispatch t;
  let out = ref [] in
  Queue.iter (fun r -> out := r :: !out) t.done_q;
  Queue.clear t.done_q;
  List.rev !out

(** Run the pool to completion (or to cooperative cancellation):
    blocks until every submitted task has a result.  Tasks still
    queued when the pool is cancelled come back as [Error Cancelled].
    [on_round] runs after every scheduling round — a live progress
    line hooks in here without owning the loop. *)
let drain ?(on_round = fun () -> ()) (t : t) : result list =
  let acc = ref [] in
  while pending t > 0 && not (t.pool_cancelled && t.inflight = 0) do
    acc := List.rev_append (poll ~timeout:0.25 t) !acc;
    on_round ()
  done;
  (* cancelled: fail what never ran *)
  Queue.iter
    (fun j ->
       Telemetry.Metrics.incr m_cancelled;
       complete t j (Error Cancelled))
    t.queue;
  Queue.clear t.queue;
  acc := List.rev_append (poll ~timeout:0. t) !acc;
  List.rev !acc

(** Quit every worker and reap it.  Idempotent. *)
let shutdown (t : t) =
  if not t.closed then begin
    t.closed <- true;
    (* ask every worker to quit first, so their final-flush snapshot
       lines are already in the pipes while we collect below *)
    Array.iter
      (fun w ->
         if w.w_alive then
           try ignore (Unix.write_substring w.to_w "Q\n" 0 2)
           with Unix.Unix_error _ -> ())
      t.ws;
    (* with snapshots on, read each worker until EOF (bounded): the
       quit path sends one last "S" line that must not be lost.
       [bury] on EOF will not respawn — the pool is closed. *)
    if t.cfg.snapshots then begin
      let deadline = now () +. 2.0 in
      let rec collect () =
        let rd = fds t in
        if rd <> [] && now () < deadline then begin
          (match Unix.select rd [] [] 0.05 with
           | readable, _, _ ->
               List.iter
                 (fun fd ->
                    match
                      Array.to_list t.ws
                      |> List.find_opt
                           (fun w -> w.w_alive && w.from_w = fd)
                    with
                    | Some w -> pump_worker t w
                    | None -> ())
                 readable
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          collect ()
        end
      in
      collect ()
    end;
    Array.iter
      (fun w ->
         if w.w_alive then begin
           (try Unix.close w.to_w with Unix.Unix_error _ -> ());
           (try Unix.close w.from_w with Unix.Unix_error _ -> ());
           w.w_alive <- false;
           (* give it a moment to exit cleanly, then force it *)
           let rec reap tries =
             match Unix.waitpid [ Unix.WNOHANG ] w.pid with
             | 0, _ ->
                 if tries = 0 then begin
                   (try Unix.kill w.pid Sys.sigkill
                    with Unix.Unix_error _ -> ());
                   ignore (Unix.waitpid [] w.pid)
                 end
                 else begin
                   ignore (Unix.select [] [] [] 0.01);
                   reap (tries - 1)
                 end
             | _ -> ()
             | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
           in
           reap 100
         end)
      t.ws
  end

(** Per-worker journal paths a pool over [j_path] would write (only
    those that exist on disk). *)
let worker_journal_paths ~path ~workers =
  List.filter Sys.file_exists
    (List.init workers (fun slot -> Printf.sprintf "%s.w%d" path slot))

(* ------------------------------------------------------------------ *)
(* Observability (master side)                                         *)
(* ------------------------------------------------------------------ *)

let alive_workers (t : t) =
  Array.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 t.ws

(** Per-slot status: (slot, alive, quarantined, in-flight task key if
    busy). *)
let worker_states (t : t) : (int * bool * bool * string option) list =
  Array.to_list t.ws
  |> List.map (fun w ->
      let task =
        match w.state with Busy (j, _) -> Some j.j_key | Idle -> None
      in
      (w.slot, w.w_alive, w.quarantined, task))

(** Circuit-broken slot count. *)
let quarantined_workers (t : t) =
  Array.fold_left (fun n w -> if w.quarantined then n + 1 else n) 0 t.ws

(** The fleet-wide aggregate of everything workers have reported:
    every slot's live snapshot plus its dead incarnations' — the
    counters a sequential run of the same work would have produced
    (the master itself runs no tasks). *)
let metrics_snapshot (t : t) : Telemetry.Snapshot.t =
  Array.fold_left
    (fun acc w ->
       Telemetry.Snapshot.merge acc
         (Telemetry.Snapshot.merge w.w_dead_snap w.w_snap))
    Telemetry.Snapshot.empty t.ws

(** Per-slot snapshots for name-spaced publication:
    (slot, dead-merged-with-live). *)
let worker_snapshots (t : t) : (int * Telemetry.Snapshot.t) list =
  Array.to_list t.ws
  |> List.map (fun w ->
      (w.slot, Telemetry.Snapshot.merge w.w_dead_snap w.w_snap))

(** Fold the workers' reported metrics into the master's live registry:
    once per pool, each slot under a [worker<N>.] prefix plus the
    unprefixed additive aggregate.  After this, [Metrics.snapshot] in
    the master reads like the sequential run.  No-op unless
    [cfg.snapshots]; idempotent. *)
let publish_metrics (t : t) =
  if t.cfg.snapshots && not t.published then begin
    t.published <- true;
    List.iter
      (fun (slot, s) ->
         if not (Telemetry.Snapshot.is_empty s) then begin
           Telemetry.Snapshot.publish
             ~prefix:(Printf.sprintf "worker%d." slot) s;
           Telemetry.Snapshot.publish s
         end)
      (worker_snapshots t)
  end
