(** [eval serve]'s engine-agnostic core: a Unix-domain-socket daemon
    that accepts line-framed JSON requests, queues them into a
    {!Pool}, and streams each task's outcome back to the client that
    submitted it.

    Protocol — one JSON object per line, both directions:
    - [{"op":"submit","id":ID,…}] enqueues the whole request line as a
      pool task (the pool's runner owns the request schema).  Answered
      immediately with [{"id":ID,"status":"queued","pending":N}] — or
      [{"id":ID,"status":"rejected","error":…}] when the queue is at
      [max_queue] (backpressure) or the daemon is draining — and later
      with the runner's own response line (which must carry the id).
    - [{"op":"ping"}] → [{"status":"ok","pending":N}] — liveness, also
      used by {!check_socket} to distinguish a live daemon from a
      stale socket file.
    - [{"op":"stats"}] → queue/completion counters.
    - [{"op":"drain"}] → [{"status":"draining","pending":N}] now, one
      [{"status":"drained","completed":N}] when the queue is empty;
      then the daemon closes everything, unlinks the socket and
      returns.  SIGINT/SIGTERM trigger the same cooperative drain. *)

let m_requests = Telemetry.Metrics.counter "serve.requests"
let m_rejected = Telemetry.Metrics.counter "serve.rejected"
let m_responses = Telemetry.Metrics.counter "serve.responses"
let m_dropped = Telemetry.Metrics.counter "serve.dropped_responses"
let m_clients = Telemetry.Metrics.counter "serve.clients"
let m_latency = Telemetry.Metrics.histogram "serve.latency_us"

(** Protocol/build identity reported by [ping] and [health]. *)
let version = "eval-serve/1"

type config = {
  socket : string;
  max_queue : int;  (** submit backpressure: max queued (not running) *)
  accept_backlog : int;
}

let default_config ~socket =
  { socket; max_queue = 10_000; accept_backlog = 64 }

(* ------------------------------------------------------------------ *)
(* Stale-socket detection                                              *)
(* ------------------------------------------------------------------ *)

exception Socket_in_use of string
    (** a live daemon answered on the socket *)

exception Stale_socket of string
    (** the path exists but nothing is listening (a previous daemon
        died without cleanup) *)

(** Probe [path] before binding: raises {!Socket_in_use} if a daemon
    is already serving there, {!Stale_socket} if the file exists but
    is dead — the caller gets a clear error either way instead of
    [EADDRINUSE]. *)
let check_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then raise (Socket_in_use path) else raise (Stale_socket path)
  end

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

type client = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_alive : bool;
  mutable c_draining : bool;  (** owes a final "drained" message *)
}

type state = {
  cfg : config;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  (* pool task tag -> submitting client (may be dead by completion) *)
  routes : (string, client) Hashtbl.t;
  mutable next_tag : int;
  mutable draining : bool;
  mutable completed : int;
  started : float;  (** daemon start, for uptime *)
  fingerprint : string;  (** unique per daemon instance *)
}

let esc = Robust.Journal.json_escape

let send_line st (c : client) line =
  if c.c_alive then begin
    match Pool.write_all c.c_fd (line ^ "\n") with
    | () -> Telemetry.Metrics.incr m_responses
    | exception Unix.Unix_error _ ->
        c.c_alive <- false;
        st.clients <- List.filter (fun x -> x != c) st.clients;
        (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end
  else Telemetry.Metrics.incr m_dropped

let reject st c ~id msg =
  Telemetry.Metrics.incr m_rejected;
  send_line st c
    (Printf.sprintf "{\"id\":%s,\"status\":\"rejected\",\"error\":\"%s\"}"
       (match id with Some i -> "\"" ^ esc i ^ "\"" | None -> "null")
       (esc msg))

(* per-slot status as a JSON array: slot, liveness, in-flight task *)
let workers_json st =
  String.concat ","
    (List.map
       (fun (slot, alive, task) ->
          Printf.sprintf "{\"slot\":%d,\"alive\":%b,\"inflight\":%d%s}"
            slot alive
            (if task = None then 0 else 1)
            (match task with
             | Some k -> Printf.sprintf ",\"task\":\"%s\"" (esc k)
             | None -> ""))
       (Pool.worker_states st.pool))

let latency_ms q =
  float_of_int (Telemetry.Metrics.quantile m_latency q) /. 1e3

let handle_request st (c : client) line =
  Telemetry.Metrics.incr m_requests;
  let open Telemetry.Trace_check in
  match parse_opt line with
  | None -> reject st c ~id:None "request is not valid JSON"
  | Some j -> (
      let id =
        match member "id" j with Some (Str s) -> Some s | _ -> None
      in
      match member "op" j with
      | Some (Str "ping") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"pending\":%d,\"version\":\"%s\",\
                \"fingerprint\":\"%s\",\"uptime_s\":%.1f}"
               (Pool.pending st.pool) (esc version) (esc st.fingerprint)
               (Unix.gettimeofday () -. st.started))
      | Some (Str "stats") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"queued\":%d,\"inflight\":%d,\
                \"completed\":%d,\"clients\":%d,\"draining\":%b,\
                \"workers\":[%s]}"
               (Pool.queued st.pool) (Pool.inflight st.pool) st.completed
               (List.length st.clients) st.draining (workers_json st))
      | Some (Str "health") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"version\":\"%s\",\
                \"fingerprint\":\"%s\",\"uptime_s\":%.1f,\
                \"workers\":%d,\"workers_alive\":%d,\"queued\":%d,\
                \"inflight\":%d,\"completed\":%d,\"draining\":%b,\
                \"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}}"
               (esc version) (esc st.fingerprint)
               (Unix.gettimeofday () -. st.started)
               (List.length (Pool.worker_states st.pool))
               (Pool.alive_workers st.pool) (Pool.queued st.pool)
               (Pool.inflight st.pool) st.completed st.draining
               (latency_ms 0.50) (latency_ms 0.95) (latency_ms 0.99))
      | Some (Str "metrics") ->
          (* daemon registry + everything the workers have reported *)
          let snap =
            Telemetry.Snapshot.merge
              (Telemetry.Snapshot.capture ())
              (Pool.metrics_snapshot st.pool)
          in
          let prometheus =
            match member "format" j with
            | Some (Str "prometheus") -> true
            | _ -> false
          in
          if prometheus then
            send_line st c
              (Printf.sprintf
                 "{\"status\":\"ok\",\"format\":\"prometheus\",\
                  \"text\":\"%s\"}"
                 (esc (Telemetry.Snapshot.to_prometheus snap)))
          else
            send_line st c
              (Printf.sprintf "{\"status\":\"ok\",\"metrics\":%s}"
                 (Telemetry.Snapshot.to_json snap))
      | Some (Str "drain") ->
          st.draining <- true;
          c.c_draining <- true;
          send_line st c
            (Printf.sprintf "{\"status\":\"draining\",\"pending\":%d}"
               (Pool.pending st.pool))
      | Some (Str "submit") ->
          if st.draining then reject st c ~id "daemon is draining"
          else if Pool.queued st.pool >= st.cfg.max_queue then
            reject st c ~id
              (Printf.sprintf "queue full (max %d)" st.cfg.max_queue)
          else begin
            let tag = Printf.sprintf "r%d" st.next_tag in
            st.next_tag <- st.next_tag + 1;
            Hashtbl.replace st.routes tag c;
            Pool.submit st.pool ~key:tag ~task:line;
            send_line st c
              (Printf.sprintf
                 "{\"id\":%s,\"status\":\"queued\",\"pending\":%d}"
                 (match id with
                  | Some i -> "\"" ^ esc i ^ "\""
                  | None -> "null")
                 (Pool.pending st.pool))
          end
      | _ ->
          reject st c ~id
            "unknown op (submit, ping, stats, health, metrics, drain)")

let route_result st (r : Pool.result) =
  st.completed <- st.completed + 1;
  Telemetry.Metrics.observe m_latency
    (int_of_float ((r.r_done -. r.r_submitted) *. 1e6));
  match Hashtbl.find_opt st.routes r.r_key with
  | None -> Telemetry.Metrics.incr m_dropped
  | Some c ->
      Hashtbl.remove st.routes r.r_key;
      (match r.r_payload with
       | Ok payload -> send_line st c payload
       | Error f ->
           send_line st c
             (Printf.sprintf "{\"status\":\"error\",\"error\":\"%s\"}"
                (esc (Pool.failure_to_string f))))

let pump_client st (c : client) =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      c.c_alive <- false;
      st.clients <- List.filter (fun x -> x != c) st.clients;
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  | n ->
      Buffer.add_subbytes c.c_buf chunk 0 n;
      let data = Buffer.contents c.c_buf in
      let rec split from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear c.c_buf;
            Buffer.add_substring c.c_buf data from (String.length data - from)
        | Some i ->
            let line = String.sub data from (i - from) in
            if String.trim line <> "" then handle_request st c line;
            split (i + 1)
      in
      split 0
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | exception Unix.Unix_error _ ->
      c.c_alive <- false;
      st.clients <- List.filter (fun x -> x != c) st.clients;
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ())

(** Run the daemon until a drain request (or SIGINT/SIGTERM) empties
    the queue.  Binds [cfg.socket], refusing a live or stale existing
    socket (see {!check_socket}); unlinks it on the way out.  The pool
    is polled from the same event loop — no threads anywhere. *)
let run (cfg : config) ~(pool : Pool.t) : unit =
  check_socket cfg.socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd cfg.accept_backlog;
  let started = Unix.gettimeofday () in
  let st =
    { cfg; pool; listen_fd; clients = []; routes = Hashtbl.create 64;
      next_tag = 0; draining = false; completed = 0; started;
      fingerprint =
        Robust.Journal.fingerprint
          [ version; string_of_int (Unix.getpid ());
            Printf.sprintf "%.6f" started ] }
  in
  (* respawned workers must not hold the daemon's sockets open *)
  Pool.set_at_fork pool (fun () ->
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients);
  let drain_signal _ = st.draining <- true in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle drain_signal) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle drain_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      List.iter
        (fun c ->
           try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket with Sys_error _ -> ()))
  @@ fun () ->
  let finished () = st.draining && Pool.pending pool = 0 in
  while not (finished ()) do
    let rd =
      (listen_fd :: List.map (fun c -> c.c_fd) st.clients) @ Pool.fds pool
    in
    (match Unix.select rd [] [] 0.2 with
     | readable, _, _ ->
         if List.mem listen_fd readable then begin
           match Unix.accept listen_fd with
           | fd, _ ->
               Unix.set_nonblock fd;
               Telemetry.Metrics.incr m_clients;
               st.clients <-
                 { c_fd = fd; c_buf = Buffer.create 256; c_alive = true;
                   c_draining = false }
                 :: st.clients
           | exception Unix.Unix_error _ -> ()
         end;
         List.iter
           (fun c -> if List.mem c.c_fd readable then pump_client st c)
           st.clients
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter (route_result st) (Pool.poll ~timeout:0. pool)
  done;
  (* the queue is drained: settle the drain requesters *)
  List.iter
    (fun c ->
       if c.c_draining then
         send_line st c
           (Printf.sprintf "{\"status\":\"drained\",\"completed\":%d}"
              st.completed))
    st.clients;
  Pool.shutdown pool
