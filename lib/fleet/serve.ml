(** [eval serve]'s engine-agnostic core: a Unix-domain-socket daemon
    that accepts line-framed JSON requests, queues them into a
    {!Pool}, and streams each task's outcome back to the client that
    submitted it.

    Protocol — one JSON object per line, both directions:
    - [{"op":"submit","id":ID,…}] enqueues the whole request line as a
      pool task (the pool's runner owns the request schema).  Answered
      immediately with [{"id":ID,"status":"queued","pending":N}] — or
      [{"id":ID,"status":"rejected","error":…,"retry_after_s":N}] when
      the queue is at [max_queue] (load shedding, with a backoff hint
      sized to the current queue and completion latency) or the daemon
      is draining — and later with the runner's own response line
      (which must carry the id).  A request may carry
      ["idem":KEY] (an idempotency key; defaults to a hash of the
      whole request line) and ["deadline_s":SECS] (queue-wait budget:
      a request still queued when it runs out is answered
      [{"status":"expired"}] instead of executing).
    - [{"op":"ping"}] → [{"status":"ok","pending":N}] — liveness, also
      used by {!check_socket} to distinguish a live daemon from a
      stale socket file.
    - [{"op":"stats"}] → queue/completion counters.
    - [{"op":"drain"}] → [{"status":"draining","pending":N}] now, one
      [{"status":"drained","completed":N}] when the queue is empty;
      then the daemon closes everything, unlinks the socket and
      returns.  SIGINT/SIGTERM trigger the same cooperative drain.

    Durability — with [queue_journal] set, the daemon write-ahead
    journals every accepted request (keyed by its idempotency key,
    phase ["acc"], {e before} acking it) and every successful response
    (phase ["done"], {e before} the client sees it).  A daemon killed
    mid-stream warm-restarts from the journal: finished keys answer
    straight from the journal on resubmission (exactly-once graded
    outcomes per key), accepted-but-unfinished requests are re-queued
    before the socket opens.  The journal carries the caller's
    {!config.run_fingerprint}; reopening a journal written under a
    different fingerprint raises {!Journal_mismatch} unless [force]d,
    so a config change never silently replays stale outcomes. *)

let m_requests = Telemetry.Metrics.counter "serve.requests"
let m_rejected = Telemetry.Metrics.counter "serve.rejected"
let m_responses = Telemetry.Metrics.counter "serve.responses"
let m_dropped = Telemetry.Metrics.counter "serve.dropped_responses"
let m_clients = Telemetry.Metrics.counter "serve.clients"
let m_latency = Telemetry.Metrics.histogram "serve.latency_us"
let m_shed = Telemetry.Metrics.counter "serve.shed"
let m_deduped = Telemetry.Metrics.counter "serve.deduped"
let m_expired = Telemetry.Metrics.counter "serve.expired"
let m_recovered = Telemetry.Metrics.counter "serve.recovered"
let m_resets = Telemetry.Metrics.counter "serve.chaos_client_resets"

(** Protocol/build identity reported by [ping] and [health]. *)
let version = "eval-serve/2"

type config = {
  socket : string;
  max_queue : int;  (** submit backpressure: max queued (not running) *)
  accept_backlog : int;
  queue_journal : string option;
      (** write-ahead request/response journal — the durable queue *)
  run_fingerprint : string;
      (** stable hash of the serving configuration; guards the queue
          journal across restarts (unlike the per-instance [ping]
          fingerprint, which changes on every start) *)
  force : bool;
      (** reopen a fingerprint-mismatched queue journal anyway,
          treating its records as stale *)
  default_deadline : float option;
      (** queue-wait budget applied to requests that don't carry their
          own ["deadline_s"] *)
  chaos : Robust.Chaos.fleet_state option;
      (** socket-side fault injection ({!Robust.Chaos.Client_reset}) *)
}

let default_config ~socket =
  { socket; max_queue = 10_000; accept_backlog = 64; queue_journal = None;
    run_fingerprint = "eval-serve"; force = false; default_deadline = None;
    chaos = None }

(* ------------------------------------------------------------------ *)
(* Stale-socket detection                                              *)
(* ------------------------------------------------------------------ *)

exception Socket_in_use of string
    (** a live daemon answered on the socket *)

exception Stale_socket of string
    (** the path exists but nothing is listening (a previous daemon
        died without cleanup) *)

exception Journal_mismatch of {
  path : string;
  found : string;
  expected : string;
}
    (** the queue journal at [path] was written under a different run
        fingerprint — serving from it would replay outcomes produced
        by a different configuration *)

(** Probe [path] before binding: raises {!Socket_in_use} if a daemon
    is already serving there, {!Stale_socket} if the file exists but
    is dead — the caller gets a clear error either way instead of
    [EADDRINUSE]. *)
let check_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then raise (Socket_in_use path) else raise (Stale_socket path)
  end

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

type client = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_alive : bool;
  mutable c_draining : bool;  (** owes a final "drained" message *)
}

type state = {
  cfg : config;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  (* pool task tag -> submitting client (may be dead by completion) *)
  routes : (string, client) Hashtbl.t;
  queue_w : Robust.Journal.writer option;
  (* idempotency key -> journaled final response, replayed verbatim *)
  done_cache : (string, string) Hashtbl.t;
  (* idempotency key -> pool tag, while accepted-but-unfinished *)
  pending_idem : (string, string) Hashtbl.t;
  tag_idem : (string, string) Hashtbl.t;  (** pool tag -> idem key *)
  mutable next_tag : int;
  mutable draining : bool;
  mutable completed : int;
  mutable shed : int;
  mutable deduped : int;
  mutable expired : int;
  mutable recovered : int;
  started : float;  (** daemon start, for uptime *)
  fingerprint : string;  (** unique per daemon instance *)
}

let esc = Robust.Journal.json_escape

let drop_client st (c : client) =
  c.c_alive <- false;
  st.clients <- List.filter (fun x -> x != c) st.clients;
  (try Unix.close c.c_fd with Unix.Unix_error _ -> ())

let send_line st (c : client) line =
  if c.c_alive then begin
    match Pool.write_all c.c_fd (line ^ "\n") with
    | () -> Telemetry.Metrics.incr m_responses
    | exception Unix.Unix_error _ -> drop_client st c
  end
  else Telemetry.Metrics.incr m_dropped

let reject st c ~id msg =
  Telemetry.Metrics.incr m_rejected;
  send_line st c
    (Printf.sprintf "{\"id\":%s,\"status\":\"rejected\",\"error\":\"%s\"}"
       (match id with Some i -> "\"" ^ esc i ^ "\"" | None -> "null")
       (esc msg))

(* per-slot status as a JSON array: slot, liveness, in-flight task *)
let workers_json st =
  String.concat ","
    (List.map
       (fun (slot, alive, quarantined, task) ->
          Printf.sprintf
            "{\"slot\":%d,\"alive\":%b,\"quarantined\":%b,\"inflight\":%d%s}"
            slot alive quarantined
            (if task = None then 0 else 1)
            (match task with
             | Some k -> Printf.sprintf ",\"task\":\"%s\"" (esc k)
             | None -> ""))
       (Pool.worker_states st.pool))

let latency_ms q =
  float_of_int (Telemetry.Metrics.quantile m_latency q) /. 1e3

(* shedding backoff hint: how long the current queue would take to
   clear at the observed median completion latency *)
let retry_after_s st =
  let p50_us = Telemetry.Metrics.quantile m_latency 0.50 in
  let per_task = if p50_us <= 0 then 1.0 else float_of_int p50_us /. 1e6 in
  let workers = max 1 (Pool.alive_workers st.pool) in
  max 1
    (int_of_float
       (ceil (float_of_int (Pool.pending st.pool) *. per_task
              /. float_of_int workers)))

let status_of_payload line =
  let open Telemetry.Trace_check in
  match Option.bind (parse_opt line) (member "status") with
  | Some (Str s) -> Some s
  | _ -> None

(* the durable accept path, shared by live submits and warm-restart
   recovery (which must NOT re-journal its already-journaled records) *)
let enqueue st ?route ~journal ~idem line =
  let deadline =
    let open Telemetry.Trace_check in
    let explicit =
      match Option.bind (parse_opt line) (member "deadline_s") with
      | Some (Num f) when f > 0. -> Some f
      | _ -> None
    in
    match (explicit, st.cfg.default_deadline) with
    | Some f, _ | None, Some f -> Some (Unix.gettimeofday () +. f)
    | None, None -> None
  in
  if journal then
    (match st.queue_w with
     | Some w ->
         Robust.Journal.append w ~key:idem
           ~payload:
             (Printf.sprintf "{\"phase\":\"acc\",\"req\":\"%s\"}" (esc line))
     | None -> ());
  let tag = Printf.sprintf "r%d" st.next_tag in
  st.next_tag <- st.next_tag + 1;
  (match route with Some c -> Hashtbl.replace st.routes tag c | None -> ());
  Hashtbl.replace st.pending_idem idem tag;
  Hashtbl.replace st.tag_idem tag idem;
  Pool.submit st.pool ?deadline ~key:tag ~task:line ()

let handle_request st (c : client) line =
  Telemetry.Metrics.incr m_requests;
  let open Telemetry.Trace_check in
  match parse_opt line with
  | None -> reject st c ~id:None "request is not valid JSON"
  | Some j -> (
      let id =
        match member "id" j with Some (Str s) -> Some s | _ -> None
      in
      match member "op" j with
      | Some (Str "ping") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"pending\":%d,\"version\":\"%s\",\
                \"fingerprint\":\"%s\",\"uptime_s\":%.1f}"
               (Pool.pending st.pool) (esc version) (esc st.fingerprint)
               (Unix.gettimeofday () -. st.started))
      | Some (Str "stats") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"queued\":%d,\"inflight\":%d,\
                \"completed\":%d,\"clients\":%d,\"draining\":%b,\
                \"shed\":%d,\"deduped\":%d,\"expired\":%d,\
                \"recovered\":%d,\"workers\":[%s]}"
               (Pool.queued st.pool) (Pool.inflight st.pool) st.completed
               (List.length st.clients) st.draining st.shed st.deduped
               st.expired st.recovered (workers_json st))
      | Some (Str "health") ->
          send_line st c
            (Printf.sprintf
               "{\"status\":\"ok\",\"version\":\"%s\",\
                \"fingerprint\":\"%s\",\"run_fingerprint\":\"%s\",\
                \"uptime_s\":%.1f,\
                \"workers\":%d,\"workers_alive\":%d,\"quarantined\":%d,\
                \"queued\":%d,\
                \"inflight\":%d,\"completed\":%d,\"draining\":%b,\
                \"durable\":%b,\"shed\":%d,\"deduped\":%d,\"expired\":%d,\
                \"recovered\":%d,\
                \"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}}"
               (esc version) (esc st.fingerprint)
               (esc st.cfg.run_fingerprint)
               (Unix.gettimeofday () -. st.started)
               (List.length (Pool.worker_states st.pool))
               (Pool.alive_workers st.pool)
               (Pool.quarantined_workers st.pool) (Pool.queued st.pool)
               (Pool.inflight st.pool) st.completed st.draining
               (st.queue_w <> None) st.shed st.deduped st.expired
               st.recovered
               (latency_ms 0.50) (latency_ms 0.95) (latency_ms 0.99))
      | Some (Str "metrics") ->
          (* daemon registry + everything the workers have reported *)
          let snap =
            Telemetry.Snapshot.merge
              (Telemetry.Snapshot.capture ())
              (Pool.metrics_snapshot st.pool)
          in
          let prometheus =
            match member "format" j with
            | Some (Str "prometheus") -> true
            | _ -> false
          in
          if prometheus then
            send_line st c
              (Printf.sprintf
                 "{\"status\":\"ok\",\"format\":\"prometheus\",\
                  \"text\":\"%s\"}"
                 (esc (Telemetry.Snapshot.to_prometheus snap)))
          else
            send_line st c
              (Printf.sprintf "{\"status\":\"ok\",\"metrics\":%s}"
                 (Telemetry.Snapshot.to_json snap))
      | Some (Str "drain") ->
          st.draining <- true;
          c.c_draining <- true;
          send_line st c
            (Printf.sprintf "{\"status\":\"draining\",\"pending\":%d}"
               (Pool.pending st.pool))
      | Some (Str "submit") -> (
          let idem =
            match member "idem" j with
            | Some (Str s) -> s
            | _ -> Robust.Journal.fnv64_hex line
          in
          match Hashtbl.find_opt st.done_cache idem with
          | Some resp ->
              (* resubmission of a finished key: replay the journaled
                 response verbatim — the cell is never graded twice *)
              st.deduped <- st.deduped + 1;
              Telemetry.Metrics.incr m_deduped;
              send_line st c resp
          | None -> (
              match Hashtbl.find_opt st.pending_idem idem with
              | Some tag ->
                  (* already accepted (possibly before a crash, or by a
                     connection that died): re-route the eventual
                     response to this client *)
                  st.deduped <- st.deduped + 1;
                  Telemetry.Metrics.incr m_deduped;
                  Hashtbl.replace st.routes tag c;
                  send_line st c
                    (Printf.sprintf
                       "{\"id\":%s,\"status\":\"queued\",\"pending\":%d}"
                       (match id with
                        | Some i -> "\"" ^ esc i ^ "\""
                        | None -> "null")
                       (Pool.pending st.pool))
              | None ->
                  if st.draining then reject st c ~id "daemon is draining"
                  else if Pool.queued st.pool >= st.cfg.max_queue then begin
                    (* load shedding, with a backoff hint *)
                    st.shed <- st.shed + 1;
                    Telemetry.Metrics.incr m_shed;
                    Telemetry.Metrics.incr m_rejected;
                    send_line st c
                      (Printf.sprintf
                         "{\"id\":%s,\"status\":\"rejected\",\
                          \"error\":\"queue full (max %d)\",\
                          \"retry_after_s\":%d}"
                         (match id with
                          | Some i -> "\"" ^ esc i ^ "\""
                          | None -> "null")
                         st.cfg.max_queue (retry_after_s st))
                  end
                  else begin
                    enqueue st ~route:c ~journal:true ~idem line;
                    send_line st c
                      (Printf.sprintf
                         "{\"id\":%s,\"status\":\"queued\",\"pending\":%d}"
                         (match id with
                          | Some i -> "\"" ^ esc i ^ "\""
                          | None -> "null")
                         (Pool.pending st.pool))
                  end))
      | _ ->
          reject st c ~id
            "unknown op (submit, ping, stats, health, metrics, drain)")

let route_result st (r : Pool.result) =
  st.completed <- st.completed + 1;
  Telemetry.Metrics.observe m_latency
    (int_of_float ((r.r_done -. r.r_submitted) *. 1e6));
  let idem = Hashtbl.find_opt st.tag_idem r.r_key in
  Hashtbl.remove st.tag_idem r.r_key;
  (match idem with Some i -> Hashtbl.remove st.pending_idem i | None -> ());
  let id_json =
    match idem with Some i -> "\"" ^ esc i ^ "\"" | None -> "null"
  in
  let reply, final =
    match r.r_payload with
    | Ok payload ->
        (* runner-reported errors ("status":"error") are transient from
           the queue's point of view: not journaled, so a resubmission
           retries instead of replaying the failure forever *)
        (payload, status_of_payload payload <> Some "error")
    | Error Pool.Expired ->
        st.expired <- st.expired + 1;
        Telemetry.Metrics.incr m_expired;
        ( Printf.sprintf
            "{\"id\":%s,\"status\":\"expired\",\
             \"error\":\"deadline exceeded before execution\"}"
            id_json,
          false )
    | Error f ->
        ( Printf.sprintf "{\"id\":%s,\"status\":\"error\",\"error\":\"%s\"}"
            id_json
            (esc (Pool.failure_to_string f)),
          false )
  in
  (* exactly-once: journal the graded outcome under its idempotency
     key *before* any client can observe it *)
  (match (final, idem) with
   | true, Some i ->
       (match st.queue_w with
        | Some w ->
            Robust.Journal.append w ~key:i
              ~payload:
                (Printf.sprintf "{\"phase\":\"done\",\"resp\":\"%s\"}"
                   (esc reply))
        | None -> ());
       Hashtbl.replace st.done_cache i reply
   | _ -> ());
  match Hashtbl.find_opt st.routes r.r_key with
  | None -> Telemetry.Metrics.incr m_dropped
  | Some c -> (
      Hashtbl.remove st.routes r.r_key;
      (* chaos: reset the client's connection instead of replying —
         the outcome is already journaled, so the client's reconnect
         and resubmit must be answered from the journal *)
      match st.cfg.chaos with
      | Some cst
        when c.c_alive
             && Robust.Chaos.fleet_fires cst Robust.Chaos.Client_reset ->
          Telemetry.Metrics.incr m_resets;
          Telemetry.Log.warnf
            "serve(chaos): reset a client connection before replying";
          drop_client st c
      | _ -> send_line st c reply)

let pump_client st (c : client) =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_client st c
  | n ->
      Buffer.add_subbytes c.c_buf chunk 0 n;
      let data = Buffer.contents c.c_buf in
      let rec split from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear c.c_buf;
            Buffer.add_substring c.c_buf data from (String.length data - from)
        | Some i ->
            let line = String.sub data from (i - from) in
            if String.trim line <> "" then handle_request st c line;
            split (i + 1)
      in
      split 0
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> drop_client st c

(* load the queue journal (refusing a fingerprint mismatch unless
   forced) and split its last-wins records into finished responses and
   accepted-but-unfinished request lines *)
let load_queue_journal (cfg : config) =
  match cfg.queue_journal with
  | None -> (None, [], [])
  | Some path ->
      (match Robust.Journal.peek_fingerprint path with
       | Some found
         when (not (String.equal found cfg.run_fingerprint)) && not cfg.force
         ->
           raise
             (Journal_mismatch
                { path; found; expected = cfg.run_fingerprint })
       | _ -> ());
      let l = Robust.Journal.load ~fingerprint:cfg.run_fingerprint path in
      let done_ = ref [] and acc = ref [] in
      List.iter
        (fun (e : Robust.Journal.entry) ->
           let field name =
             match Telemetry.Trace_check.member name e.cell with
             | Some (Telemetry.Trace_check.Str s) -> Some s
             | _ -> None
           in
           match (field "phase", field "resp", field "req") with
           | Some "done", Some resp, _ -> done_ := (e.key, resp) :: !done_
           | Some "acc", _, Some req -> acc := (e.key, req) :: !acc
           | _ -> Robust.Journal.count_undecodable ())
        l.entries;
      let w =
        Robust.Journal.open_writer ~fingerprint:cfg.run_fingerprint
          ~seq:l.next_seq path
      in
      (Some w, List.rev !done_, List.rev !acc)

(** Run the daemon until a drain request (or SIGINT/SIGTERM) empties
    the queue.  Binds [cfg.socket], refusing a live or stale existing
    socket (see {!check_socket}); unlinks it on the way out.  The pool
    is polled from the same event loop — no threads anywhere. *)
let run (cfg : config) ~(pool : Pool.t) : unit =
  let queue_w, done0, recovered0 = load_queue_journal cfg in
  check_socket cfg.socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd cfg.accept_backlog;
  let started = Unix.gettimeofday () in
  let st =
    { cfg; pool; listen_fd; clients = []; routes = Hashtbl.create 64;
      queue_w; done_cache = Hashtbl.create 64;
      pending_idem = Hashtbl.create 64; tag_idem = Hashtbl.create 64;
      next_tag = 0; draining = false; completed = 0; shed = 0; deduped = 0;
      expired = 0; recovered = 0; started;
      fingerprint =
        Robust.Journal.fingerprint
          [ version; string_of_int (Unix.getpid ());
            Printf.sprintf "%.6f" started ] }
  in
  List.iter (fun (k, resp) -> Hashtbl.replace st.done_cache k resp) done0;
  (* warm restart: accepted-but-unfinished requests go back on the
     queue before the socket opens; their submitters are gone, but the
     graded outcomes will be journaled and answer resubmissions *)
  List.iter
    (fun (idem, req) ->
       if not (Hashtbl.mem st.done_cache idem) then begin
         st.recovered <- st.recovered + 1;
         Telemetry.Metrics.incr m_recovered;
         enqueue st ~journal:false ~idem req
       end)
    recovered0;
  if st.recovered > 0 || Hashtbl.length st.done_cache > 0 then
    Telemetry.Log.warnf
      "serve: warm restart from %s — %d finished key(s) cached, %d \
       unfinished request(s) re-queued"
      (Option.value ~default:"-" cfg.queue_journal)
      (Hashtbl.length st.done_cache)
      st.recovered;
  (* respawned workers must not hold the daemon's sockets open *)
  Pool.set_at_fork pool (fun () ->
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients);
  let drain_signal _ = st.draining <- true in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle drain_signal) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle drain_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term;
      (match st.queue_w with
       | Some w -> (try Robust.Journal.close_writer w with _ -> ())
       | None -> ());
      List.iter
        (fun c ->
           try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        st.clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket with Sys_error _ -> ()))
  @@ fun () ->
  let finished () = st.draining && Pool.pending pool = 0 in
  while not (finished ()) do
    let rd =
      (listen_fd :: List.map (fun c -> c.c_fd) st.clients) @ Pool.fds pool
    in
    (match Unix.select rd [] [] 0.2 with
     | readable, _, _ ->
         if List.mem listen_fd readable then begin
           match Unix.accept listen_fd with
           | fd, _ ->
               Unix.set_nonblock fd;
               Telemetry.Metrics.incr m_clients;
               st.clients <-
                 { c_fd = fd; c_buf = Buffer.create 256; c_alive = true;
                   c_draining = false }
                 :: st.clients
           | exception Unix.Unix_error _ -> ()
         end;
         List.iter
           (fun c -> if List.mem c.c_fd readable then pump_client st c)
           st.clients
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter (route_result st) (Pool.poll ~timeout:0. pool)
  done;
  (* the queue is drained: settle the drain requesters *)
  List.iter
    (fun c ->
       if c.c_draining then
         send_line st c
           (Printf.sprintf "{\"status\":\"drained\",\"completed\":%d}"
              st.completed))
    st.clients;
  Pool.shutdown pool
