(** Resource budgets for one evaluation cell.

    Every field is an optional cap; [None] means the resource is
    unmetered.  Budgets are plain data — the mutable accounting lives
    in {!Meter} — so they can be scaled for retry escalation, printed
    in reports, and parsed off the [eval.exe --budget] flag without
    touching any engine state. *)

type t = {
  vm_steps : int option;  (** concrete VM instructions executed *)
  lifted_insns : int option;  (** instructions lifted to IR *)
  solver_conflicts : int option;  (** CDCL conflicts across all checks *)
  expr_nodes : int option;  (** interned expression nodes allocated *)
  taint_events : int option;  (** trace events pushed through taint *)
  wall_us : float option;  (** per-cell deadline, microseconds *)
}

let unlimited =
  { vm_steps = None; lifted_insns = None; solver_conflicts = None;
    expr_nodes = None; taint_events = None; wall_us = None }

let is_unlimited b = b = unlimited

(** [scale factor b] multiplies every finite cap by [factor] (used for
    retry escalation; caps are clamped to at least 1). *)
let scale factor b =
  let s = Option.map (fun n -> max 1 (int_of_float (float_of_int n *. factor))) in
  { vm_steps = s b.vm_steps;
    lifted_insns = s b.lifted_insns;
    solver_conflicts = s b.solver_conflicts;
    expr_nodes = s b.expr_nodes;
    taint_events = s b.taint_events;
    wall_us = Option.map (fun w -> w *. factor) b.wall_us }

let to_string b =
  let f k = function
    | None -> []
    | Some v -> [ Printf.sprintf "%s=%d" k v ]
  in
  let fields =
    f "vm" b.vm_steps @ f "lift" b.lifted_insns @ f "smt" b.solver_conflicts
    @ f "nodes" b.expr_nodes @ f "taint" b.taint_events
    @ (match b.wall_us with
       | None -> []
       | Some w -> [ Printf.sprintf "wall=%g" (w /. 1e6) ])
  in
  if fields = [] then "unlimited" else String.concat "," fields

(** Parse a budget spec of the form ["vm=20000,smt=500,wall=1.5"].
    Keys: [vm], [lift], [smt], [nodes], [taint] (integer caps) and
    [wall] (seconds, float).  Unknown keys or malformed values yield
    [Error]. *)
let parse spec =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok b -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "budget field %S lacks '='" field)
        | Some i ->
            let key = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let int_cap set =
              match int_of_string_opt v with
              | Some n when n >= 0 -> Ok (set (Some n))
              | _ -> Error (Printf.sprintf "budget %s=%S: not a count" key v)
            in
            (match key with
             | "vm" -> int_cap (fun c -> { b with vm_steps = c })
             | "lift" -> int_cap (fun c -> { b with lifted_insns = c })
             | "smt" -> int_cap (fun c -> { b with solver_conflicts = c })
             | "nodes" -> int_cap (fun c -> { b with expr_nodes = c })
             | "taint" -> int_cap (fun c -> { b with taint_events = c })
             | "wall" -> (
                 match float_of_string_opt v with
                 | Some s when s > 0. -> Ok { b with wall_us = Some (s *. 1e6) }
                 | _ ->
                     Error
                       (Printf.sprintf "budget wall=%S: not a duration" v))
             | _ -> Error (Printf.sprintf "unknown budget key %S" key)))
  in
  if spec = "" || spec = "unlimited" then Ok unlimited
  else
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.fold_left parse_field (Ok unlimited)
