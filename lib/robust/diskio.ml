(** Durable-IO layer: the one audited path every on-disk artifact
    goes through — append-only record files (cell journals, queue
    journals, span and profile shards), atomic tmp+rename publication
    (trace stores, merged artifacts) and whole-file reads.

    Before this module the repo carried five independent copies of
    torn-tail healing and tmp+rename.  Centralizing them buys one
    place to (a) apply a sync policy, (b) count bytes and operations,
    and (c) inject the {e storage} fault class: a pluggable hook
    consulted at every append, sync and rename turns seeded
    [Chaos.disk_state] decisions into ENOSPC, short writes, failed
    renames, flipped bits and lying fsyncs — the faults a long
    evaluation campaign's partial results actually meet.

    Fault semantics, as a caller observes them:
    - [Enospc]: {!Full} raised, nothing written — callers shed or
      degrade (the journal stops journaling, the trace store falls
      back to memory backing).
    - [Short_write]: a prefix of the record lands (torn tail), then
      {!Full} — the next append on the same handle heals with a
      newline first, exactly like a crashed-writer reopen.
    - [Bit_flip]: one byte of the record is flipped and the write
      "succeeds" — silent corruption, caught by checksums at load and
      repaired by [eval fsck].
    - [Torn_fsync]: the sync "succeeds" but the tail of the record it
      claimed durable is dropped from the file — the durability lie,
      healed over on the next append so damage stays record-local.
    - [Failed_rename]: the tmp file is written but the publishing
      rename raises [Sys_error] — readers keep seeing the old bytes,
      never a half-published file. *)

(* ------------------------------------------------------------------ *)
(* FNV-1a 64-bit — the checksum every durable format shares.  It      *)
(* lives here (not in Journal) so the store, the wire protocol and    *)
(* fsck all hash through the IO layer without a dependency cycle.     *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 (s : string) : int64 =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h fnv_prime)
    s;
  !h

let fnv64_hex s = Printf.sprintf "%016Lx" (fnv64 s)

(* ------------------------------------------------------------------ *)
(* Fault hook                                                          *)
(* ------------------------------------------------------------------ *)

(** The disk fault class.  Constructors are re-exported (and seeded)
    by [Chaos.disk_point]; metric accounting lives with the chaos
    state so [robust.disk_injected.*] mirrors the compute and fleet
    fault classes. *)
type fault = Enospc | Short_write | Failed_rename | Bit_flip | Torn_fsync

let fault_name = function
  | Enospc -> "enospc"
  | Short_write -> "short_write"
  | Failed_rename -> "failed_rename"
  | Bit_flip -> "bit_flip"
  | Torn_fsync -> "torn_fsync"

(** Where a probe sits: one hook consultation per record append, per
    claimed-durable sync, and per publishing rename. *)
type op = Append | Sync | Rename

(** ENOSPC-class failure: the device refused the bytes.  The payload
    is a one-line human-readable description including the path. *)
exception Full of string

let () =
  Printexc.register_printer (function
    | Full msg -> Some (Printf.sprintf "Robust.Diskio.Full(%s)" msg)
    | _ -> None)

type hook = op:op -> path:string -> fault option

(* disabled by default: the happy path costs one ref read per op *)
let fault_hook : hook option ref = ref None

(** Install (or clear, with [None]) the ambient fault hook.  Every
    append/sync/rename in the process consults it — including the
    forked fleet workers, which inherit it across [fork]. *)
let set_fault_hook h = fault_hook := h

let probe ~op ~path =
  match !fault_hook with None -> None | Some h -> h ~op ~path

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_appends = Telemetry.Metrics.counter "diskio.appends"
let m_bytes = Telemetry.Metrics.counter "diskio.bytes"
let m_syncs = Telemetry.Metrics.counter "diskio.syncs"
let m_atomic = Telemetry.Metrics.counter "diskio.atomic_writes"
let m_renames = Telemetry.Metrics.counter "diskio.renames"
let m_reads = Telemetry.Metrics.counter "diskio.reads"

(* ------------------------------------------------------------------ *)
(* Append handles                                                      *)
(* ------------------------------------------------------------------ *)

(** How much durability an append buys before it returns:
    [`None] leaves bytes in the channel buffer (callers flush on
    close), [`Flush] pushes them to the kernel (survives the process
    dying), [`Fsync] additionally fsyncs (survives the machine
    dying).  Journals default to [`Flush] — the historical
    behavior. *)
type sync_policy = [ `None | `Flush | `Fsync ]

type handle = {
  h_oc : out_channel;
  h_path : string;
  h_sync : sync_policy;
  mutable h_torn : bool;
      (* an injected short write / torn fsync left the file without a
         trailing newline; heal before the next append so the damage
         stays confined to one record *)
}

let handle_path h = h.h_path

(* a well-formed record file ends in '\n'; anything else is the torn
   tail of a crashed append — terminate it so new records never fuse
   with the torn bytes.  (This is the healing formerly copied into
   the journal writer, the span shards and the profile sidecar.) *)
let ends_torn path =
  Sys.file_exists path
  && (let ic = open_in_bin path in
      let size = in_channel_length ic in
      let torn =
        size > 0
        && (seek_in ic (size - 1);
            input_char ic <> '\n')
      in
      close_in ic;
      torn)

(** Open [path] for record appends, healing a torn tail first. *)
let open_append ?(sync : sync_policy = `Flush) path : handle =
  let torn = ends_torn path in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  if torn then output_char oc '\n';
  { h_oc = oc; h_path = path; h_sync = sync; h_torn = false }

let flip_byte s =
  let i = String.length s / 2 in
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  Bytes.to_string b

(* apply the sync policy; a firing [Torn_fsync] probe truncates the
   tail of the [wrote]-byte record the sync just claimed durable *)
let do_sync h ~wrote =
  match h.h_sync with
  | `None -> ()
  | (`Flush | `Fsync) as s ->
      flush h.h_oc;
      Telemetry.Metrics.incr m_syncs;
      let fd = Unix.descr_of_out_channel h.h_oc in
      (match probe ~op:Sync ~path:h.h_path with
       | Some Torn_fsync when wrote > 0 ->
           let size = (Unix.fstat fd).Unix.st_size in
           let cut = min size ((wrote / 2) + 1) in
           Unix.ftruncate fd (size - cut);
           h.h_torn <- true
       | _ -> ());
      if s = `Fsync then Unix.fsync fd

(** Append one complete record (the caller includes any trailing
    newline) and apply the handle's sync policy.  Raises {!Full} on
    an (injected) ENOSPC or short write. *)
let append h s =
  if h.h_torn then begin
    output_char h.h_oc '\n';
    h.h_torn <- false
  end;
  (match probe ~op:Append ~path:h.h_path with
   | Some Enospc ->
       raise (Full (Printf.sprintf "%s: no space left on device" h.h_path))
   | Some Short_write ->
       output_string h.h_oc (String.sub s 0 (String.length s / 2));
       flush h.h_oc;
       h.h_torn <- true;
       raise
         (Full (Printf.sprintf "%s: short write (device full)" h.h_path))
   | Some Bit_flip -> output_string h.h_oc (flip_byte s)
   | _ -> output_string h.h_oc s);
  Telemetry.Metrics.incr m_appends;
  Telemetry.Metrics.add m_bytes (String.length s);
  do_sync h ~wrote:(String.length s)

(** Test helper: write [s] verbatim (no newline, no fault probes) and
    flush — simulates a crash between [output] and the terminator. *)
let append_torn h s =
  output_string h.h_oc s;
  flush h.h_oc

let close h =
  (try do_sync h ~wrote:0 with Full _ -> ());
  close_out h.h_oc

(* ------------------------------------------------------------------ *)
(* Atomic publication and reads                                        *)
(* ------------------------------------------------------------------ *)

(** Rename [src] over [dst] (a publishing rename).  A firing
    [Failed_rename] probe leaves [src] in place and raises
    [Sys_error] — exactly what a remote filesystem does. *)
let rename ~src ~dst =
  (match probe ~op:Rename ~path:dst with
   | Some Failed_rename ->
       raise
         (Sys_error
            (Printf.sprintf "%s -> %s: rename failed (injected)" src dst))
   | _ -> ());
  Sys.rename src dst;
  Telemetry.Metrics.incr m_renames

(** Write [contents] under [path] via tmp+rename, fsync before the
    publish: a crash (or fault) can leave a stale [path ^ ".tmp"] but
    never a torn file under the final name.  Raises {!Full} on
    ENOSPC/short write and [Sys_error] on a failed rename. *)
let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  (match probe ~op:Append ~path with
   | Some Enospc ->
       raise (Full (Printf.sprintf "%s: no space left on device" path))
   | Some Short_write ->
       let oc = open_out_bin tmp in
       output_string oc
         (String.sub contents 0 (String.length contents / 2));
       close_out oc;
       raise (Full (Printf.sprintf "%s: short write (device full)" path))
   | fault ->
       let contents =
         match fault with
         | Some Bit_flip when String.length contents > 0 ->
             flip_byte contents
         | _ -> contents
       in
       let oc = open_out_bin tmp in
       output_string oc contents;
       flush oc;
       let fd = Unix.descr_of_out_channel oc in
       (match probe ~op:Sync ~path with
        | Some Torn_fsync when String.length contents > 0 ->
            let size = (Unix.fstat fd).Unix.st_size in
            Unix.ftruncate fd (size - min size 8)
        | _ -> ());
       Unix.fsync fd;
       close_out oc);
  rename ~src:tmp ~dst:path;
  Telemetry.Metrics.incr m_atomic;
  Telemetry.Metrics.add m_bytes (String.length contents)

(** The whole file as a string ([Sys_error] if unreadable). *)
let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let s = really_input_string ic (in_channel_length ic) in
       Telemetry.Metrics.incr m_reads;
       s)

(** [read_checksummed path] — the file plus its FNV-1a fingerprint,
    for callers that compare artifact bytes (the disk soak, fsck's
    report). *)
let read_checksummed path =
  let s = read_all path in
  (s, fnv64_hex s)
