(** Mutable resource accounting against a {!Budget.t}.

    A meter is created per cell attempt by the supervisor and carried
    (as an [option]) in every engine state that does metered work:
    [Vm.Machine], [Smt.Session], [Concolic.State].  Layers with no
    state record flowing through them — the lifter, the taint loop —
    read the ambient meter installed by {!with_ambient} instead, so a
    budget governs the whole cell without threading a parameter
    through every call site.

    Charging past a cap raises {!Exhausted} naming the resource that
    tripped; {!checkpoint} additionally polls the wall-clock deadline
    and the cooperative cancellation flag.  All charge paths are a
    single [option] match when no meter is installed. *)

type resource =
  | Vm_steps
  | Lifted_insns
  | Solver_conflicts
  | Expr_nodes
  | Taint_events
  | Deadline
  | Cancelled

let all_resources =
  [ Vm_steps; Lifted_insns; Solver_conflicts; Expr_nodes; Taint_events;
    Deadline; Cancelled ]

let resource_name = function
  | Vm_steps -> "vm_steps"
  | Lifted_insns -> "lifted_insns"
  | Solver_conflicts -> "solver_conflicts"
  | Expr_nodes -> "expr_nodes"
  | Taint_events -> "taint_events"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

(** Inverse of {!resource_name} (journal decoding). *)
let resource_of_name = function
  | "vm_steps" -> Some Vm_steps
  | "lifted_insns" -> Some Lifted_insns
  | "solver_conflicts" -> Some Solver_conflicts
  | "expr_nodes" -> Some Expr_nodes
  | "taint_events" -> Some Taint_events
  | "deadline" -> Some Deadline
  | "cancelled" -> Some Cancelled
  | _ -> None

(** A budget tripped: [resource] names which cap, [limit] its value,
    [spent] the count that crossed it (0/0 for deadline and
    cancellation, which are conditions rather than counters). *)
exception Exhausted of { resource : resource; limit : int; spent : int }

let () =
  Printexc.register_printer (function
    | Exhausted { resource; limit; spent } ->
        Some
          (Printf.sprintf "Robust.Meter.Exhausted(%s, %d/%d)"
             (resource_name resource) spent limit)
    | _ -> None)

type t = {
  budget : Budget.t;
  mutable vm_steps : int;
  mutable lifted_insns : int;
  mutable solver_conflicts : int;
  mutable expr_nodes : int;
  mutable taint_events : int;
  deadline_us : float option;  (** absolute monotonic deadline *)
  mutable cancelled : bool;
  chaos : Chaos.state option;
}

let create ?chaos budget =
  { budget; vm_steps = 0; lifted_insns = 0; solver_conflicts = 0;
    expr_nodes = 0; taint_events = 0;
    deadline_us =
      Option.map (fun w -> Telemetry.clock_us () +. w) budget.Budget.wall_us;
    cancelled = false; chaos }

let m_exhausted =
  List.map
    (fun r -> (r, Telemetry.Metrics.counter ("robust.exhausted." ^ resource_name r)))
    all_resources

let exhaust resource ~limit ~spent =
  Telemetry.Metrics.incr (List.assq resource m_exhausted);
  raise (Exhausted { resource; limit; spent })

(** [cancel t] requests cooperative cancellation; the next
    {!checkpoint} raises [Exhausted Cancelled]. *)
let cancel t = t.cancelled <- true

let checkpoint t =
  if t.cancelled then exhaust Cancelled ~limit:0 ~spent:0;
  match t.deadline_us with
  | Some d when Telemetry.clock_us () > d ->
      exhaust Deadline ~limit:0 ~spent:0
  | _ -> ()

(* Counter charges trip their own cap eagerly; the deadline and the
   cancellation flag are only polled every [mask+1] charges so hot
   loops do not pay a clock read per instruction. *)
let charged t resource spent cap mask =
  (match cap with
   | Some limit when spent > limit -> exhaust resource ~limit ~spent
   | _ -> ());
  if spent land mask = 0 then checkpoint t

let charge_vm_steps t n =
  t.vm_steps <- t.vm_steps + n;
  charged t Vm_steps t.vm_steps t.budget.Budget.vm_steps 0xFFF

let charge_lifted_insns t n =
  t.lifted_insns <- t.lifted_insns + n;
  charged t Lifted_insns t.lifted_insns t.budget.Budget.lifted_insns 0xFF

let charge_solver_conflicts t n =
  t.solver_conflicts <- t.solver_conflicts + n;
  charged t Solver_conflicts t.solver_conflicts
    t.budget.Budget.solver_conflicts 0xFF

let charge_expr_nodes t n =
  t.expr_nodes <- t.expr_nodes + n;
  charged t Expr_nodes t.expr_nodes t.budget.Budget.expr_nodes 0xFFF

let charge_taint_events t n =
  t.taint_events <- t.taint_events + n;
  charged t Taint_events t.taint_events t.budget.Budget.taint_events 0xFFF

(** [probe t point] runs a chaos probe: a no-op unless the meter
    carries a chaos state whose plan fires at this hit.  A firing
    {!Chaos.Cancellation} sets the cancelled flag (surfacing as a
    graded-[P] [Exhausted Cancelled] at the next checkpoint); every
    other point raises {!Chaos.Injected} on the spot. *)
let probe t point =
  match t.chaos with
  | None -> ()
  | Some st -> (
      match Chaos.fires st point with
      | None -> ()
      | Some hit -> (
          match point with
          | Chaos.Cancellation -> t.cancelled <- true
          | point -> raise (Chaos.Injected { point; hit })))

(* ---- ambient meter ---- *)

let current : t option ref = ref None

let ambient () = !current

(** [with_ambient m f] installs [m] as the ambient meter for the
    dynamic extent of [f] (restored even on exceptions). *)
let with_ambient m f =
  let saved = !current in
  current := Some m;
  Fun.protect ~finally:(fun () -> current := saved) f

(** Pick an explicitly passed meter if any, else the ambient one —
    the idiom used by [create ?meter] constructors in other layers. *)
let default m = match m with Some _ -> m | None -> ambient ()

(* Convenience entry points for layers that carry no state record.
   Each is one ref read plus an option match when no meter is
   installed. *)

let lift_tick () =
  match !current with
  | None -> ()
  | Some m ->
      charge_lifted_insns m 1;
      probe m Chaos.Lifter_unmodeled

let checkpoint_ambient () =
  match !current with None -> () | Some m -> checkpoint m
