(** Resource governance and fault tolerance.

    {!Budget} describes per-cell resource caps, {!Meter} does the
    mutable accounting and raises {!Meter.Exhausted} at a tripped
    cap, and {!Chaos} derives deterministic fault-injection plans
    from a seed.  The cell supervisor that consumes these lives in
    [Engines.Supervisor] — this library deliberately depends only on
    [telemetry] so every layer below the engines can charge it. *)

module Budget = Budget
module Chaos = Chaos
module Meter = Meter
module Diskio = Diskio
module Journal = Journal

exception Exhausted = Meter.Exhausted
exception Injected = Chaos.Injected

(** [is_fault e] — is [e] one of the typed robust exceptions (as
    opposed to an unexpected engine crash)?  Used by engine-level
    catch-alls to re-raise instead of swallowing. *)
let is_fault = function
  | Meter.Exhausted _ | Chaos.Injected _ -> true
  | _ -> false
