(** Seeded fault injection.

    A chaos {!plan} is derived deterministically from a 64-bit seed: a
    small set of arms, each naming a probe {!point} and the hit count
    at which the fault fires.  Probe points are placed at the spots
    the paper's abnormal-exit taxonomy blames for real-tool deaths —
    the solver, the lifter, allocation, and external cancellation.

    The same seed always yields the same plan, and because every probe
    site is on a deterministic execution path, the same (seed, cell)
    pair always fires the same faults.  That property is what lets the
    soak test compare chaos runs against a clean baseline cell by
    cell. *)

type point =
  | Solver_timeout  (** fired entering [Smt.Session.check] *)
  | Lifter_unmodeled  (** fired in [Ir.Lifter.lift] *)
  | Alloc_failure  (** fired when a session interns a fresh node *)
  | Cancellation  (** sets the meter's cancelled flag (graded [P]) *)

let all_points = [ Solver_timeout; Lifter_unmodeled; Alloc_failure; Cancellation ]

let point_index = function
  | Solver_timeout -> 0
  | Lifter_unmodeled -> 1
  | Alloc_failure -> 2
  | Cancellation -> 3

let point_name = function
  | Solver_timeout -> "solver_timeout"
  | Lifter_unmodeled -> "lifter_unmodeled"
  | Alloc_failure -> "alloc_failure"
  | Cancellation -> "cancellation"

(** Inverse of {!point_name} (journal decoding). *)
let point_of_name = function
  | "solver_timeout" -> Some Solver_timeout
  | "lifter_unmodeled" -> Some Lifter_unmodeled
  | "alloc_failure" -> Some Alloc_failure
  | "cancellation" -> Some Cancellation
  | _ -> None

(** Raised at a firing probe (except {!Cancellation}, which raises
    through {!Meter} as an [Exhausted Cancelled] at the next
    checkpoint instead — a cancelled run is a partial result, not a
    crash). *)
exception Injected of { point : point; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { point; hit } ->
        Some
          (Printf.sprintf "Robust.Chaos.Injected(%s, hit %d)"
             (point_name point) hit)
    | _ -> None)

type arm = { point : point; at_hit : int }

type plan = { seed : int64; arms : arm list }

(* ---- SplitMix64: tiny, seed-pure, no dependence on Random ---- *)

let mix state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_below state n =
  let r = Int64.to_int (Int64.logand (mix state) 0x3FFFFFFFFFFFFFFFL) in
  r mod n

(* Hit windows per point, sized to the hit rates a Table II cell
   actually produces: one or two solver checks, hundreds of lifted
   instructions, thousands of interned nodes.  Arms landing past a
   cell's actual hit count simply never fire — the soak counts those
   cells as clean and checks them against the baseline. *)
let hit_window = function
  | Solver_timeout -> 4
  | Lifter_unmodeled -> 400
  | Alloc_failure -> 2000
  | Cancellation -> 4

(** [plan_of_seed seed] derives a deterministic plan of 1–3 arms. *)
let plan_of_seed ?(max_arms = 3) seed =
  let state = ref seed in
  let n_arms = 1 + rand_below state max_arms in
  let arms =
    List.init n_arms (fun _ ->
        let point = List.nth all_points (rand_below state 4) in
        { point; at_hit = 1 + rand_below state (hit_window point) })
  in
  { seed; arms }

let pp_plan ppf plan =
  Format.fprintf ppf "seed=0x%Lx:[%s]" plan.seed
    (String.concat ";"
       (List.map
          (fun a -> Printf.sprintf "%s@%d" (point_name a.point) a.at_hit)
          plan.arms))

(* ---- per-attempt probe state ---- *)

type state = {
  plan : plan;
  hits : int array;  (** probe hits so far, indexed by {!point_index} *)
  mutable fired : (point * int) list;  (** faults fired, newest first *)
}

let start plan = { plan; hits = Array.make 4 0; fired = [] }

let m_injected =
  List.map
    (fun p -> (point_index p, Telemetry.Metrics.counter ("robust.injected." ^ point_name p)))
    all_points

(** [fires st point] counts one probe hit and returns [Some hit] when
    the plan injects a fault at this exact hit of this point. *)
let fires st point =
  let i = point_index point in
  st.hits.(i) <- st.hits.(i) + 1;
  let hit = st.hits.(i) in
  if List.exists (fun a -> a.point = point && a.at_hit = hit) st.plan.arms
  then begin
    st.fired <- (point, hit) :: st.fired;
    Telemetry.Metrics.incr (List.assoc i m_injected);
    Some hit
  end
  else None

(* ------------------------------------------------------------------ *)
(* Fleet fault class: faults at the IPC boundary                       *)
(* ------------------------------------------------------------------ *)

(** Fault sites one layer up from {!point}: not inside a cell but on
    the pipes and sockets that carry cells between processes.  The
    probe discipline is the same — the fleet master and the serve
    daemon consult {!fleet_fires} at every dispatch write, reply read
    and response send, and the seeded state decides which probes turn
    into faults. *)
type fleet_point =
  | Corrupt_dispatch  (** flip a byte in a dispatch frame on the pipe *)
  | Corrupt_reply  (** flip a byte in a worker reply frame *)
  | Drop_reply  (** lose a reply frame entirely (worker looks wedged) *)
  | Delay_reply  (** stall a reply frame briefly before processing *)
  | Worker_stall  (** wedge the worker past the wall watchdog *)
  | Client_reset  (** close a served client's connection mid-reply *)

let all_fleet_points =
  [ Corrupt_dispatch; Corrupt_reply; Drop_reply; Delay_reply; Worker_stall;
    Client_reset ]

let fleet_point_index = function
  | Corrupt_dispatch -> 0
  | Corrupt_reply -> 1
  | Drop_reply -> 2
  | Delay_reply -> 3
  | Worker_stall -> 4
  | Client_reset -> 5

let fleet_point_name = function
  | Corrupt_dispatch -> "corrupt_dispatch"
  | Corrupt_reply -> "corrupt_reply"
  | Drop_reply -> "drop_reply"
  | Delay_reply -> "delay_reply"
  | Worker_stall -> "worker_stall"
  | Client_reset -> "client_reset"

(** How a {!fleet_state} decides whether a probe fires:
    - [Arms]: fire at exactly the given hit counts of each point —
      deterministic placement for unit tests ("corrupt the first
      reply, nothing else").
    - [Rate]: per-probe Bernoulli draw at the given rate over the
      enabled points, from a seed-pure stream — the soak/bench mode,
      where fault {e placement} may vary with scheduling but the run
      is still reproducible for a fixed seed and message order. *)
type fleet_mode =
  | Arms of (fleet_point * int) list
  | Rate of { rate : float; points : fleet_point list }

type fleet_state = {
  fs_mode : fleet_mode;
  fs_rngs : int64 ref array;
      (** one independent SplitMix stream per point, so probes of one
          point never perturb another point's draws *)
  fs_hits : int array;
  fs_fired : int array;
}

let fleet_state ~seed mode =
  let n = List.length all_fleet_points in
  { fs_mode = mode;
    fs_rngs =
      Array.init n (fun i ->
          ref (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L
                                 (Int64.of_int (i + 1)))));
    fs_hits = Array.make n 0;
    fs_fired = Array.make n 0 }

let m_fleet_injected =
  List.map
    (fun p ->
       ( fleet_point_index p,
         Telemetry.Metrics.counter
           ("robust.fleet_injected." ^ fleet_point_name p) ))
    all_fleet_points

(* a 53-bit uniform draw in [0,1) from the point's own stream *)
let uniform (rng : int64 ref) =
  Int64.to_float (Int64.logand (mix rng) 0x1FFFFFFFFFFFFFL)
  /. 9007199254740992.0

(** [fleet_fires st point] counts one probe hit of [point] and reports
    whether the fault fires there. *)
let fleet_fires st point =
  let i = fleet_point_index point in
  st.fs_hits.(i) <- st.fs_hits.(i) + 1;
  let fire =
    match st.fs_mode with
    | Arms arms -> List.mem (point, st.fs_hits.(i)) arms
    | Rate { rate; points } ->
        rate > 0. && List.mem point points && uniform st.fs_rngs.(i) < rate
  in
  if fire then begin
    st.fs_fired.(i) <- st.fs_fired.(i) + 1;
    Telemetry.Metrics.incr (List.assoc i m_fleet_injected)
  end;
  fire

(** Per-point fired counts so far (non-zero entries only). *)
let fleet_fired st =
  List.filter_map
    (fun p ->
       let n = st.fs_fired.(fleet_point_index p) in
       if n > 0 then Some (p, n) else None)
    all_fleet_points

(* ------------------------------------------------------------------ *)
(* Disk fault class: faults under the durable-IO layer                 *)
(* ------------------------------------------------------------------ *)

(** The storage fault class, one layer below {!fleet_point}: not the
    pipes between processes but the bytes under the journals, stores
    and shards.  {!Diskio} consults an installed hook at every
    append, sync and rename; this state turns those probes into
    seeded faults with the same [Arms]/[Rate] discipline as the
    fleet class.  Constructors are {!Diskio.fault}'s, re-exported. *)
type disk_point = Diskio.fault =
  | Enospc  (** the append raises {!Diskio.Full}; nothing lands *)
  | Short_write  (** a prefix lands (torn tail), then {!Diskio.Full} *)
  | Failed_rename  (** the publishing rename raises [Sys_error] *)
  | Bit_flip  (** one byte flipped silently; checksums catch it *)
  | Torn_fsync  (** the synced record's tail is silently dropped *)

let all_disk_points =
  [ Enospc; Short_write; Failed_rename; Bit_flip; Torn_fsync ]

let disk_point_index = function
  | Enospc -> 0
  | Short_write -> 1
  | Failed_rename -> 2
  | Bit_flip -> 3
  | Torn_fsync -> 4

let disk_point_name = Diskio.fault_name

let disk_point_of_name = function
  | "enospc" -> Some Enospc
  | "short_write" -> Some Short_write
  | "failed_rename" -> Some Failed_rename
  | "bit_flip" -> Some Bit_flip
  | "torn_fsync" -> Some Torn_fsync
  | _ -> None

(** Same two firing disciplines as {!fleet_mode}: [Disk_arms] places
    faults at exact probe hits (unit tests), [Disk_rate] draws each
    probe Bernoulli from a seed-pure per-point stream (soak/bench). *)
type disk_mode =
  | Disk_arms of (disk_point * int) list
  | Disk_rate of { rate : float; points : disk_point list }

type disk_state = {
  ds_mode : disk_mode;
  ds_rngs : int64 ref array;
  ds_hits : int array;
  ds_fired : int array;
}

let disk_state ~seed mode =
  let n = List.length all_disk_points in
  { ds_mode = mode;
    ds_rngs =
      Array.init n (fun i ->
          ref (Int64.add seed (Int64.mul 0xBF58476D1CE4E5B9L
                                 (Int64.of_int (i + 1)))));
    ds_hits = Array.make n 0;
    ds_fired = Array.make n 0 }

let m_disk_injected =
  List.map
    (fun p ->
       ( disk_point_index p,
         Telemetry.Metrics.counter
           ("robust.disk_injected." ^ disk_point_name p) ))
    all_disk_points

(** [disk_fires st point] counts one probe hit of [point] and reports
    whether the fault fires there. *)
let disk_fires st point =
  let i = disk_point_index point in
  st.ds_hits.(i) <- st.ds_hits.(i) + 1;
  let fire =
    match st.ds_mode with
    | Disk_arms arms -> List.mem (point, st.ds_hits.(i)) arms
    | Disk_rate { rate; points } ->
        rate > 0. && List.mem point points && uniform st.ds_rngs.(i) < rate
  in
  if fire then begin
    st.ds_fired.(i) <- st.ds_fired.(i) + 1;
    Telemetry.Metrics.incr (List.assoc i m_disk_injected)
  end;
  fire

(** Per-point fired counts so far (non-zero entries only). *)
let disk_fired st =
  List.filter_map
    (fun p ->
       let n = st.ds_fired.(disk_point_index p) in
       if n > 0 then Some (p, n) else None)
    all_disk_points

(* which faults can fire at which IO operation *)
let disk_points_of_op : Diskio.op -> disk_point list = function
  | Diskio.Append -> [ Enospc; Short_write; Bit_flip ]
  | Diskio.Sync -> [ Torn_fsync ]
  | Diskio.Rename -> [ Failed_rename ]

(** The {!Diskio} hook a seeded disk state drives: every candidate
    point of the operation is probed (so hit counts stay comparable
    across runs) and the first firing one wins.  Install with
    [Diskio.set_fault_hook (Some (disk_hook st))], clear with
    [None]. *)
let disk_hook st : Diskio.hook =
 fun ~op ~path:_ ->
  match List.filter (disk_fires st) (disk_points_of_op op) with
  | [] -> None
  | p :: _ -> Some p
