(** Write-ahead cell journal: durable, checksummed JSONL records of
    completed evaluation cells, so a killed run resumes instead of
    re-paying for every finished cell.

    Each line is [<fnv64-hex> <json-body>\n] where the 16-hex-digit
    FNV-1a checksum covers the exact body text.  The body carries the
    run {e fingerprint} (hash of tool set, bomb catalog, budget/policy
    and solver configuration), a monotonically increasing sequence
    number, the cell key ([tool/bomb]) and an opaque payload the
    caller encodes.  The journal is engine-agnostic: this module only
    knows about lines, checksums and fingerprints — the cell payload
    codec lives with the evaluation layer.

    Durability model: every {!append} writes one complete line and
    flushes before returning, so after a crash the file is a valid
    journal plus at most one torn final line.  {!load} skips (and
    counts, and warns about) torn, corrupt and stale records rather
    than failing: a damaged journal costs re-running cells, never a
    wrong cached grade. *)

(* ------------------------------------------------------------------ *)
(* FNV-1a 64-bit (the implementation lives with the IO layer)          *)
(* ------------------------------------------------------------------ *)

let fnv64 = Diskio.fnv64
let fnv64_hex = Diskio.fnv64_hex

(** Fingerprint a run configuration: hash of the given components in
    order, stable across processes.  Components may be arbitrary
    binary (bomb images); length-prefixing keeps the encoding
    injective. *)
let fingerprint (components : string list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
       Buffer.add_string buf (string_of_int (String.length c));
       Buffer.add_char buf ':';
       Buffer.add_string buf c)
    components;
  fnv64_hex (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_appended = Telemetry.Metrics.counter "journal.appended"
let m_replayed = Telemetry.Metrics.counter "journal.replayed"
let m_corrupt = Telemetry.Metrics.counter "journal.corrupt"
let m_truncated = Telemetry.Metrics.counter "journal.truncated"
let m_stale = Telemetry.Metrics.counter "journal.stale"
let m_undecodable = Telemetry.Metrics.counter "journal.undecodable"
let m_shed = Telemetry.Metrics.counter "journal.shed"

(** The replay layer calls this once per cell answered from the
    journal, so [journal.replayed] counts cells, not parsed lines. *)
let count_replayed () = Telemetry.Metrics.incr m_replayed

(** A checksummed-valid record whose payload the caller's codec
    rejected (version skew, hand edits): skipped like corruption. *)
let count_undecodable () = Telemetry.Metrics.incr m_undecodable

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  h : Diskio.handle;
  w_fingerprint : string;
  mutable seq : int;
  mutable shedding : bool;
      (** the device refused an append (ENOSPC class); further
          records are shed instead of crashing the run *)
}

(* minimal JSON string escaper: every non-printable or non-ASCII byte
   goes out as \u00XX, which the Trace_check parser maps back to the
   same byte — proposed inputs can contain arbitrary bytes *)
let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | ' ' .. '~' -> Buffer.add_char buf c
       | c -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.contents buf

(** Open [path] for appending records under [fingerprint].  [seq] is
    the next sequence number (continue from {!load}'s [next_seq] when
    resuming).  If the file ends in a torn line (crash mid-append),
    {!Diskio.open_append} terminates the tail with a newline first so
    new records never fuse with the torn bytes. *)
let open_writer ~fingerprint ?(seq = 0) path : writer =
  { h = Diskio.open_append path; w_fingerprint = fingerprint; seq;
    shedding = false }

let body ~fingerprint ~seq ~key ~payload =
  Printf.sprintf "{\"fp\":\"%s\",\"seq\":%d,\"key\":\"%s\",\"cell\":%s}"
    (json_escape fingerprint) seq (json_escape key) payload

(** Append one record ([payload] must be a complete JSON value) and
    flush: once [append] returns, the record survives a [kill -9].

    ENOSPC degradation: if the device refuses the bytes
    ({!Diskio.Full}), the writer warns once, counts the record in
    [journal.shed] and sheds this and every later append instead of
    crashing the run — a full disk costs resume coverage, never the
    in-memory results of a grid in flight. *)
let append (w : writer) ~key ~payload =
  if w.shedding then Telemetry.Metrics.incr m_shed
  else begin
    let b = body ~fingerprint:w.w_fingerprint ~seq:w.seq ~key ~payload in
    match Diskio.append w.h (fnv64_hex b ^ " " ^ b ^ "\n") with
    | () ->
        w.seq <- w.seq + 1;
        Telemetry.Metrics.incr m_appended
    | exception Diskio.Full msg ->
        w.shedding <- true;
        Telemetry.Metrics.incr m_shed;
        Telemetry.Log.warnf
          "journal: %s; shedding journal writes (results stay in memory; \
           resume will re-run unjournaled cells)"
          msg
  end

(** Whether the writer has started shedding appends (disk full). *)
let is_shedding (w : writer) = w.shedding

(** Write the prefix of a record and stop mid-line without a trailing
    newline — simulates a crash between [output] and [flush] for the
    kill-and-resume smoke test. *)
let append_torn (w : writer) ~key =
  let b =
    body ~fingerprint:w.w_fingerprint ~seq:w.seq ~key ~payload:"{\"torn\":"
  in
  let half = String.length b / 2 in
  Diskio.append_torn w.h (fnv64_hex b ^ " " ^ String.sub b 0 half)

let close_writer (w : writer) = Diskio.close w.h

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)
(* ------------------------------------------------------------------ *)

type entry = {
  key : string;
  seq : int;
  cell : Telemetry.Trace_check.json;  (** opaque payload, caller-decoded *)
  raw : string;
      (** the payload's exact byte text, so a merge can re-append the
          record without a decode/re-encode round trip *)
}

(* the writer's body layout is fixed ([body] above):
   [{"fp":"…","seq":N,"key":"…","cell":<payload>}] with both strings
   [json_escape]d, so neither contains a raw '"'.  Walk that exact
   shape and slice out the payload text. *)
let raw_payload_of_body (b : string) : string option =
  let n = String.length b in
  let expect pos lit =
    let l = String.length lit in
    if pos + l <= n && String.sub b pos l = lit then Some (pos + l) else None
  in
  let skip_escaped_string pos =
    (* scan to the closing unescaped quote *)
    let rec go i =
      if i >= n then None
      else
        match b.[i] with
        | '"' -> Some (i + 1)
        | '\\' -> go (i + 2)
        | _ -> go (i + 1)
    in
    go pos
  in
  let skip_digits pos =
    let rec go i =
      if i < n && (b.[i] >= '0' && b.[i] <= '9') then go (i + 1) else i
    in
    if pos < n then Some (go pos) else None
  in
  let ( let* ) = Option.bind in
  let* p = expect 0 "{\"fp\":\"" in
  let* p = skip_escaped_string p in
  let* p = expect p ",\"seq\":" in
  let* p = skip_digits p in
  let* p = expect p ",\"key\":\"" in
  let* p = skip_escaped_string p in
  let* p = expect p ",\"cell\":" in
  if n > p && b.[n - 1] = '}' then Some (String.sub b p (n - 1 - p))
  else None

type load_result = {
  entries : entry list;  (** valid matching records, last-wins per key *)
  total_lines : int;
  valid : int;
  corrupt : int;    (** checksum or structural failure before EOF *)
  truncated : int;  (** damaged final line (torn write) *)
  stale : int;      (** valid record under a different fingerprint *)
  next_seq : int;   (** where a resuming writer should continue *)
}

let empty_load =
  { entries = []; total_lines = 0; valid = 0; corrupt = 0; truncated = 0;
    stale = 0; next_seq = 0 }

(* one "<checksum> <body>" line; [last] discriminates torn-tail from
   mid-file corruption *)
type parsed = Valid of entry * string | Stale | Damaged

let parse_line ~fingerprint line : parsed =
  let open Telemetry.Trace_check in
  if String.length line < 18 || line.[16] <> ' ' then Damaged
  else
    let sum = String.sub line 0 16 in
    let b = String.sub line 17 (String.length line - 17) in
    if not (String.equal sum (fnv64_hex b)) then Damaged
    else
      match parse_opt b with
      | None -> Damaged
      | Some j -> (
          match (member "fp" j, member "seq" j, member "key" j,
                 member "cell" j) with
          | Some (Str fp), Some (Num seq), Some (Str key), Some cell -> (
              if not (String.equal fp fingerprint) then Stale
              else
                match raw_payload_of_body b with
                | Some raw ->
                    Valid ({ key; seq = int_of_float seq; cell; raw }, fp)
                | None -> Damaged)
          | _ -> Damaged)

(** The fingerprint of the first checksummed-valid record of [path],
    whatever it is — [None] for a missing, empty or wholly damaged
    file.  Lets a resuming caller distinguish "this journal belongs to
    a different run configuration" (refuse loudly) from damage (skip
    and re-run), instead of {!load} silently treating every record as
    stale. *)
let peek_fingerprint path : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let found = ref None in
    (try
       while !found = None do
         let line = input_line ic in
         if String.length line >= 18 && line.[16] = ' ' then begin
           let sum = String.sub line 0 16 in
           let b = String.sub line 17 (String.length line - 17) in
           if String.equal sum (fnv64_hex b) then
             match
               Option.bind (Telemetry.Trace_check.parse_opt b)
                 (Telemetry.Trace_check.member "fp")
             with
             | Some (Telemetry.Trace_check.Str fp) -> found := Some fp
             | _ -> ()
         end
       done
     with End_of_file -> ());
    close_in ic;
    !found
  end

(** Load every record of [path] that matches [fingerprint].  A missing
    file is an empty journal.  Damaged or stale lines are skipped with
    a {!Telemetry.Log} warning and counted — in the result and in the
    [journal.*] metrics.  [dedup:false] keeps every valid record in
    file order instead of collapsing to last-wins per key — for
    callers auditing the full append history (the exactly-once soak
    check). *)
let load ?(dedup = true) ~fingerprint path : load_result =
  if not (Sys.file_exists path) then empty_load
  else begin
    let raw = Diskio.read_all path in
    let size = String.length raw in
    (* a well-formed journal ends in '\n'; anything after the final
       newline is a torn tail from a crashed append *)
    let complete, tail =
      match String.rindex_opt raw '\n' with
      | None -> ("", raw)
      | Some i ->
          (String.sub raw 0 i, String.sub raw (i + 1) (size - i - 1))
    in
    let lines =
      if complete = "" then [] else String.split_on_char '\n' complete
    in
    let acc = ref empty_load in
    let note_line () =
      acc := { !acc with total_lines = !acc.total_lines + 1 }
    in
    let warn_skip ~kind lineno =
      Telemetry.Log.warnf "journal: skipping %s record at %s:%d" kind path
        lineno
    in
    List.iteri
      (fun i line ->
         note_line ();
         match parse_line ~fingerprint line with
         | Valid (e, _) ->
             acc :=
               { !acc with
                 valid = !acc.valid + 1;
                 entries = e :: !acc.entries;
                 next_seq = max !acc.next_seq (e.seq + 1) }
         | Stale ->
             Telemetry.Metrics.incr m_stale;
             warn_skip ~kind:"stale (fingerprint mismatch)" (i + 1);
             acc := { !acc with stale = !acc.stale + 1 }
         | Damaged ->
             Telemetry.Metrics.incr m_corrupt;
             warn_skip ~kind:"corrupt" (i + 1);
             acc := { !acc with corrupt = !acc.corrupt + 1 })
      lines;
    if tail <> "" then begin
      note_line ();
      (* a torn tail could still parse if the crash landed exactly on
         the newline boundary minus the terminator; accept it only if
         fully valid *)
      match parse_line ~fingerprint tail with
      | Valid (e, _) ->
          acc :=
            { !acc with
              valid = !acc.valid + 1;
              entries = e :: !acc.entries;
              next_seq = max !acc.next_seq (e.seq + 1) }
      | Stale ->
          Telemetry.Metrics.incr m_stale;
          warn_skip ~kind:"stale (fingerprint mismatch)" !acc.total_lines;
          acc := { !acc with stale = !acc.stale + 1 }
      | Damaged ->
          Telemetry.Metrics.incr m_truncated;
          warn_skip ~kind:"truncated" !acc.total_lines;
          acc := { !acc with truncated = !acc.truncated + 1 }
    end;
    (* last-wins per key: a resumed run may have re-executed a cell *)
    let entries =
      if not dedup then List.rev !acc.entries
      else begin
        let seen = Hashtbl.create 64 in
        List.rev
          (List.filter
             (fun (e : entry) ->
                if Hashtbl.mem seen e.key then false
                else begin
                  Hashtbl.replace seen e.key ();
                  true
                end)
             !acc.entries (* newest first *))
      end
    in
    { !acc with entries }
  end
