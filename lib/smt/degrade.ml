(** Solver degradation ladder: bounded fallback strategies tried when
    a budgeted {!Session.check} trips its cell meter mid-solve.

    The logic-bomb benchmark papers attribute most engine "failures"
    on small binaries to solver timeouts, not wrong answers — the
    query was decidable, just not within the cell's budget.  Rather
    than aborting the cell, the session walks a ladder of strictly
    cheaper, strictly bounded strategies over the *same* assertion
    set:

    - {b resimplify}: pin every variable asserted equal to a constant,
      substitute, re-simplify to a fixpoint, and solve the (usually
      much smaller) residual in a fresh throwaway blaster under a
      small rung-local conflict budget;
    - {b enumerate}: when the free variables of the query span few
      enough total bits, decide it exactly by exhaustive concrete
      evaluation through {!Eval} (handles FP terms for free);
    - give-up: fall off the ladder and report [Undecided], which the
      session surfaces as [Unknown Budget].

    Every rung runs {e off-meter}: the cell budget has already
    tripped, so the ladder's cost is bounded by its own rung
    parameters instead (a metered retry would re-raise on the first
    charge).  Sat answers are validated against the original
    constraints through {!Eval} before being trusted; Unsat answers
    are sound by construction (substitution only uses asserted
    equalities, enumeration is exhaustive). *)

type rung =
  | Resimplify of { conflicts : int }
      (** constant-pinning + re-simplification, then a fresh solve
          bounded by [conflicts] CDCL conflicts *)
  | Enumerate of { max_bits : int }
      (** exhaustive model enumeration when the free variables span at
          most [max_bits] total bits *)

let rung_name = function
  | Resimplify _ -> "resimplify"
  | Enumerate _ -> "enumerate"

(** Name reported when every rung declines — falling off the ladder is
    itself an outcome the supervisor and telemetry attribute. *)
let give_up_name = "give_up"

let default_ladder =
  [ Resimplify { conflicts = 10_000 }; Enumerate { max_bits = 16 } ]

(** Compact spec for run fingerprints and reports: ["off"] for the
    empty ladder, else e.g. ["resimplify:10000,enumerate:16"]. *)
let ladder_to_string = function
  | [] -> "off"
  | rungs ->
    String.concat ","
      (List.map
         (function
           | Resimplify { conflicts } ->
             Printf.sprintf "resimplify:%d" conflicts
           | Enumerate { max_bits } ->
             Printf.sprintf "enumerate:%d" max_bits)
         rungs)

type verdict =
  | Sat of (string * int64) list
  | Unsat
  | Undecided  (** this rung cannot decide the query; try the next *)

(* ------------------------------------------------------------------ *)
(* Rung: resimplify                                                    *)
(* ------------------------------------------------------------------ *)

(* variables asserted equal to a constant anywhere in the set — the
   cheapest unit information a path predicate carries (argv bytes
   pinned by earlier branches are the common case) *)
let pinned_vars cs : (string * int64) list =
  List.filter_map
    (fun (c : Expr.t) ->
       match c with
       | Cmp (Eq, Var v, Const (x, _)) | Cmp (Eq, Const (x, _), Var v) ->
         Some (v.vname, Int64.logand x (Expr.mask v.width))
       | _ -> None)
    cs

(* substitute pinned variables by constants; plain tree recursion is
   fine here because [Simplify.run] immediately re-shares via its own
   memo and rung inputs are single constraints, not whole programs *)
let rec subst (pins : (string, int64) Hashtbl.t) (e : Expr.t) : Expr.t =
  let s = subst pins in
  match e with
  | Expr.Var v -> (
      match Hashtbl.find_opt pins v.vname with
      | Some x -> Expr.Const (Int64.logand x (Expr.mask v.width), v.width)
      | None -> e)
  | Const _ -> e
  | Unop (op, a) -> Unop (op, s a)
  | Binop (op, a, b) -> Binop (op, s a, s b)
  | Cmp (op, a, b) -> Cmp (op, s a, s b)
  | Ite (c, a, b) -> Ite (s c, s a, s b)
  | Extract (hi, lo, a) -> Extract (hi, lo, s a)
  | Concat (a, b) -> Concat (s a, s b)
  | Zext (w, a) -> Zext (w, s a)
  | Sext (w, a) -> Sext (w, s a)
  | Fbin (op, a, b) -> Fbin (op, s a, s b)
  | Fcmp (op, a, b) -> Fcmp (op, s a, s b)
  | Fsqrt a -> Fsqrt (s a)
  | Fof_int a -> Fof_int (s a)
  | Fto_int a -> Fto_int (s a)

let model_holds m cs =
  let env = Eval.env_of_list m in
  List.for_all
    (fun c -> try Eval.holds env c with Eval.Unbound _ -> false)
    cs

let resimplify ~conflicts cs : verdict =
  let pins = Hashtbl.create 16 in
  List.iter (fun (n, x) -> Hashtbl.replace pins n x) (pinned_vars cs);
  let residual =
    List.filter_map
      (fun c ->
         let c' = Simplify.run (subst pins c) in
         if Expr.is_true c' then None else Some c')
      cs
  in
  if List.exists Expr.is_false residual then
    (* pins came from asserted equalities, so a contradicted residual
       contradicts the original set *)
    Unsat
  else if List.exists Expr.contains_fp residual then Undecided
  else begin
    (* fresh throwaway blaster, deliberately un-metered: the rung's
       own conflict budget is the bound *)
    let b = Blast.create () in
    match List.map (Blast.lit_of b) residual with
    | exception Blast.Unsupported_fp -> Undecided
    | assumptions -> (
        match Blast.solve ~conflict_budget:conflicts ~assumptions b with
        | Sat.Unsat -> Unsat
        | Sat.Unknown -> Undecided
        | Sat.Sat ->
          let residual_model =
            List.filter
              (fun (n, _) -> not (Hashtbl.mem pins n))
              (Blast.model b)
          in
          let m =
            List.map
              (fun (v : Expr.var) ->
                 match Hashtbl.find_opt pins v.vname with
                 | Some x -> (v.vname, Int64.logand x (Expr.mask v.width))
                 | None -> (
                     match List.assoc_opt v.vname residual_model with
                     | Some x -> (v.vname, Int64.logand x (Expr.mask v.width))
                     | None -> (v.vname, 0L)))
              (Expr.vars_of_list cs)
          in
          if model_holds m cs then Sat m else Undecided)
  end

(* ------------------------------------------------------------------ *)
(* Rung: enumerate                                                     *)
(* ------------------------------------------------------------------ *)

let enumerate ~max_bits cs : verdict =
  let vars = Expr.vars_of_list cs in
  let total_bits =
    List.fold_left (fun acc (v : Expr.var) -> acc + v.width) 0 vars
  in
  (* >= 63 also guards the [1L lsl total_bits] limit below *)
  if total_bits > max_bits || max_bits <= 0 || total_bits >= 63 then Undecided
  else begin
    let env : Eval.env = Hashtbl.create 16 in
    let holds_all () =
      List.for_all
        (fun c -> try Eval.holds env c with Eval.Unbound _ -> false)
        cs
    in
    (* walk the combined assignment space as one [total_bits]-wide
       counter, slicing each variable's bits out in declaration order;
       2^max_bits is the rung's explicit cost bound *)
    let limit = Int64.shift_left 1L total_bits in
    let rec try_assignment (n : int64) : verdict =
      if Int64.unsigned_compare n limit >= 0 then Unsat
      else begin
        let off = ref 0 in
        List.iter
          (fun (v : Expr.var) ->
             let x =
               Int64.logand
                 (Int64.shift_right_logical n !off)
                 (Expr.mask v.width)
             in
             Hashtbl.replace env v.vname x;
             off := !off + v.width)
          vars;
        if holds_all () then
          Sat (List.map (fun (v : Expr.var) -> (v.vname, Hashtbl.find env v.vname)) vars)
        else try_assignment (Int64.add n 1L)
      end
    in
    try_assignment 0L
  end

(* ------------------------------------------------------------------ *)
(* Ladder walk                                                         *)
(* ------------------------------------------------------------------ *)

let attempt rung cs =
  match rung with
  | Resimplify { conflicts } -> resimplify ~conflicts cs
  | Enumerate { max_bits } -> enumerate ~max_bits cs

(** Walk [ladder] over the constraint set; returns the verdict plus
    the name of the rung that decided it ([give_up_name] when every
    rung declined).  Injected chaos faults and budget trips are never
    swallowed; any other rung-internal exception just advances to the
    next rung. *)
let run ~ladder cs : verdict * string =
  let rec go = function
    | [] -> (Undecided, give_up_name)
    | rung :: rest -> (
        let v =
          try attempt rung cs
          with e when not (Robust.is_fault e) -> Undecided
        in
        match v with Undecided -> go rest | decided -> (decided, rung_name rung))
  in
  go ladder
