(** One-shot solver front-end: simplify → bit-blast → CDCL, with a
    search-based fallback for constraints containing floating-point
    terms.

    Since the session refactor this is a thin wrapper that runs a fresh
    {!Session} per call, so the pipeline (and every outcome) is exactly
    the incremental path minus cross-query reuse.  Engines that model
    the paper's tools faithfully solve through here; the DSE/driver
    layers hold a long-lived {!Session} instead.

    The FP fallback is an *extension* relative to the paper's tools
    (which simply fail on FP, the Es3 rows): engines keep it disabled
    to reproduce Table II, and the extension is exercised by its own
    tests and example. *)

type model = Session.model

type reason = Session.reason =
  | Budget          (** conflict budget exhausted *)
  | Fp_unsupported  (** FP present and the search fallback is off *)
  | Search_failed   (** FP search exhausted its iterations *)

type outcome = Session.outcome = Sat of model | Unsat | Unknown of reason

type config = Session.config = {
  conflict_budget : int;
  enable_fp_search : bool;
  fp_search_iters : int;
  fp_rng_seed : int64;
      (** xorshift seed for the FP search fallback — explicit so unit
          and fuzz runs are reproducible and independently seedable *)
  seeds : Eval.env list;
      (** candidate assignments the caller wants tried first (e.g.
          small decimal strings for argv-byte groups) *)
  ladder : Degrade.rung list;
      (** degradation rungs tried when a cell budget trips mid-check;
          [[]] restores the hard-failure behaviour (re-raise) *)
}

let default_config = Session.default_config

(** Free variables of a constraint set, de-duplicated. *)
let all_vars = Expr.vars_of_list

(** Solve the conjunction of [constraints].  A returned model is
    validated by concrete evaluation before being reported.  [stats],
    when given, accumulates query counters across calls. *)
let solve ?(config = default_config) ?stats (constraints : Expr.t list) :
  outcome =
  Session.check_assertions (Session.create ~config ?stats ()) constraints

let outcome_to_string = function
  | Sat m ->
    "sat "
    ^ String.concat ", "
      (List.map (fun (n, v) -> Printf.sprintf "%s=0x%Lx" n v) m)
  | Unsat -> "unsat"
  | Unknown Budget -> "unknown (budget)"
  | Unknown Fp_unsupported -> "unknown (fp unsupported)"
  | Unknown Search_failed -> "unknown (search failed)"
