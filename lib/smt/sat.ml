(** A CDCL SAT solver: two-watched-literal propagation, first-UIP
    clause learning, VSIDS-style decision heuristic with phase saving,
    and Luby restarts.  This is the engine under the bit-blaster, the
    role STP/Z3 play for the paper's tools.

    Literal encoding: variable [v] (0-based) has positive literal
    [2*v] and negative literal [2*v+1]. *)

type result = Sat | Unsat | Unknown

type clause = { lits : int array; mutable activity : float; learnt : bool }

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable watches : clause list array;   (* indexed by literal *)
  mutable assign : int array;            (* -1 unset, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;            (* saved phases *)
  mutable trail : int array;             (* literals in assignment order *)
  mutable trail_n : int;
  mutable trail_lim : int list;          (* decision-level boundaries *)
  mutable prop_head : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  (* activity-ordered heap of candidate decision variables *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable heap_pos : int array;   (* var -> heap index, -1 if absent *)
}

let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0 (* true = positive *)
let lit_neg l = l lxor 1
let mk_lit v positive = (v lsl 1) lor (if positive then 0 else 1)

let create () =
  { nvars = 0;
    clauses = [];
    learnts = [];
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    trail = Array.make 8 0;
    trail_n = 0;
    trail_lim = [];
    prop_head = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    heap = Array.make 8 0;
    heap_n = 0;
    heap_pos = Array.make 8 (-1) }

let ensure_capacity t n =
  let grow arr def =
    let len = Array.length arr in
    if n <= len then arr
    else begin
      let arr' = Array.make (max n (2 * len)) def in
      Array.blit arr 0 arr' 0 len;
      arr'
    end
  in
  t.assign <- grow t.assign (-1);
  t.level <- grow t.level 0;
  t.reason <- grow t.reason None;
  t.activity <- grow t.activity 0.0;
  t.phase <- grow t.phase false;
  t.trail <- grow t.trail 0;
  t.heap <- grow t.heap 0;
  t.heap_pos <- grow t.heap_pos (-1);
  if 2 * n > Array.length t.watches then begin
    let w = Array.make (max (2 * n) (2 * Array.length t.watches)) [] in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    t.watches <- w
  end

(* ---- VSIDS order heap ---- *)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(parent)) then begin
      heap_swap t i parent;
      heap_up t parent
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_n && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best))
  then best := l;
  if r < t.heap_n && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    let i = t.heap_n in
    t.heap_n <- i + 1;
    t.heap.(i) <- v;
    t.heap_pos.(v) <- i;
    heap_up t i
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_n <- t.heap_n - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_n > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_n);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  v

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  ensure_capacity t (v + 1);
  heap_insert t v;
  v

(* value of a literal under the current assignment: -1/0/1 *)
let lit_value t l =
  let a = t.assign.(lit_var l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level t = List.length t.trail_lim

let enqueue t l reason =
  t.assign.(lit_var l) <- (if lit_sign l then 1 else 0);
  t.level.(lit_var l) <- decision_level t;
  t.reason.(lit_var l) <- reason;
  t.phase.(lit_var l) <- lit_sign l;
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

(* attach a clause to the watch lists of its first two literals *)
let attach t c =
  t.watches.(lit_neg c.lits.(0)) <- c :: t.watches.(lit_neg c.lits.(0));
  if Array.length c.lits > 1 then
    t.watches.(lit_neg c.lits.(1)) <- c :: t.watches.(lit_neg c.lits.(1))

let add_clause t lits =
  if t.ok then begin
    (* simplify: drop duplicate/false literals, detect tautology *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (lit_neg l) lits) lits in
    if not taut then begin
      let lits =
        List.filter
          (fun l -> not (lit_value t l = 0 && t.level.(lit_var l) = 0))
          lits
      in
      if List.exists (fun l -> lit_value t l = 1 && t.level.(lit_var l) = 0)
          lits
      then ()
      else
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
          if lit_value t l = 0 then t.ok <- false
          else if lit_value t l < 0 then enqueue t l None
        | _ ->
          let c = { lits = Array.of_list lits; activity = 0.0; learnt = false } in
          t.clauses <- c :: t.clauses;
          attach t c
    end
  end

(* propagate all queued assignments; return the conflicting clause *)
let propagate t : clause option =
  let conflict = ref None in
  while !conflict = None && t.prop_head < t.trail_n do
    let l = t.trail.(t.prop_head) in
    t.prop_head <- t.prop_head + 1;
    (* literals watching ~l = watches.(l) *)
    let ws = t.watches.(l) in
    t.watches.(l) <- [];
    let rec process = function
      | [] -> ()
      | c :: rest -> (
          (* make sure the false literal is at position 1 *)
          let false_lit = lit_neg l in
          if c.lits.(0) = false_lit then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- false_lit
          end;
          if lit_value t c.lits.(0) = 1 then begin
            (* satisfied: keep watching *)
            t.watches.(l) <- c :: t.watches.(l);
            process rest
          end
          else
            (* look for a new watch *)
            let n = Array.length c.lits in
            let rec find i =
              if i >= n then None
              else if lit_value t c.lits.(i) <> 0 then Some i
              else find (i + 1)
            in
            match find 2 with
            | Some i ->
              c.lits.(1) <- c.lits.(i);
              c.lits.(i) <- false_lit;
              t.watches.(lit_neg c.lits.(1)) <- c :: t.watches.(lit_neg c.lits.(1));
              process rest
            | None ->
              (* unit or conflict *)
              t.watches.(l) <- c :: t.watches.(l);
              if lit_value t c.lits.(0) = 0 then begin
                conflict := Some c;
                (* put the remaining watchers back *)
                List.iter
                  (fun c' -> t.watches.(l) <- c' :: t.watches.(l))
                  rest
              end
              else begin
                enqueue t c.lits.(0) (Some c);
                process rest
              end)
    in
    process ws
  done;
  !conflict

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v);
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
    (* relative order unchanged: the heap stays valid *)
  end

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* first-UIP conflict analysis; returns the learnt clause (UIP first)
   and the backtrack level *)
let analyze t confl =
  let learnt = ref [] in
  let seen = Array.make t.nvars false in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let index = ref (t.trail_n - 1) in
  let btlevel = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
     | None -> ()
     | Some c ->
       Array.iter
         (fun q ->
            let v = lit_var q in
            if (not seen.(v)) && t.level.(v) > 0 && q <> !p then begin
              seen.(v) <- true;
              var_bump t v;
              if t.level.(v) >= decision_level t then incr counter
              else begin
                learnt := q :: !learnt;
                btlevel := max !btlevel t.level.(v)
              end
            end)
         c.lits);
    (* pick the next literal on the trail to resolve *)
    let rec next i =
      if not seen.(lit_var t.trail.(i)) then next (i - 1) else i
    in
    index := next !index;
    let q = t.trail.(!index) in
    p := q;
    confl := t.reason.(lit_var q);
    seen.(lit_var q) <- false;
    decr counter;
    index := !index - 1;
    if !counter <= 0 then continue_ := false
  done;
  (lit_neg !p :: !learnt, !btlevel)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let rec bound lims n =
      match lims with
      | [] -> 0
      | b :: rest -> if n = lvl + 1 then b else bound rest (n - 1)
    in
    let target = bound t.trail_lim (decision_level t) in
    for i = t.trail_n - 1 downto target do
      let v = lit_var t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_n <- target;
    t.prop_head <- target;
    let rec drop lims n = if n = lvl then lims else drop (List.tl lims) (n - 1) in
    t.trail_lim <- drop t.trail_lim (decision_level t)
  end

let rec pick_branch t =
  (* highest-activity unassigned variable, via the order heap *)
  if t.heap_n = 0 then -1
  else
    let v = heap_pop t in
    if t.assign.(v) < 0 then v else pick_branch t

(* simpler restart schedule: geometric *)
let restart_interval n = int_of_float (100.0 *. (1.5 ** float_of_int n))

(** Undo every assignment above the root level.  Incremental sessions
    call this before adding clauses between [solve] calls: [add_clause]
    treats level-0 assignments as facts, so a stale model left by a
    previous SAT answer must not leak into clause simplification. *)
let reset_to_root t = cancel_until t 0

let solve ?(conflict_budget = max_int) ?meter ?(assumptions = []) t : result =
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    let result = ref Unknown in
    let restarts = ref 0 in
    let conflicts_here = ref 0 in
    (* budget is per-call: [t.conflicts] accumulates over the solver's
       lifetime so an incremental session would otherwise starve *)
    let start_conflicts = t.conflicts in
    let budget_left () = t.conflicts - start_conflicts < conflict_budget in
    (try
       (* assume the assumption literals at successive levels *)
       while !result = Unknown do
         match propagate t with
         | Some confl ->
           t.conflicts <- t.conflicts + 1;
           incr conflicts_here;
           (* charge the cell budget meter; a tripped conflict cap or
              deadline unwinds to the supervisor (the session rolls
              its assertion stack back, see Smt.Session) *)
           (match meter with
            | Some m -> Robust.Meter.charge_solver_conflicts m 1
            | None -> ());
           if decision_level t = 0 then begin
             t.ok <- false;
             result := Unsat
           end
           else begin
             let learnt, btlevel = analyze t confl in
             cancel_until t btlevel;
             (match learnt with
              | [] -> t.ok <- false; result := Unsat
              | [ l ] -> enqueue t l None
              | l :: _ ->
                let c =
                  { lits = Array.of_list learnt; activity = t.cla_inc;
                    learnt = true }
                in
                t.learnts <- c :: t.learnts;
                attach t c;
                enqueue t l (Some c));
             var_decay t
           end;
           if not (budget_left ()) then begin
             result := Unknown;
             raise Exit
           end
         | None ->
           (* restart? *)
           if !conflicts_here > restart_interval !restarts then begin
             incr restarts;
             conflicts_here := 0;
             cancel_until t 0
           end
           else begin
             (* extend with assumptions first *)
             let unassigned_assumption =
               List.find_opt (fun l -> lit_value t l < 0) assumptions
             in
             match unassigned_assumption with
             | Some l ->
               if List.exists (fun a -> lit_value t a = 0) assumptions then begin
                 result := Unsat;
                 raise Exit
               end;
               t.trail_lim <- t.trail_n :: t.trail_lim;
               enqueue t l None
             | None ->
               if List.exists (fun a -> lit_value t a = 0) assumptions then begin
                 result := Unsat;
                 raise Exit
               end;
               let v = pick_branch t in
               if v < 0 then result := Sat
               else begin
                 t.trail_lim <- t.trail_n :: t.trail_lim;
                 enqueue t (mk_lit v t.phase.(v)) None
               end
           end
       done
     with Exit -> ());
    !result
  end

(** Value of variable [v] in the satisfying assignment. *)
let model_value t v = t.assign.(v) = 1

let num_vars t = t.nvars
let num_clauses t = List.length t.clauses
let num_conflicts t = t.conflicts
