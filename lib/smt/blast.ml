(** Tseitin bit-blasting of bitvector terms to CNF over {!Sat}.

    Every term maps to an array of SAT literals, LSB first, memoised on
    physical identity so shared sub-DAGs are encoded once.  Floating-
    point terms are not blastable ({!Unsupported_fp}); the front-end
    falls back to the search solver for those. *)

exception Unsupported_fp

module Phys = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

type t = {
  sat : Sat.t;
  cache : int array Phys.t;
  var_bits : (string, int array) Hashtbl.t;
  true_lit : int;
}

let create () =
  let sat = Sat.create () in
  let tv = Sat.new_var sat in
  let true_lit = Sat.mk_lit tv true in
  Sat.add_clause sat [ true_lit ];
  { sat; cache = Phys.create 1024; var_bits = Hashtbl.create 32; true_lit }

let false_lit t = Sat.lit_neg t.true_lit

let lit_of_bool t b = if b then t.true_lit else false_lit t

let fresh t = Sat.mk_lit (Sat.new_var t.sat) true

(* ---- gates ---- *)

let g_and t a b =
  if a = t.true_lit then b
  else if b = t.true_lit then a
  else if a = false_lit t || b = false_lit t then false_lit t
  else if a = b then a
  else if a = Sat.lit_neg b then false_lit t
  else begin
    let c = fresh t in
    Sat.add_clause t.sat [ Sat.lit_neg a; Sat.lit_neg b; c ];
    Sat.add_clause t.sat [ a; Sat.lit_neg c ];
    Sat.add_clause t.sat [ b; Sat.lit_neg c ];
    c
  end

let g_or t a b = Sat.lit_neg (g_and t (Sat.lit_neg a) (Sat.lit_neg b))

let g_xor t a b =
  if a = false_lit t then b
  else if b = false_lit t then a
  else if a = t.true_lit then Sat.lit_neg b
  else if b = t.true_lit then Sat.lit_neg a
  else if a = b then false_lit t
  else if a = Sat.lit_neg b then t.true_lit
  else begin
    let c = fresh t in
    Sat.add_clause t.sat [ Sat.lit_neg a; Sat.lit_neg b; Sat.lit_neg c ];
    Sat.add_clause t.sat [ a; b; Sat.lit_neg c ];
    Sat.add_clause t.sat [ a; Sat.lit_neg b; c ];
    Sat.add_clause t.sat [ Sat.lit_neg a; b; c ];
    c
  end

(* c = if s then a else b *)
let g_mux t s a b =
  if s = t.true_lit then a
  else if s = false_lit t then b
  else if a = b then a
  else begin
    let c = fresh t in
    Sat.add_clause t.sat [ Sat.lit_neg s; Sat.lit_neg a; c ];
    Sat.add_clause t.sat [ Sat.lit_neg s; a; Sat.lit_neg c ];
    Sat.add_clause t.sat [ s; Sat.lit_neg b; c ];
    Sat.add_clause t.sat [ s; b; Sat.lit_neg c ];
    c
  end

(* full adder: (sum, carry_out) *)
let g_fa t a b cin =
  let sum = g_xor t (g_xor t a b) cin in
  let cout = g_or t (g_and t a b) (g_and t cin (g_xor t a b)) in
  (sum, cout)

(* ---- vectors ---- *)

let const_bits t v w =
  Array.init w (fun i ->
      lit_of_bool t (Int64.logand (Int64.shift_right_logical v i) 1L = 1L))

let add_vec t a b cin0 =
  let w = Array.length a in
  let out = Array.make w (false_lit t) in
  let carry = ref cin0 in
  for i = 0 to w - 1 do
    let s, c = g_fa t a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let neg_vec t a =
  let inv = Array.map Sat.lit_neg a in
  fst (add_vec t inv (const_bits t 0L (Array.length a)) t.true_lit)

let sub_vec t a b =
  (* a - b = a + ~b + 1 *)
  fst (add_vec t a (Array.map Sat.lit_neg b) t.true_lit)

let mul_vec t a b =
  let w = Array.length a in
  let acc = ref (const_bits t 0L w) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) AND b_i *)
    let pp =
      Array.init w (fun j -> if j < i then false_lit t
                     else g_and t a.(j - i) b.(i))
    in
    acc := fst (add_vec t !acc pp (false_lit t))
  done;
  !acc

(* a < b unsigned: borrow out of a - b *)
let ult_vec t a b =
  let w = Array.length a in
  (* carry chain of a + ~b + 1; no borrow <=> carry out = 1 *)
  let carry = ref t.true_lit in
  for i = 0 to w - 1 do
    let bi = Sat.lit_neg b.(i) in
    let c' = g_or t (g_and t a.(i) bi) (g_and t !carry (g_xor t a.(i) bi)) in
    carry := c'
  done;
  Sat.lit_neg !carry

let eq_vec t a b =
  let w = Array.length a in
  let acc = ref t.true_lit in
  for i = 0 to w - 1 do
    acc := g_and t !acc (Sat.lit_neg (g_xor t a.(i) b.(i)))
  done;
  !acc

let slt_vec t a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  let u = ult_vec t a b in
  (* different signs: a < b iff a negative; same signs: unsigned compare *)
  g_mux t (g_xor t sa sb) sa u

let mux_vec t s a b = Array.init (Array.length a) (fun i -> g_mux t s a.(i) b.(i))

(* barrel shifter over the low 6 amount bits, saturating when the
   amount is >= 64 (SMT-Lib semantics: logical shifts give 0,
   arithmetic right gives sign fill) *)
let shift_vec t dir a amt =
  (* dir: `L logical left, `R logical right, `A arithmetic right *)
  let w = Array.length a in
  let res = ref a in
  let fill = match dir with `A -> a.(w - 1) | _ -> false_lit t in
  let stages = 6 in
  for k = 0 to stages - 1 do
    let s = 1 lsl k in
    let shifted =
      Array.init w (fun i ->
          match dir with
          | `L -> if i - s >= 0 then !res.(i - s) else false_lit t
          | `R | `A -> if i + s < w then !res.(i + s) else fill)
    in
    let sel = if k < Array.length amt then amt.(k) else false_lit t in
    res := mux_vec t sel shifted !res
  done;
  (* any amount bit above the barrel's range saturates the shift *)
  let oversized = ref (false_lit t) in
  for k = stages to Array.length amt - 1 do
    oversized := g_or t !oversized amt.(k)
  done;
  mux_vec t !oversized (Array.make w fill) !res

(* restoring division: returns (quotient, remainder); SMT-Lib
   semantics at zero (q = ones, r = a) emerge from the circuit *)
let divmod_vec t a b =
  let w = Array.length a in
  let q = Array.make w (false_lit t) in
  let r = ref (const_bits t 0L w) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let r' = Array.init w (fun j -> if j = 0 then a.(i) else !r.(j - 1)) in
    let ge = Sat.lit_neg (ult_vec t r' b) in
    q.(i) <- ge;
    r := mux_vec t ge (sub_vec t r' b) r'
  done;
  (q, !r)

let sdivmod_vec t a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  let ua = mux_vec t sa (neg_vec t a) a in
  let ub = mux_vec t sb (neg_vec t b) b in
  let uq, ur = divmod_vec t ua ub in
  let q = mux_vec t (g_xor t sa sb) (neg_vec t uq) uq in
  let r = mux_vec t sa (neg_vec t ur) ur in
  (q, r)

(* ---- terms ---- *)

let rec bits t (e : Expr.t) : int array =
  let key = Obj.repr e in
  match Phys.find_opt t.cache key with
  | Some v -> v
  | None ->
    let v = compute t e in
    Phys.replace t.cache key v;
    v

and compute t (e : Expr.t) : int array =
  match e with
  | Var { vname; width } -> (
      match Hashtbl.find_opt t.var_bits vname with
      | Some bs -> bs
      | None ->
        let bs = Array.init width (fun _ -> fresh t) in
        Hashtbl.replace t.var_bits vname bs;
        bs)
  | Const (v, w) -> const_bits t v w
  | Unop (Neg, a) -> neg_vec t (bits t a)
  | Unop (Not, a) -> Array.map Sat.lit_neg (bits t a)
  | Binop (op, a, b) -> (
      let va = bits t a and vb = bits t b in
      match op with
      | Add -> fst (add_vec t va vb (false_lit t))
      | Sub -> sub_vec t va vb
      | Mul -> mul_vec t va vb
      | Udiv -> fst (divmod_vec t va vb)
      | Urem -> snd (divmod_vec t va vb)
      | Sdiv -> fst (sdivmod_vec t va vb)
      | Srem -> snd (sdivmod_vec t va vb)
      | And -> Array.init (Array.length va) (fun i -> g_and t va.(i) vb.(i))
      | Or -> Array.init (Array.length va) (fun i -> g_or t va.(i) vb.(i))
      | Xor -> Array.init (Array.length va) (fun i -> g_xor t va.(i) vb.(i))
      | Shl -> shift_vec t `L va vb
      | Lshr -> shift_vec t `R va vb
      | Ashr -> shift_vec t `A va vb)
  | Cmp (op, a, b) -> (
      let va = bits t a and vb = bits t b in
      match op with
      | Eq -> [| eq_vec t va vb |]
      | Ult -> [| ult_vec t va vb |]
      | Ule -> [| Sat.lit_neg (ult_vec t vb va) |]
      | Slt -> [| slt_vec t va vb |]
      | Sle -> [| Sat.lit_neg (slt_vec t vb va) |])
  | Ite (c, a, b) ->
    let vc = bits t c in
    mux_vec t vc.(0) (bits t a) (bits t b)
  | Extract (hi, lo, a) ->
    let va = bits t a in
    Array.sub va lo (hi - lo + 1)
  | Concat (a, b) ->
    let va = bits t a and vb = bits t b in
    Array.append vb va
  | Zext (w, a) ->
    let va = bits t a in
    Array.init w (fun i -> if i < Array.length va then va.(i) else false_lit t)
  | Sext (w, a) ->
    let va = bits t a in
    let n = Array.length va in
    Array.init w (fun i -> if i < n then va.(i) else va.(n - 1))
  | Fbin _ | Fcmp _ | Fsqrt _ | Fof_int _ | Fto_int _ -> raise Unsupported_fp

(** Assert a 1-bit term. *)
let assert_true t e =
  let v = bits t e in
  Sat.add_clause t.sat [ v.(0) ]

(** Encode a 1-bit term and return its literal *without* asserting it.
    Incremental sessions pass these literals as assumptions so an
    assertion can be popped while its CNF encoding (and any clauses
    learnt from it) stay behind for reuse. *)
let lit_of t e = (bits t e).(0)

(** Clear any assignment left by a previous [solve] — required before
    encoding new terms into a solver that answered Sat. *)
let reset t = Sat.reset_to_root t.sat

(** Distinct term nodes encoded so far (the per-session memo size). *)
let num_nodes t = Phys.length t.cache

let num_conflicts t = Sat.num_conflicts t.sat

let solve ?conflict_budget ?meter ?assumptions t =
  Sat.solve ?conflict_budget ?meter ?assumptions t.sat

(** Extract the model for the named variables after [Sat] answered. *)
let model t : (string * int64) list =
  Hashtbl.fold
    (fun name bs acc ->
       let v = ref 0L in
       Array.iteri
         (fun i l ->
            let b =
              (* unassigned vars default to false *)
              let var = Sat.lit_var l in
              let value = Sat.model_value t.sat var in
              if Sat.lit_sign l then value else not value
            in
            if b then v := Int64.logor !v (Int64.shift_left 1L i))
         bs;
       (name, !v) :: acc)
    t.var_bits []

let stats t = (Sat.num_vars t.sat, Sat.num_clauses t.sat, Sat.num_conflicts t.sat)
