(** Solver-side counters, accumulated per {!Session} (or shared across
    many one-shot sessions when the caller passes one accumulator in).
    Every engine surfaces these on its outcome so the cost of solving
    is measured, not guessed. *)

type t = {
  mutable queries : int;        (** [check] calls, including cache hits *)
  mutable cache_hits : int;     (** answered from the session query cache *)
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable blasted_nodes : int;  (** term nodes newly encoded to CNF *)
  mutable conflicts : int;      (** CDCL conflicts spent in [check] *)
  mutable wall_time : float;    (** seconds spent inside [check] *)
}

let create () =
  { queries = 0;
    cache_hits = 0;
    sat = 0;
    unsat = 0;
    unknown = 0;
    blasted_nodes = 0;
    conflicts = 0;
    wall_time = 0.0 }

(** Independent copy (for snapshots of a live accumulator). *)
let copy s =
  { queries = s.queries;
    cache_hits = s.cache_hits;
    sat = s.sat;
    unsat = s.unsat;
    unknown = s.unknown;
    blasted_nodes = s.blasted_nodes;
    conflicts = s.conflicts;
    wall_time = s.wall_time }

(** Add [src] into [dst] (merging per-engine accumulators). *)
let add ~into:dst src =
  dst.queries <- dst.queries + src.queries;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.sat <- dst.sat + src.sat;
  dst.unsat <- dst.unsat + src.unsat;
  dst.unknown <- dst.unknown + src.unknown;
  dst.blasted_nodes <- dst.blasted_nodes + src.blasted_nodes;
  dst.conflicts <- dst.conflicts + src.conflicts;
  dst.wall_time <- dst.wall_time +. src.wall_time

let to_string s =
  Printf.sprintf
    "queries=%d hits=%d sat=%d unsat=%d unknown=%d blasted=%d conflicts=%d \
     wall=%.4fs"
    s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes s.conflicts
    s.wall_time

(** The fields as JSON object members (no enclosing braces), for the
    bench harness's machine-readable output. *)
let to_json_fields s =
  Printf.sprintf
    "\"queries\": %d, \"cache_hits\": %d, \"sat\": %d, \"unsat\": %d, \
     \"unknown\": %d, \"blasted_nodes\": %d, \"conflicts\": %d, \
     \"solver_wall_s\": %.6f"
    s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes s.conflicts
    s.wall_time
