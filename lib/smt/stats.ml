(** Solver-side counters, accumulated per {!Session} (or shared across
    many one-shot sessions when the caller passes one accumulator in).
    Every engine surfaces these on its outcome so the cost of solving
    is measured, not guessed. *)

type t = {
  mutable queries : int;        (** [check] calls, including cache hits *)
  mutable cache_hits : int;     (** answered from the session query cache *)
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable blasted_nodes : int;  (** term nodes newly encoded to CNF *)
  mutable conflicts : int;      (** CDCL conflicts spent in [check] *)
  mutable wall_time : float;    (** seconds spent inside [check] *)
  mutable degraded_resimplify : int;
      (** budget-tripped checks decided by the resimplify rung *)
  mutable degraded_enumerate : int;
      (** budget-tripped checks decided by exhaustive enumeration *)
  mutable degraded_give_up : int;
      (** budget-tripped checks no ladder rung could decide *)
}

let create () =
  { queries = 0;
    cache_hits = 0;
    sat = 0;
    unsat = 0;
    unknown = 0;
    blasted_nodes = 0;
    conflicts = 0;
    wall_time = 0.0;
    degraded_resimplify = 0;
    degraded_enumerate = 0;
    degraded_give_up = 0 }

(** Independent copy (for snapshots of a live accumulator). *)
let copy s =
  { queries = s.queries;
    cache_hits = s.cache_hits;
    sat = s.sat;
    unsat = s.unsat;
    unknown = s.unknown;
    blasted_nodes = s.blasted_nodes;
    conflicts = s.conflicts;
    wall_time = s.wall_time;
    degraded_resimplify = s.degraded_resimplify;
    degraded_enumerate = s.degraded_enumerate;
    degraded_give_up = s.degraded_give_up }

(** Add [src] into [dst] (merging per-engine accumulators). *)
let add ~into:dst src =
  dst.queries <- dst.queries + src.queries;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.sat <- dst.sat + src.sat;
  dst.unsat <- dst.unsat + src.unsat;
  dst.unknown <- dst.unknown + src.unknown;
  dst.blasted_nodes <- dst.blasted_nodes + src.blasted_nodes;
  dst.conflicts <- dst.conflicts + src.conflicts;
  dst.wall_time <- dst.wall_time +. src.wall_time;
  dst.degraded_resimplify <- dst.degraded_resimplify + src.degraded_resimplify;
  dst.degraded_enumerate <- dst.degraded_enumerate + src.degraded_enumerate;
  dst.degraded_give_up <- dst.degraded_give_up + src.degraded_give_up

(* ------------------------------------------------------------------ *)
(* Telemetry registry mirrors                                          *)
(* ------------------------------------------------------------------ *)

(* The per-session record stays authoritative (engines surface exact
   per-outcome accounting off it); the helpers below additionally fold
   each mutation into the global registry so one `smt.*` namespace
   aggregates solver work across every session in a run.  Sessions
   mutate stats only through these. *)

let m_queries = Telemetry.Metrics.counter "smt.queries"
let m_cache_hits = Telemetry.Metrics.counter "smt.cache_hits"
let m_sat = Telemetry.Metrics.counter "smt.sat"
let m_unsat = Telemetry.Metrics.counter "smt.unsat"
let m_unknown = Telemetry.Metrics.counter "smt.unknown"
let m_blasted = Telemetry.Metrics.counter "smt.blasted_nodes"
let m_conflicts = Telemetry.Metrics.counter "smt.conflicts"
let m_wall = Telemetry.Metrics.gauge "smt.wall_s"

let record_query s =
  s.queries <- s.queries + 1;
  Telemetry.Metrics.incr m_queries

let record_cache_hit s =
  s.cache_hits <- s.cache_hits + 1;
  Telemetry.Metrics.incr m_cache_hits

let record_sat s =
  s.sat <- s.sat + 1;
  Telemetry.Metrics.incr m_sat

let record_unsat s =
  s.unsat <- s.unsat + 1;
  Telemetry.Metrics.incr m_unsat

let record_unknown s =
  s.unknown <- s.unknown + 1;
  Telemetry.Metrics.incr m_unknown

let add_blasted s n =
  s.blasted_nodes <- s.blasted_nodes + n;
  Telemetry.Metrics.add m_blasted n

let add_conflicts s n =
  s.conflicts <- s.conflicts + n;
  Telemetry.Metrics.add m_conflicts n

let add_wall s dt =
  s.wall_time <- s.wall_time +. dt;
  Telemetry.Metrics.gauge_add m_wall dt

(* degradation-ladder outcomes: one total plus a per-rung breakdown,
   keyed by the rung names {!Degrade.rung_name} reports *)
let m_degraded = Telemetry.Metrics.counter "solver.degraded"
let m_degraded_resimplify = Telemetry.Metrics.counter "solver.degraded.resimplify"
let m_degraded_enumerate = Telemetry.Metrics.counter "solver.degraded.enumerate"
let m_degraded_give_up = Telemetry.Metrics.counter "solver.degraded.give_up"

(** Record a budget-tripped check resolved (or abandoned) by the
    degradation-ladder rung named [rung]. *)
let record_degraded s rung =
  Telemetry.Metrics.incr m_degraded;
  match rung with
  | "resimplify" ->
    s.degraded_resimplify <- s.degraded_resimplify + 1;
    Telemetry.Metrics.incr m_degraded_resimplify
  | "enumerate" ->
    s.degraded_enumerate <- s.degraded_enumerate + 1;
    Telemetry.Metrics.incr m_degraded_enumerate
  | _ ->
    s.degraded_give_up <- s.degraded_give_up + 1;
    Telemetry.Metrics.incr m_degraded_give_up

(** Rung names with a nonzero degraded count, shallowest first
    (resimplify < enumerate < give_up) — callers that want "the rung
    that decided the cell" take the last element. *)
let degraded_rungs s =
  List.filter_map
    (fun (n, name) -> if n > 0 then Some name else None)
    [ (s.degraded_resimplify, "resimplify");
      (s.degraded_enumerate, "enumerate");
      (s.degraded_give_up, "give_up") ]

let degraded_total s =
  s.degraded_resimplify + s.degraded_enumerate + s.degraded_give_up

let to_string s =
  let base =
    Printf.sprintf
      "queries=%d hits=%d sat=%d unsat=%d unknown=%d blasted=%d conflicts=%d \
       wall=%.4fs"
      s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes
      s.conflicts s.wall_time
  in
  if degraded_total s = 0 then base
  else
    Printf.sprintf "%s degraded=%d(resimplify=%d,enumerate=%d,give_up=%d)"
      base (degraded_total s) s.degraded_resimplify s.degraded_enumerate
      s.degraded_give_up

(** The fields as JSON object members (no enclosing braces), for the
    bench harness's machine-readable output. *)
let to_json_fields s =
  Printf.sprintf
    "\"queries\": %d, \"cache_hits\": %d, \"sat\": %d, \"unsat\": %d, \
     \"unknown\": %d, \"blasted_nodes\": %d, \"conflicts\": %d, \
     \"solver_wall_s\": %.6f, \"degraded_resimplify\": %d, \
     \"degraded_enumerate\": %d, \"degraded_give_up\": %d"
    s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes s.conflicts
    s.wall_time s.degraded_resimplify s.degraded_enumerate s.degraded_give_up
