(** Solver-side counters, accumulated per {!Session} (or shared across
    many one-shot sessions when the caller passes one accumulator in).
    Every engine surfaces these on its outcome so the cost of solving
    is measured, not guessed. *)

type t = {
  mutable queries : int;        (** [check] calls, including cache hits *)
  mutable cache_hits : int;     (** answered from the session query cache *)
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable blasted_nodes : int;  (** term nodes newly encoded to CNF *)
  mutable conflicts : int;      (** CDCL conflicts spent in [check] *)
  mutable wall_time : float;    (** seconds spent inside [check] *)
}

let create () =
  { queries = 0;
    cache_hits = 0;
    sat = 0;
    unsat = 0;
    unknown = 0;
    blasted_nodes = 0;
    conflicts = 0;
    wall_time = 0.0 }

(** Independent copy (for snapshots of a live accumulator). *)
let copy s =
  { queries = s.queries;
    cache_hits = s.cache_hits;
    sat = s.sat;
    unsat = s.unsat;
    unknown = s.unknown;
    blasted_nodes = s.blasted_nodes;
    conflicts = s.conflicts;
    wall_time = s.wall_time }

(** Add [src] into [dst] (merging per-engine accumulators). *)
let add ~into:dst src =
  dst.queries <- dst.queries + src.queries;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.sat <- dst.sat + src.sat;
  dst.unsat <- dst.unsat + src.unsat;
  dst.unknown <- dst.unknown + src.unknown;
  dst.blasted_nodes <- dst.blasted_nodes + src.blasted_nodes;
  dst.conflicts <- dst.conflicts + src.conflicts;
  dst.wall_time <- dst.wall_time +. src.wall_time

(* ------------------------------------------------------------------ *)
(* Telemetry registry mirrors                                          *)
(* ------------------------------------------------------------------ *)

(* The per-session record stays authoritative (engines surface exact
   per-outcome accounting off it); the helpers below additionally fold
   each mutation into the global registry so one `smt.*` namespace
   aggregates solver work across every session in a run.  Sessions
   mutate stats only through these. *)

let m_queries = Telemetry.Metrics.counter "smt.queries"
let m_cache_hits = Telemetry.Metrics.counter "smt.cache_hits"
let m_sat = Telemetry.Metrics.counter "smt.sat"
let m_unsat = Telemetry.Metrics.counter "smt.unsat"
let m_unknown = Telemetry.Metrics.counter "smt.unknown"
let m_blasted = Telemetry.Metrics.counter "smt.blasted_nodes"
let m_conflicts = Telemetry.Metrics.counter "smt.conflicts"
let m_wall = Telemetry.Metrics.gauge "smt.wall_s"

let record_query s =
  s.queries <- s.queries + 1;
  Telemetry.Metrics.incr m_queries

let record_cache_hit s =
  s.cache_hits <- s.cache_hits + 1;
  Telemetry.Metrics.incr m_cache_hits

let record_sat s =
  s.sat <- s.sat + 1;
  Telemetry.Metrics.incr m_sat

let record_unsat s =
  s.unsat <- s.unsat + 1;
  Telemetry.Metrics.incr m_unsat

let record_unknown s =
  s.unknown <- s.unknown + 1;
  Telemetry.Metrics.incr m_unknown

let add_blasted s n =
  s.blasted_nodes <- s.blasted_nodes + n;
  Telemetry.Metrics.add m_blasted n

let add_conflicts s n =
  s.conflicts <- s.conflicts + n;
  Telemetry.Metrics.add m_conflicts n

let add_wall s dt =
  s.wall_time <- s.wall_time +. dt;
  Telemetry.Metrics.gauge_add m_wall dt

let to_string s =
  Printf.sprintf
    "queries=%d hits=%d sat=%d unsat=%d unknown=%d blasted=%d conflicts=%d \
     wall=%.4fs"
    s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes s.conflicts
    s.wall_time

(** The fields as JSON object members (no enclosing braces), for the
    bench harness's machine-readable output. *)
let to_json_fields s =
  Printf.sprintf
    "\"queries\": %d, \"cache_hits\": %d, \"sat\": %d, \"unsat\": %d, \
     \"unknown\": %d, \"blasted_nodes\": %d, \"conflicts\": %d, \
     \"solver_wall_s\": %.6f"
    s.queries s.cache_hits s.sat s.unsat s.unknown s.blasted_nodes s.conflicts
    s.wall_time
