(** Stateful solver sessions: a push/pop assertion stack over one
    long-lived bit-blaster and CDCL instance, with hash-consed terms,
    a query cache, and per-session {!Stats}.

    The paper's Table II engines issue thousands of near-identical
    feasibility queries — each branch negation shares the entire
    path-predicate prefix with its predecessor.  A session exploits
    that three ways:

    - {b hash-consing}: every asserted term is interned to a canonical
      physical node, so the simplifier and bit-blaster memo tables
      (both keyed on physical identity) hit across [check] calls
      instead of re-walking the whole predicate;
    - {b incremental CDCL}: assertions are encoded once and passed to
      {!Sat.solve} as assumptions, so popping a level never discards
      CNF, learnt clauses, or variable activity;
    - {b query cache}: each checked assertion set is keyed by its
      interned node ids (exact within a session — no hash collisions).
      Cached sat models are revalidated through {!Eval} before reuse;
      cached unsat answers are reused directly.

    Floating-point constraints fall back to the one-shot search solver
    ({!Search}), exactly as the non-incremental front-end does.
    {!Solver.solve} is a thin one-shot wrapper over a fresh session, so
    engines that opt out of incrementality keep their behaviour. *)

type model = (string * int64) list

type reason =
  | Budget          (** conflict budget exhausted *)
  | Fp_unsupported  (** FP present and the search fallback is off *)
  | Search_failed   (** FP search exhausted its iterations *)

type outcome = Sat of model | Unsat | Unknown of reason

type config = {
  conflict_budget : int;
  enable_fp_search : bool;
  fp_search_iters : int;
  fp_rng_seed : int64;
      (** xorshift seed for the FP search fallback — explicit so unit
          and fuzz runs are reproducible and independently seedable *)
  seeds : Eval.env list;
      (** candidate assignments the caller wants tried first (e.g.
          small decimal strings for argv-byte groups) *)
  ladder : Degrade.rung list;
      (** degradation rungs tried when a cell budget trips mid-check;
          [[]] restores the hard-failure behaviour (re-raise) *)
}

let default_config =
  { conflict_budget = 200_000;
    enable_fp_search = false;
    fp_search_iters = 50_000;
    fp_rng_seed = Search.default_rng_seed;
    seeds = [];
    ladder = Degrade.default_ladder }

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

module Phys = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

(* shallow structural key: constructor tag + immediate payload +
   canonical child ids.  Children are interned first, so two nodes
   with equal keys are structurally equal whole terms. *)
module Key = struct
  type t = { tag : int; i : int64; n : int; s : string; kids : int array }

  let equal a b =
    a.tag = b.tag && Int64.equal a.i b.i && a.n = b.n
    && String.equal a.s b.s && a.kids = b.kids

  let hash = Hashtbl.hash
end

module Ktbl = Hashtbl.Make (Key)

type interned = { node : Expr.t; id : int }

type frame = { mutable asserted : interned list (* newest first *) }

type cached = Cached_sat of model | Cached_unsat

type t = {
  mutable config : config;
  mutable frames : frame list;   (* newest first; base frame always last *)
  simp_cache : Simplify.cache;
  intern_memo : interned Phys.t; (* raw node -> canonical, O(1) re-intern *)
  consed : interned Ktbl.t;
  vars : (string, Expr.var) Hashtbl.t;  (* every interned variable *)
  fp_memo : (int, bool) Hashtbl.t;      (* id -> contains an FP term *)
  mutable next_id : int;
  blast : Blast.t;
  lits : (int, int) Hashtbl.t;          (* id -> assumption literal *)
  query_cache : (string, cached) Hashtbl.t;
  stats : Stats.t;
  meter : Robust.Meter.t option;
      (** cell budget accounting: node interning charges the
          expr-node cap, [check] polls deadline/cancellation and
          threads the meter into the CDCL core *)
}

let create ?meter ?(config = default_config) ?stats () =
  let meter = Robust.Meter.default meter in
  { config;
    frames = [ { asserted = [] } ];
    simp_cache = Simplify.create_cache ();
    intern_memo = Phys.create 1024;
    consed = Ktbl.create 1024;
    vars = Hashtbl.create 32;
    fp_memo = Hashtbl.create 64;
    next_id = 0;
    blast = Blast.create ();
    lits = Hashtbl.create 64;
    query_cache = Hashtbl.create 64;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    meter }

let key ?(i = 0L) ?(n = 0) ?(s = "") tag kids : Key.t =
  { Key.tag; i; n; s; kids }

let rec intern_node t (e : Expr.t) : interned =
  match Phys.find_opt t.intern_memo (Obj.repr e) with
  | Some i -> i
  | None ->
    let i = cons t e in
    Phys.replace t.intern_memo (Obj.repr e) i;
    i

and cons t (e : Expr.t) : interned =
  let open Expr in
  let sub a = intern_node t a in
  let k, node =
    match e with
    | Var v -> (key 0 ~n:v.width ~s:v.vname [||], e)
    | Const (v, w) -> (key 1 ~i:v ~n:w [||], e)
    | Unop (op, a) ->
      let a = sub a in
      (key 2 ~n:(Hashtbl.hash op) [| a.id |], Unop (op, a.node))
    | Binop (op, a, b) ->
      let a = sub a and b = sub b in
      (key 3 ~n:(Hashtbl.hash op) [| a.id; b.id |], Binop (op, a.node, b.node))
    | Cmp (op, a, b) ->
      let a = sub a and b = sub b in
      (key 4 ~n:(Hashtbl.hash op) [| a.id; b.id |], Cmp (op, a.node, b.node))
    | Ite (c, a, b) ->
      let c = sub c and a = sub a and b = sub b in
      (key 5 [| c.id; a.id; b.id |], Ite (c.node, a.node, b.node))
    | Extract (hi, lo, a) ->
      let a = sub a in
      (key 6 ~i:(Int64.of_int lo) ~n:hi [| a.id |], Extract (hi, lo, a.node))
    | Concat (a, b) ->
      let a = sub a and b = sub b in
      (key 7 [| a.id; b.id |], Concat (a.node, b.node))
    | Zext (w, a) ->
      let a = sub a in
      (key 8 ~n:w [| a.id |], Zext (w, a.node))
    | Sext (w, a) ->
      let a = sub a in
      (key 9 ~n:w [| a.id |], Sext (w, a.node))
    | Fbin (op, a, b) ->
      let a = sub a and b = sub b in
      (key 10 ~n:(Hashtbl.hash op) [| a.id; b.id |], Fbin (op, a.node, b.node))
    | Fcmp (op, a, b) ->
      let a = sub a and b = sub b in
      (key 11 ~n:(Hashtbl.hash op) [| a.id; b.id |], Fcmp (op, a.node, b.node))
    | Fsqrt a ->
      let a = sub a in
      (key 12 [| a.id |], Fsqrt a.node)
    | Fof_int a ->
      let a = sub a in
      (key 13 [| a.id |], Fof_int a.node)
    | Fto_int a ->
      let a = sub a in
      (key 14 [| a.id |], Fto_int a.node)
  in
  match Ktbl.find_opt t.consed k with
  | Some i -> i
  | None ->
    (* a genuinely fresh node: charge the interned-node budget and run
       the allocation-failure chaos probe before allocating the id *)
    (match t.meter with
     | Some m ->
       Robust.Meter.charge_expr_nodes m 1;
       Robust.Meter.probe m Robust.Chaos.Alloc_failure
     | None -> ());
    let id = t.next_id in
    t.next_id <- id + 1;
    (match node with
     | Var v -> Hashtbl.replace t.vars v.vname v
     | _ -> ());
    let i = { node; id } in
    Ktbl.replace t.consed k i;
    i

(** Canonical physical representative of [e] in this session.  Terms
    interned here share memo entries with every other interned term,
    so building constraints through [intern] maximises cache hits. *)
let intern t e = (intern_node t e).node

(** Every variable seen by this session's hash-consing — the
    deduplicated set {!Solver.all_vars} used to recompute per call. *)
let all_vars t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.vars []
  |> List.sort (fun (a : Expr.var) b -> compare a.vname b.vname)

let stats t = t.stats

(* ------------------------------------------------------------------ *)
(* Assertion stack                                                     *)
(* ------------------------------------------------------------------ *)

let push t = t.frames <- { asserted = [] } :: t.frames

let pop t =
  match t.frames with
  | _ :: (_ :: _ as rest) -> t.frames <- rest
  | _ -> invalid_arg "Smt.Session.pop: stack is empty"

let depth t = List.length t.frames - 1

let assert_interned t (i : interned) =
  match t.frames with
  | f :: _ -> f.asserted <- i :: f.asserted
  | [] -> assert false

let assert_ t e =
  assert_interned t (intern_node t (Simplify.run ~cache:t.simp_cache e))

(* asserted set, oldest first *)
let asserted t =
  List.fold_left (fun acc f -> List.rev_append f.asserted acc) [] t.frames

(** Current assertions in push order (simplified, interned). *)
let assertions t = List.map (fun i -> i.node) (asserted t)

(** Replace the assertion stack with [cs], one frame per constraint,
    popping only the suffix that differs from what is already pushed.
    Consecutive path predicates share long prefixes, so the usual cost
    is one pop and one push. *)
let set_assertions t cs =
  let target =
    List.map (fun c -> intern_node t (Simplify.run ~cache:t.simp_cache c)) cs
  in
  (* current stack, bottom-up, excluding the base frame *)
  let stacked = List.rev t.frames |> List.tl in
  let rec shared n (xs : interned list) (fs : frame list) =
    match (xs, fs) with
    | x :: xs', { asserted = [ y ] } :: fs' when x.id = y.id ->
      shared (n + 1) xs' fs'
    | _ -> n
  in
  let keep = shared 0 target stacked in
  for _ = 1 to List.length stacked - keep do pop t done;
  List.iteri
    (fun idx i ->
       if idx >= keep then begin
         push t;
         assert_interned t i
       end)
    target

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let contains_fp t (i : interned) =
  match Hashtbl.find_opt t.fp_memo i.id with
  | Some b -> b
  | None ->
    let b = Expr.contains_fp i.node in
    Hashtbl.replace t.fp_memo i.id b;
    b

let model_holds (m : model) cs =
  let env = Eval.env_of_list m in
  List.for_all
    (fun c -> try Eval.holds env c with Eval.Unbound _ -> false)
    cs

(* restrict a session-wide model to the variables of the checked set,
   matching the one-shot front-end's model shape *)
let restrict_model m cs =
  let names = Hashtbl.create 16 in
  List.iter
    (fun (v : Expr.var) -> Hashtbl.replace names v.vname ())
    (Expr.vars_of_list cs);
  List.filter (fun (n, _) -> Hashtbl.mem names n) m

let solve_uncached t (cfg : config) (cs_i : interned list) : outcome =
  let cs = List.map (fun i -> i.node) cs_i in
  if List.exists (contains_fp t) cs_i then begin
    if not cfg.enable_fp_search then Unknown Fp_unsupported
    else
      match
        Search.fp_search ~iters:cfg.fp_search_iters ~seeds:cfg.seeds
          ~rng_seed:cfg.fp_rng_seed cs
      with
      | Some m -> Sat m
      | None -> Unknown Search_failed
  end
  else begin
    (* try caller seeds before paying for bit-blasting *)
    let seed_hit =
      List.find_opt
        (fun seed ->
           try List.for_all (Eval.holds seed) cs with Eval.Unbound _ -> false)
        cfg.seeds
    in
    match seed_hit with
    | Some seed ->
      Sat
        (List.map
           (fun (v : Expr.var) -> (v.vname, Hashtbl.find seed v.vname))
           (Expr.vars_of_list cs))
    | None -> (
        let nodes_before = Blast.num_nodes t.blast in
        match
          (* clear any stale model before encoding: [add_clause] reads
             level-0 assignments as facts *)
          Blast.reset t.blast;
          List.map
            (fun (i : interned) ->
               match Hashtbl.find_opt t.lits i.id with
               | Some l -> l
               | None ->
                 let l = Blast.lit_of t.blast i.node in
                 Hashtbl.replace t.lits i.id l;
                 l)
            cs_i
        with
        | exception Blast.Unsupported_fp -> Unknown Fp_unsupported
        | assumptions -> (
            Stats.add_blasted t.stats (Blast.num_nodes t.blast - nodes_before);
            let conflicts_before = Blast.num_conflicts t.blast in
            let result =
              Blast.solve ~conflict_budget:cfg.conflict_budget
                ?meter:t.meter ~assumptions t.blast
            in
            Stats.add_conflicts t.stats
              (Blast.num_conflicts t.blast - conflicts_before);
            match result with
            | Sat ->
              let m = restrict_model (Blast.model t.blast) cs in
              (* defensive validation, as in the one-shot front-end *)
              if model_holds m cs then Sat m else Unknown Budget
            | Unsat -> Unsat
            | Unknown -> Unknown Budget))
  end

(** Decide the current assertion set.  [config] overrides the session
    config for this call only (engines use a small budget for
    feasibility pruning and a large one for final queries). *)
let check ?config t : outcome =
  Telemetry.with_span "smt.check" @@ fun () ->
  (* budget/chaos gate on every solver entry: the solver-timeout and
     cancellation probes fire here, and a cancelled or past-deadline
     cell stops before paying for blasting *)
  (match t.meter with
   | Some m ->
     Robust.Meter.probe m Robust.Chaos.Solver_timeout;
     Robust.Meter.probe m Robust.Chaos.Cancellation;
     Robust.Meter.checkpoint m
   | None -> ());
  let cfg = Option.value ~default:t.config config in
  let t0 = Sys.time () in
  Stats.record_query t.stats;
  let cs_i = asserted t in
  let result =
    if List.exists (fun (i : interned) -> Expr.is_false i.node) cs_i then Unsat
    else begin
      let cs_i =
        List.filter (fun (i : interned) -> not (Expr.is_true i.node)) cs_i
      in
      if cs_i = [] then Sat []
      else begin
        (* interned ids are exact within the session: the key admits no
           collisions, so unsat entries are reusable as-is *)
        let key =
          List.sort_uniq compare (List.map (fun (i : interned) -> i.id) cs_i)
          |> List.map string_of_int |> String.concat ","
        in
        let cs = List.map (fun (i : interned) -> i.node) cs_i in
        let cached =
          match Hashtbl.find_opt t.query_cache key with
          | Some Cached_unsat -> Some Unsat
          | Some (Cached_sat m) when model_holds m cs -> Some (Sat m)
          | _ -> None
        in
        match cached with
        | Some r ->
          Stats.record_cache_hit t.stats;
          r
        | None ->
          let r =
            try solve_uncached t cfg cs_i with
            | Robust.Meter.Exhausted
                { resource =
                    ( Robust.Meter.Solver_conflicts | Robust.Meter.Expr_nodes
                    | Robust.Meter.Deadline );
                  _ }
              when cfg.ladder <> [] -> (
                (* the cell budget tripped mid-solve: walk the
                   degradation ladder over the same assertion set
                   instead of aborting the cell.  Injected chaos
                   faults and cooperative cancellation still escape —
                   only genuine resource exhaustion degrades. *)
                match Degrade.run ~ladder:cfg.ladder cs with
                | Degrade.Sat m, rung when model_holds m cs ->
                  Stats.record_degraded t.stats rung;
                  Sat m
                | Degrade.Unsat, rung ->
                  Stats.record_degraded t.stats rung;
                  Unsat
                | (Degrade.Sat _ | Degrade.Undecided), _ ->
                  (* an invalid ladder model counts as give-up too *)
                  Stats.record_degraded t.stats Degrade.give_up_name;
                  Unknown Budget)
          in
          (match r with
           | Sat m -> Hashtbl.replace t.query_cache key (Cached_sat m)
           | Unsat -> Hashtbl.replace t.query_cache key Cached_unsat
           | Unknown _ -> () (* budget-dependent: not cacheable *));
          r
      end
    end
  in
  (match result with
   | Sat _ -> Stats.record_sat t.stats
   | Unsat -> Stats.record_unsat t.stats
   | Unknown _ -> Stats.record_unknown t.stats);
  Stats.add_wall t.stats (Sys.time () -. t0);
  result

(** [set_assertions] followed by [check] — the engines' entry point.

    Exception-safe: if a budget trip, injected fault, or any other
    exception escapes mid-call, the assertion stack is rolled back to
    its pre-call state so a failed cell cannot poison a reused
    session.  Restoring the saved frame list is sound because
    [set_assertions] never mutates surviving frames — it only pops
    suffixes and pushes fresh frames, which the restore discards. *)
let check_assertions ?config t cs =
  let saved = t.frames in
  match
    set_assertions t cs;
    check ?config t
  with
  | outcome -> outcome
  | exception e ->
    t.frames <- saved;
    raise e
