(** Quantifier-free bitvector terms (widths 1..64), with an IEEE-754
    double extension interpreted over 64-bit vectors.

    Booleans are 1-bit vectors, which keeps the language uniform: a
    path predicate is just a [Bv 1] term.  Memory reads with symbolic
    addresses are lowered to [Ite] chains by the engine's memory model
    before they reach the solver, so no array sort is needed — the
    same design choice Angr's default memory model makes. *)

type var = { vname : string; width : int }
[@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Not [@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
[@@deriving show { with_path = false }, eq, ord]

type cmpop = Eq | Ult | Ule | Slt | Sle
[@@deriving show { with_path = false }, eq, ord]

(** Scalar-double operations over 64-bit vectors (IEEE-754 binary64). *)
type fbinop = Fadd | Fsub | Fmul | Fdiv
[@@deriving show { with_path = false }, eq, ord]

type fcmpop = Feq | Flt | Fle [@@deriving show { with_path = false }, eq, ord]

type t =
  | Var of var
  | Const of int64 * int              (** value (zero-extended), width *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t              (** result: Bv 1 *)
  | Ite of t * t * t                  (** cond: Bv 1 *)
  | Extract of int * int * t          (** [Extract (hi, lo, e)] inclusive *)
  | Concat of t * t                   (** high ++ low *)
  | Zext of int * t                   (** to the given width *)
  | Sext of int * t
  | Fbin of fbinop * t * t            (** double arithmetic on Bv 64 *)
  | Fcmp of fcmpop * t * t            (** double compare; Bv 1 *)
  | Fsqrt of t
  | Fof_int of t                      (** cvtsi2sd *)
  | Fto_int of t                      (** cvttsd2si *)
[@@deriving show { with_path = false }, eq, ord]

let mask width =
  if width >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L width) 1L

let rec width_of = function
  | Var v -> v.width
  | Const (_, w) -> w
  | Unop (_, e) -> width_of e
  | Binop (_, a, _) -> width_of a
  | Cmp _ | Fcmp _ -> 1
  | Ite (_, a, _) -> width_of a
  | Extract (hi, lo, _) -> hi - lo + 1
  | Concat (a, b) -> width_of a + width_of b
  | Zext (w, _) | Sext (w, _) -> w
  | Fbin _ | Fsqrt _ | Fof_int _ -> 64
  | Fto_int _ -> 64

(* DAG-aware: shared sub-terms are visited once (a naive tree
   recursion is exponential on circuit-like terms) *)
let contains_fp e =
  let seen : (int, t list) Hashtbl.t = Hashtbl.create 256 in
  let visited e =
    let key = Hashtbl.hash_param 2 4 e in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen key) in
    if List.memq e bucket then true
    else begin
      Hashtbl.replace seen key (e :: bucket);
      false
    end
  in
  let rec go stack =
    match stack with
    | [] -> false
    | e :: rest ->
      if visited e then go rest
      else
        match e with
        | Fbin _ | Fcmp _ | Fsqrt _ | Fof_int _ | Fto_int _ -> true
        | Var _ | Const _ -> go rest
        | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a) ->
          go (a :: rest)
        | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
          go (a :: b :: rest)
        | Ite (c, a, b) -> go (c :: a :: b :: rest)
  in
  go [ e ]

(** Free variables, de-duplicated.  DAG-aware like {!contains_fp}. *)
let vars e =
  let names = Hashtbl.create 16 in
  let acc = ref [] in
  let seen : (int, t list) Hashtbl.t = Hashtbl.create 256 in
  let visited e =
    let key = Hashtbl.hash_param 2 4 e in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen key) in
    if List.memq e bucket then true
    else begin
      Hashtbl.replace seen key (e :: bucket);
      false
    end
  in
  let rec go stack =
    match stack with
    | [] -> ()
    | e :: rest ->
      if visited e then go rest
      else
        match e with
        | Var v ->
          if not (Hashtbl.mem names v.vname) then begin
            Hashtbl.replace names v.vname ();
            acc := v :: !acc
          end;
          go rest
        | Const _ -> go rest
        | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a)
        | Fsqrt a | Fof_int a | Fto_int a -> go (a :: rest)
        | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b)
        | Fbin (_, a, b) | Fcmp (_, a, b) -> go (a :: b :: rest)
        | Ite (c, a, b) -> go (c :: a :: b :: rest)
  in
  go [ e ];
  List.rev !acc

(** Free variables of a constraint list, de-duplicated across the whole
    list in one DAG-aware pass (first-occurrence order).  This is the
    single var-collection used by {!Solver.all_vars}, the FP search and
    {!Session} — previously each re-deduplicated with its own table. *)
let vars_of_list es =
  let names = Hashtbl.create 16 in
  let acc = ref [] in
  let seen : (int, t list) Hashtbl.t = Hashtbl.create 256 in
  let visited e =
    let key = Hashtbl.hash_param 2 4 e in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen key) in
    if List.memq e bucket then true
    else begin
      Hashtbl.replace seen key (e :: bucket);
      false
    end
  in
  let rec go stack =
    match stack with
    | [] -> ()
    | e :: rest ->
      if visited e then go rest
      else
        match e with
        | Var v ->
          if not (Hashtbl.mem names v.vname) then begin
            Hashtbl.replace names v.vname ();
            acc := v :: !acc
          end;
          go rest
        | Const _ -> go rest
        | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a)
        | Fsqrt a | Fof_int a | Fto_int a -> go (a :: rest)
        | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b)
        | Fbin (_, a, b) | Fcmp (_, a, b) -> go (a :: b :: rest)
        | Ite (c, a, b) -> go (c :: a :: b :: rest)
  in
  List.iter (fun e -> go [ e ]) es;
  List.rev !acc

(** Number of distinct nodes (DAG size, by physical identity). *)
let dag_size e =
  let module H = Hashtbl in
  let seen : (Obj.t, unit) H.t = H.create 256 in
  let count = ref 0 in
  let rec go e =
    let key = Obj.repr e in
    if not (H.mem seen key) then begin
      H.replace seen key ();
      incr count;
      match e with
      | Var _ | Const _ -> ()
      | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a)
      | Fsqrt a | Fof_int a | Fto_int a -> go a
      | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b)
      | Fbin (_, a, b) | Fcmp (_, a, b) -> go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go e;
  !count

(** Estimated CNF size if this term were bit-blasted, saturating at
    [cap]: multiplications and divisions dominate (quadratic in
    width), so a node count alone badly underestimates crypto-style
    terms.  The traversal itself is budgeted — structural hashing of
    huge DAGs must not cost more than the solving it guards — so the
    result is exact below the budget and a safe over-approximation
    ([cap]) beyond it. *)
let blast_cost ?(cap = max_int) ?(node_budget = 50_000) e =
  let module H = Hashtbl in
  (* shallow hashing keeps per-node cost constant; collisions only
     grow buckets, and the node budget bounds the total work *)
  let seen : (int, t list) H.t = H.create 1024 in
  let weight = function
    | Binop ((Mul | Udiv | Urem | Sdiv | Srem), a, _) ->
      let w = width_of a in
      3 * w * w
    | Binop ((Shl | Lshr | Ashr), a, _) -> 24 * width_of a
    | Binop (_, a, _) -> 5 * width_of a
    | Cmp (_, a, _) -> 3 * width_of a
    | Ite (_, a, _) -> 4 * width_of a
    | Unop (Neg, a) -> 5 * width_of a
    | _ -> 1
  in
  let cost = ref 0 in
  let visited = ref 0 in
  let stack = ref [ e ] in
  (try
     while !stack <> [] do
       match !stack with
       | [] -> ()
       | e :: rest ->
         stack := rest;
         let key = H.hash_param 2 4 e in
         let bucket = Option.value ~default:[] (H.find_opt seen key) in
         if not (List.memq e bucket) then begin
           H.replace seen key (e :: bucket);
           incr visited;
           cost := !cost + weight e;
           if !cost > cap || !visited > node_budget then begin
             cost := cap + 1;
             raise Exit
           end;
           match e with
           | Var _ | Const _ -> ()
           | Unop (_, a) | Extract (_, _, a) | Zext (_, a) | Sext (_, a)
           | Fsqrt a | Fof_int a | Fto_int a -> stack := a :: !stack
           | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b)
           | Fbin (_, a, b) | Fcmp (_, a, b) -> stack := a :: b :: !stack
           | Ite (c, a, b) -> stack := c :: a :: b :: !stack
         end
     done
   with Exit -> ());
  !cost

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let var ?(width = 64) vname = Var { vname; width }
let const ?(width = 64) v = Const (Int64.logand v (mask width), width)
let const_int ?(width = 64) v = const ~width (Int64.of_int v)
let tru = Const (1L, 1)
let fls = Const (0L, 1)

let is_true = function Const (1L, 1) -> true | _ -> false
let is_false = function Const (0L, 1) -> true | _ -> false

let not_ = function
  | Const (v, 1) -> if v = 1L then fls else tru
  | Unop (Not, e) when width_of e = 1 -> e
  | e -> Unop (Not, e)

let and_ a b =
  if is_false a || is_false b then fls
  else if is_true a then b
  else if is_true b then a
  else Binop (And, a, b)

let or_ a b =
  if is_true a || is_true b then tru
  else if is_false a then b
  else if is_false b then a
  else Binop (Or, a, b)

let conj = function [] -> tru | e :: es -> List.fold_left and_ e es

let eq a b = Cmp (Eq, a, b)
let ne a b = not_ (eq a b)

let ite c a b = if is_true c then a else if is_false c then b else Ite (c, a, b)
